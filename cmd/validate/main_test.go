package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestValidateFig1(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-fig", "1", "-scale", "0.1"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"Base sim", "Dragon model", "measured params"} {
		if !strings.Contains(s, want) {
			t.Errorf("missing %q", want)
		}
	}
}

func TestValidatePresetOverride(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-fig", "2", "-scale", "0.1", "-preset", "pero"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "pero") {
		t.Error("preset name missing from output")
	}
}

func TestValidateBadFig(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-fig", "9"}, &out); err == nil {
		t.Error("want error for fig out of range")
	}
	if err := run([]string{"-badflag"}, &out); err == nil {
		t.Error("want error for unknown flag")
	}
	if err := run([]string{"-fig", "1", "-preset", "nope"}, &out); err == nil {
		t.Error("want error for unknown preset")
	}
}
