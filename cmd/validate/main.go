// Command validate reproduces the paper's model-validation figures
// (Figures 1-3): analytical-model predictions against trace-driven
// simulation on synthetic multiprocessor traces.
//
// Usage:
//
//	validate -fig 1            # Base & Dragon, 64KB caches
//	validate -fig 2 -preset pero -scale 0.5
//	validate -fig 3            # 8-processor trace, three cache sizes
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"swcc/internal/experiments"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "validate:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("validate", flag.ContinueOnError)
	fig := fs.Int("fig", 1, "validation figure to reproduce (1, 2, or 3)")
	preset := fs.String("preset", "", "trace preset (pops, thor, pero; figure default if empty)")
	scale := fs.Float64("scale", 1.0, "trace length scale")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *fig < 1 || *fig > 3 {
		return fmt.Errorf("fig %d out of range 1..3", *fig)
	}
	ds, err := experiments.Run(fmt.Sprintf("fig%d", *fig), experiments.Options{
		Preset:     *preset,
		TraceScale: *scale,
	})
	if err != nil {
		return err
	}
	out, err := ds.Render()
	if err != nil {
		return err
	}
	fmt.Fprint(w, out)
	return nil
}
