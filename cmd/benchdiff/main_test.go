package main

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// write drops one benchmark record file into dir.
func write(t *testing.T, dir, name, content string) {
	t.Helper()
	if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

// rec builds a minimal cohereload record with one or more scenarios,
// given (label, p99_ms, rps) triples.
func rec(scenarios ...string) string {
	return `{"tool": "cohereload", "scenarios": [` + strings.Join(scenarios, ",") + `]}`
}

// scen renders one scenario object.
func scen(label string, p99, rps float64) string {
	return fmt.Sprintf(`{"label": %q, "requests_per_second": %g, "latency": {"p99_ms": %g}}`,
		label, rps, p99)
}

// TestDiffPassesWithinBand: small deltas inside the band are reported
// but do not fail.
func TestDiffPassesWithinBand(t *testing.T) {
	dir := t.TempDir()
	write(t, dir, "BENCH_PR4.json", rec(scen("hit_ratio_0.95", 2.0, 10000)))
	write(t, dir, "BENCH_PR6.json", rec(scen("hit_ratio_0.95", 2.2, 9200)))
	files, err := load(dir)
	if err != nil {
		t.Fatal(err)
	}
	report, regressed, err := diff(files, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	if regressed {
		t.Errorf("10%% p99 rise inside 15%% band flagged as regression:\n%s", report)
	}
	if !strings.Contains(report, "BENCH_PR4.json") || !strings.Contains(report, "benchdiff: ok") {
		t.Errorf("report missing baseline name or ok line:\n%s", report)
	}
}

// TestDiffFailsOnP99Regression: p99 beyond the band fails even when
// throughput improved.
func TestDiffFailsOnP99Regression(t *testing.T) {
	dir := t.TempDir()
	write(t, dir, "BENCH_PR4.json", rec(scen("hit_ratio_0.95", 2.0, 10000)))
	write(t, dir, "BENCH_PR6.json", rec(scen("hit_ratio_0.95", 3.0, 12000)))
	files, err := load(dir)
	if err != nil {
		t.Fatal(err)
	}
	report, regressed, err := diff(files, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	if !regressed {
		t.Errorf("50%% p99 rise not flagged:\n%s", report)
	}
	if !strings.Contains(report, "REGRESSION") {
		t.Errorf("report does not mark the regressed metric:\n%s", report)
	}
}

// TestDiffFailsOnThroughputDrop: a throughput collapse fails even with
// flat latency.
func TestDiffFailsOnThroughputDrop(t *testing.T) {
	dir := t.TempDir()
	write(t, dir, "BENCH_PR5.json", rec(scen("chaos_patient", 40, 100)))
	write(t, dir, "BENCH_PR7.json", rec(scen("chaos_patient", 40, 60)))
	files, err := load(dir)
	if err != nil {
		t.Fatal(err)
	}
	_, regressed, err := diff(files, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	if !regressed {
		t.Error("40% throughput drop not flagged")
	}
}

// TestDiffSkipsUnsharedBaseline: the baseline is the newest EARLIER
// record sharing a label — a chaos record between two latency records
// must not break the chain, and test2json records must be ignored.
func TestDiffSkipsUnsharedBaseline(t *testing.T) {
	dir := t.TempDir()
	write(t, dir, "BENCH_PR3.json", `{"Time":"t","Action":"start","Package":"p"}`)
	write(t, dir, "BENCH_PR4.json", rec(scen("hit_ratio_0.95", 2.0, 10000)))
	write(t, dir, "BENCH_PR5.json", rec(scen("chaos_patient", 40, 100)))
	write(t, dir, "BENCH_PR6.json", rec(scen("hit_ratio_0.95", 2.1, 9900)))
	files, err := load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 3 {
		t.Fatalf("load kept %d files, want 3 (test2json skipped)", len(files))
	}
	report, regressed, err := diff(files, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	if regressed {
		t.Errorf("unexpected regression:\n%s", report)
	}
	if !strings.Contains(report, "BENCH_PR4.json") {
		t.Errorf("baseline should be PR4 (PR5 shares no label):\n%s", report)
	}
}

// TestDiffNoBaseline: a lone record, or one sharing no labels with any
// predecessor, exits cleanly with a message rather than failing.
func TestDiffNoBaseline(t *testing.T) {
	dir := t.TempDir()
	write(t, dir, "BENCH_PR6.json", rec(scen("hit_ratio_0.95", 2.0, 10000)))
	files, err := load(dir)
	if err != nil {
		t.Fatal(err)
	}
	report, regressed, err := diff(files, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	if regressed {
		t.Error("lone record flagged as regression")
	}
	if !strings.Contains(report, "nothing to compare") {
		t.Errorf("report should say there is nothing to compare:\n%s", report)
	}

	empty := t.TempDir()
	files, err = load(empty)
	if err != nil {
		t.Fatal(err)
	}
	report, regressed, err = diff(files, 0.15)
	if err != nil || regressed {
		t.Fatalf("empty dir: regressed=%v err=%v", regressed, err)
	}
	if !strings.Contains(report, "nothing to compare") {
		t.Errorf("empty dir report:\n%s", report)
	}
}

// TestDiffNotesNewScenario: a label only the candidate carries is
// noted as "no baseline yet" rather than silently dropped, and does not
// gate this run.
func TestDiffNotesNewScenario(t *testing.T) {
	dir := t.TempDir()
	write(t, dir, "BENCH_PR6.json", rec(scen("hit_ratio_0.95", 2.0, 10000)))
	write(t, dir, "BENCH_PR7.json", rec(
		scen("hit_ratio_0.95", 2.1, 9900),
		scen("jobs_stream", 5.0, 150000)))
	files, err := load(dir)
	if err != nil {
		t.Fatal(err)
	}
	report, regressed, err := diff(files, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	if regressed {
		t.Errorf("new scenario must not gate its first run:\n%s", report)
	}
	if !strings.Contains(report, "jobs_stream: no baseline yet") {
		t.Errorf("report missing the new-scenario note:\n%s", report)
	}
	// A label only the baseline has (retired scenario) gets no note.
	if strings.Contains(report, "chaos_patient") {
		t.Errorf("unexpected label in report:\n%s", report)
	}
}

// TestLoadRealFormat parses a record shaped like cohereload's actual
// output (extra fields present) without error.
func TestLoadRealFormat(t *testing.T) {
	dir := t.TempDir()
	write(t, dir, "BENCH_PR4.json", `{
  "tool": "cohereload",
  "target": "127.0.0.1:1",
  "scenarios": [{
    "label": "hit_ratio_0.95",
    "hit_ratio": 0.95,
    "concurrency": 8,
    "requests": 100,
    "errors": 0,
    "requests_per_second": 13285.3,
    "latency": {"p50_ms": 0.4, "p90_ms": 0.9, "p99_ms": 2.2, "mean_ms": 0.6, "max_ms": 6.1},
    "mix_counts": {"curve": 1, "point": 2, "sweep": 3}
  }]
}`)
	files, err := load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 1 || files[0].Rec.Scenarios[0].Latency.P99Ms != 2.2 {
		t.Fatalf("parsed %+v", files)
	}
}
