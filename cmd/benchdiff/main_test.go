package main

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// write drops one benchmark record file into dir.
func write(t *testing.T, dir, name, content string) {
	t.Helper()
	if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

// rec builds a minimal cohereload record with one or more scenarios,
// given (label, p99_ms, rps) triples.
func rec(scenarios ...string) string {
	return `{"tool": "cohereload", "scenarios": [` + strings.Join(scenarios, ",") + `]}`
}

// scen renders one scenario object with a gate-eligible 3s window.
func scen(label string, p99, rps float64) string {
	return fmt.Sprintf(`{"label": %q, "duration_seconds": 3, "requests_per_second": %g, "latency": {"p99_ms": %g}}`,
		label, rps, p99)
}

// shortScen renders a sub-second single-shot drill scenario, which the
// duration floor must keep informational.
func shortScen(label string, p99, rps float64) string {
	return fmt.Sprintf(`{"label": %q, "duration_seconds": 0.1, "requests_per_second": %g, "latency": {"p99_ms": %g}}`,
		label, rps, p99)
}

// TestDiffPassesWithinBand: small deltas inside the band are reported
// but do not fail.
func TestDiffPassesWithinBand(t *testing.T) {
	dir := t.TempDir()
	write(t, dir, "BENCH_PR4.json", rec(scen("hit_ratio_0.95", 2.0, 10000)))
	write(t, dir, "BENCH_PR6.json", rec(scen("hit_ratio_0.95", 2.2, 9200)))
	files, err := load(dir)
	if err != nil {
		t.Fatal(err)
	}
	report, regressed, err := diff(files, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	if regressed {
		t.Errorf("10%% p99 rise inside 15%% band flagged as regression:\n%s", report)
	}
	if !strings.Contains(report, "BENCH_PR4.json") || !strings.Contains(report, "benchdiff: ok") {
		t.Errorf("report missing baseline name or ok line:\n%s", report)
	}
}

// TestDiffFailsOnP99Regression: p99 beyond the band fails even when
// throughput improved.
func TestDiffFailsOnP99Regression(t *testing.T) {
	dir := t.TempDir()
	write(t, dir, "BENCH_PR4.json", rec(scen("hit_ratio_0.95", 2.0, 10000)))
	write(t, dir, "BENCH_PR6.json", rec(scen("hit_ratio_0.95", 3.0, 12000)))
	files, err := load(dir)
	if err != nil {
		t.Fatal(err)
	}
	report, regressed, err := diff(files, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	if !regressed {
		t.Errorf("50%% p99 rise not flagged:\n%s", report)
	}
	if !strings.Contains(report, "REGRESSION") {
		t.Errorf("report does not mark the regressed metric:\n%s", report)
	}
}

// TestDiffFailsOnThroughputDrop: a throughput collapse fails even with
// flat latency.
func TestDiffFailsOnThroughputDrop(t *testing.T) {
	dir := t.TempDir()
	write(t, dir, "BENCH_PR5.json", rec(scen("chaos_patient", 40, 100)))
	write(t, dir, "BENCH_PR7.json", rec(scen("chaos_patient", 40, 60)))
	files, err := load(dir)
	if err != nil {
		t.Fatal(err)
	}
	_, regressed, err := diff(files, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	if !regressed {
		t.Error("40% throughput drop not flagged")
	}
}

// TestDiffSkipsUnsharedBaseline: the baseline is the newest EARLIER
// record sharing a label — a chaos record between two latency records
// must not break the chain, and test2json records must be ignored.
func TestDiffSkipsUnsharedBaseline(t *testing.T) {
	dir := t.TempDir()
	write(t, dir, "BENCH_PR3.json", `{"Time":"t","Action":"start","Package":"p"}`)
	write(t, dir, "BENCH_PR4.json", rec(scen("hit_ratio_0.95", 2.0, 10000)))
	write(t, dir, "BENCH_PR5.json", rec(scen("chaos_patient", 40, 100)))
	write(t, dir, "BENCH_PR6.json", rec(scen("hit_ratio_0.95", 2.1, 9900)))
	files, err := load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 3 {
		t.Fatalf("load kept %d files, want 3 (test2json skipped)", len(files))
	}
	report, regressed, err := diff(files, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	if regressed {
		t.Errorf("unexpected regression:\n%s", report)
	}
	if !strings.Contains(report, "BENCH_PR4.json") {
		t.Errorf("baseline should be PR4 (PR5 shares no label):\n%s", report)
	}
}

// TestDiffNoBaseline: a lone record, or one sharing no labels with any
// predecessor, exits cleanly with a message rather than failing.
func TestDiffNoBaseline(t *testing.T) {
	dir := t.TempDir()
	write(t, dir, "BENCH_PR6.json", rec(scen("hit_ratio_0.95", 2.0, 10000)))
	files, err := load(dir)
	if err != nil {
		t.Fatal(err)
	}
	report, regressed, err := diff(files, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	if regressed {
		t.Error("lone record flagged as regression")
	}
	if !strings.Contains(report, "nothing to compare") {
		t.Errorf("report should say there is nothing to compare:\n%s", report)
	}

	empty := t.TempDir()
	files, err = load(empty)
	if err != nil {
		t.Fatal(err)
	}
	report, regressed, err = diff(files, 0.15)
	if err != nil || regressed {
		t.Fatalf("empty dir: regressed=%v err=%v", regressed, err)
	}
	if !strings.Contains(report, "nothing to compare") {
		t.Errorf("empty dir report:\n%s", report)
	}
}

// TestDiffNotesNewScenario: a label only the candidate carries is
// noted as "no baseline yet" rather than silently dropped, and does not
// gate this run.
func TestDiffNotesNewScenario(t *testing.T) {
	dir := t.TempDir()
	write(t, dir, "BENCH_PR6.json", rec(scen("hit_ratio_0.95", 2.0, 10000)))
	write(t, dir, "BENCH_PR7.json", rec(
		scen("hit_ratio_0.95", 2.1, 9900),
		scen("jobs_stream", 5.0, 150000)))
	files, err := load(dir)
	if err != nil {
		t.Fatal(err)
	}
	report, regressed, err := diff(files, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	if regressed {
		t.Errorf("new scenario must not gate its first run:\n%s", report)
	}
	if !strings.Contains(report, "jobs_stream: no baseline yet") {
		t.Errorf("report missing the new-scenario note:\n%s", report)
	}
	// A label only the baseline has (retired scenario) gets no note.
	if strings.Contains(report, "chaos_patient") {
		t.Errorf("unexpected label in report:\n%s", report)
	}
}

// gwScen renders a gateway-arm scenario with a backend hit ratio.
func gwScen(label string, p99, rps, ratio float64) string {
	return fmt.Sprintf(`{"label": %q, "duration_seconds": 2, "requests_per_second": %g, "latency": {"p99_ms": %g}, "backend_hit_ratio": %g}`,
		label, rps, p99, ratio)
}

// TestDiffSkipsShortRuns: a sub-second drill's p99 and throughput may
// swing arbitrarily without gating — its line is informational — while
// a full-length scenario in the same record still gates.
func TestDiffSkipsShortRuns(t *testing.T) {
	dir := t.TempDir()
	write(t, dir, "BENCH_PR7.json", rec(
		scen("hit_ratio_0.95", 2.0, 10000),
		shortScen("jobs_stream", 13.0, 200000)))
	write(t, dir, "BENCH_PR8.json", rec(
		scen("hit_ratio_0.95", 2.1, 9900),
		shortScen("jobs_stream", 26.0, 40000)))
	files, err := load(dir)
	if err != nil {
		t.Fatal(err)
	}
	report, regressed, err := diff(files, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	if regressed {
		t.Errorf("2x p99 swing on a 0.1s drill gated the run:\n%s", report)
	}
	if !strings.Contains(report, "jobs_stream") || !strings.Contains(report, "not gated") {
		t.Errorf("report missing the informational short-run line:\n%s", report)
	}

	// The floor protects against flakes, not against real regressions in
	// gate-eligible scenarios sharing the record.
	write(t, dir, "BENCH_PR8.json", rec(
		scen("hit_ratio_0.95", 4.0, 9900),
		shortScen("jobs_stream", 26.0, 40000)))
	files, err = load(dir)
	if err != nil {
		t.Fatal(err)
	}
	report, regressed, err = diff(files, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	if !regressed {
		t.Errorf("full-length regression masked by short-run floor:\n%s", report)
	}
}

// TestGwGatePasses: paired gateway arms where affinity clears 1.5x with
// better p99 do not gate, with or without a baseline record.
func TestGwGatePasses(t *testing.T) {
	dir := t.TempDir()
	write(t, dir, "BENCH_PR8.json", rec(
		gwScen("gw_affinity", 0.8, 9000, 0.97),
		gwScen("gw_roundrobin", 1.4, 7000, 0.58)))
	files, err := load(dir)
	if err != nil {
		t.Fatal(err)
	}
	report, regressed, err := diff(files, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	if regressed {
		t.Errorf("healthy gateway record flagged:\n%s", report)
	}
	if !strings.Contains(report, "gw gate:") {
		t.Errorf("report missing the gw gate line:\n%s", report)
	}
}

// TestGwGateFailsOnHitRatio: affinity below 1.5x round-robin fails the
// candidate even when no baseline exists to diff against.
func TestGwGateFailsOnHitRatio(t *testing.T) {
	dir := t.TempDir()
	write(t, dir, "BENCH_PR8.json", rec(
		gwScen("gw_affinity", 0.8, 9000, 0.70),
		gwScen("gw_roundrobin", 1.4, 7000, 0.58)))
	files, err := load(dir)
	if err != nil {
		t.Fatal(err)
	}
	report, regressed, err := diff(files, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	if !regressed {
		t.Errorf("1.2x hit-ratio gain passed a 1.5x gate:\n%s", report)
	}
	if !strings.Contains(report, "REGRESSION") {
		t.Errorf("report does not mark the gate failure:\n%s", report)
	}
}

// TestGwGateFailsOnP99: affinity p99 beyond round-robin's plus the band
// fails even with a winning hit ratio.
func TestGwGateFailsOnP99(t *testing.T) {
	dir := t.TempDir()
	write(t, dir, "BENCH_PR7.json", rec(scen("hit_ratio_0.95", 2.0, 10000)))
	write(t, dir, "BENCH_PR8.json", rec(
		scen("hit_ratio_0.95", 2.0, 10000),
		gwScen("gw_affinity", 2.0, 9000, 0.97),
		gwScen("gw_roundrobin", 1.4, 7000, 0.58)))
	files, err := load(dir)
	if err != nil {
		t.Fatal(err)
	}
	report, regressed, err := diff(files, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	if !regressed {
		t.Errorf("affinity p99 43%% over round-robin passed a 15%% band:\n%s", report)
	}
	if !strings.Contains(report, "gw gate:") || !strings.Contains(report, "REGRESSION") {
		t.Errorf("report missing the marked gw gate line:\n%s", report)
	}
}

// TestGwGateSkipsUnpairedRecords: a record without both arms (all older
// PRs) is untouched by the within-record gate.
func TestGwGateSkipsUnpairedRecords(t *testing.T) {
	dir := t.TempDir()
	write(t, dir, "BENCH_PR8.json", rec(
		scen("hit_ratio_0.95", 2.0, 10000),
		gwScen("gw_affinity", 0.8, 9000, 0.97)))
	files, err := load(dir)
	if err != nil {
		t.Fatal(err)
	}
	report, regressed, err := diff(files, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	if regressed {
		t.Errorf("unpaired record gated:\n%s", report)
	}
	if strings.Contains(report, "gw gate:") {
		t.Errorf("gw gate ran without both arms:\n%s", report)
	}
}

// hedgeScen renders a hedging-arm scenario with a backend send ratio.
func hedgeScen(label string, p99, sendRatio float64) string {
	return fmt.Sprintf(`{"label": %q, "duration_seconds": 2, "requests_per_second": 1000, "latency": {"p99_ms": %g}, "backend_send_ratio": %g}`,
		label, p99, sendRatio)
}

// TestHedgeGatePasses: a hedged arm that cuts p99 inside the load band
// does not gate, even without a baseline record.
func TestHedgeGatePasses(t *testing.T) {
	dir := t.TempDir()
	write(t, dir, "BENCH_PR10.json", rec(
		hedgeScen("gw_unhedged", 120.0, 1.0),
		hedgeScen("gw_hedged", 35.0, 1.06)))
	files, err := load(dir)
	if err != nil {
		t.Fatal(err)
	}
	report, regressed, err := diff(files, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	if regressed {
		t.Errorf("healthy hedging record flagged:\n%s", report)
	}
	if !strings.Contains(report, "hedge gate:") {
		t.Errorf("report missing the hedge gate line:\n%s", report)
	}
}

// TestHedgeGateFailsOnP99: a hedged arm whose p99 no longer beats the
// unhedged arm fails the candidate.
func TestHedgeGateFailsOnP99(t *testing.T) {
	dir := t.TempDir()
	write(t, dir, "BENCH_PR10.json", rec(
		hedgeScen("gw_unhedged", 120.0, 1.0),
		hedgeScen("gw_hedged", 121.0, 1.05)))
	files, err := load(dir)
	if err != nil {
		t.Fatal(err)
	}
	report, regressed, err := diff(files, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	if !regressed {
		t.Errorf("hedged p99 above unhedged passed the gate:\n%s", report)
	}
	if !strings.Contains(report, "hedge gate:") || !strings.Contains(report, "REGRESSION") {
		t.Errorf("report missing the marked hedge gate line:\n%s", report)
	}
}

// TestHedgeGateFailsOnLoad: a hedged arm past the backend load band
// fails even with a winning p99.
func TestHedgeGateFailsOnLoad(t *testing.T) {
	dir := t.TempDir()
	write(t, dir, "BENCH_PR10.json", rec(
		hedgeScen("gw_unhedged", 120.0, 1.0),
		hedgeScen("gw_hedged", 35.0, 1.25)))
	files, err := load(dir)
	if err != nil {
		t.Fatal(err)
	}
	report, regressed, err := diff(files, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	if !regressed {
		t.Errorf("1.25x backend send ratio passed a 1.10x band:\n%s", report)
	}
	if !strings.Contains(report, "REGRESSION") {
		t.Errorf("report does not mark the load-band failure:\n%s", report)
	}
}

// TestHedgeGateSkipsShortRuns: sub-second hedging arms are reported but
// never gated, like every other short drill.
func TestHedgeGateSkipsShortRuns(t *testing.T) {
	dir := t.TempDir()
	write(t, dir, "BENCH_PR10.json", rec(
		`{"label": "gw_unhedged", "duration_seconds": 0.4, "latency": {"p99_ms": 120}, "backend_send_ratio": 1.0}`,
		`{"label": "gw_hedged", "duration_seconds": 0.4, "latency": {"p99_ms": 130}, "backend_send_ratio": 1.4}`))
	files, err := load(dir)
	if err != nil {
		t.Fatal(err)
	}
	report, regressed, err := diff(files, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	if regressed {
		t.Errorf("sub-second hedging arms gated the run:\n%s", report)
	}
	if !strings.Contains(report, "hedge gate:") || !strings.Contains(report, "not gated") {
		t.Errorf("report missing the informational hedge line:\n%s", report)
	}
}

// TestLoadRealFormat parses a record shaped like cohereload's actual
// output (extra fields present) without error.
func TestLoadRealFormat(t *testing.T) {
	dir := t.TempDir()
	write(t, dir, "BENCH_PR4.json", `{
  "tool": "cohereload",
  "target": "127.0.0.1:1",
  "scenarios": [{
    "label": "hit_ratio_0.95",
    "hit_ratio": 0.95,
    "concurrency": 8,
    "requests": 100,
    "errors": 0,
    "requests_per_second": 13285.3,
    "latency": {"p50_ms": 0.4, "p90_ms": 0.9, "p99_ms": 2.2, "mean_ms": 0.6, "max_ms": 6.1},
    "mix_counts": {"curve": 1, "point": 2, "sweep": 3}
  }]
}`)
	files, err := load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 1 || files[0].Rec.Scenarios[0].Latency.P99Ms != 2.2 {
		t.Fatalf("parsed %+v", files)
	}
}
