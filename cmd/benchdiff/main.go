// Command benchdiff compares the two newest per-PR benchmark records
// (BENCH_PR<n>.json, as written by `make bench-json`) and fails when
// the serving latency or throughput regressed beyond a noise band. It
// is the cross-PR counterpart to the in-tree allocation pins: alloc
// tests catch per-op waste within one build, benchdiff catches the
// end-to-end drift between merges.
//
// Usage:
//
//	benchdiff [-dir .] [-band 0.15]
//
// Only cohereload-format records participate (files whose top-level
// "tool" field is "cohereload"); older test2json records are skipped.
// The newest file is the candidate and the newest earlier file sharing
// at least one scenario label is the baseline — so a chaos-mode record
// between two latency records does not break the comparison chain. For
// every shared label, p99 latency may not rise and throughput may not
// fall by more than the band (default 15%, chosen from observed
// run-to-run jitter of the 3-second cohereload scenarios). Scenarios
// whose timed window is shorter than half a second on either side
// (the single-shot jobs and warm-restart drills) are reported but
// never gated: their percentiles come from a handful of samples, so
// one scheduler hiccup would swing them far past any honest band —
// those drills carry their own pass/fail checks inside cohereload
// instead. Exit status is 1 on regression, 2 on usage/parse errors,
// and 0 otherwise — including when no comparable baseline exists yet.
//
// Two gates are within-record rather than cross-PR. When the candidate
// carries the gateway drill's paired arms ("gw_affinity" and
// "gw_roundrobin"), affinity must show at least 1.5x round-robin's
// aggregate backend cache-hit ratio with p99 no worse than round-robin's
// plus the band. And when it carries the hedging arms ("gw_unhedged"
// and "gw_hedged"), the hedged arm must show a lower p99 than the
// unhedged one for a backend send ratio inside the hedge load band —
// hedging that stops cutting the tail, or starts stampeding the
// backends, fails the record outright. These are the headline claims
// about the front tier, so they gate every record that measures them —
// baseline or not.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
)

// record is the slice of cohereload's output format that benchdiff
// compares; unknown fields are ignored so the format can grow.
type record struct {
	// Tool identifies the writer; only "cohereload" records compare.
	Tool string `json:"tool"`
	// Scenarios holds one summary per load mix, keyed by Label.
	Scenarios []scenario `json:"scenarios"`
}

// scenario is one load mix's summary: its identifying label, the
// throughput, and the latency percentiles.
type scenario struct {
	// Label names the mix (e.g. "hit_ratio_0.95", "chaos_patient").
	Label string `json:"label"`
	// DurationSeconds is the scenario's timed window; runs under
	// minGateSeconds are informational only.
	DurationSeconds float64 `json:"duration_seconds"`
	// RequestsPerSecond is the completed-request throughput.
	RequestsPerSecond float64 `json:"requests_per_second"`
	// Latency carries the millisecond percentiles; only P99 gates.
	Latency struct {
		// P99Ms is the 99th-percentile request latency in milliseconds.
		P99Ms float64 `json:"p99_ms"`
	} `json:"latency"`
	// BackendHitRatio is the gateway drill's aggregate backend
	// cache-hit ratio; nonzero only on gw_* scenarios.
	BackendHitRatio float64 `json:"backend_hit_ratio"`
	// BackendSendRatio is the hedging drill's backend-load
	// amplification (gateway-to-backend sends over client requests);
	// nonzero only on the gw_unhedged / gw_hedged arms.
	BackendSendRatio float64 `json:"backend_send_ratio"`
}

// gwHitRatioGate is the affinity-vs-round-robin multiplier the gateway
// arms must clear (mirrors cohereload's own drill gate).
const gwHitRatioGate = 1.5

// gwHedgeLoadBand caps the hedged arm's backend send ratio (mirrors
// cohereload's own drill gate): hedging past it buys its tail cut with
// a backend stampede.
const gwHedgeLoadBand = 1.10

// minGateSeconds is the shortest timed window whose percentiles are
// trusted enough to gate: the sub-second single-shot drills
// (jobs_stream, jobs_cancel, gw_warm_restart) have so few latency
// samples that their p99 is effectively a max, and a max over ~20
// samples flips far past the band on an ordinary GC pause.
const minGateSeconds = 0.5

// benchFile pairs a parsed record with the PR number from its name.
type benchFile struct {
	// Path is the file's location, for diagnostics.
	Path string
	// PR is the number in BENCH_PR<n>.json; files sort by it.
	PR int
	// Rec is the parsed cohereload record.
	Rec record
}

var benchName = regexp.MustCompile(`^BENCH_PR(\d+)\.json$`)

func main() {
	dir := flag.String("dir", ".", "directory holding BENCH_PR*.json records")
	band := flag.Float64("band", 0.15, "allowed fractional regression before failing")
	flag.Parse()

	files, err := load(*dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	report, regressed, err := diff(files, *band)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	fmt.Print(report)
	if regressed {
		os.Exit(1)
	}
}

// load parses every cohereload-format BENCH_PR*.json in dir, sorted by
// PR number ascending. Non-cohereload files (e.g. test2json records
// from earlier PRs) are silently skipped; malformed JSON in a matching
// file is skipped too, since historical records are not this build's
// fault.
func load(dir string) ([]benchFile, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []benchFile
	for _, e := range entries {
		m := benchName.FindStringSubmatch(e.Name())
		if m == nil || e.IsDir() {
			continue
		}
		pr, err := strconv.Atoi(m[1])
		if err != nil {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			return nil, err
		}
		var rec record
		if err := json.Unmarshal(data, &rec); err != nil || rec.Tool != "cohereload" {
			continue
		}
		files = append(files, benchFile{Path: filepath.Join(dir, e.Name()), PR: pr, Rec: rec})
	}
	sort.Slice(files, func(i, j int) bool { return files[i].PR < files[j].PR })
	return files, nil
}

// diff compares the newest record against the newest earlier record
// sharing at least one scenario label and returns a human-readable
// report plus whether any shared scenario regressed beyond band.
func diff(files []benchFile, band float64) (string, bool, error) {
	if len(files) == 0 {
		return "benchdiff: no cohereload records found; nothing to compare\n", false, nil
	}
	cur := files[len(files)-1]
	gwReport, gwBad := gwGate(cur.Rec, band)
	hedgeReport, hedgeBad := hedgeGate(cur.Rec)
	gwReport += hedgeReport
	gwBad = gwBad || hedgeBad
	var base *benchFile
	for i := len(files) - 2; i >= 0; i-- {
		if len(sharedLabels(files[i].Rec, cur.Rec)) > 0 {
			base = &files[i]
			break
		}
	}
	if base == nil {
		report := fmt.Sprintf("benchdiff: no earlier record shares a scenario with %s; nothing to compare\n", cur.Path) + gwReport
		if gwBad {
			report += "benchdiff: FAIL — gateway within-record gate\n"
		}
		return report, gwBad, nil
	}

	report := fmt.Sprintf("benchdiff: %s vs baseline %s (band %.0f%%)\n", cur.Path, base.Path, band*100)
	regressed := gwBad
	report += gwReport
	for _, label := range sharedLabels(base.Rec, cur.Rec) {
		b, c := scenarioByLabel(base.Rec, label), scenarioByLabel(cur.Rec, label)
		line, bad := compareScenario(label, b, c, band)
		report += line
		regressed = regressed || bad
	}
	// A label only the candidate has is a new scenario, not a
	// comparison: note it so its first record visibly becomes the
	// baseline the next PR gates against, instead of vanishing silently.
	for _, label := range newLabels(base.Rec, cur.Rec) {
		report += fmt.Sprintf("  %s: no baseline yet (new scenario; gates from the next record)\n", label)
	}
	if regressed {
		report += "benchdiff: FAIL — regression beyond noise band\n"
	} else {
		report += "benchdiff: ok\n"
	}
	return report, regressed, nil
}

// gwGate enforces the within-record gateway claim on the candidate:
// when both drill arms are present, affinity's aggregate backend hit
// ratio must be at least gwHitRatioGate times round-robin's, and its
// p99 must not exceed round-robin's by more than band. Records without
// the paired arms (older PRs, plain latency runs) pass untouched.
func gwGate(cur record, band float64) (string, bool) {
	aff := scenarioByLabel(cur, "gw_affinity")
	rr := scenarioByLabel(cur, "gw_roundrobin")
	if aff.Label == "" || rr.Label == "" {
		return "", false
	}
	if rr.BackendHitRatio <= 0 {
		return "  gw gate: round-robin arm recorded no backend hit ratio — record malformed REGRESSION\n", true
	}
	gain := aff.BackendHitRatio / rr.BackendHitRatio
	hitBad := gain < gwHitRatioGate
	p99Bad := aff.Latency.P99Ms > rr.Latency.P99Ms*(1+band)
	mark := func(bad bool) string {
		if bad {
			return " REGRESSION"
		}
		return ""
	}
	line := fmt.Sprintf("  gw gate: backend hit ratio %.3f vs roundrobin %.3f (%.2fx, need %.1fx)%s, p99 %.3fms vs %.3fms%s\n",
		aff.BackendHitRatio, rr.BackendHitRatio, gain, gwHitRatioGate, mark(hitBad),
		aff.Latency.P99Ms, rr.Latency.P99Ms, mark(p99Bad))
	return line, hitBad || p99Bad
}

// hedgeGate enforces the within-record hedging claim on the candidate:
// when both hedging arms are present, the hedged arm's p99 must beat
// the unhedged arm's, and its backend send ratio must stay inside
// gwHedgeLoadBand. Arms whose timed window is under minGateSeconds are
// reported but not gated (their p99 rests on too few tail samples);
// records without the paired arms pass untouched.
func hedgeGate(cur record) (string, bool) {
	un := scenarioByLabel(cur, "gw_unhedged")
	h := scenarioByLabel(cur, "gw_hedged")
	if un.Label == "" || h.Label == "" {
		return "", false
	}
	if un.DurationSeconds < minGateSeconds || h.DurationSeconds < minGateSeconds {
		return fmt.Sprintf("  hedge gate: p99 %.3fms hedged vs %.3fms unhedged, send ratio %.3f (sub-second drill; informational, not gated)\n",
			h.Latency.P99Ms, un.Latency.P99Ms, h.BackendSendRatio), false
	}
	p99Bad := h.Latency.P99Ms >= un.Latency.P99Ms
	loadBad := h.BackendSendRatio > gwHedgeLoadBand
	mark := func(bad bool) string {
		if bad {
			return " REGRESSION"
		}
		return ""
	}
	line := fmt.Sprintf("  hedge gate: p99 %.3fms hedged vs %.3fms unhedged%s, send ratio %.3f (band %.2fx)%s\n",
		h.Latency.P99Ms, un.Latency.P99Ms, mark(p99Bad),
		h.BackendSendRatio, gwHedgeLoadBand, mark(loadBad))
	return line, p99Bad || loadBad
}

// compareScenario renders one label's p99/throughput deltas and flags
// a regression when p99 rose or throughput fell by more than band.
// Scenarios whose timed window is under minGateSeconds on either side
// are rendered but never flagged (see the package comment).
func compareScenario(label string, base, cur scenario, band float64) (string, bool) {
	if base.DurationSeconds < minGateSeconds || cur.DurationSeconds < minGateSeconds {
		return fmt.Sprintf("  %s: p99 %.3fms -> %.3fms, throughput %.0f -> %.0f req/s (sub-second drill; informational, not gated)\n",
			label, base.Latency.P99Ms, cur.Latency.P99Ms,
			base.RequestsPerSecond, cur.RequestsPerSecond), false
	}
	p99Delta := frac(cur.Latency.P99Ms, base.Latency.P99Ms)
	rpsDelta := frac(cur.RequestsPerSecond, base.RequestsPerSecond)
	p99Bad := p99Delta > band
	rpsBad := rpsDelta < -band
	mark := func(bad bool) string {
		if bad {
			return " REGRESSION"
		}
		return ""
	}
	line := fmt.Sprintf("  %s: p99 %.3fms -> %.3fms (%+.1f%%)%s, throughput %.0f -> %.0f req/s (%+.1f%%)%s\n",
		label,
		base.Latency.P99Ms, cur.Latency.P99Ms, p99Delta*100, mark(p99Bad),
		base.RequestsPerSecond, cur.RequestsPerSecond, rpsDelta*100, mark(rpsBad))
	return line, p99Bad || rpsBad
}

// frac is the fractional change from base to cur, 0 when base is 0 or
// negative (degenerate records never gate).
func frac(cur, base float64) float64 {
	if base <= 0 {
		return 0
	}
	return (cur - base) / base
}

// sharedLabels returns the scenario labels present in both records, in
// a's order.
func sharedLabels(a, b record) []string {
	inB := make(map[string]bool, len(b.Scenarios))
	for _, s := range b.Scenarios {
		inB[s.Label] = true
	}
	var shared []string
	for _, s := range a.Scenarios {
		if inB[s.Label] {
			shared = append(shared, s.Label)
		}
	}
	return shared
}

// newLabels returns the labels present in cur but absent from base, in
// cur's order — the scenarios making their first appearance.
func newLabels(base, cur record) []string {
	inBase := make(map[string]bool, len(base.Scenarios))
	for _, s := range base.Scenarios {
		inBase[s.Label] = true
	}
	var out []string
	for _, s := range cur.Scenarios {
		if !inBase[s.Label] {
			out = append(out, s.Label)
		}
	}
	return out
}

// scenarioByLabel returns the scenario with the given label, or a zero
// scenario if absent (callers only pass labels from sharedLabels).
func scenarioByLabel(r record, label string) scenario {
	for _, s := range r.Scenarios {
		if s.Label == label {
			return s
		}
	}
	return scenario{}
}
