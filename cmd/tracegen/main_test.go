package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"swcc/internal/trace"
)

func TestGenerateToStdoutBinary(t *testing.T) {
	var out, errB bytes.Buffer
	if err := run([]string{"-ncpu", "2", "-instr", "1000"}, &out, &errB); err != nil {
		t.Fatal(err)
	}
	tr, err := trace.ReadTrace(&out)
	if err != nil {
		t.Fatal(err)
	}
	if tr.NCPU != 2 {
		t.Errorf("ncpu = %d", tr.NCPU)
	}
	if !strings.Contains(errB.String(), "wrote") {
		t.Error("missing stats line on stderr")
	}
}

func TestGenerateTextToFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.trace")
	var out, errB bytes.Buffer
	err := run([]string{"-preset", "thor", "-instr", "500", "-text", "-o", path, "-seed", "42"}, &out, &errB)
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	tr, err := trace.ReadText(f)
	if err != nil {
		t.Fatal(err)
	}
	if tr.NCPU != 4 {
		t.Errorf("ncpu = %d", tr.NCPU)
	}
}

func TestOverrides(t *testing.T) {
	var out, errB bytes.Buffer
	err := run([]string{"-ncpu", "1", "-instr", "2000", "-ls", "0.5", "-shd", "0", "-wr", "0.1", "-noflush"}, &out, &errB)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := trace.ReadTrace(&out)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range tr.Refs {
		if r.Kind == trace.Flush {
			t.Fatal("flush despite -noflush")
		}
		if r.Shared {
			t.Fatal("shared ref despite -shd 0")
		}
	}
}

func TestBadArgs(t *testing.T) {
	var out, errB bytes.Buffer
	if err := run([]string{"-preset", "nope"}, &out, &errB); err == nil {
		t.Error("want error for bad preset")
	}
	if err := run([]string{"-ls", "2"}, &out, &errB); err == nil {
		t.Error("want error for ls out of range")
	}
	if err := run([]string{"-badflag"}, &out, &errB); err == nil {
		t.Error("want error for unknown flag")
	}
}
