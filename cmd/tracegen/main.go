// Command tracegen synthesizes multiprocessor address traces for the
// trace-driven simulator.
//
// Usage:
//
//	tracegen -preset pops -o pops.trace
//	tracegen -ncpu 4 -instr 100000 -ls 0.3 -shd 0.25 -o out.trace -text
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"swcc/internal/trace"
	"swcc/internal/tracegen"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("tracegen", flag.ContinueOnError)
	preset := fs.String("preset", "", "start from a preset: "+fmt.Sprint(tracegen.PresetNames()))
	out := fs.String("o", "", "output file (default stdout)")
	text := fs.Bool("text", false, "write the text format instead of binary")
	ncpu := fs.Int("ncpu", 0, "processors (overrides preset)")
	instr := fs.Int("instr", 0, "instructions per processor (overrides preset)")
	seed := fs.Uint64("seed", 0, "RNG seed (overrides preset)")
	ls := fs.Float64("ls", -1, "data references per instruction")
	shd := fs.Float64("shd", -1, "shared fraction of data references")
	wr := fs.Float64("wr", -1, "write fraction of data references")
	noFlush := fs.Bool("noflush", false, "suppress flush records")
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg := tracegen.DefaultConfig()
	if *preset != "" {
		var err error
		if cfg, err = tracegen.Preset(*preset); err != nil {
			return err
		}
	}
	if *ncpu > 0 {
		cfg.NCPU = *ncpu
	}
	if *instr > 0 {
		cfg.InstrPerCPU = *instr
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}
	if *ls >= 0 {
		cfg.LS = *ls
	}
	if *shd >= 0 {
		cfg.SharedFrac = *shd
	}
	if *wr >= 0 {
		cfg.WriteFrac = *wr
	}
	if *noFlush {
		cfg.EmitFlush = false
	}

	tr, err := tracegen.Generate(cfg)
	if err != nil {
		return err
	}

	var w io.Writer = stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if *text {
		err = trace.WriteText(w, tr)
	} else {
		err = trace.WriteTrace(w, tr)
	}
	if err != nil {
		return err
	}

	stats, err := trace.ComputeStats(tr, cfg.BlockSize)
	if err != nil {
		return err
	}
	fmt.Fprintf(stderr, "wrote %d records (%d CPUs): %d ifetch, %d read, %d write, %d flush; ls=%.3f shd=%.3f wr=%.3f\n",
		stats.Total, stats.NCPU,
		stats.ByKind[trace.IFetch], stats.ByKind[trace.Read], stats.ByKind[trace.Write], stats.ByKind[trace.Flush],
		stats.LoadStoreFraction(), stats.SharedFraction(), stats.WriteFraction())
	return nil
}
