// Command cohereload is a load generator for cohered: it drives a mix of
// /v1/bus and /v1/sweep requests at a configurable concurrency, duration,
// point mix, and cache-hit ratio, then prints a JSON summary with p50,
// p90, and p99 latency per scenario.
//
// Usage:
//
//	cohereload [-addr HOST:PORT] [-c 8] [-d 3s] [-hit-ratios 0.95,0.05]
//	           [-mix point:4,curve:1,sweep:1] [-warm-pool 64] [-procs 16]
//	           [-seed 1] [-out FILE] [-chaos] [-jobs] [-gw]
//
// With -addr empty (the default) cohereload boots an in-process daemon —
// the same serve.Server behind cohered — on an ephemeral loopback port
// and loads that, so `make bench-json` needs no separately managed
// process. Point it at a running daemon with -addr to measure a real
// deployment.
//
// The hit ratio is enforced by key choice: "hit" requests draw their
// workload (the shd parameter) from a small warm pool that is primed
// before timing starts, so they are served from the evaluator's memo;
// "miss" requests use a counter-derived never-repeating workload, so
// they pay a cold solve. Comparing the hit-heavy and miss-heavy
// scenarios separates time spent in the model from time spent in the
// serving path — the latency-regression runbook in OPERATIONS.md builds
// on exactly that comparison.
//
// -chaos replaces the normal scenarios with an overload drill: it boots
// a deliberately tiny in-process daemon (two solve slots, two queue
// seats) with the internal/fault injector armed, then drives it with a
// patient client fleet (retrying 503s after honoring Retry-After) and
// an abandoning fleet (aggressive client timeouts, exercising the
// cancellation paths). The run fails — nonzero exit — unless the daemon
// sheds at least once and never answers 500: under overload plus
// injected faults the only acceptable failures are retryable 503s and
// clean timeouts. `make chaos-smoke` runs exactly this.
//
// -jobs replaces the normal scenarios with an async-job drill against
// the /v1/jobs API: it submits a multi-thousand-point grid job, streams
// the NDJSON results end to end (reporting row throughput and
// inter-batch latency as the "jobs_stream" scenario), then submits a
// second job and cancels it mid-stream ("jobs_cancel"). The run fails
// unless the stream delivers every point with a clean done trailer and
// the cancelled job disappears. `make jobs-smoke` runs exactly this.
//
// -gw replaces the normal scenarios with the gateway drill: it boots
// two in-process cohered backends with deliberately tight cache caps
// behind an in-process coheregw, then (1) verifies affinity routing is
// stable and key-canonical via the X-Coheregw-Backend header, (2)
// benches the affinity policy against a fresh round-robin control arm
// over an over-capacity warm pool — reporting each arm's aggregate
// backend cache-hit ratio and failing unless affinity wins by at least
// 1.5x with p99 no worse, (3) kills a backend mid-load and fails on any
// client-visible 500 or 502, and (4) snapshot-restarts a backend and
// fails unless the restored cache serves a previously-warmed key with
// zero new solves. `make gw-smoke` runs exactly this.
//
// Both -chaos and -jobs also accept -addr; pointing them at a coheregw
// address drives the same drills through the gateway tier. With -addr
// set, -chaos skips the gates that assume its own tiny self-booted
// daemon (nonzero sheds, the /metrics scrape) and keeps the
// client-facing one: no 500s, ever.
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"math"
	"math/rand"
	"net"
	"net/http"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"swcc/internal/core"
	"swcc/internal/fault"
	"swcc/internal/serve"
)

// sharedTransport is the one keep-alive connection pool every fleet in
// the process draws from. Each drill used to construct bare
// &http.Client{} values per phase, so every phase re-dialed and
// re-handshook its way up from zero connections — the measured p99 then
// included connection-establishment spikes the daemon never caused.
// One pool means steady-state keep-alive reuse across phases, which is
// also how a real deployment fronts cohered.
var sharedTransport = &http.Transport{
	MaxIdleConns:        256,
	MaxIdleConnsPerHost: 64,
	IdleConnTimeout:     90 * time.Second,
}

// newClient returns an http.Client on the shared transport. timeout 0
// means no client-side deadline (long-lived result streams).
func newClient(timeout time.Duration) *http.Client {
	return &http.Client{Transport: sharedTransport, Timeout: timeout}
}

// loadConfig is one scenario's knobs.
type loadConfig struct {
	Concurrency int           // worker goroutines
	Duration    time.Duration // timed window per scenario
	HitRatio    float64       // fraction of requests drawn from the warm pool
	Mix         map[string]int
	WarmPool    int // distinct warm workloads
	Procs       int // machine size per query
	Seed        int64
}

// percentiles summarizes a latency sample in milliseconds.
type percentiles struct {
	P50  float64 `json:"p50_ms"`
	P90  float64 `json:"p90_ms"`
	P99  float64 `json:"p99_ms"`
	Mean float64 `json:"mean_ms"`
	Max  float64 `json:"max_ms"`
}

// summary is one scenario's result, the unit of the JSON report.
type summary struct {
	Label       string         `json:"label"`
	HitRatio    float64        `json:"hit_ratio"`
	Concurrency int            `json:"concurrency"`
	Duration    float64        `json:"duration_seconds"`
	Requests    int            `json:"requests"`
	Errors      int            `json:"errors"`
	RPS         float64        `json:"requests_per_second"`
	Latency     percentiles    `json:"latency"`
	Mix         map[string]int `json:"mix_counts"`

	// Chaos-mode extras; omitted from normal-mode reports so the
	// BENCH_PR4.json shape is unchanged.
	StatusCounts   map[string]int `json:"status_counts,omitempty"`
	Retries        int            `json:"retries,omitempty"`
	ClientTimeouts int            `json:"client_timeouts,omitempty"`

	// BackendHitRatio is the gateway drill's aggregate backend
	// cache-hit ratio over the timed window (hits / lookups summed
	// across the fleet, from each backend's own Stats deltas) — the
	// number the affinity-vs-round-robin comparison gates on.
	BackendHitRatio float64 `json:"backend_hit_ratio,omitempty"`

	// BackendSendRatio is the hedging drill's backend-load amplification:
	// gateway-to-backend sends over client requests in the timed window.
	// 1.0 means every request cost one backend call; the hedged arm gates
	// on it staying under the hedge load band.
	BackendSendRatio float64 `json:"backend_send_ratio,omitempty"`
}

// chaosStats is the server's own accounting of a chaos run, scraped
// from /metrics after the scenarios finish.
type chaosStats struct {
	Sheds           int `json:"sheds"`
	Cancels         int `json:"cancels"`
	InjectedErrors  int `json:"injected_errors"`
	InjectedLatency int `json:"injected_latencies"`
	ServerError500s int `json:"server_500s"`
}

// report is the full document cohereload emits (BENCH_PR4.json's shape;
// -chaos adds the chaos block for BENCH_PR5.json).
type report struct {
	Tool      string      `json:"tool"`
	Target    string      `json:"target"`
	Scenarios []summary   `json:"scenarios"`
	Chaos     *chaosStats `json:"chaos,omitempty"`
}

// mergeInto folds rep's scenarios into a previous cohereload report at
// outPath, if one exists: a scenario whose label the earlier report
// already carries replaces it in place, so rerunning one drill updates
// its rows instead of appending duplicate labels (benchdiff reads the
// first match per label); unseen labels append in order. With no
// outPath, no readable earlier file, or a non-cohereload file, rep is
// returned unchanged.
func mergeInto(outPath string, rep report) report {
	if outPath == "" {
		return rep
	}
	prev, err := os.ReadFile(outPath)
	if err != nil {
		return rep
	}
	var merged report
	if json.Unmarshal(prev, &merged) != nil || merged.Tool != "cohereload" {
		return rep
	}
	for _, s := range rep.Scenarios {
		replaced := false
		for i := range merged.Scenarios {
			if merged.Scenarios[i].Label == s.Label {
				merged.Scenarios[i] = s
				replaced = true
				break
			}
		}
		if !replaced {
			merged.Scenarios = append(merged.Scenarios, s)
		}
	}
	return merged
}

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "cohereload:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("cohereload", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", "", "target daemon host:port (empty = boot an in-process daemon)")
	conc := fs.Int("c", 8, "concurrent workers")
	dur := fs.Duration("d", 3*time.Second, "timed window per scenario")
	ratios := fs.String("hit-ratios", "0.95,0.05", "comma-separated cache-hit ratios, one scenario each")
	mixSpec := fs.String("mix", "point:4,curve:1,sweep:1", "request mix as kind:weight pairs (kinds: point, curve, sweep)")
	warmPool := fs.Int("warm-pool", 64, "distinct workloads in the warm (cache-hit) pool")
	scheme := fs.String("scheme", "swflush", "coherence scheme the generated load names (any registered name or alias)")
	procs := fs.Int("procs", 16, "machine size per query")
	seed := fs.Int64("seed", 1, "RNG seed for the request schedule")
	out := fs.String("out", "", "also write the JSON report to this file")
	chaos := fs.Bool("chaos", false, "overload drill: fault-injected in-process daemon, or -addr to drive an existing daemon/gateway (fails on any 500)")
	jobsMode := fs.Bool("jobs", false, "async-job drill: submit, stream, and cancel /v1/jobs sweeps (fails on lost rows or a surviving cancelled job)")
	gwMode := fs.Bool("gw", false, "gateway drill: affinity-vs-roundrobin bench, mid-load backend kill, and snapshot warm restart (fails unless affinity wins and failover is clean)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	if *conc < 1 || *warmPool < 1 || *procs < 1 || *dur <= 0 {
		return fmt.Errorf("-c, -warm-pool, -procs must be >= 1 and -d > 0")
	}
	// Fail fast on a typo'd scheme instead of drilling 100% errors.
	if _, err := core.SchemeByName(*scheme); err != nil {
		return err
	}
	loadScheme = *scheme
	modes := 0
	for _, m := range []bool{*chaos, *jobsMode, *gwMode} {
		if m {
			modes++
		}
	}
	if modes > 1 {
		return fmt.Errorf("-chaos, -jobs, and -gw are mutually exclusive drills")
	}
	if *chaos {
		return runChaos(stdout, stderr, *addr, *conc, *dur, *seed, *procs, *out)
	}
	if *jobsMode {
		return runJobs(stdout, stderr, *addr, *out)
	}
	if *gwMode {
		if *addr != "" {
			return fmt.Errorf("-gw boots its own backend fleet and gateway; it cannot target -addr")
		}
		return runGw(stdout, stderr, *conc, *dur, *seed, *out)
	}
	mix, err := parseMix(*mixSpec)
	if err != nil {
		return err
	}
	var hitRatios []float64
	for _, s := range strings.Split(*ratios, ",") {
		r, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
		if err != nil || r < 0 || r > 1 {
			return fmt.Errorf("-hit-ratios: %q is not a ratio in [0,1]", s)
		}
		hitRatios = append(hitRatios, r)
	}

	target := *addr
	if target == "" {
		stopSrv, bound, err := startLocalDaemon()
		if err != nil {
			return err
		}
		defer stopSrv()
		target = bound
		fmt.Fprintf(stderr, "cohereload: booted in-process daemon on %s\n", target)
	}
	base := "http://" + target

	rep := report{Tool: "cohereload", Target: target}
	for _, r := range hitRatios {
		cfg := loadConfig{
			Concurrency: *conc, Duration: *dur, HitRatio: r,
			Mix: mix, WarmPool: *warmPool, Procs: *procs, Seed: *seed,
		}
		s, err := runLoad(context.Background(), base, cfg)
		if err != nil {
			return err
		}
		rep.Scenarios = append(rep.Scenarios, s)
		fmt.Fprintf(stderr, "cohereload: %s: %d requests, %d errors, p50 %.3fms p99 %.3fms\n",
			s.Label, s.Requests, s.Errors, s.Latency.P50, s.Latency.P99)
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if _, err := stdout.Write(data); err != nil {
		return err
	}
	if *out != "" {
		if err := os.WriteFile(*out, data, 0o644); err != nil {
			return err
		}
	}
	return nil
}

// startLocalDaemon boots a serve.Server over real HTTP on an ephemeral
// loopback port and returns a stop func plus the bound host:port.
func startLocalDaemon() (func(), string, error) {
	srv := serve.NewServer(serve.Config{
		Logger: slog.New(slog.NewJSONHandler(io.Discard, nil)),
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, "", err
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	return func() { hs.Close() }, ln.Addr().String(), nil
}

// parseMix turns "point:4,curve:1,sweep:1" into weights.
func parseMix(spec string) (map[string]int, error) {
	mix := map[string]int{}
	total := 0
	for _, part := range strings.Split(spec, ",") {
		kind, weight, ok := strings.Cut(strings.TrimSpace(part), ":")
		if !ok {
			return nil, fmt.Errorf("-mix: %q is not kind:weight", part)
		}
		switch kind {
		case "point", "curve", "sweep":
		default:
			return nil, fmt.Errorf("-mix: unknown kind %q (want point, curve, or sweep)", kind)
		}
		w, err := strconv.Atoi(weight)
		if err != nil || w < 0 {
			return nil, fmt.Errorf("-mix: weight %q is not a non-negative integer", weight)
		}
		mix[kind] = w
		total += w
	}
	if total == 0 {
		return nil, fmt.Errorf("-mix: all weights are zero")
	}
	return mix, nil
}

// splitmix64 is the SplitMix64 mixing function — the same mixer
// internal/fault uses for its schedules.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// workerSeed derives worker w's RNG seed by hashing (seed, w) through
// splitmix64. The obvious seed+w was a bug: run A's worker 1 and run
// B's worker 0 collided whenever the base seeds differed by one, so
// two runs meant to be independent replayed each other's request
// schedules shifted by a worker. Hashing makes every (seed, worker)
// pair an unrelated stream while keeping the schedule a pure function
// of the flags.
func workerSeed(seed int64, worker int) int64 {
	return int64(splitmix64(uint64(seed) ^ splitmix64(uint64(worker)+1)))
}

// warmShd returns the i-th warm-pool workload's shd value.
func warmShd(i, pool int) float64 {
	return 0.1 + 0.8*float64(i)/float64(pool)
}

// missShd derives a practically never-repeating shd from a counter: the
// fractional part of n times the golden ratio walks the (0.1, 0.9) range
// without cycling, so each miss request is a distinct cache key. A rare
// float64-rounding collision only turns one intended miss into a hit,
// which biases the measured ratio, not the correctness.
func missShd(n uint64) float64 {
	const phi = 0.6180339887498949
	f := float64(n) * phi
	return 0.1 + 0.8*(f-math.Floor(f))
}

// runLoad primes the warm pool, then drives cfg's mix at cfg.Concurrency
// for cfg.Duration and summarizes the latencies.
func runLoad(ctx context.Context, base string, cfg loadConfig) (summary, error) {
	client := newClient(30 * time.Second)

	// Prime: every warm-pool key solved once, so in-window "hit"
	// requests measure the cache path, not a first-touch solve.
	for i := 0; i < cfg.WarmPool; i++ {
		body := pointBody(warmShd(i, cfg.WarmPool), cfg.Procs)
		if _, _, err := post(ctx, client, base+"/v1/bus", body); err != nil {
			return summary{}, fmt.Errorf("priming warm pool: %w", err)
		}
	}

	var kinds []string
	for kind, w := range cfg.Mix {
		for i := 0; i < w; i++ {
			kinds = append(kinds, kind)
		}
	}
	sort.Strings(kinds) // map order is random; the schedule should not be

	var (
		mu        sync.Mutex
		latencies []float64
		mixCounts = map[string]int{}
		errs      int
		requests  int
		missSeq   uint64 // claimed in batches, one per worker draw
		seqMu     sync.Mutex
	)
	nextMiss := func() uint64 {
		seqMu.Lock()
		defer seqMu.Unlock()
		missSeq++
		return missSeq
	}

	deadline := time.Now().Add(cfg.Duration)
	var wg sync.WaitGroup
	for w := 0; w < cfg.Concurrency; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(workerSeed(cfg.Seed, worker)))
			for time.Now().Before(deadline) && ctx.Err() == nil {
				kind := kinds[rng.Intn(len(kinds))]
				hit := rng.Float64() < cfg.HitRatio
				shd := func() float64 {
					if hit {
						return warmShd(rng.Intn(cfg.WarmPool), cfg.WarmPool)
					}
					return missShd(nextMiss())
				}
				var path, body string
				switch kind {
				case "point":
					path, body = "/v1/bus", pointBody(shd(), cfg.Procs)
				case "curve":
					path, body = "/v1/bus", curveBody(shd(), cfg.Procs)
				case "sweep":
					pts := make([]string, 8)
					for i := range pts {
						pts[i] = pointBody(shd(), cfg.Procs)
					}
					path, body = "/v1/sweep", `{"points": [`+strings.Join(pts, ",")+`]}`
				}
				start := time.Now()
				code, _, err := post(ctx, client, base+path, body)
				elapsed := time.Since(start).Seconds()
				mu.Lock()
				requests++
				mixCounts[kind]++
				if err != nil || code != http.StatusOK {
					errs++
				} else {
					latencies = append(latencies, elapsed)
				}
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()

	sort.Float64s(latencies)
	s := summary{
		Label:       fmt.Sprintf("hit_ratio_%g", cfg.HitRatio),
		HitRatio:    cfg.HitRatio,
		Concurrency: cfg.Concurrency,
		Duration:    cfg.Duration.Seconds(),
		Requests:    requests,
		Errors:      errs,
		RPS:         float64(requests) / cfg.Duration.Seconds(),
		Latency:     summarize(latencies),
		Mix:         mixCounts,
	}
	return s, nil
}

// loadScheme is the scheme every generated /v1/bus and /v1/sweep body
// names, set by the -scheme flag (default swflush, the historical load
// shape). Any registered scheme name or alias works; the daemon under
// test resolves it through the same registry.
var loadScheme = "swflush"

func pointBody(shd float64, procs int) string {
	return fmt.Sprintf(`{"scheme": %q, "params": {"shd": %g}, "procs": %d, "point": true}`, loadScheme, shd, procs)
}

func curveBody(shd float64, procs int) string {
	return fmt.Sprintf(`{"scheme": %q, "params": {"shd": %g}, "procs": %d}`, loadScheme, shd, procs)
}

func post(ctx context.Context, client *http.Client, url, body string) (int, []byte, error) {
	req, err := http.NewRequestWithContext(ctx, "POST", url, strings.NewReader(body))
	if err != nil {
		return 0, nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	return resp.StatusCode, data, err
}

// summarize computes percentiles from a sorted sample (milliseconds).
func summarize(sorted []float64) percentiles {
	if len(sorted) == 0 {
		return percentiles{}
	}
	q := func(p float64) float64 {
		i := int(math.Ceil(p*float64(len(sorted)))) - 1
		if i < 0 {
			i = 0
		}
		return sorted[i] * 1000
	}
	var sum float64
	for _, v := range sorted {
		sum += v
	}
	return percentiles{
		P50:  q(0.50),
		P90:  q(0.90),
		P99:  q(0.99),
		Mean: sum / float64(len(sorted)) * 1000,
		Max:  sorted[len(sorted)-1] * 1000,
	}
}

// --- jobs mode ---

// jobGridBody is the drill's grid: 2 schemes x 10 axis values x 1000
// machine sizes = 20000 result rows, big enough that the spool's
// back-pressure and the streaming path do real work, small enough that
// `make jobs-smoke` finishes in seconds.
const jobGridBody = `{"label":"cohereload","schemes":["swflush","dragon"],` +
	`"axis":"apl","from":4,"to":40,"steps":10,"procs_from":1,"procs_to":1000}`

const jobGridRows = 2 * 10 * 1000

// runJobs drives the async-job drill: stream one grid job end to end,
// then cancel a second one mid-stream. It returns an error — failing
// the process — if any row is lost, the trailer is missing or unclean,
// or the cancelled job remains resident.
func runJobs(stdout, stderr io.Writer, addr, outPath string) error {
	target := addr
	if target == "" {
		stopSrv, bound, err := startLocalDaemon()
		if err != nil {
			return err
		}
		defer stopSrv()
		target = bound
		fmt.Fprintf(stderr, "cohereload: booted in-process daemon on %s\n", target)
	}
	base := "http://" + target
	client := newClient(0) // no timeout: the results stream is long-lived

	rep := report{Tool: "cohereload", Target: target + " (jobs)"}

	// Scenario 1: submit and stream every row.
	id, err := submitJob(client, base)
	if err != nil {
		return err
	}
	start := time.Now()
	rows, gaps, trailerState, err := streamJob(client, base, id)
	if err != nil {
		return fmt.Errorf("jobs_stream: %w", err)
	}
	elapsed := time.Since(start)
	if rows != jobGridRows {
		return fmt.Errorf("jobs_stream: streamed %d rows, want %d", rows, jobGridRows)
	}
	if trailerState != "done" {
		return fmt.Errorf("jobs_stream: trailer state %q, want done", trailerState)
	}
	sort.Float64s(gaps)
	rep.Scenarios = append(rep.Scenarios, summary{
		Label:    "jobs_stream",
		Duration: elapsed.Seconds(),
		Requests: rows,
		RPS:      float64(rows) / elapsed.Seconds(),
		Latency:  summarize(gaps), // inter-batch gaps, not per-request latency
		Mix:      map[string]int{"rows": rows},
	})
	fmt.Fprintf(stderr, "cohereload: jobs_stream: %d rows in %.2fs (%.0f rows/s)\n",
		rows, elapsed.Seconds(), float64(rows)/elapsed.Seconds())

	// Scenario 2: cancel mid-stream; the job must vanish.
	id, err = submitJob(client, base)
	if err != nil {
		return err
	}
	start = time.Now()
	partial, err := cancelJobMidStream(client, base, id)
	if err != nil {
		return fmt.Errorf("jobs_cancel: %w", err)
	}
	elapsed = time.Since(start)
	rep.Scenarios = append(rep.Scenarios, summary{
		Label:    "jobs_cancel",
		Duration: elapsed.Seconds(),
		Requests: partial,
		RPS:      float64(partial) / elapsed.Seconds(),
		Mix:      map[string]int{"rows": partial},
	})
	fmt.Fprintf(stderr, "cohereload: jobs_cancel: cancelled after %d rows; job gone\n", partial)

	// -out pointing at an existing cohereload report merges the job
	// scenarios into it instead of clobbering it, so `make bench-json`
	// can land the latency mixes and the jobs drill in one BENCH_PR
	// record.
	rep = mergeInto(outPath, rep)
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if _, err := stdout.Write(data); err != nil {
		return err
	}
	if outPath != "" {
		if err := os.WriteFile(outPath, data, 0o644); err != nil {
			return err
		}
	}
	return nil
}

// submitJob posts the drill grid and returns the job ID.
func submitJob(client *http.Client, base string) (string, error) {
	code, data, err := post(context.Background(), client, base+"/v1/jobs/sweep", jobGridBody)
	if err != nil {
		return "", err
	}
	if code != http.StatusOK {
		return "", fmt.Errorf("submit: status %d: %s", code, data)
	}
	var sub struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(data, &sub); err != nil || sub.ID == "" {
		return "", fmt.Errorf("submit: bad response %s", data)
	}
	return sub.ID, nil
}

// streamJob reads one job's NDJSON results to the trailer, returning
// the data-row count, the inter-batch gaps (seconds, one per {"seq"}
// marker), and the trailer's state.
func streamJob(client *http.Client, base, id string) (rows int, gaps []float64, state string, err error) {
	resp, err := client.Get(base + "/v1/jobs/" + id + "/results")
	if err != nil {
		return 0, nil, "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		data, _ := io.ReadAll(resp.Body)
		return 0, nil, "", fmt.Errorf("results: status %d: %s", resp.StatusCode, data)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	last := time.Now()
	for sc.Scan() {
		var probe struct {
			Seq  *uint64 `json:"seq"`
			Done *bool   `json:"done"`
			St   string  `json:"state"`
		}
		if err := json.Unmarshal(sc.Bytes(), &probe); err != nil {
			return rows, gaps, "", fmt.Errorf("bad stream line: %w", err)
		}
		switch {
		case probe.Done != nil:
			return rows, gaps, probe.St, sc.Err()
		case probe.Seq != nil:
			now := time.Now()
			gaps = append(gaps, now.Sub(last).Seconds())
			last = now
		default:
			rows++
		}
	}
	if err := sc.Err(); err != nil {
		return rows, gaps, "", err
	}
	return rows, gaps, "", fmt.Errorf("stream ended without a trailer")
}

// cancelJobMidStream reads a few batches of the job's results, deletes
// the job, and verifies it is gone. Returns the rows read before the
// cancel.
func cancelJobMidStream(client *http.Client, base, id string) (int, error) {
	resp, err := client.Get(base + "/v1/jobs/" + id + "/results")
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	rows, markers := 0, 0
	for sc.Scan() && markers < 2 {
		if strings.Contains(sc.Text(), `"seq"`) {
			markers++
		} else if !strings.Contains(sc.Text(), `"done"`) {
			rows++
		}
	}
	req, err := http.NewRequest(http.MethodDelete, base+"/v1/jobs/"+id, nil)
	if err != nil {
		return rows, err
	}
	dresp, err := client.Do(req)
	if err != nil {
		return rows, err
	}
	io.Copy(io.Discard, dresp.Body)
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK {
		return rows, fmt.Errorf("delete: status %d", dresp.StatusCode)
	}
	sresp, err := client.Get(base + "/v1/jobs/" + id)
	if err != nil {
		return rows, err
	}
	io.Copy(io.Discard, sresp.Body)
	sresp.Body.Close()
	if sresp.StatusCode != http.StatusNotFound {
		return rows, fmt.Errorf("cancelled job still resident: status %d", sresp.StatusCode)
	}
	return rows, nil
}

// --- chaos mode ---

// chaosRequestTimeout is the chaos daemon's per-request model budget —
// short, so overload converts to 503s within the drill window.
const chaosRequestTimeout = 300 * time.Millisecond

// startChaosDaemon boots the drill target: a deliberately tiny daemon
// (two solve slots, two queue seats) with the deterministic injector
// adding latency and transient errors to every solve.
func startChaosDaemon(seed int64) (func(), string, error) {
	inj := fault.New(fault.Config{
		Seed:     seed,
		Latency:  20 * time.Millisecond,
		LatencyP: 0.4,
		ErrorP:   0.2,
	})
	srv := serve.NewServer(serve.Config{
		MaxInFlight:    2,
		MaxQueueDepth:  2,
		RequestTimeout: chaosRequestTimeout,
		Fault:          inj,
		Logger:         slog.New(slog.NewJSONHandler(io.Discard, nil)),
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, "", err
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	return func() { hs.Close() }, ln.Addr().String(), nil
}

// runChaos drives the overload drill: a patient fleet and an abandoning
// fleet against the chaos daemon, then verdicts the run from the
// daemon's own metrics. It returns an error — failing the process —
// if the daemon ever answered 500 or never shed, so `make chaos-smoke`
// is a real gate, not a report generator. With addr set it drives an
// existing daemon or gateway instead of booting its own; the verdicts
// that assume the tiny self-booted daemon (nonzero sheds, the /metrics
// scrape) are skipped then, the no-500s one is not.
func runChaos(stdout, stderr io.Writer, addr string, conc int, dur time.Duration, seed int64, procs int, outPath string) error {
	target := addr
	selfBooted := addr == ""
	if selfBooted {
		stopSrv, bound, err := startChaosDaemon(seed)
		if err != nil {
			return err
		}
		defer stopSrv()
		target = bound
		fmt.Fprintf(stderr, "cohereload: chaos daemon on %s (2 slots, 2 queue seats, faults armed)\n", target)
	} else {
		fmt.Fprintf(stderr, "cohereload: chaos fleets targeting %s\n", target)
	}
	base := "http://" + target

	rep := report{Tool: "cohereload", Target: target + " (chaos)"}
	// Patient clients wait out the server's full budget and retry 503s
	// after honoring Retry-After; abandoning clients hang up after a
	// timeout far below the injected latency, exercising cancellation.
	for _, sc := range []struct {
		label         string
		clientTimeout time.Duration
		seed          int64
	}{
		{"chaos_patient", 0, seed},
		{"chaos_abandoning", 30 * time.Millisecond, seed + 1},
	} {
		s := chaosScenario(base, sc.label, conc, dur, sc.seed, procs, sc.clientTimeout)
		rep.Scenarios = append(rep.Scenarios, s)
		fmt.Fprintf(stderr, "cohereload: %s: %d requests, status %v, %d retries, %d client timeouts\n",
			s.Label, s.Requests, s.StatusCounts, s.Retries, s.ClientTimeouts)
	}

	var stats chaosStats
	if selfBooted {
		// An external target (a real daemon, or a gateway whose
		// /metrics page speaks swcc_gw_*) has no scrapeable overload
		// block; the clients' own status tallies are the verdict then.
		var err error
		stats, err = scrapeChaosStats(base)
		if err != nil {
			return err
		}
		rep.Chaos = &stats
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if _, err := stdout.Write(data); err != nil {
		return err
	}
	if outPath != "" {
		if err := os.WriteFile(outPath, data, 0o644); err != nil {
			return err
		}
	}

	client500s := 0
	for _, s := range rep.Scenarios {
		client500s += s.StatusCounts["500"]
	}
	if stats.ServerError500s > 0 || client500s > 0 {
		return fmt.Errorf("chaos: daemon answered 500 under injected faults (server counted %d, clients saw %d) — overload must stay 503/504/499",
			stats.ServerError500s, client500s)
	}
	if !selfBooted {
		fmt.Fprintf(stderr, "cohereload: chaos ok against %s: 0 client-visible 500s\n", target)
		return nil
	}
	if stats.Sheds == 0 {
		return fmt.Errorf("chaos: admission control never shed; the drill did not reach overload (raise -c or -d)")
	}
	fmt.Fprintf(stderr, "cohereload: chaos ok: %d sheds, %d cancels, %d injected errors, 0 server 500s\n",
		stats.Sheds, stats.Cancels, stats.InjectedErrors)
	return nil
}

// chaosScenario runs one fleet for the window and tallies outcomes by
// status code. clientTimeout 0 means patient: the client outlasts the
// server's own budget.
func chaosScenario(base, label string, conc int, dur time.Duration, seed int64, procs int, clientTimeout time.Duration) summary {
	client := newClient(0)
	var (
		mu        sync.Mutex
		latencies []float64
		status    = map[string]int{}
		requests  int
		retries   int
		timeouts  int
		errs      int
		missSeq   uint64
		seqMu     sync.Mutex
	)
	nextMiss := func() uint64 {
		seqMu.Lock()
		defer seqMu.Unlock()
		missSeq++
		return missSeq
	}
	deadline := time.Now().Add(dur)
	var wg sync.WaitGroup
	for w := 0; w < conc; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(workerSeed(seed, worker)))
			for time.Now().Before(deadline) {
				// Distinct keys so every admitted request pays a real solve.
				body := pointBody(missShd(nextMiss()), procs)
				// Retry loop: a 503 is retried (bounded) after honoring the
				// server's Retry-After, capped to the remaining window.
				for attempt := 0; attempt < 3; attempt++ {
					ctx := context.Background()
					cancel := context.CancelFunc(func() {})
					if clientTimeout > 0 {
						ctx, cancel = context.WithTimeout(ctx, clientTimeout)
					}
					start := time.Now()
					code, retryAfter, err := postStatus(ctx, client, base+"/v1/bus", body)
					elapsed := time.Since(start).Seconds()
					cancel()
					mu.Lock()
					requests++
					switch {
					case err != nil && ctx.Err() != nil:
						timeouts++
					case err != nil:
						errs++
					default:
						status[strconv.Itoa(code)]++
						if code == http.StatusOK {
							latencies = append(latencies, elapsed)
						}
					}
					if err == nil && code == http.StatusServiceUnavailable && attempt < 2 {
						retries++
						mu.Unlock()
						backoff := time.Duration(retryAfter) * time.Second
						if remaining := time.Until(deadline); backoff > remaining {
							backoff = remaining
						}
						if backoff > 0 {
							// Jitter so a shed burst does not retry in lockstep.
							time.Sleep(backoff/2 + time.Duration(rng.Int63n(int64(backoff/2+1))))
						}
						continue
					}
					mu.Unlock()
					break
				}
			}
		}(w)
	}
	wg.Wait()

	sort.Float64s(latencies)
	return summary{
		Label:          label,
		Concurrency:    conc,
		Duration:       dur.Seconds(),
		Requests:       requests,
		Errors:         errs,
		RPS:            float64(requests) / dur.Seconds(),
		Latency:        summarize(latencies),
		Mix:            map[string]int{"point": requests},
		StatusCounts:   status,
		Retries:        retries,
		ClientTimeouts: timeouts,
	}
}

// postStatus posts one request and returns the status code plus the
// parsed Retry-After header (seconds, 0 when absent).
func postStatus(ctx context.Context, client *http.Client, url, body string) (int, int, error) {
	req, err := http.NewRequestWithContext(ctx, "POST", url, strings.NewReader(body))
	if err != nil {
		return 0, 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return 0, 0, err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	ra, _ := strconv.Atoi(resp.Header.Get("Retry-After"))
	return resp.StatusCode, ra, nil
}

// scrapeChaosStats reads the daemon's own overload accounting off
// /metrics — the drill's verdict comes from the server, not from what
// the clients happened to observe.
func scrapeChaosStats(base string) (chaosStats, error) {
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		return chaosStats{}, err
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return chaosStats{}, err
	}
	text := string(data)
	get := func(name string) int {
		m := regexp.MustCompile(`(?m)^` + regexp.QuoteMeta(name) + ` (\d+)$`).FindStringSubmatch(text)
		if m == nil {
			return 0
		}
		n, _ := strconv.Atoi(m[1])
		return n
	}
	stats := chaosStats{
		Sheds:           get("swcc_http_sheds_total"),
		Cancels:         get("swcc_http_cancels_total"),
		InjectedErrors:  get(`swcc_fault_injections_total{kind="error"}`),
		InjectedLatency: get(`swcc_fault_injections_total{kind="latency"}`),
	}
	for _, m := range regexp.MustCompile(`code="500"\} (\d+)`).FindAllStringSubmatch(text, -1) {
		n, _ := strconv.Atoi(m[1])
		stats.ServerError500s += n
	}
	return stats, nil
}
