// Command cohereload is a load generator for cohered: it drives a mix of
// /v1/bus and /v1/sweep requests at a configurable concurrency, duration,
// point mix, and cache-hit ratio, then prints a JSON summary with p50,
// p90, and p99 latency per scenario.
//
// Usage:
//
//	cohereload [-addr HOST:PORT] [-c 8] [-d 3s] [-hit-ratios 0.95,0.05]
//	           [-mix point:4,curve:1,sweep:1] [-warm-pool 64] [-procs 16]
//	           [-seed 1] [-out FILE]
//
// With -addr empty (the default) cohereload boots an in-process daemon —
// the same serve.Server behind cohered — on an ephemeral loopback port
// and loads that, so `make bench-json` needs no separately managed
// process. Point it at a running daemon with -addr to measure a real
// deployment.
//
// The hit ratio is enforced by key choice: "hit" requests draw their
// workload (the shd parameter) from a small warm pool that is primed
// before timing starts, so they are served from the evaluator's memo;
// "miss" requests use a counter-derived never-repeating workload, so
// they pay a cold solve. Comparing the hit-heavy and miss-heavy
// scenarios separates time spent in the model from time spent in the
// serving path — the latency-regression runbook in OPERATIONS.md builds
// on exactly that comparison.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"math"
	"math/rand"
	"net"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"swcc/internal/serve"
)

// loadConfig is one scenario's knobs.
type loadConfig struct {
	Concurrency int           // worker goroutines
	Duration    time.Duration // timed window per scenario
	HitRatio    float64       // fraction of requests drawn from the warm pool
	Mix         map[string]int
	WarmPool    int // distinct warm workloads
	Procs       int // machine size per query
	Seed        int64
}

// percentiles summarizes a latency sample in milliseconds.
type percentiles struct {
	P50  float64 `json:"p50_ms"`
	P90  float64 `json:"p90_ms"`
	P99  float64 `json:"p99_ms"`
	Mean float64 `json:"mean_ms"`
	Max  float64 `json:"max_ms"`
}

// summary is one scenario's result, the unit of the JSON report.
type summary struct {
	Label       string         `json:"label"`
	HitRatio    float64        `json:"hit_ratio"`
	Concurrency int            `json:"concurrency"`
	Duration    float64        `json:"duration_seconds"`
	Requests    int            `json:"requests"`
	Errors      int            `json:"errors"`
	RPS         float64        `json:"requests_per_second"`
	Latency     percentiles    `json:"latency"`
	Mix         map[string]int `json:"mix_counts"`
}

// report is the full document cohereload emits (BENCH_PR4.json's shape).
type report struct {
	Tool      string    `json:"tool"`
	Target    string    `json:"target"`
	Scenarios []summary `json:"scenarios"`
}

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "cohereload:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("cohereload", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", "", "target daemon host:port (empty = boot an in-process daemon)")
	conc := fs.Int("c", 8, "concurrent workers")
	dur := fs.Duration("d", 3*time.Second, "timed window per scenario")
	ratios := fs.String("hit-ratios", "0.95,0.05", "comma-separated cache-hit ratios, one scenario each")
	mixSpec := fs.String("mix", "point:4,curve:1,sweep:1", "request mix as kind:weight pairs (kinds: point, curve, sweep)")
	warmPool := fs.Int("warm-pool", 64, "distinct workloads in the warm (cache-hit) pool")
	procs := fs.Int("procs", 16, "machine size per query")
	seed := fs.Int64("seed", 1, "RNG seed for the request schedule")
	out := fs.String("out", "", "also write the JSON report to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	if *conc < 1 || *warmPool < 1 || *procs < 1 || *dur <= 0 {
		return fmt.Errorf("-c, -warm-pool, -procs must be >= 1 and -d > 0")
	}
	mix, err := parseMix(*mixSpec)
	if err != nil {
		return err
	}
	var hitRatios []float64
	for _, s := range strings.Split(*ratios, ",") {
		r, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
		if err != nil || r < 0 || r > 1 {
			return fmt.Errorf("-hit-ratios: %q is not a ratio in [0,1]", s)
		}
		hitRatios = append(hitRatios, r)
	}

	target := *addr
	if target == "" {
		stopSrv, bound, err := startLocalDaemon()
		if err != nil {
			return err
		}
		defer stopSrv()
		target = bound
		fmt.Fprintf(stderr, "cohereload: booted in-process daemon on %s\n", target)
	}
	base := "http://" + target

	rep := report{Tool: "cohereload", Target: target}
	for _, r := range hitRatios {
		cfg := loadConfig{
			Concurrency: *conc, Duration: *dur, HitRatio: r,
			Mix: mix, WarmPool: *warmPool, Procs: *procs, Seed: *seed,
		}
		s, err := runLoad(context.Background(), base, cfg)
		if err != nil {
			return err
		}
		rep.Scenarios = append(rep.Scenarios, s)
		fmt.Fprintf(stderr, "cohereload: %s: %d requests, %d errors, p50 %.3fms p99 %.3fms\n",
			s.Label, s.Requests, s.Errors, s.Latency.P50, s.Latency.P99)
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if _, err := stdout.Write(data); err != nil {
		return err
	}
	if *out != "" {
		if err := os.WriteFile(*out, data, 0o644); err != nil {
			return err
		}
	}
	return nil
}

// startLocalDaemon boots a serve.Server over real HTTP on an ephemeral
// loopback port and returns a stop func plus the bound host:port.
func startLocalDaemon() (func(), string, error) {
	srv := serve.NewServer(serve.Config{
		Logger: slog.New(slog.NewJSONHandler(io.Discard, nil)),
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, "", err
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	return func() { hs.Close() }, ln.Addr().String(), nil
}

// parseMix turns "point:4,curve:1,sweep:1" into weights.
func parseMix(spec string) (map[string]int, error) {
	mix := map[string]int{}
	total := 0
	for _, part := range strings.Split(spec, ",") {
		kind, weight, ok := strings.Cut(strings.TrimSpace(part), ":")
		if !ok {
			return nil, fmt.Errorf("-mix: %q is not kind:weight", part)
		}
		switch kind {
		case "point", "curve", "sweep":
		default:
			return nil, fmt.Errorf("-mix: unknown kind %q (want point, curve, or sweep)", kind)
		}
		w, err := strconv.Atoi(weight)
		if err != nil || w < 0 {
			return nil, fmt.Errorf("-mix: weight %q is not a non-negative integer", weight)
		}
		mix[kind] = w
		total += w
	}
	if total == 0 {
		return nil, fmt.Errorf("-mix: all weights are zero")
	}
	return mix, nil
}

// warmShd returns the i-th warm-pool workload's shd value.
func warmShd(i, pool int) float64 {
	return 0.1 + 0.8*float64(i)/float64(pool)
}

// missShd derives a practically never-repeating shd from a counter: the
// fractional part of n times the golden ratio walks the (0.1, 0.9) range
// without cycling, so each miss request is a distinct cache key. A rare
// float64-rounding collision only turns one intended miss into a hit,
// which biases the measured ratio, not the correctness.
func missShd(n uint64) float64 {
	const phi = 0.6180339887498949
	f := float64(n) * phi
	return 0.1 + 0.8*(f-math.Floor(f))
}

// runLoad primes the warm pool, then drives cfg's mix at cfg.Concurrency
// for cfg.Duration and summarizes the latencies.
func runLoad(ctx context.Context, base string, cfg loadConfig) (summary, error) {
	client := &http.Client{Timeout: 30 * time.Second}

	// Prime: every warm-pool key solved once, so in-window "hit"
	// requests measure the cache path, not a first-touch solve.
	for i := 0; i < cfg.WarmPool; i++ {
		body := pointBody(warmShd(i, cfg.WarmPool), cfg.Procs)
		if _, _, err := post(ctx, client, base+"/v1/bus", body); err != nil {
			return summary{}, fmt.Errorf("priming warm pool: %w", err)
		}
	}

	var kinds []string
	for kind, w := range cfg.Mix {
		for i := 0; i < w; i++ {
			kinds = append(kinds, kind)
		}
	}
	sort.Strings(kinds) // map order is random; the schedule should not be

	var (
		mu        sync.Mutex
		latencies []float64
		mixCounts = map[string]int{}
		errs      int
		requests  int
		missSeq   uint64 // claimed in batches, one per worker draw
		seqMu     sync.Mutex
	)
	nextMiss := func() uint64 {
		seqMu.Lock()
		defer seqMu.Unlock()
		missSeq++
		return missSeq
	}

	deadline := time.Now().Add(cfg.Duration)
	var wg sync.WaitGroup
	for w := 0; w < cfg.Concurrency; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed + int64(worker)))
			for time.Now().Before(deadline) && ctx.Err() == nil {
				kind := kinds[rng.Intn(len(kinds))]
				hit := rng.Float64() < cfg.HitRatio
				shd := func() float64 {
					if hit {
						return warmShd(rng.Intn(cfg.WarmPool), cfg.WarmPool)
					}
					return missShd(nextMiss())
				}
				var path, body string
				switch kind {
				case "point":
					path, body = "/v1/bus", pointBody(shd(), cfg.Procs)
				case "curve":
					path, body = "/v1/bus", curveBody(shd(), cfg.Procs)
				case "sweep":
					pts := make([]string, 8)
					for i := range pts {
						pts[i] = pointBody(shd(), cfg.Procs)
					}
					path, body = "/v1/sweep", `{"points": [`+strings.Join(pts, ",")+`]}`
				}
				start := time.Now()
				code, _, err := post(ctx, client, base+path, body)
				elapsed := time.Since(start).Seconds()
				mu.Lock()
				requests++
				mixCounts[kind]++
				if err != nil || code != http.StatusOK {
					errs++
				} else {
					latencies = append(latencies, elapsed)
				}
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()

	sort.Float64s(latencies)
	s := summary{
		Label:       fmt.Sprintf("hit_ratio_%g", cfg.HitRatio),
		HitRatio:    cfg.HitRatio,
		Concurrency: cfg.Concurrency,
		Duration:    cfg.Duration.Seconds(),
		Requests:    requests,
		Errors:      errs,
		RPS:         float64(requests) / cfg.Duration.Seconds(),
		Latency:     summarize(latencies),
		Mix:         mixCounts,
	}
	return s, nil
}

func pointBody(shd float64, procs int) string {
	return fmt.Sprintf(`{"scheme": "swflush", "params": {"shd": %g}, "procs": %d, "point": true}`, shd, procs)
}

func curveBody(shd float64, procs int) string {
	return fmt.Sprintf(`{"scheme": "swflush", "params": {"shd": %g}, "procs": %d}`, shd, procs)
}

func post(ctx context.Context, client *http.Client, url, body string) (int, []byte, error) {
	req, err := http.NewRequestWithContext(ctx, "POST", url, strings.NewReader(body))
	if err != nil {
		return 0, nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	return resp.StatusCode, data, err
}

// summarize computes percentiles from a sorted sample (milliseconds).
func summarize(sorted []float64) percentiles {
	if len(sorted) == 0 {
		return percentiles{}
	}
	q := func(p float64) float64 {
		i := int(math.Ceil(p*float64(len(sorted)))) - 1
		if i < 0 {
			i = 0
		}
		return sorted[i] * 1000
	}
	var sum float64
	for _, v := range sorted {
		sum += v
	}
	return percentiles{
		P50:  q(0.50),
		P90:  q(0.90),
		P99:  q(0.99),
		Mean: sum / float64(len(sorted)) * 1000,
		Max:  sorted[len(sorted)-1] * 1000,
	}
}
