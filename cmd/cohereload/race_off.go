//go:build !race

package main

// raceEnabled is false in normal builds: every gateway-drill gate,
// including the p99 band, is enforced (see race_on.go).
const raceEnabled = false
