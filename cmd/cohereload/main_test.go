package main

import (
	"bytes"
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"testing"
)

// TestLoadRunProducesReport runs a short two-scenario load against the
// in-process daemon and checks the report shape: both scenarios present,
// sane counts, ordered percentiles, and the -out file byte-identical to
// stdout.
func TestLoadRunProducesReport(t *testing.T) {
	outPath := filepath.Join(t.TempDir(), "bench.json")
	var stdout bytes.Buffer
	err := run([]string{
		"-c", "4", "-d", "300ms", "-hit-ratios", "1,0",
		"-warm-pool", "8", "-procs", "8", "-out", outPath,
	}, &stdout, io.Discard)
	if err != nil {
		t.Fatal(err)
	}

	var rep report
	if err := json.Unmarshal(stdout.Bytes(), &rep); err != nil {
		t.Fatalf("stdout is not the report JSON: %v\n%s", err, stdout.String())
	}
	if len(rep.Scenarios) != 2 {
		t.Fatalf("want 2 scenarios, got %d", len(rep.Scenarios))
	}
	for _, s := range rep.Scenarios {
		if s.Requests == 0 {
			t.Errorf("%s: no requests completed", s.Label)
		}
		if s.Errors != 0 {
			t.Errorf("%s: %d errors under a healthy local daemon", s.Label, s.Errors)
		}
		l := s.Latency
		if !(l.P50 <= l.P90 && l.P90 <= l.P99 && l.P99 <= l.Max) {
			t.Errorf("%s: percentiles out of order: %+v", s.Label, l)
		}
		if l.P50 <= 0 {
			t.Errorf("%s: nonpositive p50 %v", s.Label, l.P50)
		}
	}

	fileData, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(fileData, stdout.Bytes()) {
		t.Error("-out file differs from stdout report")
	}
}

// TestMissKeysDoNotRepeat pins the hit-ratio mechanism's miss half: the
// counter-derived workloads stay distinct for far more draws than a
// bench window issues.
func TestMissKeysDoNotRepeat(t *testing.T) {
	seen := make(map[float64]bool, 100000)
	for n := uint64(1); n <= 100000; n++ {
		v := missShd(n)
		if v <= 0 || v >= 1 {
			t.Fatalf("missShd(%d) = %v, outside (0,1)", n, v)
		}
		if seen[v] {
			t.Fatalf("missShd repeated a key at n=%d", n)
		}
		seen[v] = true
	}
}

// TestBadFlags checks malformed configuration errors out before any load
// is generated.
func TestBadFlags(t *testing.T) {
	for _, args := range [][]string{
		{"-hit-ratios", "1.5"},
		{"-hit-ratios", "nope"},
		{"-mix", "point"},
		{"-mix", "bogus:1"},
		{"-mix", "point:0,curve:0,sweep:0"},
		{"-c", "0"},
		{"-chaos", "-jobs"},
		{"-chaos", "-gw"},
		{"-jobs", "-gw"},
		{"-gw", "-addr", "localhost:8080"},
		{"positional"},
	} {
		if err := run(args, io.Discard, io.Discard); err == nil {
			t.Errorf("args %v accepted; want error", args)
		}
	}
}

// TestWorkerSeedDerivation pins the per-worker seed fix. The old
// cfg.Seed+worker derivation made adjacent runs replay each other's
// schedules (seed 1's worker 1 was seed 2's worker 0); the hashed
// derivation must keep every (seed, worker) stream distinct, and stay
// bit-stable so a chaos schedule can be replayed from its flags.
func TestWorkerSeedDerivation(t *testing.T) {
	golden := map[int]int64{
		0: 9129838320742759465,
		1: 2139811525164838579,
		2: 4875857236239627170,
		3: -8199743362588960697,
	}
	for w, want := range golden {
		if got := workerSeed(42, w); got != want {
			t.Errorf("workerSeed(42, %d) = %d, want %d — the schedule is no longer replayable", w, got, want)
		}
	}
	if workerSeed(1, 1) == workerSeed(2, 0) {
		t.Error("adjacent-run collision is back: workerSeed(1,1) == workerSeed(2,0)")
	}
	seen := map[int64]bool{}
	for seed := int64(0); seed < 8; seed++ {
		for w := 0; w < 64; w++ {
			s := workerSeed(seed, w)
			if seen[s] {
				t.Fatalf("duplicate worker seed at (seed=%d, worker=%d)", seed, w)
			}
			seen[s] = true
		}
	}
}

// TestMergeIntoReplacesLabels: rerunning a drill against an existing
// -out report must replace its old scenarios in place, not append
// duplicate labels for benchdiff to misread, while unseen labels append
// and non-cohereload files are left out of the merge.
func TestMergeIntoReplacesLabels(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "BENCH.json")
	prev := report{Tool: "cohereload", Scenarios: []summary{
		{Label: "hit_ratio_0.95", RPS: 100},
		{Label: "jobs_stream", RPS: 200},
	}}
	data, err := json.Marshal(prev)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, data, 0o644); err != nil {
		t.Fatal(err)
	}

	got := mergeInto(out, report{Tool: "cohereload", Scenarios: []summary{
		{Label: "jobs_stream", RPS: 300},
		{Label: "jobs_cancel", RPS: 400},
	}})
	if len(got.Scenarios) != 3 {
		t.Fatalf("merged %d scenarios, want 3 (replace, not append): %+v", len(got.Scenarios), got.Scenarios)
	}
	if got.Scenarios[1].Label != "jobs_stream" || got.Scenarios[1].RPS != 300 {
		t.Errorf("jobs_stream not replaced in place: %+v", got.Scenarios)
	}
	if got.Scenarios[2].Label != "jobs_cancel" || got.Scenarios[2].RPS != 400 {
		t.Errorf("new label not appended: %+v", got.Scenarios)
	}

	// A non-cohereload file (e.g. a stale test2json record) is not a
	// merge target; the fresh report stands alone.
	if err := os.WriteFile(out, []byte(`{"Time": "t", "Action": "start"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	got = mergeInto(out, report{Tool: "cohereload", Scenarios: []summary{{Label: "x"}}})
	if len(got.Scenarios) != 1 || got.Scenarios[0].Label != "x" {
		t.Errorf("non-cohereload file merged: %+v", got.Scenarios)
	}
}

// TestGwRun is the in-process version of `make gw-smoke`: the gateway
// drill must pass its own gates (affinity >= 1.5x round-robin's backend
// hit ratio with p99 no worse, clean failover, zero-solve warm restart)
// and emit all four gateway scenarios.
func TestGwRun(t *testing.T) {
	outPath := filepath.Join(t.TempDir(), "gw.json")
	var stdout bytes.Buffer
	err := run([]string{"-gw", "-c", "4", "-d", "400ms", "-out", outPath}, &stdout, io.Discard)
	if err != nil {
		t.Fatalf("gateway drill failed its gate: %v", err)
	}
	var rep report
	if err := json.Unmarshal(stdout.Bytes(), &rep); err != nil {
		t.Fatalf("stdout is not the report JSON: %v\n%s", err, stdout.String())
	}
	byLabel := map[string]summary{}
	for _, s := range rep.Scenarios {
		byLabel[s.Label] = s
	}
	for _, want := range []string{"gw_affinity", "gw_roundrobin", "gw_failover", "gw_warm_restart"} {
		if _, ok := byLabel[want]; !ok {
			t.Fatalf("scenario %q missing from report: %+v", want, rep.Scenarios)
		}
	}
	aff, rr := byLabel["gw_affinity"], byLabel["gw_roundrobin"]
	if aff.BackendHitRatio < gwHitRatioGate*rr.BackendHitRatio {
		t.Errorf("drill passed but recorded hit ratios violate the gate: affinity %.3f vs roundrobin %.3f",
			aff.BackendHitRatio, rr.BackendHitRatio)
	}
	if fo := byLabel["gw_failover"]; fo.StatusCounts["500"] != 0 || fo.StatusCounts["502"] != 0 {
		t.Errorf("failover scenario recorded 5xx: %v", fo.StatusCounts)
	}
	if wr := byLabel["gw_warm_restart"]; wr.Mix["restored_demand"] == 0 || wr.Mix["restored_curve"] == 0 {
		t.Errorf("warm restart restored nothing: %v", wr.Mix)
	}
}

// TestChaosRun is the in-process version of `make chaos-smoke`: the
// drill must pass its own gate (no 500s, nonzero sheds) and emit the
// chaos report block with both fleets present.
func TestChaosRun(t *testing.T) {
	outPath := filepath.Join(t.TempDir(), "chaos.json")
	var stdout bytes.Buffer
	err := run([]string{"-chaos", "-c", "12", "-d", "700ms", "-out", outPath}, &stdout, io.Discard)
	if err != nil {
		t.Fatalf("chaos drill failed its gate: %v", err)
	}
	var rep report
	if err := json.Unmarshal(stdout.Bytes(), &rep); err != nil {
		t.Fatalf("stdout is not the report JSON: %v\n%s", err, stdout.String())
	}
	if len(rep.Scenarios) != 2 || rep.Scenarios[0].Label != "chaos_patient" ||
		rep.Scenarios[1].Label != "chaos_abandoning" {
		t.Fatalf("want the patient and abandoning fleets, got %+v", rep.Scenarios)
	}
	if rep.Chaos == nil {
		t.Fatal("report has no chaos block")
	}
	if rep.Chaos.Sheds == 0 {
		t.Error("drill shed nothing yet passed — the gate is broken")
	}
	if rep.Chaos.ServerError500s != 0 {
		t.Errorf("daemon answered %d 500s under chaos", rep.Chaos.ServerError500s)
	}
	for _, s := range rep.Scenarios {
		if s.StatusCounts["200"] == 0 {
			t.Errorf("%s: no request ever succeeded", s.Label)
		}
		if s.StatusCounts["500"] != 0 {
			t.Errorf("%s: clients saw %d 500s", s.Label, s.StatusCounts["500"])
		}
	}
	if rep.Scenarios[1].ClientTimeouts == 0 {
		t.Error("abandoning fleet never abandoned a request")
	}
}
