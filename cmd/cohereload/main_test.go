package main

import (
	"bytes"
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"testing"
)

// TestLoadRunProducesReport runs a short two-scenario load against the
// in-process daemon and checks the report shape: both scenarios present,
// sane counts, ordered percentiles, and the -out file byte-identical to
// stdout.
func TestLoadRunProducesReport(t *testing.T) {
	outPath := filepath.Join(t.TempDir(), "bench.json")
	var stdout bytes.Buffer
	err := run([]string{
		"-c", "4", "-d", "300ms", "-hit-ratios", "1,0",
		"-warm-pool", "8", "-procs", "8", "-out", outPath,
	}, &stdout, io.Discard)
	if err != nil {
		t.Fatal(err)
	}

	var rep report
	if err := json.Unmarshal(stdout.Bytes(), &rep); err != nil {
		t.Fatalf("stdout is not the report JSON: %v\n%s", err, stdout.String())
	}
	if len(rep.Scenarios) != 2 {
		t.Fatalf("want 2 scenarios, got %d", len(rep.Scenarios))
	}
	for _, s := range rep.Scenarios {
		if s.Requests == 0 {
			t.Errorf("%s: no requests completed", s.Label)
		}
		if s.Errors != 0 {
			t.Errorf("%s: %d errors under a healthy local daemon", s.Label, s.Errors)
		}
		l := s.Latency
		if !(l.P50 <= l.P90 && l.P90 <= l.P99 && l.P99 <= l.Max) {
			t.Errorf("%s: percentiles out of order: %+v", s.Label, l)
		}
		if l.P50 <= 0 {
			t.Errorf("%s: nonpositive p50 %v", s.Label, l.P50)
		}
	}

	fileData, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(fileData, stdout.Bytes()) {
		t.Error("-out file differs from stdout report")
	}
}

// TestMissKeysDoNotRepeat pins the hit-ratio mechanism's miss half: the
// counter-derived workloads stay distinct for far more draws than a
// bench window issues.
func TestMissKeysDoNotRepeat(t *testing.T) {
	seen := make(map[float64]bool, 100000)
	for n := uint64(1); n <= 100000; n++ {
		v := missShd(n)
		if v <= 0 || v >= 1 {
			t.Fatalf("missShd(%d) = %v, outside (0,1)", n, v)
		}
		if seen[v] {
			t.Fatalf("missShd repeated a key at n=%d", n)
		}
		seen[v] = true
	}
}

// TestBadFlags checks malformed configuration errors out before any load
// is generated.
func TestBadFlags(t *testing.T) {
	for _, args := range [][]string{
		{"-hit-ratios", "1.5"},
		{"-hit-ratios", "nope"},
		{"-mix", "point"},
		{"-mix", "bogus:1"},
		{"-mix", "point:0,curve:0,sweep:0"},
		{"-c", "0"},
		{"positional"},
	} {
		if err := run(args, io.Discard, io.Discard); err == nil {
			t.Errorf("args %v accepted; want error", args)
		}
	}
}
