//go:build race

package main

// raceEnabled reports that this binary carries the race detector, whose
// instrumentation distorts latency tails enough to invert the gateway
// drill's affinity-vs-round-robin p99 comparison; timing gates relax to
// informational under it while the structural gates (hit ratio, error
// counts, warm-restart solve counts) stay hard.
const raceEnabled = true
