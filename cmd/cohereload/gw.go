package main

// The -gw drill: an in-process rehearsal of the cache-affinity tier.
// It boots real cohered backends (serve.Server over loopback HTTP) and
// a real gateway (internal/gw), then measures exactly the claim the
// gateway exists for — that routing by canonical cache key keeps the
// fleet's memo caches hot where round-robin churns them — and verifies
// the failure-path promises: a killed backend never surfaces as a
// client 500, a snapshot-restarted backend serves its old working set
// without re-solving, hedged requests cut an injected latency tail
// without amplifying backend load past the hedge band, and a live
// backend-set reload adds and drains backends mid-load with zero
// client-visible 5xx. `make gw-smoke` runs this and fails the build
// when any of those regress.

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"math/rand"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"swcc/internal/fault"
	"swcc/internal/gw"
	"swcc/internal/serve"
	"swcc/internal/sweep"
)

// Drill geometry. The warm pool deliberately exceeds what one backend's
// capped cache can hold but not what the two-backend fleet holds in
// aggregate: under affinity each backend's ~half-share of the pool fits
// its cap and stays resident, while under round-robin every backend
// eventually sees every key and its CLOCK churns. The cap sits between
// half the pool (plus rendezvous skew) and the pool itself — that
// window is where the policies separate.
const (
	gwWarmPool = 512  // distinct workloads in the bench pool
	gwCacheCap = 310  // per-backend cache cap (demand and curve entries each)
	gwProcs    = 1024 // machine size per query: misses pay a real MVA ramp
)

// gwHitRatioGate and gwP99Band are the drill's self-gate: affinity must
// beat round-robin on aggregate backend hit ratio by at least the gate
// factor, with client p99 no worse than the band allows.
const (
	gwHitRatioGate = 1.5
	gwP99Band      = 1.05
)

// Hedging-drill geometry. Each backend carries a seeded fault injector
// whose only fault is latency: gwTailP of requests sleep gwTailLatency,
// a tail far past the fixed gwHedgeDelay. With tails independent across
// backends, an unhedged arm's p99 sits on the injected sleep (tailP >
// 1%) while the hedged arm's p99 collapses to roughly the hedge delay
// (both lanes slow only tailP² of the time, well under 1%). The load
// band bounds the cost: sends may exceed client requests only by the
// hedge rate, which tracks tailP and must stay under gwHedgeLoadBand.
const (
	gwHedgePool     = 64
	gwTailLatency   = 120 * time.Millisecond
	gwTailP         = 0.06
	gwHedgeDelay    = 25 * time.Millisecond
	gwHedgeLoadBand = 1.10
)

// gwBackend is one in-process cohered replica under the drill gateway.
type gwBackend struct {
	srv *serve.Server
	hs  *http.Server
	url string
}

// startGwBackend boots a serve.Server on an ephemeral loopback port,
// cache-capped when cacheCap > 0 and chaos-armed when inj is non-nil.
func startGwBackend(cacheCap int, inj *fault.Injector) (*gwBackend, error) {
	srv := serve.NewServer(serve.Config{
		CacheCap: cacheCap,
		Fault:    inj,
		Logger:   slog.New(slog.NewJSONHandler(io.Discard, nil)),
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	return &gwBackend{srv: srv, hs: hs, url: "http://" + ln.Addr().String()}, nil
}

// stop hard-closes the backend: listener, in-flight connections, jobs.
func (b *gwBackend) stop() {
	b.hs.Close()
	b.srv.Close()
}

// startGwTierCfg boots a gateway with the given config (Backends filled
// from the backend list) and returns the gateway itself — the reload
// drill drives Gateway.Reload on it — plus its base URL and a stop
// func. The prober runs fast (failover inside a sub-second drill
// window) and the first probe round has settled before this returns.
func startGwTierCfg(cfg gw.Config, backends []*gwBackend) (*gw.Gateway, string, func(), error) {
	urls := make([]string, len(backends))
	for i, b := range backends {
		urls[i] = b.url
	}
	cfg.Backends = urls
	cfg.CheckInterval = 100 * time.Millisecond
	cfg.CheckTimeout = time.Second
	cfg.FailThreshold = 1
	// Warn level: the gateway's per-request access log would otherwise
	// pay JSON formatting on every drill request even into io.Discard.
	cfg.Logger = slog.New(slog.NewJSONHandler(io.Discard, &slog.HandlerOptions{Level: slog.LevelWarn}))
	g, err := gw.New(cfg)
	if err != nil {
		return nil, "", nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	go g.Run(ctx)
	g.CheckNow(ctx)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		cancel()
		return nil, "", nil, err
	}
	hs := &http.Server{Handler: g.Handler()}
	go hs.Serve(ln)
	stop := func() {
		cancel()
		hs.Close()
	}
	return g, "http://" + ln.Addr().String(), stop, nil
}

// startGwTier is startGwTierCfg with only a policy to set.
func startGwTier(policy string, backends []*gwBackend) (string, func(), error) {
	_, base, stop, err := startGwTierCfg(gw.Config{Policy: policy}, backends)
	return base, stop, err
}

// scrapeStats reads one backend's evaluator counters off its /healthz.
func scrapeStats(client *http.Client, baseURL string) (sweep.Stats, error) {
	resp, err := client.Get(baseURL + "/healthz")
	if err != nil {
		return sweep.Stats{}, err
	}
	defer resp.Body.Close()
	var h struct {
		Cache sweep.Stats `json:"cache"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		return sweep.Stats{}, err
	}
	return h.Cache, nil
}

// fleetHitRatio aggregates the fleet's cache-hit ratio over the window
// between two stats snapshots: summed hit deltas over summed lookup
// deltas, each backend's numbers from its own accounting.
func fleetHitRatio(before, after []sweep.Stats) float64 {
	var hits, lookups uint64
	for i := range after {
		h := (after[i].DemandHits - before[i].DemandHits) + (after[i].MVAHits - before[i].MVAHits)
		s := (after[i].DemandSolves - before[i].DemandSolves) + (after[i].MVASolves - before[i].MVASolves)
		hits += h
		lookups += h + s
	}
	if lookups == 0 {
		return 0
	}
	return float64(hits) / float64(lookups)
}

// gwPointBody is the drill's request: a single point on a gwProcs-sized
// machine, so a cache miss pays the full incremental-MVA ramp while a
// hit is a lookup — the cost asymmetry the hit ratio turns into latency.
func gwPointBody(shd float64) string {
	return fmt.Sprintf(`{"scheme": "swflush", "params": {"shd": %g}, "procs": %d, "point": true}`, shd, gwProcs)
}

// gwBenchArm runs one policy's arm of the comparison: fresh capped
// backends, fresh gateway, the whole pool primed once through the
// gateway, then a timed all-warm window. Returns the scenario summary
// (BackendHitRatio populated) for the gate.
func gwBenchArm(policy, label string, conc int, dur time.Duration, seed int64) (summary, error) {
	var backends []*gwBackend
	for i := 0; i < 2; i++ {
		b, err := startGwBackend(gwCacheCap, nil)
		if err != nil {
			return summary{}, err
		}
		defer b.stop()
		backends = append(backends, b)
	}
	base, stopGw, err := startGwTier(policy, backends)
	if err != nil {
		return summary{}, err
	}
	defer stopGw()

	client := newClient(30 * time.Second)
	for i := 0; i < gwWarmPool; i++ {
		code, body, err := post(context.Background(), client, base+"/v1/bus", gwPointBody(warmShd(i, gwWarmPool)))
		if err != nil || code != http.StatusOK {
			return summary{}, fmt.Errorf("%s: priming pool: status %d err %v body %s", label, code, err, body)
		}
	}
	before := make([]sweep.Stats, len(backends))
	for i, b := range backends {
		if before[i], err = scrapeStats(client, b.url); err != nil {
			return summary{}, fmt.Errorf("%s: scraping %s: %w", label, b.url, err)
		}
	}

	var (
		mu        sync.Mutex
		latencies []float64
		requests  int
		errs      int
	)
	deadline := time.Now().Add(dur)
	var wg sync.WaitGroup
	for w := 0; w < conc; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(workerSeed(seed, worker)))
			for time.Now().Before(deadline) {
				body := gwPointBody(warmShd(rng.Intn(gwWarmPool), gwWarmPool))
				start := time.Now()
				code, _, err := post(context.Background(), client, base+"/v1/bus", body)
				elapsed := time.Since(start).Seconds()
				mu.Lock()
				requests++
				if err != nil || code != http.StatusOK {
					errs++
				} else {
					latencies = append(latencies, elapsed)
				}
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()

	after := make([]sweep.Stats, len(backends))
	for i, b := range backends {
		if after[i], err = scrapeStats(client, b.url); err != nil {
			return summary{}, fmt.Errorf("%s: scraping %s: %w", label, b.url, err)
		}
	}
	sort.Float64s(latencies)
	return summary{
		Label:           label,
		HitRatio:        1, // the schedule draws only warm-pool keys
		Concurrency:     conc,
		Duration:        dur.Seconds(),
		Requests:        requests,
		Errors:          errs,
		RPS:             float64(requests) / dur.Seconds(),
		Latency:         summarize(latencies),
		Mix:             map[string]int{"point": requests},
		BackendHitRatio: fleetHitRatio(before, after),
	}, nil
}

// gwFailover drives load through an affinity gateway and hard-kills one
// backend a third of the way in. The surviving window must stay clean:
// the gateway retries transport failures onto the survivor, so clients
// may see retried latency but never a 500 or a gateway-minted 502.
func gwFailover(conc int, dur time.Duration, seed int64) (summary, error) {
	var backends []*gwBackend
	for i := 0; i < 2; i++ {
		b, err := startGwBackend(0, nil)
		if err != nil {
			return summary{}, err
		}
		defer b.stop()
		backends = append(backends, b)
	}
	base, stopGw, err := startGwTier(gw.PolicyAffinity, backends)
	if err != nil {
		return summary{}, err
	}
	defer stopGw()

	client := newClient(10 * time.Second)
	kill := time.AfterFunc(dur/3, func() { backends[0].stop() })
	defer kill.Stop()

	var (
		mu       sync.Mutex
		status   = map[string]int{}
		requests int
		errs     int
	)
	deadline := time.Now().Add(dur)
	var wg sync.WaitGroup
	for w := 0; w < conc; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(workerSeed(seed, worker)))
			for time.Now().Before(deadline) {
				body := gwPointBody(warmShd(rng.Intn(64), 64))
				code, _, err := post(context.Background(), client, base+"/v1/bus", body)
				mu.Lock()
				requests++
				if err != nil {
					errs++
				} else {
					status[fmt.Sprint(code)]++
				}
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()

	s := summary{
		Label:        "gw_failover",
		Concurrency:  conc,
		Duration:     dur.Seconds(),
		Requests:     requests,
		Errors:       errs,
		RPS:          float64(requests) / dur.Seconds(),
		Mix:          map[string]int{"point": requests},
		StatusCounts: status,
	}
	if status["500"] > 0 || status["502"] > 0 {
		return s, fmt.Errorf("gw_failover: clients saw %d 500s and %d 502s after a backend kill — failover must absorb it",
			status["500"], status["502"])
	}
	if status["200"] == 0 {
		return s, fmt.Errorf("gw_failover: no request ever succeeded")
	}
	return s, nil
}

// gwWarmRestart rehearses the snapshot lifecycle end to end on a real
// replica: warm it over HTTP, stop it, snapshot, boot a successor from
// the file, and require the successor to serve the old working set with
// zero new solves — the cold-start ramp the snapshot exists to skip.
func gwWarmRestart() (summary, error) {
	const keys = 16
	dir, err := os.MkdirTemp("", "cohereload-gw-*")
	if err != nil {
		return summary{}, err
	}
	defer os.RemoveAll(dir)
	snapPath := filepath.Join(dir, "memo.snap")

	first, err := startGwBackend(0, nil)
	if err != nil {
		return summary{}, err
	}
	stopped := false
	defer func() {
		if !stopped {
			first.stop()
		}
	}()
	client := newClient(30 * time.Second)
	for i := 0; i < keys; i++ {
		code, _, err := post(context.Background(), client, first.url+"/v1/bus", gwPointBody(warmShd(i, keys)))
		if err != nil || code != http.StatusOK {
			return summary{}, fmt.Errorf("gw_warm_restart: warming: status %d err %v", code, err)
		}
	}
	first.stop()
	stopped = true
	counts, err := first.srv.Evaluator().WriteSnapshotFile(snapPath)
	if err != nil {
		return summary{}, fmt.Errorf("gw_warm_restart: writing snapshot: %w", err)
	}
	if counts.DemandEntries == 0 || counts.CurveEntries == 0 {
		return summary{}, fmt.Errorf("gw_warm_restart: snapshot captured nothing: %+v", counts)
	}

	second, err := startGwBackend(0, nil)
	if err != nil {
		return summary{}, err
	}
	defer second.stop()
	restored, err := second.srv.Evaluator().LoadSnapshotFile(snapPath)
	if err != nil {
		return summary{}, fmt.Errorf("gw_warm_restart: restoring snapshot: %w", err)
	}
	if restored != counts {
		return summary{}, fmt.Errorf("gw_warm_restart: restored %+v of snapshot %+v", restored, counts)
	}
	for i := 0; i < keys; i++ {
		code, _, err := post(context.Background(), client, second.url+"/v1/bus", gwPointBody(warmShd(i, keys)))
		if err != nil || code != http.StatusOK {
			return summary{}, fmt.Errorf("gw_warm_restart: replaying: status %d err %v", code, err)
		}
	}
	st, err := scrapeStats(client, second.url)
	if err != nil {
		return summary{}, err
	}
	if st.DemandSolves != 0 || st.CurveFullSolves != 0 {
		return summary{}, fmt.Errorf("gw_warm_restart: successor re-solved (%d demand, %d full MVA) — the snapshot did not skip the ramp",
			st.DemandSolves, st.CurveFullSolves)
	}
	if st.DemandHits == 0 || st.MVAHits == 0 {
		return summary{}, fmt.Errorf("gw_warm_restart: successor recorded no cache hits: %+v", st)
	}
	return summary{
		Label:    "gw_warm_restart",
		Requests: keys,
		Mix: map[string]int{
			"restored_demand": restored.DemandEntries,
			"restored_curve":  restored.CurveEntries,
		},
	}, nil
}

// gwTierView is the slice of the gateway's own /healthz the drills
// scrape: reload count plus per-backend send counters.
type gwTierView struct {
	Reloads  int64
	Sends    int64
	Backends []string
}

// scrapeGwTier reads the gateway's /healthz aggregation.
func scrapeGwTier(client *http.Client, base string) (gwTierView, error) {
	resp, err := client.Get(base + "/healthz")
	if err != nil {
		return gwTierView{}, err
	}
	defer resp.Body.Close()
	var h struct {
		Reloads  int64 `json:"reloads"`
		Backends []struct {
			URL   string `json:"url"`
			Sends int64  `json:"sends"`
		} `json:"backends"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		return gwTierView{}, err
	}
	v := gwTierView{Reloads: h.Reloads}
	for _, b := range h.Backends {
		v.Sends += b.Sends
		v.Backends = append(v.Backends, b.URL)
	}
	return v, nil
}

// gwHedgeArm runs one arm of the hedging comparison: two tail-injected
// backends, both pre-warmed on the whole pool directly (so the window
// measures the injected tail, not solve time), then a timed all-warm
// window through the gateway with hedging on or off. Both arms run the
// same seed, so the injectors draw the same tail schedule and the only
// difference is whether the gateway races a second backend past it.
// BackendSendRatio comes from the gateway's own send counters over the
// window — the backend-load amplification the hedge band gates.
func gwHedgeArm(label string, hedged bool, conc int, dur time.Duration, seed int64) (summary, error) {
	var backends []*gwBackend
	for i := 0; i < 2; i++ {
		inj := fault.New(fault.Config{
			Seed:     seed + int64(i),
			Latency:  gwTailLatency,
			LatencyP: gwTailP,
		})
		b, err := startGwBackend(0, inj)
		if err != nil {
			return summary{}, err
		}
		defer b.stop()
		backends = append(backends, b)
	}
	_, base, stopGw, err := startGwTierCfg(gw.Config{
		Policy:     gw.PolicyAffinity,
		Hedge:      hedged,
		HedgeDelay: gwHedgeDelay,
	}, backends)
	if err != nil {
		return summary{}, err
	}
	defer stopGw()

	// Warm every backend on every key directly: a hedge must find the
	// second-ranked backend as warm as the owner, exactly the deployed
	// steady state the response tail rides on.
	client := newClient(30 * time.Second)
	for i := 0; i < gwHedgePool; i++ {
		for _, b := range backends {
			code, body, err := post(context.Background(), client, b.url+"/v1/bus", gwPointBody(warmShd(i, gwHedgePool)))
			if err != nil || code != http.StatusOK {
				return summary{}, fmt.Errorf("%s: warming %s: status %d err %v body %s", label, b.url, code, err, body)
			}
		}
	}
	before, err := scrapeGwTier(client, base)
	if err != nil {
		return summary{}, fmt.Errorf("%s: scraping gateway: %w", label, err)
	}

	var (
		mu        sync.Mutex
		latencies []float64
		requests  int
		errs      int
	)
	deadline := time.Now().Add(dur)
	var wg sync.WaitGroup
	for w := 0; w < conc; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(workerSeed(seed, worker)))
			for time.Now().Before(deadline) {
				body := gwPointBody(warmShd(rng.Intn(gwHedgePool), gwHedgePool))
				start := time.Now()
				code, _, err := post(context.Background(), client, base+"/v1/bus", body)
				elapsed := time.Since(start).Seconds()
				mu.Lock()
				requests++
				if err != nil || code != http.StatusOK {
					errs++
				} else {
					latencies = append(latencies, elapsed)
				}
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()

	after, err := scrapeGwTier(client, base)
	if err != nil {
		return summary{}, fmt.Errorf("%s: scraping gateway: %w", label, err)
	}
	sendRatio := 0.0
	if requests > 0 {
		sendRatio = float64(after.Sends-before.Sends) / float64(requests)
	}
	sort.Float64s(latencies)
	return summary{
		Label:            label,
		HitRatio:         1,
		Concurrency:      conc,
		Duration:         dur.Seconds(),
		Requests:         requests,
		Errors:           errs,
		RPS:              float64(requests) / dur.Seconds(),
		Latency:          summarize(latencies),
		Mix:              map[string]int{"point": requests},
		BackendSendRatio: sendRatio,
	}, nil
}

// gwReload drives load through an affinity gateway while the backend
// set changes shape under it: a third backend joins a third of the way
// in, then the original first backend leaves at two thirds — the
// SIGHUP lifecycle, minus the signal. Both transitions must be
// invisible to clients: zero transport errors, zero 5xx, and the
// gateway's final /healthz must show exactly the post-reload fleet.
func gwReload(conc int, dur time.Duration, seed int64) (summary, error) {
	var backends []*gwBackend
	for i := 0; i < 3; i++ {
		b, err := startGwBackend(0, nil)
		if err != nil {
			return summary{}, err
		}
		defer b.stop()
		backends = append(backends, b)
	}
	g, base, stopGw, err := startGwTierCfg(gw.Config{Policy: gw.PolicyAffinity}, backends[:2])
	if err != nil {
		return summary{}, err
	}
	defer stopGw()

	client := newClient(10 * time.Second)
	reloadErr := make(chan error, 1)
	go func() {
		time.Sleep(dur / 3)
		if _, err := g.Reload([]string{backends[0].url, backends[1].url, backends[2].url}); err != nil {
			reloadErr <- fmt.Errorf("growing the set: %w", err)
			return
		}
		time.Sleep(dur / 3)
		if _, err := g.Reload([]string{backends[1].url, backends[2].url}); err != nil {
			reloadErr <- fmt.Errorf("shrinking the set: %w", err)
			return
		}
		reloadErr <- nil
	}()

	var (
		mu        sync.Mutex
		latencies []float64
		status    = map[string]int{}
		requests  int
		errs      int
	)
	deadline := time.Now().Add(dur)
	var wg sync.WaitGroup
	for w := 0; w < conc; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(workerSeed(seed, worker)))
			for time.Now().Before(deadline) {
				body := gwPointBody(warmShd(rng.Intn(64), 64))
				start := time.Now()
				code, _, err := post(context.Background(), client, base+"/v1/bus", body)
				elapsed := time.Since(start).Seconds()
				mu.Lock()
				requests++
				if err != nil {
					errs++
				} else {
					status[fmt.Sprint(code)]++
					if code == http.StatusOK {
						latencies = append(latencies, elapsed)
					}
				}
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()

	sort.Float64s(latencies)
	s := summary{
		Label:        "gw_reload",
		Concurrency:  conc,
		Duration:     dur.Seconds(),
		Requests:     requests,
		Errors:       errs,
		RPS:          float64(requests) / dur.Seconds(),
		Latency:      summarize(latencies),
		Mix:          map[string]int{"point": requests},
		StatusCounts: status,
	}
	if err := <-reloadErr; err != nil {
		return s, fmt.Errorf("gw_reload: %w", err)
	}
	if errs > 0 {
		return s, fmt.Errorf("gw_reload: %d transport errors while the backend set changed shape", errs)
	}
	for code, n := range status {
		if n > 0 && strings.HasPrefix(code, "5") {
			return s, fmt.Errorf("gw_reload: clients saw %d %ss during reloads — membership changes must be invisible", n, code)
		}
	}
	if status["200"] == 0 {
		return s, fmt.Errorf("gw_reload: no request ever succeeded")
	}
	view, err := scrapeGwTier(client, base)
	if err != nil {
		return s, fmt.Errorf("gw_reload: scraping gateway: %w", err)
	}
	if view.Reloads != 2 || len(view.Backends) != 2 {
		return s, fmt.Errorf("gw_reload: gateway shows %d reloads over %d backends, want 2 over 2", view.Reloads, len(view.Backends))
	}
	for _, u := range view.Backends {
		if u == backends[0].url {
			return s, fmt.Errorf("gw_reload: removed backend %s still in the routing set", u)
		}
	}
	return s, nil
}

// runGw runs the full gateway drill and writes the report. Any phase
// failing its gate fails the process, so `make gw-smoke` is a build
// gate, not a report generator.
func runGw(stdout, stderr io.Writer, conc int, dur time.Duration, seed int64, outPath string) error {
	rep := report{Tool: "cohereload", Target: "in-process gateway fleet (gw)"}

	affinity, err := gwBenchArm(gw.PolicyAffinity, "gw_affinity", conc, dur, seed)
	if err != nil {
		return err
	}
	rr, err := gwBenchArm(gw.PolicyRoundRobin, "gw_roundrobin", conc, dur, seed+1)
	if err != nil {
		return err
	}
	rep.Scenarios = append(rep.Scenarios, affinity, rr)
	for _, s := range []summary{affinity, rr} {
		fmt.Fprintf(stderr, "cohereload: %s: %d requests, %d errors, backend hit ratio %.3f, p99 %.3fms\n",
			s.Label, s.Requests, s.Errors, s.BackendHitRatio, s.Latency.P99)
	}
	if affinity.Errors > 0 || rr.Errors > 0 {
		return fmt.Errorf("gw bench: errors under healthy fleets (affinity %d, roundrobin %d)", affinity.Errors, rr.Errors)
	}
	if rr.BackendHitRatio <= 0 {
		return fmt.Errorf("gw bench: round-robin arm recorded no lookups")
	}
	if gain := affinity.BackendHitRatio / rr.BackendHitRatio; gain < gwHitRatioGate {
		return fmt.Errorf("gw bench: affinity hit ratio %.3f is only %.2fx round-robin's %.3f (gate %.1fx)",
			affinity.BackendHitRatio, gain, rr.BackendHitRatio, gwHitRatioGate)
	}
	if affinity.Latency.P99 > rr.Latency.P99*gwP99Band {
		// The race detector's instrumentation perturbs latency tails far
		// past the band, so race builds (`go test -race`) report the
		// miss instead of failing; normal builds — `make gw-smoke` and
		// the bench-json record benchdiff gates — enforce it.
		if !raceEnabled {
			return fmt.Errorf("gw bench: affinity p99 %.3fms worse than round-robin's %.3fms (band %.2fx)",
				affinity.Latency.P99, rr.Latency.P99, gwP99Band)
		}
		fmt.Fprintf(stderr, "cohereload: gw: affinity p99 %.3fms over round-robin's %.3fms band — informational under the race detector\n",
			affinity.Latency.P99, rr.Latency.P99)
	}

	// The hedging comparison runs both arms on the same seed: same tail
	// schedule, same key draws, hedging the only variable. The drill
	// gates the whole claim — a cut tail for bounded extra backend load.
	unhedged, err := gwHedgeArm("gw_unhedged", false, conc, dur, seed+3)
	if err != nil {
		return err
	}
	hedged, err := gwHedgeArm("gw_hedged", true, conc, dur, seed+3)
	if err != nil {
		return err
	}
	rep.Scenarios = append(rep.Scenarios, unhedged, hedged)
	for _, s := range []summary{unhedged, hedged} {
		fmt.Fprintf(stderr, "cohereload: %s: %d requests, %d errors, p99 %.3fms, backend send ratio %.3f\n",
			s.Label, s.Requests, s.Errors, s.Latency.P99, s.BackendSendRatio)
	}
	if unhedged.Errors > 0 || hedged.Errors > 0 {
		return fmt.Errorf("gw hedge: errors under latency-only injection (unhedged %d, hedged %d)", unhedged.Errors, hedged.Errors)
	}
	if unhedged.Latency.P99 < float64(gwTailLatency.Milliseconds()) {
		return fmt.Errorf("gw hedge: unhedged p99 %.3fms never reached the %.0fms injected tail — the drill measured nothing",
			unhedged.Latency.P99, float64(gwTailLatency.Milliseconds()))
	}
	if hedged.Latency.P99 >= unhedged.Latency.P99 {
		return fmt.Errorf("gw hedge: hedged p99 %.3fms did not cut the unhedged %.3fms tail",
			hedged.Latency.P99, unhedged.Latency.P99)
	}
	if hedged.BackendSendRatio > gwHedgeLoadBand {
		return fmt.Errorf("gw hedge: backend send ratio %.3f exceeds the %.2fx load band — hedging is over-firing",
			hedged.BackendSendRatio, gwHedgeLoadBand)
	}

	failover, err := gwFailover(conc, dur, seed+2)
	if len(failover.StatusCounts) > 0 || failover.Requests > 0 {
		rep.Scenarios = append(rep.Scenarios, failover)
	}
	if err != nil {
		return err
	}
	fmt.Fprintf(stderr, "cohereload: gw_failover: %d requests, status %v, %d transport errors, backend killed mid-load\n",
		failover.Requests, failover.StatusCounts, failover.Errors)

	reload, err := gwReload(conc, dur, seed+4)
	if reload.Requests > 0 {
		rep.Scenarios = append(rep.Scenarios, reload)
	}
	if err != nil {
		return err
	}
	fmt.Fprintf(stderr, "cohereload: gw_reload: %d requests, status %v, backend added then removed mid-load\n",
		reload.Requests, reload.StatusCounts)

	restart, err := gwWarmRestart()
	if err != nil {
		return err
	}
	rep.Scenarios = append(rep.Scenarios, restart)
	fmt.Fprintf(stderr, "cohereload: gw_warm_restart: %d demand + %d curve entries restored, zero re-solves\n",
		restart.Mix["restored_demand"], restart.Mix["restored_curve"])

	// Like the jobs drill, -out pointing at an existing cohereload
	// report merges these scenarios so one BENCH_PR record can carry
	// the latency mixes and the gateway drill together.
	rep = mergeInto(outPath, rep)
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if _, err := stdout.Write(data); err != nil {
		return err
	}
	if outPath != "" {
		if err := os.WriteFile(outPath, data, 0o644); err != nil {
			return err
		}
	}
	return nil
}
