package main

// The -gw drill: an in-process rehearsal of the cache-affinity tier.
// It boots real cohered backends (serve.Server over loopback HTTP) and
// a real gateway (internal/gw), then measures exactly the claim the
// gateway exists for — that routing by canonical cache key keeps the
// fleet's memo caches hot where round-robin churns them — and verifies
// the two failure-path promises: a killed backend never surfaces as a
// client 500, and a snapshot-restarted backend serves its old working
// set without re-solving. `make gw-smoke` runs this and fails the build
// when any of those regress.

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"math/rand"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"swcc/internal/gw"
	"swcc/internal/serve"
	"swcc/internal/sweep"
)

// Drill geometry. The warm pool deliberately exceeds what one backend's
// capped cache can hold but not what the two-backend fleet holds in
// aggregate: under affinity each backend's ~half-share of the pool fits
// its cap and stays resident, while under round-robin every backend
// eventually sees every key and its CLOCK churns. The cap sits between
// half the pool (plus rendezvous skew) and the pool itself — that
// window is where the policies separate.
const (
	gwWarmPool = 512  // distinct workloads in the bench pool
	gwCacheCap = 310  // per-backend cache cap (demand and curve entries each)
	gwProcs    = 1024 // machine size per query: misses pay a real MVA ramp
)

// gwHitRatioGate and gwP99Band are the drill's self-gate: affinity must
// beat round-robin on aggregate backend hit ratio by at least the gate
// factor, with client p99 no worse than the band allows.
const (
	gwHitRatioGate = 1.5
	gwP99Band      = 1.05
)

// gwBackend is one in-process cohered replica under the drill gateway.
type gwBackend struct {
	srv *serve.Server
	hs  *http.Server
	url string
}

// startGwBackend boots a serve.Server on an ephemeral loopback port,
// cache-capped when cacheCap > 0.
func startGwBackend(cacheCap int) (*gwBackend, error) {
	srv := serve.NewServer(serve.Config{
		CacheCap: cacheCap,
		Logger:   slog.New(slog.NewJSONHandler(io.Discard, nil)),
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	return &gwBackend{srv: srv, hs: hs, url: "http://" + ln.Addr().String()}, nil
}

// stop hard-closes the backend: listener, in-flight connections, jobs.
func (b *gwBackend) stop() {
	b.hs.Close()
	b.srv.Close()
}

// startGwTier boots a gateway over the given backends and returns its
// base URL plus a stop func. The prober runs fast (failover inside a
// sub-second drill window) and the first probe round has settled before
// this returns.
func startGwTier(policy string, backends []*gwBackend) (string, func(), error) {
	urls := make([]string, len(backends))
	for i, b := range backends {
		urls[i] = b.url
	}
	g, err := gw.New(gw.Config{
		Backends:      urls,
		Policy:        policy,
		CheckInterval: 100 * time.Millisecond,
		CheckTimeout:  time.Second,
		FailThreshold: 1,
		Logger:        slog.New(slog.NewJSONHandler(io.Discard, nil)),
	})
	if err != nil {
		return "", nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	go g.Run(ctx)
	g.CheckNow(ctx)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		cancel()
		return "", nil, err
	}
	hs := &http.Server{Handler: g.Handler()}
	go hs.Serve(ln)
	stop := func() {
		cancel()
		hs.Close()
	}
	return "http://" + ln.Addr().String(), stop, nil
}

// scrapeStats reads one backend's evaluator counters off its /healthz.
func scrapeStats(client *http.Client, baseURL string) (sweep.Stats, error) {
	resp, err := client.Get(baseURL + "/healthz")
	if err != nil {
		return sweep.Stats{}, err
	}
	defer resp.Body.Close()
	var h struct {
		Cache sweep.Stats `json:"cache"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		return sweep.Stats{}, err
	}
	return h.Cache, nil
}

// fleetHitRatio aggregates the fleet's cache-hit ratio over the window
// between two stats snapshots: summed hit deltas over summed lookup
// deltas, each backend's numbers from its own accounting.
func fleetHitRatio(before, after []sweep.Stats) float64 {
	var hits, lookups uint64
	for i := range after {
		h := (after[i].DemandHits - before[i].DemandHits) + (after[i].MVAHits - before[i].MVAHits)
		s := (after[i].DemandSolves - before[i].DemandSolves) + (after[i].MVASolves - before[i].MVASolves)
		hits += h
		lookups += h + s
	}
	if lookups == 0 {
		return 0
	}
	return float64(hits) / float64(lookups)
}

// gwPointBody is the drill's request: a single point on a gwProcs-sized
// machine, so a cache miss pays the full incremental-MVA ramp while a
// hit is a lookup — the cost asymmetry the hit ratio turns into latency.
func gwPointBody(shd float64) string {
	return fmt.Sprintf(`{"scheme": "swflush", "params": {"shd": %g}, "procs": %d, "point": true}`, shd, gwProcs)
}

// gwBenchArm runs one policy's arm of the comparison: fresh capped
// backends, fresh gateway, the whole pool primed once through the
// gateway, then a timed all-warm window. Returns the scenario summary
// (BackendHitRatio populated) for the gate.
func gwBenchArm(policy, label string, conc int, dur time.Duration, seed int64) (summary, error) {
	var backends []*gwBackend
	for i := 0; i < 2; i++ {
		b, err := startGwBackend(gwCacheCap)
		if err != nil {
			return summary{}, err
		}
		defer b.stop()
		backends = append(backends, b)
	}
	base, stopGw, err := startGwTier(policy, backends)
	if err != nil {
		return summary{}, err
	}
	defer stopGw()

	client := newClient(30 * time.Second)
	for i := 0; i < gwWarmPool; i++ {
		code, body, err := post(context.Background(), client, base+"/v1/bus", gwPointBody(warmShd(i, gwWarmPool)))
		if err != nil || code != http.StatusOK {
			return summary{}, fmt.Errorf("%s: priming pool: status %d err %v body %s", label, code, err, body)
		}
	}
	before := make([]sweep.Stats, len(backends))
	for i, b := range backends {
		if before[i], err = scrapeStats(client, b.url); err != nil {
			return summary{}, fmt.Errorf("%s: scraping %s: %w", label, b.url, err)
		}
	}

	var (
		mu        sync.Mutex
		latencies []float64
		requests  int
		errs      int
	)
	deadline := time.Now().Add(dur)
	var wg sync.WaitGroup
	for w := 0; w < conc; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(workerSeed(seed, worker)))
			for time.Now().Before(deadline) {
				body := gwPointBody(warmShd(rng.Intn(gwWarmPool), gwWarmPool))
				start := time.Now()
				code, _, err := post(context.Background(), client, base+"/v1/bus", body)
				elapsed := time.Since(start).Seconds()
				mu.Lock()
				requests++
				if err != nil || code != http.StatusOK {
					errs++
				} else {
					latencies = append(latencies, elapsed)
				}
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()

	after := make([]sweep.Stats, len(backends))
	for i, b := range backends {
		if after[i], err = scrapeStats(client, b.url); err != nil {
			return summary{}, fmt.Errorf("%s: scraping %s: %w", label, b.url, err)
		}
	}
	sort.Float64s(latencies)
	return summary{
		Label:           label,
		HitRatio:        1, // the schedule draws only warm-pool keys
		Concurrency:     conc,
		Duration:        dur.Seconds(),
		Requests:        requests,
		Errors:          errs,
		RPS:             float64(requests) / dur.Seconds(),
		Latency:         summarize(latencies),
		Mix:             map[string]int{"point": requests},
		BackendHitRatio: fleetHitRatio(before, after),
	}, nil
}

// gwFailover drives load through an affinity gateway and hard-kills one
// backend a third of the way in. The surviving window must stay clean:
// the gateway retries transport failures onto the survivor, so clients
// may see retried latency but never a 500 or a gateway-minted 502.
func gwFailover(conc int, dur time.Duration, seed int64) (summary, error) {
	var backends []*gwBackend
	for i := 0; i < 2; i++ {
		b, err := startGwBackend(0)
		if err != nil {
			return summary{}, err
		}
		defer b.stop()
		backends = append(backends, b)
	}
	base, stopGw, err := startGwTier(gw.PolicyAffinity, backends)
	if err != nil {
		return summary{}, err
	}
	defer stopGw()

	client := newClient(10 * time.Second)
	kill := time.AfterFunc(dur/3, func() { backends[0].stop() })
	defer kill.Stop()

	var (
		mu       sync.Mutex
		status   = map[string]int{}
		requests int
		errs     int
	)
	deadline := time.Now().Add(dur)
	var wg sync.WaitGroup
	for w := 0; w < conc; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(workerSeed(seed, worker)))
			for time.Now().Before(deadline) {
				body := gwPointBody(warmShd(rng.Intn(64), 64))
				code, _, err := post(context.Background(), client, base+"/v1/bus", body)
				mu.Lock()
				requests++
				if err != nil {
					errs++
				} else {
					status[fmt.Sprint(code)]++
				}
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()

	s := summary{
		Label:        "gw_failover",
		Concurrency:  conc,
		Duration:     dur.Seconds(),
		Requests:     requests,
		Errors:       errs,
		RPS:          float64(requests) / dur.Seconds(),
		Mix:          map[string]int{"point": requests},
		StatusCounts: status,
	}
	if status["500"] > 0 || status["502"] > 0 {
		return s, fmt.Errorf("gw_failover: clients saw %d 500s and %d 502s after a backend kill — failover must absorb it",
			status["500"], status["502"])
	}
	if status["200"] == 0 {
		return s, fmt.Errorf("gw_failover: no request ever succeeded")
	}
	return s, nil
}

// gwWarmRestart rehearses the snapshot lifecycle end to end on a real
// replica: warm it over HTTP, stop it, snapshot, boot a successor from
// the file, and require the successor to serve the old working set with
// zero new solves — the cold-start ramp the snapshot exists to skip.
func gwWarmRestart() (summary, error) {
	const keys = 16
	dir, err := os.MkdirTemp("", "cohereload-gw-*")
	if err != nil {
		return summary{}, err
	}
	defer os.RemoveAll(dir)
	snapPath := filepath.Join(dir, "memo.snap")

	first, err := startGwBackend(0)
	if err != nil {
		return summary{}, err
	}
	stopped := false
	defer func() {
		if !stopped {
			first.stop()
		}
	}()
	client := newClient(30 * time.Second)
	for i := 0; i < keys; i++ {
		code, _, err := post(context.Background(), client, first.url+"/v1/bus", gwPointBody(warmShd(i, keys)))
		if err != nil || code != http.StatusOK {
			return summary{}, fmt.Errorf("gw_warm_restart: warming: status %d err %v", code, err)
		}
	}
	first.stop()
	stopped = true
	counts, err := first.srv.Evaluator().WriteSnapshotFile(snapPath)
	if err != nil {
		return summary{}, fmt.Errorf("gw_warm_restart: writing snapshot: %w", err)
	}
	if counts.DemandEntries == 0 || counts.CurveEntries == 0 {
		return summary{}, fmt.Errorf("gw_warm_restart: snapshot captured nothing: %+v", counts)
	}

	second, err := startGwBackend(0)
	if err != nil {
		return summary{}, err
	}
	defer second.stop()
	restored, err := second.srv.Evaluator().LoadSnapshotFile(snapPath)
	if err != nil {
		return summary{}, fmt.Errorf("gw_warm_restart: restoring snapshot: %w", err)
	}
	if restored != counts {
		return summary{}, fmt.Errorf("gw_warm_restart: restored %+v of snapshot %+v", restored, counts)
	}
	for i := 0; i < keys; i++ {
		code, _, err := post(context.Background(), client, second.url+"/v1/bus", gwPointBody(warmShd(i, keys)))
		if err != nil || code != http.StatusOK {
			return summary{}, fmt.Errorf("gw_warm_restart: replaying: status %d err %v", code, err)
		}
	}
	st, err := scrapeStats(client, second.url)
	if err != nil {
		return summary{}, err
	}
	if st.DemandSolves != 0 || st.CurveFullSolves != 0 {
		return summary{}, fmt.Errorf("gw_warm_restart: successor re-solved (%d demand, %d full MVA) — the snapshot did not skip the ramp",
			st.DemandSolves, st.CurveFullSolves)
	}
	if st.DemandHits == 0 || st.MVAHits == 0 {
		return summary{}, fmt.Errorf("gw_warm_restart: successor recorded no cache hits: %+v", st)
	}
	return summary{
		Label:    "gw_warm_restart",
		Requests: keys,
		Mix: map[string]int{
			"restored_demand": restored.DemandEntries,
			"restored_curve":  restored.CurveEntries,
		},
	}, nil
}

// runGw runs the full gateway drill and writes the report. Any phase
// failing its gate fails the process, so `make gw-smoke` is a build
// gate, not a report generator.
func runGw(stdout, stderr io.Writer, conc int, dur time.Duration, seed int64, outPath string) error {
	rep := report{Tool: "cohereload", Target: "in-process gateway fleet (gw)"}

	affinity, err := gwBenchArm(gw.PolicyAffinity, "gw_affinity", conc, dur, seed)
	if err != nil {
		return err
	}
	rr, err := gwBenchArm(gw.PolicyRoundRobin, "gw_roundrobin", conc, dur, seed+1)
	if err != nil {
		return err
	}
	rep.Scenarios = append(rep.Scenarios, affinity, rr)
	for _, s := range []summary{affinity, rr} {
		fmt.Fprintf(stderr, "cohereload: %s: %d requests, %d errors, backend hit ratio %.3f, p99 %.3fms\n",
			s.Label, s.Requests, s.Errors, s.BackendHitRatio, s.Latency.P99)
	}
	if affinity.Errors > 0 || rr.Errors > 0 {
		return fmt.Errorf("gw bench: errors under healthy fleets (affinity %d, roundrobin %d)", affinity.Errors, rr.Errors)
	}
	if rr.BackendHitRatio <= 0 {
		return fmt.Errorf("gw bench: round-robin arm recorded no lookups")
	}
	if gain := affinity.BackendHitRatio / rr.BackendHitRatio; gain < gwHitRatioGate {
		return fmt.Errorf("gw bench: affinity hit ratio %.3f is only %.2fx round-robin's %.3f (gate %.1fx)",
			affinity.BackendHitRatio, gain, rr.BackendHitRatio, gwHitRatioGate)
	}
	if affinity.Latency.P99 > rr.Latency.P99*gwP99Band {
		// The race detector's instrumentation perturbs latency tails far
		// past the band, so race builds (`go test -race`) report the
		// miss instead of failing; normal builds — `make gw-smoke` and
		// the bench-json record benchdiff gates — enforce it.
		if !raceEnabled {
			return fmt.Errorf("gw bench: affinity p99 %.3fms worse than round-robin's %.3fms (band %.2fx)",
				affinity.Latency.P99, rr.Latency.P99, gwP99Band)
		}
		fmt.Fprintf(stderr, "cohereload: gw: affinity p99 %.3fms over round-robin's %.3fms band — informational under the race detector\n",
			affinity.Latency.P99, rr.Latency.P99)
	}

	failover, err := gwFailover(conc, dur, seed+2)
	if len(failover.StatusCounts) > 0 || failover.Requests > 0 {
		rep.Scenarios = append(rep.Scenarios, failover)
	}
	if err != nil {
		return err
	}
	fmt.Fprintf(stderr, "cohereload: gw_failover: %d requests, status %v, %d transport errors, backend killed mid-load\n",
		failover.Requests, failover.StatusCounts, failover.Errors)

	restart, err := gwWarmRestart()
	if err != nil {
		return err
	}
	rep.Scenarios = append(rep.Scenarios, restart)
	fmt.Fprintf(stderr, "cohereload: gw_warm_restart: %d demand + %d curve entries restored, zero re-solves\n",
		restart.Mix["restored_demand"], restart.Mix["restored_curve"])

	// Like the jobs drill, -out pointing at an existing cohereload
	// report merges these scenarios so one BENCH_PR record can carry
	// the latency mixes and the gateway drill together.
	rep = mergeInto(outPath, rep)
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if _, err := stdout.Write(data); err != nil {
		return err
	}
	if outPath != "" {
		if err := os.WriteFile(outPath, data, 0o644); err != nil {
			return err
		}
	}
	return nil
}
