package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writePkg(t *testing.T, src string) string {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "x.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return dir
}

// TestFlagsUndocumentedIdentifiers feeds the checker a package missing
// docs at every level it inspects and checks each gap is reported.
func TestFlagsUndocumentedIdentifiers(t *testing.T) {
	dir := writePkg(t, `package x

func Exported() {}

type T struct {
	Field int
}

const C = 1
`)
	findings, err := check([]string{dir})
	if err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(findings, "\n")
	for _, want := range []string{
		"no package comment",
		"function Exported",
		"type T",
		"field T.Field",
		"const C",
	} {
		if !strings.Contains(joined, want) {
			t.Errorf("findings missing %q:\n%s", want, joined)
		}
	}
}

// TestAcceptsDocumentedPackage checks a fully documented package — with
// a grouped const block covered by one comment, the idiom the checker
// must not flag — comes back clean.
func TestAcceptsDocumentedPackage(t *testing.T) {
	dir := writePkg(t, `// Package x is documented.
package x

// Exported does nothing.
func Exported() {}

// T is a documented type.
type T struct {
	Field int // Field is documented inline.
}

// Stage names.
const (
	A = "a"
	B = "b"
)

// unexported needs no doc.
func unexported() {}
`)
	findings, err := check([]string{dir})
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 0 {
		t.Errorf("documented package flagged:\n%s", strings.Join(findings, "\n"))
	}
}

// TestCheckedPackagesStayClean runs the checker over the packages `make
// docs-check` gates, from the repo root, so a doc regression fails here
// as well as in CI's make target.
func TestCheckedPackagesStayClean(t *testing.T) {
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	root := filepath.Dir(filepath.Dir(wd)) // cmd/doccheck -> repo root
	var dirs []string
	for _, d := range []string{"internal/serve", "internal/sweep", "internal/obs"} {
		dirs = append(dirs, filepath.Join(root, d))
	}
	findings, err := check(dirs)
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 0 {
		t.Errorf("undocumented exported identifiers:\n%s", strings.Join(findings, "\n"))
	}
}
