// Command doccheck enforces the repository's documentation floor: every
// exported identifier in the packages it is pointed at must carry a doc
// comment, and every package must have a package comment. It exists so
// `make docs-check` (wired into `make check`) fails the build when code
// outruns its documentation, the same way the golden drift test fails
// when /metrics outruns OPERATIONS.md.
//
// Usage:
//
//	doccheck [package directories...]
//
// With no arguments it checks the serving stack's packages
// (internal/serve, internal/gw, internal/sweep, internal/obs,
// internal/fault) plus the model and solver kernels (internal/core,
// internal/queueing) and the trace-driven simulator (internal/sim) —
// the packages a scheme author touches (SCHEMES.md) and the ones
// OPERATIONS.md and DESIGN.md document in prose, which therefore must
// stay navigable from godoc alone. Test files are skipped. Exit status
// is nonzero if any identifier is undocumented, with one "file:line:
// name" diagnostic per finding.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

func main() {
	dirs := os.Args[1:]
	if len(dirs) == 0 {
		dirs = []string{
			"internal/serve", "internal/gw", "internal/sweep", "internal/obs",
			"internal/fault", "internal/core", "internal/queueing",
			"internal/sim",
		}
	}
	findings, err := check(dirs)
	if err != nil {
		fmt.Fprintln(os.Stderr, "doccheck:", err)
		os.Exit(2)
	}
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "doccheck: %d undocumented exported identifier(s)\n", len(findings))
		os.Exit(1)
	}
}

// check parses every non-test Go file in dirs and returns one
// "file:line: message" finding per undocumented exported identifier,
// sorted for stable output.
func check(dirs []string) ([]string, error) {
	var findings []string
	for _, dir := range dirs {
		fset := token.NewFileSet()
		pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
			return !strings.HasSuffix(fi.Name(), "_test.go")
		}, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", dir, err)
		}
		for _, pkg := range pkgs {
			findings = append(findings, checkPackage(fset, dir, pkg)...)
		}
	}
	sort.Strings(findings)
	return findings, nil
}

// checkPackage inspects one parsed package: the package comment, every
// exported func/method, and every exported type, var, const, and struct
// field or interface method of an exported type.
func checkPackage(fset *token.FileSet, dir string, pkg *ast.Package) []string {
	var findings []string
	report := func(pos token.Pos, format string, args ...any) {
		p := fset.Position(pos)
		findings = append(findings, fmt.Sprintf("%s:%d: %s", p.Filename, p.Line, fmt.Sprintf(format, args...)))
	}

	hasPkgDoc := false
	for _, file := range pkg.Files {
		if file.Doc != nil {
			hasPkgDoc = true
		}
	}
	if !hasPkgDoc {
		findings = append(findings, fmt.Sprintf("%s: package %s has no package comment", filepath.Join(dir, "doc.go"), pkg.Name))
	}

	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if d.Name.IsExported() && d.Doc == nil {
					report(d.Pos(), "exported %s %s has no doc comment", funcKind(d), d.Name.Name)
				}
			case *ast.GenDecl:
				findings = append(findings, checkGenDecl(fset, d)...)
			}
		}
	}
	return findings
}

func funcKind(d *ast.FuncDecl) string {
	if d.Recv != nil {
		return "method"
	}
	return "function"
}

// checkGenDecl handles const/var/type declarations. A doc comment on the
// grouped declaration covers its members (idiomatic for const blocks);
// otherwise each exported member needs its own.
func checkGenDecl(fset *token.FileSet, d *ast.GenDecl) []string {
	var findings []string
	report := func(pos token.Pos, format string, args ...any) {
		p := fset.Position(pos)
		findings = append(findings, fmt.Sprintf("%s:%d: %s", p.Filename, p.Line, fmt.Sprintf(format, args...)))
	}
	groupDoc := d.Doc != nil
	for _, spec := range d.Specs {
		switch s := spec.(type) {
		case *ast.TypeSpec:
			if !s.Name.IsExported() {
				continue
			}
			if !groupDoc && s.Doc == nil {
				report(s.Pos(), "exported type %s has no doc comment", s.Name.Name)
			}
			switch t := s.Type.(type) {
			case *ast.StructType:
				for _, f := range t.Fields.List {
					for _, name := range f.Names {
						if name.IsExported() && f.Doc == nil && f.Comment == nil {
							report(name.Pos(), "exported field %s.%s has no doc comment", s.Name.Name, name.Name)
						}
					}
				}
			case *ast.InterfaceType:
				for _, m := range t.Methods.List {
					for _, name := range m.Names {
						if name.IsExported() && m.Doc == nil && m.Comment == nil {
							report(name.Pos(), "exported interface method %s.%s has no doc comment", s.Name.Name, name.Name)
						}
					}
				}
			}
		case *ast.ValueSpec:
			if groupDoc || s.Doc != nil || s.Comment != nil {
				continue
			}
			for _, name := range s.Names {
				if name.IsExported() {
					report(name.Pos(), "exported %s %s has no doc comment", declKind(d.Tok), name.Name)
				}
			}
		}
	}
	return findings
}

func declKind(tok token.Token) string {
	if tok == token.CONST {
		return "const"
	}
	return "var"
}
