// Command sensitivity reproduces the paper's Table 8: the percent change
// in execution time when each workload parameter moves from its Table 7
// low value to its high value, per coherence scheme.
//
// Usage:
//
//	sensitivity [-procs 16] [-rank scheme] [-parallel N]
//
// -parallel sizes the worker pool the sensitivity grid is evaluated on
// (0, the default, uses every core); results are bit-identical at any
// setting.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"swcc/internal/core"
	"swcc/internal/report"
	"swcc/internal/sensitivity"
	"swcc/internal/sweep"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "sensitivity:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("sensitivity", flag.ContinueOnError)
	procs := fs.Int("procs", 16, "bus machine size the execution time is computed at")
	rank := fs.String("rank", "", "also print parameters ranked by impact for this scheme")
	parallel := fs.Int("parallel", 0, "worker pool size for the sensitivity grid (0 = all cores)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	tab8, err := sensitivity.AnalyzeWith(sweep.New(*parallel), core.PaperSchemes(), *procs)
	if err != nil {
		return err
	}
	tab := &report.Table{
		Title:  fmt.Sprintf("Sensitivity at %d processors: %% execution-time change, parameter low→high", *procs),
		Header: append([]string{"parameter"}, tab8.Schemes...),
	}
	for _, p := range tab8.Params {
		row := []string{p}
		for _, s := range tab8.Schemes {
			c, _ := tab8.Cell(p, s)
			row = append(row, fmt.Sprintf("%+.1f%%", c.PercentChange))
		}
		tab.AddRow(row...)
	}
	if err := tab.WriteText(out); err != nil {
		return err
	}
	if *rank != "" {
		cells := tab8.MostSensitive(*rank)
		if len(cells) == 0 {
			return fmt.Errorf("unknown scheme %q", *rank)
		}
		fmt.Fprintf(out, "\n%s, by impact:\n", *rank)
		for i, c := range cells {
			fmt.Fprintf(out, "  %2d. %-7s %+.1f%%\n", i+1, c.Param, c.PercentChange)
		}
	}
	return nil
}
