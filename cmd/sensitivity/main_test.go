package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestSensitivityTable(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-procs", "8"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"apl", "Software-Flush", "Dragon", "8 processors"} {
		if !strings.Contains(s, want) {
			t.Errorf("missing %q in:\n%s", want, s)
		}
	}
}

func TestSensitivityRank(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-rank", "No-Cache"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "No-Cache, by impact:") {
		t.Error("missing ranking section")
	}
	// shd must rank first for No-Cache.
	idx := strings.Index(s, "1. ")
	if idx < 0 || !strings.HasPrefix(s[idx:], "1. shd") {
		t.Errorf("No-Cache top parameter should be shd:\n%s", s[idx:idx+20])
	}
}

func TestSensitivityErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-rank", "Bogus"}, &out); err == nil {
		t.Error("want error for unknown scheme")
	}
	if err := run([]string{"-procs", "0"}, &out); err == nil {
		t.Error("want error for zero processors")
	}
	if err := run([]string{"-badflag"}, &out); err == nil {
		t.Error("want error for unknown flag")
	}
}
