package main

import (
	"context"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// bootDaemon starts run() with the given extra flags and returns the
// base URL plus a shutdown func that cancels the run context and waits
// for a clean exit.
func bootDaemon(t *testing.T, extra ...string) (string, func()) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	addrc := make(chan net.Addr, 1)
	done := make(chan error, 1)
	args := append([]string{"-addr", "127.0.0.1:0", "-quiet"}, extra...)
	go func() {
		done <- run(ctx, args, io.Discard, func(a, _ net.Addr) { addrc <- a })
	}()
	var base string
	select {
	case a := <-addrc:
		base = "http://" + a.String()
	case err := <-done:
		cancel()
		t.Fatalf("daemon exited early: %v", err)
	case <-time.After(5 * time.Second):
		cancel()
		t.Fatal("daemon never became ready")
	}
	return base, func() {
		cancel()
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("shutdown: %v", err)
			}
		case <-time.After(10 * time.Second):
			t.Fatal("daemon did not shut down")
		}
	}
}

// cacheStats reads the evaluator counters from /healthz.
func cacheStats(t *testing.T, base string) map[string]float64 {
	t.Helper()
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	defer resp.Body.Close()
	var h struct {
		Cache map[string]float64 `json:"cache"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatalf("decoding healthz: %v", err)
	}
	return h.Cache
}

// TestWarmStartSnapshot is the end-to-end warm-start contract: a daemon
// restarted with -snapshot-path serves its first request for a
// previously-cached key without a single demand or full MVA solve, the
// cold-solve ramp skipped entirely.
func TestWarmStartSnapshot(t *testing.T) {
	snap := filepath.Join(t.TempDir(), "memo.snap")
	bodies := []string{
		`{"scheme": "dragon", "params": {"shd": 0.4}, "procs": 16}`,
		`{"scheme": "swflush", "params": {"shd": 0.7}, "procs": 16}`,
		`{"scheme": "hybrid", "procs": 12}`,
	}

	// First life: warm the cache, then SIGTERM-exit writing the snapshot.
	base, shutdown := bootDaemon(t, "-snapshot-path", snap)
	for _, b := range bodies {
		resp, err := http.Post(base+"/v1/bus", "application/json", strings.NewReader(b))
		if err != nil {
			t.Fatalf("warming: %v", err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("warming: status %d", resp.StatusCode)
		}
	}
	shutdown()
	if _, err := os.Stat(snap); err != nil {
		t.Fatalf("no snapshot written on shutdown: %v", err)
	}

	// Second life: the snapshot restores, /readyz reports the warmth,
	// and replaying the working set does zero solves.
	base, shutdown = bootDaemon(t, "-snapshot-path", snap)
	defer shutdown()

	st := cacheStats(t, base)
	if st["DemandEntries"] == 0 || st["CurveEntries"] == 0 {
		t.Fatalf("restart restored nothing: %+v", st)
	}
	if st["DemandSolves"] != 0 || st["CurveFullSolves"] != 0 {
		t.Fatalf("restart shows phantom solves: %+v", st)
	}

	rz, err := http.Get(base + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	rzBody, _ := io.ReadAll(rz.Body)
	rz.Body.Close()
	if rz.StatusCode != http.StatusOK || !strings.Contains(string(rzBody), `"demand_entries"`) {
		t.Fatalf("readyz after restore: %d %s", rz.StatusCode, rzBody)
	}

	for _, b := range bodies {
		resp, err := http.Post(base+"/v1/bus", "application/json", strings.NewReader(b))
		if err != nil {
			t.Fatalf("warm replay: %v", err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("warm replay: status %d", resp.StatusCode)
		}
	}
	st = cacheStats(t, base)
	if st["DemandSolves"] != 0 {
		t.Errorf("warm replay performed %v demand solves; snapshot did not skip the ramp", st["DemandSolves"])
	}
	if st["CurveFullSolves"] != 0 {
		t.Errorf("warm replay performed %v full MVA solves; snapshot did not skip the ramp", st["CurveFullSolves"])
	}
	if st["DemandHits"] == 0 || st["MVAHits"] == 0 {
		t.Errorf("warm replay recorded no hits: %+v", st)
	}
}

// TestStaleSnapshotRejectedCleanly boots against a corrupt snapshot
// file: the daemon must come up cold and healthy, not crash and not
// serve from a suspect cache.
func TestStaleSnapshotRejectedCleanly(t *testing.T) {
	snap := filepath.Join(t.TempDir(), "memo.snap")
	if err := os.WriteFile(snap, []byte("SWCCSNP1 but then garbage follows"), 0o644); err != nil {
		t.Fatal(err)
	}
	base, shutdown := bootDaemon(t, "-snapshot-path", snap)
	defer shutdown()

	st := cacheStats(t, base)
	if st["DemandEntries"] != 0 || st["CurveEntries"] != 0 {
		t.Fatalf("corrupt snapshot restored entries: %+v", st)
	}
	resp, err := http.Post(base+"/v1/bus", "application/json",
		strings.NewReader(`{"scheme": "dragon", "procs": 8}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cold-after-rejection daemon cannot serve: %d", resp.StatusCode)
	}
}
