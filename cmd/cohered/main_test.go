package main

import (
	"bytes"
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"regexp"
	"strings"
	"testing"
	"time"
)

// TestDaemonLifecycle boots the daemon on an ephemeral port, queries
// /healthz and /v1/bus, then cancels the run context (the signal path)
// and checks it shuts down cleanly.
func TestDaemonLifecycle(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	addrc := make(chan net.Addr, 1)
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{"-addr", "127.0.0.1:0", "-quiet"}, io.Discard,
			func(a, _ net.Addr) { addrc <- a })
	}()
	var base string
	select {
	case a := <-addrc:
		base = "http://" + a.String()
	case err := <-done:
		t.Fatalf("daemon exited early: %v", err)
	case <-time.After(5 * time.Second):
		t.Fatal("daemon never became ready")
	}

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), `"ok"`) {
		t.Fatalf("healthz: status %d body %s", resp.StatusCode, body)
	}

	resp, err = http.Post(base+"/v1/bus", "application/json",
		strings.NewReader(`{"scheme": "dragon", "procs": 4}`))
	if err != nil {
		t.Fatalf("bus query: %v", err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), `"Dragon"`) {
		t.Fatalf("bus query: status %d body %s", resp.StatusCode, body)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("shutdown: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not shut down")
	}
}

// TestBatchFlags boots the daemon with the batch and cache flags set and
// checks both take effect over the wire: a /v1/sweep batch within the
// -max-batch cap succeeds, one over it is rejected 400, and a -cache-cap
// small enough to evict under the served key mix shows up as a nonzero
// eviction counter on /metrics.
func TestBatchFlags(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	addrc := make(chan net.Addr, 1)
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{
			"-addr", "127.0.0.1:0", "-quiet", "-max-batch", "3", "-cache-cap", "32",
		}, io.Discard, func(a, _ net.Addr) { addrc <- a })
	}()
	var base string
	select {
	case a := <-addrc:
		base = "http://" + a.String()
	case err := <-done:
		t.Fatalf("daemon exited early: %v", err)
	case <-time.After(5 * time.Second):
		t.Fatal("daemon never became ready")
	}

	post := func(body string) (int, string) {
		resp, err := http.Post(base+"/v1/sweep", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatalf("sweep query: %v", err)
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp.StatusCode, string(data)
	}

	code, body := post(`{"points": [{"scheme": "dragon", "procs": 4}, {"scheme": "base", "procs": 4}]}`)
	if code != http.StatusOK || !strings.Contains(body, `"count":2`) {
		t.Fatalf("in-cap batch: status %d body %s", code, body)
	}
	code, body = post(`{"points": [{"scheme": "base"}, {"scheme": "base"}, {"scheme": "base"}, {"scheme": "base"}]}`)
	if code != http.StatusBadRequest || !strings.Contains(body, "3-point cap") {
		t.Fatalf("over-cap batch: status %d body %s", code, body)
	}

	// Push more distinct workloads than -cache-cap allows and check the
	// CLOCK policy reports evictions.
	for i := 0; i < 60; i += 3 {
		pts := make([]string, 3)
		for j := range pts {
			pts[j] = fmt.Sprintf(`{"scheme": "swflush", "params": {"shd": %g}, "procs": 4, "point": true}`,
				0.01+0.9*float64(i+j)/60)
		}
		if code, body := post(`{"points": [` + strings.Join(pts, ",") + `]}`); code != http.StatusOK {
			t.Fatalf("churn batch: status %d body %s", code, body)
		}
	}
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(data)
	if !strings.Contains(text, `swcc_cache_evictions_total{cache="demand"}`) {
		t.Fatalf("metrics missing eviction series:\n%s", text)
	}
	if strings.Contains(text, `swcc_cache_evictions_total{cache="demand"} 0`) {
		t.Errorf("-cache-cap 32 with 60 distinct workloads evicted nothing:\n%s", text)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("shutdown: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not shut down")
	}
}

// TestPprofListener boots the daemon with -pprof-addr and checks the
// profiling surface is on the second listener only: /debug/pprof/ serves
// there, the API port 404s it, and the pprof port knows nothing of the
// API routes.
func TestPprofListener(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	type addrs struct{ api, pprof net.Addr }
	addrc := make(chan addrs, 1)
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{
			"-addr", "127.0.0.1:0", "-pprof-addr", "127.0.0.1:0", "-quiet",
		}, io.Discard, func(a, p net.Addr) { addrc <- addrs{a, p} })
	}()
	var got addrs
	select {
	case got = <-addrc:
	case err := <-done:
		t.Fatalf("daemon exited early: %v", err)
	case <-time.After(5 * time.Second):
		t.Fatal("daemon never became ready")
	}
	if got.pprof == nil {
		t.Fatal("onReady reported no pprof address despite -pprof-addr")
	}

	get := func(base, path string) (int, string) {
		resp, err := http.Get("http://" + base + path)
		if err != nil {
			t.Fatalf("GET %s%s: %v", base, path, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp.StatusCode, string(body)
	}
	if code, body := get(got.pprof.String(), "/debug/pprof/goroutine?debug=1"); code != http.StatusOK ||
		!strings.Contains(body, "goroutine profile") {
		t.Errorf("pprof goroutine dump: status %d body %.200s", code, body)
	}
	if code, _ := get(got.api.String(), "/debug/pprof/"); code != http.StatusNotFound {
		t.Errorf("API listener serves pprof routes (status %d); want 404", code)
	}
	if code, _ := get(got.pprof.String(), "/healthz"); code != http.StatusNotFound {
		t.Errorf("pprof listener serves API routes (status %d); want 404", code)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("shutdown: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not shut down")
	}
}

// TestBadFlags checks flag errors surface instead of starting a server.
func TestBadFlags(t *testing.T) {
	err := run(context.Background(), []string{"-addr"}, io.Discard, nil)
	if err == nil {
		t.Error("missing flag value accepted")
	}
	err = run(context.Background(), []string{"positional"}, io.Discard, nil)
	if err == nil || !strings.Contains(err.Error(), "unexpected arguments") {
		t.Errorf("positional args accepted: %v", err)
	}
}

// TestOperationsDocCoversAllFlags keeps OPERATIONS.md's flags table
// synchronized with the daemon's actual flag set, both directions:
// every flag -h reports must appear in the table, and every flag the
// table lists must still exist.
func TestOperationsDocCoversAllFlags(t *testing.T) {
	var usage bytes.Buffer
	err := run(context.Background(), []string{"-h"}, &usage, nil)
	if !errors.Is(err, flag.ErrHelp) {
		t.Fatalf("-h returned %v, want flag.ErrHelp", err)
	}
	real := map[string]bool{}
	for _, m := range regexp.MustCompile(`(?m)^  -([a-z-]+)`).FindAllStringSubmatch(usage.String(), -1) {
		real[m[1]] = true
	}
	if len(real) == 0 {
		t.Fatalf("no flags parsed from usage:\n%s", usage.String())
	}

	doc, err := os.ReadFile("../../OPERATIONS.md")
	if err != nil {
		t.Fatal(err)
	}
	// The gateway (coheregw) documents its own flags table in its own
	// section, checked by its own twin of this test; scanning it here
	// would report gateway-only flags as stale.
	section := string(doc)
	if i := strings.Index(section, "## Gateway"); i >= 0 {
		if j := strings.Index(section[i+2:], "\n## "); j >= 0 {
			section = section[:i] + section[i+2+j+1:]
		} else {
			section = section[:i]
		}
	}
	documented := map[string]bool{}
	for _, m := range regexp.MustCompile("\\| `-([a-z-]+)` \\|").FindAllStringSubmatch(section, -1) {
		documented[m[1]] = true
	}

	for f := range real {
		if !documented[f] {
			t.Errorf("flag -%s exists but is missing from OPERATIONS.md's flags table", f)
		}
	}
	for f := range documented {
		if !real[f] {
			t.Errorf("OPERATIONS.md documents flag -%s, which no longer exists", f)
		}
	}
}

// TestShutdownDrains pins the graceful-drain contract end to end: with
// a solve in flight (held open by injected latency), the SIGTERM path
// must let that request finish 200, refuse new connections, and stop
// both the API and pprof listeners before run returns.
func TestShutdownDrains(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	type addrs struct{ api, pprof net.Addr }
	addrc := make(chan addrs, 1)
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{
			"-addr", "127.0.0.1:0", "-pprof-addr", "127.0.0.1:0", "-quiet",
			"-fault-latency-p", "1", "-fault-latency", "500ms",
		}, io.Discard, func(a, p net.Addr) { addrc <- addrs{a, p} })
	}()
	var got addrs
	select {
	case got = <-addrc:
	case err := <-done:
		t.Fatalf("daemon exited early: %v", err)
	case <-time.After(5 * time.Second):
		t.Fatal("daemon never became ready")
	}
	base := "http://" + got.api.String()

	type result struct {
		code int
		err  error
	}
	slow := make(chan result, 1)
	go func() {
		resp, err := http.Post(base+"/v1/bus", "application/json",
			strings.NewReader(`{"scheme": "base"}`))
		r := result{err: err}
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			r.code = resp.StatusCode
		}
		slow <- r
	}()
	// Wait for the injected 500ms solve to actually be in flight.
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(base + "/metrics")
		if err != nil {
			t.Fatalf("metrics during solve: %v", err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if strings.Contains(string(body), "swcc_solve_in_flight 1") {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("solve never became in-flight")
		}
		time.Sleep(5 * time.Millisecond)
	}

	cancel() // the SIGTERM path

	// New work must be refused while the slow request drains: the
	// listener closes at the start of Shutdown, well before the 500ms
	// solve finishes.
	refused := false
	for time.Now().Before(deadline) {
		if _, err := http.Get(base + "/healthz"); err != nil {
			refused = true
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !refused {
		t.Error("API listener kept accepting new requests during shutdown")
	}

	if r := <-slow; r.err != nil || r.code != http.StatusOK {
		t.Errorf("in-flight request not drained: code %d err %v", r.code, r.err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("shutdown: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not shut down")
	}
	if _, err := http.Get(base + "/healthz"); err == nil {
		t.Error("API listener still serving after run returned")
	}
	if _, err := http.Get("http://" + got.pprof.String() + "/debug/pprof/"); err == nil {
		t.Error("pprof listener still serving after run returned")
	}
}
