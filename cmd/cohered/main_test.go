package main

import (
	"context"
	"io"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"
)

// TestDaemonLifecycle boots the daemon on an ephemeral port, queries
// /healthz and /v1/bus, then cancels the run context (the signal path)
// and checks it shuts down cleanly.
func TestDaemonLifecycle(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	addrc := make(chan net.Addr, 1)
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{"-addr", "127.0.0.1:0", "-quiet"}, io.Discard,
			func(a net.Addr) { addrc <- a })
	}()
	var base string
	select {
	case a := <-addrc:
		base = "http://" + a.String()
	case err := <-done:
		t.Fatalf("daemon exited early: %v", err)
	case <-time.After(5 * time.Second):
		t.Fatal("daemon never became ready")
	}

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), `"ok"`) {
		t.Fatalf("healthz: status %d body %s", resp.StatusCode, body)
	}

	resp, err = http.Post(base+"/v1/bus", "application/json",
		strings.NewReader(`{"scheme": "dragon", "procs": 4}`))
	if err != nil {
		t.Fatalf("bus query: %v", err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), `"Dragon"`) {
		t.Fatalf("bus query: status %d body %s", resp.StatusCode, body)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("shutdown: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not shut down")
	}
}

// TestBadFlags checks flag errors surface instead of starting a server.
func TestBadFlags(t *testing.T) {
	err := run(context.Background(), []string{"-addr"}, io.Discard, nil)
	if err == nil {
		t.Error("missing flag value accepted")
	}
	err = run(context.Background(), []string{"positional"}, io.Discard, nil)
	if err == nil || !strings.Contains(err.Error(), "unexpected arguments") {
		t.Errorf("positional args accepted: %v", err)
	}
}
