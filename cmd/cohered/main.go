// Command cohered is the long-running model-serving daemon: an HTTP JSON
// API over the analytical coherence model, backed by one shared memoizing
// evaluator so repeated queries are served from cache.
//
// Usage:
//
//	cohered [-addr :8080] [-timeout 10s] [-max-inflight N] [-max-queue N]
//	        [-max-body BYTES] [-max-procs N] [-max-stages N]
//	        [-max-batch N] [-max-jobs N] [-job-ttl D] [-cache-cap N]
//	        [-snapshot-path FILE] [-pprof-addr ADDR] [-quiet]
//	        [-fault-seed N] [-fault-err-p P] [-fault-latency D] [-fault-latency-p P]
//
// Endpoints (see internal/serve; OPERATIONS.md is the full operator
// reference):
//
//	GET    /healthz              liveness + cache snapshot
//	GET    /readyz               readiness + cache warmth (503 while booting, draining, or shedding)
//	GET    /metrics              Prometheus text format
//	POST   /v1/bus               bus-model curve or single point
//	POST   /v1/network           multistage-network point
//	POST   /v1/advisor           scheme rankings for a workload
//	POST   /v1/sensitivity       parameter sensitivity table
//	POST   /v1/sweep             batch of bus-model points in one round trip
//	POST   /v1/jobs/sweep        submit an async sweep job (grid or refine)
//	GET    /v1/jobs              list resident jobs
//	GET    /v1/jobs/{id}         one job's status
//	GET    /v1/jobs/{id}/results stream results as NDJSON (resumable ?after=)
//	DELETE /v1/jobs/{id}         cancel and remove a job
//
// The -fault-* flags arm the deterministic chaos injector
// (internal/fault): every model solve and every /v1/sweep grid point
// then suffers seeded injected errors (mapped to retryable 503s) and
// latency. They exist for resilience drills against a disposable
// daemon — never set them on one serving real traffic.
//
// -pprof-addr, when set, opens a second listener serving only
// net/http/pprof (profiles, goroutine dumps, execution traces). It is a
// separate listener on purpose: profiling stays off the API port, so it
// can be bound to loopback while the API faces the network, and it is
// off entirely by default.
//
// The daemon logs JSON lines to stderr and shuts down gracefully on
// SIGINT/SIGTERM: the listeners close immediately, in-flight requests
// get a grace period to finish.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"swcc/internal/fault"
	"swcc/internal/serve"
	"swcc/internal/sweep"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stderr, nil); err != nil {
		fmt.Fprintln(os.Stderr, "cohered:", err)
		os.Exit(1)
	}
}

// pprofMux returns a mux serving only the net/http/pprof pages. Built
// explicitly instead of importing the package for its DefaultServeMux
// side effect, so the API listener can never accidentally expose
// profiling routes.
func pprofMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// run starts the daemon and blocks until ctx is cancelled or the server
// fails. onReady, when non-nil, receives the bound API address and the
// bound pprof address (nil when -pprof-addr is unset) once the listeners
// are open (tests use it with -addr 127.0.0.1:0).
func run(ctx context.Context, args []string, stderr io.Writer, onReady func(api, pprofAddr net.Addr)) error {
	fs := flag.NewFlagSet("cohered", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", ":8080", "listen address")
	timeout := fs.Duration("timeout", 10*time.Second, "per-request model-work budget")
	maxInFlight := fs.Int("max-inflight", 0, "concurrent model solves (0 = 4x GOMAXPROCS)")
	maxQueue := fs.Int("max-queue", 0, "queued solves before admission control sheds 503s (0 = 2x max-inflight)")
	maxBody := fs.Int64("max-body", 1<<20, "request body cap in bytes")
	maxProcs := fs.Int("max-procs", 4096, "largest servable bus machine")
	maxStages := fs.Int("max-stages", 20, "largest servable network (2^stages processors)")
	maxBatch := fs.Int("max-batch", 1024, "largest /v1/sweep batch in points")
	maxJobs := fs.Int("max-jobs", 16, "resident async sweep jobs; submissions past it get 503")
	jobTTL := fs.Duration("job-ttl", 10*time.Minute, "evict finished jobs nobody collected after this long")
	cacheCap := fs.Int("cache-cap", 0, "cap demand/curve cache entries each, CLOCK-evicting past it (0 = unbounded)")
	weight := fs.Float64("weight", 0, "routing weight advertised on /readyz for a weighted-rendezvous gateway (0 = none)")
	snapshotPath := fs.String("snapshot-path", "", "memo-cache snapshot file: restored on boot, written on shutdown after drain (empty = disabled)")
	pprofAddr := fs.String("pprof-addr", "", "serve net/http/pprof on this separate address (empty = disabled)")
	grace := fs.Duration("grace", 5*time.Second, "shutdown grace period for in-flight requests")
	quiet := fs.Bool("quiet", false, "suppress per-request access logs")
	faultSeed := fs.Int64("fault-seed", 1, "chaos injector schedule seed (only with -fault-err-p / -fault-latency-p)")
	faultErrP := fs.Float64("fault-err-p", 0, "chaos: per-solve probability of an injected error (503)")
	faultLatency := fs.Duration("fault-latency", 50*time.Millisecond, "chaos: delay injected per latency fault")
	faultLatencyP := fs.Float64("fault-latency-p", 0, "chaos: per-solve probability of injected latency")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	if *weight < 0 {
		return fmt.Errorf("-weight must be >= 0, got %g", *weight)
	}
	var inj *fault.Injector
	if *faultErrP > 0 || *faultLatencyP > 0 {
		for _, p := range []float64{*faultErrP, *faultLatencyP} {
			if p < 0 || p > 1 {
				return fmt.Errorf("fault probabilities must be in [0,1]")
			}
		}
		if *faultErrP+*faultLatencyP > 1 {
			return fmt.Errorf("fault probabilities sum past 1")
		}
		inj = fault.New(fault.Config{
			Seed:     *faultSeed,
			Latency:  *faultLatency,
			LatencyP: *faultLatencyP,
			ErrorP:   *faultErrP,
		})
	}

	level := slog.LevelInfo
	if *quiet {
		level = slog.LevelWarn
	}
	logger := slog.New(slog.NewJSONHandler(stderr, &slog.HandlerOptions{Level: level}))

	srv := serve.NewServer(serve.Config{
		RequestTimeout: *timeout,
		MaxInFlight:    *maxInFlight,
		MaxBodyBytes:   *maxBody,
		MaxProcs:       *maxProcs,
		MaxStages:      *maxStages,
		MaxBatchPoints: *maxBatch,
		MaxQueueDepth:  *maxQueue,
		MaxJobs:        *maxJobs,
		JobTTL:         *jobTTL,
		// Jobs outlive their submitting request; deriving them from the
		// signal context makes SIGTERM cancel background grids too.
		BaseContext: ctx,
		CacheCap:    *cacheCap,
		Fault:       inj,
		Weight:      *weight,
		Logger:      logger,
	})
	if inj != nil {
		logger.Warn("chaos injector armed",
			"seed", *faultSeed, "err_p", *faultErrP,
			"latency", faultLatency.String(), "latency_p", *faultLatencyP)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	hs := &http.Server{
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
		// Read/write budgets comfortably above the model-work timeout so
		// the request deadline, not the socket, decides the error path.
		ReadTimeout:  *timeout + 5*time.Second,
		WriteTimeout: *timeout + 5*time.Second,
	}

	errc := make(chan error, 2)
	var pprofLn net.Listener
	var pprofSrv *http.Server
	if *pprofAddr != "" {
		pprofLn, err = net.Listen("tcp", *pprofAddr)
		if err != nil {
			ln.Close()
			return fmt.Errorf("pprof listener: %w", err)
		}
		// No write timeout: CPU profiles and execution traces stream for
		// their requested duration (30s default, longer via ?seconds=).
		pprofSrv = &http.Server{Handler: pprofMux(), ReadHeaderTimeout: 5 * time.Second}
		logger.Warn("pprof listening", "addr", pprofLn.Addr().String())
		go func() { errc <- pprofSrv.Serve(pprofLn) }()
	}

	logger.Warn("cohered listening", "addr", ln.Addr().String())
	if onReady != nil {
		var pa net.Addr
		if pprofLn != nil {
			pa = pprofLn.Addr()
		}
		onReady(ln.Addr(), pa)
	}

	go func() { errc <- hs.Serve(ln) }()

	// Warm-start: restore the memo caches from the previous run's
	// snapshot with the listener already open but /readyz answering 503,
	// so a gateway drains around the restore window instead of cold-
	// missing into it. A missing file is a normal cold boot; a stale or
	// corrupt one is logged and served cold — the restore fails closed,
	// never with suspect entries.
	if *snapshotPath != "" {
		srv.SetNotReady("restoring snapshot")
		counts, err := srv.Evaluator().LoadSnapshotFile(*snapshotPath)
		if err != nil {
			logger.Warn("snapshot not restored; starting cold",
				"path", *snapshotPath, "err", err)
		} else if counts != (sweep.SnapshotCounts{}) {
			logger.Warn("snapshot restored",
				"path", *snapshotPath,
				"demand_entries", counts.DemandEntries,
				"curve_entries", counts.CurveEntries)
		}
		srv.SetReady()
	}

	select {
	case err := <-errc:
		if !errors.Is(err, http.ErrServerClosed) {
			return err
		}
	case <-ctx.Done():
	}
	srv.SetNotReady("draining")
	logger.Warn("cohered shutting down", "grace", grace.String())
	shCtx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	if pprofSrv != nil {
		// Profiling is best-effort; close it hard rather than spending
		// grace budget on an in-flight 30-second profile.
		pprofSrv.Close()
	}
	if err := hs.Shutdown(shCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	// The listener is closed; cancel the remaining async jobs and wait
	// for their runners so no solve outlives the daemon's accounting.
	srv.Close()
	// Snapshot after drain: every in-flight solve has published its
	// entries, so the image is the complete working set. The write is
	// atomic (temp file + rename) — a crash here leaves the previous
	// snapshot intact, not a truncated one.
	if *snapshotPath != "" {
		counts, err := srv.Evaluator().WriteSnapshotFile(*snapshotPath)
		if err != nil {
			logger.Error("writing snapshot", "path", *snapshotPath, "err", err)
		} else {
			logger.Warn("snapshot written",
				"path", *snapshotPath,
				"demand_entries", counts.DemandEntries,
				"curve_entries", counts.CurveEntries)
		}
	}
	if err := <-errc; !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}
