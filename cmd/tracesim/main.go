// Command tracesim replays a multiprocessor address trace through the
// cache/bus simulator under a chosen coherence protocol.
//
// Usage:
//
//	tracesim -trace pops.trace -protocol dragon -cache 65536
//	tracegen -preset pops | tracesim -protocol swflush
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"swcc/internal/report"
	"swcc/internal/sim"
	"swcc/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "tracesim:", err)
		os.Exit(1)
	}
}

func run(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("tracesim", flag.ContinueOnError)
	traceFile := fs.String("trace", "", "trace file (binary or text; default stdin, binary)")
	protoName := fs.String("protocol", "dragon", "protocol: base, dragon, nocache, swflush, wi")
	cacheSize := fs.Int("cache", 64*1024, "per-processor cache size in bytes")
	blockSize := fs.Int("block", 16, "cache block size in bytes")
	assoc := fs.Int("assoc", 2, "cache associativity")
	policy := fs.String("policy", "lru", "replacement policy: lru, fifo, random")
	medium := fs.String("medium", "bus", "interconnect: bus or network")
	warmup := fs.Float64("warmup", 0, "leading fraction of the trace excluded from statistics")
	textFmt := fs.Bool("textfmt", false, "trace is in the text format")
	if err := fs.Parse(args); err != nil {
		return err
	}

	proto, err := sim.ProtocolByName(*protoName)
	if err != nil {
		return err
	}
	pol, err := sim.PolicyByName(*policy)
	if err != nil {
		return err
	}
	var med sim.Medium
	switch *medium {
	case "bus", "":
		med = sim.MediumBus
	case "network", "net":
		med = sim.MediumNetwork
	default:
		return fmt.Errorf("unknown medium %q (want bus or network)", *medium)
	}

	var r io.Reader = stdin
	if *traceFile != "" {
		f, err := os.Open(*traceFile)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	var tr *trace.Trace
	if *textFmt {
		tr, err = trace.ReadText(r)
	} else {
		tr, err = trace.ReadTrace(r)
	}
	if err != nil {
		return err
	}
	if *warmup < 0 || *warmup >= 1 {
		return fmt.Errorf("warmup fraction %g not in [0,1)", *warmup)
	}

	res, err := sim.Run(sim.Config{
		NCPU:       tr.NCPU,
		Cache:      sim.CacheConfig{Size: *cacheSize, BlockSize: *blockSize, Assoc: *assoc, Replacement: pol},
		Protocol:   proto,
		Medium:     med,
		WarmupRefs: int(float64(len(tr.Refs)) * *warmup),
	}, tr)
	if err != nil {
		return err
	}

	fmt.Fprintf(stdout, "protocol %s on %s, %d CPUs, %d-byte caches (%d-way, %dB blocks), %d records\n\n",
		proto, med, tr.NCPU, *cacheSize, *assoc, *blockSize, len(tr.Refs))

	tab := &report.Table{Header: []string{"cpu", "instr", "data refs", "data miss%", "instr miss%", "bus wait", "cycles", "utilization"}}
	for c, s := range res.PerCPU {
		dataPct, instrPct := 0.0, 0.0
		if s.DataRefs() > 0 {
			dataPct = 100 * float64(s.DataMisses) / float64(s.DataRefs())
		}
		if s.Instructions > 0 {
			instrPct = 100 * float64(s.InstrMisses) / float64(s.Instructions)
		}
		tab.AddRow(fmt.Sprint(c),
			fmt.Sprint(s.Instructions), fmt.Sprint(s.DataRefs()),
			fmt.Sprintf("%.2f", dataPct), fmt.Sprintf("%.2f", instrPct),
			fmt.Sprint(s.BusWait), fmt.Sprint(s.Cycles),
			fmt.Sprintf("%.4f", s.Utilization()))
	}
	if err := tab.WriteText(stdout); err != nil {
		return err
	}
	tot := res.Totals()
	fmt.Fprintf(stdout, "\nprocessing power: %.3f of %d\n", res.Power(), tr.NCPU)
	fmt.Fprintf(stdout, "bus: %.1f%% busy, %d transactions, %d wait cycles\n",
		100*res.BusUtilization(), res.BusTransactions, res.BusWait)
	if tot.Flushes > 0 {
		fmt.Fprintf(stdout, "flushes: %d (%d clean, %d dirty)\n", tot.Flushes, tot.CleanFlushes, tot.DirtyFlushes)
	}
	if tot.Broadcasts > 0 {
		fmt.Fprintf(stdout, "broadcasts: %d, cache-supplied misses: %d, stolen cycles: %d\n",
			tot.Broadcasts, tot.CacheSupplied, tot.StolenCycles)
	}
	if res.Snoop.SharedRefs > 0 {
		fmt.Fprintf(stdout, "snoop: opres=%.3f oclean=%.3f nshd=%.2f\n",
			res.Snoop.OPres(), res.Snoop.OClean(), res.Snoop.NShd())
	}
	return nil
}
