package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"swcc/internal/trace"
	"swcc/internal/tracegen"
)

func writeTestTrace(t *testing.T, text bool) string {
	t.Helper()
	cfg := tracegen.DefaultConfig()
	cfg.InstrPerCPU = 3000
	tr, err := tracegen.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "test.trace")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if text {
		err = trace.WriteText(f, tr)
	} else {
		err = trace.WriteTrace(f, tr)
	}
	if err != nil {
		t.Fatal(err)
	}
	return path
}

func TestSimulateFromFile(t *testing.T) {
	path := writeTestTrace(t, false)
	var out bytes.Buffer
	err := run([]string{"-trace", path, "-protocol", "dragon", "-warmup", "0.25"}, strings.NewReader(""), &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"protocol Dragon", "processing power", "bus:", "utilization", "snoop:"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
}

func TestSimulateTextFromStdin(t *testing.T) {
	cfg := tracegen.DefaultConfig()
	cfg.InstrPerCPU = 1000
	tr, err := tracegen.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var traceText bytes.Buffer
	if err := trace.WriteText(&traceText, tr); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := run([]string{"-textfmt", "-protocol", "swflush"}, &traceText, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "flushes:") {
		t.Error("software-flush run should report flushes")
	}
}

func TestAllProtocols(t *testing.T) {
	path := writeTestTrace(t, false)
	for _, proto := range []string{"base", "dragon", "nocache", "swflush", "wi"} {
		var out bytes.Buffer
		if err := run([]string{"-trace", path, "-protocol", proto}, strings.NewReader(""), &out); err != nil {
			t.Errorf("%s: %v", proto, err)
		}
	}
}

func TestNetworkMediumAndPolicy(t *testing.T) {
	path := writeTestTrace(t, false)
	var out bytes.Buffer
	if err := run([]string{"-trace", path, "-protocol", "swflush", "-medium", "network", "-policy", "fifo"}, strings.NewReader(""), &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "on network") {
		t.Error("output should name the medium")
	}
	if err := run([]string{"-trace", path, "-protocol", "dragon", "-medium", "network"}, strings.NewReader(""), &out); err == nil {
		t.Error("dragon on network must be rejected")
	}
	if err := run([]string{"-trace", path, "-medium", "tokenring"}, strings.NewReader(""), &out); err == nil {
		t.Error("want error for unknown medium")
	}
	if err := run([]string{"-trace", path, "-policy", "plru"}, strings.NewReader(""), &out); err == nil {
		t.Error("want error for unknown policy")
	}
}

func TestBadInputs(t *testing.T) {
	empty := strings.NewReader("")
	var out bytes.Buffer
	if err := run([]string{"-protocol", "mesi"}, empty, &out); err == nil {
		t.Error("want error for unknown protocol")
	}
	if err := run([]string{"-trace", "/does/not/exist"}, empty, &out); err == nil {
		t.Error("want error for missing file")
	}
	if err := run(nil, strings.NewReader("garbage"), &out); err == nil {
		t.Error("want error for garbage stdin")
	}
	path := writeTestTrace(t, false)
	if err := run([]string{"-trace", path, "-warmup", "1.5"}, empty, &out); err == nil {
		t.Error("want error for warmup out of range")
	}
	if err := run([]string{"-trace", path, "-cache", "100"}, empty, &out); err == nil {
		t.Error("want error for bad cache size")
	}
}
