// Command coheregw is the cache-affinity gateway: an HTTP front tier
// that routes requests across N cohered backends by rendezvous-hashing
// each request's canonical cache key, so every backend's memo cache
// stays hot for its own key range (see internal/gw; OPERATIONS.md is
// the operator reference).
//
// Usage:
//
//	coheregw -backends http://h1:8080,http://h2:8080 [-addr :8070]
//	         [-policy affinity|roundrobin] [-check-interval 1s]
//	         [-check-timeout 2s] [-fail-threshold 2] [-timeout 15s]
//	         [-max-body BYTES] [-grace 5s] [-quiet]
//
// Endpoints:
//
//	GET  /healthz   gateway liveness + aggregated backend health
//	GET  /readyz    ready iff at least one backend is healthy
//	GET  /metrics   Prometheus text format (swcc_gw_* families)
//	     /v1/*      proxied to the owning backend
//
// The gateway health-checks each backend's /readyz, excludes backends
// after -fail-threshold consecutive failures, re-admits them on the
// first success, and re-spills an excluded backend's keys to the
// next-ranked survivors. It shuts down gracefully on SIGINT/SIGTERM.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"swcc/internal/gw"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stderr, nil); err != nil {
		fmt.Fprintln(os.Stderr, "coheregw:", err)
		os.Exit(1)
	}
}

// run starts the gateway and blocks until ctx is cancelled or the
// server fails. onReady, when non-nil, receives the bound address once
// the listener is open (tests use it with -addr 127.0.0.1:0).
func run(ctx context.Context, args []string, stderr io.Writer, onReady func(addr net.Addr)) error {
	fs := flag.NewFlagSet("coheregw", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", ":8070", "listen address")
	backends := fs.String("backends", "", "comma-separated cohered base URLs (required)")
	policy := fs.String("policy", gw.PolicyAffinity, "routing policy: affinity or roundrobin")
	checkInterval := fs.Duration("check-interval", time.Second, "per-backend /readyz probe period")
	checkTimeout := fs.Duration("check-timeout", 2*time.Second, "per-probe budget")
	failThreshold := fs.Int("fail-threshold", 2, "consecutive probe failures before a backend is excluded")
	timeout := fs.Duration("timeout", 15*time.Second, "per-request proxy budget, retries included")
	maxBody := fs.Int64("max-body", 1<<20, "request body cap in bytes")
	grace := fs.Duration("grace", 5*time.Second, "shutdown grace period for in-flight requests")
	quiet := fs.Bool("quiet", false, "suppress info-level logs")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	if *backends == "" {
		return errors.New("-backends is required")
	}

	level := slog.LevelInfo
	if *quiet {
		level = slog.LevelWarn
	}
	logger := slog.New(slog.NewJSONHandler(stderr, &slog.HandlerOptions{Level: level}))

	g, err := gw.New(gw.Config{
		Backends:       strings.Split(*backends, ","),
		Policy:         *policy,
		CheckInterval:  *checkInterval,
		CheckTimeout:   *checkTimeout,
		FailThreshold:  *failThreshold,
		RequestTimeout: *timeout,
		MaxBodyBytes:   *maxBody,
		Logger:         logger,
	})
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	hs := &http.Server{
		Handler:           g.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       *timeout + 5*time.Second,
		WriteTimeout:      *timeout + 5*time.Second,
	}

	hcCtx, hcCancel := context.WithCancel(ctx)
	defer hcCancel()
	go g.Run(hcCtx)

	logger.Warn("coheregw listening", "addr", ln.Addr().String(),
		"policy", *policy, "backends", *backends)
	if onReady != nil {
		onReady(ln.Addr())
	}

	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	select {
	case err := <-errc:
		if !errors.Is(err, http.ErrServerClosed) {
			return err
		}
	case <-ctx.Done():
	}
	logger.Warn("coheregw shutting down", "grace", grace.String())
	shCtx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	if err := hs.Shutdown(shCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	if err := <-errc; !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}
