// Command coheregw is the cache-affinity gateway: an HTTP front tier
// that routes requests across N cohered backends by rendezvous-hashing
// each request's canonical cache key, so every backend's memo cache
// stays hot for its own key range (see internal/gw; OPERATIONS.md is
// the operator reference).
//
// Usage:
//
//	coheregw -backends http://h1:8080,http://h2:8080=4 [-addr :8070]
//	         [-policy affinity|roundrobin] [-check-interval 1s]
//	         [-check-timeout 2s] [-fail-threshold 2] [-timeout 15s]
//	         [-max-body BYTES] [-grace 5s] [-quiet]
//	         [-hedge] [-hedge-delay 0] [-response-cache N]
//	coheregw -backends-file backends.conf ...
//
// Endpoints:
//
//	GET  /healthz   gateway liveness + aggregated backend health
//	GET  /readyz    ready iff at least one backend is healthy
//	GET  /metrics   Prometheus text format (swcc_gw_* families)
//	     /v1/*      proxied to the owning backend
//
// The gateway health-checks each backend's /readyz, excludes backends
// after -fail-threshold consecutive failures, re-admits them on the
// first success, and re-spills an excluded backend's keys to the
// next-ranked survivors. Each backend spec may carry a rendezvous
// weight ("URL=WEIGHT"); with -backends-file, SIGHUP re-reads the file
// and applies the new backend set live — added backends join the
// routing set, removed backends drain their in-flight requests. It
// shuts down gracefully on SIGINT/SIGTERM.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"swcc/internal/gw"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stderr, nil); err != nil {
		fmt.Fprintln(os.Stderr, "coheregw:", err)
		os.Exit(1)
	}
}

// readBackendsFile parses a backends file: one "URL[=WEIGHT]" spec per
// line, blank lines and #-comments ignored.
func readBackendsFile(path string) ([]string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var specs []string
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		specs = append(specs, line)
	}
	if len(specs) == 0 {
		return nil, fmt.Errorf("backends file %s lists no backends", path)
	}
	return specs, nil
}

// run starts the gateway and blocks until ctx is cancelled or the
// server fails. onReady, when non-nil, receives the bound address once
// the listener is open (tests use it with -addr 127.0.0.1:0).
func run(ctx context.Context, args []string, stderr io.Writer, onReady func(addr net.Addr)) error {
	fs := flag.NewFlagSet("coheregw", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", ":8070", "listen address")
	backends := fs.String("backends", "", "comma-separated cohered base URLs, each optionally URL=WEIGHT (this or -backends-file is required)")
	backendsFile := fs.String("backends-file", "", "file listing one backend spec per line; SIGHUP re-reads it and applies the new set live")
	policy := fs.String("policy", gw.PolicyAffinity, "routing policy: affinity or roundrobin")
	checkInterval := fs.Duration("check-interval", time.Second, "per-backend /readyz probe period")
	checkTimeout := fs.Duration("check-timeout", 2*time.Second, "per-probe budget")
	failThreshold := fs.Int("fail-threshold", 2, "consecutive probe failures before a backend is excluded")
	timeout := fs.Duration("timeout", 15*time.Second, "per-request proxy budget, retries included (job result streams are exempt)")
	maxBody := fs.Int64("max-body", 1<<20, "request body cap in bytes")
	hedge := fs.Bool("hedge", false, "race a duplicate of a slow idempotent request against the next-ranked backend")
	hedgeDelay := fs.Duration("hedge-delay", 0, "fixed hedge delay; 0 derives it from the observed latency p90")
	respCache := fs.Int("response-cache", 0, "gateway response cache capacity in entries; 0 disables")
	grace := fs.Duration("grace", 5*time.Second, "shutdown grace period for in-flight requests")
	quiet := fs.Bool("quiet", false, "suppress info-level logs")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	if *backends == "" && *backendsFile == "" {
		return errors.New("-backends or -backends-file is required")
	}
	if *backends != "" && *backendsFile != "" {
		return errors.New("-backends and -backends-file are mutually exclusive")
	}
	specs := strings.Split(*backends, ",")
	if *backendsFile != "" {
		var err error
		if specs, err = readBackendsFile(*backendsFile); err != nil {
			return err
		}
	}

	level := slog.LevelInfo
	if *quiet {
		level = slog.LevelWarn
	}
	logger := slog.New(slog.NewJSONHandler(stderr, &slog.HandlerOptions{Level: level}))

	g, err := gw.New(gw.Config{
		Backends:         specs,
		Policy:           *policy,
		CheckInterval:    *checkInterval,
		CheckTimeout:     *checkTimeout,
		FailThreshold:    *failThreshold,
		RequestTimeout:   *timeout,
		MaxBodyBytes:     *maxBody,
		Hedge:            *hedge,
		HedgeDelay:       *hedgeDelay,
		ResponseCacheCap: *respCache,
		Logger:           logger,
	})
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	hs := &http.Server{
		Handler:           g.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       *timeout + 5*time.Second,
		// Streams override this per write via ResponseController.
		WriteTimeout: *timeout + 5*time.Second,
	}

	hcCtx, hcCancel := context.WithCancel(ctx)
	defer hcCancel()
	go g.Run(hcCtx)

	// SIGHUP re-reads -backends-file and applies the new set without a
	// restart; without the flag there is nothing to re-read, so say so
	// instead of silently eating the signal.
	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	defer signal.Stop(hup)
	go func() {
		for {
			select {
			case <-hcCtx.Done():
				return
			case <-hup:
				if *backendsFile == "" {
					logger.Warn("SIGHUP ignored: no -backends-file to re-read")
					continue
				}
				specs, err := readBackendsFile(*backendsFile)
				if err != nil {
					logger.Error("SIGHUP reload failed, keeping current backends", "err", err)
					continue
				}
				res, err := g.Reload(specs)
				if err != nil {
					logger.Error("SIGHUP reload rejected, keeping current backends", "err", err)
					continue
				}
				logger.Warn("SIGHUP reload applied",
					"added", len(res.Added), "removed", len(res.Removed), "reweighted", len(res.Reweighted))
			}
		}
	}()

	logger.Warn("coheregw listening", "addr", ln.Addr().String(),
		"policy", *policy, "backends", strings.Join(specs, ","))
	if onReady != nil {
		onReady(ln.Addr())
	}

	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	select {
	case err := <-errc:
		if !errors.Is(err, http.ErrServerClosed) {
			return err
		}
	case <-ctx.Done():
	}
	logger.Warn("coheregw shutting down", "grace", grace.String())
	shCtx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	if err := hs.Shutdown(shCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	if err := <-errc; !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}
