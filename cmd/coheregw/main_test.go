package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"io"
	"log/slog"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"syscall"
	"testing"
	"time"

	"swcc/internal/serve"
)

// testBackend boots one in-process backend server.
func testBackend(t *testing.T) *httptest.Server {
	t.Helper()
	s := serve.NewServer(serve.Config{
		Logger: slog.New(slog.NewJSONHandler(io.Discard, nil)),
	})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(s.Close)
	t.Cleanup(ts.Close)
	return ts
}

// TestGatewayLifecycle boots the gateway over two live backends,
// proxies a /v1/bus query, checks the gateway's own pages, then cancels
// the run context (the signal path) and checks it shuts down cleanly.
func TestGatewayLifecycle(t *testing.T) {
	b1, b2 := testBackend(t), testBackend(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	addrc := make(chan net.Addr, 1)
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{
			"-addr", "127.0.0.1:0", "-quiet",
			"-backends", b1.URL + "," + b2.URL,
		}, io.Discard, func(a net.Addr) { addrc <- a })
	}()
	var base string
	select {
	case a := <-addrc:
		base = "http://" + a.String()
	case err := <-done:
		t.Fatalf("gateway exited early: %v", err)
	case <-time.After(5 * time.Second):
		t.Fatal("gateway never became ready")
	}

	resp, err := http.Post(base+"/v1/bus", "application/json",
		strings.NewReader(`{"scheme": "dragon", "procs": 4}`))
	if err != nil {
		t.Fatalf("proxied bus query: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), `"Dragon"`) {
		t.Fatalf("proxied bus query: status %d body %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get("X-Coheregw-Backend"); got != b1.URL && got != b2.URL {
		t.Fatalf("backend header %q names neither backend", got)
	}

	for _, path := range []string{"/healthz", "/readyz", "/metrics"} {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("shutdown: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("gateway did not shut down")
	}
}

// TestSighupReloadsBackendsFile drives the live-reload path end to
// end: boot from a -backends-file with one backend, grow the file to
// two, SIGHUP the process, and watch the second backend join the
// routing set without a restart.
func TestSighupReloadsBackendsFile(t *testing.T) {
	b1, b2 := testBackend(t), testBackend(t)
	file := filepath.Join(t.TempDir(), "backends.conf")
	if err := os.WriteFile(file, []byte("# fleet\n"+b1.URL+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	addrc := make(chan net.Addr, 1)
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{
			"-addr", "127.0.0.1:0", "-quiet", "-backends-file", file,
		}, io.Discard, func(a net.Addr) { addrc <- a })
	}()
	var base string
	select {
	case a := <-addrc:
		base = "http://" + a.String()
	case err := <-done:
		t.Fatalf("gateway exited early: %v", err)
	case <-time.After(5 * time.Second):
		t.Fatal("gateway never became ready")
	}

	countBackends := func() int {
		resp, err := http.Get(base + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var h struct {
			Backends []struct {
				URL string `json:"url"`
			} `json:"backends"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
			t.Fatal(err)
		}
		return len(h.Backends)
	}
	if got := countBackends(); got != 1 {
		t.Fatalf("booted with %d backends, want 1", got)
	}

	if err := os.WriteFile(file, []byte(b1.URL+"\n"+b2.URL+"=2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := syscall.Kill(os.Getpid(), syscall.SIGHUP); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for countBackends() != 2 {
		if time.Now().After(deadline) {
			t.Fatal("SIGHUP did not grow the backend set to 2")
		}
		time.Sleep(20 * time.Millisecond)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("shutdown: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("gateway did not shut down")
	}
}

// TestBadFlags checks flag and config errors surface instead of
// starting a server.
func TestBadFlags(t *testing.T) {
	if err := run(context.Background(), nil, io.Discard, nil); err == nil ||
		!strings.Contains(err.Error(), "-backends") {
		t.Error("missing -backends accepted")
	}
	if err := run(context.Background(), []string{"-backends", "x", "-backends-file", "y"}, io.Discard, nil); err == nil ||
		!strings.Contains(err.Error(), "mutually exclusive") {
		t.Error("-backends together with -backends-file accepted")
	}
	if err := run(context.Background(), []string{"-backends-file", filepath.Join(t.TempDir(), "missing.conf")}, io.Discard, nil); err == nil {
		t.Error("missing backends file accepted")
	}
	if err := run(context.Background(), []string{"-backends", "x", "positional"}, io.Discard, nil); err == nil ||
		!strings.Contains(err.Error(), "unexpected arguments") {
		t.Error("positional args accepted")
	}
	if err := run(context.Background(), []string{"-backends", "h1", "-policy", "nope"}, io.Discard, nil); err == nil ||
		!strings.Contains(err.Error(), "policy") {
		t.Error("unknown policy accepted")
	}
}

// TestOperationsDocCoversAllFlags keeps OPERATIONS.md's gateway flags
// table synchronized with the real flag set, both directions. Only the
// gateway section of the doc is scanned — the daemon's own flags table
// is checked by cohered's twin of this test.
func TestOperationsDocCoversAllFlags(t *testing.T) {
	var usage bytes.Buffer
	err := run(context.Background(), []string{"-h"}, &usage, nil)
	if !errors.Is(err, flag.ErrHelp) {
		t.Fatalf("-h returned %v, want flag.ErrHelp", err)
	}
	real := map[string]bool{}
	for _, m := range regexp.MustCompile(`(?m)^  -([a-z-]+)`).FindAllStringSubmatch(usage.String(), -1) {
		real[m[1]] = true
	}
	if len(real) == 0 {
		t.Fatalf("no flags parsed from usage:\n%s", usage.String())
	}

	doc, err := os.ReadFile("../../OPERATIONS.md")
	if err != nil {
		t.Fatal(err)
	}
	section := string(doc)
	if i := strings.Index(section, "## Gateway"); i >= 0 {
		section = section[i:]
		if j := strings.Index(section[2:], "\n## "); j >= 0 {
			section = section[:j+2]
		}
	} else {
		t.Fatal("OPERATIONS.md has no Gateway section")
	}
	documented := map[string]bool{}
	for _, m := range regexp.MustCompile("\\| `-([a-z-]+)` \\|").FindAllStringSubmatch(section, -1) {
		documented[m[1]] = true
	}

	for f := range real {
		if !documented[f] {
			t.Errorf("flag -%s exists but is missing from the gateway flags table", f)
		}
	}
	for f := range documented {
		if !real[f] {
			t.Errorf("gateway flags table documents -%s, which no longer exists", f)
		}
	}
}
