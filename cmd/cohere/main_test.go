package main

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func runOK(t *testing.T, args ...string) string {
	t.Helper()
	var b bytes.Buffer
	if err := run(context.Background(), args, &b); err != nil {
		t.Fatalf("run(%v): %v", args, err)
	}
	return b.String()
}

func runErr(t *testing.T, args ...string) error {
	t.Helper()
	var b bytes.Buffer
	err := run(context.Background(), args, &b)
	if err == nil {
		t.Fatalf("run(%v): expected error, got:\n%s", args, b.String())
	}
	return err
}

func TestList(t *testing.T) {
	out := runOK(t, "list")
	for _, want := range []string{"fig1", "fig11", "table8", "packet", "Figure 4"} {
		if !strings.Contains(out, want) {
			t.Errorf("list output missing %q", want)
		}
	}
}

func TestRunFigure(t *testing.T) {
	out := runOK(t, "figure", "5")
	if !strings.Contains(out, "Dragon") || !strings.Contains(out, "processing power") {
		t.Errorf("figure 5 output unexpected:\n%s", out[:200])
	}
}

func TestRunTableShorthand(t *testing.T) {
	out := runOK(t, "table", "1")
	if !strings.Contains(out, "clean miss (mem)") {
		t.Error("table 1 output missing operations")
	}
}

func TestRunByID(t *testing.T) {
	out := runOK(t, "run", "table8")
	if !strings.Contains(out, "apl") {
		t.Error("table8 output missing apl row")
	}
}

func TestRunJSON(t *testing.T) {
	out := runOK(t, "run", "-json", "fig5")
	var ds struct {
		ID     string `json:"id"`
		Series []struct {
			Name string    `json:"name"`
			Y    []float64 `json:"y"`
		} `json:"series"`
	}
	if err := json.Unmarshal([]byte(out), &ds); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if ds.ID != "fig5" || len(ds.Series) != 5 {
		t.Errorf("json dataset wrong: id=%q series=%d", ds.ID, len(ds.Series))
	}
}

func TestAllOutDir(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "artifacts")
	runOK(t, "all", "-scale", "0.05", "-out", dir)
	for _, want := range []string{"fig4.txt", "fig4.json", "table8.csv", "patel.txt"} {
		if _, err := os.Stat(filepath.Join(dir, want)); err != nil {
			t.Errorf("missing artifact %s: %v", want, err)
		}
	}
	// Chart-only datasets get .txt and .json but no .csv.
	if _, err := os.Stat(filepath.Join(dir, "fig7.csv")); err == nil {
		t.Error("fig7.csv should not exist (chart-only dataset)")
	}
}

func TestRunCSV(t *testing.T) {
	out := runOK(t, "run", "-csv", "table1")
	if !strings.HasPrefix(out, "operation,cpu time,bus time") {
		t.Errorf("csv header wrong: %q", strings.SplitN(out, "\n", 2)[0])
	}
}

func TestRunValidationScaled(t *testing.T) {
	out := runOK(t, "run", "-scale", "0.1", "-preset", "thor", "fig1")
	if !strings.Contains(out, "thor") {
		t.Error("fig1 output should name the preset")
	}
}

func TestEval(t *testing.T) {
	out := runOK(t, "eval", "-scheme", "swflush", "-procs", "4", "-set", "apl=2", "-level", "mid")
	if !strings.Contains(out, "Software-Flush") {
		t.Error("eval output missing scheme name")
	}
	if !strings.Contains(out, "bus utilization") {
		t.Error("eval output missing table")
	}
}

func TestSweep(t *testing.T) {
	out := runOK(t, "sweep", "-scheme", "swflush", "-param", "apl", "-from", "1", "-to", "8", "-steps", "4", "-procs", "4")
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) < 7 {
		t.Errorf("sweep output too short:\n%s", out)
	}
}

func TestErrors(t *testing.T) {
	runErr(t)
	runErr(t, "bogus")
	runErr(t, "run")
	runErr(t, "run", "fig99")
	runErr(t, "figure", "99")
	runErr(t, "eval", "-scheme", "firefly")
	runErr(t, "eval", "-level", "extreme")
	runErr(t, "eval", "-set", "bogus")
	runErr(t, "eval", "-set", "apl=abc")
	runErr(t, "sweep", "-steps", "1")
	runErr(t, "sweep", "-param", "nope")
	runErr(t, "run", "-csv", "fig7") // fig7 is chart-only: no tabular data for CSV
}

func TestHelp(t *testing.T) {
	runOK(t, "help")
}

func TestAdviseDefault(t *testing.T) {
	out := runOK(t, "advise")
	if !strings.Contains(out, "1     Dragon") {
		t.Errorf("bus advise should rank Dragon first:\n%s", out)
	}
}

func TestAdviseNetwork(t *testing.T) {
	out := runOK(t, "advise", "-stages", "8")
	if strings.Contains(out, "Dragon") {
		t.Error("network advise must exclude snoopy schemes")
	}
	if !strings.Contains(out, "Software-Flush") {
		t.Error("network advise missing Software-Flush")
	}
}

func TestAdviseParamsFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "w.json")
	if err := os.WriteFile(path, []byte(`{"shd": 0.05}`), 0o644); err != nil {
		t.Fatal(err)
	}
	out := runOK(t, "advise", "-params", path)
	if !strings.Contains(out, "efficiency") {
		t.Error("advise output missing efficiency column")
	}
	runErr(t, "advise", "-params", "/does/not/exist")
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte(`{"nope": 1}`), 0o644); err != nil {
		t.Fatal(err)
	}
	runErr(t, "advise", "-params", bad)
}

func TestParseSet(t *testing.T) {
	name, v, err := parseSet("apl=3.5")
	if err != nil || name != "apl" || v != 3.5 {
		t.Errorf("parseSet: %q %g %v", name, v, err)
	}
	var m multiFlag
	if err := m.Set("a=1"); err != nil {
		t.Fatal(err)
	}
	if err := m.Set("b=2"); err != nil {
		t.Fatal(err)
	}
	if m.String() != "a=1,b=2" {
		t.Errorf("multiFlag.String = %q", m.String())
	}
}

func TestEvalBreakdown(t *testing.T) {
	out := runOK(t, "eval", "-scheme", "nocache", "-breakdown", "-procs", "2")
	if !strings.Contains(out, "bus share") || !strings.Contains(out, "read through") {
		t.Errorf("breakdown output incomplete:\n%s", out)
	}
}

func TestCompare(t *testing.T) {
	out := runOK(t, "compare", "-a", "low", "-b", "high", "-procs", "8")
	if !strings.Contains(out, "No-Cache") || !strings.Contains(out, "change") {
		t.Errorf("compare output incomplete:\n%s", out)
	}
	path := filepath.Join(t.TempDir(), "w.json")
	if err := os.WriteFile(path, []byte(`{"apl": 2}`), 0o644); err != nil {
		t.Fatal(err)
	}
	runOK(t, "compare", "-a", "mid", "-b", path)
	runErr(t, "compare", "-a", "nope-level-nor-file")
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte(`{"apl": 0}`), 0o644); err != nil {
		t.Fatal(err)
	}
	runErr(t, "compare", "-b", bad)
}
