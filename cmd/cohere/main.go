// Command cohere is the main CLI for the swcc library: it regenerates
// every table and figure of the paper, evaluates individual schemes, and
// sweeps workload parameters.
//
// Usage:
//
//	cohere list
//	cohere run <id> [-scale F] [-preset NAME] [-procs N] [-csv]
//	cohere all [-scale F] [-csv] [-parallel N]
//	cohere eval -scheme NAME [-procs N] [-level low|mid|high] [-set k=v ...]
//	cohere sweep -scheme NAME -param NAME -from F -to F [-steps N] [-procs N]
//
// `cohere all -parallel N` caps how many experiments run concurrently;
// the default 0 uses every core. Output is identical at any setting —
// parallelism only changes wall-clock time.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"

	"swcc/internal/core"
	"swcc/internal/experiments"
	"swcc/internal/report"
	"swcc/internal/sweep"
)

func main() {
	// SIGINT/SIGTERM cancel the context; the experiment runners and the
	// refine engine stop claiming grid cells at their next cancellation
	// point instead of finishing work nobody will read.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "cohere:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, out io.Writer) error {
	if len(args) == 0 {
		usage()
		return fmt.Errorf("no command")
	}
	switch args[0] {
	case "list":
		return cmdList(out)
	case "run", "figure", "table":
		return cmdRun(ctx, args[0], args[1:], out)
	case "all":
		return cmdAll(ctx, args[1:], out)
	case "eval":
		return cmdEval(args[1:], out)
	case "sweep":
		return cmdSweep(args[1:], out)
	case "refine":
		return cmdRefine(ctx, args[1:], out)
	case "advise":
		return cmdAdvise(args[1:], out)
	case "compare":
		return cmdCompare(args[1:], out)
	case "help", "-h", "--help":
		usage()
		return nil
	default:
		usage()
		return fmt.Errorf("unknown command %q", args[0])
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  cohere list                      list every reproducible table/figure
  cohere run <id>                  regenerate one artifact (e.g. fig4, table8)
  cohere figure <n>                shorthand for run fig<n>
  cohere table <n>                 shorthand for run table<n>
  cohere all                       regenerate everything
  cohere eval -scheme NAME         evaluate one scheme on the bus
  cohere sweep -scheme NAME -param NAME -from F -to F
                                   sweep a workload parameter
  cohere refine -schemes A,B -axis procs|PARAM -from F -to F
                                   locate best-scheme crossovers by
                                   adaptive subdivision
  cohere advise [-params FILE]     rank coherence schemes for a workload
                                   (-all ranks every registered scheme)
  cohere compare -a W1 -b W2       compare schemes across two workloads
                                   (level names or JSON files)

registered schemes: `+strings.Join(core.SchemeNames(), ", "))
}

func cmdList(out io.Writer) error {
	tab := &report.Table{Header: []string{"id", "paper", "title"}}
	for _, s := range experiments.All() {
		tab.AddRow(s.ID, s.Paper, s.Title)
	}
	return tab.WriteText(out)
}

// outputMode selects among text, CSV, and JSON rendering.
type outputMode struct {
	csv  *bool
	json *bool
}

func experimentFlags(fs *flag.FlagSet) (*float64, *string, *int, outputMode) {
	scale := fs.Float64("scale", 1.0, "validation trace length scale (0..1]")
	preset := fs.String("preset", "", "trace preset for validation figures (pops, thor, pero)")
	procs := fs.Int("procs", 0, "override maximum processor count")
	mode := outputMode{
		csv:  fs.Bool("csv", false, "emit the data table as CSV instead of text"),
		json: fs.Bool("json", false, "emit the full dataset as JSON"),
	}
	return scale, preset, procs, mode
}

func cmdRun(ctx context.Context, cmd string, args []string, out io.Writer) error {
	fs := flag.NewFlagSet(cmd, flag.ContinueOnError)
	scale, preset, procs, mode := experimentFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("%s needs exactly one experiment id", cmd)
	}
	id := fs.Arg(0)
	switch cmd {
	case "figure":
		id = "fig" + id
	case "table":
		id = "table" + id
	}
	ds, err := experiments.RunCtx(ctx, id, experiments.Options{
		TraceScale: *scale, Preset: *preset, MaxProcessors: *procs,
	})
	if err != nil {
		return err
	}
	return emit(out, ds, mode)
}

func cmdAll(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("all", flag.ContinueOnError)
	scale, preset, procs, mode := experimentFlags(fs)
	parallel := fs.Int("parallel", 0, "experiments to run concurrently (0 = all cores)")
	outDir := fs.String("out", "", "write <id>.txt/.csv/.json per experiment into this directory")
	if err := fs.Parse(args); err != nil {
		return err
	}
	datasets, err := experiments.RunAllCtx(ctx, experiments.Options{
		TraceScale: *scale, Preset: *preset, MaxProcessors: *procs,
	}, *parallel)
	if err != nil {
		return err
	}
	if *outDir != "" {
		return writeArtifactDir(*outDir, datasets, out)
	}
	specs := experiments.All()
	for i, ds := range datasets {
		fmt.Fprintf(out, "==== %s (%s) ====\n", specs[i].ID, specs[i].Paper)
		if err := emit(out, ds, mode); err != nil {
			return err
		}
		fmt.Fprintln(out)
	}
	return nil
}

// writeArtifactDir writes every dataset's renderings into dir: the text
// form always, CSV when the dataset has a table, and JSON always.
func writeArtifactDir(dir string, datasets []*experiments.Dataset, log io.Writer) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	writeFile := func(name string, fill func(io.Writer) error) error {
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			return err
		}
		if err := fill(f); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}
	for _, ds := range datasets {
		rendered, err := ds.Render()
		if err != nil {
			return fmt.Errorf("%s: %w", ds.ID, err)
		}
		if err := writeFile(ds.ID+".txt", func(w io.Writer) error {
			_, err := io.WriteString(w, rendered)
			return err
		}); err != nil {
			return err
		}
		if ds.Table != nil {
			if err := writeFile(ds.ID+".csv", ds.Table.WriteCSV); err != nil {
				return err
			}
		}
		if err := writeFile(ds.ID+".json", ds.WriteJSON); err != nil {
			return err
		}
		fmt.Fprintf(log, "wrote %s\n", ds.ID)
	}
	return nil
}

func cmdAdvise(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("advise", flag.ContinueOnError)
	paramsFile := fs.String("params", "", "JSON workload file (paper parameter names; omitted fields default to middle)")
	level := fs.String("level", "mid", "base parameter level when no -params file is given")
	procs := fs.Int("procs", 16, "bus machine size")
	stages := fs.Int("stages", 0, "network stages (0 = shared bus)")
	all := fs.Bool("all", false, "rank every registered scheme, not just the advisor's default candidates")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var p core.Params
	if *paramsFile != "" {
		f, err := os.Open(*paramsFile)
		if err != nil {
			return err
		}
		defer f.Close()
		if p, err = core.ReadParams(f); err != nil {
			return err
		}
	} else {
		var err error
		if p, err = paramsForLevel(*level); err != nil {
			return err
		}
	}
	// Default candidates come from the registry's Advise set; -all ranks
	// every registered scheme (the network model still skips bus-only
	// ones, which is reported below rather than treated as an error).
	var candidates []core.Scheme
	var infos []core.Info
	if *all {
		infos = core.RegisteredSchemes()
		for _, info := range infos {
			candidates = append(candidates, info.Scheme)
		}
	} else {
		candidates = core.DefaultCandidates()
	}
	var ranked []core.Ranking
	var err error
	var hw string
	if *stages == 0 {
		hw = fmt.Sprintf("%d-processor bus", *procs)
		// The ranking re-evaluates Base for every candidate's efficiency
		// figure; a caching evaluator solves it once.
		ranked, err = core.RankBusWith(sweep.NewEvaluator(), candidates, p, core.BusCosts(), *procs)
	} else {
		hw = fmt.Sprintf("%d-processor circuit-switched network", 1<<*stages)
		ranked, err = core.RankNetwork(candidates, p, *stages)
	}
	if err != nil {
		return err
	}
	if *all {
		// Every scheme the hardware supports must have produced a
		// ranking; a silent drop means a scheme's frequency table or
		// registration metadata is broken.
		present := map[string]bool{}
		for _, r := range ranked {
			present[r.Scheme.Name()] = true
		}
		var missing []string
		for _, info := range infos {
			if *stages > 0 && info.BusOnly {
				continue // the network model rejects these by design
			}
			if !present[info.Scheme.Name()] {
				missing = append(missing, info.Scheme.Name())
			}
		}
		if len(missing) > 0 {
			return fmt.Errorf("advise -all: registered scheme(s) missing from the ranking: %s",
				strings.Join(missing, ", "))
		}
	}
	fmt.Fprintf(out, "coherence schemes ranked for a %s:\n\n", hw)
	tab := &report.Table{Header: []string{"rank", "scheme", "power", "efficiency vs Base"}}
	for i, r := range ranked {
		tab.AddRow(fmt.Sprint(i+1), r.Scheme.Name(),
			fmt.Sprintf("%.2f", r.Power), fmt.Sprintf("%.1f%%", 100*r.Efficiency))
	}
	return tab.WriteText(out)
}

func cmdCompare(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("compare", flag.ContinueOnError)
	aSpec := fs.String("a", "mid", "first workload: low/mid/high or a JSON file")
	bSpec := fs.String("b", "high", "second workload: low/mid/high or a JSON file")
	procs := fs.Int("procs", 16, "bus machine size")
	if err := fs.Parse(args); err != nil {
		return err
	}
	load := func(spec string) (core.Params, error) {
		if p, err := paramsForLevel(spec); err == nil {
			return p, nil
		}
		f, err := os.Open(spec)
		if err != nil {
			return core.Params{}, fmt.Errorf("workload %q is neither a level nor a readable file: %w", spec, err)
		}
		defer f.Close()
		return core.ReadParams(f)
	}
	pa, err := load(*aSpec)
	if err != nil {
		return err
	}
	pb, err := load(*bSpec)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "processing power at %d processors: %q vs %q\n\n", *procs, *aSpec, *bSpec)
	tab := &report.Table{Header: []string{"scheme", *aSpec, *bSpec, "change"}}
	for _, info := range core.RegisteredSchemes() {
		s := info.Scheme
		pwA, err := core.BusPower(s, pa, core.BusCosts(), *procs)
		if err != nil {
			return err
		}
		pwB, err := core.BusPower(s, pb, core.BusCosts(), *procs)
		if err != nil {
			return err
		}
		tab.AddRow(s.Name(),
			fmt.Sprintf("%.2f", pwA), fmt.Sprintf("%.2f", pwB),
			fmt.Sprintf("%+.1f%%", 100*(pwB-pwA)/pwA))
	}
	return tab.WriteText(out)
}

func emit(out io.Writer, ds *experiments.Dataset, mode outputMode) error {
	if mode.json != nil && *mode.json {
		return ds.WriteJSON(out)
	}
	if mode.csv != nil && *mode.csv {
		if ds.Table == nil {
			return fmt.Errorf("%s has no tabular data for CSV output", ds.ID)
		}
		return ds.Table.WriteCSV(out)
	}
	rendered, err := ds.Render()
	if err != nil {
		return err
	}
	fmt.Fprint(out, rendered)
	return nil
}

func cmdEval(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("eval", flag.ContinueOnError)
	schemeName := fs.String("scheme", "dragon",
		"scheme: "+strings.Join(core.SchemeNames(), ", ")+" (or any registered alias)")
	procs := fs.Int("procs", 16, "bus machine sizes to sweep")
	level := fs.String("level", "mid", "parameter level: low, mid, high")
	breakdown := fs.Bool("breakdown", false, "itemize the per-operation demand before the machine sweep")
	var sets multiFlag
	fs.Var(&sets, "set", "override one parameter, e.g. -set apl=4 (repeatable)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	s, err := core.SchemeByName(*schemeName)
	if err != nil {
		return err
	}
	p, err := paramsForLevel(*level)
	if err != nil {
		return err
	}
	for _, kv := range sets {
		name, val, err := parseSet(kv)
		if err != nil {
			return err
		}
		if p, err = p.With(name, val); err != nil {
			return err
		}
	}
	d, err := core.ComputeDemand(s, p, core.BusCosts())
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "%s: c = %.4f cpu cycles/instr, b = %.4f bus cycles/instr\n\n", s.Name(), d.CPU, d.Interconnect)
	if *breakdown {
		ocs, _, err := core.DemandBreakdown(s, p, core.BusCosts())
		if err != nil {
			return err
		}
		btab := &report.Table{Header: []string{"operation", "freq/instr", "cpu cycles", "bus cycles", "bus share"}}
		for _, oc := range ocs {
			btab.AddRow(oc.Op.String(),
				fmt.Sprintf("%.6f", oc.Freq),
				fmt.Sprintf("%.4f", oc.CPU),
				fmt.Sprintf("%.4f", oc.Interconnect),
				fmt.Sprintf("%.1f%%", 100*oc.InterconnectShare))
		}
		if err := btab.WriteText(out); err != nil {
			return err
		}
		fmt.Fprintln(out)
	}
	pts, err := core.EvaluateBus(s, p, core.BusCosts(), *procs)
	if err != nil {
		return err
	}
	tab := &report.Table{Header: []string{"processors", "utilization", "power", "bus utilization", "wait cycles"}}
	for _, pt := range pts {
		tab.AddRow(fmt.Sprint(pt.Processors),
			fmt.Sprintf("%.4f", pt.Utilization),
			fmt.Sprintf("%.3f", pt.Power),
			fmt.Sprintf("%.3f", pt.BusUtilization),
			fmt.Sprintf("%.3f", pt.Wait))
	}
	return tab.WriteText(out)
}

func cmdSweep(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("sweep", flag.ContinueOnError)
	schemeName := fs.String("scheme", "swflush", "scheme to evaluate")
	param := fs.String("param", "apl", "parameter to sweep")
	from := fs.Float64("from", 1, "start value")
	to := fs.Float64("to", 64, "end value")
	steps := fs.Int("steps", 16, "number of points")
	procs := fs.Int("procs", 16, "bus machine size")
	level := fs.String("level", "mid", "base parameter level")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *steps < 2 {
		return fmt.Errorf("steps %d < 2", *steps)
	}
	s, err := core.SchemeByName(*schemeName)
	if err != nil {
		return err
	}
	base, err := paramsForLevel(*level)
	if err != nil {
		return err
	}
	tab := &report.Table{Header: []string{*param, "power", "utilization"}}
	for i := 0; i < *steps; i++ {
		v := *from + (*to-*from)*float64(i)/float64(*steps-1)
		p, err := base.With(*param, v)
		if err != nil {
			return err
		}
		pts, err := core.EvaluateBus(s, p, core.BusCosts(), *procs)
		if err != nil {
			return err
		}
		pt := pts[*procs-1]
		tab.AddRow(report.FormatFloat(v), fmt.Sprintf("%.3f", pt.Power), fmt.Sprintf("%.4f", pt.Utilization))
	}
	fmt.Fprintf(out, "%s on %d processors, sweeping %s\n\n", s.Name(), *procs, *param)
	return tab.WriteText(out)
}

func cmdRefine(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("refine", flag.ContinueOnError)
	schemesFlag := fs.String("schemes", "swflush,dragon", "comma-separated competing schemes (at least two)")
	axis := fs.String("axis", sweep.AxisProcs, `axis to refine: "procs" or a workload parameter name`)
	from := fs.Float64("from", 1, "axis start (inclusive)")
	to := fs.Float64("to", 64, "axis end (inclusive)")
	procs := fs.Int("procs", 16, "fixed machine size when the axis is a parameter")
	level := fs.String("level", "mid", "base parameter level: low, mid, high")
	coarse := fs.Int("coarse", 9, "initial grid points, both endpoints included")
	minStep := fs.Float64("min-step", 0, "stop subdividing below this interval width (0 = range/1024)")
	var sets multiFlag
	fs.Var(&sets, "set", "override one base parameter, e.g. -set shd=0.1 (repeatable)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var schemes []core.Scheme
	for _, nm := range strings.Split(*schemesFlag, ",") {
		nm = strings.TrimSpace(nm)
		if nm == "" {
			continue
		}
		s, err := core.SchemeByName(nm)
		if err != nil {
			return err
		}
		schemes = append(schemes, s)
	}
	base, err := paramsForLevel(*level)
	if err != nil {
		return err
	}
	for _, kv := range sets {
		name, val, err := parseSet(kv)
		if err != nil {
			return err
		}
		if base, err = base.With(name, val); err != nil {
			return err
		}
	}
	res, err := sweep.New(0).Refine(ctx, sweep.RefineSpec{
		Schemes: schemes,
		Base:    base,
		Axis:    *axis,
		From:    *from,
		To:      *to,
		Procs:   *procs,
		Coarse:  *coarse,
		MinStep: *minStep,
	})
	if err != nil {
		return err
	}
	header := []string{*axis}
	for _, s := range schemes {
		header = append(header, s.Name())
	}
	tab := &report.Table{Header: append(header, "best")}
	for _, pt := range res.Points {
		row := []string{report.FormatFloat(pt.X)}
		for _, pw := range pt.Power {
			row = append(row, fmt.Sprintf("%.3f", pw))
		}
		tab.AddRow(append(row, schemes[pt.Best].Name())...)
	}
	fmt.Fprintf(out, "adaptive crossover refinement: %s over [%s, %s]\n\n",
		*axis, report.FormatFloat(*from), report.FormatFloat(*to))
	if err := tab.WriteText(out); err != nil {
		return err
	}
	fmt.Fprintln(out)
	if len(res.Boundaries) == 0 {
		fmt.Fprintf(out, "no crossover: %s wins across the whole range\n", schemes[res.Points[0].Best].Name())
	}
	for _, b := range res.Boundaries {
		fmt.Fprintf(out, "crossover: %s -> %s between %s = %s and %s\n",
			schemes[b.LoBest].Name(), schemes[b.HiBest].Name(),
			*axis, report.FormatFloat(b.Lo), report.FormatFloat(b.Hi))
	}
	// Put the saving in terms of the dense grid that would locate the same
	// boundaries: every axis value at the final resolution, every scheme.
	var dense int
	if *axis == sweep.AxisProcs {
		dense = int(*to-*from) + 1
	} else {
		step := *minStep
		if step <= 0 {
			step = (*to - *from) / 1024
		}
		dense = int(math.Ceil((*to-*from)/step)) + 1
	}
	fmt.Fprintf(out, "\n%d cell solves in %d waves (equivalent dense grid: %d)\n",
		res.Solves, res.Waves, dense*len(schemes))
	return nil
}

func paramsForLevel(level string) (core.Params, error) {
	switch level {
	case "low":
		return core.ParamsAt(core.Low), nil
	case "mid", "middle":
		return core.ParamsAt(core.Mid), nil
	case "high":
		return core.ParamsAt(core.High), nil
	}
	return core.Params{}, fmt.Errorf("unknown level %q", level)
}

func parseSet(kv string) (string, float64, error) {
	name, valStr, ok := strings.Cut(kv, "=")
	if !ok {
		return "", 0, fmt.Errorf("bad -set %q, want name=value", kv)
	}
	v, err := strconv.ParseFloat(valStr, 64)
	if err != nil {
		return "", 0, fmt.Errorf("bad -set value %q: %v", valStr, err)
	}
	return name, v, nil
}

// multiFlag collects repeated -set flags.
type multiFlag []string

func (m *multiFlag) String() string     { return strings.Join(*m, ",") }
func (m *multiFlag) Set(s string) error { *m = append(*m, s); return nil }
