// Command traceinfo inspects a multiprocessor address trace: composition
// statistics and, optionally, the full Table 2 workload-parameter
// extraction under a chosen cache geometry.
//
// Usage:
//
//	traceinfo -trace pops.trace
//	traceinfo -trace pops.trace -params -cache 65536 -warmup 0.5
//	tracegen -preset pero | traceinfo -params
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"swcc/internal/core"
	"swcc/internal/measure"
	"swcc/internal/report"
	"swcc/internal/sim"
	"swcc/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "traceinfo:", err)
		os.Exit(1)
	}
}

func run(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("traceinfo", flag.ContinueOnError)
	traceFile := fs.String("trace", "", "trace file (default stdin)")
	textFmt := fs.Bool("textfmt", false, "trace is in the text format")
	blockSize := fs.Int("block", 16, "block size for statistics")
	doParams := fs.Bool("params", false, "extract the Table 2 workload parameters (runs shadow simulations)")
	cacheSize := fs.Int("cache", 64*1024, "cache size for parameter extraction")
	assoc := fs.Int("assoc", 2, "cache associativity for parameter extraction")
	warmup := fs.Float64("warmup", 0.5, "shadow-simulation warmup fraction")
	jsonOut := fs.Bool("json", false, "emit extracted parameters as JSON (model-ready)")
	stability := fs.Bool("stability", false, "split-half measurement stability diagnostic")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var r io.Reader = stdin
	if *traceFile != "" {
		f, err := os.Open(*traceFile)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	var tr *trace.Trace
	var err error
	if *textFmt {
		tr, err = trace.ReadText(r)
	} else {
		tr, err = trace.ReadTrace(r)
	}
	if err != nil {
		return err
	}

	stats, err := trace.ComputeStats(tr, *blockSize)
	if err != nil {
		return err
	}
	if !*jsonOut {
		tab := &report.Table{Header: []string{"metric", "value"}}
		tab.AddRow("processors", fmt.Sprint(stats.NCPU))
		tab.AddRow("records", fmt.Sprint(stats.Total))
		tab.AddRow("ifetches", fmt.Sprint(stats.ByKind[trace.IFetch]))
		tab.AddRow("reads", fmt.Sprint(stats.ByKind[trace.Read]))
		tab.AddRow("writes", fmt.Sprint(stats.ByKind[trace.Write]))
		tab.AddRow("flushes", fmt.Sprint(stats.ByKind[trace.Flush]))
		tab.AddRow("shared data refs", fmt.Sprint(stats.SharedData))
		tab.AddRow(fmt.Sprintf("unique %dB blocks", *blockSize), fmt.Sprint(stats.UniqueBlocks))
		tab.AddRow("ls (data/instr)", fmt.Sprintf("%.4f", stats.LoadStoreFraction()))
		tab.AddRow("shd (shared/data)", fmt.Sprintf("%.4f", stats.SharedFraction()))
		tab.AddRow("wr (write/data)", fmt.Sprintf("%.4f", stats.WriteFraction()))
		if err := tab.WriteText(stdout); err != nil {
			return err
		}
	}

	if !*doParams && !*jsonOut && !*stability {
		return nil
	}
	m, err := measure.Extract(tr, sim.CacheConfig{Size: *cacheSize, BlockSize: *blockSize, Assoc: *assoc}, *warmup)
	if err != nil {
		return err
	}
	if *jsonOut {
		return m.Params.WriteParams(stdout)
	}
	fmt.Fprintf(stdout, "\nTable 2 parameters (%dB cache, %d-way, %.0f%% warmup):\n\n", *cacheSize, *assoc, *warmup*100)
	tab := &report.Table{Header: []string{"parameter", "value", "Table 7 low", "mid", "high"}}
	for _, f := range core.Fields() {
		p := m.Params
		tab.AddRow(f.Name, fmt.Sprintf("%.4f", f.Get(&p)),
			report.FormatFloat(f.Low), report.FormatFloat(f.Mid), report.FormatFloat(f.High))
	}
	if err := tab.WriteText(stdout); err != nil {
		return err
	}
	src := "inter-processor handoffs"
	if m.FlushDelimited {
		src = "explicit flush records"
	}
	fmt.Fprintf(stdout, "\napl/mdshd measured from %s (%d runs, %d refs)\n", src, m.Runs, m.RunRefs)

	if *stability {
		st, err := measure.Stability(tr, sim.CacheConfig{Size: *cacheSize, BlockSize: *blockSize, Assoc: *assoc}, *warmup)
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "\nsplit-half stability (relative divergence between trace halves):\n\n")
		stab := &report.Table{Header: []string{"parameter", "divergence", "verdict"}}
		for _, f := range core.Fields() {
			v := st[f.Name]
			verdict := "stable"
			switch {
			case v > 0.25:
				verdict = "UNSTABLE — treat as a range"
			case v > 0.10:
				verdict = "noisy"
			}
			stab.AddRow(f.Name, fmt.Sprintf("%.1f%%", 100*v), verdict)
		}
		if err := stab.WriteText(stdout); err != nil {
			return err
		}
	}
	return nil
}
