package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"swcc/internal/trace"
	"swcc/internal/tracegen"
)

func makeTrace(t *testing.T) string {
	t.Helper()
	cfg, err := tracegen.Preset("pops")
	if err != nil {
		t.Fatal(err)
	}
	cfg.InstrPerCPU = 8000
	tr, err := tracegen.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "t.trace")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := trace.WriteTrace(f, tr); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestStatsOnly(t *testing.T) {
	path := makeTrace(t)
	var out bytes.Buffer
	if err := run([]string{"-trace", path}, strings.NewReader(""), &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"processors", "ifetches", "ls (data/instr)", "shd (shared/data)"} {
		if !strings.Contains(s, want) {
			t.Errorf("missing %q", want)
		}
	}
	if strings.Contains(s, "Table 2 parameters") {
		t.Error("params section printed without -params")
	}
}

func TestWithParams(t *testing.T) {
	path := makeTrace(t)
	var out bytes.Buffer
	if err := run([]string{"-trace", path, "-params", "-warmup", "0.5"}, strings.NewReader(""), &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "Table 2 parameters") || !strings.Contains(s, "oclean") {
		t.Errorf("params output incomplete:\n%s", s)
	}
	if !strings.Contains(s, "explicit flush records") {
		t.Error("pops trace should be flush-delimited")
	}
}

func TestJSONOutputFeedsModel(t *testing.T) {
	path := makeTrace(t)
	var out bytes.Buffer
	if err := run([]string{"-trace", path, "-json"}, strings.NewReader(""), &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "\"apl\"") {
		t.Errorf("json output missing apl: %s", out.String())
	}
}

func TestStabilityFlag(t *testing.T) {
	path := makeTrace(t)
	var out bytes.Buffer
	if err := run([]string{"-trace", path, "-stability", "-warmup", "0.25"}, strings.NewReader(""), &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "split-half stability") || !strings.Contains(s, "divergence") {
		t.Errorf("stability output incomplete:\n%s", s)
	}
}

func TestTextFormatFromStdin(t *testing.T) {
	cfg := tracegen.DefaultConfig()
	cfg.InstrPerCPU = 500
	tr, err := tracegen.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := trace.WriteText(&buf, tr); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := run([]string{"-textfmt"}, &buf, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "records") {
		t.Error("stats missing")
	}
}

func TestErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-trace", "/no/such/file"}, strings.NewReader(""), &out); err == nil {
		t.Error("want error for missing file")
	}
	if err := run(nil, strings.NewReader("junk"), &out); err == nil {
		t.Error("want error for garbage input")
	}
	path := makeTrace(t)
	if err := run([]string{"-trace", path, "-block", "13"}, strings.NewReader(""), &out); err == nil {
		t.Error("want error for bad block size")
	}
	if err := run([]string{"-trace", path, "-params", "-warmup", "2"}, strings.NewReader(""), &out); err == nil {
		t.Error("want error for bad warmup")
	}
}
