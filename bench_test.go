package swcc_test

// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (see DESIGN.md's per-experiment index), plus ablation and
// micro benchmarks for the solvers and the simulator. Each
// table/figure benchmark regenerates the artifact's full dataset per
// iteration and reports a headline metric from the reproduction as a
// custom benchmark unit, so `go test -bench=.` doubles as the
// reproduction run.

import (
	"testing"

	"swcc"
	"swcc/internal/core"
	"swcc/internal/experiments"
	"swcc/internal/queueing"
	"swcc/internal/sim"
	"swcc/internal/tracegen"
)

// benchOpts keeps validation traces moderate so the full bench suite
// stays in CI-friendly time.
var benchOpts = experiments.Options{TraceScale: 0.25}

// runExperiment is the shared driver: regenerate the dataset b.N times.
func runExperiment(b *testing.B, id string, opt experiments.Options) *experiments.Dataset {
	b.Helper()
	var ds *experiments.Dataset
	var err error
	for i := 0; i < b.N; i++ {
		ds, err = experiments.Run(id, opt)
		if err != nil {
			b.Fatal(err)
		}
	}
	return ds
}

// lastY returns the final value of the named series.
func lastY(b *testing.B, ds *experiments.Dataset, name string) float64 {
	b.Helper()
	for _, s := range ds.Series {
		if s.Name == name && len(s.Y) > 0 {
			return s.Y[len(s.Y)-1]
		}
	}
	b.Fatalf("series %q not found in %s", name, ds.ID)
	return 0
}

// ---- Tables ----

func BenchmarkTable1SystemModel(b *testing.B) {
	runExperiment(b, "table1", benchOpts)
}

func BenchmarkTables3to6Frequencies(b *testing.B) {
	runExperiment(b, "table3", benchOpts)
}

func BenchmarkTable7ParameterRanges(b *testing.B) {
	runExperiment(b, "table7", benchOpts)
}

func BenchmarkTable8Sensitivity(b *testing.B) {
	ds := runExperiment(b, "table8", benchOpts)
	_ = ds
	tab, err := swcc.AnalyzeSensitivity(swcc.Schemes(), 16)
	if err != nil {
		b.Fatal(err)
	}
	c, _ := tab.Cell("apl", "Software-Flush")
	b.ReportMetric(c.PercentChange, "apl-swflush-%")
}

func BenchmarkTable9NetworkModel(b *testing.B) {
	runExperiment(b, "table9", benchOpts)
}

// ---- Validation figures ----

func BenchmarkFigure1Validation(b *testing.B) {
	ds := runExperiment(b, "fig1", benchOpts)
	b.ReportMetric(lastY(b, ds, "Dragon sim"), "dragon-sim-power4")
	b.ReportMetric(lastY(b, ds, "Dragon model"), "dragon-model-power4")
}

func BenchmarkFigure2CacheSize(b *testing.B) {
	ds := runExperiment(b, "fig2", benchOpts)
	b.ReportMetric(lastY(b, ds, "256K sim"), "power4-256K")
}

func BenchmarkFigure3EightCPU(b *testing.B) {
	ds := runExperiment(b, "fig3", benchOpts)
	b.ReportMetric(lastY(b, ds, "64K sim"), "power8-64K")
}

// ---- Bus figures ----

func BenchmarkFigure4LowSharing(b *testing.B) {
	ds := runExperiment(b, "fig4", benchOpts)
	b.ReportMetric(lastY(b, ds, "No-Cache"), "nocache-power16")
}

func BenchmarkFigure5MediumSharing(b *testing.B) {
	ds := runExperiment(b, "fig5", benchOpts)
	b.ReportMetric(lastY(b, ds, "Dragon"), "dragon-power16")
	b.ReportMetric(lastY(b, ds, "Software-Flush"), "swflush-power16")
}

func BenchmarkFigure6HighSharing(b *testing.B) {
	ds := runExperiment(b, "fig6", benchOpts)
	b.ReportMetric(lastY(b, ds, "No-Cache"), "nocache-power16")
}

func BenchmarkFigure7APLCurves(b *testing.B) {
	ds := runExperiment(b, "fig7", benchOpts)
	b.ReportMetric(lastY(b, ds, "SF apl=1"), "sf-apl1-power16")
	b.ReportMetric(lastY(b, ds, "SF apl=100"), "sf-apl100-power16")
}

func BenchmarkFigure8APLLowSharing(b *testing.B) {
	runExperiment(b, "fig8", benchOpts)
}

func BenchmarkFigure9APLMediumSharing(b *testing.B) {
	runExperiment(b, "fig9", benchOpts)
}

// ---- Network figures ----

func BenchmarkFigure10BusVsNetwork(b *testing.B) {
	ds := runExperiment(b, "fig10", benchOpts)
	b.ReportMetric(lastY(b, ds, "Software-Flush (net)"), "swflush-net-power64")
}

func BenchmarkFigure11NetworkUtilization(b *testing.B) {
	runExperiment(b, "fig11", benchOpts)
	u, err := swcc.NetworkUtilization(8, 0.03, 4)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(u, "anchor-utilization")
}

// ---- Extensions / ablations ----

func BenchmarkExtPacketSwitching(b *testing.B) {
	runExperiment(b, "packet", benchOpts)
}

func BenchmarkExtDirectory(b *testing.B) {
	runExperiment(b, "directory", benchOpts)
}

func BenchmarkExtHybrid(b *testing.B) {
	ds := runExperiment(b, "hybrid", benchOpts)
	b.ReportMetric(lastY(b, ds, "Hybrid"), "all-lock-power16")
}

func BenchmarkExtCrossover(b *testing.B) {
	runExperiment(b, "crossover", benchOpts)
	apl, found, err := swcc.APLToMatch(swcc.Dragon{}, swcc.MiddleParams(), swcc.BusCosts(), 16)
	if err != nil || !found {
		b.Fatalf("crossover: %v %v", found, err)
	}
	b.ReportMetric(apl, "apl-to-match-dragon")
}

func BenchmarkExtNetworkMVA(b *testing.B) {
	runExperiment(b, "netmva", benchOpts)
}

func BenchmarkExtFigure10Simulated(b *testing.B) {
	ds := runExperiment(b, "fig10sim", benchOpts)
	b.ReportMetric(lastY(b, ds, "Software-Flush (net)"), "swflush-net-power16")
	b.ReportMetric(lastY(b, ds, "Software-Flush (bus)"), "swflush-bus-power16")
}

func BenchmarkExtPatelValidation(b *testing.B) {
	ds := runExperiment(b, "patel", experiments.Options{TraceScale: 0.1})
	b.ReportMetric(lastY(b, ds, "simulation"), "sim-U-heavy")
	b.ReportMetric(lastY(b, ds, "Patel model"), "model-U-heavy")
}

// BenchmarkExtInvalidate contrasts the Dragon update protocol against
// the write-invalidate extension under simulation (ablation for the
// paper's choice of Dragon).
func BenchmarkExtInvalidate(b *testing.B) {
	cfg, err := tracegen.Preset("pops")
	if err != nil {
		b.Fatal(err)
	}
	cfg.InstrPerCPU = 20_000
	tr, err := tracegen.Generate(cfg)
	if err != nil {
		b.Fatal(err)
	}
	cache := sim.CacheConfig{Size: 64 * 1024, BlockSize: 16, Assoc: 2}
	var dragon, wi float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d, err := sim.Run(sim.Config{NCPU: tr.NCPU, Cache: cache, Protocol: sim.ProtoDragon}, tr)
		if err != nil {
			b.Fatal(err)
		}
		w, err := sim.Run(sim.Config{NCPU: tr.NCPU, Cache: cache, Protocol: sim.ProtoWriteInvalidate}, tr)
		if err != nil {
			b.Fatal(err)
		}
		dragon, wi = d.Power(), w.Power()
	}
	b.ReportMetric(dragon, "dragon-power")
	b.ReportMetric(wi, "write-invalidate-power")
}

func BenchmarkExtBlockSize(b *testing.B) {
	ds := runExperiment(b, "blocksize", benchOpts)
	b.ReportMetric(lastY(b, ds, "simulation"), "sim-power-128B")
}

func BenchmarkExtMemorySpeed(b *testing.B) {
	ds := runExperiment(b, "memspeed", benchOpts)
	b.ReportMetric(lastY(b, ds, "No-Cache"), "nocache-power-16cyc-mem")
}

func BenchmarkExtScenarios(b *testing.B) {
	runExperiment(b, "scenarios", benchOpts)
}

func BenchmarkExtEnvelope(b *testing.B) {
	runExperiment(b, "envelope", benchOpts)
}

// BenchmarkAblationContentionModel quantifies how much of the model's
// prediction comes from the queueing term: utilization with and without
// contention at 16 processors (DESIGN.md ablation).
func BenchmarkAblationContentionModel(b *testing.B) {
	p := core.MiddleParams()
	var withW, withoutW float64
	for i := 0; i < b.N; i++ {
		pts, err := core.EvaluateBus(core.SoftwareFlush{}, p, core.BusCosts(), 16)
		if err != nil {
			b.Fatal(err)
		}
		withW = pts[15].Power
		withoutW = 16.0 / pts[15].CPU
	}
	b.ReportMetric(withW, "power-with-contention")
	b.ReportMetric(withoutW, "power-no-contention")
}

// ---- Micro benchmarks ----

func BenchmarkMVASolver(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := queueing.SingleServerMVA(20, 3, 64); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPatelSolver(b *testing.B) {
	pn := queueing.NewPatelNetwork(8)
	for i := 0; i < b.N; i++ {
		if _, err := pn.SolvePatel(0.05, 20); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDemandComputation(b *testing.B) {
	p := core.MiddleParams()
	costs := core.BusCosts()
	for i := 0; i < b.N; i++ {
		if _, err := core.ComputeDemand(core.Dragon{}, p, costs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTraceGeneration(b *testing.B) {
	cfg := tracegen.DefaultConfig()
	cfg.InstrPerCPU = 10_000
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr, err := tracegen.Generate(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.SetBytes(int64(len(tr.Refs)))
	}
}

func BenchmarkSimulatorThroughput(b *testing.B) {
	cfg := tracegen.DefaultConfig()
	cfg.InstrPerCPU = 10_000
	tr, err := tracegen.Generate(cfg)
	if err != nil {
		b.Fatal(err)
	}
	simCfg := sim.Config{NCPU: tr.NCPU, Cache: sim.CacheConfig{Size: 64 * 1024, BlockSize: 16, Assoc: 2}, Protocol: sim.ProtoDragon}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Run(simCfg, tr); err != nil {
			b.Fatal(err)
		}
		b.SetBytes(int64(len(tr.Refs)))
	}
}

func BenchmarkExtPacketValidation(b *testing.B) {
	ds := runExperiment(b, "packetsim", experiments.Options{TraceScale: 0.1})
	b.ReportMetric(lastY(b, ds, "sim latency"), "sim-latency-heavy")
	b.ReportMetric(lastY(b, ds, "model latency"), "model-latency-heavy")
}
