// Quickstart: compare the four coherence schemes of Owicki & Agarwal on
// a shared-bus multiprocessor at the paper's middle workload.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"swcc"
)

func main() {
	p := swcc.MiddleParams()
	costs := swcc.BusCosts()

	fmt.Println("Owicki & Agarwal (ASPLOS'89): cache-coherence schemes on a shared bus")
	fmt.Printf("workload: ls=%.2f msdat=%.3f shd=%.2f wr=%.2f apl=%.1f\n\n", p.LS, p.MsDat, p.Shd, p.WR, p.APL)

	fmt.Printf("%-16s %12s %12s %12s %12s\n", "scheme", "c (cpu/ins)", "b (bus/ins)", "power @4", "power @16")
	for _, s := range swcc.Schemes() {
		d, err := swcc.ComputeDemand(s, p, costs)
		if err != nil {
			log.Fatal(err)
		}
		pts, err := swcc.EvaluateBus(s, p, costs, 16)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-16s %12.4f %12.4f %12.2f %12.2f\n",
			s.Name(), d.CPU, d.Interconnect, pts[3].Power, pts[15].Power)
	}

	fmt.Println("\nReading the table: Base is the no-coherence upper bound; the snoopy")
	fmt.Println("Dragon hardware stays close to it; Software-Flush lands in between;")
	fmt.Println("No-Cache pays a memory trip per shared reference and saturates the bus.")

	// The same comparison under a hostile workload (high ls and shd).
	hostile := p
	hostile.LS, hostile.Shd = 0.4, 0.42
	fmt.Println("\nhostile workload (ls=0.40, shd=0.42), power @16:")
	for _, s := range swcc.Schemes() {
		pw, err := swcc.BusPower(s, hostile, costs, 16)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-16s %6.2f\n", s.Name(), pw)
	}
	fmt.Println("\nSoftware coherence is workload-sensitive: always size shd, ls, and apl")
	fmt.Println("for YOUR programs before picking a software scheme (the paper's thesis).")
}
