// Lockdesign uses the hybrid-coherence extension to answer a question
// the paper's Section 2.2.3 raises but leaves to the machine designers:
// the Elxsi 6400 lets the programmer pick No-Cache or Software-Flush per
// shared variable, and the MultiTitan hard-wires "locks uncached,
// everything else flushed" — when is that split actually right?
//
//	go run ./examples/lockdesign
package main

import (
	"fmt"
	"log"

	"swcc"
)

func main() {
	const procs = 16
	costs := swcc.BusCosts()

	fmt.Println("Hybrid software coherence: uncached locks + flushed shared data")
	fmt.Printf("(%d-processor bus, middle workload except where noted)\n\n", procs)

	// Scenario: 30% of shared references are lock accesses. Lock
	// accesses are inherently migratory — if cached and flushed they
	// would achieve apl ~= 1.2. The remaining shared data flushes at
	// the episode-sized apl below.
	const lockShare = 0.30
	const lockAPL = 1.2

	fmt.Printf("%12s %14s %14s %14s %12s\n",
		"data apl", "all No-Cache", "all SF", "hybrid", "best")
	for _, dataAPL := range []float64{2, 4, 8, 16, 32} {
		// All-Software-Flush: every shared reference flushes at the
		// reference-weighted average apl (locks drag it down).
		blended := 1 / (lockShare/lockAPL + (1-lockShare)/dataAPL)
		pAll, err := swcc.MiddleParams().With("apl", blended)
		if err != nil {
			log.Fatal(err)
		}
		allSF, err := swcc.BusPower(swcc.SoftwareFlush{}, pAll, costs, procs)
		if err != nil {
			log.Fatal(err)
		}

		// All-No-Cache ignores apl entirely.
		allNC, err := swcc.BusPower(swcc.NoCache{}, swcc.MiddleParams(), costs, procs)
		if err != nil {
			log.Fatal(err)
		}

		// Hybrid: locks uncached; data flushes at its own apl.
		pHy, err := swcc.MiddleParams().With("apl", dataAPL)
		if err != nil {
			log.Fatal(err)
		}
		hy, err := swcc.BusPower(swcc.Hybrid{LockFrac: lockShare}, pHy, costs, procs)
		if err != nil {
			log.Fatal(err)
		}

		best := "hybrid"
		if allSF > hy && allSF > allNC {
			best = "all SF"
		} else if allNC > hy && allNC > allSF {
			best = "all No-Cache"
		}
		fmt.Printf("%12g %14.2f %14.2f %14.2f %12s\n", dataAPL, allNC, allSF, hy, best)
	}

	fmt.Println("\nThe MultiTitan call holds up: once non-lock data achieves even a")
	fmt.Println("modest apl, taking migratory lock traffic out of the flush machinery")
	fmt.Println("beats both pure schemes.")

	// And the design-space inverse: how much sharing can each scheme
	// afford while keeping 75% of Base's power?
	base, err := swcc.BusPower(swcc.Base{}, swcc.MiddleParams(), costs, procs)
	if err != nil {
		log.Fatal(err)
	}
	target := 0.75 * base
	fmt.Printf("\nsharing budget to retain 75%% of Base power (%.1f):\n", target)
	for _, s := range []swcc.Scheme{swcc.Dragon{}, swcc.Hybrid{LockFrac: lockShare}, swcc.SoftwareFlush{}, swcc.NoCache{}} {
		shd, found, err := swcc.MaxShdForPower(s, swcc.MiddleParams(), costs, procs, target)
		if err != nil {
			log.Fatal(err)
		}
		if !found {
			fmt.Printf("  %-16s unreachable at any sharing level\n", s.Name())
			continue
		}
		fmt.Printf("  %-16s shd <= %.3f\n", s.Name(), shd)
	}
}
