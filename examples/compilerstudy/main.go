// Compilerstudy explores the question at the heart of the paper's
// Software-Flush analysis (Sections 5.3 and 7): how good does compiler
// flush placement have to be — i.e. how many references to a shared
// block must elapse between flushes (apl) — before software coherence is
// competitive with snoopy hardware?
//
//	go run ./examples/compilerstudy
package main

import (
	"fmt"
	"log"

	"swcc"
)

func main() {
	const procs = 16
	costs := swcc.BusCosts()

	for _, level := range []swcc.Level{swcc.Low, swcc.Mid} {
		p := swcc.MiddleParams()
		var err error
		if p, err = p.WithLevel("shd", level); err != nil {
			log.Fatal(err)
		}

		dragon, err := swcc.BusPower(swcc.Dragon{}, p, costs, procs)
		if err != nil {
			log.Fatal(err)
		}
		nocache, err := swcc.BusPower(swcc.NoCache{}, p, costs, procs)
		if err != nil {
			log.Fatal(err)
		}

		fmt.Printf("=== %s sharing (shd=%.2f), %d processors ===\n", level, p.Shd, procs)
		fmt.Printf("references:  Dragon %.2f | No-Cache %.2f\n\n", dragon, nocache)
		fmt.Printf("%8s %10s %22s\n", "apl", "SF power", "verdict")

		beatNoCache, beatDragon90, beatDragon := -1.0, -1.0, -1.0
		for _, apl := range []float64{1, 1.5, 2, 3, 4, 6, 8, 12, 16, 24, 32, 48, 64, 96, 128} {
			q, err := p.With("apl", apl)
			if err != nil {
				log.Fatal(err)
			}
			sf, err := swcc.BusPower(swcc.SoftwareFlush{}, q, costs, procs)
			if err != nil {
				log.Fatal(err)
			}
			verdict := "below No-Cache"
			switch {
			case sf >= dragon:
				verdict = "matches Dragon"
			case sf >= 0.9*dragon:
				verdict = "within 10% of Dragon"
			case sf > nocache:
				verdict = "beats No-Cache"
			}
			if beatNoCache < 0 && sf > nocache {
				beatNoCache = apl
			}
			if beatDragon90 < 0 && sf >= 0.9*dragon {
				beatDragon90 = apl
			}
			if beatDragon < 0 && sf >= dragon {
				beatDragon = apl
			}
			fmt.Printf("%8g %10.2f %22s\n", apl, sf, verdict)
		}
		fmt.Println()
		report := func(label string, apl float64) {
			if apl < 0 {
				fmt.Printf("  %-28s never in the swept range\n", label)
			} else {
				fmt.Printf("  %-28s apl >= %g\n", label, apl)
			}
		}
		report("beats No-Cache at", beatNoCache)
		report("within 10% of Dragon at", beatDragon90)
		report("matches Dragon at", beatDragon)
		fmt.Println()
	}

	fmt.Println("The paper's closing caveat applies: if a shared variable is frequently")
	fmt.Println("updated by different processors it gets ~2 references per flush no")
	fmt.Println("matter how clever the compiler — software coherence then cannot win.")
}
