// Netscaling reproduces the narrative of the paper's Section 6: software
// coherence on a 256-processor circuit-switched multistage network —
// where snoopy hardware cannot follow, because there is no broadcast
// medium to snoop.
//
//	go run ./examples/netscaling
package main

import (
	"errors"
	"fmt"
	"log"

	"swcc"
)

func main() {
	fmt.Println("Software cache coherence on multistage interconnection networks")
	fmt.Println("(256 processors = 8 stages of 2x2 crossbars, circuit switched)")

	// Snoopy hardware needs a bus: the model refuses it on a network.
	_, err := swcc.EvaluateNetworkAt(swcc.Dragon{}, swcc.MiddleParams(), 8)
	if err == nil {
		log.Fatal("expected Dragon to be rejected on a network")
	}
	fmt.Printf("\nDragon on a network: %v\n", errors.Unwrap(err))

	// Scaling sweep: 2 .. 1024 processors.
	fmt.Printf("\n%-16s", "processors:")
	for stages := 1; stages <= 10; stages++ {
		fmt.Printf("%7d", 1<<stages)
	}
	fmt.Println()
	for _, s := range []swcc.Scheme{swcc.Base{}, swcc.SoftwareFlush{}, swcc.NoCache{}} {
		pts, err := swcc.EvaluateNetwork(s, swcc.MiddleParams(), 10)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-16s", s.Name())
		for _, pt := range pts {
			fmt.Printf("%7.1f", pt.Power)
		}
		fmt.Println()
	}
	fmt.Println("\nBoth software schemes scale (power keeps growing), Software-Flush")
	fmt.Println("more efficiently: fewer, longer messages suit circuit switching,")
	fmt.Println("where every transaction pays the n-cycle path set-up.")

	// The paper's utilization anchor.
	u, err := swcc.NetworkUtilization(8, 0.03, 4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nAnchor (Sec. 6.3): 3%% transaction rate x 4-word messages -> U = %.2f (roughly halved)\n", u)

	// Workload classes at 256 processors.
	fmt.Println("\nutilization at 256 processors by scheme and workload range:")
	fmt.Printf("%-16s %8s %8s %8s\n", "scheme", "low", "mid", "high")
	for _, s := range []swcc.Scheme{swcc.Base{}, swcc.SoftwareFlush{}, swcc.NoCache{}} {
		fmt.Printf("%-16s", s.Name())
		for _, l := range []swcc.Level{swcc.Low, swcc.Mid, swcc.High} {
			pt, err := swcc.EvaluateNetworkAt(s, swcc.ParamsAt(l), 8)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf(" %8.3f", pt.Utilization)
		}
		fmt.Println()
	}
	fmt.Println("\nTwo classes emerge (paper Fig. 11): Base everywhere, Software-Flush")
	fmt.Println("at low/mid, and No-Cache at low are usable; the rest are much poorer.")

	// Extension: packet switching.
	fmt.Println("\nEXTENSION — packet switching (paper Sec. 7 future work), 256 procs:")
	for _, s := range []swcc.Scheme{swcc.SoftwareFlush{}, swcc.NoCache{}} {
		c, err := swcc.EvaluateNetworkAt(s, swcc.MiddleParams(), 8)
		if err != nil {
			log.Fatal(err)
		}
		pk, err := swcc.EvaluatePacketNetwork(s, swcc.MiddleParams(), 8)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-16s circuit %6.1f -> packet %6.1f (x%.2f)\n", s.Name(), c.Power, pk.Power, pk.Power/c.Power)
	}
	fmt.Println("As the paper predicted, removing the path-setup cost helps No-Cache most.")
}
