// Validation walks the paper's Section 3 methodology end to end:
// generate a multiprocessor address trace, extract the workload
// parameters from it, replay it through the trace-driven cache/bus
// simulator, and check the analytical model against the simulation.
//
//	go run ./examples/validation
package main

import (
	"fmt"
	"log"

	"swcc"
)

func main() {
	// 1. A POPS-like 4-processor trace (synthetic stand-in for the
	// paper's ATUM-2 traces).
	cfg, err := swcc.TracePreset("pops")
	if err != nil {
		log.Fatal(err)
	}
	tr, err := swcc.GenerateTrace(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trace %q: %d CPUs, %d records\n", cfg.Name, tr.NCPU, len(tr.Refs))

	// 2. Measure the Table 2 parameters with 64KB caches.
	cache := swcc.CacheConfig{Size: 64 * 1024, BlockSize: 16, Assoc: 2}
	m, err := swcc.MeasureParams(tr, cache, 0.5)
	if err != nil {
		log.Fatal(err)
	}
	p := m.Params
	fmt.Printf("\nmeasured parameters:\n")
	fmt.Printf("  ls=%.3f msdat=%.4f mains=%.4f md=%.3f\n", p.LS, p.MsDat, p.MsIns, p.MD)
	fmt.Printf("  shd=%.3f wr=%.3f apl=%.1f mdshd=%.3f\n", p.Shd, p.WR, p.APL, p.MdShd)
	fmt.Printf("  oclean=%.3f opres=%.3f nshd=%.2f\n", p.OClean, p.OPres, p.NShd)

	// 3. Model vs simulation for Base and Dragon at 1..4 processors.
	fmt.Printf("\n%-8s %-10s %10s %10s %8s\n", "scheme", "procs", "sim power", "model", "error")
	for _, pair := range []struct {
		proto  swcc.Protocol
		scheme swcc.Scheme
	}{
		{swcc.ProtoBase, swcc.Base{}},
		{swcc.ProtoDragon, swcc.Dragon{}},
	} {
		modelPts, err := swcc.EvaluateBus(pair.scheme, p, swcc.BusCosts(), tr.NCPU)
		if err != nil {
			log.Fatal(err)
		}
		for n := 1; n <= tr.NCPU; n++ {
			sub := tr.Restrict(n)
			res, err := swcc.Simulate(swcc.SimConfig{
				NCPU: n, Cache: cache, Protocol: pair.proto,
				WarmupRefs: len(sub.Refs) / 2,
			}, sub)
			if err != nil {
				log.Fatal(err)
			}
			simPower := res.Power()
			modelPower := modelPts[n-1].Power
			fmt.Printf("%-8s %-10d %10.3f %10.3f %7.1f%%\n",
				pair.scheme.Name(), n, simPower, modelPower,
				100*(modelPower-simPower)/simPower)
		}
	}
	fmt.Println("\nAs in the paper, the model tracks the simulation closely and slightly")
	fmt.Println("overestimates contention (exponential vs fixed bus service times).")
}
