// Package swcc is the public API of the swcc library, a reproduction of
// Owicki & Agarwal, "Evaluating the Performance of Software Cache
// Coherence" (ASPLOS 1989).
//
// The library has three layers, all re-exported here:
//
//   - The analytical model (internal/core): workload parameters (Params),
//     coherence schemes (Base, No-Cache, Software-Flush, Dragon), and the
//     bus/network contention models that turn them into processing-power
//     predictions. Start with MiddleParams and EvaluateBus.
//   - The validation substrate: a synthetic multiprocessor trace
//     generator (GenerateTrace, TracePreset), a trace-driven
//     multiprocessor cache+bus simulator (Simulate), and workload
//     parameter extraction (MeasureParams).
//   - The experiment registry (RunExperiment, Experiments): one runnable
//     experiment per table and figure of the paper.
//
// Quick start:
//
//	p := swcc.MiddleParams()
//	pts, err := swcc.EvaluateBus(swcc.Dragon{}, p, swcc.BusCosts(), 16)
//	// pts[15].Power is the 16-processor machine's processing power.
package swcc

import (
	"io"

	"swcc/internal/core"
	"swcc/internal/experiments"
	"swcc/internal/measure"
	"swcc/internal/netsim"
	"swcc/internal/sensitivity"
	"swcc/internal/sim"
	"swcc/internal/trace"
	"swcc/internal/tracegen"
)

// ---- Analytical model (the paper's contribution) ----

// Params holds the eleven workload parameters of paper Table 2.
type Params = core.Params

// Level selects a Table 7 range row (Low, Mid, High).
type Level = core.Level

// Table 7 levels.
const (
	Low  = core.Low
	Mid  = core.Mid
	High = core.High
)

// Scheme is a coherence scheme's workload model.
type Scheme = core.Scheme

// The paper's four schemes plus the extensions.
type (
	// Base is the coherence-free upper bound.
	Base = core.Base
	// NoCache marks shared data uncacheable.
	NoCache = core.NoCache
	// SoftwareFlush purges shared blocks with explicit flushes.
	SoftwareFlush = core.SoftwareFlush
	// Dragon is the snoopy write-broadcast hardware protocol.
	Dragon = core.Dragon
	// Directory is the directory-hardware extension.
	Directory = core.Directory
	// Hybrid mixes No-Cache locks with Software-Flush data
	// (Elxsi/MultiTitan style).
	Hybrid = core.Hybrid
	// WriteInvalidate is the MESI-style invalidation-based snoopy
	// hardware protocol.
	WriteInvalidate = core.WriteInvalidate
	// HybridUpdate splits shared writes between update broadcasts and
	// invalidations by a tunable fraction.
	HybridUpdate = core.HybridUpdate
	// PriorityBus wraps a scheme so coherence bus traffic is served at
	// higher priority than processor misses.
	PriorityBus = core.PriorityBus
)

// SchemeInfo is one scheme registry entry: the scheme plus its aliases,
// knob, and model-support metadata.
type SchemeInfo = core.Info

// SchemeInfoByName looks a registered scheme up by any accepted
// spelling.
func SchemeInfoByName(name string) (SchemeInfo, bool) { return core.SchemeInfoByName(name) }

// RegisteredSchemes returns every registered scheme's entry (default
// knob settings) in registration order.
func RegisteredSchemes() []SchemeInfo { return core.RegisteredSchemes() }

// SchemeNames returns the canonical registered scheme names, sorted.
func SchemeNames() []string { return core.SchemeNames() }

// CostTable is a system model: per-operation CPU and interconnect costs.
type CostTable = core.CostTable

// Demand is the per-instruction (c, b) resource demand of a scheme.
type Demand = core.Demand

// BusPoint is a bus-model prediction at one machine size.
type BusPoint = core.BusPoint

// NetworkPoint is a network-model prediction at one machine size.
type NetworkPoint = core.NetworkPoint

// FieldSpec describes one workload parameter and its Table 7 range.
type FieldSpec = core.FieldSpec

// MiddleParams returns the all-middle Table 7 workload, the paper's
// default operating point.
func MiddleParams() Params { return core.MiddleParams() }

// ParamsAt returns a workload with every parameter at the given level.
func ParamsAt(l Level) Params { return core.ParamsAt(l) }

// Fields returns the eleven parameter specs in Table 7 order.
func Fields() []FieldSpec { return core.Fields() }

// Schemes returns the paper's four schemes in presentation order.
func Schemes() []Scheme { return core.PaperSchemes() }

// SchemeByName resolves any registered scheme name or alias ("base",
// "nocache", "swflush", "dragon", "directory", "hybrid", "winv",
// "mesi", "hybrid-update", "swflush-prio", ...); unknown names get an
// error listing the valid canonical names.
func SchemeByName(name string) (Scheme, error) { return core.SchemeByName(name) }

// BusCosts returns the paper's Table 1 bus system model.
func BusCosts() *CostTable { return core.BusCosts() }

// NetworkCosts returns the paper's Table 9 system model for an n-stage
// circuit-switched multistage network.
func NetworkCosts(stages int) *CostTable { return core.NetworkCosts(stages) }

// BusCostsForBlock generalizes Table 1 to a block of `words` 4-byte
// words (Table 1 is the words = 4 instance).
func BusCostsForBlock(words int) *CostTable { return core.BusCostsForBlock(words) }

// NetworkCostsForBlock generalizes Table 9 over block size.
func NetworkCostsForBlock(stages, words int) *CostTable {
	return core.NetworkCostsForBlock(stages, words)
}

// ComputeDemand evaluates equations (1)-(2): per-instruction CPU and
// interconnect cycles for a scheme under a workload and system model.
func ComputeDemand(s Scheme, p Params, costs *CostTable) (Demand, error) {
	return core.ComputeDemand(s, p, costs)
}

// EvaluateBus predicts utilization and processing power on a shared bus
// for machine sizes 1..maxProcs.
func EvaluateBus(s Scheme, p Params, costs *CostTable, maxProcs int) ([]BusPoint, error) {
	return core.EvaluateBus(s, p, costs, maxProcs)
}

// BusPower returns processing power at exactly nproc processors.
func BusPower(s Scheme, p Params, costs *CostTable, nproc int) (float64, error) {
	return core.BusPower(s, p, costs, nproc)
}

// EvaluateNetwork predicts power on circuit-switched multistage networks
// of 2^1..2^maxStages processors.
func EvaluateNetwork(s Scheme, p Params, maxStages int) ([]NetworkPoint, error) {
	return core.EvaluateNetwork(s, p, maxStages)
}

// EvaluateNetworkAt predicts power for the 2^stages-processor network.
func EvaluateNetworkAt(s Scheme, p Params, stages int) (NetworkPoint, error) {
	return core.EvaluateNetworkAt(s, p, stages)
}

// EvaluatePacketNetwork is the packet-switched extension (paper Section 7
// future work).
func EvaluatePacketNetwork(s Scheme, p Params, stages int) (NetworkPoint, error) {
	return core.EvaluatePacketNetwork(s, p, stages)
}

// NetworkUtilization returns the raw Patel utilization for a 2^stages
// machine at the given per-processor transaction rate and message size in
// words (paper Figure 11's axes).
func NetworkUtilization(stages int, rate, msgWords float64) (float64, error) {
	return core.NetworkUtilization(stages, rate, msgWords)
}

// EvaluateNetworkMVA is the alternative load-dependent-server network
// contention model (paper footnote 2).
func EvaluateNetworkMVA(s Scheme, p Params, stages int) (NetworkPoint, error) {
	return core.EvaluateNetworkMVA(s, p, stages)
}

// APLToMatch returns the smallest apl at which Software-Flush matches the
// target scheme's bus processing power (found=false if unreachable).
func APLToMatch(target Scheme, p Params, costs *CostTable, nproc int) (apl float64, found bool, err error) {
	return core.APLToMatch(target, p, costs, nproc)
}

// MaxShdForPower returns the largest sharing fraction at which the scheme
// still delivers minPower on an nproc-processor bus.
func MaxShdForPower(s Scheme, p Params, costs *CostTable, nproc int, minPower float64) (shd float64, found bool, err error) {
	return core.MaxShdForPower(s, p, costs, nproc, minPower)
}

// EfficiencyVsBase returns the scheme's power as a fraction of Base's.
func EfficiencyVsBase(s Scheme, p Params, costs *CostTable, nproc int) (float64, error) {
	return core.EfficiencyVsBase(s, p, costs, nproc)
}

// Ranking scores one scheme on a workload.
type Ranking = core.Ranking

// RankBus sorts candidate schemes by bus processing power (unsupported
// candidates are skipped).
func RankBus(candidates []Scheme, p Params, costs *CostTable, nproc int) ([]Ranking, error) {
	return core.RankBus(candidates, p, costs, nproc)
}

// RankNetwork sorts candidate schemes by network processing power.
func RankNetwork(candidates []Scheme, p Params, stages int) ([]Ranking, error) {
	return core.RankNetwork(candidates, p, stages)
}

// Recommend returns the best implementable coherence scheme for the
// workload on an nproc-processor bus (stages == 0) or a 2^stages network.
func Recommend(p Params, nproc, stages int) (Ranking, error) {
	return core.Recommend(p, nproc, stages)
}

// ReadParams decodes a JSON workload (paper parameter names; omitted
// fields default to Table 7 middle values).
func ReadParams(r io.Reader) (Params, error) { return core.ReadParams(r) }

// ---- Validation substrate ----

// Trace is an interleaved multiprocessor address trace.
type Trace = trace.Trace

// Ref is one trace record.
type Ref = trace.Ref

// TraceConfig controls synthetic trace generation.
type TraceConfig = tracegen.Config

// CacheConfig sizes a per-processor simulated cache.
type CacheConfig = sim.CacheConfig

// SimConfig describes one simulation run.
type SimConfig = sim.Config

// SimResult is a simulation outcome.
type SimResult = sim.Result

// Protocol selects the simulated coherence scheme.
type Protocol = sim.Protocol

// Simulator protocols.
const (
	ProtoBase            = sim.ProtoBase
	ProtoDragon          = sim.ProtoDragon
	ProtoNoCache         = sim.ProtoNoCache
	ProtoSoftwareFlush   = sim.ProtoSoftwareFlush
	ProtoWriteInvalidate = sim.ProtoWriteInvalidate
)

// Medium selects the simulated interconnect.
type Medium = sim.Medium

// Simulator interconnect media.
const (
	// MediumBus is the shared bus (the paper's validation substrate).
	MediumBus = sim.MediumBus
	// MediumNetwork is a circuit-switched multistage butterfly.
	MediumNetwork = sim.MediumNetwork
)

// NetSimConfig configures the cycle-level circuit-switched network
// simulator used to validate Patel's model.
type NetSimConfig = netsim.Config

// NetSimResult is its outcome.
type NetSimResult = netsim.Result

// SimulateNetwork runs the cycle-level multistage-network simulation
// (processors alternating think/transaction against held circuits with
// per-cycle retries).
func SimulateNetwork(cfg NetSimConfig) (*NetSimResult, error) { return netsim.Run(cfg) }

// Measurement holds workload parameters extracted from a trace.
type Measurement = measure.Measurement

// DefaultTraceConfig returns a 4-processor middle-of-the-road workload.
func DefaultTraceConfig() TraceConfig { return tracegen.DefaultConfig() }

// TracePreset returns a named validation workload ("pops", "thor",
// "pero", "pero8").
func TracePreset(name string) (TraceConfig, error) { return tracegen.Preset(name) }

// TracePresets lists the preset names.
func TracePresets() []string { return tracegen.PresetNames() }

// GenerateTrace synthesizes a multiprocessor trace.
func GenerateTrace(cfg TraceConfig) (*Trace, error) { return tracegen.Generate(cfg) }

// Simulate replays a trace under a coherence protocol on per-processor
// caches and a contended bus.
func Simulate(cfg SimConfig, t *Trace) (*SimResult, error) { return sim.Run(cfg, t) }

// MeasureParams extracts the Table 2 workload parameters from a trace,
// warming the shadow-simulation caches on the leading warmupFrac of the
// records.
func MeasureParams(t *Trace, cache CacheConfig, warmupFrac float64) (*Measurement, error) {
	return measure.Extract(t, cache, warmupFrac)
}

// MeasureStability reports, per parameter, the relative divergence
// between measurements on the two halves of the trace — a diagnostic
// for whether the trace is long and stationary enough to trust.
func MeasureStability(t *Trace, cache CacheConfig, warmupFrac float64) (map[string]float64, error) {
	return measure.Stability(t, cache, warmupFrac)
}

// ---- Sensitivity analysis and experiments ----

// SensitivityTable is the Table 8 reproduction.
type SensitivityTable = sensitivity.Table

// AnalyzeSensitivity runs the one-at-a-time low→high parameter sweep.
func AnalyzeSensitivity(schemes []Scheme, nproc int) (*SensitivityTable, error) {
	return sensitivity.Analyze(schemes, nproc)
}

// Experiment describes one registered table/figure experiment.
type Experiment = experiments.Spec

// ExperimentOptions tunes experiment execution.
type ExperimentOptions = experiments.Options

// Dataset is a regenerated table or figure.
type Dataset = experiments.Dataset

// Experiments lists every registered experiment.
func Experiments() []Experiment { return experiments.All() }

// RunExperiment regenerates one paper artifact by ID ("table8", "fig4",
// ...).
func RunExperiment(id string, opt ExperimentOptions) (*Dataset, error) {
	return experiments.Run(id, opt)
}
