module swcc

go 1.22
