package swcc_test

import (
	"fmt"
	"log"
	"strings"

	"swcc"
)

// The headline comparison: the four schemes on a 16-processor bus at the
// paper's middle workload.
func Example() {
	p := swcc.MiddleParams()
	for _, s := range swcc.Schemes() {
		power, err := swcc.BusPower(s, p, swcc.BusCosts(), 16)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-16s %5.2f\n", s.Name(), power)
	}
	// Output:
	// Base             13.96
	// Dragon           12.66
	// Software-Flush    8.26
	// No-Cache          3.50
}

// Per-instruction demand (paper equations 1-2) for one scheme.
func ExampleComputeDemand() {
	d, err := swcc.ComputeDemand(swcc.NoCache{}, swcc.MiddleParams(), swcc.BusCosts())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("c = %.4f cpu cycles/instr\nb = %.4f bus cycles/instr\n", d.CPU, d.Interconnect)
	// Output:
	// c = 1.3765 cpu cycles/instr
	// b = 0.2855 bus cycles/instr
}

// Software coherence on a multistage network, where snooping is
// impossible (paper Section 6).
func ExampleEvaluateNetworkAt() {
	pt, err := swcc.EvaluateNetworkAt(swcc.SoftwareFlush{}, swcc.MiddleParams(), 8)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d processors: power %.0f (utilization %.2f)\n", pt.Processors, pt.Power, pt.Utilization)
	// Output:
	// 256 processors: power 143 (utilization 0.56)
}

// How good must compiler flush placement be to match snoopy hardware?
func ExampleAPLToMatch() {
	apl, found, err := swcc.APLToMatch(swcc.Dragon{}, swcc.MiddleParams(), swcc.BusCosts(), 16)
	if err != nil || !found {
		log.Fatal(found, err)
	}
	fmt.Printf("Software-Flush matches Dragon at apl >= %.0f references per flush\n", apl)
	// Output:
	// Software-Flush matches Dragon at apl >= 24 references per flush
}

// Workload descriptions load from JSON with the paper's parameter names;
// unspecified parameters take their Table 7 middle values.
func ExampleReadParams() {
	p, err := swcc.ReadParams(strings.NewReader(`{"shd": 0.08, "apl": 25}`))
	if err != nil {
		log.Fatal(err)
	}
	best, err := swcc.Recommend(p, 16, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("light sharing, lazy flushing: build %s (%.0f%% of Base)\n",
		best.Scheme.Name(), 100*best.Efficiency)
	// Output:
	// light sharing, lazy flushing: build Software-Flush+Prio (97% of Base)
}
