package swcc_test

import (
	"math"
	"strings"
	"testing"

	"swcc"
)

// TestQuickstart walks the README quick-start path through the public
// API only.
func TestQuickstart(t *testing.T) {
	p := swcc.MiddleParams()
	pts, err := swcc.EvaluateBus(swcc.Dragon{}, p, swcc.BusCosts(), 16)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 16 {
		t.Fatalf("got %d points", len(pts))
	}
	if pts[15].Power < 10 || pts[15].Power > 16 {
		t.Errorf("Dragon 16-proc power = %.2f, expected strong", pts[15].Power)
	}
}

// TestEndToEndValidation is the full pipeline through the facade:
// generate trace -> measure -> simulate -> model -> compare.
func TestEndToEndValidation(t *testing.T) {
	cfg, err := swcc.TracePreset("pops")
	if err != nil {
		t.Fatal(err)
	}
	cfg.InstrPerCPU = 40_000
	tr, err := swcc.GenerateTrace(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cache := swcc.CacheConfig{Size: 64 * 1024, BlockSize: 16, Assoc: 2}
	m, err := swcc.MeasureParams(tr, cache, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	res, err := swcc.Simulate(swcc.SimConfig{
		NCPU: tr.NCPU, Cache: cache, Protocol: swcc.ProtoDragon,
		WarmupRefs: len(tr.Refs) / 2,
	}, tr)
	if err != nil {
		t.Fatal(err)
	}
	model, err := swcc.BusPower(swcc.Dragon{}, m.Params, swcc.BusCosts(), tr.NCPU)
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(res.Power()-model) / res.Power(); rel > 0.15 {
		t.Errorf("model %.3f vs sim %.3f power: %.0f%% apart", model, res.Power(), rel*100)
	}
}

func TestFacadeSchemes(t *testing.T) {
	if len(swcc.Schemes()) != 4 {
		t.Error("want 4 paper schemes")
	}
	s, err := swcc.SchemeByName("swflush")
	if err != nil || s.Name() != "Software-Flush" {
		t.Errorf("SchemeByName: %v, %v", s, err)
	}
	if len(swcc.Fields()) != 11 {
		t.Error("want 11 fields")
	}
	if len(swcc.TracePresets()) != 6 {
		t.Error("want 6 presets")
	}
}

func TestFacadeNetwork(t *testing.T) {
	pt, err := swcc.EvaluateNetworkAt(swcc.SoftwareFlush{}, swcc.MiddleParams(), 8)
	if err != nil {
		t.Fatal(err)
	}
	if pt.Processors != 256 {
		t.Errorf("processors = %d", pt.Processors)
	}
	u, err := swcc.NetworkUtilization(8, 0.03, 4)
	if err != nil {
		t.Fatal(err)
	}
	if u < 0.3 || u > 0.7 {
		t.Errorf("anchor utilization = %.3f", u)
	}
	pk, err := swcc.EvaluatePacketNetwork(swcc.NoCache{}, swcc.MiddleParams(), 8)
	if err != nil {
		t.Fatal(err)
	}
	if pk.Power <= 0 {
		t.Error("packet network power")
	}
	nets, err := swcc.EvaluateNetwork(swcc.Base{}, swcc.MiddleParams(), 4)
	if err != nil || len(nets) != 4 {
		t.Errorf("EvaluateNetwork: %d points, %v", len(nets), err)
	}
	if _, err := swcc.ComputeDemand(swcc.Dragon{}, swcc.MiddleParams(), swcc.NetworkCosts(4)); err == nil {
		t.Error("Dragon on network must fail")
	}
}

func TestFacadeNetworkSimulator(t *testing.T) {
	res, err := swcc.SimulateNetwork(swcc.NetSimConfig{
		Stages: 4, Think: 100, Hold: 12, Cycles: 20_000, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Utilization <= 0 || res.Utilization >= 1 {
		t.Errorf("utilization = %g", res.Utilization)
	}
	model, err := swcc.NetworkUtilization(4, 1.0/100, 12-2*4)
	if err != nil {
		t.Fatal(err)
	}
	if diff := res.Utilization - model; diff > 0.1 || diff < -0.1 {
		t.Errorf("sim %g vs model %g diverge", res.Utilization, model)
	}
}

func TestFacadeSimulatorMedia(t *testing.T) {
	cfg := swcc.DefaultTraceConfig()
	cfg.NCPU = 2
	cfg.InstrPerCPU = 2000
	tr, err := swcc.GenerateTrace(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cache := swcc.CacheConfig{Size: 16 * 1024, BlockSize: 16, Assoc: 2}
	res, err := swcc.Simulate(swcc.SimConfig{
		NCPU: 2, Cache: cache, Protocol: swcc.ProtoSoftwareFlush, Medium: swcc.MediumNetwork,
	}, tr)
	if err != nil {
		t.Fatal(err)
	}
	if res.Power() <= 0 {
		t.Error("network-medium power")
	}
	if _, err := swcc.Simulate(swcc.SimConfig{
		NCPU: 2, Cache: cache, Protocol: swcc.ProtoDragon, Medium: swcc.MediumNetwork,
	}, tr); err == nil {
		t.Error("Dragon on simulated network must fail")
	}
}

func TestFacadeSensitivity(t *testing.T) {
	tab, err := swcc.AnalyzeSensitivity(swcc.Schemes(), 8)
	if err != nil {
		t.Fatal(err)
	}
	ranked := tab.MostSensitive("Software-Flush")
	if ranked[0].Param != "apl" {
		t.Errorf("most sensitive = %s", ranked[0].Param)
	}
}

func TestFacadeExperiments(t *testing.T) {
	if len(swcc.Experiments()) < 19 {
		t.Errorf("registry has %d experiments", len(swcc.Experiments()))
	}
	ds, err := swcc.RunExperiment("fig5", swcc.ExperimentOptions{})
	if err != nil {
		t.Fatal(err)
	}
	out, err := ds.Render()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Dragon") {
		t.Error("render missing scheme names")
	}
}

// TestFacadeSurface touches every remaining facade entry point so the
// public API stays wired to the internals.
func TestFacadeSurface(t *testing.T) {
	p := swcc.MiddleParams()
	if swcc.BusCostsForBlock(8).Cost(0).CPU != 1 {
		t.Error("BusCostsForBlock instruction cost")
	}
	if !swcc.NetworkCostsForBlock(4, 8).Defines(1) {
		t.Error("NetworkCostsForBlock clean miss undefined")
	}
	ranked, err := swcc.RankBus(swcc.Schemes(), p, swcc.BusCosts(), 8)
	if err != nil || len(ranked) != 4 {
		t.Fatalf("RankBus: %d, %v", len(ranked), err)
	}
	netRanked, err := swcc.RankNetwork(swcc.Schemes(), p, 6)
	if err != nil || len(netRanked) != 3 {
		t.Fatalf("RankNetwork: %d, %v", len(netRanked), err)
	}
	mva, err := swcc.EvaluateNetworkMVA(swcc.SoftwareFlush{}, p, 6)
	if err != nil || mva.Power <= 0 {
		t.Fatalf("EvaluateNetworkMVA: %+v, %v", mva, err)
	}
	shd, found, err := swcc.MaxShdForPower(swcc.Dragon{}, p, swcc.BusCosts(), 8, 6)
	if err != nil || !found || shd <= 0 {
		t.Fatalf("MaxShdForPower: %g %v %v", shd, found, err)
	}
	eff, err := swcc.EfficiencyVsBase(swcc.Dragon{}, p, swcc.BusCosts(), 8)
	if err != nil || eff <= 0 || eff > 1 {
		t.Fatalf("EfficiencyVsBase: %g, %v", eff, err)
	}
	cfg := swcc.DefaultTraceConfig()
	cfg.NCPU = 2
	cfg.InstrPerCPU = 3000
	tr, err := swcc.GenerateTrace(cfg)
	if err != nil {
		t.Fatal(err)
	}
	st, err := swcc.MeasureStability(tr, swcc.CacheConfig{Size: 16 * 1024, BlockSize: 16, Assoc: 2}, 0.25)
	if err != nil || len(st) != 11 {
		t.Fatalf("MeasureStability: %d, %v", len(st), err)
	}
	if _, err := swcc.ComputeDemand(swcc.Hybrid{LockFrac: 0.2}, p, swcc.BusCosts()); err != nil {
		t.Fatalf("Hybrid demand: %v", err)
	}
	if nets, err := swcc.EvaluateNetwork(swcc.Directory{}, p, 3); err != nil || len(nets) != 3 {
		t.Fatalf("EvaluateNetwork Directory: %v", err)
	}
}

func TestFacadeLevels(t *testing.T) {
	lo, hi := swcc.ParamsAt(swcc.Low), swcc.ParamsAt(swcc.High)
	if lo.Shd >= hi.Shd {
		t.Error("levels not ordered")
	}
	if swcc.Mid.String() != "mid" {
		t.Error("level string")
	}
}
