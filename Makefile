# swcc — reproduction of Owicki & Agarwal, ASPLOS 1989.
# Standard targets; everything runs offline with the Go toolchain only.

GO ?= go

.PHONY: all build test vet race race-hammer bench bench-short bench-json bench-diff alloc-check check serve smoke schemes-smoke chaos-smoke jobs-smoke gw-smoke loadgen docs-check artifacts examples golden cover clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Race-detector pass over the whole module; the sweep engine and the
# parallel experiment runners make this a first-class gate.
race:
	$(GO) test -race ./...

# Full benchmark suite: one benchmark per paper table/figure plus
# solver/simulator micro benchmarks.
bench:
	$(GO) test -bench=. -benchmem ./...

# Quick perf signal: the sweep engine (sequential vs parallel vs cached,
# with the speedup metric) and the simulator hot loop only.
bench-short:
	$(GO) test -run=NONE -bench='BenchmarkSweep|BenchmarkEvaluator' -benchmem ./internal/sweep
	$(GO) test -run=NONE -bench='BenchmarkSimHotLoop|BenchmarkTraceRestrict' -benchmem ./internal/sim

# This PR's serving-latency record: cohereload drives the hit-heavy and
# miss-heavy mixes against an in-process daemon, then the async-job
# drill and the gateway drill append their scenarios to the same record
# (later invocations merge into an existing -out file rather than
# clobbering it). Earlier records (BENCH_PR3..8.json) are append-only
# history — bench-json never rewrites them, so `bench-diff` always
# compares against the numbers the previous PR actually merged with.
bench-json:
	$(GO) run ./cmd/cohereload -c 8 -d 3s -hit-ratios 0.95,0.05 \
		-out BENCH_PR10.json > /dev/null
	$(GO) run ./cmd/cohereload -jobs -out BENCH_PR10.json > /dev/null
	$(GO) run ./cmd/cohereload -gw -c 8 -d 2s -out BENCH_PR10.json > /dev/null
	@echo "bench-json: wrote BENCH_PR10.json (latency mixes + jobs + gateway drills)"

# Cross-PR regression gate: compare the newest benchmark record against
# the newest earlier record sharing a scenario, and fail if p99 latency
# rose or throughput fell beyond the noise band (see cmd/benchdiff).
bench-diff:
	$(GO) run ./cmd/benchdiff

# Allocation pins, run WITHOUT the race detector (its instrumentation
# perturbs testing.AllocsPerRun): the warm BusPoint path must stay at
# zero allocations and the warm extend path within its budget.
alloc-check:
	$(GO) test -run 'Alloc' ./internal/core ./internal/sweep

# Focused race hammers: the shared-evaluator and shared-server stress
# tests, repeated, under the race detector — the concurrency gate on the
# sharded cache, the singleflight paths, and the batch endpoint fan-out.
race-hammer:
	$(GO) test -race -count=2 \
		-run 'TestEvaluatorConcurrentHammer|TestSingleflightColdKeyRace|TestConcurrentRequestsBitIdentical' \
		./internal/sweep ./internal/serve

# Documentation gate: every exported identifier in the serving stack
# must carry a doc comment (OPERATIONS.md's and SCHEMES.md's drift
# tests run under `test`/`race`, so the whole docs surface is enforced
# by `check`).
docs-check:
	$(GO) run ./cmd/doccheck

# Registry gate: the advisor must rank every registered scheme on the
# Figure-4 workload (paper middle column, 16-processor bus) without
# error — `advise -all` exits nonzero if any bus-capable registration
# is missing from the ranking, so a half-wired protocol (registered
# but failing to evaluate) cannot slip through.
schemes-smoke:
	$(GO) run ./cmd/cohere advise -all -level mid -procs 16 > /dev/null
	@echo "schemes-smoke: ok (every registered scheme ranked)"

# Overload drill: cohereload's chaos mode drives a tiny fault-injected
# daemon with patient and abandoning client fleets, and exits nonzero
# unless admission control shed at least once and the daemon never
# answered 500 (see OPERATIONS.md's overload runbook).
chaos-smoke:
	$(GO) run ./cmd/cohereload -chaos -c 12 -d 1s > /dev/null
	@echo "chaos-smoke: ok (no 500s, shedding observed)"

# Async-job drill: cohereload's jobs mode submits a 20k-point grid job
# against an in-process daemon, streams every NDJSON row, then cancels
# a second job mid-stream and checks it is gone (see OPERATIONS.md's
# job API section). Runs under the race detector: the job runner, the
# spool's back-pressure, and the streaming handler all cross goroutines.
jobs-smoke:
	$(GO) run -race ./cmd/cohereload -jobs > /dev/null
	@echo "jobs-smoke: ok (all rows streamed, cancel verified)"

# Gateway drill: cohereload's gw mode boots two cache-capped in-process
# backends behind the affinity gateway and exits nonzero unless (1)
# affinity routing beats a fresh round-robin control by >= 1.5x on
# aggregate backend cache-hit ratio with p99 no worse, (2) a backend
# killed mid-load never surfaces as a client 500/502, and (3) a
# snapshot-restarted backend serves its old working set with zero new
# solves (see OPERATIONS.md's gateway section).
gw-smoke:
	$(GO) run ./cmd/cohereload -gw -c 8 -d 1s > /dev/null
	@echo "gw-smoke: ok (affinity wins, failover clean, warm restart verified)"

# The pre-merge gate: vet, the race-enabled test run, the repeated
# concurrency hammers, the allocation pins (non-race), the
# documentation and scheme-registry gates, and the overload +
# async-job + gateway drills.
check: vet race race-hammer alloc-check docs-check schemes-smoke chaos-smoke jobs-smoke gw-smoke

# Run the model-serving daemon in the foreground.
COHERED_ADDR ?= 127.0.0.1:8080
serve:
	$(GO) run ./cmd/cohered -addr $(COHERED_ADDR)

# End-to-end smoke test: build the daemon, start it on an ephemeral-ish
# port, hit /healthz and one /v1/bus query, then shut it down (SIGTERM
# exercises the graceful-shutdown path).
SMOKE_ADDR ?= 127.0.0.1:18080
smoke:
	@$(GO) build -o /tmp/cohered.smoke ./cmd/cohered
	@/tmp/cohered.smoke -addr $(SMOKE_ADDR) -quiet & pid=$$!; \
	trap 'kill $$pid 2>/dev/null' EXIT; \
	for i in $$(seq 1 50); do \
		curl -sf http://$(SMOKE_ADDR)/healthz >/dev/null 2>&1 && break; sleep 0.1; \
	done; \
	curl -sf http://$(SMOKE_ADDR)/healthz || { echo "smoke: healthz failed"; exit 1; }; \
	curl -sf -X POST -d '{"scheme": "dragon", "procs": 8}' http://$(SMOKE_ADDR)/v1/bus \
		| grep -q '"Power"' || { echo "smoke: /v1/bus failed"; exit 1; }; \
	curl -sf -X POST -d '{"points": [{"scheme": "dragon", "procs": 8, "point": true}, {"scheme": "base", "procs": 8, "point": true}]}' \
		http://$(SMOKE_ADDR)/v1/sweep \
		| grep -q '"count":2' || { echo "smoke: /v1/sweep failed"; exit 1; }; \
	kill -TERM $$pid; wait $$pid; \
	echo "smoke: ok"

# Short load-generation run against an in-process daemon: a hit-heavy
# and a miss-heavy mix, p50/p90/p99 to stdout (see OPERATIONS.md's
# latency runbook; LOADGEN_ARGS passes extra cohereload flags, e.g.
# LOADGEN_ARGS='-addr localhost:8080' to load a running daemon).
loadgen:
	$(GO) run ./cmd/cohereload -c 8 -d 2s -hit-ratios 0.95,0.05 $(LOADGEN_ARGS)

# Regenerate every table and figure into artifacts/ (.txt, .csv, .json).
artifacts:
	$(GO) run ./cmd/cohere all -out artifacts

# Run every bundled example.
examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/compilerstudy
	$(GO) run ./examples/netscaling
	$(GO) run ./examples/validation
	$(GO) run ./examples/lockdesign

# Refresh the pinned analytic outputs after an intentional model change.
golden:
	$(GO) test ./internal/experiments -run TestGolden -update

cover:
	$(GO) test -cover ./...

clean:
	rm -rf artifacts test_output.txt bench_output.txt
