# swcc — reproduction of Owicki & Agarwal, ASPLOS 1989.
# Standard targets; everything runs offline with the Go toolchain only.

GO ?= go

.PHONY: all build test vet bench artifacts examples golden cover clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Full benchmark suite: one benchmark per paper table/figure plus
# solver/simulator micro benchmarks.
bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate every table and figure into artifacts/ (.txt, .csv, .json).
artifacts:
	$(GO) run ./cmd/cohere all -out artifacts

# Run every bundled example.
examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/compilerstudy
	$(GO) run ./examples/netscaling
	$(GO) run ./examples/validation
	$(GO) run ./examples/lockdesign

# Refresh the pinned analytic outputs after an intentional model change.
golden:
	$(GO) test ./internal/experiments -run TestGolden -update

cover:
	$(GO) test -cover ./...

clean:
	rm -rf artifacts test_output.txt bench_output.txt
