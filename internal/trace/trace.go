// Package trace defines the multiprocessor address-trace representation
// shared by the synthetic workload generator (internal/tracegen), the
// trace-driven simulator (internal/sim), and the parameter-extraction
// code (internal/measure).
//
// A trace is an interleaved sequence of per-processor memory references,
// the same shape as the ATUM-2 traces the paper used for validation. In
// addition to instruction fetches, loads, and stores, a trace may carry
// explicit Flush records so Software-Flush executions can be replayed.
package trace

import (
	"errors"
	"fmt"
)

// Kind classifies one trace record.
type Kind uint8

// Record kinds.
const (
	// IFetch is an instruction fetch.
	IFetch Kind = iota
	// Read is a data load.
	Read
	// Write is a data store.
	Write
	// Flush is a software flush instruction naming the block to purge.
	Flush

	numKinds
)

var kindNames = [numKinds]string{"ifetch", "read", "write", "flush"}

// String returns "ifetch", "read", "write", or "flush".
func (k Kind) String() string {
	if k >= numKinds {
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
	return kindNames[k]
}

// IsData reports whether the record is a load or store.
func (k Kind) IsData() bool { return k == Read || k == Write }

// Ref is one memory reference by one processor.
type Ref struct {
	// CPU is the issuing processor, 0-based.
	CPU uint8
	// Kind classifies the reference.
	Kind Kind
	// Addr is the byte address.
	Addr uint64
	// Shared marks references the compiler/programmer designated as
	// shared (drives the software schemes; ignored by hardware ones).
	Shared bool
}

// Trace is a fully materialized interleaved trace.
type Trace struct {
	// NCPU is the number of processors issuing references.
	NCPU int
	// Refs is the interleaved reference stream in global time order.
	Refs []Ref
}

// ErrBadTrace reports a malformed trace or record.
var ErrBadTrace = errors.New("trace: malformed trace")

// Validate checks that every record's CPU lies below NCPU and kinds are
// known.
func (t *Trace) Validate() error {
	if t.NCPU < 1 || t.NCPU > 256 {
		return fmt.Errorf("%w: ncpu %d", ErrBadTrace, t.NCPU)
	}
	for i, r := range t.Refs {
		if int(r.CPU) >= t.NCPU {
			return fmt.Errorf("%w: ref %d cpu %d >= ncpu %d", ErrBadTrace, i, r.CPU, t.NCPU)
		}
		if r.Kind >= numKinds {
			return fmt.Errorf("%w: ref %d kind %d", ErrBadTrace, i, r.Kind)
		}
	}
	return nil
}

// Len returns the number of records.
func (t *Trace) Len() int { return len(t.Refs) }

// PerCPU splits the trace into per-processor streams, preserving order.
// A counting pass sizes each stream exactly, so the split allocates one
// slice per processor instead of growing them by repeated doubling.
func (t *Trace) PerCPU() [][]Ref {
	counts := make([]int, t.NCPU)
	for _, r := range t.Refs {
		if int(r.CPU) < t.NCPU {
			counts[r.CPU]++
		}
	}
	out := make([][]Ref, t.NCPU)
	for c, n := range counts {
		out[c] = make([]Ref, 0, n)
	}
	for _, r := range t.Refs {
		if int(r.CPU) < t.NCPU {
			out[r.CPU] = append(out[r.CPU], r)
		}
	}
	return out
}

// Restrict returns a new trace containing only the references of the
// first ncpu processors, preserving order. It models running the same
// per-processor workloads on a smaller machine, which is how the
// validation experiments sweep 1..N processors from one trace.
func (t *Trace) Restrict(ncpu int) *Trace {
	if ncpu >= t.NCPU {
		return t
	}
	n := 0
	for _, r := range t.Refs {
		if int(r.CPU) < ncpu {
			n++
		}
	}
	out := &Trace{NCPU: ncpu, Refs: make([]Ref, 0, n)}
	for _, r := range t.Refs {
		if int(r.CPU) < ncpu {
			out.Refs = append(out.Refs, r)
		}
	}
	return out
}

// Interleave merges per-processor streams round-robin, one reference per
// processor per turn, mirroring how multiprocessor tracers interleave
// streams. Streams may have different lengths; exhausted streams drop out.
func Interleave(streams [][]Ref) *Trace {
	t := &Trace{NCPU: len(streams)}
	total := 0
	for _, s := range streams {
		total += len(s)
	}
	t.Refs = make([]Ref, 0, total)
	idx := make([]int, len(streams))
	for remaining := total; remaining > 0; {
		for c, s := range streams {
			if idx[c] < len(s) {
				t.Refs = append(t.Refs, s[idx[c]])
				idx[c]++
				remaining--
			}
		}
	}
	return t
}

// Stats summarizes a trace's composition.
type Stats struct {
	// NCPU is the processor count.
	NCPU int
	// Total is the record count.
	Total int
	// ByKind counts records per kind.
	ByKind [4]int
	// ByCPU counts records per processor.
	ByCPU []int
	// SharedData counts data references flagged Shared.
	SharedData int
	// UniqueBlocks is the number of distinct blocks touched, for the
	// given block size in bytes.
	UniqueBlocks int
	// BlockSize is the block size UniqueBlocks was computed with.
	BlockSize int
}

// ComputeStats scans the trace once and summarizes it. blockSize must be a
// power of two.
func ComputeStats(t *Trace, blockSize int) (Stats, error) {
	if blockSize <= 0 || blockSize&(blockSize-1) != 0 {
		return Stats{}, fmt.Errorf("%w: block size %d not a power of two", ErrBadTrace, blockSize)
	}
	if err := t.Validate(); err != nil {
		return Stats{}, err
	}
	s := Stats{NCPU: t.NCPU, Total: len(t.Refs), ByCPU: make([]int, t.NCPU), BlockSize: blockSize}
	blocks := make(map[uint64]struct{})
	shift := 0
	for 1<<shift < blockSize {
		shift++
	}
	for _, r := range t.Refs {
		s.ByKind[r.Kind]++
		s.ByCPU[r.CPU]++
		if r.Kind.IsData() && r.Shared {
			s.SharedData++
		}
		blocks[r.Addr>>shift] = struct{}{}
	}
	s.UniqueBlocks = len(blocks)
	return s, nil
}

// LoadStoreFraction returns the ls workload parameter implied by the
// stats: data references per instruction (flushes are excluded from the
// instruction base, matching the paper's per-non-flush-instruction
// accounting).
func (s Stats) LoadStoreFraction() float64 {
	instr := s.ByKind[IFetch]
	if instr == 0 {
		return 0
	}
	return float64(s.ByKind[Read]+s.ByKind[Write]) / float64(instr)
}

// SharedFraction returns the shd parameter implied by the stats: the
// fraction of data references marked shared.
func (s Stats) SharedFraction() float64 {
	data := s.ByKind[Read] + s.ByKind[Write]
	if data == 0 {
		return 0
	}
	return float64(s.SharedData) / float64(data)
}

// WriteFraction returns the wr parameter restricted to data references:
// stores over loads+stores.
func (s Stats) WriteFraction() float64 {
	data := s.ByKind[Read] + s.ByKind[Write]
	if data == 0 {
		return 0
	}
	return float64(s.ByKind[Write]) / float64(data)
}
