package trace

import (
	"bytes"
	"errors"
	"io"
	"math/rand/v2"
	"strings"
	"testing"
	"testing/quick"
)

func TestBinaryRoundTrip(t *testing.T) {
	tr := sample()
	var buf bytes.Buffer
	if err := WriteTrace(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NCPU != tr.NCPU || len(got.Refs) != len(tr.Refs) {
		t.Fatalf("shape mismatch: %d/%d vs %d/%d", got.NCPU, len(got.Refs), tr.NCPU, len(tr.Refs))
	}
	for i := range tr.Refs {
		if got.Refs[i] != tr.Refs[i] {
			t.Errorf("ref %d: %+v != %+v", i, got.Refs[i], tr.Refs[i])
		}
	}
}

func TestBinaryRoundTripRandom(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	tr := &Trace{NCPU: 8}
	for i := 0; i < 10000; i++ {
		tr.Refs = append(tr.Refs, Ref{
			CPU:    uint8(rng.IntN(8)),
			Kind:   Kind(rng.IntN(4)),
			Addr:   rng.Uint64() >> uint(rng.IntN(40)),
			Shared: rng.IntN(2) == 0,
		})
	}
	var buf bytes.Buffer
	if err := WriteTrace(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range tr.Refs {
		if got.Refs[i] != tr.Refs[i] {
			t.Fatalf("ref %d: %+v != %+v", i, got.Refs[i], tr.Refs[i])
		}
	}
}

func TestBinaryCompression(t *testing.T) {
	// Local address streams should encode in ~2-3 bytes per record,
	// far below the naive 10.
	tr := &Trace{NCPU: 1}
	addr := uint64(0x10000)
	for i := 0; i < 1000; i++ {
		addr += 4
		tr.Refs = append(tr.Refs, Ref{Kind: IFetch, Addr: addr})
	}
	var buf bytes.Buffer
	if err := WriteTrace(&buf, tr); err != nil {
		t.Fatal(err)
	}
	perRecord := float64(buf.Len()-14) / 1000
	if perRecord > 5 {
		t.Errorf("sequential stream costs %.1f bytes/record, want <= 5", perRecord)
	}
}

func TestStreamingWriterReader(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, 4)
	if err != nil {
		t.Fatal(err)
	}
	refs := []Ref{
		{CPU: 0, Kind: Read, Addr: 100},
		{CPU: 3, Kind: Write, Addr: 200, Shared: true},
		{CPU: 1, Kind: Flush, Addr: 300},
	}
	for _, r := range refs {
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if w.Count() != 3 {
		t.Errorf("count = %d", w.Count())
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if r.NCPU != 4 {
		t.Errorf("ncpu = %d", r.NCPU)
	}
	for i := 0; ; i++ {
		ref, err := r.Read()
		if err == io.EOF {
			if i != len(refs) {
				t.Errorf("EOF after %d records, want %d", i, len(refs))
			}
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if ref != refs[i] {
			t.Errorf("record %d: %+v != %+v", i, ref, refs[i])
		}
	}
}

func TestWriterRejectsBadRecords(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Write(Ref{CPU: 33}); err == nil {
		t.Error("want error for cpu out of range")
	}
	// Writer is poisoned after an error.
	if err := w.Write(Ref{CPU: 0}); err == nil {
		t.Error("writer must stay failed")
	}
	if _, err := NewWriter(&buf, 0); err == nil {
		t.Error("want error for ncpu 0")
	}
	if _, err := NewWriter(&buf, 64); err == nil {
		t.Error("want error for ncpu 64")
	}
}

func TestReaderRejectsGarbage(t *testing.T) {
	if _, err := NewReader(strings.NewReader("not a trace at all")); !errors.Is(err, ErrBadTrace) {
		t.Errorf("want ErrBadTrace, got %v", err)
	}
	if _, err := NewReader(strings.NewReader("SW")); err == nil {
		t.Error("want error for short header")
	}
	// Valid header, truncated record.
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, 1)
	_ = w.Write(Ref{Addr: 1 << 40})
	_ = w.Flush()
	data := buf.Bytes()[:buf.Len()-2]
	r, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Read(); err == nil {
		t.Error("want error for truncated record")
	}
}

func TestTextRoundTrip(t *testing.T) {
	tr := sample()
	var buf bytes.Buffer
	if err := WriteText(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := ReadText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NCPU != tr.NCPU || len(got.Refs) != len(tr.Refs) {
		t.Fatalf("shape mismatch")
	}
	for i := range tr.Refs {
		if got.Refs[i] != tr.Refs[i] {
			t.Errorf("ref %d: %+v != %+v", i, got.Refs[i], tr.Refs[i])
		}
	}
}

func TestTextSkipsCommentsAndBlanks(t *testing.T) {
	input := "#swcc-trace ncpu=2\n\n# a comment\n0 r ff s\n1 w 10\n"
	tr, err := ReadText(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Refs) != 2 {
		t.Fatalf("got %d refs, want 2", len(tr.Refs))
	}
	if !tr.Refs[0].Shared || tr.Refs[0].Addr != 0xff {
		t.Errorf("first ref wrong: %+v", tr.Refs[0])
	}
}

func TestTextRejectsGarbage(t *testing.T) {
	cases := []string{
		"",
		"bogus header\n",
		"#swcc-trace ncpu=2\n9 r 10\n",   // cpu out of range
		"#swcc-trace ncpu=2\n0 x 10\n",   // bad kind
		"#swcc-trace ncpu=2\n0 r zzzz\n", // bad addr
		"#swcc-trace ncpu=2\n0 r\n",      // short line
	}
	for i, in := range cases {
		if _, err := ReadText(strings.NewReader(in)); err == nil {
			t.Errorf("case %d: want error", i)
		}
	}
}

func TestBinaryPropertyRoundTrip(t *testing.T) {
	f := func(cpus []uint8, kinds []uint8, addrs []uint64, shared []bool) bool {
		n := len(cpus)
		for _, s := range [][]int{{len(kinds)}, {len(addrs)}, {len(shared)}} {
			if s[0] < n {
				n = s[0]
			}
		}
		tr := &Trace{NCPU: 32}
		for i := 0; i < n; i++ {
			tr.Refs = append(tr.Refs, Ref{
				CPU:    cpus[i] % 32,
				Kind:   Kind(kinds[i] % 4),
				Addr:   addrs[i],
				Shared: shared[i],
			})
		}
		var buf bytes.Buffer
		if err := WriteTrace(&buf, tr); err != nil {
			return false
		}
		got, err := ReadTrace(&buf)
		if err != nil {
			return false
		}
		if len(got.Refs) != len(tr.Refs) {
			return false
		}
		for i := range tr.Refs {
			if got.Refs[i] != tr.Refs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
