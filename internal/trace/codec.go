package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Binary trace format:
//
//	magic   [4]byte "SWCT"
//	version uint8   (1)
//	ncpu    uint8
//	count   uint64  little-endian record count
//	records: per record
//	    header byte: bits 0-1 kind, bit 2 shared flag, bits 3-7 cpu
//	    addr: unsigned varint of the XOR with the previous record's
//	          address on the same CPU (delta-ish coding; traces are
//	          local, so most varints are short)
//
// The format is streaming-friendly: Writer emits records as they come and
// back-patches nothing (count is written up front by WriteTrace, or
// 0xFFFF... for open-ended streams terminated by EOF).

const (
	binaryMagic   = "SWCT"
	binaryVersion = 1
	// openCount marks a stream whose record count is unknown up front;
	// the reader then reads until EOF.
	openCount = ^uint64(0)
)

// Writer streams trace records to an io.Writer in the binary format.
type Writer struct {
	w    *bufio.Writer
	prev [256]uint64
	n    uint64
	err  error
}

// NewWriter writes a stream header for ncpu processors and returns a
// Writer. The stream is open-ended; the reader consumes until EOF.
func NewWriter(w io.Writer, ncpu int) (*Writer, error) {
	if ncpu < 1 || ncpu > 32 {
		return nil, fmt.Errorf("%w: ncpu %d out of [1,32]", ErrBadTrace, ncpu)
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(binaryMagic); err != nil {
		return nil, err
	}
	header := []byte{binaryVersion, byte(ncpu)}
	if _, err := bw.Write(header); err != nil {
		return nil, err
	}
	var cnt [8]byte
	binary.LittleEndian.PutUint64(cnt[:], openCount)
	if _, err := bw.Write(cnt[:]); err != nil {
		return nil, err
	}
	return &Writer{w: bw}, nil
}

// Write appends one record.
func (w *Writer) Write(r Ref) error {
	if w.err != nil {
		return w.err
	}
	if r.CPU >= 32 {
		w.err = fmt.Errorf("%w: cpu %d out of range", ErrBadTrace, r.CPU)
		return w.err
	}
	if r.Kind >= numKinds {
		w.err = fmt.Errorf("%w: kind %d", ErrBadTrace, r.Kind)
		return w.err
	}
	header := byte(r.Kind) & 0x3
	if r.Shared {
		header |= 1 << 2
	}
	header |= r.CPU << 3
	if err := w.w.WriteByte(header); err != nil {
		w.err = err
		return err
	}
	delta := r.Addr ^ w.prev[r.CPU]
	w.prev[r.CPU] = r.Addr
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], delta)
	if _, err := w.w.Write(buf[:n]); err != nil {
		w.err = err
		return err
	}
	w.n++
	return nil
}

// Count returns the number of records written so far.
func (w *Writer) Count() uint64 { return w.n }

// Flush drains buffered output to the underlying writer.
func (w *Writer) Flush() error {
	if w.err != nil {
		return w.err
	}
	return w.w.Flush()
}

// WriteTrace writes a whole trace in the binary format.
func WriteTrace(w io.Writer, t *Trace) error {
	if err := t.Validate(); err != nil {
		return err
	}
	tw, err := NewWriter(w, t.NCPU)
	if err != nil {
		return err
	}
	for _, r := range t.Refs {
		if err := tw.Write(r); err != nil {
			return err
		}
	}
	return tw.Flush()
}

// Reader streams trace records from an io.Reader.
type Reader struct {
	r    *bufio.Reader
	prev [256]uint64
	// NCPU is the processor count from the stream header.
	NCPU int
	// remaining counts records left, or openCount for EOF-terminated
	// streams.
	remaining uint64
}

// NewReader parses the stream header and returns a Reader.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReader(r)
	head := make([]byte, 4+2+8)
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, fmt.Errorf("%w: short header: %v", ErrBadTrace, err)
	}
	if string(head[:4]) != binaryMagic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrBadTrace, head[:4])
	}
	if head[4] != binaryVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrBadTrace, head[4])
	}
	ncpu := int(head[5])
	if ncpu < 1 || ncpu > 32 {
		return nil, fmt.Errorf("%w: ncpu %d", ErrBadTrace, ncpu)
	}
	return &Reader{
		r:         br,
		NCPU:      ncpu,
		remaining: binary.LittleEndian.Uint64(head[6:]),
	}, nil
}

// Read returns the next record, or io.EOF at end of stream.
func (r *Reader) Read() (Ref, error) {
	if r.remaining == 0 {
		return Ref{}, io.EOF
	}
	header, err := r.r.ReadByte()
	if err != nil {
		if err == io.ErrUnexpectedEOF {
			err = io.EOF
		}
		return Ref{}, err
	}
	delta, err := binary.ReadUvarint(r.r)
	if err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return Ref{}, fmt.Errorf("%w: truncated record: %v", ErrBadTrace, err)
	}
	ref := Ref{
		Kind:   Kind(header & 0x3),
		Shared: header&(1<<2) != 0,
		CPU:    header >> 3,
	}
	ref.Addr = r.prev[ref.CPU] ^ delta
	r.prev[ref.CPU] = ref.Addr
	if int(ref.CPU) >= r.NCPU {
		return Ref{}, fmt.Errorf("%w: cpu %d >= ncpu %d", ErrBadTrace, ref.CPU, r.NCPU)
	}
	if r.remaining != openCount {
		r.remaining--
	}
	return ref, nil
}

// ReadTrace reads a whole binary trace.
func ReadTrace(rd io.Reader) (*Trace, error) {
	r, err := NewReader(rd)
	if err != nil {
		return nil, err
	}
	t := &Trace{NCPU: r.NCPU}
	for {
		ref, err := r.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		t.Refs = append(t.Refs, ref)
	}
	return t, nil
}

// WriteText writes the trace in a one-record-per-line text form:
//
//	#swcc-trace ncpu=4
//	0 r 0001f300 s
//	1 i 00004000
//
// Columns: cpu, kind letter (i/r/w/f), hex address, optional "s" shared
// flag.
func WriteText(w io.Writer, t *Trace) error {
	if err := t.Validate(); err != nil {
		return err
	}
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "#swcc-trace ncpu=%d\n", t.NCPU); err != nil {
		return err
	}
	letters := [numKinds]byte{'i', 'r', 'w', 'f'}
	for _, r := range t.Refs {
		var err error
		if r.Shared {
			_, err = fmt.Fprintf(bw, "%d %c %x s\n", r.CPU, letters[r.Kind], r.Addr)
		} else {
			_, err = fmt.Fprintf(bw, "%d %c %x\n", r.CPU, letters[r.Kind], r.Addr)
		}
		if err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadText parses the text form produced by WriteText.
func ReadText(rd io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(rd)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	if !sc.Scan() {
		return nil, fmt.Errorf("%w: empty input", ErrBadTrace)
	}
	header := sc.Text()
	var ncpu int
	if _, err := fmt.Sscanf(header, "#swcc-trace ncpu=%d", &ncpu); err != nil {
		return nil, fmt.Errorf("%w: bad header %q", ErrBadTrace, header)
	}
	t := &Trace{NCPU: ncpu}
	line := 1
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) < 3 {
			return nil, fmt.Errorf("%w: line %d: %q", ErrBadTrace, line, text)
		}
		cpu, err := strconv.ParseUint(fields[0], 10, 8)
		if err != nil {
			return nil, fmt.Errorf("%w: line %d cpu: %v", ErrBadTrace, line, err)
		}
		var kind Kind
		switch fields[1] {
		case "i":
			kind = IFetch
		case "r":
			kind = Read
		case "w":
			kind = Write
		case "f":
			kind = Flush
		default:
			return nil, fmt.Errorf("%w: line %d kind %q", ErrBadTrace, line, fields[1])
		}
		addr, err := strconv.ParseUint(fields[2], 16, 64)
		if err != nil {
			return nil, fmt.Errorf("%w: line %d addr: %v", ErrBadTrace, line, err)
		}
		ref := Ref{CPU: uint8(cpu), Kind: kind, Addr: addr}
		if len(fields) > 3 && fields[3] == "s" {
			ref.Shared = true
		}
		t.Refs = append(t.Refs, ref)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}
