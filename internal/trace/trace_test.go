package trace

import (
	"errors"
	"testing"
)

func sample() *Trace {
	return &Trace{
		NCPU: 2,
		Refs: []Ref{
			{CPU: 0, Kind: IFetch, Addr: 0x1000},
			{CPU: 1, Kind: IFetch, Addr: 0x2000},
			{CPU: 0, Kind: Read, Addr: 0x8000, Shared: true},
			{CPU: 1, Kind: Write, Addr: 0x8000, Shared: true},
			{CPU: 0, Kind: Read, Addr: 0x4000},
			{CPU: 0, Kind: Flush, Addr: 0x8000, Shared: true},
		},
	}
}

func TestKindString(t *testing.T) {
	if IFetch.String() != "ifetch" || Read.String() != "read" ||
		Write.String() != "write" || Flush.String() != "flush" {
		t.Error("kind names wrong")
	}
	if Kind(9).String() == "" {
		t.Error("unknown kind must still print")
	}
	if !Read.IsData() || !Write.IsData() || IFetch.IsData() || Flush.IsData() {
		t.Error("IsData wrong")
	}
}

func TestValidate(t *testing.T) {
	if err := sample().Validate(); err != nil {
		t.Error(err)
	}
	bad := &Trace{NCPU: 1, Refs: []Ref{{CPU: 3, Kind: Read}}}
	if err := bad.Validate(); !errors.Is(err, ErrBadTrace) {
		t.Errorf("want ErrBadTrace, got %v", err)
	}
	if err := (&Trace{NCPU: 0}).Validate(); err == nil {
		t.Error("want error for zero cpus")
	}
	badKind := &Trace{NCPU: 1, Refs: []Ref{{CPU: 0, Kind: Kind(7)}}}
	if err := badKind.Validate(); err == nil {
		t.Error("want error for bad kind")
	}
}

func TestPerCPUAndInterleave(t *testing.T) {
	tr := sample()
	streams := tr.PerCPU()
	if len(streams) != 2 {
		t.Fatalf("got %d streams", len(streams))
	}
	if len(streams[0]) != 4 || len(streams[1]) != 2 {
		t.Fatalf("stream lengths %d/%d, want 4/2", len(streams[0]), len(streams[1]))
	}
	merged := Interleave(streams)
	if merged.Len() != tr.Len() {
		t.Fatalf("merged %d records, want %d", merged.Len(), tr.Len())
	}
	// Round-robin: first records alternate 0,1,0,1 then 0,0.
	wantCPUs := []uint8{0, 1, 0, 1, 0, 0}
	for i, r := range merged.Refs {
		if r.CPU != wantCPUs[i] {
			t.Errorf("pos %d: cpu %d, want %d", i, r.CPU, wantCPUs[i])
		}
	}
	// Per-CPU order preserved.
	back := merged.PerCPU()
	for c := range streams {
		for i := range streams[c] {
			if back[c][i] != streams[c][i] {
				t.Errorf("cpu %d pos %d: order not preserved", c, i)
			}
		}
	}
}

func TestComputeStats(t *testing.T) {
	s, err := ComputeStats(sample(), 16)
	if err != nil {
		t.Fatal(err)
	}
	if s.Total != 6 || s.NCPU != 2 {
		t.Errorf("total/ncpu = %d/%d", s.Total, s.NCPU)
	}
	if s.ByKind[IFetch] != 2 || s.ByKind[Read] != 2 || s.ByKind[Write] != 1 || s.ByKind[Flush] != 1 {
		t.Errorf("kind counts %v", s.ByKind)
	}
	if s.ByCPU[0] != 4 || s.ByCPU[1] != 2 {
		t.Errorf("cpu counts %v", s.ByCPU)
	}
	if s.SharedData != 2 {
		t.Errorf("shared data = %d, want 2 (flush is not data)", s.SharedData)
	}
	if s.UniqueBlocks != 4 {
		t.Errorf("unique blocks = %d, want 4", s.UniqueBlocks)
	}
	if got := s.LoadStoreFraction(); got != 1.5 {
		t.Errorf("ls = %g, want 1.5", got)
	}
	if got := s.SharedFraction(); !almost(got, 2.0/3.0) {
		t.Errorf("shd = %g, want 2/3", got)
	}
	if got := s.WriteFraction(); !almost(got, 1.0/3.0) {
		t.Errorf("wr = %g, want 1/3", got)
	}
}

func TestComputeStatsBadBlockSize(t *testing.T) {
	if _, err := ComputeStats(sample(), 0); err == nil {
		t.Error("want error for zero block size")
	}
	if _, err := ComputeStats(sample(), 12); err == nil {
		t.Error("want error for non-power-of-two block size")
	}
}

func TestStatsEmptyTrace(t *testing.T) {
	s, err := ComputeStats(&Trace{NCPU: 1}, 16)
	if err != nil {
		t.Fatal(err)
	}
	if s.LoadStoreFraction() != 0 || s.SharedFraction() != 0 || s.WriteFraction() != 0 {
		t.Error("empty trace fractions must be zero")
	}
}

func almost(a, b float64) bool {
	d := a - b
	return d < 1e-12 && d > -1e-12
}
