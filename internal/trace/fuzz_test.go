package trace

import (
	"bytes"
	"io"
	"strings"
	"testing"
)

// FuzzReadTrace: arbitrary bytes must never panic the binary reader, and
// anything it accepts must re-encode to an equivalent trace.
func FuzzReadTrace(f *testing.F) {
	var seed bytes.Buffer
	if err := WriteTrace(&seed, sample()); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.Bytes())
	f.Add([]byte("SWCT"))
	f.Add([]byte{})
	f.Add([]byte("SWCT\x01\x04\xff\xff\xff\xff\xff\xff\xff\xff\x00"))
	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := ReadTrace(bytes.NewReader(data))
		if err != nil {
			return
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("reader accepted an invalid trace: %v", err)
		}
		var buf bytes.Buffer
		if err := WriteTrace(&buf, tr); err != nil {
			t.Fatalf("accepted trace does not re-encode: %v", err)
		}
		back, err := ReadTrace(&buf)
		if err != nil {
			t.Fatalf("re-encoded trace does not parse: %v", err)
		}
		if len(back.Refs) != len(tr.Refs) {
			t.Fatalf("round trip lost records: %d vs %d", len(back.Refs), len(tr.Refs))
		}
		for i := range tr.Refs {
			if back.Refs[i] != tr.Refs[i] {
				t.Fatalf("record %d differs after round trip", i)
			}
		}
	})
}

// FuzzReadText: the text parser must never panic and must only accept
// inputs that round-trip.
func FuzzReadText(f *testing.F) {
	var seed bytes.Buffer
	if err := WriteText(&seed, sample()); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.String())
	f.Add("#swcc-trace ncpu=2\n0 r ff s\n")
	f.Add("#swcc-trace ncpu=300\n")
	f.Add("")
	f.Fuzz(func(t *testing.T, data string) {
		tr, err := ReadText(strings.NewReader(data))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteText(&buf, tr); err != nil {
			t.Fatalf("accepted trace does not re-encode: %v", err)
		}
	})
}

// FuzzStreamReader: truncations of a valid stream must yield clean
// errors or shorter traces, never panics or junk records.
func FuzzStreamReader(f *testing.F) {
	var full bytes.Buffer
	if err := WriteTrace(&full, sample()); err != nil {
		f.Fatal(err)
	}
	data := full.Bytes()
	for cut := 0; cut <= len(data); cut += 3 {
		f.Add(cut)
	}
	f.Fuzz(func(t *testing.T, cut int) {
		if cut < 0 || cut > len(data) {
			return
		}
		r, err := NewReader(bytes.NewReader(data[:cut]))
		if err != nil {
			return
		}
		for {
			ref, err := r.Read()
			if err == io.EOF {
				return
			}
			if err != nil {
				return
			}
			if int(ref.CPU) >= r.NCPU {
				t.Fatalf("reader produced out-of-range cpu %d", ref.CPU)
			}
		}
	})
}
