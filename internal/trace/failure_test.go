package trace

import (
	"errors"
	"testing"
)

type failWriter struct {
	allow int
}

var errInjected = errors.New("injected write failure")

func (w *failWriter) Write(p []byte) (int, error) {
	if w.allow <= 0 {
		return 0, errInjected
	}
	n := len(p)
	if n > w.allow {
		n = w.allow
		w.allow = 0
		return n, errInjected
	}
	w.allow -= n
	return n, nil
}

func TestWriteTracePropagatesWriterErrors(t *testing.T) {
	tr := sample()
	// Fail at several byte offsets: header, mid-record, flush.
	for _, allow := range []int{0, 5, 14, 16} {
		if err := WriteTrace(&failWriter{allow: allow}, tr); err == nil {
			t.Errorf("allow=%d: want error", allow)
		}
	}
}

func TestWriteTextPropagatesWriterErrors(t *testing.T) {
	tr := sample()
	for _, allow := range []int{0, 10} {
		if err := WriteText(&failWriter{allow: allow}, tr); err == nil {
			t.Errorf("allow=%d: want error", allow)
		}
	}
}

func TestStreamingWriterFlushError(t *testing.T) {
	w, err := NewWriter(&failWriter{allow: 14}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Write(Ref{CPU: 0, Kind: Read, Addr: 42}); err != nil {
		t.Fatalf("buffered write should succeed: %v", err)
	}
	if err := w.Flush(); err == nil {
		t.Error("flush must surface the writer failure")
	}
}

func TestNewWriterHeaderError(t *testing.T) {
	// The header is buffered; NewWriter itself succeeds, the error
	// surfaces at Flush.
	w, err := NewWriter(&failWriter{allow: 0}, 1)
	if err != nil {
		t.Fatalf("NewWriter buffers the header: %v", err)
	}
	if err := w.Flush(); err == nil {
		t.Error("flush must fail")
	}
}
