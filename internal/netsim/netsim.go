// Package netsim is a cycle-level simulator of an unbuffered,
// circuit-switched multistage interconnection network (butterfly/Omega
// topology of 2x2 switches), the network the paper analyzes with Patel's
// probabilistic model in Section 6.
//
// The paper notes: "We are not aware of any validation of this model
// against multiprocessor traces." This simulator closes that gap for the
// synthetic-workload case: processors alternate between thinking and
// holding a circuit to a uniformly random memory module; switch-output
// conflicts drop all but one contender, and dropped requests retry —
// exactly the behavior the analytical fixed point approximates. The
// experiment registry's "patel" entry compares the two.
package netsim

import (
	"errors"
	"fmt"
	"math"
	"math/rand/v2"
)

// ErrBadConfig reports an invalid simulation configuration.
var ErrBadConfig = errors.New("netsim: invalid config")

// Config describes one network simulation.
type Config struct {
	// Stages is the number of switch stages; the machine has
	// 2^Stages processors and memory modules.
	Stages int
	// Think is the mean think time in cycles between a processor's
	// transactions (the model's c-b = 1/m). Sampled exponentially.
	Think float64
	// Hold is the cycles a granted circuit is held per transaction
	// (the model's t = b, message words plus the 2n path occupancy).
	Hold int
	// Cycles is the simulated horizon.
	Cycles int
	// WarmupCycles are excluded from statistics.
	WarmupCycles int
	// Seed makes the run deterministic.
	Seed uint64
}

func (c Config) validate() error {
	switch {
	case c.Stages < 1 || c.Stages > 12:
		return fmt.Errorf("%w: stages %d", ErrBadConfig, c.Stages)
	case c.Think <= 0:
		return fmt.Errorf("%w: think %g", ErrBadConfig, c.Think)
	case c.Hold < 1:
		return fmt.Errorf("%w: hold %d", ErrBadConfig, c.Hold)
	case c.Cycles < 1:
		return fmt.Errorf("%w: cycles %d", ErrBadConfig, c.Cycles)
	case c.WarmupCycles < 0 || c.WarmupCycles >= c.Cycles:
		return fmt.Errorf("%w: warmup %d of %d cycles", ErrBadConfig, c.WarmupCycles, c.Cycles)
	}
	return nil
}

// Result summarizes a network simulation.
type Result struct {
	// Config echoes the run parameters.
	Config Config
	// Utilization is the mean fraction of (post-warmup) time
	// processors spent thinking — directly comparable to the Patel
	// model's U.
	Utilization float64
	// Completed is the number of transactions finished.
	Completed uint64
	// Attempts is the number of path-setup attempts (retries
	// included).
	Attempts uint64
	// Acceptance is Completed/Attempts: the per-attempt success
	// probability, comparable to the model's acceptance.
	Acceptance float64
	// MeanWait is the mean cycles a transaction waited before its
	// circuit was granted.
	MeanWait float64
	// UtilizationCI95 is the half-width of a 95% confidence interval
	// on Utilization, from the method of batch means over 20
	// post-warmup batches. A wide interval means the run was too
	// short.
	UtilizationCI95 float64
	// Batches is the number of batches the interval used.
	Batches int
}

// processor phases.
type phase uint8

const (
	thinking phase = iota
	waiting
	holding
)

type proc struct {
	phase phase
	// until is the cycle at which the current think/hold phase ends.
	until int
	// dest is the target memory module while waiting/holding.
	dest int
	// waitedSince is the cycle the current request was first issued.
	waitedSince int
}

// Run simulates the network and returns aggregate statistics.
func Run(cfg Config) (*Result, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	n := cfg.Stages
	nproc := 1 << n
	rng := rand.New(rand.NewPCG(cfg.Seed, 0x9e3779b97f4a7c15))

	procs := make([]proc, nproc)
	for i := range procs {
		procs[i] = proc{phase: thinking, until: int(rng.ExpFloat64() * cfg.Think)}
	}
	// linkFree[s][l] is the first cycle link l of stage s is free.
	linkFree := make([][]int, n)
	for s := range linkFree {
		linkFree[s] = make([]int, nproc)
	}
	// linkOf returns the butterfly link resource used at stage s
	// (1-based within the math; 0-based here) by a path src->dst: the
	// node address keeps dst's top s+1 bits and src's remaining low
	// bits.
	linkOf := func(stage, src, dst int) int {
		low := n - 1 - stage
		return (dst>>low)<<low | (src & (1<<low - 1))
	}

	var thinkingCycles, completed, attempts, waitSum uint64
	order := make([]int, 0, nproc)

	// Batch means for the confidence interval on utilization.
	const nbatches = 20
	measuredCycles := cfg.Cycles - cfg.WarmupCycles
	batchLen := measuredCycles / nbatches
	batchThinking := make([]uint64, nbatches)

	for now := 0; now < cfg.Cycles; now++ {
		counting := now >= cfg.WarmupCycles
		batch := -1
		if counting && batchLen > 0 {
			batch = (now - cfg.WarmupCycles) / batchLen
			if batch >= nbatches {
				batch = nbatches - 1
			}
		}
		order = order[:0]
		for i := range procs {
			p := &procs[i]
			switch p.phase {
			case thinking:
				if now >= p.until {
					p.phase = waiting
					p.dest = rng.IntN(nproc)
					p.waitedSince = now
				} else if counting {
					thinkingCycles++
					if batch >= 0 {
						batchThinking[batch]++
					}
				}
			case holding:
				if now >= p.until {
					p.phase = thinking
					p.until = now + int(rng.ExpFloat64()*cfg.Think)
				}
			}
			if p.phase == waiting {
				order = append(order, i)
			}
		}
		// Random arbitration order approximates per-switch random
		// winner selection.
		rng.Shuffle(len(order), func(a, b int) { order[a], order[b] = order[b], order[a] })
		for _, i := range order {
			p := &procs[i]
			if counting {
				attempts++
			}
			ok := true
			for s := 0; s < n; s++ {
				if linkFree[s][linkOf(s, i, p.dest)] > now {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			freeAt := now + cfg.Hold
			for s := 0; s < n; s++ {
				linkFree[s][linkOf(s, i, p.dest)] = freeAt
			}
			p.phase = holding
			p.until = freeAt
			if counting {
				completed++
				waitSum += uint64(now - p.waitedSince)
			}
		}
	}

	measured := cfg.Cycles - cfg.WarmupCycles
	res := &Result{
		Config:      cfg,
		Utilization: float64(thinkingCycles) / float64(uint64(measured)*uint64(nproc)),
		Completed:   completed,
		Attempts:    attempts,
	}
	if attempts > 0 {
		res.Acceptance = float64(completed) / float64(attempts)
	}
	if completed > 0 {
		res.MeanWait = float64(waitSum) / float64(completed)
	}
	if batchLen > 0 {
		// Batch means with the t(19) 97.5% quantile.
		denom := float64(uint64(batchLen) * uint64(nproc))
		var mean float64
		batchU := make([]float64, nbatches)
		for i, tc := range batchThinking {
			batchU[i] = float64(tc) / denom
			mean += batchU[i]
		}
		mean /= nbatches
		var s2 float64
		for _, u := range batchU {
			s2 += (u - mean) * (u - mean)
		}
		s2 /= nbatches - 1
		const t19 = 2.093
		res.UtilizationCI95 = t19 * math.Sqrt(s2/nbatches)
		res.Batches = nbatches
	}
	return res, nil
}
