package netsim

import (
	"fmt"
	"math"
	"math/rand/v2"
)

// BufferedConfig describes a cycle-level simulation of a buffered
// packet-switched multistage network — the paper's Section 7 future-work
// variant, for which queueing.BufferedNetwork provides the analytical
// approximation. Switches are output-queued with unbounded buffers and
// forward one packet per link per cycle.
type BufferedConfig struct {
	// Stages is the number of switch stages (2^Stages ports).
	Stages int
	// Think is the mean think time between transactions, sampled
	// exponentially.
	Think float64
	// Packets is the number of packets per transaction (the message
	// words; no circuit set-up exists here).
	Packets int
	// Cycles is the simulated horizon.
	Cycles int
	// WarmupCycles are excluded from statistics.
	WarmupCycles int
	// Seed makes the run deterministic.
	Seed uint64
}

func (c BufferedConfig) validate() error {
	switch {
	case c.Stages < 1 || c.Stages > 12:
		return fmt.Errorf("%w: stages %d", ErrBadConfig, c.Stages)
	case c.Think <= 0:
		return fmt.Errorf("%w: think %g", ErrBadConfig, c.Think)
	case c.Packets < 1:
		return fmt.Errorf("%w: packets %d", ErrBadConfig, c.Packets)
	case c.Cycles < 1:
		return fmt.Errorf("%w: cycles %d", ErrBadConfig, c.Cycles)
	case c.WarmupCycles < 0 || c.WarmupCycles >= c.Cycles:
		return fmt.Errorf("%w: warmup %d of %d", ErrBadConfig, c.WarmupCycles, c.Cycles)
	}
	return nil
}

// BufferedResult summarizes a buffered-network simulation.
type BufferedResult struct {
	// Config echoes the run parameters.
	Config BufferedConfig
	// ThinkingFraction is the mean fraction of time processors spent
	// thinking (not sending or awaiting delivery).
	ThinkingFraction float64
	// MeanLatency is the mean cycles from first-packet injection to
	// last-packet delivery per transaction.
	MeanLatency float64
	// Completed counts finished transactions.
	Completed uint64
	// MeanQueue is the time-averaged total number of queued packets.
	MeanQueue float64
}

// packet is one word in flight.
type packet struct {
	src, dst int
	last     bool
}

// fifo is a head-indexed packet queue: pops advance head without
// reslicing, and the buffer is reused once drained, so steady-state
// operation does not allocate.
type fifo struct {
	buf  []packet
	head int
}

func (q *fifo) len() int { return len(q.buf) - q.head }

func (q *fifo) push(p packet) {
	if q.head > 0 && q.head == len(q.buf) {
		q.buf = q.buf[:0]
		q.head = 0
	}
	q.buf = append(q.buf, p)
}

func (q *fifo) pop() packet {
	p := q.buf[q.head]
	q.head++
	if q.head == len(q.buf) {
		q.buf = q.buf[:0]
		q.head = 0
	}
	return p
}

// bufferedProc phases: thinking until `until`, then sending `remaining`
// packets, then awaiting the last packet's delivery.
type bufferedProc struct {
	phase     phase // thinking / waiting(sending) / holding(awaiting)
	until     int
	dst       int
	remaining int
	started   int
}

// RunBuffered simulates the buffered packet-switched network.
func RunBuffered(cfg BufferedConfig) (*BufferedResult, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	n := cfg.Stages
	nproc := 1 << n
	rng := rand.New(rand.NewPCG(cfg.Seed, 0xda3e39cb94b95bdb))

	procs := make([]bufferedProc, nproc)
	for i := range procs {
		procs[i] = bufferedProc{phase: thinking, until: int(rng.ExpFloat64() * cfg.Think)}
	}
	// queues[s][l] is the FIFO of packets waiting to cross link l of
	// stage s.
	queues := make([][]fifo, n)
	for s := range queues {
		queues[s] = make([]fifo, nproc)
	}
	linkOf := func(stage, src, dst int) int {
		low := n - 1 - stage
		return (dst>>low)<<low | (src & (1<<low - 1))
	}

	var thinkingCycles, completed, latencySum, queuedSum uint64
	measured := cfg.Cycles - cfg.WarmupCycles

	for now := 0; now < cfg.Cycles; now++ {
		counting := now >= cfg.WarmupCycles
		// Move packets, last stage first so each advances at most one
		// stage per cycle.
		for s := n - 1; s >= 0; s-- {
			for l := 0; l < nproc; l++ {
				q := &queues[s][l]
				if q.len() == 0 {
					continue
				}
				pk := q.pop()
				if s == n-1 {
					// Delivered to memory.
					if pk.last {
						p := &procs[pk.src]
						p.phase = thinking
						p.until = now + 1 + int(rng.ExpFloat64()*cfg.Think)
						if counting {
							completed++
							latencySum += uint64(now + 1 - p.started)
						}
					}
					continue
				}
				next := linkOf(s+1, pk.src, pk.dst)
				queues[s+1][next].push(pk)
			}
		}
		// Processors inject and think.
		for i := range procs {
			p := &procs[i]
			switch p.phase {
			case thinking:
				if now >= p.until {
					p.phase = waiting
					p.dst = rng.IntN(nproc)
					p.remaining = cfg.Packets
					p.started = now
				} else if counting {
					thinkingCycles++
				}
			}
			if p.phase == waiting {
				l := linkOf(0, i, p.dst)
				p.remaining--
				queues[0][l].push(packet{src: i, dst: p.dst, last: p.remaining == 0})
				if p.remaining == 0 {
					p.phase = holding // awaiting delivery
				}
			}
		}
		if counting {
			total := 0
			for s := range queues {
				for l := range queues[s] {
					total += queues[s][l].len()
				}
			}
			queuedSum += uint64(total)
		}
	}

	res := &BufferedResult{
		Config:           cfg,
		ThinkingFraction: float64(thinkingCycles) / float64(uint64(measured)*uint64(nproc)),
		Completed:        completed,
		MeanQueue:        float64(queuedSum) / float64(measured),
	}
	if completed > 0 {
		res.MeanLatency = float64(latencySum) / float64(completed)
	}
	if math.IsNaN(res.ThinkingFraction) {
		res.ThinkingFraction = 0
	}
	return res, nil
}
