package netsim

import (
	"math"
	"testing"

	"swcc/internal/queueing"
)

func TestRunDeterministic(t *testing.T) {
	cfg := Config{Stages: 4, Think: 50, Hold: 8, Cycles: 5000, Seed: 7}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Utilization != b.Utilization || a.Completed != b.Completed {
		t.Error("simulation not deterministic")
	}
	cfg.Seed = 8
	c, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if c.Completed == a.Completed && c.Utilization == a.Utilization {
		t.Error("different seeds gave identical results (suspicious)")
	}
}

func TestLightLoadUtilization(t *testing.T) {
	// Nearly idle network: U ~= think/(think+hold), the uncontended
	// limit shared with the Patel model.
	cfg := Config{Stages: 6, Think: 2000, Hold: 10, Cycles: 400_000, WarmupCycles: 10_000, Seed: 3}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := cfg.Think / (cfg.Think + float64(cfg.Hold))
	if math.Abs(res.Utilization-want) > 0.02 {
		t.Errorf("light-load U = %.4f, want ~%.4f", res.Utilization, want)
	}
	// Acceptance is per-attempt; a blocked transaction retries once
	// per cycle against a circuit held for `hold` cycles, so even rare
	// collisions cost ~hold failed attempts each. At this load it
	// should still be high.
	if res.Acceptance < 0.85 {
		t.Errorf("light-load acceptance = %.3f, want high", res.Acceptance)
	}
}

func TestUtilizationMonotoneInLoad(t *testing.T) {
	prev := 2.0
	for _, think := range []float64{400, 100, 40, 10} {
		res, err := Run(Config{Stages: 5, Think: think, Hold: 12, Cycles: 100_000, WarmupCycles: 5000, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		if res.Utilization >= prev {
			t.Errorf("think=%g: U %.3f did not fall (prev %.3f)", think, res.Utilization, prev)
		}
		prev = res.Utilization
	}
}

// TestPatelModelValidation is the reproduction's answer to the paper's
// remark that Patel's model had not been validated by simulation: across
// light, moderate, and heavy load the analytical fixed point must track
// the cycle-level simulation.
func TestPatelModelValidation(t *testing.T) {
	pn := queueing.NewPatelNetwork(6)
	for _, tc := range []struct {
		think float64
		hold  int
	}{
		{500, 16}, {200, 16}, {100, 16}, {50, 16}, {25, 16}, {100, 4}, {40, 28},
	} {
		sim, err := Run(Config{
			Stages: 6, Think: tc.think, Hold: tc.hold,
			Cycles: 300_000, WarmupCycles: 20_000, Seed: 11,
		})
		if err != nil {
			t.Fatal(err)
		}
		model, err := pn.SolvePatel(1/tc.think, float64(tc.hold))
		if err != nil {
			t.Fatal(err)
		}
		diff := math.Abs(sim.Utilization - model.Utilization)
		rel := diff / model.Utilization
		if rel > 0.15 && diff > 0.05 {
			t.Errorf("think=%g hold=%d: sim U %.3f vs Patel %.3f (%.0f%% apart)",
				tc.think, tc.hold, sim.Utilization, model.Utilization, rel*100)
		}
	}
}

func TestConfidenceInterval(t *testing.T) {
	cfg := Config{Stages: 5, Think: 80, Hold: 12, Cycles: 120_000, WarmupCycles: 10_000, Seed: 4}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Batches != 20 {
		t.Errorf("batches = %d, want 20", res.Batches)
	}
	if res.UtilizationCI95 <= 0 || res.UtilizationCI95 > 0.05 {
		t.Errorf("CI half-width = %g, expected small positive", res.UtilizationCI95)
	}
	// A re-run with another seed must land inside a few half-widths.
	cfg.Seed = 99
	other, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	diff := math.Abs(res.Utilization - other.Utilization)
	if diff > 4*(res.UtilizationCI95+other.UtilizationCI95) {
		t.Errorf("independent runs differ by %g, far beyond CIs %g/%g",
			diff, res.UtilizationCI95, other.UtilizationCI95)
	}
	// Longer runs tighten the interval.
	cfg.Seed = 4
	cfg.Cycles = 480_000
	longer, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if longer.UtilizationCI95 >= res.UtilizationCI95 {
		t.Errorf("longer run CI %g not tighter than %g", longer.UtilizationCI95, res.UtilizationCI95)
	}
}

func TestThroughputAccounting(t *testing.T) {
	// Completed transactions * hold can never exceed total link-cycle
	// capacity of the final stage (one link per memory module).
	cfg := Config{Stages: 4, Think: 10, Hold: 8, Cycles: 50_000, Seed: 2}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	capacity := uint64(cfg.Cycles) * uint64(1<<cfg.Stages)
	if res.Completed*uint64(cfg.Hold) > capacity {
		t.Errorf("completed*hold = %d exceeds final-stage capacity %d",
			res.Completed*uint64(cfg.Hold), capacity)
	}
	if res.MeanWait < 0 {
		t.Error("negative mean wait")
	}
}

func TestRunErrors(t *testing.T) {
	bad := []Config{
		{Stages: 0, Think: 10, Hold: 1, Cycles: 10},
		{Stages: 13, Think: 10, Hold: 1, Cycles: 10},
		{Stages: 2, Think: 0, Hold: 1, Cycles: 10},
		{Stages: 2, Think: 10, Hold: 0, Cycles: 10},
		{Stages: 2, Think: 10, Hold: 1, Cycles: 0},
		{Stages: 2, Think: 10, Hold: 1, Cycles: 10, WarmupCycles: 10},
		{Stages: 2, Think: 10, Hold: 1, Cycles: 10, WarmupCycles: -1},
	}
	for i, cfg := range bad {
		if _, err := Run(cfg); err == nil {
			t.Errorf("config %d: want error", i)
		}
	}
}

func TestButterflyFinalStageIsDestinationLink(t *testing.T) {
	// Two processors targeting the same memory module must conflict:
	// with hold >> think and only 2 processors ever targeting module
	// 0... instead verify structurally via a saturation run: offered
	// load far above capacity still yields acceptance <= 1 and
	// utilization > 0.
	res, err := Run(Config{Stages: 3, Think: 1, Hold: 20, Cycles: 20_000, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Acceptance > 1 || res.Acceptance <= 0 {
		t.Errorf("acceptance = %g", res.Acceptance)
	}
	if res.Utilization <= 0 || res.Utilization > 0.2 {
		t.Errorf("crushing load utilization = %g, expected small", res.Utilization)
	}
}
