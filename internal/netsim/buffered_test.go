package netsim

import (
	"math"
	"testing"

	"swcc/internal/queueing"
)

func TestBufferedLightLoadLatency(t *testing.T) {
	// Nearly idle: a transaction of k packets through n stages takes
	// n + k cycles (pipeline transit + serialization), the analytical
	// model's uncontended latency.
	cfg := BufferedConfig{Stages: 6, Think: 3000, Packets: 4, Cycles: 400_000, WarmupCycles: 10_000, Seed: 2}
	res, err := RunBuffered(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := float64(cfg.Stages + cfg.Packets)
	if math.Abs(res.MeanLatency-want) > 1.5 {
		t.Errorf("light-load latency = %.2f, want ~%.0f", res.MeanLatency, want)
	}
	wantThink := cfg.Think / (cfg.Think + want)
	if math.Abs(res.ThinkingFraction-wantThink) > 0.02 {
		t.Errorf("thinking fraction = %.3f, want ~%.3f", res.ThinkingFraction, wantThink)
	}
}

// TestBufferedModelValidation checks the analytical M/M/1-per-stage
// approximation (queueing.BufferedNetwork) against the cycle-level
// simulation across loads: latency within 20% or 3 cycles, matching the
// coarser nature of this model compared to Patel's.
func TestBufferedModelValidation(t *testing.T) {
	bn := queueing.BufferedNetwork{Stages: 6}
	for _, tc := range []struct {
		think   float64
		packets int
	}{
		{400, 4}, {120, 4}, {60, 4}, {120, 8}, {60, 2},
	} {
		sim, err := RunBuffered(BufferedConfig{
			Stages: 6, Think: tc.think, Packets: tc.packets,
			Cycles: 250_000, WarmupCycles: 20_000, Seed: 9,
		})
		if err != nil {
			t.Fatal(err)
		}
		model, err := bn.SolveBuffered(tc.think+float64(tc.packets), 1/tc.think, float64(tc.packets))
		if err != nil {
			t.Fatal(err)
		}
		diff := math.Abs(model.Latency - sim.MeanLatency)
		if diff > 3 && diff/sim.MeanLatency > 0.20 {
			t.Errorf("think=%g packets=%d: sim latency %.2f vs model %.2f",
				tc.think, tc.packets, sim.MeanLatency, model.Latency)
		}
	}
}

func TestBufferedNoCircuitTax(t *testing.T) {
	// The whole point of packet switching: short messages do not pay
	// the 2n circuit cost. At equal loads, a 1-packet transaction's
	// latency must be near n+1, far below the circuit model's 1+2n
	// occupancy equivalent.
	cfg := BufferedConfig{Stages: 8, Think: 200, Packets: 1, Cycles: 150_000, WarmupCycles: 10_000, Seed: 3}
	res, err := RunBuffered(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.MeanLatency > 12 {
		t.Errorf("1-packet latency %.1f, expected near stages+1 = 9", res.MeanLatency)
	}
}

func TestBufferedDeterministicAndLoaded(t *testing.T) {
	cfg := BufferedConfig{Stages: 4, Think: 20, Packets: 6, Cycles: 40_000, Seed: 7}
	a, err := RunBuffered(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunBuffered(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Completed != b.Completed || a.MeanLatency != b.MeanLatency {
		t.Error("not deterministic")
	}
	if a.MeanQueue <= 0 {
		t.Error("loaded run should queue packets")
	}
	// Heavier load, higher latency.
	cfg.Think = 8
	c, err := RunBuffered(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if c.MeanLatency <= a.MeanLatency {
		t.Errorf("heavier load latency %.1f not above %.1f", c.MeanLatency, a.MeanLatency)
	}
}

func TestBufferedErrors(t *testing.T) {
	bad := []BufferedConfig{
		{Stages: 0, Think: 1, Packets: 1, Cycles: 10},
		{Stages: 2, Think: 0, Packets: 1, Cycles: 10},
		{Stages: 2, Think: 1, Packets: 0, Cycles: 10},
		{Stages: 2, Think: 1, Packets: 1, Cycles: 0},
		{Stages: 2, Think: 1, Packets: 1, Cycles: 10, WarmupCycles: 10},
	}
	for i, cfg := range bad {
		if _, err := RunBuffered(cfg); err == nil {
			t.Errorf("config %d: want error", i)
		}
	}
}
