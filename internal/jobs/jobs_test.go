package jobs

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"
)

func row(i int) [][]byte {
	return [][]byte{[]byte(fmt.Sprintf(`{"i":%d}`, i))}
}

// collect streams a job's results from scratch, acking as it goes, and
// returns the decoded rows in order.
func collect(t *testing.T, sp *Spool) []string {
	t.Helper()
	var out []string
	var cursor uint64
	for {
		batches, done, err := sp.Next(context.Background(), cursor)
		if err != nil {
			t.Fatalf("Next(%d): %v", cursor, err)
		}
		for _, b := range batches {
			for _, r := range b.Rows {
				out = append(out, string(r))
			}
			cursor = b.Seq
		}
		if done && len(batches) == 0 {
			return out
		}
		if done {
			// Drain the final ack so the job frees its backlog.
			if _, d, err := sp.Next(context.Background(), cursor); err != nil || !d {
				t.Fatalf("final Next(%d) = done %v, err %v", cursor, d, err)
			}
			return out
		}
	}
}

func TestJobStreamsInOrder(t *testing.T) {
	r := NewRegistry(Config{})
	defer r.Close()
	const n = 50
	j, err := r.Submit("stream", func(ctx context.Context, j *Job) error {
		sp := j.Spool()
		for i := 0; i < n; i++ {
			if err := sp.Push(row(i)); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	rows := collect(t, j.Spool())
	if len(rows) != n {
		t.Fatalf("streamed %d rows, want %d", len(rows), n)
	}
	for i, r := range rows {
		if want := fmt.Sprintf(`{"i":%d}`, i); r != want {
			t.Fatalf("row %d = %s, want %s", i, r, want)
		}
	}
	if st := j.State(); st != StateDone {
		t.Errorf("state = %s, want done", st)
	}
	snap := j.Snapshot()
	if snap.SpooledRows != 0 {
		t.Errorf("backlog after full ack = %d rows, want 0", snap.SpooledRows)
	}
}

// TestSpoolBackpressure pins the bounded-memory contract: a producer
// far faster than its consumer never buffers more than the configured
// cap, and blocks rather than dropping or reordering.
func TestSpoolBackpressure(t *testing.T) {
	const cap = 8
	r := NewRegistry(Config{SpoolRows: cap})
	defer r.Close()
	const n = 200
	j, err := r.Submit("slow-reader", func(ctx context.Context, j *Job) error {
		sp := j.Spool()
		for i := 0; i < n; i++ {
			if err := sp.Push(row(i)); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	rows := collect(t, j.Spool())
	if len(rows) != n {
		t.Fatalf("streamed %d rows, want %d", len(rows), n)
	}
	if hw := j.Spool().HighWater(); hw > cap {
		t.Errorf("spool high water = %d rows, cap is %d", hw, cap)
	}
}

// TestSpoolResume pins at-least-once delivery: a cursor that was not
// advanced replays the unacknowledged tail, advancing it frees the
// prefix, and rewinding past the freed prefix is an explicit ErrGone.
func TestSpoolResume(t *testing.T) {
	r := NewRegistry(Config{})
	defer r.Close()
	pushed := make(chan struct{})
	hold := make(chan struct{})
	j, err := r.Submit("resume", func(ctx context.Context, j *Job) error {
		sp := j.Spool()
		for i := 0; i < 3; i++ {
			if err := sp.Push(row(i)); err != nil {
				return err
			}
		}
		close(pushed)
		<-hold
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	<-pushed
	sp := j.Spool()

	b1, _, err := sp.Next(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(b1) != 3 {
		t.Fatalf("got %d batches, want 3", len(b1))
	}
	// Same cursor again: the dropped-connection replay.
	b2, _, err := sp.Next(context.Background(), 0)
	if err != nil {
		t.Fatalf("replay from 0: %v", err)
	}
	if len(b2) != 3 || string(b2[0].Rows[0]) != string(b1[0].Rows[0]) {
		t.Fatalf("replay returned %d batches, want the same 3", len(b2))
	}
	// Advance past batch 2: batches 1-2 freed, 3 replayable.
	b3, _, err := sp.Next(context.Background(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(b3) != 1 || b3[0].Seq != 3 {
		t.Fatalf("after ack 2: %+v, want only batch 3", b3)
	}
	// Rewinding into the freed prefix is gone, not a silent skip.
	if _, _, err := sp.Next(context.Background(), 1); !errors.Is(err, ErrGone) {
		t.Errorf("rewound cursor: err = %v, want ErrGone", err)
	}
	if _, _, err := sp.Next(context.Background(), 99); !errors.Is(err, ErrFuture) {
		t.Errorf("future cursor: err = %v, want ErrFuture", err)
	}
	close(hold)
}

func TestJobCancelUnblocksProducer(t *testing.T) {
	r := NewRegistry(Config{SpoolRows: 2})
	defer r.Close()
	started := make(chan struct{})
	j, err := r.Submit("cancel", func(ctx context.Context, j *Job) error {
		sp := j.Spool()
		close(started)
		for i := 0; ; i++ {
			if err := sp.Push(row(i)); err != nil {
				return err
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	j.Cancel()
	deadline := time.After(5 * time.Second)
	for j.State() != StateCancelled {
		select {
		case <-deadline:
			t.Fatalf("job stuck in %s after cancel; Push is not context-aware", j.State())
		case <-time.After(time.Millisecond):
		}
	}
	// A reader still drains whatever was spooled before the cancel, then
	// sees the end of the (truncated) stream rather than hanging.
	batches, done, err := j.Spool().Next(context.Background(), 0)
	if err != nil {
		t.Fatalf("Next on cancelled job: %v", err)
	}
	if len(batches) == 0 || !done {
		t.Errorf("cancelled job: %d batches, done=%v; want the pre-cancel backlog and done", len(batches), done)
	}
}

func TestJobFailureAndPanic(t *testing.T) {
	r := NewRegistry(Config{})
	defer r.Close()
	boom := errors.New("boom")
	j1, err := r.Submit("fails", func(context.Context, *Job) error { return boom })
	if err != nil {
		t.Fatal(err)
	}
	j2, err := r.Submit("panics", func(context.Context, *Job) error { panic("kaboom") })
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range []*Job{j1, j2} {
		deadline := time.After(5 * time.Second)
		for !j.State().Terminal() {
			select {
			case <-deadline:
				t.Fatalf("job %s never reached a terminal state", j.ID())
			case <-time.After(time.Millisecond):
			}
		}
		if j.State() != StateFailed {
			t.Errorf("job %s state = %s, want failed", j.ID(), j.State())
		}
	}
	if s := j2.Snapshot(); s.Err == "" {
		t.Error("panicked job has no error in its snapshot")
	}
}

func TestRegistryCapAndDelete(t *testing.T) {
	r := NewRegistry(Config{MaxJobs: 2})
	defer r.Close()
	hold := make(chan struct{})
	defer close(hold)
	runner := func(ctx context.Context, j *Job) error {
		select {
		case <-hold:
		case <-ctx.Done():
		}
		return nil
	}
	j1, err := r.Submit("a", runner)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Submit("b", runner); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Submit("c", runner); !errors.Is(err, ErrFull) {
		t.Fatalf("third submit err = %v, want ErrFull", err)
	}
	if !r.Delete(j1.ID()) {
		t.Fatal("Delete returned false for a resident job")
	}
	if r.Delete(j1.ID()) {
		t.Error("second Delete returned true")
	}
	if _, err := r.Submit("c", runner); err != nil {
		t.Errorf("submit after delete: %v", err)
	}
	if _, ok := r.Get(j1.ID()); ok {
		t.Error("deleted job still resolvable")
	}
}

func TestRegistryPointTotalsSurviveDelete(t *testing.T) {
	r := NewRegistry(Config{})
	defer r.Close()
	j, err := r.Submit("points", func(context.Context, *Job) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	j.AddPoints(10, 3)
	r.Delete(j.ID())
	ok, errs := r.PointTotals()
	if ok != 10 || errs != 3 {
		t.Errorf("totals after delete = (%d, %d), want (10, 3)", ok, errs)
	}
}

func TestTTLReapsTerminalJobs(t *testing.T) {
	r := NewRegistry(Config{TTL: 20 * time.Millisecond})
	defer r.Close()
	j, err := r.Submit("short-lived", func(context.Context, *Job) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.After(5 * time.Second)
	for {
		if _, ok := r.Get(j.ID()); !ok {
			break
		}
		select {
		case <-deadline:
			t.Fatal("terminal job never reaped")
		case <-time.After(5 * time.Millisecond):
		}
	}
}

func TestCloseCancelsAndRejects(t *testing.T) {
	base, cancelBase := context.WithCancel(context.Background())
	defer cancelBase()
	r := NewRegistry(Config{Base: base})
	var running atomic.Int32
	j, err := r.Submit("forever", func(ctx context.Context, j *Job) error {
		running.Add(1)
		<-ctx.Done()
		running.Add(-1)
		return ctx.Err()
	})
	if err != nil {
		t.Fatal(err)
	}
	for j.State() != StateRunning {
		time.Sleep(time.Millisecond)
	}
	r.Close()
	if n := running.Load(); n != 0 {
		t.Errorf("%d runners still alive after Close", n)
	}
	if _, err := r.Submit("late", func(context.Context, *Job) error { return nil }); !errors.Is(err, ErrClosed) {
		t.Errorf("submit after close: %v, want ErrClosed", err)
	}
	if j.State() != StateCancelled {
		t.Errorf("state after close = %s, want cancelled", j.State())
	}
}

// TestBaseContextCancelStopsJobs ties jobs to the daemon lifecycle: a
// SIGINT on the daemon's signal context cancels every job with it.
func TestBaseContextCancelStopsJobs(t *testing.T) {
	base, cancelBase := context.WithCancel(context.Background())
	r := NewRegistry(Config{Base: base})
	defer r.Close()
	j, err := r.Submit("daemon-bound", func(ctx context.Context, j *Job) error {
		<-ctx.Done()
		return ctx.Err()
	})
	if err != nil {
		t.Fatal(err)
	}
	cancelBase()
	deadline := time.After(5 * time.Second)
	for j.State() != StateCancelled {
		select {
		case <-deadline:
			t.Fatalf("job state = %s after base cancel, want cancelled", j.State())
		case <-time.After(time.Millisecond):
		}
	}
}
