// Package jobs runs asynchronous sweep work under the daemon: a client
// submits a job, polls its status, and streams its results back in
// completion-batch order, with the job surviving the submitting
// connection. The package is transport-agnostic — the serve layer maps
// HTTP endpoints onto a Registry and encodes rows; here a job is just a
// runner function feeding an ordered, bounded spool of encoded rows.
//
// Memory is bounded end to end. The spool admits at most SpoolRows
// buffered rows; a producer that gets ahead of the consumer blocks in
// Push (cooperatively — a cancelled job unblocks) instead of buffering
// the whole sweep. Delivery is at-least-once with acknowledgement by
// resumption: Next(after) frees every batch with sequence <= after, so
// re-reading with the same cursor after a dropped connection replays
// only the unacknowledged tail, and a cursor older than the freed
// prefix fails with ErrGone rather than silently skipping rows.
package jobs

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// State is a job's lifecycle phase. Terminal states are StateDone,
// StateFailed, and StateCancelled.
type State string

const (
	// StatePending: submitted, runner not yet started.
	StatePending State = "pending"
	// StateRunning: the runner is producing results.
	StateRunning State = "running"
	// StateDone: the runner finished cleanly; all results are spooled.
	StateDone State = "done"
	// StateFailed: the runner returned an error or panicked.
	StateFailed State = "failed"
	// StateCancelled: the job's context was cancelled before the runner
	// finished.
	StateCancelled State = "cancelled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// Errors the serve layer maps onto HTTP statuses.
var (
	// ErrFull rejects a submission when MaxJobs jobs are resident.
	ErrFull = errors.New("jobs: registry full")
	// ErrClosed rejects a submission after Close.
	ErrClosed = errors.New("jobs: registry closed")
	// ErrGone rejects a results cursor older than the freed prefix: the
	// rows before it were acknowledged and discarded.
	ErrGone = errors.New("jobs: results before cursor already discarded")
	// ErrFuture rejects a results cursor beyond the last spooled batch.
	ErrFuture = errors.New("jobs: cursor beyond last result batch")
)

// Runner is a job body. It pushes result batches into j.Spool(),
// records outcomes with j.AddPoints, and returns when the work is
// complete; returning ctx's error (or any other) moves the job to
// StateCancelled / StateFailed.
type Runner func(ctx context.Context, j *Job) error

// Config tunes a Registry.
type Config struct {
	// MaxJobs bounds resident jobs, running or terminal-but-unread
	// (<= 0 means 16). Submissions beyond it fail with ErrFull.
	MaxJobs int
	// SpoolRows bounds each job's buffered-but-unacknowledged rows
	// (<= 0 means 4096). Producers block once it is reached.
	SpoolRows int
	// TTL evicts terminal jobs that nobody deleted, measured from the
	// moment they finished (<= 0 means 10 minutes).
	TTL time.Duration
	// Base is the context every job's context derives from, typically
	// the daemon's signal context (nil means context.Background()).
	Base context.Context
}

func (c Config) maxJobs() int {
	if c.MaxJobs <= 0 {
		return 16
	}
	return c.MaxJobs
}

func (c Config) spoolRows() int {
	if c.SpoolRows <= 0 {
		return 4096
	}
	return c.SpoolRows
}

func (c Config) ttl() time.Duration {
	if c.TTL <= 0 {
		return 10 * time.Minute
	}
	return c.TTL
}

// Registry owns the resident jobs: submission, lookup, cancellation,
// deletion, and the TTL reaper for terminal jobs nobody deleted.
type Registry struct {
	cfg  Config
	base context.Context

	mu     sync.Mutex
	jobs   map[string]*Job
	nextID uint64
	closed bool

	// Point totals survive job deletion so the daemon's counters are
	// monotonic, as Prometheus counters must be.
	pointsOK  atomic.Uint64
	pointsErr atomic.Uint64

	wg       sync.WaitGroup // runners + reaper
	stopReap context.CancelFunc
}

// NewRegistry builds a registry and starts its reaper.
func NewRegistry(cfg Config) *Registry {
	base := cfg.Base
	if base == nil {
		base = context.Background()
	}
	r := &Registry{cfg: cfg, base: base, jobs: map[string]*Job{}}
	reapCtx, stop := context.WithCancel(context.Background())
	r.stopReap = stop
	r.wg.Add(1)
	go r.reap(reapCtx)
	return r
}

// Submit registers a job and starts its runner on a fresh goroutine.
func (r *Registry) Submit(label string, run Runner) (*Job, error) {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil, ErrClosed
	}
	if len(r.jobs) >= r.cfg.maxJobs() {
		r.mu.Unlock()
		return nil, fmt.Errorf("%w: %d jobs resident; read or delete one first", ErrFull, len(r.jobs))
	}
	r.nextID++
	ctx, cancel := context.WithCancel(r.base)
	j := &Job{
		id:      fmt.Sprintf("j%06d", r.nextID),
		label:   label,
		reg:     r,
		ctx:     ctx,
		cancel:  cancel,
		spool:   newSpool(r.cfg.spoolRows(), ctx),
		state:   StatePending,
		created: time.Now(),
	}
	r.jobs[j.id] = j
	r.wg.Add(1)
	r.mu.Unlock()

	go func() {
		defer r.wg.Done()
		j.setState(StateRunning, nil)
		err := runRecovered(run, ctx, j)
		switch {
		case err == nil:
			j.setState(StateDone, nil)
		case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
			j.setState(StateCancelled, err)
		default:
			j.setState(StateFailed, err)
		}
		j.spool.finish()
	}()
	return j, nil
}

// runRecovered turns a runner panic into an error instead of killing
// the daemon: job bodies run arbitrary grids and the fault injector can
// be told to panic on purpose.
func runRecovered(run Runner, ctx context.Context, j *Job) (err error) {
	defer func() {
		if v := recover(); v != nil {
			err = fmt.Errorf("jobs: runner panicked: %v", v)
		}
	}()
	return run(ctx, j)
}

// Get looks a job up by ID.
func (r *Registry) Get(id string) (*Job, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	j, ok := r.jobs[id]
	return j, ok
}

// Delete cancels the job and removes it from the registry. It reports
// whether the job existed. The runner may still be winding down when
// Delete returns; Close waits for it.
func (r *Registry) Delete(id string) bool {
	r.mu.Lock()
	j, ok := r.jobs[id]
	delete(r.jobs, id)
	r.mu.Unlock()
	if ok {
		j.Cancel()
	}
	return ok
}

// Active counts jobs that are not yet terminal.
func (r *Registry) Active() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for _, j := range r.jobs {
		if !j.State().Terminal() {
			n++
		}
	}
	return n
}

// Resident counts all registered jobs, terminal or not.
func (r *Registry) Resident() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.jobs)
}

// PointTotals returns the monotonic ok/error result-point counters,
// summed over all jobs ever run (deletion does not subtract).
func (r *Registry) PointTotals() (ok, errs uint64) {
	return r.pointsOK.Load(), r.pointsErr.Load()
}

// Snapshots returns every resident job's snapshot, ordered by ID.
func (r *Registry) Snapshots() []Snapshot {
	r.mu.Lock()
	js := make([]*Job, 0, len(r.jobs))
	for _, j := range r.jobs {
		js = append(js, j)
	}
	r.mu.Unlock()
	out := make([]Snapshot, 0, len(js))
	for _, j := range js {
		out = append(out, j.Snapshot())
	}
	sortSnapshots(out)
	return out
}

func sortSnapshots(s []Snapshot) {
	for i := 1; i < len(s); i++ {
		for k := i; k > 0 && s[k].ID < s[k-1].ID; k-- {
			s[k], s[k-1] = s[k-1], s[k]
		}
	}
}

// Close cancels every job, stops the reaper, and waits for all runners
// to return. The registry rejects submissions afterwards.
func (r *Registry) Close() {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		r.wg.Wait()
		return
	}
	r.closed = true
	js := make([]*Job, 0, len(r.jobs))
	for _, j := range r.jobs {
		js = append(js, j)
	}
	r.mu.Unlock()
	for _, j := range js {
		j.Cancel()
	}
	r.stopReap()
	r.wg.Wait()
}

// reap periodically evicts terminal jobs whose results nobody claimed
// within the TTL, so an abandoned daemon does not accumulate spools.
func (r *Registry) reap(ctx context.Context) {
	defer r.wg.Done()
	ttl := r.cfg.ttl()
	period := ttl / 4
	if period < 10*time.Millisecond {
		period = 10 * time.Millisecond
	}
	if period > time.Minute {
		period = time.Minute
	}
	tick := time.NewTicker(period)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case now := <-tick.C:
			r.mu.Lock()
			for id, j := range r.jobs {
				st, _, fin := j.terminalInfo()
				if st.Terminal() && now.Sub(fin) > ttl {
					delete(r.jobs, id)
					j.Cancel()
				}
			}
			r.mu.Unlock()
		}
	}
}

// Job is one submitted sweep.
type Job struct {
	id     string
	label  string
	reg    *Registry
	ctx    context.Context
	cancel context.CancelFunc
	spool  *Spool

	mu       sync.Mutex
	state    State
	err      error
	created  time.Time
	finished time.Time

	pointsOK  atomic.Uint64
	pointsErr atomic.Uint64
}

// ID returns the job's registry key.
func (j *Job) ID() string { return j.id }

// Spool returns the job's result spool.
func (j *Job) Spool() *Spool { return j.spool }

// Context returns the job's context (derived from the registry base;
// cancelled by Cancel, Delete, or Close).
func (j *Job) Context() context.Context { return j.ctx }

// Cancel requests cooperative cancellation. Terminal jobs are
// unaffected beyond releasing their context.
func (j *Job) Cancel() { j.cancel() }

// State returns the current lifecycle phase.
func (j *Job) State() State {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

func (j *Job) setState(s State, err error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state.Terminal() {
		return
	}
	j.state = s
	if s.Terminal() {
		j.err = err
		j.finished = time.Now()
	}
}

func (j *Job) terminalInfo() (State, error, time.Time) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state, j.err, j.finished
}

// AddPoints records solved result points: ok rows and failed rows. The
// counts aggregate on the job and, monotonically, on the registry.
func (j *Job) AddPoints(ok, errs uint64) {
	j.pointsOK.Add(ok)
	j.pointsErr.Add(errs)
	j.reg.pointsOK.Add(ok)
	j.reg.pointsErr.Add(errs)
}

// Snapshot is a point-in-time view of a job for status endpoints.
type Snapshot struct {
	ID        string
	Label     string
	State     State
	Err       string
	Created   time.Time
	Finished  time.Time
	PointsOK  uint64
	PointsErr uint64
	// SpooledRows is the current unacknowledged backlog; HighWater its
	// lifetime maximum — the number that proves the spool stayed bounded.
	SpooledRows int
	HighWater   int
	// NextSeq is the sequence the next pushed batch would get; AckedSeq
	// the highest sequence freed by a reader cursor.
	NextSeq  uint64
	AckedSeq uint64
}

// Snapshot captures the job's current state.
func (j *Job) Snapshot() Snapshot {
	j.mu.Lock()
	st, err, created, finished := j.state, j.err, j.created, j.finished
	j.mu.Unlock()
	s := Snapshot{
		ID: j.id, Label: j.label, State: st,
		Created: created, Finished: finished,
		PointsOK: j.pointsOK.Load(), PointsErr: j.pointsErr.Load(),
	}
	if err != nil {
		s.Err = err.Error()
	}
	s.SpooledRows, s.HighWater, s.NextSeq, s.AckedSeq = j.spool.stats()
	return s
}

// Batch is one ordered chunk of encoded result rows.
type Batch struct {
	// Seq numbers batches from 1 in push order; the results cursor.
	Seq uint64
	// Rows are opaque encoded lines (NDJSON in the serve layer).
	Rows [][]byte
}

// Spool is the bounded, ordered result buffer between a job's runner
// and its readers.
type Spool struct {
	ctx context.Context // the job's context: unblocks Push and Next

	mu       sync.Mutex
	capRows  int
	batches  []Batch
	rows     int
	high     int
	nextSeq  uint64 // sequence for the next push (first batch is 1)
	ackedSeq uint64 // highest sequence freed by a reader
	finished bool
	changed  chan struct{} // closed and replaced on every mutation
}

func newSpool(capRows int, ctx context.Context) *Spool {
	return &Spool{ctx: ctx, capRows: capRows, nextSeq: 1, changed: make(chan struct{})}
}

func (s *Spool) broadcast() {
	close(s.changed)
	s.changed = make(chan struct{})
}

func (s *Spool) stats() (rows, high int, nextSeq, ackedSeq uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rows, s.high, s.nextSeq, s.ackedSeq
}

// HighWater returns the most rows ever buffered at once.
func (s *Spool) HighWater() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.high
}

// Push appends one batch of rows, blocking while the spool is at
// capacity (back-pressure). An empty batch is a no-op. A batch larger
// than the capacity is admitted alone once the spool drains, so one
// oversized wave cannot deadlock the job. Push fails with the job
// context's error once the job is cancelled.
func (s *Spool) Push(rows [][]byte) error {
	if len(rows) == 0 {
		return nil
	}
	s.mu.Lock()
	for s.rows > 0 && s.rows+len(rows) > s.capRows {
		ch := s.changed
		s.mu.Unlock()
		select {
		case <-s.ctx.Done():
			return s.ctx.Err()
		case <-ch:
		}
		s.mu.Lock()
	}
	if s.finished {
		s.mu.Unlock()
		return errors.New("jobs: push after finish")
	}
	s.batches = append(s.batches, Batch{Seq: s.nextSeq, Rows: rows})
	s.nextSeq++
	s.rows += len(rows)
	if s.rows > s.high {
		s.high = s.rows
	}
	s.broadcast()
	s.mu.Unlock()
	return nil
}

// finish marks the end of the stream: Next returns done once the
// backlog is drained.
func (s *Spool) finish() {
	s.mu.Lock()
	s.finished = true
	s.broadcast()
	s.mu.Unlock()
}

// Next returns the batches after the cursor, acknowledging — and
// freeing — everything at or before it. It blocks until at least one
// batch is available, the stream is finished (done=true with the final
// batches, possibly none), or ctx/job-context is done. A cursor before
// the freed prefix fails with ErrGone; one beyond the last pushed batch
// fails with ErrFuture.
func (s *Spool) Next(ctx context.Context, after uint64) ([]Batch, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if after < s.ackedSeq {
		return nil, false, fmt.Errorf("%w: cursor %d, already freed through %d", ErrGone, after, s.ackedSeq)
	}
	if after >= s.nextSeq {
		return nil, false, fmt.Errorf("%w: cursor %d, last batch is %d", ErrFuture, after, s.nextSeq-1)
	}
	// Acknowledge: the client proved receipt through `after` by asking
	// for what follows it.
	freed := false
	for len(s.batches) > 0 && s.batches[0].Seq <= after {
		s.rows -= len(s.batches[0].Rows)
		s.batches[0].Rows = nil
		s.batches = s.batches[1:]
		freed = true
	}
	if after > s.ackedSeq {
		s.ackedSeq = after
	}
	if freed {
		s.broadcast() // wake a Push blocked on capacity
	}
	for {
		if len(s.batches) > 0 {
			out := make([]Batch, len(s.batches))
			copy(out, s.batches)
			return out, s.finished, nil
		}
		if s.finished {
			return nil, true, nil
		}
		ch := s.changed
		s.mu.Unlock()
		select {
		case <-ctx.Done():
			s.mu.Lock()
			return nil, false, ctx.Err()
		case <-s.ctx.Done():
			s.mu.Lock()
			return nil, false, s.ctx.Err()
		case <-ch:
		}
		s.mu.Lock()
	}
}
