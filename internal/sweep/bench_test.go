package sweep

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"swcc/internal/core"
	"swcc/internal/queueing"
)

// benchGrid is a Table 8-scale sensitivity grid made heavy enough to
// measure: every (parameter, scheme, low/high) cell at 256 processors,
// the paper's large-machine regime.
func benchGrid() []Point {
	mid := core.MiddleParams()
	var points []Point
	for _, f := range core.Fields() {
		for _, s := range core.PaperSchemes() {
			for _, l := range []core.Level{core.Low, core.High} {
				p, err := mid.WithLevel(f.Name, l)
				if err != nil {
					panic(err)
				}
				points = append(points, Point{Scheme: s, Params: p, NProc: 256})
			}
		}
	}
	return points
}

// sequentialBaseline times one sequential uncached pass over the grid,
// the reference the speedup metric compares against.
func sequentialBaseline(points []Point, costs *core.CostTable) time.Duration {
	eng := &Engine{Workers: 1}
	start := time.Now()
	if err := FirstError(eng.EvaluateBus(points, costs)); err != nil {
		panic(err)
	}
	return time.Since(start)
}

func benchmarkSweep(b *testing.B, mkEngine func() *Engine) {
	points := benchGrid()
	costs := core.BusCosts()
	ref := sequentialBaseline(points, costs)
	b.ReportAllocs()
	b.ResetTimer()
	start := time.Now()
	for i := 0; i < b.N; i++ {
		eng := mkEngine()
		if err := FirstError(eng.EvaluateBus(points, costs)); err != nil {
			b.Fatal(err)
		}
	}
	elapsed := time.Since(start)
	perIter := elapsed / time.Duration(b.N)
	if perIter > 0 {
		// speedup vs one sequential uncached pass over the same grid;
		// > 1 means the configuration beats the pre-sweep code path.
		b.ReportMetric(float64(ref)/float64(perIter), "speedup")
	}
	b.ReportMetric(float64(len(points)), "points")
}

// BenchmarkSweepSequentialUncached is the pre-engine baseline (speedup
// metric should sit near 1.0).
func BenchmarkSweepSequentialUncached(b *testing.B) {
	benchmarkSweep(b, func() *Engine { return &Engine{Workers: 1} })
}

// BenchmarkSweepParallelUncached isolates the worker-pool gain; the
// speedup metric approaches the core count on a multi-core runner.
func BenchmarkSweepParallelUncached(b *testing.B) {
	benchmarkSweep(b, func() *Engine { return &Engine{Workers: 0} })
}

// BenchmarkSweepParallelCached is the shipped configuration: worker pool
// plus a fresh memo cache per grid evaluation.
func BenchmarkSweepParallelCached(b *testing.B) {
	benchmarkSweep(b, func() *Engine { return New(0) })
}

// BenchmarkSweepWarmCache measures the steady state the experiments
// registry sees: the cache already holds the whole grid, so every point
// is two map hits.
func BenchmarkSweepWarmCache(b *testing.B) {
	points := benchGrid()
	costs := core.BusCosts()
	ref := sequentialBaseline(points, costs)
	eng := New(0)
	if err := FirstError(eng.EvaluateBus(points, costs)); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	start := time.Now()
	for i := 0; i < b.N; i++ {
		if err := FirstError(eng.EvaluateBus(points, costs)); err != nil {
			b.Fatal(err)
		}
	}
	elapsed := time.Since(start)
	perIter := elapsed / time.Duration(b.N)
	if perIter > 0 {
		b.ReportMetric(float64(ref)/float64(perIter), "speedup")
	}
}

// BenchmarkEvaluatorBusPoint measures the single-point query path the
// bisections hit (cold cache per iteration batch is irrelevant here —
// steady-state hits dominate real usage).
func BenchmarkEvaluatorBusPoint(b *testing.B) {
	ev := NewEvaluator()
	p := core.MiddleParams()
	costs := core.BusCosts()
	if _, err := ev.BusPoint(core.SoftwareFlush{}, p, costs, 64); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ev.BusPoint(core.SoftwareFlush{}, p, costs, 64); err != nil {
			b.Fatal(err)
		}
	}
}

// busPointer abstracts the sharded evaluator and the single-mutex
// baseline so BenchmarkEvaluatorContention drives both identically.
type busPointer interface {
	BusPoint(s core.Scheme, p core.Params, costs *core.CostTable, nproc int) (core.BusPoint, error)
}

// mutexEvaluator is the PR 1 evaluator design — every cache behind one
// sync.Mutex — kept as the contention baseline the sharded design is
// measured against. Results are identical; only the locking differs.
type mutexEvaluator struct {
	mu      sync.Mutex
	demands map[demandKey]core.Demand
	curves  map[mvaKey][]queueing.SingleServerResult
	tables  map[*core.CostTable]string
}

func newMutexEvaluator() *mutexEvaluator {
	return &mutexEvaluator{
		demands: map[demandKey]core.Demand{},
		curves:  map[mvaKey][]queueing.SingleServerResult{},
		tables:  map[*core.CostTable]string{},
	}
}

func (ev *mutexEvaluator) BusPoint(s core.Scheme, p core.Params, costs *core.CostTable, nproc int) (core.BusPoint, error) {
	ev.mu.Lock()
	fp, ok := ev.tables[costs]
	if !ok {
		fp = costs.Name
		for _, op := range core.Ops() {
			if costs.Defines(op) {
				c := costs.Cost(op)
				fp += fmt.Sprintf("|%d:%x:%x", int(op), c.CPU, c.Interconnect)
			}
		}
		ev.tables[costs] = fp
	}
	key := demandKey{schemeKey(s), core.CanonicalParams(s, p), fp}
	d, ok := ev.demands[key]
	ev.mu.Unlock()
	if !ok {
		var err error
		if d, err = core.ComputeDemand(s, p, costs); err != nil {
			return core.BusPoint{}, err
		}
		ev.mu.Lock()
		ev.demands[key] = d
		ev.mu.Unlock()
	}
	ck := mvaKey{d.Think(), d.Interconnect, d.Priority}
	ev.mu.Lock()
	c, ok := ev.curves[ck]
	if ok && len(c) >= nproc {
		out := append([]queueing.SingleServerResult(nil), c[:nproc]...)
		ev.mu.Unlock()
		return core.BusPointFromMVA(d, out[nproc-1]), nil
	}
	ev.mu.Unlock()
	c, err := queueing.SingleServerMVA(d.Think(), d.Interconnect, nproc)
	if err != nil {
		return core.BusPoint{}, err
	}
	ev.mu.Lock()
	if prev, ok := ev.curves[ck]; !ok || len(prev) < len(c) {
		ev.curves[ck] = append([]queueing.SingleServerResult(nil), c...)
	}
	ev.mu.Unlock()
	return core.BusPointFromMVA(d, c[nproc-1]), nil
}

// contentionKeys is the hit-heavy mix: a few dozen workloads per scheme,
// all warmed before the timer starts, so the measured path is pure cache
// traffic — the regime where the single lock was the bus everyone queued
// on.
type contentionKey struct {
	s core.Scheme
	p core.Params
}

func contentionKeys(b *testing.B) []contentionKey {
	schemes := []core.Scheme{core.Base{}, core.Dragon{}, core.SoftwareFlush{}, core.NoCache{}}
	var keys []contentionKey
	for i := 0; i < 16; i++ {
		p, err := core.MiddleParams().With("shd", 0.05+0.9*float64(i)/16)
		if err != nil {
			b.Fatal(err)
		}
		for _, s := range schemes {
			keys = append(keys, contentionKey{s: s, p: p})
		}
	}
	return keys
}

// BenchmarkEvaluatorContention hammers one shared evaluator from
// GOMAXPROCS goroutines on the hit-heavy mix (run with -cpu 1,4,8 to see
// the scaling curve). "sharded" is the shipped design — read-locked
// striped hits, atomic counters; "mutex" is the single-lock baseline it
// replaced. The acceptance criterion is sharded >= 2x mutex throughput
// at -cpu 8.
func BenchmarkEvaluatorContention(b *testing.B) {
	impls := []struct {
		name string
		mk   func() busPointer
	}{
		{"sharded", func() busPointer { return NewEvaluator() }},
		{"mutex", func() busPointer { return newMutexEvaluator() }},
	}
	for _, impl := range impls {
		b.Run(impl.name, func(b *testing.B) {
			keys := contentionKeys(b)
			costs := core.BusCosts()
			ev := impl.mk()
			for _, k := range keys {
				if _, err := ev.BusPoint(k.s, k.p, costs, 64); err != nil {
					b.Fatal(err)
				}
			}
			var next atomic.Int64
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				i := int(next.Add(1)) * 17 // stagger goroutines across the key space
				for pb.Next() {
					k := keys[i%len(keys)]
					i++
					if _, err := ev.BusPoint(k.s, k.p, costs, 64); err != nil {
						b.Error(err)
						return
					}
				}
			})
		})
	}
}

// BenchmarkEvaluatorContentionMixed is the same shared-evaluator hammer
// with a cold miss every 8th query (drawn from a large rotating pool),
// so singleflight and insert paths stay in the profile alongside hits.
func BenchmarkEvaluatorContentionMixed(b *testing.B) {
	impls := []struct {
		name string
		mk   func() busPointer
	}{
		{"sharded", func() busPointer { return NewEvaluator() }},
		{"mutex", func() busPointer { return newMutexEvaluator() }},
	}
	for _, impl := range impls {
		b.Run(impl.name, func(b *testing.B) {
			keys := contentionKeys(b)
			const coldPool = 1 << 14
			costs := core.BusCosts()
			ev := impl.mk()
			for _, k := range keys {
				if _, err := ev.BusPoint(k.s, k.p, costs, 64); err != nil {
					b.Fatal(err)
				}
			}
			var next atomic.Int64
			var cold atomic.Int64
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				i := int(next.Add(1)) * 17
				for pb.Next() {
					var k contentionKey
					if i%8 == 0 {
						n := cold.Add(1) % coldPool
						p, err := core.MiddleParams().With("oclean", 0.01+0.98*float64(n)/coldPool)
						if err != nil {
							b.Error(err)
							return
						}
						k = contentionKey{s: core.Dragon{}, p: p}
					} else {
						k = keys[i%len(keys)]
					}
					i++
					if _, err := ev.BusPoint(k.s, k.p, costs, 64); err != nil {
						b.Error(err)
						return
					}
				}
			})
		})
	}
}
