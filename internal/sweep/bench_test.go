package sweep

import (
	"testing"
	"time"

	"swcc/internal/core"
)

// benchGrid is a Table 8-scale sensitivity grid made heavy enough to
// measure: every (parameter, scheme, low/high) cell at 256 processors,
// the paper's large-machine regime.
func benchGrid() []Point {
	mid := core.MiddleParams()
	var points []Point
	for _, f := range core.Fields() {
		for _, s := range core.PaperSchemes() {
			for _, l := range []core.Level{core.Low, core.High} {
				p, err := mid.WithLevel(f.Name, l)
				if err != nil {
					panic(err)
				}
				points = append(points, Point{Scheme: s, Params: p, NProc: 256})
			}
		}
	}
	return points
}

// sequentialBaseline times one sequential uncached pass over the grid,
// the reference the speedup metric compares against.
func sequentialBaseline(points []Point, costs *core.CostTable) time.Duration {
	eng := &Engine{Workers: 1}
	start := time.Now()
	if err := FirstError(eng.EvaluateBus(points, costs)); err != nil {
		panic(err)
	}
	return time.Since(start)
}

func benchmarkSweep(b *testing.B, mkEngine func() *Engine) {
	points := benchGrid()
	costs := core.BusCosts()
	ref := sequentialBaseline(points, costs)
	b.ReportAllocs()
	b.ResetTimer()
	start := time.Now()
	for i := 0; i < b.N; i++ {
		eng := mkEngine()
		if err := FirstError(eng.EvaluateBus(points, costs)); err != nil {
			b.Fatal(err)
		}
	}
	elapsed := time.Since(start)
	perIter := elapsed / time.Duration(b.N)
	if perIter > 0 {
		// speedup vs one sequential uncached pass over the same grid;
		// > 1 means the configuration beats the pre-sweep code path.
		b.ReportMetric(float64(ref)/float64(perIter), "speedup")
	}
	b.ReportMetric(float64(len(points)), "points")
}

// BenchmarkSweepSequentialUncached is the pre-engine baseline (speedup
// metric should sit near 1.0).
func BenchmarkSweepSequentialUncached(b *testing.B) {
	benchmarkSweep(b, func() *Engine { return &Engine{Workers: 1} })
}

// BenchmarkSweepParallelUncached isolates the worker-pool gain; the
// speedup metric approaches the core count on a multi-core runner.
func BenchmarkSweepParallelUncached(b *testing.B) {
	benchmarkSweep(b, func() *Engine { return &Engine{Workers: 0} })
}

// BenchmarkSweepParallelCached is the shipped configuration: worker pool
// plus a fresh memo cache per grid evaluation.
func BenchmarkSweepParallelCached(b *testing.B) {
	benchmarkSweep(b, func() *Engine { return New(0) })
}

// BenchmarkSweepWarmCache measures the steady state the experiments
// registry sees: the cache already holds the whole grid, so every point
// is two map hits.
func BenchmarkSweepWarmCache(b *testing.B) {
	points := benchGrid()
	costs := core.BusCosts()
	ref := sequentialBaseline(points, costs)
	eng := New(0)
	if err := FirstError(eng.EvaluateBus(points, costs)); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	start := time.Now()
	for i := 0; i < b.N; i++ {
		if err := FirstError(eng.EvaluateBus(points, costs)); err != nil {
			b.Fatal(err)
		}
	}
	elapsed := time.Since(start)
	perIter := elapsed / time.Duration(b.N)
	if perIter > 0 {
		b.ReportMetric(float64(ref)/float64(perIter), "speedup")
	}
}

// BenchmarkEvaluatorBusPoint measures the single-point query path the
// bisections hit (cold cache per iteration batch is irrelevant here —
// steady-state hits dominate real usage).
func BenchmarkEvaluatorBusPoint(b *testing.B) {
	ev := NewEvaluator()
	p := core.MiddleParams()
	costs := core.BusCosts()
	if _, err := ev.BusPoint(core.SoftwareFlush{}, p, costs, 64); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ev.BusPoint(core.SoftwareFlush{}, p, costs, 64); err != nil {
			b.Fatal(err)
		}
	}
}
