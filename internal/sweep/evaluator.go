// Package sweep is the repo's batched, parallel evaluation layer for the
// analytical model: a worker-pool engine that evaluates grids of
// (scheme, workload, machine-size) points deterministically, and a
// memoizing evaluator that deduplicates the ComputeDemand and
// SingleServerMVA solves underneath repeated model queries (sensitivity
// tables, bisections, advisor rankings, parameter sweeps).
//
// Determinism: every solve is a pure function of its inputs, results are
// written into caller-indexed slots, and cache hits return values the
// same code path produced on the miss — so parallel and cached runs are
// bit-identical to sequential fresh runs regardless of scheduling.
package sweep

import (
	"fmt"
	"sync"

	"swcc/internal/core"
	"swcc/internal/queueing"
)

// Stats counts the evaluator's cache traffic. A "solve" is one real
// ComputeDemand or one SingleServerMVA recursion; hits served from memory
// are counted separately.
type Stats struct {
	// DemandSolves and DemandHits count ComputeDemand evaluations and
	// cache hits.
	DemandSolves, DemandHits uint64
	// MVASolves and MVAHits count SingleServerMVA recursions and curve
	// cache hits.
	MVASolves, MVAHits uint64
	// DemandEntries, CurveEntries, and TableEntries are the current
	// sizes of the three memo maps — the numbers a long-running server
	// watches to know its caches are bounded by distinct-work, not time.
	DemandEntries, CurveEntries, TableEntries int
}

// demandKey identifies one demand solve: the scheme (including any
// configuration carried in its Stringer form, e.g. Hybrid's lock
// fraction), the workload canonicalized to the parameters the scheme
// actually reads, and the cost table's content fingerprint.
type demandKey struct {
	scheme string
	params core.Params
	table  string
}

// mvaKey identifies a single-server MVA curve by its two real inputs.
type mvaKey struct {
	think, service float64
}

// Evaluator memoizes demand and MVA solves. It is safe for concurrent
// use; the zero value is not ready — construct with NewEvaluator.
type Evaluator struct {
	mu      sync.Mutex
	demands map[demandKey]core.Demand
	curves  map[mvaKey][]queueing.SingleServerResult
	tables  map[*core.CostTable]string // fingerprint memo, keyed by pointer
	stats   Stats
}

// NewEvaluator returns an empty cache.
func NewEvaluator() *Evaluator {
	return &Evaluator{
		demands: map[demandKey]core.Demand{},
		curves:  map[mvaKey][]queueing.SingleServerResult{},
		tables:  map[*core.CostTable]string{},
	}
}

// Stats returns a snapshot of the cache counters and current map sizes.
func (ev *Evaluator) Stats() Stats {
	ev.mu.Lock()
	defer ev.mu.Unlock()
	st := ev.stats
	st.DemandEntries = len(ev.demands)
	st.CurveEntries = len(ev.curves)
	st.TableEntries = len(ev.tables)
	return st
}

// schemeKey distinguishes schemes in the cache. Configured schemes
// (Hybrid) expose their configuration through String, which must be used
// instead of the bare Name so two differently configured instances never
// share an entry.
func schemeKey(s core.Scheme) string {
	if str, ok := s.(fmt.Stringer); ok {
		return str.String()
	}
	return s.Name()
}

// tableMemoCap bounds the pointer-keyed fingerprint memo. Batch callers
// reuse a handful of table pointers, but a long-lived server handed a
// fresh *CostTable per request would otherwise grow the memo (and pin
// every table it has ever seen) forever. The memo only skips recomputing
// a cheap string — demand results are keyed by content, not pointer — so
// dropping it wholesale at the cap is correct and keeps memory bounded.
const tableMemoCap = 1024

// fingerprint returns a content key for the cost table, memoized by
// pointer (tables are immutable after construction). Content-based keying
// means two identical tables built by separate BusCosts() calls share
// cache entries.
func (ev *Evaluator) fingerprint(costs *core.CostTable) string {
	if fp, ok := ev.tables[costs]; ok {
		return fp
	}
	fp := costs.Name
	for _, op := range core.Ops() {
		if !costs.Defines(op) {
			continue
		}
		c := costs.Cost(op)
		fp += fmt.Sprintf("|%d:%x:%x", int(op), c.CPU, c.Interconnect)
	}
	if len(ev.tables) >= tableMemoCap {
		ev.tables = make(map[*core.CostTable]string, tableMemoCap)
	}
	ev.tables[costs] = fp
	return fp
}

// Demand is a memoized core.ComputeDemand. The workload is validated
// first (mirroring ComputeDemand's own order) so an invalid Params always
// errors even when a canonically equal valid workload is already cached.
// Error results are not cached.
func (ev *Evaluator) Demand(s core.Scheme, p core.Params, costs *core.CostTable) (core.Demand, error) {
	if err := p.Validate(); err != nil {
		return core.Demand{}, fmt.Errorf("%s: %w", s.Name(), err)
	}
	ev.mu.Lock()
	key := demandKey{schemeKey(s), core.CanonicalParams(s, p), ev.fingerprint(costs)}
	if d, ok := ev.demands[key]; ok {
		ev.stats.DemandHits++
		ev.mu.Unlock()
		return d, nil
	}
	ev.mu.Unlock()

	d, err := core.ComputeDemand(s, p, costs)
	if err != nil {
		return core.Demand{}, err
	}
	ev.mu.Lock()
	ev.stats.DemandSolves++
	ev.demands[key] = d
	ev.mu.Unlock()
	return d, nil
}

// curve returns the MVA results for populations 1..n, reusing (a prefix
// of) a previously solved curve for the same (think, service) when long
// enough. The MVA recursion computes 1..n in one pass, so a longer curve's
// prefix is bit-identical to a shorter solve.
//
// The returned slice never aliases the cached one: the cache previously
// handed out c[:n] over its own backing array, so one mutating caller
// silently corrupted every later hit. Cloning on both the hit and the
// miss path makes returned curves caller-owned.
func (ev *Evaluator) curve(d core.Demand, n int) ([]queueing.SingleServerResult, error) {
	key := mvaKey{d.Think(), d.Interconnect}
	ev.mu.Lock()
	if c, ok := ev.curves[key]; ok && len(c) >= n {
		ev.stats.MVAHits++
		out := append([]queueing.SingleServerResult(nil), c[:n]...)
		ev.mu.Unlock()
		return out, nil
	}
	ev.mu.Unlock()

	c, err := queueing.SingleServerMVA(d.Think(), d.Interconnect, n)
	if err != nil {
		return nil, err
	}
	ev.mu.Lock()
	ev.stats.MVASolves++
	if prev, ok := ev.curves[key]; !ok || len(prev) < len(c) {
		ev.curves[key] = append([]queueing.SingleServerResult(nil), c...)
	}
	ev.mu.Unlock()
	return c, nil
}

// EvaluateBus is a memoized core.EvaluateBus: identical results, served
// from the demand and curve caches when possible.
func (ev *Evaluator) EvaluateBus(s core.Scheme, p core.Params, costs *core.CostTable, maxProcs int) ([]core.BusPoint, error) {
	if maxProcs < 1 {
		return nil, fmt.Errorf("core: maxProcs %d < 1", maxProcs)
	}
	d, err := ev.Demand(s, p, costs)
	if err != nil {
		return nil, err
	}
	mva, err := ev.curve(d, maxProcs)
	if err != nil {
		return nil, err
	}
	points := make([]core.BusPoint, maxProcs)
	for i, r := range mva {
		points[i] = core.BusPointFromMVA(d, r)
	}
	return points, nil
}

// BusPoint returns the bus-model prediction at exactly nproc processors.
func (ev *Evaluator) BusPoint(s core.Scheme, p core.Params, costs *core.CostTable, nproc int) (core.BusPoint, error) {
	if nproc < 1 {
		return core.BusPoint{}, fmt.Errorf("core: nproc %d < 1", nproc)
	}
	d, err := ev.Demand(s, p, costs)
	if err != nil {
		return core.BusPoint{}, err
	}
	mva, err := ev.curve(d, nproc)
	if err != nil {
		return core.BusPoint{}, err
	}
	return core.BusPointFromMVA(d, mva[nproc-1]), nil
}

// BusPower implements core.PowerEvaluator, so the evaluator plugs
// directly into APLToMatchWith, MaxShdForPowerWith, and RankBusWith.
func (ev *Evaluator) BusPower(s core.Scheme, p core.Params, costs *core.CostTable, nproc int) (float64, error) {
	pt, err := ev.BusPoint(s, p, costs, nproc)
	if err != nil {
		return 0, err
	}
	return pt.Power, nil
}
