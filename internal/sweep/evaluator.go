package sweep

import (
	"context"
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"swcc/internal/core"
	"swcc/internal/obs"
	"swcc/internal/queueing"
)

// Stage names the Evaluator reports through an Observer. Together with
// the serving layer's validate stage they decompose one request's wall
// time the way the paper's Tables 1–6 decompose a scheme's cycle cost:
// per component, not just in aggregate.
const (
	// StageCacheLookup is the time to decide hit-or-miss on the fast
	// (read-locked) path, including copying the value out on a hit.
	StageCacheLookup = "cache_lookup"
	// StageDedupWait is the time a deduplicated miss spent parked on
	// another goroutine's in-flight solve.
	StageDedupWait = "singleflight_wait"
	// StageSolve is the time of a real cold solve (core.ComputeDemand or
	// queueing.SingleServerMVA).
	StageSolve = "solve"
)

// Cache event names the Evaluator reports through an Observer. The
// cache label is "demand" or "mva", matching the /metrics label values.
const (
	// EventHit is a query answered from the memo.
	EventHit = "hit"
	// EventMiss is a query that led a cold solve.
	EventMiss = "miss"
	// EventDedupJoin is a miss that joined another goroutine's in-flight
	// solve instead of re-solving.
	EventDedupJoin = "dedup_join"
	// EventEvict is an entry dropped by the bounded-capacity CLOCK
	// policy to make room.
	EventEvict = "evict"
)

// Observer receives the evaluator's stage timings and cache events.
// Implementations must be safe for concurrent use; calls happen on the
// query's goroutine with the query's context, so an observer can read
// the trace ID (obs.TraceID) to correlate events with a request. The
// evaluator never blocks correctness on an observer — it is telemetry
// only.
type Observer interface {
	// StageObserved reports that one pipeline stage took the given wall
	// time in seconds. Stage is one of the Stage* constants.
	StageObserved(ctx context.Context, stage string, seconds float64)
	// CacheEvent reports a discrete cache outcome. Cache is "demand" or
	// "mva"; event is one of the Event* constants.
	CacheEvent(ctx context.Context, cache, event string)
}

// Stats counts the evaluator's cache traffic. A "solve" is one real
// ComputeDemand or one SingleServerMVA recursion; hits served from memory
// and misses deduplicated onto another goroutine's in-flight solve are
// counted separately.
type Stats struct {
	// DemandSolves and DemandHits count ComputeDemand evaluations and
	// cache hits.
	DemandSolves, DemandHits uint64
	// MVASolves and MVAHits count SingleServerMVA recursions and curve
	// cache hits. MVASolves is the sum of CurveExtends and
	// CurveFullSolves: every real recursion segment, however seeded.
	MVASolves, MVAHits uint64
	// CurveExtends counts MVA solves that resumed the recursion from a
	// cached shorter curve instead of restarting at population 1;
	// CurveFullSolves counts solves that started cold. Their ratio says
	// how much of the kernel's work the incremental path is saving.
	CurveExtends, CurveFullSolves uint64
	// DemandDedups and MVADedups count concurrent misses that waited for
	// (and shared) another goroutine's in-flight solve instead of
	// re-solving — the singleflight savings under parallel load.
	DemandDedups, MVADedups uint64
	// DemandEvictions and CurveEvictions count entries dropped by the
	// bounded-capacity CLOCK policy. Always zero on an unbounded
	// evaluator.
	DemandEvictions, CurveEvictions uint64
	// DemandEntries, CurveEntries, and TableEntries are the current
	// sizes of the three memo caches — the numbers a long-running server
	// watches to know its caches are bounded by distinct-work (or by the
	// configured capacity), not time.
	DemandEntries, CurveEntries, TableEntries int
	// Shards is the number of lock stripes each cache is split across.
	Shards int
}

// demandKey identifies one demand solve: the scheme (including any
// configuration carried in its Stringer form, e.g. Hybrid's lock
// fraction), the workload canonicalized to the parameters the scheme
// actually reads, and the cost table's content fingerprint.
type demandKey struct {
	scheme string
	params core.Params
	table  string
}

// mvaKey identifies a single-server MVA curve by its real inputs: think
// time, total service demand, and the high-priority share of service
// (zero for every FCFS curve, so pre-priority keys are unchanged).
type mvaKey struct {
	think, service, prio float64
}

// numShards is the lock-stripe count for the demand and curve caches.
// Power of two so the shard index is a mask; 32 stripes keep the
// collision probability on a busy server low without bloating the
// per-evaluator footprint.
const numShards = 32

// --- FNV-1a key hashing (shard selection) ---

const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

func hashString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime
	}
	return h
}

func hashFloat(h uint64, f float64) uint64 {
	b := math.Float64bits(f)
	for i := 0; i < 8; i++ {
		h ^= b & 0xff
		h *= fnvPrime
		b >>= 8
	}
	return h
}

func (k demandKey) shard() int {
	h := hashString(uint64(fnvOffset), k.scheme)
	h = hashString(h, k.table)
	p := k.params
	for _, f := range [...]float64{
		p.LS, p.MsDat, p.MsIns, p.MD, p.Shd, p.WR,
		p.APL, p.MdShd, p.OClean, p.OPres, p.NShd,
	} {
		h = hashFloat(h, f)
	}
	return int(h & (numShards - 1))
}

func (k mvaKey) shard() int {
	h := hashFloat(uint64(fnvOffset), k.think)
	h = hashFloat(h, k.service)
	h = hashFloat(h, k.prio)
	return int(h & (numShards - 1))
}

// --- lock-striped shard storage ---

// slot is one cached value plus its CLOCK reference bit. The bit is set
// atomically on hits (under the shard's read lock, where plain writes
// would race) and swept under the write lock by eviction.
type slot[V any] struct {
	v   V
	ref atomic.Bool
}

// flight is one in-flight solve other goroutines can wait on instead of
// re-solving. n is the curve length being solved (1 for demand flights,
// where any result covers any waiter). v and err are written exactly once
// before done is closed and never mutated after, so waiters may read them
// without a lock.
type flight[V any] struct {
	n    int
	done chan struct{}
	v    V
	err  error
}

// striped is one lock stripe of a cache: the resident entries, CLOCK
// eviction metadata, and the singleflight calls for keys that hash here.
// Hits take only mu.RLock; misses, publishes, and evictions take mu.
type striped[K comparable, V any] struct {
	mu       sync.RWMutex
	entries  map[K]*slot[V]
	inflight map[K]*flight[V]
	ring     []K // CLOCK ring; maintained only when the shard is capped
	hand     int
}

func (s *striped[K, V]) init() {
	s.entries = map[K]*slot[V]{}
	s.inflight = map[K]*flight[V]{}
}

// put inserts v, evicting one CLOCK victim first when the shard is at
// cap (cap <= 0 = unbounded). Caller holds mu. Reports whether an
// eviction happened.
func (s *striped[K, V]) put(key K, v V, cap int) bool {
	if sl, ok := s.entries[key]; ok {
		sl.v = v
		return false
	}
	evicted := false
	if cap > 0 && len(s.entries) >= cap {
		s.evict()
		evicted = true
	}
	s.entries[key] = &slot[V]{v: v}
	if cap > 0 {
		s.ring = append(s.ring, key)
	}
	return evicted
}

// evict removes one entry by the CLOCK policy: sweep the ring clearing
// reference bits; the first entry not referenced since its last sweep is
// the victim. Caller holds mu exclusively, so no reader can set a bit
// mid-sweep and the loop terminates within one revolution.
func (s *striped[K, V]) evict() {
	for {
		if s.hand >= len(s.ring) {
			s.hand = 0
		}
		key := s.ring[s.hand]
		if s.entries[key].ref.CompareAndSwap(true, false) {
			s.hand++
			continue
		}
		delete(s.entries, key)
		last := len(s.ring) - 1
		s.ring[s.hand] = s.ring[last]
		s.ring = s.ring[:last]
		return
	}
}

// Evaluator memoizes demand and MVA solves. It is safe for concurrent
// use and designed to scale with cores: both caches are split across
// lock-striped shards whose hits take only a read lock, bookkeeping is
// atomic, and concurrent misses on one key are deduplicated onto a
// single in-flight solve (singleflight) whose result every waiter
// shares. The zero value is not ready — construct with NewEvaluator or
// NewEvaluatorCap.
type Evaluator struct {
	demands  [numShards]striped[demandKey, core.Demand]
	curves   [numShards]striped[mvaKey, []queueing.SingleServerResult]
	tables   tableMemo
	shardCap int // per-shard entry cap for each cache; 0 = unbounded

	demandSolves, demandHits, demandDedups atomic.Uint64
	mvaSolves, mvaHits, mvaDedups          atomic.Uint64
	curveExtends, curveFullSolves          atomic.Uint64
	demandEvictions, curveEvictions        atomic.Uint64

	// obsv, when non-nil, receives stage timings and cache events. Set
	// once via SetObserver before the evaluator sees traffic; nil (the
	// default) makes every instrumentation point a single branch.
	obsv Observer

	// waitHook, when non-nil, runs on the singleflight wait path after a
	// goroutine has committed to waiting on another's in-flight solve.
	// Tests use it to hold a solve open until every racer is parked.
	waitHook func()
}

// SetObserver installs the evaluator's telemetry sink. It must be called
// before the evaluator is shared across goroutines (typically right
// after construction); passing nil disables observation.
func (ev *Evaluator) SetObserver(o Observer) { ev.obsv = o }

// NewEvaluator returns an empty, unbounded cache.
func NewEvaluator() *Evaluator { return NewEvaluatorCap(0) }

// NewEvaluatorCap returns an evaluator whose demand and curve caches are
// each bounded to roughly capacity entries, evicting by a per-shard
// CLOCK policy (hits set a reference bit; a sweeping hand evicts the
// first entry not referenced since its last pass). The capacity is split
// evenly across shards and rounded up, so the effective bound is
// Capacity(). capacity <= 0 means unbounded.
func NewEvaluatorCap(capacity int) *Evaluator {
	ev := &Evaluator{}
	if capacity > 0 {
		ev.shardCap = (capacity + numShards - 1) / numShards
	}
	for i := range ev.demands {
		ev.demands[i].init()
	}
	for i := range ev.curves {
		ev.curves[i].init()
	}
	ev.tables.m.Store(&sync.Map{})
	return ev
}

// Capacity returns the effective entry bound per cache (demand and curve
// each), or 0 when unbounded. It can exceed the capacity passed to
// NewEvaluatorCap by up to numShards-1 due to per-shard rounding.
func (ev *Evaluator) Capacity() int { return ev.shardCap * numShards }

// Stats returns a snapshot of the cache counters and current sizes. The
// counters are individually atomic, so a snapshot taken mid-traffic is
// approximate (e.g. hits may momentarily outpace solves).
func (ev *Evaluator) Stats() Stats {
	st := Stats{
		DemandSolves:    ev.demandSolves.Load(),
		DemandHits:      ev.demandHits.Load(),
		MVASolves:       ev.mvaSolves.Load(),
		MVAHits:         ev.mvaHits.Load(),
		CurveExtends:    ev.curveExtends.Load(),
		CurveFullSolves: ev.curveFullSolves.Load(),
		DemandDedups:    ev.demandDedups.Load(),
		MVADedups:       ev.mvaDedups.Load(),
		DemandEvictions: ev.demandEvictions.Load(),
		CurveEvictions:  ev.curveEvictions.Load(),
		TableEntries:    int(ev.tables.count.Load()),
		Shards:          numShards,
	}
	for i := range ev.demands {
		sh := &ev.demands[i]
		sh.mu.RLock()
		st.DemandEntries += len(sh.entries)
		sh.mu.RUnlock()
	}
	for i := range ev.curves {
		sh := &ev.curves[i]
		sh.mu.RLock()
		st.CurveEntries += len(sh.entries)
		sh.mu.RUnlock()
	}
	return st
}

// ShardSizes returns the per-shard entry counts of the demand and curve
// caches, for export as per-shard gauges (a skewed distribution means a
// hot key range is hashing onto one stripe).
func (ev *Evaluator) ShardSizes() (demand, curve []int) {
	demand = make([]int, numShards)
	curve = make([]int, numShards)
	for i := range ev.demands {
		sh := &ev.demands[i]
		sh.mu.RLock()
		demand[i] = len(sh.entries)
		sh.mu.RUnlock()
	}
	for i := range ev.curves {
		sh := &ev.curves[i]
		sh.mu.RLock()
		curve[i] = len(sh.entries)
		sh.mu.RUnlock()
	}
	return demand, curve
}

// schemeKey distinguishes schemes in the cache. Configured schemes
// (Hybrid) expose their configuration through String, which must be used
// instead of the bare Name so two differently configured instances never
// share an entry.
func schemeKey(s core.Scheme) string {
	if str, ok := s.(fmt.Stringer); ok {
		return str.String()
	}
	return s.Name()
}

// tableMemoCap bounds the pointer-keyed fingerprint memo. Batch callers
// reuse a handful of table pointers, but a long-lived server handed a
// fresh *CostTable per request would otherwise grow the memo (and pin
// every table it has ever seen) forever. The memo only skips recomputing
// a cheap string — demand results are keyed by content, not pointer — so
// dropping it wholesale at the cap is correct and keeps memory bounded.
const tableMemoCap = 1024

// tableMemo is the pointer-keyed fingerprint memo: a sync.Map from
// *core.CostTable to its content fingerprint, swapped wholesale for a
// fresh map at tableMemoCap. Lookups are lock-free, so the hot demand
// path never serializes on fingerprinting. count tracks the current
// map's size; under a rare concurrent swap it may briefly overcount by
// the number of in-flight inserts, which only makes the bound tighter.
type tableMemo struct {
	m     atomic.Pointer[sync.Map]
	count atomic.Int64
}

// fingerprint returns a content key for the cost table, memoized by
// pointer (tables are immutable after construction). Content-based keying
// means two identical tables built by separate BusCosts() calls share
// demand-cache entries even though their pointers differ.
func (ev *Evaluator) fingerprint(costs *core.CostTable) string {
	m := ev.tables.m.Load()
	if fp, ok := m.Load(costs); ok {
		return fp.(string)
	}
	fp := costs.Name
	for _, op := range core.Ops() {
		if !costs.Defines(op) {
			continue
		}
		c := costs.Cost(op)
		fp += fmt.Sprintf("|%d:%x:%x", int(op), c.CPU, c.Interconnect)
	}
	if ev.tables.count.Load() >= tableMemoCap {
		if ev.tables.m.CompareAndSwap(m, &sync.Map{}) {
			ev.tables.count.Store(0)
		}
		m = ev.tables.m.Load()
	}
	if _, loaded := m.LoadOrStore(costs, fp); !loaded {
		ev.tables.count.Add(1)
	}
	return fp
}

// Demand is a memoized core.ComputeDemand. The workload is validated
// first (mirroring ComputeDemand's own order) so an invalid Params always
// errors even when a canonically equal valid workload is already cached.
// Error results are not cached, and are shared with (not recomputed by)
// goroutines that deduplicated onto the failing solve.
func (ev *Evaluator) Demand(s core.Scheme, p core.Params, costs *core.CostTable) (core.Demand, error) {
	return ev.DemandCtx(context.Background(), s, p, costs)
}

// DemandCtx is Demand with an observability and cancellation context:
// the computation is identical, but stage timings and cache events
// reported to the evaluator's Observer carry ctx (and hence its trace
// ID), and a done ctx fails fast with its error — before probing the
// cache, and while parked on another goroutine's in-flight solve — so a
// timed-out or abandoned request stops consuming evaluator capacity.
func (ev *Evaluator) DemandCtx(ctx context.Context, s core.Scheme, p core.Params, costs *core.CostTable) (core.Demand, error) {
	if err := ctx.Err(); err != nil {
		return core.Demand{}, err
	}
	if err := p.Validate(); err != nil {
		return core.Demand{}, fmt.Errorf("%s: %w", s.Name(), err)
	}
	key := demandKey{schemeKey(s), core.CanonicalParams(s, p), ev.fingerprint(costs)}
	sh := &ev.demands[key.shard()]

	var sp obs.Span
	if ev.obsv != nil {
		sp = obs.Start()
	}
	sh.mu.RLock()
	if sl, ok := sh.entries[key]; ok {
		d := sl.v
		sl.ref.Store(true)
		sh.mu.RUnlock()
		ev.demandHits.Add(1)
		if ev.obsv != nil {
			ev.obsv.StageObserved(ctx, StageCacheLookup, sp.Seconds())
			ev.obsv.CacheEvent(ctx, "demand", EventHit)
		}
		return d, nil
	}
	sh.mu.RUnlock()

	sh.mu.Lock()
	if sl, ok := sh.entries[key]; ok { // published while we upgraded the lock
		d := sl.v
		sl.ref.Store(true)
		sh.mu.Unlock()
		ev.demandHits.Add(1)
		if ev.obsv != nil {
			ev.obsv.StageObserved(ctx, StageCacheLookup, sp.Seconds())
			ev.obsv.CacheEvent(ctx, "demand", EventHit)
		}
		return d, nil
	}
	if fl, ok := sh.inflight[key]; ok {
		sh.mu.Unlock()
		if ev.waitHook != nil {
			ev.waitHook()
		}
		var wsp obs.Span
		if ev.obsv != nil {
			wsp = obs.Start()
		}
		select {
		case <-fl.done:
		case <-ctx.Done():
			// The waiter gives up its seat; the leader's solve continues
			// and still publishes for future (live) callers.
			return core.Demand{}, ctx.Err()
		}
		if ev.obsv != nil {
			ev.obsv.StageObserved(ctx, StageDedupWait, wsp.Seconds())
		}
		if fl.err != nil {
			return core.Demand{}, fl.err
		}
		ev.demandDedups.Add(1)
		if ev.obsv != nil {
			ev.obsv.CacheEvent(ctx, "demand", EventDedupJoin)
		}
		return fl.v, nil
	}
	fl := &flight[core.Demand]{n: 1, done: make(chan struct{})}
	sh.inflight[key] = fl
	sh.mu.Unlock()

	var ssp obs.Span
	if ev.obsv != nil {
		ssp = obs.Start()
	}
	fl.v, fl.err = core.ComputeDemand(s, p, costs)
	if ev.obsv != nil {
		ev.obsv.StageObserved(ctx, StageSolve, ssp.Seconds())
		ev.obsv.CacheEvent(ctx, "demand", EventMiss)
	}
	evicted := false
	sh.mu.Lock()
	delete(sh.inflight, key)
	if fl.err == nil {
		ev.demandSolves.Add(1)
		if sh.put(key, fl.v, ev.shardCap) {
			ev.demandEvictions.Add(1)
			evicted = true
		}
	}
	sh.mu.Unlock()
	close(fl.done)
	if evicted && ev.obsv != nil {
		ev.obsv.CacheEvent(ctx, "demand", EventEvict)
	}
	return fl.v, fl.err
}

// cloneCurve copies the first n results of a cached or in-flight curve
// so returned slices are caller-owned: the cache's backing arrays are
// immutable once published, and no two callers ever share one.
func cloneCurve(c []queueing.SingleServerResult, n int) []queueing.SingleServerResult {
	return append([]queueing.SingleServerResult(nil), c[:n]...)
}

// curve is curveShared with a caller-owned clone of the result, for the
// few callers that hand the slice to code outside the evaluator's
// immutability regime.
func (ev *Evaluator) curve(ctx context.Context, d core.Demand, n int) ([]queueing.SingleServerResult, error) {
	c, err := ev.curveShared(ctx, d, n)
	if err != nil {
		return nil, err
	}
	return cloneCurve(c, n), nil
}

// curveShared returns the MVA results for populations 1..n, reusing (a
// prefix of) a previously solved curve for the same (think, service) when
// long enough, and — the incremental kernel — resuming the recursion from
// a cached shorter curve when one exists instead of restarting at
// population 1. The MVA recursion's only inter-population state is the
// queue length, so both reuses are bit-identical to a cold solve of n.
//
// The returned slice has length >= n and is SHARED and immutable: it is
// a published cache entry, a completed flight value, or the solve about
// to become one. Callers must not mutate or pool it; use curve for a
// caller-owned copy.
//
// Concurrent misses on one key join an in-flight solve when its target
// population covers theirs; a request for a longer curve than the one in
// flight becomes a new leader (superseding the old flight for future
// waiters) rather than waiting for a result it cannot use. Either way
// the published curve for a key only ever grows.
func (ev *Evaluator) curveShared(ctx context.Context, d core.Demand, n int) ([]queueing.SingleServerResult, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	key := mvaKey{d.Think(), d.Interconnect, d.Priority}
	sh := &ev.curves[key.shard()]

	var sp obs.Span
	if ev.obsv != nil {
		sp = obs.Start()
	}
	sh.mu.RLock()
	if sl, ok := sh.entries[key]; ok && len(sl.v) >= n {
		sl.ref.Store(true)
		out := sl.v // immutable once published; safe to read after unlock
		sh.mu.RUnlock()
		ev.mvaHits.Add(1)
		if ev.obsv != nil {
			ev.obsv.StageObserved(ctx, StageCacheLookup, sp.Seconds())
			ev.obsv.CacheEvent(ctx, "mva", EventHit)
		}
		return out, nil
	}
	sh.mu.RUnlock()

	sh.mu.Lock()
	if sl, ok := sh.entries[key]; ok && len(sl.v) >= n {
		sl.ref.Store(true)
		out := sl.v
		sh.mu.Unlock()
		ev.mvaHits.Add(1)
		if ev.obsv != nil {
			ev.obsv.StageObserved(ctx, StageCacheLookup, sp.Seconds())
			ev.obsv.CacheEvent(ctx, "mva", EventHit)
		}
		return out, nil
	}
	if fl, ok := sh.inflight[key]; ok && fl.n >= n {
		sh.mu.Unlock()
		if ev.waitHook != nil {
			ev.waitHook()
		}
		var wsp obs.Span
		if ev.obsv != nil {
			wsp = obs.Start()
		}
		select {
		case <-fl.done:
		case <-ctx.Done():
			// As in DemandCtx: abandon the wait, not the leader's solve.
			return nil, ctx.Err()
		}
		if ev.obsv != nil {
			ev.obsv.StageObserved(ctx, StageDedupWait, wsp.Seconds())
		}
		if fl.err != nil {
			return nil, fl.err
		}
		ev.mvaDedups.Add(1)
		if ev.obsv != nil {
			ev.obsv.CacheEvent(ctx, "mva", EventDedupJoin)
		}
		return fl.v, nil
	}
	// Miss. Capture whatever prefix of this key's curve is already
	// published: the recursion resumes from its final queue length
	// instead of restarting at population 1. The slice is immutable once
	// published, so holding the reference across the solve is safe even
	// if the entry is evicted or superseded meanwhile. Priority curves
	// cannot resume — their inter-population state is per-class and not
	// stored — so they always solve cold.
	var prefix []queueing.SingleServerResult
	if sl, ok := sh.entries[key]; ok && d.Priority == 0 {
		sl.ref.Store(true)
		prefix = sl.v
	}
	fl := &flight[[]queueing.SingleServerResult]{n: n, done: make(chan struct{})}
	sh.inflight[key] = fl
	sh.mu.Unlock()

	var ssp obs.Span
	if ev.obsv != nil {
		ssp = obs.Start()
	}
	if d.Priority > 0 {
		hi, lo := d.PrioritySplit()
		fl.v, fl.err = queueing.PrioritySingleServerMVA(d.Think(), hi, lo, n, nil)
	} else {
		fl.v, fl.err = queueing.ExtendSingleServerMVA(d.Think(), d.Interconnect, prefix, n, nil)
	}
	if ev.obsv != nil {
		ev.obsv.StageObserved(ctx, StageSolve, ssp.Seconds())
		ev.obsv.CacheEvent(ctx, "mva", EventMiss)
	}
	evicted := false
	sh.mu.Lock()
	if sh.inflight[key] == fl { // a longer-curve leader may have superseded us
		delete(sh.inflight, key)
	}
	if fl.err == nil {
		ev.mvaSolves.Add(1)
		if len(prefix) > 0 {
			ev.curveExtends.Add(1)
		} else {
			ev.curveFullSolves.Add(1)
		}
		if sl, ok := sh.entries[key]; !ok || len(sl.v) < len(fl.v) {
			// The flight's slice becomes the cache-owned immutable copy;
			// readers share it and never mutate.
			if sh.put(key, fl.v, ev.shardCap) {
				ev.curveEvictions.Add(1)
				evicted = true
			}
		}
	}
	sh.mu.Unlock()
	close(fl.done)
	if evicted && ev.obsv != nil {
		ev.obsv.CacheEvent(ctx, "mva", EventEvict)
	}
	if fl.err != nil {
		return nil, fl.err
	}
	return fl.v, nil
}

// curvePoint returns the single MVA result at population n, without the
// caller-owned-clone cost of curve: the hot single-point path (BusPoint,
// grid cells, bisections) only reads one element, so copying the whole
// prefix out of the cache on every hit would be pure memory traffic.
func (ev *Evaluator) curvePoint(ctx context.Context, d core.Demand, n int) (queueing.SingleServerResult, error) {
	key := mvaKey{d.Think(), d.Interconnect, d.Priority}
	sh := &ev.curves[key.shard()]
	var sp obs.Span
	if ev.obsv != nil {
		sp = obs.Start()
	}
	sh.mu.RLock()
	if sl, ok := sh.entries[key]; ok && len(sl.v) >= n {
		sl.ref.Store(true)
		r := sl.v[n-1]
		sh.mu.RUnlock()
		ev.mvaHits.Add(1)
		if ev.obsv != nil {
			ev.obsv.StageObserved(ctx, StageCacheLookup, sp.Seconds())
			ev.obsv.CacheEvent(ctx, "mva", EventHit)
		}
		return r, nil
	}
	sh.mu.RUnlock()
	c, err := ev.curveShared(ctx, d, n)
	if err != nil {
		return queueing.SingleServerResult{}, err
	}
	return c[n-1], nil
}

// EvaluateBus is a memoized core.EvaluateBus: identical results, served
// from the demand and curve caches when possible.
func (ev *Evaluator) EvaluateBus(s core.Scheme, p core.Params, costs *core.CostTable, maxProcs int) ([]core.BusPoint, error) {
	return ev.EvaluateBusCtx(context.Background(), s, p, costs, maxProcs)
}

// EvaluateBusCtx is EvaluateBus with an observability context (see
// DemandCtx); results are identical to EvaluateBus.
func (ev *Evaluator) EvaluateBusCtx(ctx context.Context, s core.Scheme, p core.Params, costs *core.CostTable, maxProcs int) ([]core.BusPoint, error) {
	return ev.EvaluateBusIntoCtx(ctx, s, p, costs, maxProcs, nil)
}

// EvaluateBusIntoCtx is EvaluateBusCtx with a caller-provided result
// buffer: when cap(dst) >= maxProcs the returned slice reuses dst's
// backing array, so a warm (demand-hit, curve-hit) evaluation allocates
// nothing. The bus points are converted straight off the shared cached
// curve — the intermediate MVA slice is never cloned. A nil or short dst
// falls back to allocating, which is how EvaluateBusCtx calls it.
func (ev *Evaluator) EvaluateBusIntoCtx(ctx context.Context, s core.Scheme, p core.Params, costs *core.CostTable, maxProcs int, dst []core.BusPoint) ([]core.BusPoint, error) {
	if maxProcs < 1 {
		return nil, fmt.Errorf("core: maxProcs %d < 1", maxProcs)
	}
	d, err := ev.DemandCtx(ctx, s, p, costs)
	if err != nil {
		return nil, err
	}
	mva, err := ev.curveShared(ctx, d, maxProcs)
	if err != nil {
		return nil, err
	}
	var points []core.BusPoint
	if cap(dst) >= maxProcs {
		points = dst[:maxProcs]
	} else {
		points = make([]core.BusPoint, maxProcs)
	}
	for i := 0; i < maxProcs; i++ {
		points[i] = core.BusPointFromMVA(d, mva[i])
	}
	return points, nil
}

// BusPoint returns the bus-model prediction at exactly nproc processors.
func (ev *Evaluator) BusPoint(s core.Scheme, p core.Params, costs *core.CostTable, nproc int) (core.BusPoint, error) {
	return ev.BusPointCtx(context.Background(), s, p, costs, nproc)
}

// BusPointCtx is BusPoint with an observability context (see DemandCtx);
// results are identical to BusPoint.
func (ev *Evaluator) BusPointCtx(ctx context.Context, s core.Scheme, p core.Params, costs *core.CostTable, nproc int) (core.BusPoint, error) {
	if nproc < 1 {
		return core.BusPoint{}, fmt.Errorf("core: nproc %d < 1", nproc)
	}
	d, err := ev.DemandCtx(ctx, s, p, costs)
	if err != nil {
		return core.BusPoint{}, err
	}
	r, err := ev.curvePoint(ctx, d, nproc)
	if err != nil {
		return core.BusPoint{}, err
	}
	return core.BusPointFromMVA(d, r), nil
}

// BusPower implements core.PowerEvaluator, so the evaluator plugs
// directly into APLToMatchWith, MaxShdForPowerWith, and RankBusWith.
func (ev *Evaluator) BusPower(s core.Scheme, p core.Params, costs *core.CostTable, nproc int) (float64, error) {
	pt, err := ev.BusPoint(s, p, costs, nproc)
	if err != nil {
		return 0, err
	}
	return pt.Power, nil
}
