package sweep

import (
	"bytes"
	"errors"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"swcc/internal/core"
)

// populateEvaluator drives the evaluator through the public API with a
// varied working set — every paper scheme plus directory and hybrid, a
// spread of sharing levels, several curve lengths — so the caches hold
// a realistic mixture of demand entries and MVA curves of different
// sizes.
func populateEvaluator(t *testing.T, ev *Evaluator) {
	t.Helper()
	costs := core.BusCosts()
	schemes := append(core.PaperSchemes(), core.Directory{}, core.Hybrid{LockFrac: 0.3})
	for si, s := range schemes {
		for pi, shd := range []float64{0.2, 0.5, 0.8} {
			p := core.MiddleParams()
			p.Shd = shd
			maxProcs := 4 + 4*((si+pi)%3)
			if _, err := ev.EvaluateBus(s, p, costs, maxProcs); err != nil {
				t.Fatalf("EvaluateBus(%v, shd=%g): %v", s.Name(), shd, err)
			}
		}
	}
}

// snapshotBytes snapshots ev into memory and fails the test on error.
func snapshotBytes(t *testing.T, ev *Evaluator) ([]byte, SnapshotCounts) {
	t.Helper()
	var buf bytes.Buffer
	counts, err := ev.Snapshot(&buf)
	if err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	return buf.Bytes(), counts
}

// TestSnapshotRoundTrip is the core property test: restoring a snapshot
// into a fresh evaluator reproduces the cache bit-for-bit (re-snapshot
// is byte-identical), and the restored evaluator serves the same
// working set entirely from cache — not one full MVA solve, not one
// demand solve.
func TestSnapshotRoundTrip(t *testing.T) {
	ev := NewEvaluator()
	populateEvaluator(t, ev)
	before := ev.Stats()
	if before.DemandEntries == 0 || before.CurveEntries == 0 {
		t.Fatalf("population left caches empty: %+v", before)
	}

	snap, counts := snapshotBytes(t, ev)
	if counts.DemandEntries != before.DemandEntries || counts.CurveEntries != before.CurveEntries {
		t.Fatalf("snapshot counts %+v, evaluator holds %d demand / %d curves",
			counts, before.DemandEntries, before.CurveEntries)
	}

	fresh := NewEvaluator()
	restored, err := fresh.RestoreSnapshot(bytes.NewReader(snap))
	if err != nil {
		t.Fatalf("RestoreSnapshot: %v", err)
	}
	if restored != counts {
		t.Fatalf("restored %+v, snapshot held %+v", restored, counts)
	}

	// Bit-identity: the restored cache snapshots to the same bytes.
	resnap, _ := snapshotBytes(t, fresh)
	if !bytes.Equal(snap, resnap) {
		t.Fatalf("restore(snapshot(E)) is not byte-identical: %d vs %d bytes", len(snap), len(resnap))
	}

	// Warm service: replaying the exact working set must be all hits.
	populateEvaluator(t, fresh)
	st := fresh.Stats()
	if st.CurveFullSolves != 0 {
		t.Fatalf("restored evaluator did %d full MVA solves on a warm working set", st.CurveFullSolves)
	}
	if st.DemandSolves != 0 {
		t.Fatalf("restored evaluator did %d demand solves on a warm working set", st.DemandSolves)
	}
	if st.DemandHits == 0 || st.MVAHits == 0 {
		t.Fatalf("warm replay recorded no hits: %+v", st)
	}

	// And the answers match the original evaluator bit-for-bit.
	costs := core.BusCosts()
	p := core.MiddleParams()
	p.Shd = 0.5
	for _, s := range append(core.PaperSchemes(), core.Directory{}, core.Hybrid{LockFrac: 0.3}) {
		want, err := ev.EvaluateBus(s, p, costs, 8)
		if err != nil {
			t.Fatalf("EvaluateBus original: %v", err)
		}
		got, err := fresh.EvaluateBus(s, p, costs, 8)
		if err != nil {
			t.Fatalf("EvaluateBus restored: %v", err)
		}
		for i := range want {
			if math.Float64bits(want[i].Power) != math.Float64bits(got[i].Power) ||
				math.Float64bits(want[i].Wait) != math.Float64bits(got[i].Wait) {
				t.Fatalf("%s point %d differs after restore: %+v vs %+v", s.Name(), i, want[i], got[i])
			}
		}
	}
}

// TestSnapshotDeterministic pins that two snapshots of the same live
// cache are byte-identical — the property the round-trip test's
// byte-comparison leans on.
func TestSnapshotDeterministic(t *testing.T) {
	ev := NewEvaluator()
	populateEvaluator(t, ev)
	a, _ := snapshotBytes(t, ev)
	b, _ := snapshotBytes(t, ev)
	if !bytes.Equal(a, b) {
		t.Fatal("two snapshots of the same cache differ")
	}
}

// TestSnapshotFailClosed feeds RestoreSnapshot corrupted, truncated,
// and stale-fingerprint inputs; every one must leave the evaluator
// completely cold (fail closed), never partially restored.
func TestSnapshotFailClosed(t *testing.T) {
	ev := NewEvaluator()
	populateEvaluator(t, ev)
	snap, _ := snapshotBytes(t, ev)

	assertCold := func(t *testing.T, ev *Evaluator) {
		t.Helper()
		st := ev.Stats()
		if st.DemandEntries != 0 || st.CurveEntries != 0 {
			t.Fatalf("evaluator not cold after failed restore: %d demand / %d curves",
				st.DemandEntries, st.CurveEntries)
		}
	}

	t.Run("truncated", func(t *testing.T) {
		for _, frac := range []float64{0.1, 0.5, 0.95} {
			cut := snap[:int(float64(len(snap))*frac)]
			fresh := NewEvaluator()
			if _, err := fresh.RestoreSnapshot(bytes.NewReader(cut)); err == nil {
				t.Fatalf("truncation at %.0f%% accepted", frac*100)
			}
			assertCold(t, fresh)
		}
	})

	t.Run("missing-checksum", func(t *testing.T) {
		fresh := NewEvaluator()
		_, err := fresh.RestoreSnapshot(bytes.NewReader(snap[:len(snap)-1]))
		if err == nil {
			t.Fatal("snapshot missing its checksum trailer accepted")
		}
		assertCold(t, fresh)
	})

	t.Run("corrupted", func(t *testing.T) {
		// Flip one byte at a spread of offsets past the header; every
		// flip must be caught (by a decode error or the checksum) and
		// must not leave entries behind.
		for _, off := range []int{len(snap) / 4, len(snap) / 2, len(snap) - 10} {
			bad := append([]byte(nil), snap...)
			bad[off] ^= 0x40
			fresh := NewEvaluator()
			if _, err := fresh.RestoreSnapshot(bytes.NewReader(bad)); err == nil {
				t.Fatalf("byte flip at offset %d accepted", off)
			}
			assertCold(t, fresh)
		}
	})

	t.Run("bad-magic", func(t *testing.T) {
		bad := append([]byte(nil), snap...)
		bad[0] ^= 0xFF
		fresh := NewEvaluator()
		if _, err := fresh.RestoreSnapshot(bytes.NewReader(bad)); err == nil {
			t.Fatal("bad magic accepted")
		}
		assertCold(t, fresh)
	})

	t.Run("stale-fingerprint", func(t *testing.T) {
		// The fingerprint string sits right after the 8-byte magic and
		// a 1-byte uvarint length; flipping a byte inside it simulates
		// a snapshot from a different model build.
		bad := append([]byte(nil), snap...)
		bad[len(snapshotMagic)+2] ^= 0x01
		fresh := NewEvaluator()
		_, err := fresh.RestoreSnapshot(bytes.NewReader(bad))
		if err == nil {
			t.Fatal("stale fingerprint accepted")
		}
		assertCold(t, fresh)
	})

	t.Run("empty", func(t *testing.T) {
		fresh := NewEvaluator()
		if _, err := fresh.RestoreSnapshot(bytes.NewReader(nil)); err == nil {
			t.Fatal("empty input accepted")
		}
		assertCold(t, fresh)
	})
}

// TestSnapshotFileLifecycle covers the file helpers: atomic write +
// load round-trip, a missing file reading as a silent cold boot, and
// no leftover temp files after a successful write.
func TestSnapshotFileLifecycle(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "memo.snap")

	ev := NewEvaluator()
	populateEvaluator(t, ev)
	wrote, err := ev.WriteSnapshotFile(path)
	if err != nil {
		t.Fatalf("WriteSnapshotFile: %v", err)
	}
	if wrote.DemandEntries == 0 || wrote.CurveEntries == 0 {
		t.Fatalf("wrote empty snapshot: %+v", wrote)
	}

	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if strings.Contains(e.Name(), ".tmp") {
			t.Fatalf("temp file %q left behind", e.Name())
		}
	}

	fresh := NewEvaluator()
	loaded, err := fresh.LoadSnapshotFile(path)
	if err != nil {
		t.Fatalf("LoadSnapshotFile: %v", err)
	}
	if loaded != wrote {
		t.Fatalf("loaded %+v, wrote %+v", loaded, wrote)
	}

	cold := NewEvaluator()
	counts, err := cold.LoadSnapshotFile(filepath.Join(dir, "absent.snap"))
	if err != nil {
		t.Fatalf("missing snapshot file should be a silent cold boot, got %v", err)
	}
	if counts != (SnapshotCounts{}) {
		t.Fatalf("missing file loaded entries: %+v", counts)
	}
}

// TestSnapshotRestoreCapped pins that restoring into a capacity-capped
// evaluator respects the cap: the CLOCK ring stays consistent and the
// shard never exceeds its limit.
func TestSnapshotRestoreCapped(t *testing.T) {
	ev := NewEvaluator()
	populateEvaluator(t, ev)
	snap, _ := snapshotBytes(t, ev)

	capped := NewEvaluatorCap(numShards * 2) // 2 entries per shard
	if _, err := capped.RestoreSnapshot(bytes.NewReader(snap)); err != nil {
		t.Fatalf("RestoreSnapshot into capped evaluator: %v", err)
	}
	d, c := capped.ShardSizes()
	for i := range d {
		if d[i] > 2 || c[i] > 2 {
			t.Fatalf("shard %d over cap after restore: demand %d, curves %d", i, d[i], c[i])
		}
	}
	// The capped evaluator must still answer correctly.
	if _, err := capped.EvaluateBus(core.PaperSchemes()[0], core.MiddleParams(), core.BusCosts(), 4); err != nil {
		t.Fatalf("capped evaluator broken after restore: %v", err)
	}
}

// TestModelFingerprintStable pins that the fingerprint is deterministic
// within a process and carries the format version.
func TestModelFingerprintStable(t *testing.T) {
	a, b := ModelFingerprint(), ModelFingerprint()
	if a != b || a == "" {
		t.Fatalf("fingerprint unstable: %q vs %q", a, b)
	}
	if !strings.HasPrefix(a, snapshotMagic) {
		t.Fatalf("fingerprint %q does not carry the format version", a)
	}
}

// fireflyScheme is a deliberately unregistered scheme: structurally
// valid (OpInstr present) but unknown to the core registry.
type fireflyScheme struct{}

func (fireflyScheme) Name() string { return "Firefly" }
func (fireflyScheme) Frequencies(p core.Params) ([]core.OpFreq, error) {
	return []core.OpFreq{
		{Op: core.OpInstr, Freq: 1},
		{Op: core.OpCleanMissMem, Freq: p.MsDat * p.LS},
	}, nil
}

// TestSnapshotRejectsUnregisteredScheme: a snapshot holding cache
// entries for a scheme this binary's registry does not know must fail
// closed with ErrSnapshotStale — restoring it would let lookups under
// a future (or vanished third-party) scheme name alias into entries
// whose provenance cannot be checked.
func TestSnapshotRejectsUnregisteredScheme(t *testing.T) {
	ev := NewEvaluator()
	populateEvaluator(t, ev)
	if _, err := ev.EvaluateBus(fireflyScheme{}, core.MiddleParams(), core.BusCosts(), 8); err != nil {
		t.Fatal(err)
	}
	snap, _ := snapshotBytes(t, ev)

	fresh := NewEvaluator()
	_, err := fresh.RestoreSnapshot(bytes.NewReader(snap))
	if !errors.Is(err, ErrSnapshotStale) {
		t.Fatalf("restore of unregistered-scheme snapshot: err = %v, want ErrSnapshotStale", err)
	}
	if !strings.Contains(err.Error(), "Firefly") {
		t.Errorf("error %q does not name the offending scheme", err)
	}
	if st := fresh.Stats(); st.DemandEntries != 0 || st.CurveEntries != 0 {
		t.Fatalf("evaluator not cold after rejected restore: %d demand / %d curves",
			st.DemandEntries, st.CurveEntries)
	}
}
