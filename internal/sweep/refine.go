package sweep

import (
	"context"
	"fmt"
	"math"
	"sort"

	"swcc/internal/core"
)

// Adaptive crossover refinement. The paper's headline results (Figures
// 4-9) are crossover studies: at what machine size or workload value
// does one coherence scheme overtake another? A dense grid answers that
// by solving every cell; Refine answers it by solving a coarse grid and
// recursively subdividing only the intervals where the winning scheme
// flips between adjacent points. Every evaluated point goes through the
// same Engine/CurveRun path as a dense sweep, so the values — and hence
// the located boundaries — are bit-identical to the dense grid's at the
// points both evaluate; the refinement merely skips the cells where the
// winner provably cannot change the answer at the requested resolution.

// AxisProcs selects the machine-size axis for RefineSpec.Axis: grid
// values are integer processor counts and subdivision stops at adjacent
// integers (the Figure 4-6 x-axis).
const AxisProcs = "procs"

// RefineSpec describes one adaptive crossover search.
type RefineSpec struct {
	// Schemes are the competing candidates (at least two). The winner at
	// a grid point is the scheme with the highest processing power; ties
	// go to the earliest index, deterministically.
	Schemes []core.Scheme
	// Base is the workload every grid point shares (axis value aside).
	Base core.Params
	// Costs is the cost table (nil means core.BusCosts()).
	Costs *core.CostTable
	// Axis is AxisProcs or a workload parameter name ("apl", "shd", ...).
	Axis string
	// From and To bound the axis, inclusive. From < To.
	From, To float64
	// Procs is the fixed machine size when Axis is a parameter (<= 0
	// means 16). Ignored for AxisProcs.
	Procs int
	// Coarse is the initial grid size including both endpoints (< 2
	// means 9).
	Coarse int
	// MinStep stops subdivision: intervals narrower than or equal to it
	// are reported as boundaries rather than split further. <= 0 means
	// (To-From)/1024. AxisProcs always stops at adjacent integers.
	MinStep float64
	// OnWave, when non-nil, receives each wave's newly evaluated points
	// (ascending by X) as soon as the wave completes — the streaming hook
	// the job runner uses. Returning an error aborts the search.
	OnWave func(ctx context.Context, pts []RefinePoint) error
}

// RefinePoint is one evaluated axis value: the per-scheme powers (in
// RefineSpec.Schemes order) and the index of the winner.
type RefinePoint struct {
	// X is the axis value (a processor count for AxisProcs).
	X float64
	// Power holds each scheme's processing power at X.
	Power []float64
	// Best is the winning scheme's index in RefineSpec.Schemes.
	Best int
}

// Boundary brackets one crossover: the winner at Lo differs from the
// winner at Hi and the interval is already at the requested resolution.
type Boundary struct {
	// Lo and Hi are adjacent evaluated axis values.
	Lo, Hi float64
	// LoBest and HiBest are the winning scheme indices at Lo and Hi.
	LoBest, HiBest int
}

// RefineResult is the completed search.
type RefineResult struct {
	// Points holds every evaluated grid point, ascending by X.
	Points []RefinePoint
	// Boundaries holds the located crossovers, ascending by Lo.
	Boundaries []Boundary
	// Waves is the number of evaluation rounds (1 = the coarse grid
	// already had no unresolved flips).
	Waves int
	// Solves is the number of (scheme, X) cells evaluated — compare it
	// against len(Schemes) x the dense grid size to see what the
	// refinement saved.
	Solves int
}

// Refine runs the adaptive crossover search on the engine's worker pool
// and cache. Each wave's cells feed one EvaluateBusCtx call, so cells
// sharing a (scheme, canonical workload) ride one CurveRun exactly as a
// dense batch would. Cancellation is cooperative: once ctx is done the
// current wave stops claiming cells and Refine returns ctx's error.
func (e *Engine) Refine(ctx context.Context, spec RefineSpec) (*RefineResult, error) {
	if len(spec.Schemes) < 2 {
		return nil, fmt.Errorf("sweep: refine needs at least two schemes, got %d", len(spec.Schemes))
	}
	if !(spec.From < spec.To) {
		return nil, fmt.Errorf("sweep: refine axis range [%g, %g] is empty", spec.From, spec.To)
	}
	procsAxis := spec.Axis == AxisProcs
	if procsAxis {
		if spec.From < 1 || spec.From != math.Trunc(spec.From) || spec.To != math.Trunc(spec.To) {
			return nil, fmt.Errorf("sweep: procs axis bounds must be integers >= 1, got [%g, %g]", spec.From, spec.To)
		}
	} else if _, err := core.FieldByName(spec.Axis); err != nil {
		return nil, err
	}
	costs := spec.Costs
	if costs == nil {
		costs = core.BusCosts()
	}
	procs := spec.Procs
	if procs <= 0 {
		procs = 16
	}
	coarse := spec.Coarse
	if coarse < 2 {
		coarse = 9
	}
	minStep := spec.MinStep
	if minStep <= 0 {
		minStep = (spec.To - spec.From) / 1024
	}

	res := &RefineResult{}
	// Coarse grid: evenly spaced, endpoints included. The procs axis
	// rounds to integers and drops duplicates (a narrow integer range can
	// have fewer distinct values than requested points).
	var wave []float64
	seen := map[float64]bool{}
	for i := 0; i < coarse; i++ {
		x := spec.From + (spec.To-spec.From)*float64(i)/float64(coarse-1)
		if procsAxis {
			x = math.Round(x)
		}
		if !seen[x] {
			seen[x] = true
			wave = append(wave, x)
		}
	}

	for len(wave) > 0 {
		res.Waves++
		pts, err := e.refineWave(ctx, spec, costs, procs, procsAxis, wave)
		if err != nil {
			return nil, err
		}
		res.Solves += len(wave) * len(spec.Schemes)
		res.Points = append(res.Points, pts...)
		sort.Slice(res.Points, func(i, j int) bool { return res.Points[i].X < res.Points[j].X })
		if spec.OnWave != nil {
			if err := spec.OnWave(ctx, pts); err != nil {
				return nil, err
			}
		}
		// Subdivide every interval whose endpoint winners differ and that
		// is still wider than the resolution floor. Midpoints bisect
		// exactly, so repeated halving terminates and revisits no X.
		wave = wave[:0]
		for i := 0; i+1 < len(res.Points); i++ {
			lo, hi := res.Points[i], res.Points[i+1]
			if lo.Best == hi.Best {
				continue
			}
			var mid float64
			if procsAxis {
				if hi.X-lo.X <= 1 {
					continue
				}
				mid = math.Floor((lo.X + hi.X) / 2)
			} else {
				if hi.X-lo.X <= minStep {
					continue
				}
				mid = (lo.X + hi.X) / 2
			}
			if !seen[mid] {
				seen[mid] = true
				wave = append(wave, mid)
			}
		}
	}

	for i := 0; i+1 < len(res.Points); i++ {
		lo, hi := res.Points[i], res.Points[i+1]
		if lo.Best != hi.Best {
			res.Boundaries = append(res.Boundaries, Boundary{
				Lo: lo.X, Hi: hi.X, LoBest: lo.Best, HiBest: hi.Best,
			})
		}
	}
	return res, nil
}

// refineWave evaluates one wave's axis values for every scheme through
// EvaluateBusCtx and reduces them to winners. The cell layout is
// [x][scheme], so a failed cell names its scheme in the error.
func (e *Engine) refineWave(ctx context.Context, spec RefineSpec, costs *core.CostTable, procs int, procsAxis bool, xs []float64) ([]RefinePoint, error) {
	points := make([]Point, 0, len(xs)*len(spec.Schemes))
	for _, x := range xs {
		p := spec.Base
		n := procs
		if procsAxis {
			n = int(x)
		} else {
			var err error
			if p, err = spec.Base.With(spec.Axis, x); err != nil {
				return nil, err
			}
		}
		for _, s := range spec.Schemes {
			points = append(points, Point{Scheme: s, Params: p, NProc: n})
		}
	}
	results := e.EvaluateBusCtx(ctx, points, costs)
	if err := FirstError(results); err != nil {
		return nil, err
	}
	out := make([]RefinePoint, len(xs))
	for i, x := range xs {
		rp := RefinePoint{X: x, Power: make([]float64, len(spec.Schemes))}
		for j := range spec.Schemes {
			pw := results[i*len(spec.Schemes)+j].Bus.Power
			rp.Power[j] = pw
			if pw > rp.Power[rp.Best] {
				rp.Best = j
			}
		}
		out[i] = rp
	}
	return out, nil
}
