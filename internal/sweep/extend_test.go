package sweep

import (
	"context"
	"sync"
	"testing"

	"swcc/internal/core"
	"swcc/internal/queueing"
)

// TestCurveExtendBitIdentical is the gate on the incremental kernel: an
// evaluator that grows a curve in stages (16, then 64, then 256) must
// return results bit-identical to one that solved 256 cold. No tolerance
// — the recursion is resumed, not re-derived.
func TestCurveExtendBitIdentical(t *testing.T) {
	p := core.MiddleParams()
	costs := core.BusCosts()
	s := core.Base{}

	cold := NewEvaluator()
	want, err := cold.EvaluateBus(s, p, costs, 256)
	if err != nil {
		t.Fatal(err)
	}

	inc := NewEvaluator()
	for _, n := range []int{16, 64, 256} {
		got, err := inc.EvaluateBus(s, p, costs, n)
		if err != nil {
			t.Fatal(err)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("stage %d: point %d differs:\n inc  %+v\n cold %+v",
					n, i+1, got[i], want[i])
			}
		}
	}

	st := inc.Stats()
	if st.CurveFullSolves != 1 {
		t.Errorf("CurveFullSolves = %d, want 1 (only the first solve is cold)", st.CurveFullSolves)
	}
	if st.CurveExtends != 2 {
		t.Errorf("CurveExtends = %d, want 2 (stages 64 and 256 resume)", st.CurveExtends)
	}
	if st.MVASolves != st.CurveExtends+st.CurveFullSolves {
		t.Errorf("MVASolves = %d, want CurveExtends+CurveFullSolves = %d",
			st.MVASolves, st.CurveExtends+st.CurveFullSolves)
	}
	if cs := cold.Stats(); cs.CurveExtends != 0 || cs.CurveFullSolves != 1 {
		t.Errorf("cold evaluator: extends %d fulls %d, want 0 and 1",
			cs.CurveExtends, cs.CurveFullSolves)
	}
}

// TestCurveExtendAcrossEviction: a capped evaluator that evicted the
// prefix entry must fall back to a cold full solve — and still produce
// bit-identical results. The extension path may only fire when a prefix
// is actually resident.
func TestCurveExtendAcrossEviction(t *testing.T) {
	p := core.MiddleParams()
	costs := core.BusCosts()
	s := core.Base{}

	ev := NewEvaluatorCap(1) // effectively numShards entries, 1 per shard
	if _, err := ev.EvaluateBus(s, p, costs, 16); err != nil {
		t.Fatal(err)
	}
	// Flood the curve cache with distinct (think, service) keys until the
	// original curve's shard has evicted it. Distinct md values change the
	// demand and hence the mva key.
	base, err := ev.Demand(s, p, costs)
	if err != nil {
		t.Fatal(err)
	}
	key := mvaKey{base.Think(), base.Interconnect, base.Priority}
	for i := 0; i < 64*numShards; i++ {
		q, err := p.With("md", 0.3+float64(i)*1e-4)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := ev.BusPoint(s, q, costs, 4); err != nil {
			t.Fatal(err)
		}
		sh := &ev.curves[key.shard()]
		sh.mu.RLock()
		_, resident := sh.entries[key]
		sh.mu.RUnlock()
		if !resident {
			break
		}
	}
	sh := &ev.curves[key.shard()]
	sh.mu.RLock()
	_, resident := sh.entries[key]
	sh.mu.RUnlock()
	if resident {
		t.Fatal("could not evict the prefix curve; test setup broken")
	}

	extendsBefore := ev.Stats().CurveExtends
	got, err := ev.EvaluateBus(s, p, costs, 64)
	if err != nil {
		t.Fatal(err)
	}
	if ext := ev.Stats().CurveExtends; ext != extendsBefore {
		t.Errorf("CurveExtends grew by %d after eviction; want a cold full solve", ext-extendsBefore)
	}
	want, err := NewEvaluator().EvaluateBus(s, p, costs, 64)
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("point %d differs after eviction-and-resolve", i+1)
		}
	}
}

// TestCurveExtendPrefixStableUnderSupersession races extenders against
// each other on one key: goroutines request ever-longer curves while
// others re-request short prefixes. Every returned curve must be
// bit-identical to the reference, whichever mix of hit, dedup-join,
// extend, and supersession each goroutine experienced. Run with -race
// this also checks the captured-prefix read outside the lock is sound.
func TestCurveExtendPrefixStableUnderSupersession(t *testing.T) {
	p := core.MiddleParams()
	costs := core.BusCosts()
	s := core.Dragon{}

	ref, err := NewEvaluator().EvaluateBus(s, p, costs, 520)
	if err != nil {
		t.Fatal(err)
	}

	ev := NewEvaluator()
	// Seed a short prefix so extensions are possible from the start.
	if _, err := ev.EvaluateBus(s, p, costs, 8); err != nil {
		t.Fatal(err)
	}
	const workers = 16
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for _, n := range []int{8, 32, 128, 512, 64, 16} {
				n := n + w%4 // stagger lengths across workers
				got, err := ev.EvaluateBus(s, p, costs, n)
				if err != nil {
					errs <- err
					return
				}
				for i := range got {
					if got[i] != ref[i] {
						t.Errorf("worker %d n=%d: point %d differs", w, n, i+1)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	st := ev.Stats()
	if st.MVASolves != st.CurveExtends+st.CurveFullSolves {
		t.Errorf("MVASolves = %d != CurveExtends %d + CurveFullSolves %d",
			st.MVASolves, st.CurveExtends, st.CurveFullSolves)
	}
}

// TestCurveExtendAfterTableMemoSwap: extending a curve whose cost table
// fingerprint memo was swapped wholesale (the bounded tableMemo dropping
// its map) must still hit the same demand and curve entries — the caches
// key on content, not on the memo's pointer identity.
func TestCurveExtendAfterTableMemoSwap(t *testing.T) {
	p := core.MiddleParams()
	s := core.Base{}
	ev := NewEvaluator()
	costs := core.BusCosts()
	if _, err := ev.EvaluateBus(s, p, costs, 16); err != nil {
		t.Fatal(err)
	}
	// Overflow the pointer-keyed fingerprint memo so it swaps.
	for i := 0; i < tableMemoCap+8; i++ {
		if _, err := ev.Demand(s, p, core.BusCosts()); err != nil {
			t.Fatal(err)
		}
	}
	if n := int(ev.tables.count.Load()); n > tableMemoCap {
		t.Fatalf("tableMemo grew to %d entries, cap %d", n, tableMemoCap)
	}
	before := ev.Stats()
	// A fresh, identical table after the swap: the demand cache must hit
	// (content-keyed) and the curve must extend from the cached prefix.
	got, err := ev.EvaluateBus(s, p, core.BusCosts(), 48)
	if err != nil {
		t.Fatal(err)
	}
	after := ev.Stats()
	if after.DemandSolves != before.DemandSolves {
		t.Errorf("demand re-solved after memo swap: %d -> %d", before.DemandSolves, after.DemandSolves)
	}
	if after.CurveExtends != before.CurveExtends+1 {
		t.Errorf("CurveExtends %d -> %d, want +1 (extend from cached 16-prefix)",
			before.CurveExtends, after.CurveExtends)
	}
	want, err := NewEvaluator().EvaluateBus(s, p, costs, 48)
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("point %d differs after memo swap", i+1)
		}
	}
}

// TestEvaluateBusIntoReusesDst pins EvaluateBusIntoCtx's buffer contract:
// sufficient capacity means the dst backing array is reused; results
// match the allocating path exactly.
func TestEvaluateBusIntoReusesDst(t *testing.T) {
	p := core.MiddleParams()
	costs := core.BusCosts()
	ev := NewEvaluator()
	want, err := ev.EvaluateBus(core.Base{}, p, costs, 32)
	if err != nil {
		t.Fatal(err)
	}
	dst := make([]core.BusPoint, 0, 64)
	got, err := ev.EvaluateBusIntoCtx(context.Background(), core.Base{}, p, costs, 32, dst)
	if err != nil {
		t.Fatal(err)
	}
	if &got[0] != &dst[:1][0] {
		t.Error("dst with sufficient capacity was not reused")
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("point %d differs between Into and allocating paths", i+1)
		}
	}
}

// TestCurveSharedCoversLonger: a dedup join on a longer in-flight solve
// returns a slice longer than requested; the public paths must slice it
// to n. This pins curve()'s clone length.
func TestCurveSharedCoversLonger(t *testing.T) {
	p := core.MiddleParams()
	costs := core.BusCosts()
	ev := NewEvaluator()
	if _, err := ev.EvaluateBus(core.Base{}, p, costs, 128); err != nil {
		t.Fatal(err)
	}
	d, err := ev.Demand(core.Base{}, p, costs)
	if err != nil {
		t.Fatal(err)
	}
	c, err := ev.curve(context.Background(), d, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(c) != 5 {
		t.Fatalf("curve(5) returned %d results", len(c))
	}
	var want []queueing.SingleServerResult
	want, err = queueing.SingleServerMVA(d.Think(), d.Interconnect, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if c[i] != want[i] {
			t.Fatalf("population %d differs", i+1)
		}
	}
}
