package sweep

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"swcc/internal/core"
)

// TestEachCtxStopsClaimingAfterCancel pins the cooperative-cancellation
// contract on the sequential path, where ordering is deterministic:
// once ctx is cancelled, no further index runs, the skipped indices
// carry ctx's error, and EachCtx reports it.
func TestEachCtxStopsClaimingAfterCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran int
	err := EachCtx(ctx, 1, 100, func(i int) error {
		ran++
		if i == 9 {
			cancel()
		}
		return nil
	})
	if ran != 10 {
		t.Errorf("ran %d indices after cancelling at index 9, want exactly 10", ran)
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("EachCtx returned %v, want context.Canceled", err)
	}
}

// TestEachCtxParallelCancel checks the parallel path stops claiming new
// indices promptly: with the cancel fired early, far fewer than n
// callbacks run even on a many-worker pool.
func TestEachCtxParallelCancel(t *testing.T) {
	const n = 10000
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int64
	err := EachCtx(ctx, 8, n, func(i int) error {
		if ran.Add(1) == 8 {
			cancel()
		}
		time.Sleep(100 * time.Microsecond)
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Errorf("EachCtx returned %v, want context.Canceled", err)
	}
	if got := ran.Load(); got >= n/2 {
		t.Errorf("%d of %d callbacks ran after early cancel; cancellation is not stopping the pool", got, n)
	}
}

// TestEachBackgroundUnchanged checks the Each wrapper still runs every
// index and returns the lowest-index error — the pre-cancellation
// contract existing callers rely on.
func TestEachBackgroundUnchanged(t *testing.T) {
	var ran atomic.Int64
	err := Each(4, 64, func(i int) error {
		ran.Add(1)
		if i == 3 || i == 40 {
			return errors.New("boom")
		}
		return nil
	})
	if ran.Load() != 64 {
		t.Errorf("ran %d of 64 indices", ran.Load())
	}
	if err == nil || err.Error() != "boom" {
		t.Errorf("err = %v", err)
	}
}

// TestEvaluatorCtxFailsFast checks a done context short-circuits the
// evaluator entry points without touching the cache or counting a solve.
func TestEvaluatorCtxFailsFast(t *testing.T) {
	ev := NewEvaluator()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	p := core.MiddleParams()
	costs := core.BusCosts()
	if _, err := ev.DemandCtx(ctx, core.Base{}, p, costs); !errors.Is(err, context.Canceled) {
		t.Errorf("DemandCtx on cancelled ctx: %v", err)
	}
	if _, err := ev.BusPointCtx(ctx, core.Base{}, p, costs, 8); !errors.Is(err, context.Canceled) {
		t.Errorf("BusPointCtx on cancelled ctx: %v", err)
	}
	if _, err := ev.EvaluateBusCtx(ctx, core.Base{}, p, costs, 8); !errors.Is(err, context.Canceled) {
		t.Errorf("EvaluateBusCtx on cancelled ctx: %v", err)
	}
	st := ev.Stats()
	if st.DemandSolves+st.MVASolves != 0 || st.DemandEntries+st.CurveEntries != 0 {
		t.Errorf("cancelled queries still did work: %+v", st)
	}
}

// signalingScheme parks every Frequencies call on release like
// blockingScheme, but first announces entry on entered, so a test can
// guarantee which goroutine is the singleflight leader.
type signalingScheme struct {
	inner   core.Scheme
	entered chan struct{}
	release chan struct{}
}

// Name labels the scheme for cache keys and error messages.
func (s signalingScheme) Name() string { return "signaling-" + s.inner.Name() }

// Frequencies announces entry, parks until released, then delegates.
func (s signalingScheme) Frequencies(p core.Params) ([]core.OpFreq, error) {
	close(s.entered)
	<-s.release
	return s.inner.Frequencies(p)
}

// TestSingleflightWaiterCancellable parks a waiter on a leader's
// in-flight solve, cancels the waiter, and checks it returns promptly
// with the context error while the leader — deliberately unaffected —
// still completes and publishes for future callers.
func TestSingleflightWaiterCancellable(t *testing.T) {
	ev := NewEvaluator()
	release := make(chan struct{})
	entered := make(chan struct{})
	scheme := signalingScheme{inner: core.Base{}, entered: entered, release: release}
	parked := make(chan struct{})
	ev.waitHook = func() { close(parked) }

	costs := core.BusCosts()
	p := core.MiddleParams()

	leaderDone := make(chan error, 1)
	go func() {
		_, err := ev.Demand(scheme, p, costs)
		leaderDone <- err
	}()
	<-entered // the leader owns the flight before the waiter arrives

	ctx, cancel := context.WithCancel(context.Background())
	waiterDone := make(chan error, 1)
	go func() {
		_, err := ev.DemandCtx(ctx, scheme, p, costs)
		waiterDone <- err
	}()

	<-parked // the waiter has committed to the in-flight solve
	cancel()
	select {
	case err := <-waiterDone:
		if !errors.Is(err, context.Canceled) {
			t.Errorf("cancelled waiter returned %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled waiter still blocked on the in-flight solve")
	}

	close(release)
	if err := <-leaderDone; err != nil {
		t.Fatalf("leader failed: %v", err)
	}
	st := ev.Stats()
	if st.DemandSolves != 1 {
		t.Errorf("DemandSolves = %d, want 1 (the leader's)", st.DemandSolves)
	}
	if st.DemandEntries != 1 {
		t.Errorf("DemandEntries = %d, want 1 (the leader still published)", st.DemandEntries)
	}
}
