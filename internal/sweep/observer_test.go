package sweep

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"swcc/internal/core"
	"swcc/internal/obs"
)

// recordingObserver counts stages and events and remembers the trace IDs
// it saw, mutex-guarded so instrumented paths can run concurrently.
type recordingObserver struct {
	mu     sync.Mutex
	stages map[string]int     // stage -> observations
	events map[string]int     // cache+"/"+event -> count
	traces map[string]bool    // trace IDs seen on any callback
	timing map[string]float64 // stage -> accumulated seconds
}

func newRecordingObserver() *recordingObserver {
	return &recordingObserver{
		stages: map[string]int{}, events: map[string]int{},
		traces: map[string]bool{}, timing: map[string]float64{},
	}
}

func (o *recordingObserver) StageObserved(ctx context.Context, stage string, seconds float64) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.stages[stage]++
	o.timing[stage] += seconds
	o.traces[obs.TraceID(ctx)] = true
}

func (o *recordingObserver) CacheEvent(ctx context.Context, cache, event string) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.events[cache+"/"+event]++
	o.traces[obs.TraceID(ctx)] = true
}

// TestObserverSeesStagesAndEvents drives one cold query then one warm
// repeat through an observed evaluator and checks the stage/event stream
// matches the cache behavior Stats reports — and that the trace ID rides
// the context into every callback.
func TestObserverSeesStagesAndEvents(t *testing.T) {
	ev := NewEvaluator()
	rec := newRecordingObserver()
	ev.SetObserver(rec)
	ctx := obs.WithTraceID(context.Background(), "trace-observer-test")

	if _, err := ev.BusPointCtx(ctx, core.Dragon{}, core.MiddleParams(), core.BusCosts(), 8); err != nil {
		t.Fatal(err)
	}
	rec.mu.Lock()
	if rec.events["demand/miss"] != 1 || rec.events["mva/miss"] != 1 {
		t.Errorf("cold query events = %v, want one demand/miss and one mva/miss", rec.events)
	}
	if rec.stages[StageSolve] != 2 {
		t.Errorf("cold query solve stages = %d, want 2 (demand + MVA)", rec.stages[StageSolve])
	}
	rec.mu.Unlock()

	if _, err := ev.BusPointCtx(ctx, core.Dragon{}, core.MiddleParams(), core.BusCosts(), 8); err != nil {
		t.Fatal(err)
	}
	rec.mu.Lock()
	defer rec.mu.Unlock()
	if rec.events["demand/hit"] != 1 || rec.events["mva/hit"] != 1 {
		t.Errorf("warm query events = %v, want one demand/hit and one mva/hit", rec.events)
	}
	if rec.stages[StageCacheLookup] < 2 {
		t.Errorf("cache_lookup stages = %d, want >= 2", rec.stages[StageCacheLookup])
	}
	if !rec.traces["trace-observer-test"] {
		t.Errorf("trace ID never reached the observer; saw %v", rec.traces)
	}
	for stage, sec := range rec.timing {
		if sec < 0 {
			t.Errorf("stage %s accumulated negative time %v", stage, sec)
		}
	}
	// The observer is telemetry only: Stats must agree with the events.
	st := ev.Stats()
	if st.DemandHits != 1 || st.MVAHits != 1 || st.DemandSolves != 1 || st.MVASolves != 1 {
		t.Errorf("stats diverge from observed events: %+v", st)
	}
}

// TestObserverSeesEvictions caps the evaluator tightly and checks CLOCK
// evictions surface as evict events.
func TestObserverSeesEvictions(t *testing.T) {
	ev := NewEvaluatorCap(numShards) // one entry per shard
	rec := newRecordingObserver()
	ev.SetObserver(rec)
	ctx := context.Background()
	for i := 0; i < 4*numShards; i++ {
		p, err := core.MiddleParams().With("shd", 0.01+0.9*float64(i)/float64(4*numShards))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := ev.BusPointCtx(ctx, core.SoftwareFlush{}, p, core.BusCosts(), 4); err != nil {
			t.Fatal(err)
		}
	}
	rec.mu.Lock()
	evicts := rec.events["demand/evict"]
	rec.mu.Unlock()
	st := ev.Stats()
	if st.DemandEvictions == 0 {
		t.Fatalf("cap produced no evictions: %+v", st)
	}
	if uint64(evicts) != st.DemandEvictions {
		t.Errorf("observer saw %d demand evictions, Stats says %d", evicts, st.DemandEvictions)
	}
}

// TestUnobservedEvaluatorUnchanged pins that a nil observer keeps the
// computation identical (the instrumentation must be telemetry-only).
func TestUnobservedEvaluatorUnchanged(t *testing.T) {
	plain := NewEvaluator()
	rec := newRecordingObserver()
	observed := NewEvaluator()
	observed.SetObserver(rec)
	for _, procs := range []int{1, 8, 32} {
		a, err := plain.EvaluateBus(core.Dragon{}, core.MiddleParams(), core.BusCosts(), procs)
		if err != nil {
			t.Fatal(err)
		}
		b, err := observed.EvaluateBusCtx(context.Background(), core.Dragon{}, core.MiddleParams(), core.BusCosts(), procs)
		if err != nil {
			t.Fatal(err)
		}
		if fmt.Sprintf("%+v", a) != fmt.Sprintf("%+v", b) {
			t.Errorf("procs=%d: observed evaluator diverged from plain", procs)
		}
	}
}
