package sweep

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"

	"swcc/internal/core"
)

// allSchemes is the full scheme set the engine must handle: the four
// paper schemes plus the repository's extensions.
func allSchemes() []core.Scheme {
	return append(core.PaperSchemes(), core.Directory{}, core.Hybrid{LockFrac: 0.3})
}

// levelGrid is a Table 8-style grid: every scheme at every level and a
// few machine sizes.
func levelGrid(sizes ...int) []Point {
	var points []Point
	for _, s := range allSchemes() {
		for _, l := range core.Levels() {
			for _, n := range sizes {
				points = append(points, Point{Scheme: s, Params: core.ParamsAt(l), NProc: n})
			}
		}
	}
	return points
}

// TestParallelMatchesSequential is the determinism contract: the same
// grid evaluated sequentially-uncached, parallel-uncached, and
// parallel-cached must produce bit-identical results.
func TestParallelMatchesSequential(t *testing.T) {
	points := levelGrid(1, 4, 16, 64)
	costs := core.BusCosts()

	seq := (&Engine{Workers: 1}).EvaluateBus(points, costs)
	if err := FirstError(seq); err != nil {
		t.Fatal(err)
	}
	configs := map[string]*Engine{
		"parallel-uncached": {Workers: 8},
		"parallel-cached":   {Workers: 8, Cache: NewEvaluator()},
		"sequential-cached": {Workers: 1, Cache: NewEvaluator()},
	}
	for name, eng := range configs {
		got := eng.EvaluateBus(points, costs)
		if err := FirstError(got); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for i := range got {
			if got[i].Bus != seq[i].Bus {
				t.Errorf("%s: point %d (%s n=%d): got %+v, want %+v",
					name, i, got[i].Point.Scheme.Name(), got[i].Point.NProc, got[i].Bus, seq[i].Bus)
			}
		}
	}
}

// TestNilEngineSequential checks the zero/nil engine runs sequential and
// uncached rather than panicking.
func TestNilEngineSequential(t *testing.T) {
	var e *Engine
	points := levelGrid(4)
	results := e.EvaluateBus(points, core.BusCosts())
	if err := FirstError(results); err != nil {
		t.Fatal(err)
	}
	want := (&Engine{Workers: 1}).EvaluateBus(points, core.BusCosts())
	for i := range results {
		if results[i].Bus != want[i].Bus {
			t.Fatalf("point %d differs", i)
		}
	}
}

// TestEvaluateBusErrorSlots checks a bad point errors in its own slot
// without disturbing its neighbors.
func TestEvaluateBusErrorSlots(t *testing.T) {
	bad := core.MiddleParams()
	bad.Shd = -1
	points := []Point{
		{Scheme: core.Base{}, Params: core.MiddleParams(), NProc: 4},
		{Scheme: core.Base{}, Params: bad, NProc: 4},
		{Scheme: core.Base{}, Params: core.MiddleParams(), NProc: 0},
		{Scheme: core.Dragon{}, Params: core.MiddleParams(), NProc: 8},
	}
	for _, eng := range []*Engine{{Workers: 1}, New(4)} {
		results := eng.EvaluateBus(points, core.BusCosts())
		if results[0].Err != nil || results[3].Err != nil {
			t.Fatalf("good points errored: %v, %v", results[0].Err, results[3].Err)
		}
		if results[1].Err == nil {
			t.Error("invalid shd did not error")
		}
		if results[2].Err == nil {
			t.Error("nproc 0 did not error")
		}
		if err := FirstError(results); err == nil || err != results[1].Err {
			t.Errorf("FirstError = %v, want the slot-1 error", err)
		}
	}
}

func TestEachRunsEveryIndex(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 7, 64} {
		n := 100
		hits := make([]int32, n)
		err := Each(workers, n, func(i int) error {
			atomic.AddInt32(&hits[i], 1)
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, h)
			}
		}
	}
}

func TestEachReturnsLowestIndexError(t *testing.T) {
	wantErr := errors.New("boom-3")
	for _, workers := range []int{1, 4} {
		var ran int32
		err := Each(workers, 10, func(i int) error {
			atomic.AddInt32(&ran, 1)
			if i == 3 {
				return wantErr
			}
			if i == 7 {
				return fmt.Errorf("boom-7")
			}
			return nil
		})
		if err != wantErr {
			t.Errorf("workers=%d: err = %v, want %v", workers, err, wantErr)
		}
		if ran != 10 {
			t.Errorf("workers=%d: ran %d of 10 indices despite error", workers, ran)
		}
	}
}

func TestEachEmpty(t *testing.T) {
	if err := Each(4, 0, func(int) error { t.Error("fn called"); return nil }); err != nil {
		t.Fatal(err)
	}
	if err := Each(4, -1, func(int) error { t.Error("fn called"); return nil }); err != nil {
		t.Fatal(err)
	}
}
