package sweep

import (
	"testing"

	"swcc/internal/core"
)

// TestBatchGroups pins the grouping contract: canonically equal points
// share a group regardless of differences in parameters their scheme
// ignores, groups appear in first-occurrence order, and each group is
// sorted population-ascending with input order breaking ties.
func TestBatchGroups(t *testing.T) {
	pMid := core.MiddleParams()
	// Base ignores shd, so these two are canonically equal for Base but
	// distinct for Dragon.
	pShd, err := pMid.With("shd", 0.9)
	if err != nil {
		t.Fatal(err)
	}
	points := []Point{
		{Scheme: core.Base{}, Params: pMid, NProc: 32},   // group 0
		{Scheme: core.Dragon{}, Params: pMid, NProc: 8},  // group 1
		{Scheme: core.Base{}, Params: pShd, NProc: 4},    // group 0 (shd unused by Base)
		{Scheme: core.Dragon{}, Params: pShd, NProc: 2},  // group 2 (shd used by Dragon)
		{Scheme: core.Base{}, Params: pMid, NProc: 4},    // group 0, ties with index 2
		{Scheme: core.Dragon{}, Params: pMid, NProc: 64}, // group 1
	}
	groups := BatchGroups(len(points), func(i int) (core.Scheme, core.Params, int) {
		return points[i].Scheme, points[i].Params, points[i].NProc
	})
	want := [][]int{{2, 4, 0}, {1, 5}, {3}}
	if len(groups) != len(want) {
		t.Fatalf("got %d groups %v, want %d", len(groups), groups, len(want))
	}
	for g := range want {
		if len(groups[g]) != len(want[g]) {
			t.Fatalf("group %d = %v, want %v", g, groups[g], want[g])
		}
		for j := range want[g] {
			if groups[g][j] != want[g][j] {
				t.Fatalf("group %d = %v, want %v", g, groups[g], want[g])
			}
		}
	}
}

// TestEngineBatchGroupingBitIdentical runs the same grid through a
// grouped (cached) engine and a fresh uncached one: results must agree
// bit for bit, including points fed in population-descending order and
// duplicates, and errors must match the ungrouped path's text.
func TestEngineBatchGroupingBitIdentical(t *testing.T) {
	pMid := core.MiddleParams()
	var points []Point
	// Population-descending duplicates across two schemes: the grouped
	// path must sort, extend, and still answer in input order.
	for _, n := range []int{64, 8, 32, 8, 128, 1} {
		points = append(points,
			Point{Scheme: core.Base{}, Params: pMid, NProc: n},
			Point{Scheme: core.SoftwareFlush{}, Params: pMid, NProc: n},
		)
	}
	got := New(4).EvaluateBus(points, core.BusCosts())
	want := (&Engine{Workers: 1}).EvaluateBus(points, core.BusCosts())
	for i := range want {
		if (got[i].Err == nil) != (want[i].Err == nil) {
			t.Fatalf("point %d: err %v vs %v", i, got[i].Err, want[i].Err)
		}
		if got[i].Bus != want[i].Bus {
			t.Fatalf("point %d: grouped %+v, ungrouped %+v", i, got[i].Bus, want[i].Bus)
		}
	}
}

// TestEngineBatchGroupingErrors: an invalid point inside a group errors
// with the same message the ungrouped path produces, without poisoning
// its canonically-equal valid neighbors.
func TestEngineBatchGroupingErrors(t *testing.T) {
	pMid := core.MiddleParams()
	bad := pMid
	bad.Shd = 2.0 // invalid, but unused by Base: canonically equal to pMid
	points := []Point{
		{Scheme: core.Base{}, Params: bad, NProc: 8},
		{Scheme: core.Base{}, Params: pMid, NProc: 16},
		{Scheme: core.Base{}, Params: pMid, NProc: 0}, // nproc error
		{Scheme: core.Base{}, Params: pMid, NProc: 4},
	}
	got := New(1).EvaluateBus(points, core.BusCosts())
	ref := NewEvaluator()
	for i, pt := range points {
		wantBus, wantErr := ref.BusPoint(pt.Scheme, pt.Params, core.BusCosts(), pt.NProc)
		if wantErr != nil {
			if got[i].Err == nil || got[i].Err.Error() != wantErr.Error() {
				t.Errorf("point %d: err %v, want %v", i, got[i].Err, wantErr)
			}
			continue
		}
		if got[i].Err != nil {
			t.Errorf("point %d: unexpected err %v", i, got[i].Err)
			continue
		}
		if got[i].Bus != wantBus {
			t.Errorf("point %d: %+v, want %+v", i, got[i].Bus, wantBus)
		}
	}
}

// TestCurveRunPublishes: after a run finishes, its longest curve is in
// the shared cache, so a later cold query is a pure hit.
func TestCurveRunPublishes(t *testing.T) {
	ev := NewEvaluator()
	p := core.MiddleParams()
	costs := core.BusCosts()
	points := []Point{
		{Scheme: core.Base{}, Params: p, NProc: 4},
		{Scheme: core.Base{}, Params: p, NProc: 64},
		{Scheme: core.Base{}, Params: p, NProc: 16},
	}
	eng := &Engine{Workers: 1, Cache: ev}
	if err := FirstError(eng.EvaluateBus(points, costs)); err != nil {
		t.Fatal(err)
	}
	st := ev.Stats()
	if st.CurveEntries != 1 {
		t.Errorf("CurveEntries = %d, want 1 (one key, one published curve)", st.CurveEntries)
	}
	if st.MVASolves != st.CurveExtends+st.CurveFullSolves {
		t.Errorf("MVASolves %d != extends %d + fulls %d", st.MVASolves, st.CurveExtends, st.CurveFullSolves)
	}
	before := ev.Stats()
	if _, err := ev.BusPoint(core.Base{}, p, costs, 64); err != nil {
		t.Fatal(err)
	}
	after := ev.Stats()
	if after.MVASolves != before.MVASolves {
		t.Errorf("query at the published length re-solved; run did not publish")
	}
	if after.MVAHits != before.MVAHits+1 {
		t.Errorf("MVAHits %d -> %d, want +1", before.MVAHits, after.MVAHits)
	}
}

// TestSlicePoolRoundTrip pins the pool's class arithmetic: acquired
// lengths are exact, capacities are class sizes, and recycled buffers
// come back zeroed.
func TestSlicePoolRoundTrip(t *testing.T) {
	var p SlicePool[int]
	for _, n := range []int{0, 1, 7, 8, 9, 100, 4096, 1 << 18, 1<<18 + 1} {
		s := p.Acquire(n)
		if len(*s) != n {
			t.Fatalf("Acquire(%d): len %d", n, len(*s))
		}
		if n > 0 && n <= 1<<18 && cap(*s)&(cap(*s)-1) != 0 {
			t.Fatalf("Acquire(%d): cap %d not a power of two", n, cap(*s))
		}
		for i := range *s {
			(*s)[i] = i + 1
		}
		p.Release(s)
	}
	s := p.Acquire(8)
	for i, v := range *s {
		if v != 0 {
			t.Fatalf("recycled buffer not cleared: [%d] = %d", i, v)
		}
	}
}
