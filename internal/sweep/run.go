package sweep

import (
	"context"
	"sort"

	"swcc/internal/core"
	"swcc/internal/obs"
	"swcc/internal/queueing"
)

// CurveRun is worker-local incremental solve state for a batch of points
// that share one (scheme, canonical params, cost table) — and therefore
// one MVA curve. Within a run, population-ascending points grow a
// private pooled buffer by resuming the recursion where the previous
// point left off, instead of round-tripping the shared cache (and its
// singleflight machinery) once per point. Finish publishes the longest
// curve reached, so the whole batch costs the cache one write.
//
// A CurveRun is NOT safe for concurrent use: it belongs to one worker.
// Different workers running CurveRuns for the same key race only on the
// final publish, where the longest curve wins as usual.
type CurveRun struct {
	ev  *Evaluator
	d   core.Demand
	key mvaKey
	buf *[]queueing.SingleServerResult // private growing curve; nil until first local solve
}

// StartCurveRun resolves the batch group's shared demand (through the
// demand cache) and returns a run ready to answer per-point queries.
// The workload must already be validated — per-point raw-params
// validation stays with the caller, which is what keeps an invalid
// point erroring even when a canonically equal valid point shares its
// group (see TestInvalidParamsErrorDespiteCache).
func (ev *Evaluator) StartCurveRun(ctx context.Context, s core.Scheme, p core.Params, costs *core.CostTable) (*CurveRun, error) {
	d, err := ev.DemandCtx(ctx, s, p, costs)
	if err != nil {
		return nil, err
	}
	return &CurveRun{ev: ev, d: d, key: mvaKey{d.Think(), d.Interconnect, d.Priority}}, nil
}

// Demand returns the group's shared per-instruction demand.
func (r *CurveRun) Demand() core.Demand { return r.d }

// curveTo returns a slice covering populations 1..n: the run's private
// buffer, or a shared immutable cache entry. Callers must not mutate or
// retain it past the next curveTo/Finish call.
func (r *CurveRun) curveTo(ctx context.Context, n int) ([]queueing.SingleServerResult, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	ev := r.ev
	if r.buf != nil && len(*r.buf) >= n {
		// Served by earlier work in this same run: a hit in every sense
		// that matters to the counters.
		ev.mvaHits.Add(1)
		if ev.obsv != nil {
			ev.obsv.CacheEvent(ctx, "mva", EventHit)
		}
		return *r.buf, nil
	}
	sh := &ev.curves[r.key.shard()]
	var sp obs.Span
	if ev.obsv != nil {
		sp = obs.Start()
	}
	sh.mu.RLock()
	var prefix []queueing.SingleServerResult
	if sl, ok := sh.entries[r.key]; ok {
		sl.ref.Store(true)
		if len(sl.v) >= n {
			out := sl.v // immutable once published
			sh.mu.RUnlock()
			ev.mvaHits.Add(1)
			if ev.obsv != nil {
				ev.obsv.StageObserved(ctx, StageCacheLookup, sp.Seconds())
				ev.obsv.CacheEvent(ctx, "mva", EventHit)
			}
			return out, nil
		}
		prefix = sl.v
	}
	sh.mu.RUnlock()

	// Extend locally from the longest seed available: the run's own
	// buffer (in-place growth) or the cached prefix (copied into a
	// pooled buffer by the solver).
	var ssp obs.Span
	if ev.obsv != nil {
		ssp = obs.Start()
	}
	seed := prefix
	inPlace := false
	if r.d.Priority > 0 {
		// The priority recursion's inter-population state is per-class
		// and not stored in the curve, so it cannot resume from a seed:
		// always solve cold (the run's buffer may still be overwritten
		// in place).
		seed = nil
		inPlace = r.buf != nil
	} else if r.buf != nil && len(*r.buf) >= len(prefix) {
		seed = *r.buf
		inPlace = true
	}
	// Pick the destination: grow the run's buffer in place when it is
	// the seed and has room; otherwise acquire a pooled buffer sized for
	// n (the solver copies the seed into it).
	var dst []queueing.SingleServerResult
	var acquired *[]queueing.SingleServerResult
	if inPlace && cap(*r.buf) >= n {
		dst = (*r.buf)[:0]
	} else {
		acquired = curveBufPool.Acquire(n)
		*acquired = (*acquired)[:0]
		dst = *acquired
	}
	var ext []queueing.SingleServerResult
	var err error
	if r.d.Priority > 0 {
		hi, lo := r.d.PrioritySplit()
		ext, err = queueing.PrioritySingleServerMVA(r.d.Think(), hi, lo, n, dst)
	} else {
		ext, err = queueing.ExtendSingleServerMVA(r.d.Think(), r.d.Interconnect, seed, n, dst)
	}
	if err != nil {
		if acquired != nil {
			curveBufPool.Release(acquired)
		}
		return nil, err
	}
	if acquired != nil {
		old := r.buf
		*acquired = ext
		r.buf = acquired
		if old != nil {
			// ext copied the seed out of old above; safe to recycle now.
			curveBufPool.Release(old)
		}
	} else {
		*r.buf = ext
	}
	ev.mvaSolves.Add(1)
	if len(seed) > 0 {
		ev.curveExtends.Add(1)
	} else {
		ev.curveFullSolves.Add(1)
	}
	if ev.obsv != nil {
		ev.obsv.StageObserved(ctx, StageSolve, ssp.Seconds())
		ev.obsv.CacheEvent(ctx, "mva", EventMiss)
	}
	return *r.buf, nil
}

// BusPointAt returns the bus-model prediction at exactly nproc
// processors, growing the run's curve as needed. Results are
// bit-identical to Evaluator.BusPointCtx for the same inputs.
func (r *CurveRun) BusPointAt(ctx context.Context, nproc int) (core.BusPoint, error) {
	c, err := r.curveTo(ctx, nproc)
	if err != nil {
		return core.BusPoint{}, err
	}
	return core.BusPointFromMVA(r.d, c[nproc-1]), nil
}

// BusPointsInto fills dst (reused when cap(dst) >= maxProcs) with the
// predictions for 1..maxProcs, bit-identical to EvaluateBusIntoCtx.
func (r *CurveRun) BusPointsInto(ctx context.Context, maxProcs int, dst []core.BusPoint) ([]core.BusPoint, error) {
	c, err := r.curveTo(ctx, maxProcs)
	if err != nil {
		return nil, err
	}
	var points []core.BusPoint
	if cap(dst) >= maxProcs {
		points = dst[:maxProcs]
	} else {
		points = make([]core.BusPoint, maxProcs)
	}
	for i := 0; i < maxProcs; i++ {
		points[i] = core.BusPointFromMVA(r.d, c[i])
	}
	return points, nil
}

// Finish publishes the run's curve to the shared cache when it is longer
// than what is already there, or returns the buffer to the pool when it
// is not. A published buffer becomes cache-owned and immutable, so it is
// never pooled again. Finish must be the run's last call.
func (r *CurveRun) Finish(ctx context.Context) {
	if r.buf == nil {
		return
	}
	v := *r.buf
	r.buf = nil
	if len(v) == 0 {
		return
	}
	ev := r.ev
	sh := &ev.curves[r.key.shard()]
	published, evicted := false, false
	sh.mu.Lock()
	if sl, ok := sh.entries[r.key]; !ok || len(sl.v) < len(v) {
		if sh.put(r.key, v, ev.shardCap) {
			ev.curveEvictions.Add(1)
			evicted = true
		}
		published = true
	}
	sh.mu.Unlock()
	if evicted && ev.obsv != nil {
		ev.obsv.CacheEvent(ctx, "mva", EventEvict)
	}
	if !published {
		curveBufPool.Release(&v)
	}
}

// BatchGroups partitions point indices 0..n-1 into groups that share one
// (scheme, canonical workload) pair — and hence one demand solve and one
// MVA curve — with each group sorted population-ascending so a CurveRun
// visits it in pure-extension order. at reports point i's fields.
// Groups appear in first-occurrence order and sorting is stable, so the
// decomposition is deterministic; callers still write per-point results
// by index, keeping output order independent of grouping.
func BatchGroups(n int, at func(i int) (core.Scheme, core.Params, int)) [][]int {
	type groupKey struct {
		scheme string
		params core.Params
	}
	groups := map[groupKey]int{}
	out := [][]int{}
	nprocs := make([]int, n)
	for i := 0; i < n; i++ {
		s, p, nproc := at(i)
		nprocs[i] = nproc
		k := groupKey{schemeKey(s), core.CanonicalParams(s, p)}
		gi, ok := groups[k]
		if !ok {
			gi = len(out)
			groups[k] = gi
			out = append(out, nil)
		}
		out[gi] = append(out[gi], i)
	}
	for _, g := range out {
		sort.SliceStable(g, func(a, b int) bool { return nprocs[g[a]] < nprocs[g[b]] })
	}
	return out
}
