package sweep

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"swcc/internal/core"
	"swcc/internal/queueing"
)

// The snapshot format persists the evaluator's two content-addressed
// memo caches — demand results and MVA curves — so a restarted daemon
// starts warm instead of re-solving its whole working set (the software
// analogue of not flushing every cache on a context switch). Layout:
//
//	magic "SWCCSNP2"
//	fingerprint  (uvarint length + bytes; see ModelFingerprint)
//	demand section: uvarint entry count, then per entry
//	    scheme string, table string, 11 params float64s, 3 demand float64s
//	    (CPU, Interconnect, Priority)
//	curve section: uvarint entry count, then per entry
//	    think, service, prio float64s, uvarint curve length, then per point
//	    uvarint customers + 5 float64s
//	crc32 (IEEE) of everything above, 4 bytes little-endian
//
// Floats are written as their exact IEEE-754 bit patterns, so a restore
// is bit-identical to the cache that was snapshotted. Entries stream
// one shard at a time (sorted within each shard, so equal caches
// produce equal bytes) and restore commits entries as they decode, so
// neither direction ever holds a second full copy of the cache in
// memory. Any decode failure — bad magic, stale fingerprint, truncation,
// checksum mismatch, or an implausible length — fails closed: the
// evaluator is wiped back to a cold cache, never left with a suspect
// entry.

// snapshotMagic identifies the snapshot file format, version included:
// an incompatible layout change must change the magic. SNP2 added the
// demand Priority float and the curve key's prio float.
const snapshotMagic = "SWCCSNP2"

// Snapshot decode sentinels. Both mean "start cold"; they are separate
// so operators can tell a corrupt file (investigate disk/transfer) from
// a stale one (expected after a model-changing deploy).
var (
	// ErrSnapshotFormat reports a snapshot that is not a well-formed
	// snapshot file: wrong magic, truncated, or failing its checksum.
	ErrSnapshotFormat = errors.New("sweep: snapshot corrupt or truncated")
	// ErrSnapshotStale reports a well-formed snapshot whose model
	// fingerprint does not match this build — its cached answers may
	// disagree with the current model, so none of them are loaded.
	ErrSnapshotStale = errors.New("sweep: snapshot from a different model version")
)

// snapshotLimit bounds every length field read from a snapshot before
// allocation, so a corrupt count cannot OOM the restoring process: no
// real string, curve, or section is anywhere near 1<<26.
const snapshotLimit = 1 << 26

// SnapshotCounts reports what a restore (or snapshot) covered.
type SnapshotCounts struct {
	// DemandEntries is the number of demand-cache entries in the
	// snapshot.
	DemandEntries int
	// CurveEntries is the number of MVA-curve entries in the snapshot.
	CurveEntries int
}

// modelFingerprint memoizes ModelFingerprint: the probe solves are pure
// functions of the build, so one computation serves the process.
var modelFingerprint struct {
	once sync.Once
	fp   string
}

// ModelFingerprint returns a string that changes whenever the model
// code would change a cached answer or a cache key, so a snapshot
// written by one build is rejected by any build it could mislead. It is
// behavioral, not declared: the fingerprint hashes the exact float bits
// of probe solves through every layer a cache entry depends on — each
// paper scheme's demand at the Table 7 middle workload under the bus
// cost table, each scheme's canonicalized cache key (so a ParamsUsed
// declaration change invalidates too), and one MVA curve — plus the
// format magic. A refactor that preserves all outputs bit-for-bit keeps
// old snapshots valid, exactly as it keeps old cache entries valid.
func ModelFingerprint() string {
	modelFingerprint.once.Do(func() {
		h := uint64(fnvOffset)
		h = hashString(h, snapshotMagic)
		p := core.MiddleParams()
		costs := core.BusCosts()
		// Probe every registered scheme (default instances): registering,
		// removing, or behaviorally changing a protocol invalidates
		// snapshots, exactly as it invalidates cache entries.
		for _, info := range core.RegisteredSchemes() {
			s := info.Scheme
			h = hashString(h, schemeKey(s))
			cp := core.CanonicalParams(s, p)
			for _, f := range [...]float64{
				cp.LS, cp.MsDat, cp.MsIns, cp.MD, cp.Shd, cp.WR,
				cp.APL, cp.MdShd, cp.OClean, cp.OPres, cp.NShd,
			} {
				h = hashFloat(h, f)
			}
			d, err := core.ComputeDemand(s, p, costs)
			if err != nil {
				h = hashString(h, err.Error())
				continue
			}
			h = hashFloat(h, d.CPU)
			h = hashFloat(h, d.Interconnect)
			h = hashFloat(h, d.Priority)
		}
		curve, err := queueing.SingleServerMVA(3.75, 1.25, 8)
		if err == nil {
			for _, r := range curve {
				for _, f := range [...]float64{
					r.Residence, r.Wait, r.Throughput, r.QueueLength, r.Utilization,
				} {
					h = hashFloat(h, f)
				}
			}
		}
		prioCurve, err := queueing.PrioritySingleServerMVA(3.75, 0.25, 1.0, 8, nil)
		if err == nil {
			for _, r := range prioCurve {
				for _, f := range [...]float64{
					r.Residence, r.Wait, r.Throughput, r.QueueLength, r.Utilization,
				} {
					h = hashFloat(h, f)
				}
			}
		}
		modelFingerprint.fp = fmt.Sprintf("%s:%016x", snapshotMagic, h)
	})
	return modelFingerprint.fp
}

// snapWriter wraps the destination with buffering and a running CRC of
// every byte written, so the trailer can seal the whole stream.
type snapWriter struct {
	w   *bufio.Writer
	crc uint32
	err error
}

func (sw *snapWriter) write(p []byte) {
	if sw.err != nil {
		return
	}
	sw.crc = crc32.Update(sw.crc, crc32.IEEETable, p)
	_, sw.err = sw.w.Write(p)
}

func (sw *snapWriter) uvarint(v uint64) {
	var buf [binary.MaxVarintLen64]byte
	sw.write(buf[:binary.PutUvarint(buf[:], v)])
}

func (sw *snapWriter) str(s string) {
	sw.uvarint(uint64(len(s)))
	sw.write([]byte(s))
}

func (sw *snapWriter) f64(f float64) {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], math.Float64bits(f))
	sw.write(buf[:])
}

// Snapshot serializes the demand and curve caches to w in the
// version-stamped format above and returns what it wrote. It is safe to
// call on a live evaluator — each shard is read-locked only long enough
// to copy its entry references (values are immutable once published),
// so at no point does the snapshot hold a second copy of more than one
// shard's keys — but entries published while later shards stream are
// not included; snapshot after drain for a complete image.
func (ev *Evaluator) Snapshot(w io.Writer) (SnapshotCounts, error) {
	sw := &snapWriter{w: bufio.NewWriter(w)}
	sw.write([]byte(snapshotMagic))
	sw.str(ModelFingerprint())

	var counts SnapshotCounts
	for i := range ev.demands {
		sh := &ev.demands[i]
		sh.mu.RLock()
		counts.DemandEntries += len(sh.entries)
		sh.mu.RUnlock()
	}
	sw.uvarint(uint64(counts.DemandEntries))
	written := 0
	for i := range ev.demands {
		sh := &ev.demands[i]
		sh.mu.RLock()
		keys := make([]demandKey, 0, len(sh.entries))
		vals := make(map[demandKey]core.Demand, len(sh.entries))
		for k, sl := range sh.entries {
			keys = append(keys, k)
			vals[k] = sl.v
		}
		sh.mu.RUnlock()
		sort.Slice(keys, func(a, b int) bool { return keys[a].less(keys[b]) })
		for _, k := range keys {
			if written >= counts.DemandEntries {
				break // a concurrent publish grew the shard after the count pass
			}
			written++
			d := vals[k]
			sw.str(k.scheme)
			sw.str(k.table)
			p := k.params
			for _, f := range [...]float64{
				p.LS, p.MsDat, p.MsIns, p.MD, p.Shd, p.WR,
				p.APL, p.MdShd, p.OClean, p.OPres, p.NShd,
			} {
				sw.f64(f)
			}
			sw.f64(d.CPU)
			sw.f64(d.Interconnect)
			sw.f64(d.Priority)
		}
	}
	counts.DemandEntries = written

	curveTotal := 0
	for i := range ev.curves {
		sh := &ev.curves[i]
		sh.mu.RLock()
		curveTotal += len(sh.entries)
		sh.mu.RUnlock()
	}
	sw.uvarint(uint64(curveTotal))
	written = 0
	for i := range ev.curves {
		sh := &ev.curves[i]
		sh.mu.RLock()
		keys := make([]mvaKey, 0, len(sh.entries))
		vals := make(map[mvaKey][]queueing.SingleServerResult, len(sh.entries))
		for k, sl := range sh.entries {
			keys = append(keys, k)
			vals[k] = sl.v // immutable once published; safe to read after unlock
		}
		sh.mu.RUnlock()
		sort.Slice(keys, func(a, b int) bool { return keys[a].less(keys[b]) })
		for _, k := range keys {
			if written >= curveTotal {
				break
			}
			written++
			curve := vals[k]
			sw.f64(k.think)
			sw.f64(k.service)
			sw.f64(k.prio)
			sw.uvarint(uint64(len(curve)))
			for _, r := range curve {
				sw.uvarint(uint64(r.Customers))
				sw.f64(r.Residence)
				sw.f64(r.Wait)
				sw.f64(r.Throughput)
				sw.f64(r.QueueLength)
				sw.f64(r.Utilization)
			}
		}
	}
	counts.CurveEntries = written

	var trail [4]byte
	binary.LittleEndian.PutUint32(trail[:], sw.crc)
	if sw.err == nil {
		_, sw.err = sw.w.Write(trail[:])
	}
	if sw.err == nil {
		sw.err = sw.w.Flush()
	}
	return counts, sw.err
}

// less orders demand keys for deterministic snapshot bytes: two
// evaluators holding the same entries snapshot identically.
func (k demandKey) less(o demandKey) bool {
	if k.scheme != o.scheme {
		return k.scheme < o.scheme
	}
	if k.table != o.table {
		return k.table < o.table
	}
	a, b := k.params, o.params
	af := [...]float64{a.LS, a.MsDat, a.MsIns, a.MD, a.Shd, a.WR, a.APL, a.MdShd, a.OClean, a.OPres, a.NShd}
	bf := [...]float64{b.LS, b.MsDat, b.MsIns, b.MD, b.Shd, b.WR, b.APL, b.MdShd, b.OClean, b.OPres, b.NShd}
	for i := range af {
		if af[i] != bf[i] {
			return math.Float64bits(af[i]) < math.Float64bits(bf[i])
		}
	}
	return false
}

// less orders curve keys for deterministic snapshot bytes.
func (k mvaKey) less(o mvaKey) bool {
	if k.think != o.think {
		return math.Float64bits(k.think) < math.Float64bits(o.think)
	}
	if k.service != o.service {
		return math.Float64bits(k.service) < math.Float64bits(o.service)
	}
	return math.Float64bits(k.prio) < math.Float64bits(o.prio)
}

// snapReader mirrors snapWriter: buffered reads with a running CRC, so
// the trailer check covers every byte the decoder consumed.
type snapReader struct {
	r   *bufio.Reader
	crc uint32
}

// ReadByte implements io.ByteReader for binary.ReadUvarint.
func (sr *snapReader) ReadByte() (byte, error) {
	b, err := sr.r.ReadByte()
	if err == nil {
		sr.crc = crc32.Update(sr.crc, crc32.IEEETable, []byte{b})
	}
	return b, err
}

func (sr *snapReader) full(p []byte) error {
	if _, err := io.ReadFull(sr.r, p); err != nil {
		return err
	}
	sr.crc = crc32.Update(sr.crc, crc32.IEEETable, p)
	return nil
}

func (sr *snapReader) uvarint() (uint64, error) {
	return binary.ReadUvarint(sr)
}

func (sr *snapReader) length() (int, error) {
	n, err := sr.uvarint()
	if err != nil {
		return 0, err
	}
	if n > snapshotLimit {
		return 0, fmt.Errorf("length %d past the sanity bound", n)
	}
	return int(n), nil
}

func (sr *snapReader) str() (string, error) {
	n, err := sr.length()
	if err != nil {
		return "", err
	}
	buf := make([]byte, n)
	if err := sr.full(buf); err != nil {
		return "", err
	}
	return string(buf), nil
}

func (sr *snapReader) f64() (float64, error) {
	var buf [8]byte
	if err := sr.full(buf[:]); err != nil {
		return 0, err
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(buf[:])), nil
}

// RestoreSnapshot loads a snapshot written by Snapshot into the
// evaluator, merging entries into the (typically empty) caches, and
// returns how many of each it loaded. Restore before the evaluator sees
// traffic. On any failure the evaluator is wiped back to a completely
// cold cache and the error reports why: ErrSnapshotStale when the
// snapshot's model fingerprint does not match this build,
// ErrSnapshotFormat (wrapping detail) for corruption or truncation —
// in every failure mode the evaluator re-solves from scratch rather
// than risk serving a wrong cached answer. Entries commit as they
// stream, so restoring a large snapshot never doubles resident memory.
func (ev *Evaluator) RestoreSnapshot(r io.Reader) (SnapshotCounts, error) {
	counts, err := ev.restore(r)
	if err != nil {
		ev.wipe()
		return SnapshotCounts{}, err
	}
	return counts, nil
}

// restore is RestoreSnapshot without the fail-closed wipe.
func (ev *Evaluator) restore(r io.Reader) (SnapshotCounts, error) {
	sr := &snapReader{r: bufio.NewReader(r)}
	magic := make([]byte, len(snapshotMagic))
	if err := sr.full(magic); err != nil {
		return SnapshotCounts{}, fmt.Errorf("%w: reading magic: %v", ErrSnapshotFormat, err)
	}
	if string(magic) != snapshotMagic {
		return SnapshotCounts{}, fmt.Errorf("%w: bad magic %q", ErrSnapshotFormat, magic)
	}
	fp, err := sr.str()
	if err != nil {
		return SnapshotCounts{}, fmt.Errorf("%w: reading fingerprint: %v", ErrSnapshotFormat, err)
	}
	if fp != ModelFingerprint() {
		return SnapshotCounts{}, fmt.Errorf("%w: snapshot %q, build %q", ErrSnapshotStale, fp, ModelFingerprint())
	}

	var counts SnapshotCounts
	nDemand, err := sr.length()
	if err != nil {
		return SnapshotCounts{}, fmt.Errorf("%w: demand count: %v", ErrSnapshotFormat, err)
	}
	for i := 0; i < nDemand; i++ {
		var k demandKey
		if k.scheme, err = sr.str(); err != nil {
			return SnapshotCounts{}, fmt.Errorf("%w: demand[%d] scheme: %v", ErrSnapshotFormat, i, err)
		}
		if k.table, err = sr.str(); err != nil {
			return SnapshotCounts{}, fmt.Errorf("%w: demand[%d] table: %v", ErrSnapshotFormat, i, err)
		}
		if !core.RegisteredLabel(k.scheme) {
			// A snapshot naming a scheme this build does not register
			// could only have come from a different (or tampered) model:
			// fail closed rather than carry entries nothing can read.
			return SnapshotCounts{}, fmt.Errorf("%w: demand[%d] references unregistered scheme %q", ErrSnapshotStale, i, k.scheme)
		}
		p := &k.params
		var d core.Demand
		for _, dst := range [...]*float64{
			&p.LS, &p.MsDat, &p.MsIns, &p.MD, &p.Shd, &p.WR,
			&p.APL, &p.MdShd, &p.OClean, &p.OPres, &p.NShd,
			&d.CPU, &d.Interconnect, &d.Priority,
		} {
			if *dst, err = sr.f64(); err != nil {
				return SnapshotCounts{}, fmt.Errorf("%w: demand[%d] floats: %v", ErrSnapshotFormat, i, err)
			}
		}
		sh := &ev.demands[k.shard()]
		sh.mu.Lock()
		if sh.put(k, d, ev.shardCap) {
			ev.demandEvictions.Add(1)
		}
		sh.mu.Unlock()
		counts.DemandEntries++
	}

	nCurves, err := sr.length()
	if err != nil {
		return SnapshotCounts{}, fmt.Errorf("%w: curve count: %v", ErrSnapshotFormat, err)
	}
	for i := 0; i < nCurves; i++ {
		var k mvaKey
		if k.think, err = sr.f64(); err != nil {
			return SnapshotCounts{}, fmt.Errorf("%w: curve[%d] think: %v", ErrSnapshotFormat, i, err)
		}
		if k.service, err = sr.f64(); err != nil {
			return SnapshotCounts{}, fmt.Errorf("%w: curve[%d] service: %v", ErrSnapshotFormat, i, err)
		}
		if k.prio, err = sr.f64(); err != nil {
			return SnapshotCounts{}, fmt.Errorf("%w: curve[%d] prio: %v", ErrSnapshotFormat, i, err)
		}
		n, err := sr.length()
		if err != nil {
			return SnapshotCounts{}, fmt.Errorf("%w: curve[%d] length: %v", ErrSnapshotFormat, i, err)
		}
		curve := make([]queueing.SingleServerResult, n)
		for j := range curve {
			cust, err := sr.uvarint()
			if err != nil || cust > snapshotLimit {
				return SnapshotCounts{}, fmt.Errorf("%w: curve[%d][%d] customers: %v", ErrSnapshotFormat, i, j, err)
			}
			curve[j].Customers = int(cust)
			for _, dst := range [...]*float64{
				&curve[j].Residence, &curve[j].Wait, &curve[j].Throughput,
				&curve[j].QueueLength, &curve[j].Utilization,
			} {
				if *dst, err = sr.f64(); err != nil {
					return SnapshotCounts{}, fmt.Errorf("%w: curve[%d][%d] floats: %v", ErrSnapshotFormat, i, j, err)
				}
			}
		}
		sh := &ev.curves[k.shard()]
		sh.mu.Lock()
		if sl, ok := sh.entries[k]; !ok || len(sl.v) < len(curve) {
			if sh.put(k, curve, ev.shardCap) {
				ev.curveEvictions.Add(1)
			}
		}
		sh.mu.Unlock()
		counts.CurveEntries++
	}

	want := sr.crc
	var trail [4]byte
	if _, err := io.ReadFull(sr.r, trail[:]); err != nil {
		return SnapshotCounts{}, fmt.Errorf("%w: reading checksum: %v", ErrSnapshotFormat, err)
	}
	if got := binary.LittleEndian.Uint32(trail[:]); got != want {
		return SnapshotCounts{}, fmt.Errorf("%w: checksum mismatch (file %08x, computed %08x)", ErrSnapshotFormat, got, want)
	}
	return counts, nil
}

// wipe resets both caches to empty — the fail-closed landing state for
// a restore that went wrong partway through committing entries.
func (ev *Evaluator) wipe() {
	for i := range ev.demands {
		sh := &ev.demands[i]
		sh.mu.Lock()
		sh.entries = map[demandKey]*slot[core.Demand]{}
		sh.ring = nil
		sh.hand = 0
		sh.mu.Unlock()
	}
	for i := range ev.curves {
		sh := &ev.curves[i]
		sh.mu.Lock()
		sh.entries = map[mvaKey]*slot[[]queueing.SingleServerResult]{}
		sh.ring = nil
		sh.hand = 0
		sh.mu.Unlock()
	}
}

// WriteSnapshotFile snapshots the evaluator to path atomically: the
// bytes land in a temp file in the same directory, are synced, and only
// then renamed over path, so a crash mid-write can never leave a
// half-written file where the next boot will look for a snapshot.
func (ev *Evaluator) WriteSnapshotFile(path string) (SnapshotCounts, error) {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return SnapshotCounts{}, err
	}
	tmp := f.Name()
	counts, err := ev.Snapshot(f)
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Chmod(tmp, 0o644)
	}
	if err == nil {
		err = os.Rename(tmp, path)
	}
	if err != nil {
		os.Remove(tmp)
		return SnapshotCounts{}, err
	}
	return counts, nil
}

// LoadSnapshotFile restores the evaluator from a snapshot file. A
// missing file is not an error — it returns zero counts and nil, the
// normal cold first boot — while a present-but-unusable file fails
// exactly as RestoreSnapshot does, leaving the cache cold.
func (ev *Evaluator) LoadSnapshotFile(path string) (SnapshotCounts, error) {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return SnapshotCounts{}, nil
		}
		return SnapshotCounts{}, err
	}
	defer f.Close()
	return ev.RestoreSnapshot(f)
}
