package sweep

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"swcc/internal/core"
)

// Point is one cell of an evaluation grid: a scheme, a workload, and a
// machine size.
type Point struct {
	Scheme core.Scheme // coherence scheme under evaluation
	Params core.Params // workload parameters (Table 7 space)
	NProc  int         // machine size in processors
}

// Result pairs a Point with its bus-model solution at exactly
// Point.NProc processors. On error Bus is zero and Err explains.
type Result struct {
	Point Point         // the grid cell this result answers
	Bus   core.BusPoint // the model's prediction at Point.NProc
	Err   error         // non-nil when the cell failed to solve
}

// Engine evaluates grids on a worker pool with an optional shared memo
// cache. The zero value runs sequentially and uncached; New returns the
// usual configuration (all cores, fresh cache).
type Engine struct {
	// Workers is the pool size; <= 0 means runtime.GOMAXPROCS(0).
	Workers int
	// Cache memoizes demand and MVA solves across grid cells and
	// engine calls. nil disables memoization (every cell solves fresh).
	Cache *Evaluator
}

// New returns an engine with the given pool size (<= 0 = all cores) and a
// fresh shared cache.
func New(workers int) *Engine {
	return &Engine{Workers: workers, Cache: NewEvaluator()}
}

func (e *Engine) workers() int {
	if e == nil || e.Workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return e.Workers
}

// EvaluateBus solves every grid point on the worker pool and returns the
// results in input order. Scheduling never affects the output: each
// worker writes only its own slots and every solve is a pure function of
// the point, so the result slice is bit-identical to a sequential run.
//
// With a cache attached, points sharing one (scheme, canonical workload)
// are grouped into a single work unit that a worker solves
// population-ascending through a CurveRun: each point resumes the MVA
// recursion where the previous one stopped, instead of round-tripping
// the shared cache per point. Single-point groups take the plain
// BusPoint path unchanged.
func (e *Engine) EvaluateBus(points []Point, costs *core.CostTable) []Result {
	return e.EvaluateBusCtx(context.Background(), points, costs)
}

// EvaluateBusCtx is EvaluateBus under cooperative cancellation: once ctx
// is done no further group starts, in-flight groups stop at the
// evaluator's next cancellation point, and every unsolved cell carries
// ctx's error in Result.Err. A background ctx makes it exactly
// EvaluateBus. This is the hook that lets `cohere all -parallel` and the
// sensitivity sweep abandon work on SIGINT instead of solving a grid
// nobody will read (EvaluateBus used to hardwire context.Background()
// here, silently dropping the caller's cancellation).
func (e *Engine) EvaluateBusCtx(ctx context.Context, points []Point, costs *core.CostTable) []Result {
	results := make([]Result, len(points))
	workers := 1
	var cache *Evaluator
	if e != nil {
		workers = e.workers()
		cache = e.Cache
	}
	if cache == nil {
		EachCtx(ctx, workers, len(points), func(i int) error {
			pt := points[i]
			results[i].Point = pt
			bus, err := core.EvaluateBus(pt.Scheme, pt.Params, costs, pt.NProc)
			if err != nil {
				results[i].Err = err
				return nil
			}
			results[i].Bus = bus[pt.NProc-1]
			return nil
		})
		markSkipped(ctx, points, results)
		return results
	}
	groups := BatchGroups(len(points), func(i int) (core.Scheme, core.Params, int) {
		return points[i].Scheme, points[i].Params, points[i].NProc
	})
	EachCtx(ctx, workers, len(groups), func(g int) error {
		for _, i := range groups[g] {
			results[i].Point = points[i]
		}
		if len(groups[g]) == 1 {
			i := groups[g][0]
			pt := points[i]
			results[i].Bus, results[i].Err = cache.BusPoint(pt.Scheme, pt.Params, costs, pt.NProc)
			return nil
		}
		var run *CurveRun
		for _, i := range groups[g] {
			pt := points[i]
			// Per-point validation order matches BusPoint exactly, so
			// grouping never changes which error a point reports.
			if pt.NProc < 1 {
				results[i].Err = fmt.Errorf("core: nproc %d < 1", pt.NProc)
				continue
			}
			if err := pt.Params.Validate(); err != nil {
				results[i].Err = fmt.Errorf("%s: %w", pt.Scheme.Name(), err)
				continue
			}
			if run == nil {
				r, err := cache.StartCurveRun(ctx, pt.Scheme, pt.Params, costs)
				if err != nil {
					results[i].Err = err
					continue
				}
				run = r
			}
			results[i].Bus, results[i].Err = run.BusPointAt(ctx, pt.NProc)
		}
		if run != nil {
			run.Finish(ctx)
		}
		return nil
	})
	markSkipped(ctx, points, results)
	return results
}

// markSkipped back-fills the cells whose work unit never started because
// ctx was cancelled first: EachCtx stops claiming indices once ctx is
// done, leaving those results zero. Every cell that did run has its
// Point (and hence a non-nil Scheme) stamped before any solving, so a
// nil Scheme is exactly "skipped by cancellation".
func markSkipped(ctx context.Context, points []Point, results []Result) {
	err := ctx.Err()
	if err == nil {
		return
	}
	for i := range results {
		if results[i].Point.Scheme == nil {
			results[i].Point = points[i]
			results[i].Err = err
		}
	}
}

// FirstError returns the error of the lowest-index failed result, or nil.
func FirstError(results []Result) error {
	for _, r := range results {
		if r.Err != nil {
			return r.Err
		}
	}
	return nil
}

// Each runs fn(i) for every i in [0, n) on up to `workers` goroutines
// (<= 0 = all cores) and returns the lowest-index error, or nil. Every
// index runs regardless of failures elsewhere. With one worker the
// indices run sequentially in order on the calling goroutine, so a
// single-core Each has no scheduling overhead at all; either way the
// per-index effects and the returned error are scheduling-independent as
// long as fn(i) only writes state owned by index i.
func Each(workers, n int, fn func(i int) error) error {
	return EachCtx(context.Background(), workers, n, fn)
}

// EachCtx is Each under cooperative cancellation: once ctx is done, no
// further fn(i) starts — remaining indices fail with ctx's error instead
// of running — so a caller that has stopped caring (a timed-out HTTP
// request, an abandoned batch) stops consuming the worker pool within
// one in-flight fn per worker. Indices that ran before cancellation keep
// their results; which indices those are depends on scheduling, so
// unlike Each the per-index effects are only deterministic when ctx is
// never cancelled (a background ctx makes EachCtx exactly Each).
func EachCtx(ctx context.Context, workers, n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		var first error
		for i := 0; i < n; i++ {
			err := ctx.Err()
			if err == nil {
				err = fn(i)
			}
			if err != nil && first == nil {
				first = err
			}
		}
		return first
	}
	errs := make([]error, n)
	next := int64(-1)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1))
				if i >= n {
					return
				}
				if err := ctx.Err(); err != nil {
					errs[i] = err
					continue
				}
				errs[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
