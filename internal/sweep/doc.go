// Package sweep is the repo's batched, parallel evaluation layer for the
// analytical model: a worker-pool engine that evaluates grids of
// (scheme, workload, machine-size) points deterministically, and a
// memoizing evaluator that deduplicates the ComputeDemand and
// SingleServerMVA solves underneath repeated model queries (sensitivity
// tables, bisections, advisor rankings, parameter sweeps).
//
// Determinism: every solve is a pure function of its inputs, results are
// written into caller-indexed slots, and cache hits return values the
// same code path produced on the miss — so parallel and cached runs are
// bit-identical to sequential fresh runs regardless of scheduling.
// Cached results are bit-identical to cold solves: the cache only
// decides who computes and where the bytes live, never what they are,
// and eviction under a capped evaluator costs a re-solve, never a
// different answer.
//
// Observability: an Evaluator optionally reports what it is doing
// through an Observer (SetObserver) — per-stage wall time for the cache
// lookup, the singleflight wait, and the cold solve, plus discrete
// hit/miss/dedup-join/evict events. Callers that care about correlating
// those events with a specific request thread a trace-carrying
// context.Context through the *Ctx method variants (DemandCtx,
// EvaluateBusCtx, BusPointCtx); the context is observability-only — it
// never changes what is computed, and the non-Ctx methods are exactly
// the Ctx ones under context.Background().
package sweep
