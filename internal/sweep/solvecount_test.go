package sweep

import (
	"sync"
	"sync/atomic"
	"testing"

	"swcc/internal/core"
)

// countingDirect wraps the uncached evaluator and counts BusPower calls;
// each call is exactly one ComputeDemand plus one MVA recursion, so the
// count is the solve cost a bisection pays without memoization.
type countingDirect struct {
	calls int
	ev    core.PowerEvaluator
}

func (c *countingDirect) BusPower(s core.Scheme, p core.Params, costs *core.CostTable, nproc int) (float64, error) {
	c.calls++
	return c.ev.BusPower(s, p, costs, nproc)
}

// TestAPLToMatchSolveReduction is the cache-effectiveness acceptance
// criterion: repeated APLToMatch analyses (the advisor and the crossover
// experiment re-ask the same questions) must cost at least 5x fewer MVA
// solves through the memoizing evaluator than fresh solving would.
func TestAPLToMatchSolveReduction(t *testing.T) {
	costs := core.BusCosts()
	targets := []core.Scheme{core.NoCache{}, core.Dragon{}}
	shds := []float64{0.08, 0.25, 0.42}
	const repeats = 10

	run := func(ev core.PowerEvaluator) {
		for rep := 0; rep < repeats; rep++ {
			for _, shd := range shds {
				p, err := core.MiddleParams().With("shd", shd)
				if err != nil {
					t.Fatal(err)
				}
				for _, target := range targets {
					if _, _, err := core.APLToMatchWith(ev, target, p, costs, 16); err != nil {
						t.Fatal(err)
					}
				}
			}
		}
	}

	direct := &countingDirect{ev: core.Direct()}
	run(direct)

	cached := NewEvaluator()
	run(cached)
	st := cached.Stats()

	if direct.calls == 0 || st.MVASolves == 0 {
		t.Fatalf("degenerate counts: direct=%d cached=%+v", direct.calls, st)
	}
	// Every direct BusPower call is one MVA solve (and one demand solve).
	if uint64(direct.calls) < 5*st.MVASolves {
		t.Errorf("MVA solves: direct %d vs cached %d — less than the required 5x reduction",
			direct.calls, st.MVASolves)
	}
	if uint64(direct.calls) < 5*st.DemandSolves {
		t.Errorf("demand solves: direct %d vs cached %d — less than the required 5x reduction",
			direct.calls, st.DemandSolves)
	}
	t.Logf("APLToMatch x%d: %d fresh solves -> %d cached MVA solves (%.1fx), %d demand solves (%.1fx)",
		repeats*len(shds)*len(targets), direct.calls, st.MVASolves,
		float64(direct.calls)/float64(st.MVASolves),
		st.DemandSolves, float64(direct.calls)/float64(st.DemandSolves))

	// The cached answers are still bit-identical to fresh ones.
	for _, shd := range shds {
		p, err := core.MiddleParams().With("shd", shd)
		if err != nil {
			t.Fatal(err)
		}
		for _, target := range targets {
			aplC, foundC, err := core.APLToMatchWith(cached, target, p, costs, 16)
			if err != nil {
				t.Fatal(err)
			}
			aplF, foundF, err := core.APLToMatch(target, p, costs, 16)
			if err != nil {
				t.Fatal(err)
			}
			if aplC != aplF || foundC != foundF {
				t.Errorf("shd=%.2f target=%s: cached (%v,%v) != fresh (%v,%v)",
					shd, target.Name(), aplC, foundC, aplF, foundF)
			}
		}
	}
}

// blockingScheme delegates to an inner scheme but parks every
// Frequencies call on a channel, so a test controls exactly when the
// singleflight leader's solve completes.
type blockingScheme struct {
	inner   core.Scheme
	release chan struct{}
}

func (b blockingScheme) Name() string { return "blocking-" + b.inner.Name() }

func (b blockingScheme) Frequencies(p core.Params) ([]core.OpFreq, error) {
	<-b.release
	return b.inner.Frequencies(p)
}

// TestSingleflightColdKeyRace is the dedup acceptance criterion: N
// goroutines racing one cold (scheme, params, table) key must cost
// exactly 1 ComputeDemand — the leader's — with the other N-1 waiting on
// the in-flight solve and sharing its result. The leader's solve parks
// inside the scheme until the evaluator's wait hook has seen all N-1
// racers commit to waiting, so the count assertions are deterministic,
// not timing-dependent.
func TestSingleflightColdKeyRace(t *testing.T) {
	const n = 16
	ev := NewEvaluator()
	release := make(chan struct{})
	scheme := blockingScheme{inner: core.Base{}, release: release}
	var parked atomic.Int32
	ev.waitHook = func() {
		if parked.Add(1) == n-1 {
			close(release)
		}
	}

	costs := core.BusCosts()
	p := core.MiddleParams()
	demands := make([]core.Demand, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			demands[i], errs[i] = ev.Demand(scheme, p, costs)
		}(i)
	}
	wg.Wait()

	want, err := core.ComputeDemand(core.Base{}, p, costs)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("goroutine %d: %v", i, errs[i])
		}
		if demands[i] != want {
			t.Errorf("goroutine %d: demand %+v != fresh %+v", i, demands[i], want)
		}
	}
	st := ev.Stats()
	if st.DemandSolves != 1 {
		t.Errorf("N concurrent cold requests cost %d solves, want exactly 1", st.DemandSolves)
	}
	if st.DemandDedups != n-1 {
		t.Errorf("DemandDedups = %d, want %d", st.DemandDedups, n-1)
	}
	if st.DemandHits != 0 {
		t.Errorf("DemandHits = %d, want 0 (no entry existed to hit)", st.DemandHits)
	}
	if st.DemandEntries != 1 {
		t.Errorf("DemandEntries = %d, want 1", st.DemandEntries)
	}
}
