package sweep

import (
	"context"
	"math/rand"
	"strings"
	"testing"

	"swcc/internal/core"
	"swcc/internal/queueing"
)

// randomParams draws every Table 7 parameter uniformly from its
// [low, high] range (the bounds swapped where the table orders by
// intensity rather than value, e.g. apl).
func randomParams(rng *rand.Rand) core.Params {
	p := core.MiddleParams()
	for _, f := range core.Fields() {
		lo, hi := f.Low, f.High
		if lo > hi {
			lo, hi = hi, lo
		}
		f.Set(&p, lo+rng.Float64()*(hi-lo))
	}
	return p
}

// TestEvaluatorMatchesFreshSolves is the cache-correctness property: for
// randomized workloads within the Table 7 ranges, the memoized evaluator
// returns bit-identical results to core.EvaluateBus — on the first query
// (miss path) and on the repeat (hit path).
func TestEvaluatorMatchesFreshSolves(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	ev := NewEvaluator()
	costs := core.BusCosts()
	const trials = 40
	for trial := 0; trial < trials; trial++ {
		p := randomParams(rng)
		nproc := 1 + rng.Intn(64)
		for _, s := range allSchemes() {
			want, err := core.EvaluateBus(s, p, costs, nproc)
			if err != nil {
				t.Fatalf("trial %d %s: fresh solve: %v", trial, s.Name(), err)
			}
			for pass := 0; pass < 2; pass++ {
				got, err := ev.EvaluateBus(s, p, costs, nproc)
				if err != nil {
					t.Fatalf("trial %d %s pass %d: %v", trial, s.Name(), pass, err)
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("trial %d %s pass %d n=%d: got %+v, want %+v",
							trial, s.Name(), pass, i+1, got[i], want[i])
					}
				}
				pt, err := ev.BusPoint(s, p, costs, nproc)
				if err != nil {
					t.Fatalf("trial %d %s: BusPoint: %v", trial, s.Name(), err)
				}
				if pt != want[nproc-1] {
					t.Fatalf("trial %d %s: BusPoint %+v != curve point %+v", trial, s.Name(), pt, want[nproc-1])
				}
			}
		}
	}
	st := ev.Stats()
	if st.DemandHits == 0 || st.MVAHits == 0 {
		t.Errorf("repeat passes produced no cache hits: %+v", st)
	}
	if st.DemandSolves == 0 || st.MVASolves == 0 {
		t.Errorf("no solves recorded: %+v", st)
	}
}

// TestParamsUsedDeclarationsSound validates the canonicalization tables
// against the model itself: varying a parameter a scheme does NOT
// declare must leave its computed demand bit-identical. If a scheme ever
// starts reading an undeclared parameter, this fails before the cache
// can serve wrong answers.
func TestParamsUsedDeclarationsSound(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	costs := core.BusCosts()
	for _, s := range allSchemes() {
		pu, ok := s.(core.ParamsUser)
		if !ok {
			t.Errorf("%s does not declare ParamsUsed", s.Name())
			continue
		}
		used := map[string]bool{}
		for _, name := range pu.ParamsUsed() {
			used[name] = true
		}
		base := core.MiddleParams()
		want, err := core.ComputeDemand(s, base, costs)
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		for _, f := range core.Fields() {
			if used[f.Name] {
				continue
			}
			for trial := 0; trial < 5; trial++ {
				p := base
				lo, hi := f.Low, f.High
				if lo > hi {
					lo, hi = hi, lo
				}
				f.Set(&p, lo+rng.Float64()*(hi-lo))
				got, err := core.ComputeDemand(s, p, costs)
				if err != nil {
					t.Fatalf("%s: vary %s: %v", s.Name(), f.Name, err)
				}
				if got != want {
					t.Errorf("%s: demand depends on undeclared parameter %s", s.Name(), f.Name)
					break
				}
			}
		}
	}
}

// TestCanonicalCollapsesUnusedFields checks the cache actually merges
// workloads differing only in ignored fields: Base ignores apl, so two
// workloads differing only there must cost one demand solve.
func TestCanonicalCollapsesUnusedFields(t *testing.T) {
	ev := NewEvaluator()
	costs := core.BusCosts()
	p1 := core.MiddleParams()
	p2 := p1
	p2.APL = 50
	if _, err := ev.Demand(core.Base{}, p1, costs); err != nil {
		t.Fatal(err)
	}
	if _, err := ev.Demand(core.Base{}, p2, costs); err != nil {
		t.Fatal(err)
	}
	st := ev.Stats()
	if st.DemandSolves != 1 || st.DemandHits != 1 {
		t.Errorf("apl variation not collapsed for Base: %+v", st)
	}
}

// TestHybridConfigurationsNotShared checks differently configured Hybrid
// instances never share a cache entry (their Name is identical; only
// String carries the lock fraction).
func TestHybridConfigurationsNotShared(t *testing.T) {
	ev := NewEvaluator()
	costs := core.BusCosts()
	p := core.MiddleParams()
	a, err := ev.BusPoint(core.Hybrid{LockFrac: 0.1}, p, costs, 16)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ev.BusPoint(core.Hybrid{LockFrac: 0.9}, p, costs, 16)
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Error("Hybrid lock fractions 0.1 and 0.9 returned identical points — cache key collision")
	}
	want, err := core.BusPower(core.Hybrid{LockFrac: 0.9}, p, costs, 16)
	if err != nil {
		t.Fatal(err)
	}
	if b.Power != want {
		t.Errorf("cached Hybrid power %v != fresh %v", b.Power, want)
	}
}

// TestInvalidParamsErrorDespiteCache checks error parity: an invalid
// workload must error even when a canonically equal valid workload is
// already cached (Base ignores apl, so apl=-5 canonicalizes onto the
// cached middle workload).
func TestInvalidParamsErrorDespiteCache(t *testing.T) {
	ev := NewEvaluator()
	costs := core.BusCosts()
	if _, err := ev.Demand(core.Base{}, core.MiddleParams(), costs); err != nil {
		t.Fatal(err)
	}
	bad := core.MiddleParams()
	bad.APL = -5
	_, cachedErr := ev.Demand(core.Base{}, bad, costs)
	_, freshErr := core.ComputeDemand(core.Base{}, bad, costs)
	if (cachedErr == nil) != (freshErr == nil) {
		t.Errorf("error parity broken: cached err %v, fresh err %v", cachedErr, freshErr)
	}
}

// TestCostTablesNotConfused checks bus and network tables keep separate
// entries even though the lookups interleave.
func TestCostTablesNotConfused(t *testing.T) {
	ev := NewEvaluator()
	p := core.MiddleParams()
	busD, err := ev.Demand(core.Base{}, p, core.BusCosts())
	if err != nil {
		t.Fatal(err)
	}
	netD, err := ev.Demand(core.Base{}, p, core.NetworkCosts(8))
	if err != nil {
		t.Fatal(err)
	}
	if busD == netD {
		t.Error("bus and network cost tables produced identical demands — fingerprint collision")
	}
	// Two separately constructed but identical tables must share entries.
	if _, err := ev.Demand(core.Base{}, p, core.BusCosts()); err != nil {
		t.Fatal(err)
	}
	st := ev.Stats()
	if st.DemandSolves != 2 {
		t.Errorf("want 2 demand solves (bus + network), got %+v", st)
	}
	if st.DemandHits != 1 {
		t.Errorf("fresh-but-identical bus table missed the cache: %+v", st)
	}
}

// TestCurveResultsAreCallerOwned checks the aliasing fix: a caller that
// mutates a returned curve must not corrupt later cache hits, on either
// the miss-path return or the hit-path return.
func TestCurveResultsAreCallerOwned(t *testing.T) {
	ev := NewEvaluator()
	costs := core.BusCosts()
	p := core.MiddleParams()
	d, err := ev.Demand(core.Base{}, p, costs)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ev.curve(context.Background(), d, 16)
	if err != nil {
		t.Fatal(err)
	}
	pristine := append([]queueing.SingleServerResult(nil), want...)
	// Scribble over the miss-path return, then over a hit-path return.
	for pass := 0; pass < 2; pass++ {
		for i := range want {
			want[i].Wait = -1
			want[i].Utilization = 99
		}
		got, err := ev.curve(context.Background(), d, 16)
		if err != nil {
			t.Fatal(err)
		}
		for i := range got {
			if got[i] != pristine[i] {
				t.Fatalf("pass %d: cached curve corrupted at %d: got %+v, want %+v",
					pass, i, got[i], pristine[i])
			}
		}
		want = got
	}
	if st := ev.Stats(); st.MVASolves != 1 {
		t.Errorf("clone defeated the cache: %+v", st)
	}
}

// TestTableMemoBounded feeds the evaluator more distinct *CostTable
// pointers than the memo cap, as a long-running server handling
// per-request tables does, and checks the pointer memo stays bounded
// while the content-keyed demand cache keeps hitting.
func TestTableMemoBounded(t *testing.T) {
	ev := NewEvaluator()
	p := core.MiddleParams()
	for i := 0; i < tableMemoCap+64; i++ {
		if _, err := ev.Demand(core.Base{}, p, core.BusCosts()); err != nil {
			t.Fatal(err)
		}
	}
	st := ev.Stats()
	if st.TableEntries > tableMemoCap {
		t.Errorf("table memo grew past its cap: %d > %d", st.TableEntries, tableMemoCap)
	}
	if st.DemandSolves != 1 {
		t.Errorf("identical tables under fresh pointers re-solved demand: %+v", st)
	}
	if st.DemandEntries != 1 || st.CurveEntries != 0 {
		t.Errorf("unexpected cache sizes: %+v", st)
	}
}

// TestBusPointErrorNamesArgument pins the fixed error message: BusPoint
// takes nproc, not maxProcs.
func TestBusPointErrorNamesArgument(t *testing.T) {
	ev := NewEvaluator()
	_, err := ev.BusPoint(core.Base{}, core.MiddleParams(), core.BusCosts(), 0)
	if err == nil || !strings.Contains(err.Error(), "nproc") {
		t.Errorf("want error naming nproc, got %v", err)
	}
}

// TestCurvePrefixReuse checks a shorter curve is served as a prefix of a
// longer one and extending a curve re-solves once.
func TestCurvePrefixReuse(t *testing.T) {
	ev := NewEvaluator()
	costs := core.BusCosts()
	p := core.MiddleParams()
	long, err := ev.EvaluateBus(core.Base{}, p, costs, 64)
	if err != nil {
		t.Fatal(err)
	}
	short, err := ev.EvaluateBus(core.Base{}, p, costs, 16)
	if err != nil {
		t.Fatal(err)
	}
	for i := range short {
		if short[i] != long[i] {
			t.Fatalf("prefix point %d differs", i)
		}
	}
	st := ev.Stats()
	if st.MVASolves != 1 {
		t.Errorf("want 1 MVA solve, got %+v", st)
	}
	if st.MVAHits != 1 {
		t.Errorf("short curve did not hit the long curve: %+v", st)
	}
}
