package sweep

import (
	"fmt"
	"sync"
	"testing"

	"swcc/internal/core"
)

func allSchemesConc() []core.Scheme {
	return []core.Scheme{
		core.Base{}, core.NoCache{}, core.SoftwareFlush{}, core.Dragon{},
		core.Hybrid{LockFrac: 0.3}, core.Directory{},
	}
}

// shdParams returns a valid workload varying only shd, giving a cheap
// supply of distinct cache keys.
func shdParams(t testing.TB, i, n int) core.Params {
	t.Helper()
	shd := 0.02 + 0.9*float64(i)/float64(n)
	p, err := core.MiddleParams().With("shd", shd)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestEvaluatorConcurrentHammer drives one shared evaluator from many
// goroutines over a key mix engineered to collide (every goroutine
// rotates through the same schemes and workloads, so hits, misses, and
// singleflight waits all interleave) and checks every answer is
// bit-identical to a fresh solve. Run under -race this is the sharded
// cache's memory-safety gate.
func TestEvaluatorConcurrentHammer(t *testing.T) {
	for _, cap := range []int{0, 24} {
		t.Run(fmt.Sprintf("cap=%d", cap), func(t *testing.T) {
			ev := NewEvaluatorCap(cap)
			costs := core.BusCosts()
			schemes := allSchemesConc()
			const keys = 12
			const workers = 16
			const rounds = 60

			type ref struct {
				p    core.Params
				s    core.Scheme
				want core.BusPoint
			}
			refs := make([]ref, 0, keys*len(schemes))
			for i := 0; i < keys; i++ {
				p := shdParams(t, i, keys)
				for _, s := range schemes {
					pts, err := core.EvaluateBus(s, p, costs, 24)
					if err != nil {
						t.Fatal(err)
					}
					refs = append(refs, ref{p: p, s: s, want: pts[23]})
				}
			}

			var wg sync.WaitGroup
			errc := make(chan string, workers)
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for r := 0; r < rounds; r++ {
						rf := refs[(w*7+r)%len(refs)]
						got, err := ev.BusPoint(rf.s, rf.p, costs, 24)
						if err != nil {
							errc <- err.Error()
							return
						}
						if got != rf.want {
							errc <- fmt.Sprintf("%s: point diverged under concurrency", rf.s.Name())
							return
						}
					}
				}(w)
			}
			wg.Wait()
			close(errc)
			for e := range errc {
				t.Error(e)
			}
			st := ev.Stats()
			if st.DemandSolves == 0 || st.MVASolves == 0 {
				t.Errorf("no solves recorded: %+v", st)
			}
			if cap > 0 {
				bound := ev.Capacity()
				if st.DemandEntries > bound || st.CurveEntries > bound {
					t.Errorf("capped evaluator exceeded bound %d: %+v", bound, st)
				}
			}
		})
	}
}

// TestEvaluatorCapBoundsEntries feeds a capped evaluator far more
// distinct workloads than its capacity and checks the caches stay within
// the (rounded) bound, evictions are counted, and an evicted key
// re-solves to a bit-identical answer — eviction may cost time, never
// correctness.
func TestEvaluatorCapBoundsEntries(t *testing.T) {
	const capacity = 64
	ev := NewEvaluatorCap(capacity)
	costs := core.BusCosts()
	const distinct = 4 * capacity
	for i := 0; i < distinct; i++ {
		if _, err := ev.BusPoint(core.Dragon{}, shdParams(t, i, distinct), costs, 8); err != nil {
			t.Fatal(err)
		}
	}
	st := ev.Stats()
	bound := ev.Capacity()
	if bound < capacity {
		t.Fatalf("Capacity() = %d < configured %d", bound, capacity)
	}
	if st.DemandEntries > bound {
		t.Errorf("demand entries %d exceed bound %d", st.DemandEntries, bound)
	}
	if st.CurveEntries > bound {
		t.Errorf("curve entries %d exceed bound %d", st.CurveEntries, bound)
	}
	if st.DemandEvictions == 0 || st.CurveEvictions == 0 {
		t.Errorf("feeding %d distinct keys into capacity %d evicted nothing: %+v",
			distinct, capacity, st)
	}
	// The first key is long evicted; re-querying must re-solve, not
	// corrupt.
	p := shdParams(t, 0, distinct)
	got, err := ev.BusPoint(core.Dragon{}, p, costs, 8)
	if err != nil {
		t.Fatal(err)
	}
	want, err := core.EvaluateBus(core.Dragon{}, p, costs, 8)
	if err != nil {
		t.Fatal(err)
	}
	if got != want[7] {
		t.Errorf("evicted key re-solved to %+v, want %+v", got, want[7])
	}
}

// TestEvaluatorCapRetainsHotKey checks the CLOCK policy actually uses
// its reference bits: a key re-read between every batch of cold inserts
// must survive sweeps that evict its cold neighbors. The capacity gives
// each shard several slots — with one slot per shard every insert must
// evict the only resident, reference bit or not.
func TestEvaluatorCapRetainsHotKey(t *testing.T) {
	const capacity = 4 * numShards
	ev := NewEvaluatorCap(capacity)
	costs := core.BusCosts()
	hot := core.MiddleParams()
	if _, err := ev.BusPoint(core.Base{}, hot, costs, 8); err != nil {
		t.Fatal(err)
	}
	const cold = 8 * capacity
	for i := 0; i < cold; i++ {
		if _, err := ev.BusPoint(core.Dragon{}, shdParams(t, i, cold), costs, 8); err != nil {
			t.Fatal(err)
		}
		// Touch the hot key so its reference bit is set whenever the
		// hand sweeps past.
		if _, err := ev.BusPoint(core.Base{}, hot, costs, 8); err != nil {
			t.Fatal(err)
		}
	}
	st := ev.Stats()
	if st.DemandSolves != uint64(cold)+1 {
		t.Errorf("hot key was evicted and re-solved: %d demand solves, want %d",
			st.DemandSolves, cold+1)
	}
}

// TestTableFingerprintContentShared is the pointer-keyed memo's
// regression test: two distinct *CostTable pointers with equal content
// must fingerprint to one demand-cache entry (one solve, one entry, two
// memoized pointers).
func TestTableFingerprintContentShared(t *testing.T) {
	ev := NewEvaluator()
	p := core.MiddleParams()
	t1, t2 := core.BusCosts(), core.BusCosts()
	if t1 == t2 {
		t.Fatal("BusCosts returned a shared pointer; test needs distinct ones")
	}
	d1, err := ev.Demand(core.Dragon{}, p, t1)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := ev.Demand(core.Dragon{}, p, t2)
	if err != nil {
		t.Fatal(err)
	}
	if d1 != d2 {
		t.Errorf("equal-content tables gave different demands: %+v vs %+v", d1, d2)
	}
	st := ev.Stats()
	if st.DemandSolves != 1 || st.DemandHits != 1 {
		t.Errorf("equal-content tables did not share one demand entry: %+v", st)
	}
	if st.DemandEntries != 1 {
		t.Errorf("DemandEntries = %d, want 1", st.DemandEntries)
	}
	if st.TableEntries != 2 {
		t.Errorf("TableEntries = %d, want 2 (both pointers memoized)", st.TableEntries)
	}
}
