package sweep

import (
	"context"
	"errors"
	"sort"
	"sync/atomic"
	"testing"

	"swcc/internal/core"
)

// denseLattice reproduces the exact set of axis values Refine could ever
// visit at the given resolution: the coarse grid plus every recursive
// midpoint down to minStep, computed with the same float arithmetic as
// refine.go so the values are bit-identical.
func denseLattice(from, to float64, coarse int, minStep float64) []float64 {
	xs := make([]float64, 0, coarse)
	for i := 0; i < coarse; i++ {
		xs = append(xs, from+(to-from)*float64(i)/float64(coarse-1))
	}
	for {
		var mids []float64
		for i := 0; i+1 < len(xs); i++ {
			if xs[i+1]-xs[i] > minStep {
				mids = append(mids, (xs[i]+xs[i+1])/2)
			}
		}
		if len(mids) == 0 {
			return xs
		}
		xs = append(xs, mids...)
		sort.Float64s(xs)
	}
}

// TestRefineMatchesDenseGrid is the tentpole acceptance pin: an adaptive
// refine over apl (the paper's Figures 8-9 axis, where Software-Flush
// overtakes Dragon) must (a) reproduce the dense grid's values
// bit-identically at every point it evaluates, (b) locate exactly the
// boundaries a dense scan of the full lattice finds, and (c) do it with
// at least 10x fewer demand solves, measured by evaluator Stats on fresh
// caches for each side.
func TestRefineMatchesDenseGrid(t *testing.T) {
	const (
		from, to = 1.0, 64.0
		coarse   = 9
		procs    = 16
	)
	minStep := (to - from) / 512
	schemes := []core.Scheme{core.SoftwareFlush{}, core.Dragon{}}
	base := core.MiddleParams()
	costs := core.BusCosts()

	// Dense side: every lattice value for every scheme, fresh cache.
	lattice := denseLattice(from, to, coarse, minStep)
	denseEng := New(0)
	var pts []Point
	for _, x := range lattice {
		p, err := base.With("apl", x)
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range schemes {
			pts = append(pts, Point{Scheme: s, Params: p, NProc: procs})
		}
	}
	denseRes := denseEng.EvaluateBus(pts, costs)
	if err := FirstError(denseRes); err != nil {
		t.Fatal(err)
	}
	type cell struct {
		power []float64
		best  int
	}
	dense := map[float64]cell{}
	for i, x := range lattice {
		c := cell{power: make([]float64, len(schemes))}
		for j := range schemes {
			c.power[j] = denseRes[i*len(schemes)+j].Bus.Power
			if c.power[j] > c.power[c.best] {
				c.best = j
			}
		}
		dense[x] = c
	}
	var denseBounds []Boundary
	for i := 0; i+1 < len(lattice); i++ {
		lo, hi := dense[lattice[i]], dense[lattice[i+1]]
		if lo.best != hi.best {
			denseBounds = append(denseBounds, Boundary{
				Lo: lattice[i], Hi: lattice[i+1], LoBest: lo.best, HiBest: hi.best,
			})
		}
	}
	if len(denseBounds) == 0 {
		t.Fatal("dense grid found no crossover; the scenario no longer exercises refinement")
	}

	// Refine side: fresh cache again, so Stats isolate its solve count.
	refineEng := New(0)
	res, err := refineEng.Refine(context.Background(), RefineSpec{
		Schemes: schemes, Base: base, Axis: "apl",
		From: from, To: to, Procs: procs, Coarse: coarse, MinStep: minStep,
	})
	if err != nil {
		t.Fatal(err)
	}

	// (a) bit-identical values at every evaluated point.
	for _, pt := range res.Points {
		want, ok := dense[pt.X]
		if !ok {
			t.Fatalf("refine evaluated x=%v, which is not on the dense lattice", pt.X)
		}
		for j := range schemes {
			if pt.Power[j] != want.power[j] {
				t.Errorf("x=%v scheme %s: refine power %v != dense power %v",
					pt.X, schemes[j].Name(), pt.Power[j], want.power[j])
			}
		}
		if pt.Best != want.best {
			t.Errorf("x=%v: refine winner %d != dense winner %d", pt.X, pt.Best, want.best)
		}
	}

	// (b) identical boundaries, at the dense lattice's own resolution.
	if len(res.Boundaries) != len(denseBounds) {
		t.Fatalf("refine found %d boundaries, dense grid found %d: %+v vs %+v",
			len(res.Boundaries), len(denseBounds), res.Boundaries, denseBounds)
	}
	for i, b := range res.Boundaries {
		if b != denseBounds[i] {
			t.Errorf("boundary %d: refine %+v != dense %+v", i, b, denseBounds[i])
		}
	}

	// (c) >= 10x fewer solves, both by cell count and by the evaluator's
	// own demand-solve counter (the costly part of an apl sweep: every
	// distinct apl is a fresh workload for Software-Flush).
	denseCells := len(lattice) * len(schemes)
	if res.Solves*10 > denseCells {
		t.Errorf("refine used %d cell solves; dense grid is %d (want >= 10x saving)", res.Solves, denseCells)
	}
	ds, rs := denseEng.Cache.Stats(), refineEng.Cache.Stats()
	if rs.DemandSolves*10 > ds.DemandSolves {
		t.Errorf("refine demand solves = %d, dense = %d (want >= 10x fewer)", rs.DemandSolves, ds.DemandSolves)
	}
	if res.Waves < 2 {
		t.Errorf("Waves = %d, want >= 2 (the coarse grid alone cannot reach minStep resolution)", res.Waves)
	}
}

// TestRefineProcsAxis pins the Figure 4-style machine-size crossover the
// tutorial walks through: near the apl tie point, Software-Flush wins
// small machines and Dragon wins large ones, and the procs axis
// subdivides on integers only, down to adjacent values.
func TestRefineProcsAxis(t *testing.T) {
	base, err := core.MiddleParams().With("apl", 20)
	if err != nil {
		t.Fatal(err)
	}
	res, err := New(0).Refine(context.Background(), RefineSpec{
		Schemes: []core.Scheme{core.SoftwareFlush{}, core.Dragon{}},
		Base:    base, Axis: AxisProcs, From: 1, To: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, pt := range res.Points {
		if pt.X != float64(int(pt.X)) {
			t.Errorf("procs axis evaluated non-integer x=%v", pt.X)
		}
	}
	if len(res.Boundaries) != 1 {
		t.Fatalf("boundaries = %+v, want exactly one", res.Boundaries)
	}
	b := res.Boundaries[0]
	if b.Hi != b.Lo+1 {
		t.Errorf("procs boundary [%g, %g] not refined to adjacent integers", b.Lo, b.Hi)
	}
	if b != (Boundary{Lo: 7, Hi: 8, LoBest: 0, HiBest: 1}) {
		t.Errorf("boundary = %+v, want Software-Flush -> Dragon between 7 and 8", b)
	}
	if res.Solves >= 2*64 {
		t.Errorf("refine used %d cell solves, no better than the 128-cell dense grid", res.Solves)
	}
}

// TestRefineOnWave checks the streaming hook: every evaluated point is
// delivered exactly once, the first wave is the coarse grid, and an
// OnWave error aborts the search.
func TestRefineOnWave(t *testing.T) {
	base, err := core.MiddleParams().With("apl", 20)
	if err != nil {
		t.Fatal(err)
	}
	spec := RefineSpec{
		Schemes: []core.Scheme{core.SoftwareFlush{}, core.Dragon{}},
		Base:    base, Axis: AxisProcs, From: 1, To: 64, Coarse: 5,
	}
	var waves [][]RefinePoint
	spec.OnWave = func(ctx context.Context, pts []RefinePoint) error {
		cp := make([]RefinePoint, len(pts))
		copy(cp, pts)
		waves = append(waves, cp)
		return nil
	}
	res, err := New(0).Refine(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(waves) != res.Waves {
		t.Errorf("OnWave fired %d times, Waves = %d", len(waves), res.Waves)
	}
	if len(waves[0]) != 5 {
		t.Errorf("first wave delivered %d points, want the 5-point coarse grid", len(waves[0]))
	}
	total := 0
	for _, w := range waves {
		total += len(w)
	}
	if total != len(res.Points) {
		t.Errorf("waves delivered %d points total, result has %d", total, len(res.Points))
	}

	boom := errors.New("sink full")
	spec.OnWave = func(context.Context, []RefinePoint) error { return boom }
	if _, err := New(0).Refine(context.Background(), spec); !errors.Is(err, boom) {
		t.Errorf("OnWave error not propagated: %v", err)
	}
}

// TestRefineValidation covers the spec errors.
func TestRefineValidation(t *testing.T) {
	eng := New(0)
	base := core.MiddleParams()
	cases := []struct {
		name string
		spec RefineSpec
	}{
		{"one scheme", RefineSpec{Schemes: []core.Scheme{core.Base{}}, Base: base, Axis: AxisProcs, From: 1, To: 8}},
		{"empty range", RefineSpec{Schemes: []core.Scheme{core.Base{}, core.Dragon{}}, Base: base, Axis: AxisProcs, From: 8, To: 8}},
		{"bad axis", RefineSpec{Schemes: []core.Scheme{core.Base{}, core.Dragon{}}, Base: base, Axis: "nope", From: 1, To: 8}},
		{"fractional procs", RefineSpec{Schemes: []core.Scheme{core.Base{}, core.Dragon{}}, Base: base, Axis: AxisProcs, From: 1.5, To: 8}},
	}
	for _, tc := range cases {
		if _, err := eng.Refine(context.Background(), tc.spec); err == nil {
			t.Errorf("%s: no error", tc.name)
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := eng.Refine(ctx, RefineSpec{
		Schemes: []core.Scheme{core.SoftwareFlush{}, core.Dragon{}},
		Base:    base, Axis: AxisProcs, From: 1, To: 64,
	}); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled refine returned %v, want context.Canceled", err)
	}
}

// cancellingScheme delegates to a real scheme but fires cancel on the
// k-th Frequencies call, simulating a SIGINT landing mid-grid. Its
// distinct name keeps it out of the built-in canonicalization tables, so
// every distinct workload is a distinct demand solve.
type cancellingScheme struct {
	inner  core.Scheme
	calls  *atomic.Int64
	at     int64
	cancel context.CancelFunc
}

func (s cancellingScheme) Name() string { return "cancelling-" + s.inner.Name() }

func (s cancellingScheme) Frequencies(p core.Params) ([]core.OpFreq, error) {
	if s.calls.Add(1) == s.at {
		s.cancel()
	}
	return s.inner.Frequencies(p)
}

// TestEvaluateBusCtxCancelSkipsSolves pins the satellite fix: a grid
// interrupted mid-solve must do strictly fewer demand solves than the
// full grid, and the unsolved cells must report the context error.
// Before EvaluateBus threaded the caller's context, the whole grid
// always solved to completion (the old hardwired context.Background()).
func TestEvaluateBusCtxCancelSkipsSolves(t *testing.T) {
	const n = 20
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var calls atomic.Int64
	scheme := cancellingScheme{inner: core.SoftwareFlush{}, calls: &calls, at: 2, cancel: cancel}

	ev := NewEvaluator()
	eng := &Engine{Workers: 1, Cache: ev}
	base := core.MiddleParams()
	points := make([]Point, n)
	for i := range points {
		p, err := base.With("apl", float64(i+1))
		if err != nil {
			t.Fatal(err)
		}
		points[i] = Point{Scheme: scheme, Params: p, NProc: 8}
	}
	results := eng.EvaluateBusCtx(ctx, points, core.BusCosts())

	solved, cancelled := 0, 0
	for i, r := range results {
		if r.Point.Scheme == nil {
			t.Fatalf("result %d has no Point stamped", i)
		}
		switch {
		case r.Err == nil:
			solved++
		case errors.Is(r.Err, context.Canceled):
			cancelled++
		default:
			t.Errorf("result %d: unexpected error %v", i, r.Err)
		}
	}
	st := ev.Stats()
	if st.DemandSolves >= n {
		t.Errorf("DemandSolves = %d, want strictly fewer than the %d-cell grid", st.DemandSolves, n)
	}
	if st.DemandSolves < 1 || solved < 1 {
		t.Errorf("nothing solved before the cancel (solves=%d, ok results=%d); the test lost its race", st.DemandSolves, solved)
	}
	if cancelled < n/2 {
		t.Errorf("only %d of %d cells report context.Canceled", cancelled, n)
	}
}
