//go:build !race

// Allocation pins live behind !race: the race detector's instrumentation
// changes allocation behavior enough to make testing.AllocsPerRun counts
// unreliable, so `go test -race` (the make-check default) skips these and
// `make alloc-check` runs them without instrumentation.

package sweep

import (
	"context"
	"testing"

	"swcc/internal/core"
)

// TestBusPointWarmPathAllocFree pins the tentpole number: a warm
// (demand-hit, curve-hit) BusPoint query allocates nothing, for every
// paper scheme. Hybrid is excluded — its schemeKey goes through
// fmt.Sprintf by design (configured schemes pay for their Stringer).
func TestBusPointWarmPathAllocFree(t *testing.T) {
	costs := core.BusCosts()
	p := core.MiddleParams()
	ev := NewEvaluator()
	for _, s := range core.PaperSchemes() {
		if _, err := ev.BusPoint(s, p, costs, 64); err != nil {
			t.Fatal(err)
		}
	}
	for _, s := range core.PaperSchemes() {
		s := s
		var err error
		if avg := testing.AllocsPerRun(200, func() {
			_, err = ev.BusPoint(s, p, costs, 64)
		}); avg != 0 {
			t.Errorf("%s: warm BusPoint allocates %.1f/op, want 0", s.Name(), avg)
		}
		if err != nil {
			t.Fatal(err)
		}
	}
}

// TestEvaluateBusIntoWarmAllocFree: the full-curve path is also
// allocation-free when the caller provides the result buffer.
func TestEvaluateBusIntoWarmAllocFree(t *testing.T) {
	costs := core.BusCosts()
	p := core.MiddleParams()
	ev := NewEvaluator()
	ctx := context.Background()
	if _, err := ev.EvaluateBus(core.Base{}, p, costs, 64); err != nil {
		t.Fatal(err)
	}
	dst := make([]core.BusPoint, 0, 64)
	var err error
	if avg := testing.AllocsPerRun(200, func() {
		_, err = ev.EvaluateBusIntoCtx(ctx, core.Base{}, p, costs, 64, dst)
	}); avg != 0 {
		t.Errorf("warm EvaluateBusIntoCtx allocates %.1f/op, want 0", avg)
	}
	if err != nil {
		t.Fatal(err)
	}
}

// TestWarmExtendAllocBudget bounds the miss path that matters most
// after the incremental kernel: extending a resident curve. One extend
// costs the new backing array, the singleflight bookkeeping, and cache
// publication — a handful of allocations, independent of how many
// populations the extension adds. The budget is a tripwire against
// quietly reintroducing per-population or per-point allocations.
func TestWarmExtendAllocBudget(t *testing.T) {
	costs := core.BusCosts()
	p := core.MiddleParams()
	ev := NewEvaluator()
	if _, err := ev.BusPoint(core.Base{}, p, costs, 8); err != nil {
		t.Fatal(err)
	}
	n := 8
	var err error
	avg := testing.AllocsPerRun(100, func() {
		n += 8
		_, err = ev.BusPoint(core.Base{}, p, costs, n)
	})
	if err != nil {
		t.Fatal(err)
	}
	const budget = 12
	if avg > budget {
		t.Errorf("warm extend allocates %.1f/op, budget %d", avg, budget)
	}
}
