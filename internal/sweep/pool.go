package sweep

import (
	"sync"

	"swcc/internal/core"
	"swcc/internal/queueing"
)

// Length-bucketed slice pools for the hot batch paths. A sweep batch
// churns through short-lived result slices whose lengths vary with the
// requested machine size; a single sync.Pool would hand a 4096-point
// buffer to a 4-point request (wasting cache lines) or the reverse
// (forcing reallocation). Bucketing by power-of-two capacity keeps
// reuse high across mixed batch shapes.

// poolMinShift is the smallest class capacity (1<<poolMinShift); smaller
// requests round up. poolClasses spans capacities up to 1<<18, past the
// server's MaxProcs and batch caps, so every legal request has a class.
const (
	poolMinShift = 3
	poolClasses  = 16
)

// classFor returns the smallest class whose capacity covers n, or -1
// when n exceeds the largest class (the caller then allocates directly;
// such slices are never pooled).
func classFor(n int) int {
	c := 0
	for n > 1<<(poolMinShift+c) {
		c++
		if c >= poolClasses {
			return -1
		}
	}
	return c
}

// SlicePool is a set of sync.Pools bucketed by power-of-two capacity.
// It stores *[]T (not []T) so Put never boxes a slice header into a
// fresh allocation. The zero value is ready to use. Buffers released to
// the pool are cleared, so pooling never pins a finished request's data.
type SlicePool[T any] struct {
	classes [poolClasses]sync.Pool
}

// Acquire returns a *[]T of length n whose capacity is the class size.
// The contents are zeroed (fresh or recycled alike). Pass the same
// pointer to Release when the slice is no longer referenced.
func (p *SlicePool[T]) Acquire(n int) *[]T {
	c := classFor(n)
	if c < 0 {
		s := make([]T, n)
		return &s
	}
	if v := p.classes[c].Get(); v != nil {
		s := v.(*[]T)
		*s = (*s)[:n]
		return s
	}
	s := make([]T, n, 1<<(poolMinShift+c))
	return &s
}

// Release returns a slice to its class. Slices whose capacity is not an
// exact class size (including oversized direct allocations) are dropped
// for the GC. The slice is cleared first so pooled memory never pins
// result data or interface values from a finished request.
func (p *SlicePool[T]) Release(s *[]T) {
	if s == nil {
		return
	}
	c := classFor(cap(*s))
	if c < 0 || cap(*s) != 1<<(poolMinShift+c) {
		return
	}
	*s = (*s)[:cap(*s)]
	clear(*s)
	*s = (*s)[:0]
	p.classes[c].Put(s)
}

var (
	busPointPool SlicePool[core.BusPoint]
	curveBufPool SlicePool[queueing.SingleServerResult]
	resultPool   SlicePool[Result]
)

// AcquirePoints returns a pooled []core.BusPoint of length n. Pass the
// returned pointer to ReleasePoints when the slice is no longer
// referenced (after encoding a response, not before). The slice must not
// be retained past release.
func AcquirePoints(n int) *[]core.BusPoint { return busPointPool.Acquire(n) }

// ReleasePoints returns a buffer obtained from AcquirePoints to the pool.
func ReleasePoints(s *[]core.BusPoint) { busPointPool.Release(s) }

// AcquireResults returns a pooled []Result of length n; release with
// ReleaseResults under the same rules as AcquirePoints.
func AcquireResults(n int) *[]Result { return resultPool.Acquire(n) }

// ReleaseResults returns a buffer obtained from AcquireResults to the
// pool.
func ReleaseResults(s *[]Result) { resultPool.Release(s) }
