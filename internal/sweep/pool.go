package sweep

import (
	"sync"
	"sync/atomic"

	"swcc/internal/core"
	"swcc/internal/queueing"
)

// Length-bucketed slice pools for the hot batch paths. A sweep batch
// churns through short-lived result slices whose lengths vary with the
// requested machine size; a single sync.Pool would hand a 4096-point
// buffer to a 4-point request (wasting cache lines) or the reverse
// (forcing reallocation). Bucketing by power-of-two capacity keeps
// reuse high across mixed batch shapes.

// poolMinShift is the smallest class capacity (1<<poolMinShift); smaller
// requests round up. poolClasses spans capacities up to 1<<18, past the
// server's MaxProcs and batch caps, so every legal request has a class.
const (
	poolMinShift = 3
	poolClasses  = 16
)

// classFor returns the smallest class whose capacity covers n, or -1
// when n exceeds the largest class (the caller then allocates directly;
// such slices are never pooled).
func classFor(n int) int {
	c := 0
	for n > 1<<(poolMinShift+c) {
		c++
		if c >= poolClasses {
			return -1
		}
	}
	return c
}

// SlicePool is a set of sync.Pools bucketed by power-of-two capacity.
// It stores *[]T (not []T) so Put never boxes a slice header into a
// fresh allocation. The zero value is ready to use. Buffers released to
// the pool are cleared, so pooling never pins a finished request's data.
type SlicePool[T any] struct {
	classes [poolClasses]sync.Pool

	// acquires and releases count every Acquire and every non-nil Release
	// call — including slices too large for any class, which are counted
	// even though they bypass the sync.Pools. For a pool whose buffers are
	// strictly request-scoped (busPointPool, serve's response pool) the
	// difference is the number of buffers currently checked out, so
	// "acquires == releases at quiescence" is the no-leak invariant the
	// fault-injection tests assert. It does NOT hold for curveBufPool,
	// whose published curves are deliberately retained by the shared cache.
	acquires atomic.Uint64
	releases atomic.Uint64
}

// Accounting returns the lifetime Acquire and Release call counts. See
// the field comment for which pools the balance invariant applies to.
func (p *SlicePool[T]) Accounting() (acquires, releases uint64) {
	return p.acquires.Load(), p.releases.Load()
}

// Acquire returns a *[]T of length n whose capacity is the class size.
// The contents are zeroed (fresh or recycled alike). Pass the same
// pointer to Release when the slice is no longer referenced.
func (p *SlicePool[T]) Acquire(n int) *[]T {
	p.acquires.Add(1)
	c := classFor(n)
	if c < 0 {
		s := make([]T, n)
		return &s
	}
	if v := p.classes[c].Get(); v != nil {
		s := v.(*[]T)
		*s = (*s)[:n]
		return s
	}
	s := make([]T, n, 1<<(poolMinShift+c))
	return &s
}

// Release returns a slice to its class. Slices whose capacity is not an
// exact class size (including oversized direct allocations) are dropped
// for the GC. The slice is cleared first so pooled memory never pins
// result data or interface values from a finished request.
func (p *SlicePool[T]) Release(s *[]T) {
	if s == nil {
		return
	}
	p.releases.Add(1)
	c := classFor(cap(*s))
	if c < 0 || cap(*s) != 1<<(poolMinShift+c) {
		return
	}
	*s = (*s)[:cap(*s)]
	clear(*s)
	*s = (*s)[:0]
	p.classes[c].Put(s)
}

var (
	busPointPool SlicePool[core.BusPoint]
	curveBufPool SlicePool[queueing.SingleServerResult]
	resultPool   SlicePool[Result]
)

// AcquirePoints returns a pooled []core.BusPoint of length n. Pass the
// returned pointer to ReleasePoints when the slice is no longer
// referenced (after encoding a response, not before). The slice must not
// be retained past release.
func AcquirePoints(n int) *[]core.BusPoint { return busPointPool.Acquire(n) }

// ReleasePoints returns a buffer obtained from AcquirePoints to the pool.
func ReleasePoints(s *[]core.BusPoint) { busPointPool.Release(s) }

// AcquireResults returns a pooled []Result of length n; release with
// ReleaseResults under the same rules as AcquirePoints.
func AcquireResults(n int) *[]Result { return resultPool.Acquire(n) }

// ReleaseResults returns a buffer obtained from AcquireResults to the
// pool.
func ReleaseResults(s *[]Result) { resultPool.Release(s) }

// PointPoolAccounting exposes the shared bus-point pool's acquire and
// release counts. The pool's buffers are strictly request-scoped, so at
// quiescence acquires-releases is the number of leaked buffers — the
// chaos and fault-injection smokes assert it stays zero even with
// panics injected per grid point.
func PointPoolAccounting() (acquires, releases uint64) { return busPointPool.Accounting() }
