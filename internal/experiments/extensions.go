package experiments

import (
	"context"
	"fmt"

	"swcc/internal/core"
	"swcc/internal/netsim"
	"swcc/internal/plot"
	"swcc/internal/queueing"
	"swcc/internal/report"
	"swcc/internal/sweep"
)

func init() {
	register(Spec{ID: "hybrid", Paper: "Extension (Sec. 2.2.3)", Title: "Elxsi/MultiTitan-style hybrid: uncached locks + flushed shared data", Run: runHybrid})
	register(Spec{ID: "netmva", Paper: "Extension (footnote 2)", Title: "Network contention: Patel fixed point vs load-dependent MVA", Run: runNetMVA})
	register(Spec{ID: "crossover", Paper: "Extension (Sec. 5.3)", Title: "apl needed for Software-Flush to match Dragon / No-Cache", Run: runCrossover})
	register(Spec{ID: "patel", Paper: "Extension (Sec. 6.2 gap)", Title: "Patel network model validated against cycle-level simulation", Run: runPatelValidation})
	register(Spec{ID: "packetsim", Paper: "Extension (Sec. 7)", Title: "Packet-switched model validated against cycle-level simulation", Run: runPacketValidation})
}

func runPacketValidation(ctx context.Context, opt Options) (*Dataset, error) {
	const stages = 6
	cycles := int(250_000 * opt.traceScale())
	if cycles < 20_000 {
		cycles = 20_000
	}
	ds := &Dataset{
		ID:     "packetsim",
		Title:  "Buffered packet-switched network: M/M/1-per-stage model vs cycle-level simulation (64 ports, 4-packet messages)",
		XLabel: "transaction rate per processor (1/think)",
		YLabel: "one-way latency (cycles)",
	}
	simSeries := plot.Series{Name: "sim latency"}
	modelSeries := plot.Series{Name: "model latency"}
	tab := &report.Table{Header: []string{"think", "sim latency", "model latency", "sim thinking frac"}}
	bn := queueing.BufferedNetwork{Stages: stages}
	for _, think := range []float64{400, 200, 100, 60, 40, 25} {
		sim, err := netsim.RunBuffered(netsim.BufferedConfig{
			Stages: stages, Think: think, Packets: 4,
			Cycles: cycles, WarmupCycles: cycles / 10, Seed: 0xBEEF,
		})
		if err != nil {
			return nil, err
		}
		model, err := bn.SolveBuffered(think+4, 1/think, 4)
		if err != nil {
			return nil, err
		}
		rate := 1 / think
		simSeries.X = append(simSeries.X, rate)
		simSeries.Y = append(simSeries.Y, sim.MeanLatency)
		modelSeries.X = append(modelSeries.X, rate)
		modelSeries.Y = append(modelSeries.Y, model.Latency)
		tab.AddRow(report.FormatFloat(think),
			fmt.Sprintf("%.2f", sim.MeanLatency), fmt.Sprintf("%.2f", model.Latency),
			fmt.Sprintf("%.3f", sim.ThinkingFraction))
	}
	ds.Series = []plot.Series{simSeries, modelSeries}
	ds.Table = tab
	ds.Notes = append(ds.Notes,
		"validates the Section 7 packet-switching extension the way the `patel` experiment validates the circuit model; the coarser M/M/1 approximation tracks within ~20%")
	return ds, nil
}

func runPatelValidation(ctx context.Context, opt Options) (*Dataset, error) {
	const stages = 6 // 64 processors
	cycles := int(300_000 * opt.traceScale())
	if cycles < 20_000 {
		cycles = 20_000
	}
	ds := &Dataset{
		ID:     "patel",
		Title:  "Patel fixed point vs cycle-level circuit-switched simulation (64 processors, 16-cycle circuits)",
		XLabel: "transaction rate per processor (1/think)",
		YLabel: "processor utilization",
	}
	simSeries := plot.Series{Name: "simulation"}
	modelSeries := plot.Series{Name: "Patel model"}
	tab := &report.Table{Header: []string{"think", "rate", "sim U", "±95% CI", "model U", "sim acceptance"}}
	pn := queueing.NewPatelNetwork(stages)
	for _, think := range []float64{500, 250, 120, 60, 30, 15} {
		sim, err := netsim.Run(netsim.Config{
			Stages: stages, Think: think, Hold: 16,
			Cycles: cycles, WarmupCycles: cycles / 10, Seed: 0xA5,
		})
		if err != nil {
			return nil, err
		}
		model, err := pn.SolvePatel(1/think, 16)
		if err != nil {
			return nil, err
		}
		rate := 1 / think
		simSeries.X = append(simSeries.X, rate)
		simSeries.Y = append(simSeries.Y, sim.Utilization)
		modelSeries.X = append(modelSeries.X, rate)
		modelSeries.Y = append(modelSeries.Y, model.Utilization)
		tab.AddRow(report.FormatFloat(think), fmt.Sprintf("%.4f", rate),
			fmt.Sprintf("%.3f", sim.Utilization), fmt.Sprintf("%.4f", sim.UtilizationCI95),
			fmt.Sprintf("%.3f", model.Utilization), fmt.Sprintf("%.3f", sim.Acceptance))
	}
	ds.Series = []plot.Series{simSeries, modelSeries}
	ds.Table = tab
	ds.Notes = append(ds.Notes,
		`the paper: "We are not aware of any validation of this model against multiprocessor traces" — this experiment supplies the synthetic-workload validation`)
	return ds, nil
}

func runHybrid(ctx context.Context, opt Options) (*Dataset, error) {
	nproc := opt.maxProcs(16)
	ds := &Dataset{
		ID:     "hybrid",
		Title:  fmt.Sprintf("Hybrid coherence (No-Cache locks + Software-Flush data), %d-processor bus", nproc),
		XLabel: "lock fraction of shared references",
		YLabel: "processing power",
	}
	p := core.MiddleParams()
	tab := &report.Table{Header: []string{"lock frac", "power", "vs all-flush", "vs all-nocache"}}
	sf, err := busEval.BusPower(core.SoftwareFlush{}, p, core.BusCosts(), nproc)
	if err != nil {
		return nil, err
	}
	nc, err := busEval.BusPower(core.NoCache{}, p, core.BusCosts(), nproc)
	if err != nil {
		return nil, err
	}
	sr := plot.Series{Name: "Hybrid"}
	for lf := 0.0; lf <= 1.0001; lf += 0.1 {
		pw, err := busEval.BusPower(core.Hybrid{LockFrac: lf}, p, core.BusCosts(), nproc)
		if err != nil {
			return nil, err
		}
		sr.X = append(sr.X, lf)
		sr.Y = append(sr.Y, pw)
		tab.AddRow(fmt.Sprintf("%.1f", lf), fmt.Sprintf("%.3f", pw),
			fmt.Sprintf("%+.1f%%", 100*(pw-sf)/sf), fmt.Sprintf("%+.1f%%", 100*(pw-nc)/nc))
	}
	ds.Series = []plot.Series{sr}
	ds.Table = tab
	ds.Notes = append(ds.Notes,
		"lock=0 is pure Software-Flush, lock=1 pure No-Cache (the MultiTitan keeps locks uncached because flushing a lock buys apl~1)")
	return ds, nil
}

func runNetMVA(context.Context, Options) (*Dataset, error) {
	ds := &Dataset{
		ID:     "netmva",
		Title:  "Two network contention models (256 processors): retrying circuit switch (Patel) vs queued load-dependent server (MVA)",
		XLabel: "workload range",
		YLabel: "processing power",
	}
	tab := &report.Table{Header: []string{"scheme", "range", "Patel power", "MVA power", "ratio"}}
	for _, s := range []core.Scheme{core.Base{}, core.SoftwareFlush{}, core.NoCache{}} {
		for _, l := range core.Levels() {
			p := core.ParamsAt(l)
			patel, err := core.EvaluateNetworkAt(s, p, 8)
			if err != nil {
				return nil, err
			}
			mva, err := core.EvaluateNetworkMVA(s, p, 8)
			if err != nil {
				return nil, err
			}
			tab.AddRow(s.Name(), l.String(),
				report.FormatFloat(round3(patel.Power)), report.FormatFloat(round3(mva.Power)),
				fmt.Sprintf("%.2f", mva.Power/patel.Power))
		}
	}
	ds.Table = tab
	ds.Notes = append(ds.Notes,
		"the paper's footnote 2 sketches the load-dependent-server formulation; queueing blocked requests instead of dropping and retrying them is mildly more optimistic, but the two models share light-load and saturation behavior")
	return ds, nil
}

func runCrossover(ctx context.Context, opt Options) (*Dataset, error) {
	nproc := opt.maxProcs(16)
	ds := &Dataset{
		ID:    "crossover",
		Title: fmt.Sprintf("apl Software-Flush needs to match its competitors (%d-processor bus)", nproc),
	}
	tab := &report.Table{Header: []string{"shd", "apl to match No-Cache", "apl to match Dragon"}}
	// Each shd row runs two bisections; the rows are independent, so they
	// run in parallel, each routed through the shared cache (the Dragon
	// and No-Cache target powers recur across all rows and solve once).
	shds := []float64{0.08, 0.15, 0.25, 0.35, 0.42}
	rows := make([][3]string, len(shds))
	if err := sweep.Each(0, len(shds), func(i int) error {
		shd := shds[i]
		p, err := core.MiddleParams().With("shd", shd)
		if err != nil {
			return err
		}
		fmtApl := func(target core.Scheme) (string, error) {
			apl, found, err := core.APLToMatchWith(busEval, target, p, core.BusCosts(), nproc)
			if err != nil {
				return "", err
			}
			if !found {
				return "never", nil
			}
			return fmt.Sprintf("%.1f", apl), nil
		}
		vsNC, err := fmtApl(core.NoCache{})
		if err != nil {
			return err
		}
		vsDragon, err := fmtApl(core.Dragon{})
		if err != nil {
			return err
		}
		rows[i] = [3]string{fmt.Sprintf("%.2f", shd), vsNC, vsDragon}
		return nil
	}); err != nil {
		return nil, err
	}
	for _, r := range rows {
		tab.AddRow(r[0], r[1], r[2])
	}
	ds.Table = tab
	ds.Notes = append(ds.Notes,
		"the paper's closing worry quantified: migratory data yields apl~2 regardless of compiler quality — compare that against the Dragon column")
	return ds, nil
}
