package experiments

import (
	"context"
	"errors"
	"math"
	"strings"
	"testing"
)

// fastOpts keeps validation traces short so the whole registry runs in
// seconds.
var fastOpts = Options{TraceScale: 0.25}

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"table1", "table2", "table3", "table7", "table8", "table9",
		"fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11",
		"packet", "directory",
	}
	for _, id := range want {
		if _, err := ByID(id); err != nil {
			t.Errorf("missing experiment %q: %v", id, err)
		}
	}
	if len(All()) < len(want) {
		t.Errorf("registry has %d experiments, want >= %d", len(All()), len(want))
	}
}

func TestAllOrdering(t *testing.T) {
	specs := All()
	// fig2 must come before fig10 (numeric, not lexicographic).
	pos := map[string]int{}
	for i, s := range specs {
		pos[s.ID] = i
	}
	if pos["fig2"] > pos["fig10"] {
		t.Error("figures not numerically ordered")
	}
	if pos["fig1"] > pos["fig2"] {
		t.Error("fig1 after fig2")
	}
}

func TestByIDUnknown(t *testing.T) {
	_, err := ByID("fig99")
	if !errors.Is(err, ErrUnknownExperiment) {
		t.Errorf("want ErrUnknownExperiment, got %v", err)
	}
	if !strings.Contains(err.Error(), "fig4") {
		t.Error("error should list available IDs")
	}
}

// TestEveryExperimentRunsAndRenders is the registry-wide integration
// test: every experiment must produce a renderable dataset with finite
// data.
func TestEveryExperimentRunsAndRenders(t *testing.T) {
	for _, spec := range All() {
		spec := spec
		t.Run(spec.ID, func(t *testing.T) {
			ds, err := spec.Run(context.Background(), fastOpts)
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			if ds.ID != spec.ID {
				t.Errorf("dataset id %q != spec id %q", ds.ID, spec.ID)
			}
			if len(ds.Series) == 0 && ds.Table == nil {
				t.Fatal("dataset has neither series nor table")
			}
			for _, s := range ds.Series {
				if len(s.X) != len(s.Y) {
					t.Errorf("series %q length mismatch", s.Name)
				}
				for i := range s.Y {
					if math.IsNaN(s.Y[i]) || math.IsInf(s.Y[i], 0) {
						t.Errorf("series %q has non-finite y[%d]", s.Name, i)
					}
				}
			}
			out, err := ds.Render()
			if err != nil {
				t.Fatalf("render: %v", err)
			}
			if len(out) < 40 {
				t.Errorf("suspiciously short rendering: %q", out)
			}
		})
	}
}

func TestFig5ShapeMatchesPaper(t *testing.T) {
	ds, err := Run("fig5", Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Series: Ideal, Base, Dragon, Software-Flush, No-Cache.
	if len(ds.Series) != 5 {
		t.Fatalf("got %d series", len(ds.Series))
	}
	byName := map[string][]float64{}
	for _, s := range ds.Series {
		byName[s.Name] = s.Y
	}
	base, dragon := byName["Base"], byName["Dragon"]
	sf, nc := byName["Software-Flush"], byName["No-Cache"]
	last := len(base) - 1
	if !(base[last] >= dragon[last] && dragon[last] > sf[last] && sf[last] > nc[last]) {
		t.Errorf("16-proc ordering wrong: base=%.2f dragon=%.2f sf=%.2f nc=%.2f",
			base[last], dragon[last], sf[last], nc[last])
	}
	// Paper: with medium values Dragon performs very well even at 16.
	if dragon[last] < 10 {
		t.Errorf("Dragon power at 16 = %.2f, expected strong (>10)", dragon[last])
	}
}

func TestFig6SaturationAnchors(t *testing.T) {
	ds, err := Run("fig6", Options{MaxProcessors: 32})
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string][]float64{}
	for _, s := range ds.Series {
		byName[s.Name] = s.Y
	}
	nc := byName["No-Cache"]
	sf := byName["Software-Flush"]
	if nc[len(nc)-1] >= 2 {
		t.Errorf("No-Cache high-load saturation %.2f, paper says < 2", nc[len(nc)-1])
	}
	if sf[len(sf)-1] >= 5 {
		t.Errorf("Software-Flush high-load saturation %.2f, paper says < 5", sf[len(sf)-1])
	}
}

func TestFig7APLOrdering(t *testing.T) {
	ds, err := Run("fig7", Options{})
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string][]float64{}
	for _, s := range ds.Series {
		byName[s.Name] = s.Y
	}
	last := len(byName["No-Cache"]) - 1
	if byName["SF apl=1"][last] >= byName["No-Cache"][last] {
		t.Error("SF at apl=1 should fall below No-Cache")
	}
	if byName["SF apl=100"][last] <= byName["Dragon"][last] {
		t.Error("SF at apl=100 should beat Dragon")
	}
	// Monotone in apl.
	apls := []string{"SF apl=1", "SF apl=2", "SF apl=4", "SF apl=8", "SF apl=25", "SF apl=100"}
	for i := 1; i < len(apls); i++ {
		if byName[apls[i]][last] < byName[apls[i-1]][last] {
			t.Errorf("%s below %s", apls[i], apls[i-1])
		}
	}
}

func TestFig1ModelTracksSimulation(t *testing.T) {
	ds, err := Run("fig1", Options{TraceScale: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string][]float64{}
	for _, s := range ds.Series {
		byName[s.Name] = s.Y
	}
	for _, scheme := range []string{"Base", "Dragon"} {
		simY := byName[scheme+" sim"]
		modY := byName[scheme+" model"]
		if len(simY) != 4 || len(modY) != 4 {
			t.Fatalf("%s: expected 4 machine sizes", scheme)
		}
		for i := range simY {
			relErr := math.Abs(simY[i]-modY[i]) / simY[i]
			if relErr > 0.15 {
				t.Errorf("%s n=%d: sim %.3f vs model %.3f (%.0f%% off)",
					scheme, i+1, simY[i], modY[i], relErr*100)
			}
		}
	}
}

// TestValidationRobustAcrossSeeds guards against the validation story
// being an artifact of one lucky trace: with entirely different random
// traces the model must still track the simulation.
func TestValidationRobustAcrossSeeds(t *testing.T) {
	for _, seed := range []uint64{0x1111, 0x2222, 0x3333} {
		ds, err := Run("fig1", Options{TraceScale: 0.35, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		byName := map[string][]float64{}
		for _, s := range ds.Series {
			byName[s.Name] = s.Y
		}
		for _, scheme := range []string{"Base", "Dragon"} {
			simY, modY := byName[scheme+" sim"], byName[scheme+" model"]
			for i := range simY {
				rel := math.Abs(simY[i]-modY[i]) / simY[i]
				if rel > 0.15 {
					t.Errorf("seed %#x %s n=%d: sim %.3f vs model %.3f (%.0f%%)",
						seed, scheme, i+1, simY[i], modY[i], rel*100)
				}
			}
		}
	}
}

func TestFig2LargerCachesMorePower(t *testing.T) {
	ds, err := Run("fig2", Options{TraceScale: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string][]float64{}
	for _, s := range ds.Series {
		byName[s.Name] = s.Y
	}
	// At 4 processors, larger caches must simulate at least as fast.
	s16 := byName["16K sim"]
	s256 := byName["256K sim"]
	if s256[3] < s16[3]*0.98 {
		t.Errorf("256K power %.3f below 16K %.3f at 4 procs", s256[3], s16[3])
	}
}

func TestFig11TwoClasses(t *testing.T) {
	ds, err := Run("fig11", Options{})
	if err != nil {
		t.Fatal(err)
	}
	util := map[string]float64{}
	for _, s := range ds.Series {
		if len(s.Y) == 1 {
			util[s.Name] = s.Y[0]
		}
	}
	if len(util) != 9 {
		t.Fatalf("got %d marked points, want 9", len(util))
	}
	good := []string{"Bl", "Bm", "Bh", "Sl", "Sm", "Nl"}
	poor := []string{"Sh", "Nm", "Nh"}
	for _, g := range good {
		for _, p := range poor {
			if util[g] <= util[p] {
				t.Errorf("class violation: %s (%.3f) <= %s (%.3f)", g, util[g], p, util[p])
			}
		}
	}
}

func TestBlockSizeModelTracksSimulation(t *testing.T) {
	ds, err := Run("blocksize", Options{TraceScale: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string][]float64{}
	for _, s := range ds.Series {
		byName[s.Name] = s.Y
	}
	sim := byName["simulation"]
	model := byName["model (measured rates)"]
	if len(sim) != 5 || len(model) != 5 {
		t.Fatalf("series lengths %d/%d", len(sim), len(model))
	}
	for i := range sim {
		rel := (sim[i] - model[i]) / sim[i]
		if rel < 0 {
			rel = -rel
		}
		if rel > 0.15 {
			t.Errorf("point %d: sim %.3f vs model %.3f (%.0f%% apart)", i, sim[i], model[i], rel*100)
		}
	}
	if sim[4] >= sim[0] {
		t.Error("block-granular workload: power should fall as blocks grow")
	}
}

func TestFig10SimCrossover(t *testing.T) {
	ds, err := Run("fig10sim", Options{TraceScale: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string][]float64{}
	for _, s := range ds.Series {
		byName[s.Name] = s.Y
	}
	for _, proto := range []string{"Software-Flush", "No-Cache"} {
		bus := byName[proto+" (bus)"]
		net := byName[proto+" (net)"]
		if len(bus) != 4 || len(net) != 4 {
			t.Fatalf("%s: wrong series lengths", proto)
		}
		if bus[0] < net[0] {
			t.Errorf("%s: bus should win at 2 processors (%.2f vs %.2f)", proto, bus[0], net[0])
		}
		if net[3] <= bus[3] {
			t.Errorf("%s: network should win at 16 processors (%.2f vs %.2f)", proto, net[3], bus[3])
		}
	}
}

func TestRunAllParallelMatchesSequential(t *testing.T) {
	opts := Options{TraceScale: 0.1}
	par, err := RunAll(opts, 8)
	if err != nil {
		t.Fatal(err)
	}
	specs := All()
	if len(par) != len(specs) {
		t.Fatalf("got %d datasets, want %d", len(par), len(specs))
	}
	for i, ds := range par {
		if ds.ID != specs[i].ID {
			t.Errorf("position %d: dataset %s, spec %s (ordering lost)", i, ds.ID, specs[i].ID)
		}
	}
	// Spot-check determinism against a direct sequential run.
	seq, err := Run("fig1", opts)
	if err != nil {
		t.Fatal(err)
	}
	var parFig1 *Dataset
	for _, ds := range par {
		if ds.ID == "fig1" {
			parFig1 = ds
		}
	}
	for si := range seq.Series {
		for i := range seq.Series[si].Y {
			if seq.Series[si].Y[i] != parFig1.Series[si].Y[i] {
				t.Fatalf("fig1 series %d point %d differs between parallel and sequential", si, i)
			}
		}
	}
}

func TestOptionsDefaults(t *testing.T) {
	var o Options
	if o.traceScale() != 1 {
		t.Error("default trace scale")
	}
	if o.maxProcs(16) != 16 {
		t.Error("default max procs")
	}
	o.MaxProcessors = 4
	if o.maxProcs(16) != 4 {
		t.Error("override max procs")
	}
}
