package experiments

import (
	"context"
	"fmt"

	"swcc/internal/core"
	"swcc/internal/plot"
	"swcc/internal/report"
	"swcc/internal/sweep"
)

func init() {
	register(Spec{ID: "fig10", Paper: "Figure 10", Title: "Buses versus networks in the small scale", Run: runFig10})
	register(Spec{ID: "fig11", Paper: "Figure 11", Title: "256-processor network utilization vs request rate", Run: runFig11})
	register(Spec{ID: "packet", Paper: "Extension (Sec. 7)", Title: "Packet-switched network vs circuit-switched", Run: runPacket})
	register(Spec{ID: "directory", Paper: "Extension (Sec. 6.3)", Title: "Directory scheme vs Software-Flush on a network", Run: runDirectory})
}

func runFig10(ctx context.Context, opt Options) (*Dataset, error) {
	maxStages := 6 // up to 64 processors
	maxProcs := opt.maxProcs(64)
	ds := &Dataset{
		ID:     "fig10",
		Title:  "Processing power: bus vs circuit-switched network, middle parameters",
		XLabel: "processors",
		YLabel: "processing power",
	}
	p := core.MiddleParams()
	schemes := []core.Scheme{core.Base{}, core.SoftwareFlush{}, core.NoCache{}}
	// Per-scheme bus and network curves solve in parallel into per-scheme
	// slots; the bus side goes through the shared cache, so the table
	// below reuses the same curves instead of re-solving.
	busSeries := make([]plot.Series, len(schemes))
	netSeries := make([]plot.Series, len(schemes))
	netPoints := make([][]core.NetworkPoint, len(schemes))
	if err := sweep.Each(0, len(schemes), func(i int) error {
		s := schemes[i]
		sr, err := busPowerSeries(s, p, maxProcs)
		if err != nil {
			return err
		}
		sr.Name = s.Name() + " (bus)"
		busSeries[i] = sr
		pts, err := core.EvaluateNetwork(s, p, maxStages)
		if err != nil {
			return err
		}
		netPoints[i] = pts
		nr := plot.Series{Name: s.Name() + " (net)"}
		for _, pt := range pts {
			if pt.Processors > maxProcs {
				break
			}
			nr.X = append(nr.X, float64(pt.Processors))
			nr.Y = append(nr.Y, pt.Power)
		}
		netSeries[i] = nr
		return nil
	}); err != nil {
		return nil, err
	}
	ds.Series = append(ds.Series, busSeries...)
	ds.Series = append(ds.Series, netSeries...)
	tab := &report.Table{Header: []string{"processors", "scheme", "bus power", "net power"}}
	for i, s := range schemes {
		busPts, err := busEval.EvaluateBus(s, p, core.BusCosts(), maxProcs)
		if err != nil {
			return nil, err
		}
		for _, np := range netPoints[i] {
			if np.Processors > maxProcs {
				break
			}
			tab.AddRow(fmt.Sprint(np.Processors), s.Name(),
				report.FormatFloat(round3(busPts[np.Processors-1].Power)),
				report.FormatFloat(round3(np.Power)))
		}
	}
	ds.Table = tab
	ds.Notes = append(ds.Notes,
		"the bus wins at small scale (no path-setup cost); the network wins once the bus saturates",
		"Software-Flush and No-Cache both scale on the network, Software-Flush more efficiently")
	return ds, nil
}

func runFig11(context.Context, Options) (*Dataset, error) {
	const stages = 8 // 256 processors
	ds := &Dataset{
		ID:     "fig11",
		Title:  "Patel processor utilization, 256-processor circuit-switched network",
		XLabel: "unit request rate per processor (transactions/cycle)",
		YLabel: "processor utilization",
	}
	for _, msg := range []float64{1, 2, 4, 8, 16} {
		sr := plot.Series{Name: fmt.Sprintf("msg=%g words", msg)}
		for rate := 0.0; rate <= 0.30001; rate += 0.01 {
			u, err := core.NetworkUtilization(stages, rate, msg)
			if err != nil {
				return nil, err
			}
			sr.X = append(sr.X, rate)
			sr.Y = append(sr.Y, u)
		}
		ds.Series = append(ds.Series, sr)
	}
	// The nine marked points: scheme x level.
	tab := &report.Table{Header: []string{"point", "scheme", "range", "rate", "msg words", "utilization"}}
	type combo struct {
		label  string
		scheme core.Scheme
		level  core.Level
	}
	combos := []combo{
		{"Bl", core.Base{}, core.Low}, {"Bm", core.Base{}, core.Mid}, {"Bh", core.Base{}, core.High},
		{"Sl", core.SoftwareFlush{}, core.Low}, {"Sm", core.SoftwareFlush{}, core.Mid}, {"Sh", core.SoftwareFlush{}, core.High},
		{"Nl", core.NoCache{}, core.Low}, {"Nm", core.NoCache{}, core.Mid}, {"Nh", core.NoCache{}, core.High},
	}
	for _, c := range combos {
		rate, msg, u, err := core.NetworkWorkloadPoint(c.scheme, c.level, stages)
		if err != nil {
			return nil, err
		}
		ds.Series = append(ds.Series, plot.Series{
			Name: c.label, X: []float64{rate}, Y: []float64{u},
		})
		tab.AddRow(c.label, c.scheme.Name(), c.level.String(),
			fmt.Sprintf("%.4f", rate), fmt.Sprintf("%.2f", msg), fmt.Sprintf("%.3f", u))
	}
	ds.Table = tab
	ds.Notes = append(ds.Notes,
		"paper anchor: 3% transaction rate at 4-word messages (unit rate 3%x(16+4)=60%) roughly halves utilization",
		"two performance classes: {B*, Sl, Sm, Nl} reasonable; {Sh, Nm, Nh} much poorer")
	return ds, nil
}

func runPacket(context.Context, Options) (*Dataset, error) {
	ds := &Dataset{
		ID:     "packet",
		Title:  "EXTENSION: packet switching vs circuit switching (256 processors, middle parameters)",
		XLabel: "stages",
		YLabel: "processing power",
	}
	p := core.MiddleParams()
	tab := &report.Table{Header: []string{"scheme", "circuit power", "packet power", "packet/circuit"}}
	schemes := []core.Scheme{core.Base{}, core.SoftwareFlush{}, core.NoCache{}}
	circuit := plot.Series{Name: "circuit (SF)"}
	packet := plot.Series{Name: "packet (SF)"}
	for stages := 2; stages <= 10; stages++ {
		c, err := core.EvaluateNetworkAt(core.SoftwareFlush{}, p, stages)
		if err != nil {
			return nil, err
		}
		pk, err := core.EvaluatePacketNetwork(core.SoftwareFlush{}, p, stages)
		if err != nil {
			return nil, err
		}
		circuit.X = append(circuit.X, float64(stages))
		circuit.Y = append(circuit.Y, c.Power)
		packet.X = append(packet.X, float64(stages))
		packet.Y = append(packet.Y, pk.Power)
	}
	ds.Series = []plot.Series{circuit, packet}
	for _, s := range schemes {
		c, err := core.EvaluateNetworkAt(s, p, 8)
		if err != nil {
			return nil, err
		}
		pk, err := core.EvaluatePacketNetwork(s, p, 8)
		if err != nil {
			return nil, err
		}
		tab.AddRow(s.Name(), report.FormatFloat(round3(c.Power)), report.FormatFloat(round3(pk.Power)),
			fmt.Sprintf("%.2f", pk.Power/c.Power))
	}
	ds.Table = tab
	ds.Notes = append(ds.Notes, "paper Section 7: 'Use of packet-switching would be more favorable to No-Cache' — its ratio improves most")
	return ds, nil
}

func runDirectory(context.Context, Options) (*Dataset, error) {
	ds := &Dataset{
		ID:     "directory",
		Title:  "EXTENSION: directory hardware vs software schemes on the 256-processor network",
		XLabel: "stages",
		YLabel: "processing power",
	}
	tab := &report.Table{Header: []string{"scheme", "range", "power (256 procs)", "utilization"}}
	for _, s := range []core.Scheme{core.Base{}, core.Directory{}, core.SoftwareFlush{}, core.NoCache{}} {
		for _, l := range core.Levels() {
			pt, err := core.EvaluateNetworkAt(s, core.ParamsAt(l), 8)
			if err != nil {
				return nil, err
			}
			tab.AddRow(s.Name(), l.String(), report.FormatFloat(round3(pt.Power)), fmt.Sprintf("%.3f", pt.Utilization))
		}
	}
	ds.Table = tab
	ds.Notes = append(ds.Notes, "paper Section 6.3: Software-Flush at low range 'approximates the performance of hardware-based directory schemes'")
	// Chart: power vs stages for directory and SF at low range.
	for _, s := range []core.Scheme{core.Directory{}, core.SoftwareFlush{}} {
		sr := plot.Series{Name: s.Name() + " (low)"}
		pts, err := core.EvaluateNetwork(s, core.ParamsAt(core.Low), 10)
		if err != nil {
			return nil, err
		}
		for _, pt := range pts {
			sr.X = append(sr.X, float64(pt.Stages))
			sr.Y = append(sr.Y, pt.Power)
		}
		ds.Series = append(ds.Series, sr)
	}
	return ds, nil
}
