package experiments

import (
	"context"
	"fmt"

	"swcc/internal/core"
	"swcc/internal/plot"
	"swcc/internal/report"
)

func init() {
	register(Spec{
		ID: "memspeed", Paper: "Extension (Sec. 6.3 relative-speed remark)",
		Title: "Sensitivity to memory latency: who suffers when memory is slow?",
		Run:   runMemSpeed,
	})
}

// runMemSpeed sweeps the main-memory latency and evaluates each scheme's
// 16-processor power. It quantifies the paper's relative-speed remark
// ("a system that does not cache shared data ... will need to use a much
// faster network relative to the processor to sustain reasonable
// performance") for the bus: schemes that touch memory per *reference*
// (No-Cache) degrade much faster than schemes that touch it per *miss*.
func runMemSpeed(ctx context.Context, opt Options) (*Dataset, error) {
	nproc := opt.maxProcs(16)
	ds := &Dataset{
		ID:     "memspeed",
		Title:  fmt.Sprintf("Processing power vs memory latency (%d-processor bus, middle workload)", nproc),
		XLabel: "memory access latency (cycles)",
		YLabel: "processing power",
	}
	p := core.MiddleParams()
	latencies := []int{1, 2, 4, 6, 8, 12, 16}
	tab := &report.Table{Header: []string{"mem cycles", "Base", "Dragon", "Software-Flush", "No-Cache"}}
	series := make([]plot.Series, 4)
	schemes := core.PaperSchemes()
	for i, s := range schemes {
		series[i].Name = s.Name()
	}
	for _, mem := range latencies {
		costs := core.SystemSpec{MemoryCycles: mem}.Table()
		row := []string{fmt.Sprint(mem)}
		for i, s := range schemes {
			pw, err := core.BusPower(s, p, costs, nproc)
			if err != nil {
				return nil, err
			}
			series[i].X = append(series[i].X, float64(mem))
			series[i].Y = append(series[i].Y, pw)
			row = append(row, fmt.Sprintf("%.2f", pw))
		}
		tab.AddRow(row...)
	}
	ds.Series = series
	ds.Table = tab
	// Retained-power summary 2 -> 16 cycles.
	for i, s := range schemes {
		first, last := series[i].Y[1], series[i].Y[len(latencies)-1]
		ds.Notes = append(ds.Notes, fmt.Sprintf("%s retains %.0f%% of its power when memory slows 2→16 cycles", s.Name(), 100*last/first))
	}
	return ds, nil
}
