package experiments

import (
	"fmt"

	"swcc/internal/plot"
	"swcc/internal/report"
	"swcc/internal/sim"
	"swcc/internal/tracegen"
)

func init() {
	register(Spec{
		ID: "fig10sim", Paper: "Extension (Sec. 7 future work)",
		Title: "Figure 10 by simulation: bus vs network, trace-driven",
		Run:   runFig10Sim,
	})
}

// runFig10Sim replays one synthetic 16-processor workload through the
// trace-driven simulator on both interconnects, reproducing Figure 10's
// crossover by simulation — the network-side validation the paper lists
// as future work ("In the future we hope to ... validate our methodology
// against simulation" for networks).
func runFig10Sim(opt Options) (*Dataset, error) {
	cfg := tracegen.DefaultConfig()
	cfg.NCPU = 16
	cfg.InstrPerCPU = int(20_000 * opt.traceScale())
	if cfg.InstrPerCPU < 2000 {
		cfg.InstrPerCPU = 2000
	}
	tr, err := tracegen.Generate(cfg)
	if err != nil {
		return nil, err
	}
	cache := sim.CacheConfig{Size: 64 * 1024, BlockSize: 16, Assoc: 2}

	ds := &Dataset{
		ID:     "fig10sim",
		Title:  "Simulated processing power: bus vs circuit-switched network (middle-like workload)",
		XLabel: "processors",
		YLabel: "processing power",
	}
	tab := &report.Table{Header: []string{"processors", "protocol", "bus power", "net power"}}
	sizes := []int{2, 4, 8, 16}
	for _, proto := range []sim.Protocol{sim.ProtoSoftwareFlush, sim.ProtoNoCache} {
		busSeries := plot.Series{Name: proto.String() + " (bus)"}
		netSeries := plot.Series{Name: proto.String() + " (net)"}
		for _, n := range sizes {
			sub := tr.Restrict(n)
			power := func(m sim.Medium) (float64, error) {
				res, err := sim.Run(sim.Config{
					NCPU: n, Cache: cache, Protocol: proto, Medium: m,
					WarmupRefs: len(sub.Refs) / 2,
				}, sub)
				if err != nil {
					return 0, err
				}
				return res.Power(), nil
			}
			busP, err := power(sim.MediumBus)
			if err != nil {
				return nil, err
			}
			netP, err := power(sim.MediumNetwork)
			if err != nil {
				return nil, err
			}
			busSeries.X = append(busSeries.X, float64(n))
			busSeries.Y = append(busSeries.Y, busP)
			netSeries.X = append(netSeries.X, float64(n))
			netSeries.Y = append(netSeries.Y, netP)
			tab.AddRow(fmt.Sprint(n), proto.String(),
				fmt.Sprintf("%.2f", busP), fmt.Sprintf("%.2f", netP))
		}
		ds.Series = append(ds.Series, busSeries, netSeries)
	}
	ds.Table = tab
	ds.Notes = append(ds.Notes,
		"trace-driven counterpart of Figure 10: small machines favor the bus (no path-setup cost), large ones the network's parallel links",
		"the simulated network queues blocked transactions on links rather than dropping and retrying (see internal/netsim for the retry-faithful variant)")
	return ds, nil
}
