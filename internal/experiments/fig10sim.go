package experiments

import (
	"context"
	"fmt"

	"swcc/internal/plot"
	"swcc/internal/report"
	"swcc/internal/sim"
	"swcc/internal/sweep"
	"swcc/internal/tracegen"
)

func init() {
	register(Spec{
		ID: "fig10sim", Paper: "Extension (Sec. 7 future work)",
		Title: "Figure 10 by simulation: bus vs network, trace-driven",
		Run:   runFig10Sim,
	})
}

// runFig10Sim replays one synthetic 16-processor workload through the
// trace-driven simulator on both interconnects, reproducing Figure 10's
// crossover by simulation — the network-side validation the paper lists
// as future work ("In the future we hope to ... validate our methodology
// against simulation" for networks).
func runFig10Sim(ctx context.Context, opt Options) (*Dataset, error) {
	cfg := tracegen.DefaultConfig()
	cfg.NCPU = 16
	cfg.InstrPerCPU = int(20_000 * opt.traceScale())
	if cfg.InstrPerCPU < 2000 {
		cfg.InstrPerCPU = 2000
	}
	tr, err := tracegen.Generate(cfg)
	if err != nil {
		return nil, err
	}
	cache := sim.CacheConfig{Size: 64 * 1024, BlockSize: 16, Assoc: 2}

	ds := &Dataset{
		ID:     "fig10sim",
		Title:  "Simulated processing power: bus vs circuit-switched network (middle-like workload)",
		XLabel: "processors",
		YLabel: "processing power",
	}
	tab := &report.Table{Header: []string{"processors", "protocol", "bus power", "net power"}}
	sizes := []int{2, 4, 8, 16}
	protos := []sim.Protocol{sim.ProtoSoftwareFlush, sim.ProtoNoCache}
	// Every (protocol, size, medium) simulation is independent: flatten
	// the grid into jobs, run them on all cores, and read the powers back
	// by index so series and table order match the old nested loops.
	media := []sim.Medium{sim.MediumBus, sim.MediumNetwork}
	type job struct {
		proto  sim.Protocol
		n      int
		medium sim.Medium
	}
	var jobs []job
	for _, proto := range protos {
		for _, n := range sizes {
			for _, m := range media {
				jobs = append(jobs, job{proto, n, m})
			}
		}
	}
	powers := make([]float64, len(jobs))
	if err := sweep.Each(0, len(jobs), func(i int) error {
		j := jobs[i]
		sub := tr.Restrict(j.n)
		res, err := sim.Run(sim.Config{
			NCPU: j.n, Cache: cache, Protocol: j.proto, Medium: j.medium,
			WarmupRefs: len(sub.Refs) / 2,
		}, sub)
		if err != nil {
			return err
		}
		powers[i] = res.Power()
		return nil
	}); err != nil {
		return nil, err
	}
	i := 0
	for _, proto := range protos {
		busSeries := plot.Series{Name: proto.String() + " (bus)"}
		netSeries := plot.Series{Name: proto.String() + " (net)"}
		for _, n := range sizes {
			busP, netP := powers[i], powers[i+1]
			i += 2
			busSeries.X = append(busSeries.X, float64(n))
			busSeries.Y = append(busSeries.Y, busP)
			netSeries.X = append(netSeries.X, float64(n))
			netSeries.Y = append(netSeries.Y, netP)
			tab.AddRow(fmt.Sprint(n), proto.String(),
				fmt.Sprintf("%.2f", busP), fmt.Sprintf("%.2f", netP))
		}
		ds.Series = append(ds.Series, busSeries, netSeries)
	}
	ds.Table = tab
	ds.Notes = append(ds.Notes,
		"trace-driven counterpart of Figure 10: small machines favor the bus (no path-setup cost), large ones the network's parallel links",
		"the simulated network queues blocked transactions on links rather than dropping and retrying (see internal/netsim for the retry-faithful variant)")
	return ds, nil
}
