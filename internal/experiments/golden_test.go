package experiments

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// goldenIDs are the purely analytical experiments: deterministic,
// trace-free, and fast. Their rendered output is pinned so any
// unintended change to the model, the solvers, or the renderers shows up
// as a diff.
var goldenIDs = []string{
	"table1", "table2", "table3", "table8", "table9",
	"fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11",
	"packet", "directory", "hybrid", "crossover", "netmva", "envelope", "memspeed",
}

func TestGoldenOutputs(t *testing.T) {
	for _, id := range goldenIDs {
		id := id
		t.Run(id, func(t *testing.T) {
			ds, err := Run(id, Options{})
			if err != nil {
				t.Fatal(err)
			}
			got, err := ds.Render()
			if err != nil {
				t.Fatal(err)
			}
			path := filepath.Join("testdata", "golden", id+".txt")
			if *updateGolden {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run with -update): %v", err)
			}
			if got != string(want) {
				t.Errorf("output differs from golden %s;\nregenerate with `go test ./internal/experiments -run TestGolden -update`\ngot:\n%s", path, clip(got))
			}
		})
	}
}

func clip(s string) string {
	if len(s) > 1500 {
		return s[:1500] + "\n...[clipped]"
	}
	return s
}
