package experiments

import (
	"context"
	"fmt"

	"swcc/internal/core"
	"swcc/internal/measure"
	"swcc/internal/report"
	"swcc/internal/sensitivity"
	"swcc/internal/sim"
	"swcc/internal/sweep"
	"swcc/internal/tracegen"
)

func init() {
	register(Spec{ID: "table1", Paper: "Table 1", Title: "System model: CPU and bus time per operation", Run: runTable1})
	register(Spec{ID: "table2", Paper: "Table 2", Title: "Workload model parameters", Run: runTable2})
	register(Spec{ID: "table3", Paper: "Tables 3-6", Title: "Per-scheme operation frequencies at middle parameters", Run: runTable36})
	register(Spec{ID: "table7", Paper: "Table 7", Title: "Parameter ranges vs values measured from synthetic traces", Run: runTable7})
	register(Spec{ID: "table8", Paper: "Table 8", Title: "Sensitivity: % execution-time change, parameter low→high", Run: runTable8})
	register(Spec{ID: "table9", Paper: "Table 9", Title: "System model for a multistage network", Run: runTable9})
}

func runTable1(context.Context, Options) (*Dataset, error) {
	costs := core.BusCosts()
	tab := &report.Table{Header: []string{"operation", "cpu time", "bus time"}}
	for _, op := range core.Ops() {
		c := costs.Cost(op)
		tab.AddRow(op.String(), report.FormatFloat(c.CPU), report.FormatFloat(c.Interconnect))
	}
	return &Dataset{
		ID:    "table1",
		Title: "System model (bus): cycle costs per hardware operation",
		Table: tab,
	}, nil
}

func runTable2(context.Context, Options) (*Dataset, error) {
	tab := &report.Table{Header: []string{"parameter", "description"}}
	for _, f := range core.Fields() {
		tab.AddRow(f.Name, f.Doc)
	}
	return &Dataset{ID: "table2", Title: "Workload model parameters", Table: tab}, nil
}

func runTable36(context.Context, Options) (*Dataset, error) {
	p := core.MiddleParams()
	tab := &report.Table{Header: []string{"operation", "Base", "No-Cache", "Software-Flush", "Dragon"}}
	schemes := []core.Scheme{core.Base{}, core.NoCache{}, core.SoftwareFlush{}, core.Dragon{}}
	freqs := make([]map[core.Op]float64, len(schemes))
	for i, s := range schemes {
		fr, err := s.Frequencies(p)
		if err != nil {
			return nil, err
		}
		freqs[i] = map[core.Op]float64{}
		for _, f := range fr {
			freqs[i][f.Op] += f.Freq
		}
	}
	for _, op := range core.Ops() {
		row := []string{op.String()}
		any := false
		for i := range schemes {
			v := freqs[i][op]
			if v != 0 {
				any = true
			}
			row = append(row, fmt.Sprintf("%.6f", v))
		}
		if any {
			tab.AddRow(row...)
		}
	}
	ds := &Dataset{
		ID:    "table3",
		Title: "Workload models (Tables 3-6): operation frequencies per instruction, middle parameters",
		Table: tab,
	}
	for _, s := range schemes {
		d, err := core.ComputeDemand(s, p, core.BusCosts())
		if err != nil {
			return nil, err
		}
		ds.Notes = append(ds.Notes, fmt.Sprintf("%s: c = %.4f cpu cycles/instr, b = %.4f bus cycles/instr", s.Name(), d.CPU, d.Interconnect))
	}
	return ds, nil
}

func runTable7(ctx context.Context, opt Options) (*Dataset, error) {
	tab := &report.Table{Header: []string{"parameter", "low", "mid", "high", "pops", "thor", "pero"}}
	measured := map[string]core.Params{}
	for _, preset := range []string{"pops", "thor", "pero"} {
		cfg, err := tracegen.Preset(preset)
		if err != nil {
			return nil, err
		}
		cfg.InstrPerCPU = int(float64(cfg.InstrPerCPU) * opt.traceScale())
		tr, err := tracegen.Generate(cfg)
		if err != nil {
			return nil, err
		}
		m, err := measure.Extract(tr, sim.CacheConfig{Size: 64 * 1024, BlockSize: 16, Assoc: 2}, 0.5)
		if err != nil {
			return nil, err
		}
		measured[preset] = m.Params
	}
	for _, f := range core.Fields() {
		row := []string{f.Name, report.FormatFloat(f.Low), report.FormatFloat(f.Mid), report.FormatFloat(f.High)}
		for _, preset := range []string{"pops", "thor", "pero"} {
			p := measured[preset]
			row = append(row, fmt.Sprintf("%.4f", f.Get(&p)))
		}
		tab.AddRow(row...)
	}
	return &Dataset{
		ID:    "table7",
		Title: "Parameter ranges (paper Table 7) and values measured from the synthetic validation traces (64KB caches)",
		Table: tab,
		Notes: []string{"synthetic traces substitute for the unavailable ATUM-2 POPS/THOR/PERO traces; measured columns should fall within or near [low, high]"},
	}, nil
}

func runTable8(ctx context.Context, opt Options) (*Dataset, error) {
	nproc := opt.maxProcs(16)
	// Route the table through the package-shared cache AND the caller's
	// ctx: an interrupted `cohere all` abandons the sensitivity grid too.
	tab8, err := sensitivity.AnalyzeWithCtx(ctx, &sweep.Engine{Cache: busEval}, core.PaperSchemes(), nproc)
	if err != nil {
		return nil, err
	}
	tab := &report.Table{Header: append([]string{"parameter"}, tab8.Schemes...)}
	for _, p := range tab8.Params {
		row := []string{p}
		for _, s := range tab8.Schemes {
			c, _ := tab8.Cell(p, s)
			row = append(row, fmt.Sprintf("%+.1f%%", c.PercentChange))
		}
		tab.AddRow(row...)
	}
	return &Dataset{
		ID:    "table8",
		Title: fmt.Sprintf("Sensitivity to parameter variation (low→high, others middle) at %d processors", nproc),
		Table: tab,
		Notes: []string{
			"paper's reading: apl dominates Software-Flush, shd almost as much, ls significant;",
			"No-Cache mirrors Software-Flush minus apl; Dragon cares more about miss rate than sharing",
		},
	}, nil
}

func runTable9(context.Context, Options) (*Dataset, error) {
	tab := &report.Table{Header: []string{"operation", "cpu time (n=8)", "network time (n=8)", "formula"}}
	costs := core.NetworkCosts(8)
	formulas := map[core.Op]string{
		core.OpInstr:        "1 / 0",
		core.OpCleanMissMem: "9+2n / 6+2n",
		core.OpDirtyMissMem: "12+2n / 9+2n",
		core.OpCleanFlush:   "1 / 0",
		core.OpDirtyFlush:   "7+2n / 5+2n",
		core.OpWriteThrough: "3+2n / 2+2n",
		core.OpReadThrough:  "4+2n / 3+2n",
	}
	for _, op := range core.Ops() {
		if !costs.Defines(op) {
			continue
		}
		c := costs.Cost(op)
		tab.AddRow(op.String(), report.FormatFloat(c.CPU), report.FormatFloat(c.Interconnect), formulas[op])
	}
	return &Dataset{
		ID:    "table9",
		Title: "System model for an n-stage circuit-switched multistage network",
		Table: tab,
	}, nil
}
