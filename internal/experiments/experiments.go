// Package experiments maps every table and figure of the paper's
// evaluation (plus the repository's extensions) to a runnable experiment
// that regenerates its data. Each experiment produces a Dataset — data
// series, a text table, or both — which the CLI and benchmarks render.
//
// The registry is the per-experiment index of DESIGN.md in executable
// form: `Run("fig4", opts)` recomputes paper Figure 4.
package experiments

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sort"
	"strings"
	"sync"

	"swcc/internal/plot"
	"swcc/internal/report"
	"swcc/internal/sweep"
)

// busEval is the package-shared memoizing evaluator: every analytic
// experiment routes its bus-model solves through it, so solves recur at
// most once per distinct (scheme, canonical workload, machine size) no
// matter how many experiments — or RunAll workers — ask. Results are
// bit-identical to fresh solves (see internal/sweep), which is what keeps
// the golden outputs stable.
var busEval = sweep.NewEvaluator()

// ErrUnknownExperiment reports a bad experiment ID.
var ErrUnknownExperiment = errors.New("experiments: unknown experiment")

// Options tunes experiment execution.
type Options struct {
	// TraceScale scales the validation traces' instruction counts
	// (1.0 = the presets' full length). Lower it for quick runs;
	// 0 means 1.0.
	TraceScale float64
	// Preset selects the synthetic workload for validation figures
	// ("pops", "thor", "pero"); empty means the figure's default.
	Preset string
	// MaxProcessors overrides the largest bus machine size swept;
	// 0 means the figure's default.
	MaxProcessors int
	// Seed overrides the preset's RNG seed for validation traces;
	// 0 keeps the preset default. Use it to check that validation
	// results are not an artifact of one particular trace.
	Seed uint64
}

func (o Options) traceScale() float64 {
	if o.TraceScale <= 0 {
		return 1
	}
	return o.TraceScale
}

func (o Options) maxProcs(def int) int {
	if o.MaxProcessors <= 0 {
		return def
	}
	return o.MaxProcessors
}

// Dataset is one regenerated table or figure.
type Dataset struct {
	// ID is the experiment ID ("fig4", "table8", ...).
	ID string
	// Title describes the artifact.
	Title string
	// XLabel and YLabel name chart axes when Series is non-empty.
	XLabel, YLabel string
	// LogX plots the chart's x axis on a log scale.
	LogX bool
	// Series holds chart data (may be empty for pure tables).
	Series []plot.Series
	// Table holds tabular data (may be nil for pure charts).
	Table *report.Table
	// Notes carry caveats and observations worth printing.
	Notes []string
}

// datasetJSON is the machine-readable form of a Dataset.
type datasetJSON struct {
	ID     string       `json:"id"`
	Title  string       `json:"title"`
	XLabel string       `json:"xlabel,omitempty"`
	YLabel string       `json:"ylabel,omitempty"`
	Series []seriesJSON `json:"series,omitempty"`
	Table  *tableJSON   `json:"table,omitempty"`
	Notes  []string     `json:"notes,omitempty"`
}

type seriesJSON struct {
	Name string    `json:"name"`
	X    []float64 `json:"x"`
	Y    []float64 `json:"y"`
}

type tableJSON struct {
	Header []string   `json:"header"`
	Rows   [][]string `json:"rows"`
}

// WriteJSON emits the dataset in a stable machine-readable form for
// downstream plotting tools.
func (d *Dataset) WriteJSON(w io.Writer) error {
	out := datasetJSON{
		ID: d.ID, Title: d.Title, XLabel: d.XLabel, YLabel: d.YLabel,
		Notes: d.Notes,
	}
	for _, s := range d.Series {
		out.Series = append(out.Series, seriesJSON{Name: s.Name, X: s.X, Y: s.Y})
	}
	if d.Table != nil {
		out.Table = &tableJSON{Header: d.Table.Header, Rows: d.Table.Rows}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// Render formats the dataset as text: chart (if any), then table (if
// any), then notes.
func (d *Dataset) Render() (string, error) {
	var b strings.Builder
	if len(d.Series) > 0 {
		out, err := plot.Render(plot.Chart{
			Title:  fmt.Sprintf("%s — %s", d.ID, d.Title),
			XLabel: d.XLabel,
			YLabel: d.YLabel,
			LogX:   d.LogX,
			Series: d.Series,
		})
		if err != nil {
			return "", err
		}
		b.WriteString(out)
	} else if d.Title != "" {
		fmt.Fprintf(&b, "%s — %s\n", d.ID, d.Title)
	}
	if d.Table != nil {
		b.WriteString("\n")
		if err := d.Table.WriteText(&b); err != nil {
			return "", err
		}
	}
	for _, n := range d.Notes {
		fmt.Fprintf(&b, "\nnote: %s\n", n)
	}
	return b.String(), nil
}

// Spec describes one registered experiment.
type Spec struct {
	// ID is the registry key.
	ID string
	// Paper names the paper artifact ("Table 8", "Figure 4",
	// "Extension").
	Paper string
	// Title is a one-line description.
	Title string
	// Run executes the experiment. The context carries cooperative
	// cancellation from the caller (e.g. `cohere all` on SIGINT): runners
	// built on the sweep engine stop claiming grid cells once it is done,
	// and return the context's error for the unsolved remainder. Runners
	// whose work is trivial may ignore it.
	Run func(context.Context, Options) (*Dataset, error)
}

var registry = map[string]Spec{}

// register adds a spec at init time; duplicate IDs panic (programmer
// error).
func register(s Spec) {
	if _, dup := registry[s.ID]; dup {
		panic("experiments: duplicate id " + s.ID)
	}
	registry[s.ID] = s
}

// All returns every registered experiment sorted by ID (tables first,
// then figures in numeric order, then extensions).
func All() []Spec {
	specs := make([]Spec, 0, len(registry))
	for _, s := range registry {
		specs = append(specs, s)
	}
	sort.Slice(specs, func(i, j int) bool { return idLess(specs[i].ID, specs[j].ID) })
	return specs
}

// idLess orders IDs with numeric awareness (fig2 < fig10).
func idLess(a, b string) bool {
	pa, na := splitID(a)
	pb, nb := splitID(b)
	if pa != pb {
		return pa < pb
	}
	if na != nb {
		return na < nb
	}
	return a < b
}

func splitID(id string) (prefix string, num int) {
	i := 0
	for i < len(id) && (id[i] < '0' || id[i] > '9') {
		i++
	}
	prefix = id[:i]
	for ; i < len(id); i++ {
		if id[i] < '0' || id[i] > '9' {
			break
		}
		num = num*10 + int(id[i]-'0')
	}
	return prefix, num
}

// ByID looks up an experiment.
func ByID(id string) (Spec, error) {
	s, ok := registry[id]
	if !ok {
		ids := make([]string, 0, len(registry))
		for _, sp := range All() {
			ids = append(ids, sp.ID)
		}
		return Spec{}, fmt.Errorf("%w: %q (have: %s)", ErrUnknownExperiment, id, strings.Join(ids, ", "))
	}
	return s, nil
}

// Run executes the experiment with the given ID.
func Run(id string, opt Options) (*Dataset, error) {
	return RunCtx(context.Background(), id, opt)
}

// RunCtx executes the experiment with the given ID under ctx's
// cooperative cancellation.
func RunCtx(ctx context.Context, id string, opt Options) (*Dataset, error) {
	s, err := ByID(id)
	if err != nil {
		return nil, err
	}
	return s.Run(ctx, opt)
}

// RunAll executes every registered experiment with up to `parallelism`
// running concurrently (1 = sequential; 0 defaults to all cores) and
// returns the datasets in registry order. The first failure is reported
// with its experiment ID; other experiments still run to completion.
func RunAll(opt Options, parallelism int) ([]*Dataset, error) {
	return RunAllCtx(context.Background(), opt, parallelism)
}

// RunAllCtx is RunAll under cooperative cancellation: once ctx is done,
// no further experiment starts (skipped ones fail with ctx's error) and
// running ones wind down at their engine's next cancellation point.
func RunAllCtx(ctx context.Context, opt Options, parallelism int) ([]*Dataset, error) {
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	specs := All()
	results := make([]*Dataset, len(specs))
	errs := make([]error, len(specs))
	sem := make(chan struct{}, parallelism)
	var wg sync.WaitGroup
	for i, spec := range specs {
		// Acquire the slot before spawning so at most `parallelism`
		// goroutines ever exist, instead of eagerly launching one per
		// experiment and letting them all block on the semaphore.
		sem <- struct{}{}
		wg.Add(1)
		go func(i int, spec Spec) {
			defer wg.Done()
			defer func() { <-sem }()
			if err := ctx.Err(); err != nil {
				errs[i] = err
				return
			}
			results[i], errs[i] = spec.Run(ctx, opt)
		}(i, spec)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("%s: %w", specs[i].ID, err)
		}
	}
	return results, nil
}
