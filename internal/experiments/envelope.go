package experiments

import (
	"context"
	"fmt"

	"swcc/internal/core"
	"swcc/internal/report"
)

func init() {
	register(Spec{ID: "envelope", Paper: "Extension (Sec. 5 synthesis)", Title: "Software-Flush operating envelope over (shd, apl)", Run: runEnvelope})
}

// runEnvelope maps the (shd, apl) plane into competitiveness classes for
// Software-Flush against Dragon — the design-space synthesis of the
// paper's Section 5 discussion: software coherence works in favorable
// regions of the parameters and must be evaluated against the expected
// workload.
func runEnvelope(ctx context.Context, opt Options) (*Dataset, error) {
	nproc := opt.maxProcs(16)
	shds := []float64{0.04, 0.08, 0.15, 0.25, 0.35, 0.42}
	apls := []float64{1, 2, 4, 8, 16, 32, 64}
	header := []string{"shd \\ apl"}
	for _, a := range apls {
		header = append(header, report.FormatFloat(a))
	}
	tab := &report.Table{Header: header}
	counts := map[string]int{}
	for _, shd := range shds {
		row := []string{fmt.Sprintf("%.2f", shd)}
		for _, apl := range apls {
			p, err := core.MiddleParams().With("shd", shd)
			if err != nil {
				return nil, err
			}
			if p, err = p.With("apl", apl); err != nil {
				return nil, err
			}
			sf, err := core.BusPower(core.SoftwareFlush{}, p, core.BusCosts(), nproc)
			if err != nil {
				return nil, err
			}
			dragon, err := core.BusPower(core.Dragon{}, p, core.BusCosts(), nproc)
			if err != nil {
				return nil, err
			}
			nocache, err := core.BusPower(core.NoCache{}, p, core.BusCosts(), nproc)
			if err != nil {
				return nil, err
			}
			var class string
			switch {
			case sf >= dragon:
				class = "++" // matches or beats the hardware
			case sf >= 0.85*dragon:
				class = "+" // within 15% of the hardware
			case sf > nocache:
				class = "~" // beats No-Cache only
			default:
				class = "-" // the worst choice
			}
			counts[class]++
			row = append(row, class)
		}
		tab.AddRow(row...)
	}
	ds := &Dataset{
		ID:    "envelope",
		Title: fmt.Sprintf("Software-Flush vs Dragon over (shd, apl), %d-processor bus", nproc),
		Table: tab,
		Notes: []string{
			"++ matches/beats Dragon; + within 15% of Dragon; ~ beats No-Cache only; - worst choice",
			fmt.Sprintf("cells: %d '++', %d '+', %d '~', %d '-'", counts["++"], counts["+"], counts["~"], counts["-"]),
			"the paper's thesis in one table: software coherence is viable exactly where the workload cooperates",
		},
	}
	return ds, nil
}
