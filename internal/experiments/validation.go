package experiments

import (
	"context"
	"fmt"

	"swcc/internal/core"
	"swcc/internal/measure"
	"swcc/internal/plot"
	"swcc/internal/report"
	"swcc/internal/sim"
	"swcc/internal/sweep"
	"swcc/internal/trace"
	"swcc/internal/tracegen"
)

func init() {
	register(Spec{ID: "fig1", Paper: "Figure 1", Title: "Model vs simulation, Base and Dragon, 64KB caches", Run: runFig1})
	register(Spec{ID: "fig2", Paper: "Figure 2", Title: "Cache-size impact on Dragon, model vs simulation, ≤4 CPUs", Run: runFig2})
	register(Spec{ID: "fig3", Paper: "Figure 3", Title: "Cache-size impact on Dragon, model vs simulation, 8 CPUs", Run: runFig3})
}

// validationTrace generates the preset trace at the requested scale.
func validationTrace(opt Options, def string) (*trace.Trace, string, error) {
	preset := opt.Preset
	if preset == "" {
		preset = def
	}
	cfg, err := tracegen.Preset(preset)
	if err != nil {
		return nil, "", err
	}
	cfg.InstrPerCPU = int(float64(cfg.InstrPerCPU) * opt.traceScale())
	if cfg.InstrPerCPU < 1000 {
		cfg.InstrPerCPU = 1000
	}
	if opt.Seed != 0 {
		cfg.Seed = opt.Seed
	}
	tr, err := tracegen.Generate(cfg)
	if err != nil {
		return nil, "", err
	}
	return tr, preset, nil
}

// protoScheme pairs a simulator protocol with its analytic scheme.
type protoScheme struct {
	proto  sim.Protocol
	scheme core.Scheme
}

// validate runs model-vs-simulation for the given schemes and cache size
// across machine sizes 1..tr.NCPU. It returns (simulated, modeled) power
// series per scheme plus the parameter measurement used by the model.
func validate(tr *trace.Trace, cache sim.CacheConfig, pairs []protoScheme) ([]plot.Series, *measure.Measurement, error) {
	m, err := measure.Extract(tr, cache, 0.5)
	if err != nil {
		return nil, nil, err
	}
	// The simulations dominate the cost and are independent across both
	// the scheme and the machine size: flatten (pair, n) into one job
	// grid and run it on all cores, writing each power into its own
	// slot. The analytic side goes through the shared cache.
	nsizes := tr.NCPU
	simPowers := make([]float64, len(pairs)*nsizes)
	if err := sweep.Each(0, len(simPowers), func(i int) error {
		pr := pairs[i/nsizes]
		n := i%nsizes + 1
		sub := tr.Restrict(n)
		res, err := sim.Run(sim.Config{
			NCPU:       n,
			Cache:      cache,
			Protocol:   pr.proto,
			WarmupRefs: len(sub.Refs) / 2,
		}, sub)
		if err != nil {
			return err
		}
		simPowers[i] = res.Power()
		return nil
	}); err != nil {
		return nil, nil, err
	}
	var out []plot.Series
	for pi, pr := range pairs {
		simSeries := plot.Series{Name: pr.scheme.Name() + " sim"}
		modelSeries := plot.Series{Name: pr.scheme.Name() + " model"}
		modelPts, err := busEval.EvaluateBus(pr.scheme, m.Params, core.BusCosts(), tr.NCPU)
		if err != nil {
			return nil, nil, err
		}
		for n := 1; n <= tr.NCPU; n++ {
			simSeries.X = append(simSeries.X, float64(n))
			simSeries.Y = append(simSeries.Y, simPowers[pi*nsizes+n-1])
			modelSeries.X = append(modelSeries.X, float64(n))
			modelSeries.Y = append(modelSeries.Y, modelPts[n-1].Power)
		}
		out = append(out, simSeries, modelSeries)
	}
	return out, m, nil
}

func seriesTable(series []plot.Series) *report.Table {
	tab := &report.Table{Header: []string{"processors"}}
	for _, s := range series {
		tab.Header = append(tab.Header, s.Name)
	}
	if len(series) == 0 || len(series[0].X) == 0 {
		return tab
	}
	for i := range series[0].X {
		row := []string{report.FormatFloat(series[0].X[i])}
		for _, s := range series {
			row = append(row, fmt.Sprintf("%.3f", s.Y[i]))
		}
		tab.AddRow(row...)
	}
	return tab
}

func runFig1(ctx context.Context, opt Options) (*Dataset, error) {
	tr, preset, err := validationTrace(opt, "pops")
	if err != nil {
		return nil, err
	}
	cache := sim.CacheConfig{Size: 64 * 1024, BlockSize: 16, Assoc: 2}
	series, m, err := validate(tr, cache, []protoScheme{
		{sim.ProtoBase, core.Base{}},
		{sim.ProtoDragon, core.Dragon{}},
	})
	if err != nil {
		return nil, err
	}
	ds := &Dataset{
		ID:     "fig1",
		Title:  fmt.Sprintf("Model vs simulation, Base & Dragon, 64KB caches, %q trace", preset),
		XLabel: "processors",
		YLabel: "processing power",
		Series: series,
		Table:  seriesTable(series),
	}
	ds.Notes = append(ds.Notes,
		fmt.Sprintf("measured params: ls=%.3f msdat=%.4f mains=%.4f md=%.3f shd=%.3f wr=%.3f apl=%.1f oclean=%.3f opres=%.3f nshd=%.2f",
			m.Params.LS, m.Params.MsDat, m.Params.MsIns, m.Params.MD, m.Params.Shd, m.Params.WR, m.Params.APL, m.Params.OClean, m.Params.OPres, m.Params.NShd),
		"the exponential-service bus model slightly overestimates contention vs the fixed-service simulator, as in the paper")
	return ds, nil
}

func runFig2(ctx context.Context, opt Options) (*Dataset, error) {
	tr, preset, err := validationTrace(opt, "pops")
	if err != nil {
		return nil, err
	}
	ds := &Dataset{
		ID:     "fig2",
		Title:  fmt.Sprintf("Dragon model vs simulation across cache sizes, %q trace", preset),
		XLabel: "processors",
		YLabel: "processing power",
	}
	for _, size := range []int{16 * 1024, 64 * 1024, 256 * 1024} {
		cache := sim.CacheConfig{Size: size, BlockSize: 16, Assoc: 2}
		series, _, err := validate(tr, cache, []protoScheme{{sim.ProtoDragon, core.Dragon{}}})
		if err != nil {
			return nil, err
		}
		for i := range series {
			series[i].Name = fmt.Sprintf("%dK %s", size/1024, series[i].Name[len("Dragon "):])
		}
		ds.Series = append(ds.Series, series...)
	}
	ds.Table = seriesTable(ds.Series)
	return ds, nil
}

func runFig3(ctx context.Context, opt Options) (*Dataset, error) {
	tr, preset, err := validationTrace(opt, "pero8")
	if err != nil {
		return nil, err
	}
	ds := &Dataset{
		ID:     "fig3",
		Title:  fmt.Sprintf("Dragon model vs simulation, 8-processor %q trace", preset),
		XLabel: "processors",
		YLabel: "processing power",
	}
	for _, size := range []int{16 * 1024, 64 * 1024, 256 * 1024} {
		cache := sim.CacheConfig{Size: size, BlockSize: 16, Assoc: 2}
		series, _, err := validate(tr, cache, []protoScheme{{sim.ProtoDragon, core.Dragon{}}})
		if err != nil {
			return nil, err
		}
		for i := range series {
			series[i].Name = fmt.Sprintf("%dK %s", size/1024, series[i].Name[len("Dragon "):])
		}
		ds.Series = append(ds.Series, series...)
	}
	ds.Table = seriesTable(ds.Series)
	return ds, nil
}
