package experiments

import (
	"context"
	"fmt"

	"swcc/internal/core"
	"swcc/internal/measure"
	"swcc/internal/report"
	"swcc/internal/sim"
	"swcc/internal/sweep"
	"swcc/internal/tracegen"
)

func init() {
	register(Spec{
		ID: "scenarios", Paper: "Extension (Sec. 5.2 synthesis)",
		Title: "Scheme recommendation per deployment scenario (trace -> measure -> rank)",
		Run:   runScenarios,
	})
}

// runScenarios exercises the full pipeline for four deployment
// scenarios: generate the scenario's trace, measure its Table 2
// parameters, and rank the implementable coherence schemes on a
// 16-processor bus. It reproduces Section 5.2's qualitative guidance
// ("in such environments No-Cache is a viable alternative") with the
// library's own advisor.
func runScenarios(ctx context.Context, opt Options) (*Dataset, error) {
	const nproc = 16
	cache := sim.CacheConfig{Size: 64 * 1024, BlockSize: 16, Assoc: 2}
	candidates := []core.Scheme{core.Dragon{}, core.SoftwareFlush{}, core.NoCache{}}
	tab := &report.Table{Header: []string{
		"scenario", "shd", "apl", "best", "best power",
		"No-Cache power", "No-Cache vs best",
	}}
	ds := &Dataset{
		ID:    "scenarios",
		Title: fmt.Sprintf("Recommended coherence scheme per workload scenario (%d-processor bus)", nproc),
	}
	// Scenarios are independent trace->measure->rank pipelines; run them
	// in parallel into per-scenario row slots (output order is fixed by
	// the slice, not the scheduler). Ranking goes through the shared
	// cache-backed evaluator.
	scenarios := []string{"timeshare", "message", "pops", "pero"}
	rows := make([][]string, len(scenarios))
	if err := sweep.Each(0, len(scenarios), func(i int) error {
		scenario := scenarios[i]
		cfg, err := tracegen.Preset(scenario)
		if err != nil {
			return err
		}
		cfg.InstrPerCPU = int(float64(cfg.InstrPerCPU) * opt.traceScale())
		if cfg.InstrPerCPU < 2000 {
			cfg.InstrPerCPU = 2000
		}
		tr, err := tracegen.Generate(cfg)
		if err != nil {
			return err
		}
		m, err := measure.Extract(tr, cache, 0.5)
		if err != nil {
			return err
		}
		ranked, err := core.RankBusWith(busEval, candidates, m.Params, core.BusCosts(), nproc)
		if err != nil {
			return err
		}
		best := ranked[0]
		var noCachePower float64
		for _, r := range ranked {
			if r.Scheme.Name() == "No-Cache" {
				noCachePower = r.Power
			}
		}
		rows[i] = []string{scenario,
			fmt.Sprintf("%.3f", m.Params.Shd),
			fmt.Sprintf("%.1f", m.Params.APL),
			best.Scheme.Name(),
			fmt.Sprintf("%.2f", best.Power),
			fmt.Sprintf("%.2f", noCachePower),
			fmt.Sprintf("%.0f%%", 100*noCachePower/best.Power)}
		return nil
	}); err != nil {
		return nil, err
	}
	for _, r := range rows {
		tab.AddRow(r...)
	}
	ds.Table = tab
	ds.Notes = append(ds.Notes,
		"Section 5.2: with little sharing (time-sharing, message passing) even No-Cache is viable; with real sharing the software schemes need hardware-grade apl or lose badly")
	return ds, nil
}
