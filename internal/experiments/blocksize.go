package experiments

import (
	"context"
	"fmt"

	"swcc/internal/core"
	"swcc/internal/measure"
	"swcc/internal/plot"
	"swcc/internal/report"
	"swcc/internal/sim"
	"swcc/internal/tracegen"
)

func init() {
	register(Spec{
		ID: "blocksize", Paper: "Extension (Sec. 2.2 caveat)",
		Title: "Block-size trade-off: miss rate vs transfer cost, simulation and model",
		Run:   runBlockSize,
	})
}

// runBlockSize explores the effect the paper deliberately excludes from
// its workload model ("miss rates depend on block size, cache size, and
// so on. We don't try to model those effects"): replay one workload at
// several block sizes, measure how the miss rate falls as blocks grow,
// and feed the measured rates back into the model with correspondingly
// scaled cost tables. Simulation and model must agree on where the
// trade-off turns.
func runBlockSize(ctx context.Context, opt Options) (*Dataset, error) {
	cfg, err := tracegen.Preset("pops")
	if err != nil {
		return nil, err
	}
	cfg.InstrPerCPU = int(float64(cfg.InstrPerCPU) * opt.traceScale())
	if cfg.InstrPerCPU < 2000 {
		cfg.InstrPerCPU = 2000
	}
	ds := &Dataset{
		ID:     "blocksize",
		Title:  "Dragon power vs block size (64KB caches, pops-like workload)",
		XLabel: "block size (bytes, log scale)",
		YLabel: "processing power",
		LogX:   true,
	}
	tab := &report.Table{Header: []string{"block bytes", "msdat", "mains", "sim power", "model power"}}
	simSeries := plot.Series{Name: "simulation"}
	modelSeries := plot.Series{Name: "model (measured rates)"}
	for _, bs := range []int{8, 16, 32, 64, 128} {
		// The generator emits block-aligned sharing for its
		// configured block size; regenerate per size so flush
		// records stay aligned.
		gcfg := cfg
		gcfg.BlockSize = bs
		tr, err := tracegen.Generate(gcfg)
		if err != nil {
			return nil, err
		}
		cache := sim.CacheConfig{Size: 64 * 1024, BlockSize: bs, Assoc: 2}
		m, err := measure.Extract(tr, cache, 0.5)
		if err != nil {
			return nil, err
		}
		res, err := sim.Run(sim.Config{
			NCPU: tr.NCPU, Cache: cache, Protocol: sim.ProtoDragon,
			WarmupRefs: len(tr.Refs) / 2,
		}, tr)
		if err != nil {
			return nil, err
		}
		costs := core.BusCostsForBlock(bs / 4)
		modelPts, err := core.EvaluateBus(core.Dragon{}, m.Params, costs, tr.NCPU)
		if err != nil {
			return nil, err
		}
		simSeries.X = append(simSeries.X, float64(bs))
		simSeries.Y = append(simSeries.Y, res.Power())
		modelSeries.X = append(modelSeries.X, float64(bs))
		modelSeries.Y = append(modelSeries.Y, modelPts[tr.NCPU-1].Power)
		tab.AddRow(fmt.Sprint(bs),
			fmt.Sprintf("%.4f", m.Params.MsDat), fmt.Sprintf("%.4f", m.Params.MsIns),
			fmt.Sprintf("%.3f", res.Power()), fmt.Sprintf("%.3f", modelPts[tr.NCPU-1].Power))
	}
	ds.Series = []plot.Series{simSeries, modelSeries}
	ds.Table = tab
	ds.Notes = append(ds.Notes,
		"the synthetic workload's locality is block-granular, so larger blocks buy no extra hits here — they only raise cache pressure and per-miss cost, and power falls monotonically",
		"the point is methodological: fed the per-size measured rates and the per-size scaled cost table, the model tracks the simulation at every block size",
		"block-size effects are exactly what the paper's workload model deliberately leaves out (Section 2.2: 'We don't try to model those effects')")
	return ds, nil
}
