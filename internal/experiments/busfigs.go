package experiments

import (
	"context"
	"fmt"

	"swcc/internal/core"
	"swcc/internal/plot"
	"swcc/internal/report"
	"swcc/internal/sweep"
)

func init() {
	register(Spec{ID: "fig4", Paper: "Figure 4", Title: "Scheme comparison on a bus, low ls and shd", Run: busLevels(core.Low)})
	register(Spec{ID: "fig5", Paper: "Figure 5", Title: "Scheme comparison on a bus, medium ls and shd", Run: busLevels(core.Mid)})
	register(Spec{ID: "fig6", Paper: "Figure 6", Title: "Scheme comparison on a bus, high ls and shd", Run: busLevels(core.High)})
	register(Spec{ID: "fig7", Paper: "Figure 7", Title: "Software-Flush under varying apl", Run: runFig7})
	register(Spec{ID: "fig8", Paper: "Figure 8", Title: "Processing power vs apl, low sharing", Run: aplSweep("fig8", core.Low)})
	register(Spec{ID: "fig9", Paper: "Figure 9", Title: "Processing power vs apl, medium sharing", Run: aplSweep("fig9", core.Mid)})
}

// busPowerSeries evaluates one scheme's power curve over 1..maxProcs,
// through the shared memo cache.
func busPowerSeries(s core.Scheme, p core.Params, maxProcs int) (plot.Series, error) {
	pts, err := busEval.EvaluateBus(s, p, core.BusCosts(), maxProcs)
	if err != nil {
		return plot.Series{}, err
	}
	out := plot.Series{Name: s.Name()}
	for _, pt := range pts {
		out.X = append(out.X, float64(pt.Processors))
		out.Y = append(out.Y, pt.Power)
	}
	return out, nil
}

// idealSeries is the dotted upper bound: power = n.
func idealSeries(maxProcs int) plot.Series {
	s := plot.Series{Name: "Ideal (n)"}
	for n := 1; n <= maxProcs; n++ {
		s.X = append(s.X, float64(n))
		s.Y = append(s.Y, float64(n))
	}
	return s
}

// busLevels builds the Figures 4-6 runner: all four schemes at the given
// ls/shd level, everything else middle.
func busLevels(l core.Level) func(context.Context, Options) (*Dataset, error) {
	return func(ctx context.Context, opt Options) (*Dataset, error) {
		maxProcs := opt.maxProcs(16)
		p := core.MiddleParams()
		var err error
		if p, err = p.WithLevel("ls", l); err != nil {
			return nil, err
		}
		if p, err = p.WithLevel("shd", l); err != nil {
			return nil, err
		}
		id := map[core.Level]string{core.Low: "fig4", core.Mid: "fig5", core.High: "fig6"}[l]
		ds := &Dataset{
			ID:     id,
			Title:  fmt.Sprintf("Processing power vs processors, %s ls/shd (bus)", l),
			XLabel: "processors",
			YLabel: "processing power",
		}
		ds.Series = append(ds.Series, idealSeries(maxProcs))
		tab := &report.Table{Header: []string{"processors", "Base", "Dragon", "Software-Flush", "No-Cache"}}
		// One curve per scheme, solved in parallel into per-scheme slots.
		schemes := core.PaperSchemes()
		curves := make([]plot.Series, len(schemes))
		if err := sweep.Each(0, len(schemes), func(i int) error {
			var err error
			curves[i], err = busPowerSeries(schemes[i], p, maxProcs)
			return err
		}); err != nil {
			return nil, err
		}
		ds.Series = append(ds.Series, curves...)
		for i := 0; i < maxProcs; i++ {
			tab.AddFloats(fmt.Sprint(i+1),
				round3(curves[0].Y[i]), round3(curves[1].Y[i]), round3(curves[2].Y[i]), round3(curves[3].Y[i]))
		}
		ds.Table = tab
		return ds, nil
	}
}

func runFig7(ctx context.Context, opt Options) (*Dataset, error) {
	maxProcs := opt.maxProcs(16)
	ds := &Dataset{
		ID:     "fig7",
		Title:  "Software-Flush processing power for several apl values (bus, middle parameters)",
		XLabel: "processors",
		YLabel: "processing power",
	}
	mid := core.MiddleParams()
	// Reference curves (Dragon above, No-Cache below) plus one
	// Software-Flush curve per apl value, all solved in parallel into
	// per-curve slots so the series order never depends on scheduling.
	type job struct {
		scheme core.Scheme
		params core.Params
		rename string
	}
	jobs := []job{
		{scheme: core.Dragon{}, params: mid},
		{scheme: core.NoCache{}, params: mid},
	}
	for _, apl := range []float64{1, 2, 4, 8, 25, 100} {
		p, err := mid.With("apl", apl)
		if err != nil {
			return nil, err
		}
		jobs = append(jobs, job{core.SoftwareFlush{}, p, fmt.Sprintf("SF apl=%g", apl)})
	}
	curves := make([]plot.Series, len(jobs))
	if err := sweep.Each(0, len(jobs), func(i int) error {
		sr, err := busPowerSeries(jobs[i].scheme, jobs[i].params, maxProcs)
		if err != nil {
			return err
		}
		if jobs[i].rename != "" {
			sr.Name = jobs[i].rename
		}
		curves[i] = sr
		return nil
	}); err != nil {
		return nil, err
	}
	ds.Series = append(ds.Series, curves...)
	ds.Notes = append(ds.Notes,
		"apl=1 falls below No-Cache (every shared reference flushes and re-misses);",
		"large apl approaches and can exceed Dragon")
	return ds, nil
}

// aplSweep builds Figures 8-9: power as a function of apl at a fixed
// sharing level, for a few machine sizes.
func aplSweep(id string, shdLevel core.Level) func(context.Context, Options) (*Dataset, error) {
	return func(ctx context.Context, opt Options) (*Dataset, error) {
		base := core.MiddleParams()
		var err error
		if base, err = base.WithLevel("shd", shdLevel); err != nil {
			return nil, err
		}
		ds := &Dataset{
			ID:     id,
			Title:  fmt.Sprintf("Software-Flush power vs apl, %s sharing (bus)", shdLevel),
			XLabel: "apl (references per flush, log scale)",
			YLabel: "processing power",
			LogX:   true,
		}
		tab := &report.Table{Header: []string{"apl", "4 procs", "8 procs", "16 procs"}}
		sizes := []int{4, 8, 16}
		series := make([]plot.Series, len(sizes))
		for i, n := range sizes {
			series[i].Name = fmt.Sprintf("%d processors", n)
		}
		// The full apl x size grid is one engine call: the cells solve on
		// the worker pool (sharing the package cache) and come back in
		// input order, so the series fill exactly as the nested loop did.
		apls := []float64{1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 48, 64}
		points := make([]sweep.Point, 0, len(apls)*len(sizes))
		for _, apl := range apls {
			p, err := base.With("apl", apl)
			if err != nil {
				return nil, err
			}
			for _, n := range sizes {
				points = append(points, sweep.Point{Scheme: core.SoftwareFlush{}, Params: p, NProc: n})
			}
		}
		eng := &sweep.Engine{Cache: busEval}
		results := eng.EvaluateBusCtx(ctx, points, core.BusCosts())
		if err := sweep.FirstError(results); err != nil {
			return nil, err
		}
		for j, apl := range apls {
			row := []float64{}
			for i := range sizes {
				pw := results[j*len(sizes)+i].Bus.Power
				series[i].X = append(series[i].X, apl)
				series[i].Y = append(series[i].Y, pw)
				row = append(row, round3(pw))
			}
			tab.AddFloats(report.FormatFloat(apl), row...)
		}
		ds.Series = series
		ds.Table = tab
		if shdLevel == core.Low {
			ds.Notes = append(ds.Notes, "low sharing: performance is sensitive to apl only at small apl, then quickly saturates")
		} else {
			ds.Notes = append(ds.Notes, "medium sharing: performance stays sensitive to apl even at relatively high values")
		}
		return ds, nil
	}
}

func round3(v float64) float64 {
	return float64(int(v*1000+0.5)) / 1000
}
