// Package measure extracts the paper's Table 2 workload parameters from a
// multiprocessor address trace, the way the authors calibrated their model
// from the ATUM-2 traces:
//
//   - ls, shd, wr, apl, mdshd come from direct stream analysis;
//   - msdat, mains, md come from a Base-scheme shadow simulation with the
//     caller's cache geometry;
//   - oclean, opres, nshd come from a Dragon shadow simulation's snoop
//     observations.
package measure

import (
	"errors"
	"fmt"

	"swcc/internal/core"
	"swcc/internal/sim"
	"swcc/internal/trace"
)

// ErrEmptyTrace reports a trace with no instructions to measure.
var ErrEmptyTrace = errors.New("measure: trace has no instructions")

// Measurement holds the extracted parameters plus provenance counters
// useful for reporting.
type Measurement struct {
	// Params is the extracted Table 2 parameter set, ready to feed the
	// analytical model.
	Params core.Params
	// Runs is the number of write-containing per-processor reference
	// runs used to estimate apl.
	Runs int
	// RunRefs is the total references across those runs.
	RunRefs int
	// FlushDelimited reports whether apl/mdshd came from explicit
	// flush records (true) or from inter-processor handoffs (false).
	FlushDelimited bool
	// Base and Dragon are the shadow-simulation results, exposed so
	// validation can reuse them without re-simulating.
	Base, Dragon *sim.Result
}

// Stability quantifies how trustworthy a measurement is: it re-measures
// each half of the trace independently and reports, per parameter, the
// relative difference between the halves. Parameters that disagree badly
// between halves (short trace, phase behavior) should be treated as
// ranges, not point values — the paper makes the same caveat about its
// own short traces.
func Stability(t *trace.Trace, cache sim.CacheConfig, warmupFrac float64) (map[string]float64, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	if len(t.Refs) < 4 {
		return nil, fmt.Errorf("measure: trace too short for split-half analysis")
	}
	mid := len(t.Refs) / 2
	first := &trace.Trace{NCPU: t.NCPU, Refs: t.Refs[:mid]}
	second := &trace.Trace{NCPU: t.NCPU, Refs: t.Refs[mid:]}
	a, err := Extract(first, cache, warmupFrac)
	if err != nil {
		return nil, fmt.Errorf("measure: first half: %w", err)
	}
	b, err := Extract(second, cache, warmupFrac)
	if err != nil {
		return nil, fmt.Errorf("measure: second half: %w", err)
	}
	out := make(map[string]float64, 11)
	for _, f := range core.Fields() {
		va, vb := f.Get(&a.Params), f.Get(&b.Params)
		mean := (va + vb) / 2
		if mean == 0 {
			out[f.Name] = 0
			continue
		}
		diff := va - vb
		if diff < 0 {
			diff = -diff
		}
		out[f.Name] = diff / mean
	}
	return out, nil
}

// Extract measures all eleven parameters of the trace under the given
// cache geometry. warmupFrac in [0,1) is the leading fraction of the
// trace used only to warm the caches in the shadow simulations; 0.5 is a
// sensible default for synthetic traces, compensating for compulsory
// misses that a longer real trace would amortize.
func Extract(t *trace.Trace, cache sim.CacheConfig, warmupFrac float64) (*Measurement, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	if warmupFrac < 0 || warmupFrac >= 1 {
		return nil, fmt.Errorf("measure: warmup fraction %g not in [0,1)", warmupFrac)
	}
	warmup := int(float64(len(t.Refs)) * warmupFrac)
	m := &Measurement{}
	if err := m.streamAnalysis(t); err != nil {
		return nil, err
	}

	base, err := sim.Run(sim.Config{NCPU: t.NCPU, Cache: cache, Protocol: sim.ProtoBase, WarmupRefs: warmup}, t)
	if err != nil {
		return nil, fmt.Errorf("measure: base shadow simulation: %w", err)
	}
	m.Base = base
	tot := base.Totals()
	if tot.DataRefs() > 0 {
		m.Params.MsDat = float64(tot.DataMisses) / float64(tot.DataRefs())
	}
	if tot.Instructions > 0 {
		m.Params.MsIns = float64(tot.InstrMisses) / float64(tot.Instructions)
	}
	if misses := tot.DataMisses + tot.InstrMisses; misses > 0 {
		m.Params.MD = float64(tot.DirtyReplacements) / float64(misses)
	}

	dragon, err := sim.Run(sim.Config{NCPU: t.NCPU, Cache: cache, Protocol: sim.ProtoDragon, WarmupRefs: warmup}, t)
	if err != nil {
		return nil, fmt.Errorf("measure: dragon shadow simulation: %w", err)
	}
	m.Dragon = dragon
	m.Params.OClean = dragon.Snoop.OClean()
	m.Params.OPres = dragon.Snoop.OPres()
	m.Params.NShd = dragon.Snoop.NShd()

	if err := m.Params.Validate(); err != nil {
		return nil, fmt.Errorf("measure: extracted parameters invalid: %w", err)
	}
	return m, nil
}

// streamAnalysis fills ls, shd, wr, apl, mdshd from the raw stream.
func (m *Measurement) streamAnalysis(t *trace.Trace) error {
	var instr, data, sharedData, sharedWrites, flushes int
	for _, r := range t.Refs {
		switch {
		case r.Kind == trace.IFetch:
			instr++
		case r.Kind == trace.Flush:
			flushes++
		case r.Kind.IsData():
			data++
			if r.Shared {
				sharedData++
				if r.Kind == trace.Write {
					sharedWrites++
				}
			}
		}
	}
	if instr == 0 {
		return ErrEmptyTrace
	}
	m.Params.LS = float64(data) / float64(instr)
	if data > 0 {
		m.Params.Shd = float64(sharedData) / float64(data)
	}
	if sharedData > 0 {
		m.Params.WR = float64(sharedWrites) / float64(sharedData)
	}
	m.FlushDelimited = flushes > 0
	if m.FlushDelimited {
		m.aplFromFlushes(t)
	} else {
		m.aplFromHandoffs(t)
	}
	if m.Params.APL < 1 {
		m.Params.APL = 1
	}
	return nil
}

type runState struct {
	count    int
	hasWrite bool
}

type cpuBlock struct {
	cpu   uint8
	block uint64
}

// aplFromFlushes delimits per-processor runs on shared blocks by the
// trace's explicit flush records: apl is the mean references per
// flushed-block run, mdshd the fraction of flushes whose block was
// written during the run.
func (m *Measurement) aplFromFlushes(t *trace.Trace) {
	const blockShift = 4 // 16-byte blocks for run bookkeeping
	runs := map[cpuBlock]*runState{}
	var totalRuns, totalRefs, dirtyRuns, flushedRuns int
	for _, r := range t.Refs {
		key := cpuBlock{r.CPU, r.Addr >> blockShift}
		switch {
		case r.Kind == trace.Flush:
			flushedRuns++
			if st, ok := runs[key]; ok {
				totalRuns++
				totalRefs += st.count
				if st.hasWrite {
					dirtyRuns++
				}
				delete(runs, key)
			}
		case r.Kind.IsData() && r.Shared:
			st := runs[key]
			if st == nil {
				st = &runState{}
				runs[key] = st
			}
			st.count++
			if r.Kind == trace.Write {
				st.hasWrite = true
			}
		}
	}
	if totalRuns > 0 {
		m.Params.APL = float64(totalRefs) / float64(totalRuns)
		m.Params.MdShd = float64(dirtyRuns) / float64(totalRuns)
	}
	m.Runs = totalRuns
	m.RunRefs = totalRefs
}

// aplFromHandoffs reproduces the paper's estimate for traces without
// flush records: count references to a shared block by one processor
// (at least one a write) between references by another processor.
func (m *Measurement) aplFromHandoffs(t *trace.Trace) {
	const blockShift = 4
	type blockState struct {
		owner uint8
		run   runState
	}
	blocks := map[uint64]*blockState{}
	var totalRuns, totalRefs, dirtyRuns, allRuns int
	endRun := func(st *blockState) {
		allRuns++
		if st.run.hasWrite {
			totalRuns++
			totalRefs += st.run.count
			dirtyRuns++
		}
		st.run = runState{}
	}
	for _, r := range t.Refs {
		if !r.Kind.IsData() || !r.Shared {
			continue
		}
		blk := r.Addr >> blockShift
		st := blocks[blk]
		if st == nil {
			st = &blockState{owner: r.CPU}
			blocks[blk] = st
		}
		if r.CPU != st.owner {
			endRun(st)
			st.owner = r.CPU
		}
		st.run.count++
		if r.Kind == trace.Write {
			st.run.hasWrite = true
		}
	}
	for _, st := range blocks {
		if st.run.count > 0 {
			endRun(st)
		}
	}
	if totalRuns > 0 {
		m.Params.APL = float64(totalRefs) / float64(totalRuns)
	}
	if allRuns > 0 {
		m.Params.MdShd = float64(dirtyRuns) / float64(allRuns)
	}
	m.Runs = totalRuns
	m.RunRefs = totalRefs
}
