package measure

import (
	"errors"
	"math"
	"testing"

	"swcc/internal/sim"
	"swcc/internal/trace"
	"swcc/internal/tracegen"
)

var cache64k = sim.CacheConfig{Size: 64 * 1024, BlockSize: 16, Assoc: 2}

func TestExtractFromSyntheticTrace(t *testing.T) {
	cfg, err := tracegen.Preset("pops")
	if err != nil {
		t.Fatal(err)
	}
	cfg.InstrPerCPU = 40_000
	tr, err := tracegen.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m, err := Extract(tr, cache64k, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	p := m.Params
	if math.Abs(p.LS-cfg.LS) > 0.02 {
		t.Errorf("ls = %g, target %g", p.LS, cfg.LS)
	}
	if math.Abs(p.Shd-cfg.SharedFrac) > 0.03 {
		t.Errorf("shd = %g, target %g", p.Shd, cfg.SharedFrac)
	}
	// Read-only episodes suppress writes, so the effective write
	// fraction is WriteFrac scaled by the writing-episode share.
	wantWR := cfg.WriteFrac * (1 - cfg.ReadOnlyEpisodeFrac)
	if math.Abs(p.WR-wantWR) > 0.03 {
		t.Errorf("wr = %g, target %g", p.WR, wantWR)
	}
	if p.MsDat <= 0 || p.MsDat > 0.1 {
		t.Errorf("msdat = %g out of plausible range", p.MsDat)
	}
	if p.MsIns <= 0 || p.MsIns > 0.05 {
		t.Errorf("mains = %g out of plausible range", p.MsIns)
	}
	if p.MD < 0 || p.MD > 1 {
		t.Errorf("md = %g", p.MD)
	}
	if p.APL < 1 {
		t.Errorf("apl = %g", p.APL)
	}
	if !m.FlushDelimited {
		t.Error("pops preset emits flushes; extraction should use them")
	}
	if p.OPres <= 0 || p.OPres > 1 || p.OClean <= 0 || p.OClean > 1 {
		t.Errorf("snoop params out of range: opres=%g oclean=%g", p.OPres, p.OClean)
	}
	if p.NShd <= 0 || p.NShd > 3 {
		t.Errorf("nshd = %g out of range for 4 CPUs", p.NShd)
	}
}

func TestExtractLandsInTable7Ranges(t *testing.T) {
	// The presets substitute for the paper's traces, so the measured
	// parameters must land inside (or very near) the published
	// low..high ranges of Table 7 for the parameters the ranges were
	// derived from.
	for _, preset := range []string{"pops", "thor", "pero"} {
		cfg, err := tracegen.Preset(preset)
		if err != nil {
			t.Fatal(err)
		}
		cfg.InstrPerCPU = 40_000
		tr, err := tracegen.Generate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		m, err := Extract(tr, cache64k, 0.5)
		if err != nil {
			t.Fatal(err)
		}
		p := m.Params
		checks := []struct {
			name   string
			v      float64
			lo, hi float64
		}{
			{"ls", p.LS, 0.15, 0.45},
			{"msdat", p.MsDat, 0.002, 0.035},
			{"mains", p.MsIns, 0.0005, 0.02},
			{"shd", p.Shd, 0.05, 0.45},
			{"wr", p.WR, 0.08, 0.45},
			{"oclean", p.OClean, 0.5, 1.0},
			{"opres", p.OPres, 0.3, 1.0},
		}
		for _, c := range checks {
			if c.v < c.lo || c.v > c.hi {
				t.Errorf("%s: %s = %g outside [%g, %g]", preset, c.name, c.v, c.lo, c.hi)
			}
		}
	}
}

func TestExtractEmptyTrace(t *testing.T) {
	tr := &trace.Trace{NCPU: 1}
	if _, err := Extract(tr, cache64k, 0.5); !errors.Is(err, ErrEmptyTrace) {
		t.Errorf("want ErrEmptyTrace, got %v", err)
	}
}

func TestExtractInvalidTrace(t *testing.T) {
	tr := &trace.Trace{NCPU: 1, Refs: []trace.Ref{{CPU: 5, Kind: trace.Read}}}
	if _, err := Extract(tr, cache64k, 0.5); err == nil {
		t.Error("want error for invalid trace")
	}
}

func TestAPLFromFlushesExact(t *testing.T) {
	// One CPU: 3 refs to a block (one write) then a flush; then 5 reads
	// and a flush. apl = (3+5)/2 = 4; mdshd = 1/2.
	mk := func(kind trace.Kind, addr uint64) trace.Ref {
		return trace.Ref{Kind: kind, Addr: addr, Shared: true}
	}
	refs := []trace.Ref{
		{Kind: trace.IFetch, Addr: 0x9990},
		mk(trace.Read, 0x100), mk(trace.Write, 0x104), mk(trace.Read, 0x108),
		mk(trace.Flush, 0x100),
		mk(trace.Read, 0x200), mk(trace.Read, 0x204), mk(trace.Read, 0x208),
		mk(trace.Read, 0x20c), mk(trace.Read, 0x200),
		mk(trace.Flush, 0x200),
	}
	tr := &trace.Trace{NCPU: 1, Refs: refs}
	var m Measurement
	if err := m.streamAnalysis(tr); err != nil {
		t.Fatal(err)
	}
	if !m.FlushDelimited {
		t.Fatal("should use flush delimiting")
	}
	if m.Params.APL != 4 {
		t.Errorf("apl = %g, want 4", m.Params.APL)
	}
	if m.Params.MdShd != 0.5 {
		t.Errorf("mdshd = %g, want 0.5", m.Params.MdShd)
	}
	if m.Runs != 2 || m.RunRefs != 8 {
		t.Errorf("runs/refs = %d/%d, want 2/8", m.Runs, m.RunRefs)
	}
}

func TestAPLFromHandoffsExact(t *testing.T) {
	// No flushes: CPU0 makes 3 refs (one write) to block, CPU1 takes
	// over with 2 refs (one write), CPU0 returns with 1 read (no
	// write; excluded from apl but included in mdshd denominator).
	sh := func(cpu uint8, kind trace.Kind) trace.Ref {
		return trace.Ref{CPU: cpu, Kind: kind, Addr: 0x100, Shared: true}
	}
	refs := []trace.Ref{
		{Kind: trace.IFetch, Addr: 0x9990},
		sh(0, trace.Read), sh(0, trace.Write), sh(0, trace.Read),
		sh(1, trace.Write), sh(1, trace.Read),
		sh(0, trace.Read),
	}
	tr := &trace.Trace{NCPU: 2, Refs: refs}
	var m Measurement
	if err := m.streamAnalysis(tr); err != nil {
		t.Fatal(err)
	}
	if m.FlushDelimited {
		t.Fatal("no flushes present")
	}
	// Write-runs: (cpu0, 3 refs) and (cpu1, 2 refs): apl = 5/2.
	if m.Params.APL != 2.5 {
		t.Errorf("apl = %g, want 2.5", m.Params.APL)
	}
	// All runs: 3 (two dirty, one clean): mdshd = 2/3.
	if math.Abs(m.Params.MdShd-2.0/3.0) > 1e-12 {
		t.Errorf("mdshd = %g, want 2/3", m.Params.MdShd)
	}
}

func TestAPLClampedToOne(t *testing.T) {
	// A single shared write then a flush gives apl = 1; degenerate
	// traces below 1 clamp.
	refs := []trace.Ref{
		{Kind: trace.IFetch, Addr: 0x9990},
		{Kind: trace.Flush, Addr: 0x100, Shared: true}, // flush with no refs: ignored
	}
	tr := &trace.Trace{NCPU: 1, Refs: refs}
	var m Measurement
	if err := m.streamAnalysis(tr); err != nil {
		t.Fatal(err)
	}
	if m.Params.APL < 1 {
		t.Errorf("apl = %g, must be clamped to >= 1", m.Params.APL)
	}
}

func TestStabilityOnStationaryTrace(t *testing.T) {
	// The synthetic workloads are statistically stationary: split-half
	// measurement must agree tightly on the stream parameters.
	cfg, err := tracegen.Preset("pops")
	if err != nil {
		t.Fatal(err)
	}
	cfg.InstrPerCPU = 40_000
	tr, err := tracegen.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	st, err := Stability(tr, cache64k, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if len(st) != 11 {
		t.Fatalf("got %d parameters", len(st))
	}
	for _, p := range []string{"ls", "shd", "wr"} {
		if st[p] > 0.05 {
			t.Errorf("%s split-half divergence %.3f > 5%%", p, st[p])
		}
	}
	for p, v := range st {
		if v < 0 {
			t.Errorf("%s divergence negative: %g", p, v)
		}
	}
}

func TestStabilityErrors(t *testing.T) {
	short := &trace.Trace{NCPU: 1, Refs: []trace.Ref{{Kind: trace.IFetch}}}
	if _, err := Stability(short, cache64k, 0.25); err == nil {
		t.Error("want error for too-short trace")
	}
	bad := &trace.Trace{NCPU: 1, Refs: make([]trace.Ref, 8)}
	bad.Refs[0].CPU = 9
	if _, err := Stability(bad, cache64k, 0.25); err == nil {
		t.Error("want error for invalid trace")
	}
}

func TestExtractModelAgreementSingleCPU(t *testing.T) {
	// With one processor there is no contention and no sharing
	// overhead in Base; the model fed with measured parameters must
	// reproduce the simulator's utilization almost exactly.
	cfg := tracegen.DefaultConfig()
	cfg.NCPU = 1
	cfg.SharedFrac = 0
	cfg.EmitFlush = false
	cfg.InstrPerCPU = 50_000
	tr, err := tracegen.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m, err := Extract(tr, cache64k, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	simU := m.Base.Utilization()
	// Model: U = 1/c at one processor.
	d := modelDemand(t, m)
	modelU := 1 / d
	if math.Abs(simU-modelU)/modelU > 0.01 {
		t.Errorf("single-CPU: sim U %g vs model U %g differ > 1%%", simU, modelU)
	}
}

// modelDemand computes the Base-scheme c from measured params.
func modelDemand(t *testing.T, m *Measurement) float64 {
	t.Helper()
	p := m.Params
	miss := p.LS*p.MsDat + p.MsIns
	return 1 + miss*(1-p.MD)*10 + miss*p.MD*14
}
