package sensitivity

import (
	"testing"

	"swcc/internal/core"
	"swcc/internal/sweep"
)

func analyzeAll(t *testing.T, nproc int) *Table {
	t.Helper()
	tab, err := Analyze(core.PaperSchemes(), nproc)
	if err != nil {
		t.Fatal(err)
	}
	return tab
}

func TestAnalyzeShape(t *testing.T) {
	tab := analyzeAll(t, 16)
	if len(tab.Params) != 11 {
		t.Errorf("params = %d, want 11", len(tab.Params))
	}
	if len(tab.Schemes) != 4 {
		t.Errorf("schemes = %d, want 4", len(tab.Schemes))
	}
	for _, p := range tab.Params {
		for _, s := range tab.Schemes {
			c, ok := tab.Cell(p, s)
			if !ok {
				t.Fatalf("missing cell %s/%s", p, s)
			}
			if c.TimeLow <= 0 || c.TimeHigh <= 0 {
				t.Errorf("%s/%s: non-positive times", p, s)
			}
		}
	}
	if _, ok := tab.Cell("bogus", "Base"); ok {
		t.Error("bogus param should miss")
	}
	if _, ok := tab.Cell("ls", "bogus"); ok {
		t.Error("bogus scheme should miss")
	}
}

func TestAPLDominatesSoftwareFlush(t *testing.T) {
	// Section 4: "For the Software-Flush scheme, apl has a huge
	// effect... The impact of shd is almost as great, and ls is
	// significant as well."
	tab := analyzeAll(t, 16)
	ranked := tab.MostSensitive("Software-Flush")
	if ranked[0].Param != "apl" {
		t.Errorf("Software-Flush most sensitive to %q, want apl (ranking: %v)", ranked[0].Param, names(ranked))
	}
	if ranked[1].Param != "shd" {
		t.Errorf("second most sensitive = %q, want shd", ranked[1].Param)
	}
	aplPct := pct(t, tab, "apl", "Software-Flush")
	if aplPct < 50 {
		t.Errorf("apl effect on Software-Flush = %.1f%%, expected huge (>50%%)", aplPct)
	}
}

func TestSharingDrivesNoCache(t *testing.T) {
	// No-Cache is like Software-Flush "except that apl is not
	// relevant": shd and ls dominate.
	tab := analyzeAll(t, 16)
	if got := pct(t, tab, "apl", "No-Cache"); got != 0 {
		t.Errorf("apl must not affect No-Cache, got %.2f%%", got)
	}
	ranked := tab.MostSensitive("No-Cache")
	if ranked[0].Param != "shd" {
		t.Errorf("No-Cache most sensitive to %q, want shd", ranked[0].Param)
	}
}

func TestDragonMissRateBeatsSharing(t *testing.T) {
	// Section 4: "In the Dragon scheme, the overall hit rate is more
	// important than the level of sharing... because the cost of
	// shared references is relatively low."
	tab := analyzeAll(t, 16)
	if msdat, shd := pct(t, tab, "msdat", "Dragon"), pct(t, tab, "shd", "Dragon"); msdat <= shd {
		t.Errorf("Dragon: msdat effect %.1f%% should exceed shd effect %.1f%%", msdat, shd)
	}
}

func TestBaseIgnoresSharingParams(t *testing.T) {
	tab := analyzeAll(t, 16)
	for _, p := range []string{"shd", "wr", "apl", "mdshd", "oclean", "opres", "nshd"} {
		if got := pct(t, tab, p, "Base"); got != 0 {
			t.Errorf("Base sensitive to %s: %.2f%%", p, got)
		}
	}
	if got := pct(t, tab, "msdat", "Base"); got <= 0 {
		t.Errorf("Base must be sensitive to msdat, got %.2f%%", got)
	}
}

func TestSensitivityGrowsWithContention(t *testing.T) {
	// At one processor there is no contention; the same parameter
	// swing must hurt at least as much on a contended 16-way bus.
	one := analyzeAll(t, 1)
	sixteen := analyzeAll(t, 16)
	for _, scheme := range []string{"No-Cache", "Software-Flush"} {
		p1 := pct2(t, one, "shd", scheme)
		p16 := pct2(t, sixteen, "shd", scheme)
		if p16 < p1 {
			t.Errorf("%s shd effect: 16-proc %.1f%% < 1-proc %.1f%%", scheme, p16, p1)
		}
	}
}

func TestAnalyzeErrors(t *testing.T) {
	if _, err := Analyze(core.PaperSchemes(), 0); err == nil {
		t.Error("want error for zero processors")
	}
}

func pct(t *testing.T, tab *Table, param, scheme string) float64 {
	t.Helper()
	c, ok := tab.Cell(param, scheme)
	if !ok {
		t.Fatalf("missing cell %s/%s", param, scheme)
	}
	return c.PercentChange
}

func pct2(t *testing.T, tab *Table, param, scheme string) float64 {
	return pct(t, tab, param, scheme)
}

func names(cells []Cell) []string {
	out := make([]string, len(cells))
	for i, c := range cells {
		out[i] = c.Param
	}
	return out
}

// TestAnalyzeWithEngineVariantsIdentical checks every engine
// configuration — sequential, parallel, cached, uncached — produces a
// bit-identical table: parallelism and memoization must never change
// the numbers.
func TestAnalyzeWithEngineVariantsIdentical(t *testing.T) {
	schemes := core.PaperSchemes()
	base, err := AnalyzeWith(&sweep.Engine{Workers: 1}, schemes, 16)
	if err != nil {
		t.Fatal(err)
	}
	engines := map[string]*sweep.Engine{
		"parallel-uncached": {Workers: 8},
		"parallel-cached":   sweep.New(8),
		"sequential-cached": sweep.New(1),
		"default":           sweep.New(0),
	}
	for name, eng := range engines {
		tab, err := AnalyzeWith(eng, schemes, 16)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for _, param := range base.Params {
			for _, scheme := range base.Schemes {
				want, _ := base.Cell(param, scheme)
				got, ok := tab.Cell(param, scheme)
				if !ok || got != want {
					t.Errorf("%s: cell %s/%s = %+v, want %+v", name, param, scheme, got, want)
				}
			}
		}
	}
}
