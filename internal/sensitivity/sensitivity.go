// Package sensitivity reproduces the paper's Section 4 analysis (Table
// 8): the percent change in execution time when one workload parameter
// moves from its Table 7 low value to its high value, all other
// parameters held at their middle values.
//
// Execution time is the mean time per instruction c + w on a bus machine
// of a given size, so both demand and contention effects are captured.
package sensitivity

import (
	"context"
	"fmt"
	"sort"

	"swcc/internal/core"
	"swcc/internal/sweep"
)

// Cell is one (parameter, scheme) sensitivity result.
type Cell struct {
	// Param is the Table 2 parameter name.
	Param string
	// Scheme is the coherence scheme name.
	Scheme string
	// TimeLow and TimeHigh are execution times (cycles/instruction) at
	// the parameter's low and high Table 7 values.
	TimeLow, TimeHigh float64
	// PercentChange is 100*(TimeHigh-TimeLow)/TimeLow.
	PercentChange float64
}

// Table is the full sensitivity analysis.
type Table struct {
	// Processors is the machine size the times were computed at.
	Processors int
	// Params lists parameter names in Table 7 order.
	Params []string
	// Schemes lists scheme names in column order.
	Schemes []string
	// Cells maps param -> scheme -> cell.
	Cells map[string]map[string]Cell
}

// Cell returns the result for (param, scheme).
func (t *Table) Cell(param, scheme string) (Cell, bool) {
	row, ok := t.Cells[param]
	if !ok {
		return Cell{}, false
	}
	c, ok := row[scheme]
	return c, ok
}

// MostSensitive returns the scheme's parameters sorted by descending
// absolute percent change.
func (t *Table) MostSensitive(scheme string) []Cell {
	cells := make([]Cell, 0, len(t.Params))
	for _, p := range t.Params {
		if c, ok := t.Cell(p, scheme); ok {
			cells = append(cells, c)
		}
	}
	sort.SliceStable(cells, func(i, j int) bool {
		return abs(cells[i].PercentChange) > abs(cells[j].PercentChange)
	})
	return cells
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// Analyze runs the one-at-a-time low->high sweep for the given schemes on
// a bus machine with nproc processors, using the Table 1 costs.
func Analyze(schemes []core.Scheme, nproc int) (*Table, error) {
	return AnalyzeWith(sweep.New(0), schemes, nproc)
}

// AnalyzeWith runs the sweep on the given engine: the full
// (parameter x scheme x level) grid is evaluated on the engine's worker
// pool, and its cache collapses the cells a scheme is insensitive to
// (e.g. varying apl for Base solves once, not twice). Results are
// bit-identical to a sequential uncached run.
func AnalyzeWith(eng *sweep.Engine, schemes []core.Scheme, nproc int) (*Table, error) {
	return AnalyzeWithCtx(context.Background(), eng, schemes, nproc)
}

// AnalyzeWithCtx is AnalyzeWith under cooperative cancellation: the grid
// evaluation threads ctx into the engine, so a cancelled caller (a
// timed-out /v1/sensitivity request, an interrupted CLI run) stops
// solving cells instead of finishing a table nobody will read. The
// first error — ctx's own, for cells skipped after cancellation — is
// returned.
func AnalyzeWithCtx(ctx context.Context, eng *sweep.Engine, schemes []core.Scheme, nproc int) (*Table, error) {
	if nproc < 1 {
		return nil, fmt.Errorf("sensitivity: nproc %d < 1", nproc)
	}
	costs := core.BusCosts()
	mid := core.MiddleParams()
	tab := &Table{
		Processors: nproc,
		Cells:      map[string]map[string]Cell{},
	}
	for _, s := range schemes {
		tab.Schemes = append(tab.Schemes, s.Name())
	}
	fields := core.Fields()
	// Grid layout: [field][scheme][low, high], flattened in that order so
	// the first error reported matches the historical sequential loop.
	points := make([]sweep.Point, 0, 2*len(fields)*len(schemes))
	for _, f := range fields {
		for _, s := range schemes {
			for _, l := range []core.Level{core.Low, core.High} {
				p, err := mid.WithLevel(f.Name, l)
				if err != nil {
					return nil, err
				}
				points = append(points, sweep.Point{Scheme: s, Params: p, NProc: nproc})
			}
		}
	}
	results := eng.EvaluateBusCtx(ctx, points, costs)
	if err := sweep.FirstError(results); err != nil {
		return nil, err
	}
	i := 0
	for _, f := range fields {
		tab.Params = append(tab.Params, f.Name)
		row := map[string]Cell{}
		for _, s := range schemes {
			tLow := execTime(results[i].Bus)
			tHigh := execTime(results[i+1].Bus)
			i += 2
			row[s.Name()] = Cell{
				Param:         f.Name,
				Scheme:        s.Name(),
				TimeLow:       tLow,
				TimeHigh:      tHigh,
				PercentChange: 100 * (tHigh - tLow) / tLow,
			}
		}
		tab.Cells[f.Name] = row
	}
	return tab, nil
}

// execTime returns the mean cycles per instruction, contention included,
// from the bus point at the analyzed machine size.
func execTime(pt core.BusPoint) float64 { return 1 / pt.Utilization }
