package report

import (
	"errors"
	"testing"
)

// failWriter fails every write after `allow` bytes have been accepted.
type failWriter struct {
	allow int
}

var errInjected = errors.New("injected write failure")

func (w *failWriter) Write(p []byte) (int, error) {
	if w.allow <= 0 {
		return 0, errInjected
	}
	n := len(p)
	if n > w.allow {
		n = w.allow
		w.allow = 0
		return n, errInjected
	}
	w.allow -= n
	return n, nil
}

func TestWriteTextPropagatesWriterErrors(t *testing.T) {
	tab := sampleTable()
	if err := tab.WriteText(&failWriter{}); err == nil {
		t.Error("want error from failing writer")
	}
	if err := tab.WriteText(&failWriter{allow: 10}); err == nil {
		t.Error("want error from mid-stream failure")
	}
}

func TestWriteCSVPropagatesWriterErrors(t *testing.T) {
	tab := sampleTable()
	if err := tab.WriteCSV(&failWriter{}); err == nil {
		t.Error("want error from failing writer")
	}
}
