// Package report formats experiment results as aligned text tables and
// CSV, the output backends for the table/figure regeneration tools.
package report

import (
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ErrBadTable reports a malformed table.
var ErrBadTable = errors.New("report: malformed table")

// Table is a simple rows-and-columns text table.
type Table struct {
	// Title is printed above the table when non-empty.
	Title string
	// Header names the columns.
	Header []string
	// Rows hold the cells; every row must match the header width.
	Rows [][]string
}

// AddRow appends a row of stringified cells.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// AddFloats appends a row with a leading label and formatted floats.
func (t *Table) AddFloats(label string, vals ...float64) {
	row := make([]string, 0, len(vals)+1)
	row = append(row, label)
	for _, v := range vals {
		row = append(row, FormatFloat(v))
	}
	t.Rows = append(t.Rows, row)
}

// FormatFloat renders a float compactly: integers without decimals,
// otherwise 4 significant digits.
func FormatFloat(v float64) string {
	if v == float64(int64(v)) && v < 1e15 && v > -1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', 4, 64)
}

// validate checks row widths.
func (t *Table) validate() error {
	w := len(t.Header)
	if w == 0 {
		return fmt.Errorf("%w: empty header", ErrBadTable)
	}
	for i, r := range t.Rows {
		if len(r) != w {
			return fmt.Errorf("%w: row %d has %d cells, header has %d", ErrBadTable, i, len(r), w)
		}
	}
	return nil
}

// WriteText renders the table with aligned columns.
func (t *Table) WriteText(w io.Writer) error {
	if err := t.validate(); err != nil {
		return err
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteString("\n")
	}
	writeRow(t.Header)
	total := len(t.Header)*2 - 2
	for _, w := range widths {
		total += w
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteString("\n")
	for _, row := range t.Rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteCSV renders the table as CSV (header first).
func (t *Table) WriteCSV(w io.Writer) error {
	if err := t.validate(); err != nil {
		return err
	}
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Header); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteMarkdown renders the table as a GitHub-flavored Markdown table,
// for pasting regenerated results into the repository's documentation.
func (t *Table) WriteMarkdown(w io.Writer) error {
	if err := t.validate(); err != nil {
		return err
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "**%s**\n\n", t.Title)
	}
	writeRow := func(cells []string) {
		b.WriteString("|")
		for _, cell := range cells {
			b.WriteString(" ")
			b.WriteString(strings.ReplaceAll(cell, "|", "\\|"))
			b.WriteString(" |")
		}
		b.WriteString("\n")
	}
	writeRow(t.Header)
	b.WriteString("|")
	for range t.Header {
		b.WriteString("---|")
	}
	b.WriteString("\n")
	for _, row := range t.Rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// String renders the text form, swallowing errors into the string (for
// fmt.Stringer convenience in logs and tests).
func (t *Table) String() string {
	var b strings.Builder
	if err := t.WriteText(&b); err != nil {
		return fmt.Sprintf("<bad table: %v>", err)
	}
	return b.String()
}
