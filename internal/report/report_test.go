package report

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

func sampleTable() *Table {
	t := &Table{
		Title:  "demo",
		Header: []string{"name", "v1", "v2"},
	}
	t.AddRow("alpha", "1", "2")
	t.AddFloats("beta", 3.14159, 2.0)
	return t
}

func TestWriteText(t *testing.T) {
	var b bytes.Buffer
	if err := sampleTable().WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"demo", "name", "alpha", "beta", "3.142", "----"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	// Columns aligned: "alpha" and "beta " rows start at column 0 and
	// the header/sep lengths match.
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 {
		t.Fatalf("got %d lines, want 5:\n%s", len(lines), out)
	}
}

func TestWriteCSV(t *testing.T) {
	var b bytes.Buffer
	if err := sampleTable().WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("csv lines = %d, want 3", len(lines))
	}
	if lines[0] != "name,v1,v2" {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.HasPrefix(lines[2], "beta,3.142,2") {
		t.Errorf("row = %q", lines[2])
	}
}

func TestValidation(t *testing.T) {
	bad := &Table{Header: []string{"a", "b"}}
	bad.AddRow("only-one")
	var b bytes.Buffer
	if err := bad.WriteText(&b); !errors.Is(err, ErrBadTable) {
		t.Errorf("want ErrBadTable, got %v", err)
	}
	if err := bad.WriteCSV(&b); !errors.Is(err, ErrBadTable) {
		t.Errorf("want ErrBadTable, got %v", err)
	}
	empty := &Table{}
	if err := empty.WriteText(&b); !errors.Is(err, ErrBadTable) {
		t.Errorf("want ErrBadTable for empty header, got %v", err)
	}
	if s := bad.String(); !strings.Contains(s, "bad table") {
		t.Errorf("String on bad table = %q", s)
	}
}

func TestString(t *testing.T) {
	s := sampleTable().String()
	if !strings.Contains(s, "alpha") {
		t.Errorf("String output missing data: %q", s)
	}
}

func TestWriteMarkdown(t *testing.T) {
	var b bytes.Buffer
	tab := sampleTable()
	tab.AddRow("pipe|cell", "1", "2")
	if err := tab.WriteMarkdown(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"**demo**", "| name | v1 | v2 |", "|---|---|---|", "| alpha | 1 | 2 |", `pipe\|cell`} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	bad := &Table{Header: []string{"a"}}
	bad.AddRow("x", "y")
	if err := bad.WriteMarkdown(&b); !errors.Is(err, ErrBadTable) {
		t.Errorf("want ErrBadTable, got %v", err)
	}
}

func TestFormatFloat(t *testing.T) {
	cases := []struct {
		in   float64
		want string
	}{
		{2, "2"},
		{-3, "-3"},
		{0, "0"},
		{3.14159, "3.142"},
		{0.000123456, "0.0001235"},
		{1e20, "1e+20"},
	}
	for _, c := range cases {
		if got := FormatFloat(c.in); got != c.want {
			t.Errorf("FormatFloat(%g) = %q, want %q", c.in, got, c.want)
		}
	}
}
