package sim

import (
	"errors"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func mustCache(t *testing.T, cfg CacheConfig) *Cache {
	t.Helper()
	c, err := NewCache(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestCacheConfigValidate(t *testing.T) {
	good := []CacheConfig{
		{Size: 64 * 1024, BlockSize: 16, Assoc: 1},
		{Size: 16 * 1024, BlockSize: 16, Assoc: 4},
		{Size: 256, BlockSize: 16, Assoc: 16},
		{Size: 16, BlockSize: 16, Assoc: 1},
	}
	for _, cfg := range good {
		if err := cfg.Validate(); err != nil {
			t.Errorf("%+v: %v", cfg, err)
		}
	}
	bad := []CacheConfig{
		{Size: 0, BlockSize: 16, Assoc: 1},
		{Size: 100, BlockSize: 16, Assoc: 1},
		{Size: 64, BlockSize: 0, Assoc: 1},
		{Size: 64, BlockSize: 24, Assoc: 1},
		{Size: 8, BlockSize: 16, Assoc: 1},
		{Size: 64, BlockSize: 16, Assoc: 0},
		{Size: 64, BlockSize: 16, Assoc: 8},
		{Size: 64, BlockSize: 16, Assoc: 3},
	}
	for _, cfg := range bad {
		if err := cfg.Validate(); !errors.Is(err, ErrBadConfig) {
			t.Errorf("%+v: want ErrBadConfig, got %v", cfg, err)
		}
	}
}

func TestCacheBasicHitMiss(t *testing.T) {
	c := mustCache(t, CacheConfig{Size: 256, BlockSize: 16, Assoc: 2})
	b := c.BlockOf(0x1000)
	if c.Touch(b, false) {
		t.Error("cold cache must miss")
	}
	if v := c.Insert(b, false); v.Valid {
		t.Error("insert into empty set must not evict")
	}
	if !c.Touch(b, false) {
		t.Error("must hit after insert")
	}
	if c.IsDirty(b) {
		t.Error("clean insert + read must stay clean")
	}
	if !c.Touch(b, true) {
		t.Error("write hit")
	}
	if !c.IsDirty(b) {
		t.Error("write must dirty the line")
	}
}

func TestCacheBlockOf(t *testing.T) {
	c := mustCache(t, CacheConfig{Size: 256, BlockSize: 16, Assoc: 1})
	if c.BlockOf(0) != 0 || c.BlockOf(15) != 0 || c.BlockOf(16) != 1 || c.BlockOf(0x100) != 16 {
		t.Error("BlockOf wrong")
	}
}

func TestCacheDirectMappedConflict(t *testing.T) {
	// 4 sets of 1 line: blocks 0 and 4 conflict.
	c := mustCache(t, CacheConfig{Size: 64, BlockSize: 16, Assoc: 1})
	c.Insert(0, true)
	v := c.Insert(4, false)
	if !v.Valid || v.Block != 0 || !v.Dirty {
		t.Errorf("conflict eviction wrong: %+v", v)
	}
	if c.Present(0) {
		t.Error("evicted block still present")
	}
	if !c.Present(4) {
		t.Error("new block absent")
	}
}

func TestCacheLRUOrder(t *testing.T) {
	// 1 set of 4 ways (fully associative, 4 lines).
	c := mustCache(t, CacheConfig{Size: 64, BlockSize: 16, Assoc: 4})
	for b := uint64(0); b < 4; b++ {
		c.Insert(b*4, false) // all map to set 0 (4 sets... assoc 4, 1 set)
	}
	// With one set, any block lands there. Touch 0 to make it MRU.
	c.Touch(0, false)
	// Next insert must evict the LRU, which is block 4 (inserted
	// second, never touched again).
	v := c.Insert(100, false)
	if !v.Valid || v.Block != 4 {
		t.Errorf("LRU eviction: got %+v, want block 4", v)
	}
	if !c.Present(0) {
		t.Error("MRU block evicted")
	}
}

func TestCacheInvalidate(t *testing.T) {
	c := mustCache(t, CacheConfig{Size: 64, BlockSize: 16, Assoc: 2})
	c.Insert(7, true)
	present, wasDirty := c.Invalidate(7)
	if !present || !wasDirty {
		t.Errorf("invalidate dirty line: present=%v dirty=%v", present, wasDirty)
	}
	if c.Present(7) {
		t.Error("line still present after invalidate")
	}
	present, wasDirty = c.Invalidate(7)
	if present || wasDirty {
		t.Error("second invalidate must be a no-op")
	}
}

func TestCacheMarkClean(t *testing.T) {
	c := mustCache(t, CacheConfig{Size: 64, BlockSize: 16, Assoc: 2})
	c.Insert(3, true)
	c.MarkClean(3)
	if c.IsDirty(3) {
		t.Error("MarkClean failed")
	}
	if !c.Present(3) {
		t.Error("MarkClean must not evict")
	}
	c.MarkClean(99) // absent: no-op, no panic
}

func TestCacheInvalidLineReusedFirst(t *testing.T) {
	c := mustCache(t, CacheConfig{Size: 64, BlockSize: 16, Assoc: 4})
	c.Insert(0, false)
	c.Insert(4, true)
	c.Invalidate(0)
	// The invalid slot must be reused before any valid line is
	// evicted.
	v := c.Insert(8, false)
	if v.Valid {
		t.Errorf("eviction despite free slot: %+v", v)
	}
	if !c.Present(4) || !c.Present(8) {
		t.Error("lines lost")
	}
}

func TestCacheOccupancy(t *testing.T) {
	c := mustCache(t, CacheConfig{Size: 128, BlockSize: 16, Assoc: 2})
	if c.Occupancy() != 0 {
		t.Error("fresh cache not empty")
	}
	for b := uint64(0); b < 100; b++ {
		if !c.Touch(b, false) {
			c.Insert(b, false)
		}
	}
	if c.Occupancy() != 8 {
		t.Errorf("occupancy = %d, want 8 (full)", c.Occupancy())
	}
}

func TestCachePropertyNoDuplicateTags(t *testing.T) {
	// Under any access pattern, a block is present in at most one way,
	// and occupancy never exceeds capacity.
	f := func(seed uint64, ops []uint16) bool {
		c, err := NewCache(CacheConfig{Size: 512, BlockSize: 16, Assoc: 4})
		if err != nil {
			return false
		}
		rng := rand.New(rand.NewPCG(seed, 7))
		for _, op := range ops {
			block := uint64(op % 128)
			write := rng.IntN(2) == 0
			switch rng.IntN(4) {
			case 0:
				if !c.Touch(block, write) {
					c.Insert(block, write)
				}
			case 1:
				c.Invalidate(block)
			case 2:
				c.MarkClean(block)
			default:
				if !c.Present(block) {
					c.Insert(block, write)
				}
			}
			// Presence implies exactly one matching way.
			set := c.set(block)
			count := 0
			for i := range set {
				if set[i].state != invalid && set[i].tag == block {
					count++
				}
			}
			if count > 1 {
				return false
			}
		}
		return c.Occupancy() <= 32
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestCacheLRUSimulatesStackProperty(t *testing.T) {
	// Inclusion property of LRU: a larger fully-associative cache
	// hits whenever a smaller one does, on any access stream.
	small := mustCache(t, CacheConfig{Size: 8 * 16, BlockSize: 16, Assoc: 8})
	big := mustCache(t, CacheConfig{Size: 32 * 16, BlockSize: 16, Assoc: 32})
	rng := rand.New(rand.NewPCG(3, 9))
	for i := 0; i < 20000; i++ {
		block := uint64(rng.IntN(64))
		hitSmall := small.Touch(block, false)
		hitBig := big.Touch(block, false)
		if hitSmall && !hitBig {
			t.Fatalf("inclusion violated at access %d block %d", i, block)
		}
		if !hitSmall {
			small.Insert(block, false)
		}
		if !hitBig {
			big.Insert(block, false)
		}
	}
}
