package sim

import (
	"testing"

	"swcc/internal/trace"
	"swcc/internal/tracegen"
)

func benchTrace(b *testing.B, instr int) *trace.Trace {
	b.Helper()
	cfg, err := tracegen.Preset("pops")
	if err != nil {
		b.Fatal(err)
	}
	cfg.InstrPerCPU = instr
	tr, err := tracegen.Generate(cfg)
	if err != nil {
		b.Fatal(err)
	}
	return tr
}

// BenchmarkSimHotLoop drives the engine's per-record path (protocol
// dispatch, cost application, cache access) with each protocol; the
// allocs/op figure guards the hot loop against regressing into
// per-access allocation.
func BenchmarkSimHotLoop(b *testing.B) {
	tr := benchTrace(b, 20_000)
	cache := CacheConfig{Size: 64 * 1024, BlockSize: 16, Assoc: 2}
	for _, proto := range []Protocol{ProtoBase, ProtoDragon, ProtoNoCache, ProtoSoftwareFlush} {
		b.Run(proto.String(), func(b *testing.B) {
			cfg := Config{NCPU: tr.NCPU, Cache: cache, Protocol: proto}
			b.ReportAllocs()
			b.SetBytes(int64(len(tr.Refs)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := Run(cfg, tr); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTraceRestrict covers the counting-pass preallocation in
// trace.Restrict, which the parallel validation experiments call once
// per (scheme, machine size) job.
func BenchmarkTraceRestrict(b *testing.B) {
	tr := benchTrace(b, 20_000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if sub := tr.Restrict(2); len(sub.Refs) == 0 {
			b.Fatal("empty restriction")
		}
	}
}
