// Package sim is a trace-driven multiprocessor cache and bus simulator,
// the validation substrate of the paper (Section 3). It replays an
// interleaved multiprocessor address trace against per-processor
// set-associative write-back caches and a shared bus with the fixed
// per-operation service times of paper Table 1, for the Base, Dragon,
// No-Cache, and Software-Flush coherence schemes (plus a write-invalidate
// snoopy extension), and reports miss rates, bus contention, and
// processor utilization.
package sim

import (
	"errors"
	"fmt"
	"math/bits"
)

// ErrBadConfig reports an invalid simulator configuration.
var ErrBadConfig = errors.New("sim: invalid config")

// Policy selects the replacement policy within a set.
type Policy uint8

// Replacement policies. LRU is the paper's (and the default); FIFO and
// Random are provided for ablation studies of the validation's
// sensitivity to the policy choice.
const (
	// LRU evicts the least recently used line.
	LRU Policy = iota
	// FIFO evicts the line resident longest, ignoring hits.
	FIFO
	// Random evicts a deterministically pseudo-random line.
	Random
)

// String returns "lru", "fifo", or "random".
func (p Policy) String() string {
	switch p {
	case LRU:
		return "lru"
	case FIFO:
		return "fifo"
	case Random:
		return "random"
	default:
		return fmt.Sprintf("Policy(%d)", uint8(p))
	}
}

// PolicyByName resolves a policy name.
func PolicyByName(name string) (Policy, error) {
	switch name {
	case "lru", "LRU", "":
		return LRU, nil
	case "fifo", "FIFO":
		return FIFO, nil
	case "random", "rand":
		return Random, nil
	}
	return 0, fmt.Errorf("%w: unknown replacement policy %q", ErrBadConfig, name)
}

// CacheConfig sizes one per-processor cache.
type CacheConfig struct {
	// Size is the total capacity in bytes.
	Size int
	// BlockSize is the line size in bytes (the paper uses 16).
	BlockSize int
	// Assoc is the set associativity (1 = direct mapped).
	Assoc int
	// Replacement is the replacement policy (zero value = LRU, the
	// paper's).
	Replacement Policy
}

// Validate checks the configuration: power-of-two sizes, associativity
// dividing the line count.
func (c CacheConfig) Validate() error {
	if c.Size <= 0 || c.Size&(c.Size-1) != 0 {
		return fmt.Errorf("%w: cache size %d not a power of two", ErrBadConfig, c.Size)
	}
	if c.BlockSize <= 0 || c.BlockSize&(c.BlockSize-1) != 0 {
		return fmt.Errorf("%w: block size %d not a power of two", ErrBadConfig, c.BlockSize)
	}
	if c.Size < c.BlockSize {
		return fmt.Errorf("%w: cache size %d < block size %d", ErrBadConfig, c.Size, c.BlockSize)
	}
	if c.Assoc < 1 {
		return fmt.Errorf("%w: associativity %d", ErrBadConfig, c.Assoc)
	}
	if c.Replacement > Random {
		return fmt.Errorf("%w: replacement policy %d", ErrBadConfig, c.Replacement)
	}
	lines := c.Size / c.BlockSize
	if c.Assoc > lines {
		return fmt.Errorf("%w: associativity %d exceeds %d lines", ErrBadConfig, c.Assoc, lines)
	}
	if lines%c.Assoc != 0 {
		return fmt.Errorf("%w: %d lines not divisible by associativity %d", ErrBadConfig, lines, c.Assoc)
	}
	sets := lines / c.Assoc
	if sets&(sets-1) != 0 {
		return fmt.Errorf("%w: %d sets not a power of two", ErrBadConfig, sets)
	}
	return nil
}

// lineState is the per-line coherence-free state; protocols layer their
// semantics on top of presence + dirtiness.
type lineState uint8

const (
	invalid lineState = iota
	clean
	dirty
)

type line struct {
	tag     uint64
	state   lineState
	lastUse uint64
}

// Cache is one processor's set-associative write-back cache with true LRU
// replacement. Addresses are pre-divided by BlockSize: all methods take
// block numbers.
type Cache struct {
	cfg      CacheConfig
	sets     [][]line
	setShift uint // unused bits already removed: block num -> set index mask
	setMask  uint64
	clock    uint64
}

// NewCache builds a cache per the configuration.
func NewCache(cfg CacheConfig) (*Cache, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	nsets := cfg.Size / cfg.BlockSize / cfg.Assoc
	sets := make([][]line, nsets)
	backing := make([]line, nsets*cfg.Assoc)
	for i := range sets {
		sets[i] = backing[i*cfg.Assoc : (i+1)*cfg.Assoc]
	}
	return &Cache{
		cfg:     cfg,
		sets:    sets,
		setMask: uint64(nsets - 1),
	}, nil
}

// Config returns the cache geometry.
func (c *Cache) Config() CacheConfig { return c.cfg }

// BlockOf converts a byte address to a block number under this cache's
// block size.
func (c *Cache) BlockOf(addr uint64) uint64 {
	return addr >> uint(bits.TrailingZeros(uint(c.cfg.BlockSize)))
}

func (c *Cache) set(block uint64) []line {
	return c.sets[block&c.setMask]
}

// find returns the line holding block, or nil.
func (c *Cache) find(block uint64) *line {
	set := c.set(block)
	for i := range set {
		if set[i].state != invalid && set[i].tag == block {
			return &set[i]
		}
	}
	return nil
}

// Present reports whether the block is cached.
func (c *Cache) Present(block uint64) bool { return c.find(block) != nil }

// IsDirty reports whether the block is cached dirty.
func (c *Cache) IsDirty(block uint64) bool {
	l := c.find(block)
	return l != nil && l.state == dirty
}

// Touch records a use of a cached block for replacement bookkeeping and
// returns whether it was present (a hit). If write is true and the block
// is present it becomes dirty.
func (c *Cache) Touch(block uint64, write bool) bool {
	l := c.find(block)
	if l == nil {
		return false
	}
	if c.cfg.Replacement == LRU {
		c.clock++
		l.lastUse = c.clock
	}
	if write {
		l.state = dirty
	}
	return true
}

// Victim describes the line evicted by an Insert.
type Victim struct {
	// Block is the evicted block number.
	Block uint64
	// Dirty reports the victim needed a write-back.
	Dirty bool
	// Valid reports whether anything was evicted at all.
	Valid bool
}

// Insert fills the block into its set, evicting the LRU line if the set is
// full. If write is true the new line starts dirty. The caller is
// responsible for having verified the block missed.
func (c *Cache) Insert(block uint64, write bool) Victim {
	set := c.set(block)
	c.clock++
	var victim *line
	for i := range set {
		if set[i].state == invalid {
			victim = &set[i]
			break
		}
	}
	var out Victim
	if victim == nil {
		switch c.cfg.Replacement {
		case Random:
			// xorshift on the insertion clock: deterministic,
			// cheap, well-spread.
			r := c.clock
			r ^= r << 13
			r ^= r >> 7
			r ^= r << 17
			victim = &set[r%uint64(len(set))]
		default:
			// LRU and FIFO both evict the minimum lastUse; they
			// differ in whether Touch refreshes it.
			victim = &set[0]
			for i := 1; i < len(set); i++ {
				if set[i].lastUse < victim.lastUse {
					victim = &set[i]
				}
			}
		}
		out = Victim{Block: victim.tag, Dirty: victim.state == dirty, Valid: true}
	}
	victim.tag = block
	victim.lastUse = c.clock
	if write {
		victim.state = dirty
	} else {
		victim.state = clean
	}
	return out
}

// Invalidate removes the block if present and reports (present, wasDirty).
func (c *Cache) Invalidate(block uint64) (present, wasDirty bool) {
	l := c.find(block)
	if l == nil {
		return false, false
	}
	wasDirty = l.state == dirty
	l.state = invalid
	return true, wasDirty
}

// MarkClean downgrades a dirty block to clean (e.g. after a Dragon
// cache-to-cache supply updates memory). No-op if absent.
func (c *Cache) MarkClean(block uint64) {
	if l := c.find(block); l != nil && l.state == dirty {
		l.state = clean
	}
}

// Occupancy returns the number of valid lines (for tests and stats).
func (c *Cache) Occupancy() int {
	n := 0
	for _, set := range c.sets {
		for _, l := range set {
			if l.state != invalid {
				n++
			}
		}
	}
	return n
}
