package sim

// Bus models the shared bus as a single FCFS resource with deterministic
// per-operation hold times (the paper's simulator uses "fixed bus service
// times for the different bus operations", which is why the exponential
// analytic model slightly overestimates contention — reproducing that
// gap is part of the validation).
type Bus struct {
	freeAt uint64
	// BusyCycles accumulates total bus occupancy.
	BusyCycles uint64
	// WaitCycles accumulates total arbitration waiting.
	WaitCycles uint64
	// Transactions counts bus acquisitions.
	Transactions uint64
}

// Acquire requests the bus at time now for hold cycles. It returns the
// cycle at which the bus was granted; the caller's operation completes at
// grant + its full CPU time. A zero hold is a no-op returning now.
func (b *Bus) Acquire(now, hold uint64) (grant uint64) {
	if hold == 0 {
		return now
	}
	grant = now
	if b.freeAt > grant {
		grant = b.freeAt
	}
	b.WaitCycles += grant - now
	b.freeAt = grant + hold
	b.BusyCycles += hold
	b.Transactions++
	return grant
}

// FreeAt reports when the bus next becomes idle.
func (b *Bus) FreeAt() uint64 { return b.freeAt }

// Utilization returns the busy fraction over the given makespan.
func (b *Bus) Utilization(makespan uint64) float64 {
	if makespan == 0 {
		return 0
	}
	return float64(b.BusyCycles) / float64(makespan)
}
