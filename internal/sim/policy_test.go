package sim

import (
	"testing"

	"swcc/internal/tracegen"
)

func TestPolicyNames(t *testing.T) {
	for name, want := range map[string]Policy{"lru": LRU, "fifo": FIFO, "random": Random, "": LRU} {
		got, err := PolicyByName(name)
		if err != nil || got != want {
			t.Errorf("%q -> %v, %v", name, got, err)
		}
	}
	if _, err := PolicyByName("plru"); err == nil {
		t.Error("want error for unknown policy")
	}
	if LRU.String() != "lru" || FIFO.String() != "fifo" || Random.String() != "random" {
		t.Error("policy strings")
	}
	if Policy(9).String() == "" {
		t.Error("unknown policy must still print")
	}
	bad := CacheConfig{Size: 64, BlockSize: 16, Assoc: 2, Replacement: Policy(9)}
	if err := bad.Validate(); err == nil {
		t.Error("want validation error for unknown policy")
	}
}

func TestFIFOIgnoresTouches(t *testing.T) {
	// 1 set of 4 ways. Insert 0..3, touch 0 repeatedly, insert 4:
	// FIFO must still evict 0 (oldest insertion), unlike LRU.
	c := mustCache(t, CacheConfig{Size: 64, BlockSize: 16, Assoc: 4, Replacement: FIFO})
	for b := uint64(0); b < 4; b++ {
		c.Insert(b, false)
	}
	for i := 0; i < 10; i++ {
		c.Touch(0, false)
	}
	v := c.Insert(100, false)
	if !v.Valid || v.Block != 0 {
		t.Errorf("FIFO eviction: got %+v, want block 0", v)
	}
}

func TestRandomPolicyStaysInSet(t *testing.T) {
	c := mustCache(t, CacheConfig{Size: 64, BlockSize: 16, Assoc: 4, Replacement: Random})
	inserted := map[uint64]bool{}
	for b := uint64(0); b < 50; b++ {
		if !c.Touch(b, false) {
			v := c.Insert(b, false)
			if v.Valid && !inserted[v.Block] {
				t.Errorf("evicted block %d never inserted", v.Block)
			}
			if v.Valid {
				delete(inserted, v.Block)
			}
		}
		inserted[b] = true
	}
	if c.Occupancy() != 4 {
		t.Errorf("occupancy = %d, want 4", c.Occupancy())
	}
}

func TestLRUBeatsRandomOnLoopingWorkload(t *testing.T) {
	// A looping reference pattern with high reuse: LRU should miss no
	// more than random replacement.
	missesWith := func(p Policy) uint64 {
		cfg, err := tracegen.Preset("pops")
		if err != nil {
			t.Fatal(err)
		}
		cfg.InstrPerCPU = 15_000
		tr, err := tracegen.Generate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(Config{
			NCPU:     tr.NCPU,
			Cache:    CacheConfig{Size: 8 * 1024, BlockSize: 16, Assoc: 4, Replacement: p},
			Protocol: ProtoBase,
		}, tr)
		if err != nil {
			t.Fatal(err)
		}
		tot := res.Totals()
		return tot.DataMisses + tot.InstrMisses
	}
	lru := missesWith(LRU)
	rnd := missesWith(Random)
	if lru > rnd {
		t.Errorf("LRU misses %d exceed random %d on a high-locality workload", lru, rnd)
	}
}

func TestPolicyAffectsButDoesNotBreakValidationShape(t *testing.T) {
	// Ablation: swapping the replacement policy must keep the Base >=
	// Dragon ordering (the coherence conclusions are policy-robust).
	cfg, err := tracegen.Preset("pops")
	if err != nil {
		t.Fatal(err)
	}
	cfg.InstrPerCPU = 15_000
	tr, err := tracegen.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, pol := range []Policy{LRU, FIFO, Random} {
		cache := CacheConfig{Size: 64 * 1024, BlockSize: 16, Assoc: 2, Replacement: pol}
		base, err := Run(Config{NCPU: tr.NCPU, Cache: cache, Protocol: ProtoBase}, tr)
		if err != nil {
			t.Fatal(err)
		}
		dragon, err := Run(Config{NCPU: tr.NCPU, Cache: cache, Protocol: ProtoDragon}, tr)
		if err != nil {
			t.Fatal(err)
		}
		if base.Power() < dragon.Power() {
			t.Errorf("%v: Base %g < Dragon %g", pol, base.Power(), dragon.Power())
		}
	}
}
