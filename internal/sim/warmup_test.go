package sim

import (
	"testing"

	"swcc/internal/trace"
	"swcc/internal/tracegen"
)

func TestWarmupExcludesColdMisses(t *testing.T) {
	// A trace that touches a working set once (all misses) and then
	// re-touches it (all hits): with warmup covering the first pass,
	// the reported miss counts must be (near) zero.
	var refs []trace.Ref
	for pass := 0; pass < 2; pass++ {
		for b := uint64(0); b < 64; b++ {
			refs = append(refs, trace.Ref{Kind: trace.Read, Addr: b * 16})
		}
	}
	tr := &trace.Trace{NCPU: 1, Refs: refs}
	cfg := Config{NCPU: 1, Cache: CacheConfig{Size: 4096, BlockSize: 16, Assoc: 4}, Protocol: ProtoBase}

	cold, err := Run(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	if cold.Totals().DataMisses != 64 {
		t.Fatalf("cold run misses = %d, want 64", cold.Totals().DataMisses)
	}

	cfg.WarmupRefs = 64
	warm, err := Run(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Totals().DataMisses != 0 {
		t.Errorf("warm run misses = %d, want 0", warm.Totals().DataMisses)
	}
	if warm.Totals().Reads != 64 {
		t.Errorf("warm run reads = %d, want 64 (second pass only)", warm.Totals().Reads)
	}
	if warm.BusBusy != 0 {
		t.Errorf("warm run bus busy = %d, want 0 (all hits)", warm.BusBusy)
	}
	if warm.Makespan >= cold.Makespan {
		t.Error("post-warmup makespan must exclude warmup cycles")
	}
}

func TestWarmupAdditivity(t *testing.T) {
	// Conservation: warmup-excluded stats + stats of a warmup-only
	// prefix ~ stats of the full run. (Exact for counts on a single
	// CPU where interleaving cannot shift.)
	cfg := tracegen.DefaultConfig()
	cfg.NCPU = 1
	cfg.InstrPerCPU = 10_000
	tr, err := tracegen.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	simCfg := Config{NCPU: 1, Cache: CacheConfig{Size: 16 * 1024, BlockSize: 16, Assoc: 2}, Protocol: ProtoBase}
	full, err := Run(simCfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	half := len(tr.Refs) / 2
	simCfg.WarmupRefs = half
	tail, err := Run(simCfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	prefix := &trace.Trace{NCPU: 1, Refs: tr.Refs[:half]}
	simCfgHead := Config{NCPU: 1, Cache: simCfg.Cache, Protocol: ProtoBase}
	head, err := Run(simCfgHead, prefix)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := head.Totals().DataMisses+tail.Totals().DataMisses, full.Totals().DataMisses; got != want {
		t.Errorf("miss additivity: %d != %d", got, want)
	}
	if got, want := head.Makespan+tail.Makespan, full.Makespan; got != want {
		t.Errorf("cycle additivity: %d != %d", got, want)
	}
}

func TestWarmupErrors(t *testing.T) {
	tr := &trace.Trace{NCPU: 1, Refs: []trace.Ref{{Kind: trace.Read, Addr: 1}}}
	cfg := Config{NCPU: 1, Cache: testCache, Protocol: ProtoBase}
	cfg.WarmupRefs = -1
	if _, err := Run(cfg, tr); err == nil {
		t.Error("want error for negative warmup")
	}
	cfg.WarmupRefs = 1
	if _, err := Run(cfg, tr); err == nil {
		t.Error("want error for warmup covering the whole trace")
	}
}
