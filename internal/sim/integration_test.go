package sim

import (
	"testing"

	"swcc/internal/trace"
	"swcc/internal/tracegen"
)

func genTrace(t *testing.T, preset string, instr int) *trace.Trace {
	t.Helper()
	cfg, err := tracegen.Preset(preset)
	if err != nil {
		t.Fatal(err)
	}
	cfg.InstrPerCPU = instr
	tr, err := tracegen.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestSimulationDeterministic(t *testing.T) {
	tr := genTrace(t, "pops", 10_000)
	cfg := Config{NCPU: tr.NCPU, Cache: CacheConfig{Size: 64 * 1024, BlockSize: 16, Assoc: 2}, Protocol: ProtoDragon}
	a, err := Run(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	if a.Makespan != b.Makespan || a.BusBusy != b.BusBusy {
		t.Error("simulation not deterministic")
	}
	for c := range a.PerCPU {
		if a.PerCPU[c] != b.PerCPU[c] {
			t.Errorf("cpu %d stats differ", c)
		}
	}
}

func TestSimulationInvariants(t *testing.T) {
	tr := genTrace(t, "pops", 20_000)
	for _, proto := range []Protocol{ProtoBase, ProtoDragon, ProtoNoCache, ProtoSoftwareFlush, ProtoWriteInvalidate} {
		cfg := Config{NCPU: tr.NCPU, Cache: CacheConfig{Size: 64 * 1024, BlockSize: 16, Assoc: 2}, Protocol: proto}
		res, err := Run(cfg, tr)
		if err != nil {
			t.Fatalf("%v: %v", proto, err)
		}
		if res.BusBusy > res.Makespan {
			t.Errorf("%v: bus busy %d exceeds makespan %d", proto, res.BusBusy, res.Makespan)
		}
		if p := res.Power(); p <= 0 || p > float64(tr.NCPU) {
			t.Errorf("%v: power %g out of (0, ncpu]", proto, p)
		}
		tot := res.Totals()
		if tot.DataMisses > tot.DataRefs() {
			t.Errorf("%v: more data misses than data refs", proto)
		}
		if tot.InstrMisses > tot.Instructions {
			t.Errorf("%v: more instruction misses than instructions", proto)
		}
		wantInstr := uint64(tr.NCPU * 20_000)
		if tot.Instructions != wantInstr {
			t.Errorf("%v: instructions = %d, want %d", proto, tot.Instructions, wantInstr)
		}
		// Every CPU must have advanced.
		for c, s := range res.PerCPU {
			if s.Cycles == 0 {
				t.Errorf("%v: cpu %d never ran", proto, c)
			}
		}
	}
}

func TestSchemeOrderingUnderSimulation(t *testing.T) {
	// The paper's qualitative result must hold in simulation too:
	// Base >= Dragon > No-Cache, with Software-Flush in between the
	// last two for episode-sized apl.
	tr := genTrace(t, "pops", 30_000)
	cache := CacheConfig{Size: 64 * 1024, BlockSize: 16, Assoc: 2}
	power := map[Protocol]float64{}
	for _, proto := range []Protocol{ProtoBase, ProtoDragon, ProtoNoCache, ProtoSoftwareFlush} {
		res, err := Run(Config{NCPU: tr.NCPU, Cache: cache, Protocol: proto}, tr)
		if err != nil {
			t.Fatal(err)
		}
		power[proto] = res.Power()
	}
	if power[ProtoBase] < power[ProtoDragon] {
		t.Errorf("Base %g < Dragon %g", power[ProtoBase], power[ProtoDragon])
	}
	if power[ProtoDragon] <= power[ProtoNoCache] {
		t.Errorf("Dragon %g <= No-Cache %g", power[ProtoDragon], power[ProtoNoCache])
	}
	if power[ProtoSoftwareFlush] <= power[ProtoNoCache] {
		t.Errorf("Software-Flush %g <= No-Cache %g", power[ProtoSoftwareFlush], power[ProtoNoCache])
	}
	if power[ProtoSoftwareFlush] >= power[ProtoBase] {
		t.Errorf("Software-Flush %g >= Base %g", power[ProtoSoftwareFlush], power[ProtoBase])
	}
}

func TestLargerCachesMissLess(t *testing.T) {
	tr := genTrace(t, "pero", 30_000)
	var prevMisses uint64 = 1 << 62
	for _, size := range []int{16 * 1024, 64 * 1024, 256 * 1024} {
		res, err := Run(Config{NCPU: tr.NCPU, Cache: CacheConfig{Size: size, BlockSize: 16, Assoc: 2}, Protocol: ProtoDragon}, tr)
		if err != nil {
			t.Fatal(err)
		}
		tot := res.Totals()
		misses := tot.DataMisses + tot.InstrMisses
		if misses > prevMisses {
			t.Errorf("cache %dK: misses %d grew from %d", size/1024, misses, prevMisses)
		}
		prevMisses = misses
	}
}

func TestMoreProcessorsMoreBusContention(t *testing.T) {
	// Per-reference bus wait should grow with processor count for a
	// bus-hungry protocol.
	cache := CacheConfig{Size: 16 * 1024, BlockSize: 16, Assoc: 2}
	waitPerInstr := func(preset string, instr int) float64 {
		tr := genTrace(t, preset, instr)
		res, err := Run(Config{NCPU: tr.NCPU, Cache: cache, Protocol: ProtoNoCache}, tr)
		if err != nil {
			t.Fatal(err)
		}
		tot := res.Totals()
		return float64(tot.BusWait) / float64(tot.Instructions)
	}
	w4 := waitPerInstr("pero", 20_000)
	w8 := waitPerInstr("pero8", 20_000)
	if w8 <= w4 {
		t.Errorf("8-cpu wait/instr %g should exceed 4-cpu %g", w8, w4)
	}
}

func TestDragonMissRateBelowSoftwareFlush(t *testing.T) {
	// Software-Flush re-misses on every flushed region; Dragon keeps
	// shared lines resident. Its data miss count must be lower.
	tr := genTrace(t, "pops", 30_000)
	cache := CacheConfig{Size: 64 * 1024, BlockSize: 16, Assoc: 2}
	dragon, err := Run(Config{NCPU: tr.NCPU, Cache: cache, Protocol: ProtoDragon}, tr)
	if err != nil {
		t.Fatal(err)
	}
	sf, err := Run(Config{NCPU: tr.NCPU, Cache: cache, Protocol: ProtoSoftwareFlush}, tr)
	if err != nil {
		t.Fatal(err)
	}
	if dragon.Totals().DataMisses >= sf.Totals().DataMisses {
		t.Errorf("Dragon misses %d should be below Software-Flush %d",
			dragon.Totals().DataMisses, sf.Totals().DataMisses)
	}
}

func TestSnoopStatsInRange(t *testing.T) {
	tr := genTrace(t, "pops", 30_000)
	res, err := Run(Config{NCPU: tr.NCPU, Cache: CacheConfig{Size: 64 * 1024, BlockSize: 16, Assoc: 2}, Protocol: ProtoDragon}, tr)
	if err != nil {
		t.Fatal(err)
	}
	s := res.Snoop
	if o := s.OPres(); o < 0 || o > 1 {
		t.Errorf("opres = %g", o)
	}
	if o := s.OClean(); o < 0 || o > 1 {
		t.Errorf("oclean = %g", o)
	}
	if n := s.NShd(); n < 0 || n > float64(tr.NCPU-1) {
		t.Errorf("nshd = %g", n)
	}
	if s.SharedRefs == 0 || s.Broadcasts == 0 {
		t.Error("expected sharing activity in pops trace")
	}
}
