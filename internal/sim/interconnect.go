package sim

import (
	"fmt"
	"math/bits"
)

// Medium selects the processor-memory interconnect the simulator models.
type Medium uint8

// Interconnect media. The paper validates its model on a bus (Section 3)
// and leaves network validation to future work ("we hope to ... validate
// our methodology against simulation"); MediumNetwork supplies that.
const (
	// MediumBus is the shared bus with FCFS arbitration (the paper's
	// validation substrate).
	MediumBus Medium = iota
	// MediumNetwork is a circuit-switched butterfly of 2x2 switches:
	// a transaction holds one link per stage for its whole duration,
	// and conflicting transactions queue on the links they share.
	MediumNetwork
)

// String names the medium.
func (m Medium) String() string {
	switch m {
	case MediumBus:
		return "bus"
	case MediumNetwork:
		return "network"
	default:
		return fmt.Sprintf("Medium(%d)", uint8(m))
	}
}

// interconnect abstracts the shared medium for the engine: a transaction
// by cpu to addr asks for `hold` cycles of occupancy starting no earlier
// than now, and is granted at the returned cycle.
type interconnect interface {
	acquire(cpu int, addr uint64, now, hold uint64) (grant uint64)
	stats() (busy, wait, transactions uint64)
}

// busInterconnect adapts Bus.
type busInterconnect struct {
	bus Bus
}

func (b *busInterconnect) acquire(_ int, _ uint64, now, hold uint64) uint64 {
	return b.bus.Acquire(now, hold)
}

func (b *busInterconnect) stats() (uint64, uint64, uint64) {
	return b.bus.BusyCycles, b.bus.WaitCycles, b.bus.Transactions
}

// multistage is a circuit-switched butterfly. Unlike the analytical
// model's drop-and-retry discipline, blocked transactions here wait for
// the earliest instant all their links are free — a queued approximation
// that keeps the simulator event-driven. (The two disciplines bracket
// real behavior; see internal/netsim for the retry-faithful simulator.)
type multistage struct {
	stages     int
	ports      int
	blockShift uint
	// free[s][l] is when link l of stage s next becomes free.
	free [][]uint64

	busy, waiting, trans uint64
}

// newMultistage builds a network with enough stages for nproc processors;
// memory modules are block-interleaved with the given block size.
func newMultistage(nproc, blockSize int) *multistage {
	stages := 1
	for 1<<stages < nproc {
		stages++
	}
	m := &multistage{
		stages:     stages,
		ports:      1 << stages,
		blockShift: uint(bits.TrailingZeros(uint(blockSize))),
	}
	m.free = make([][]uint64, stages)
	for s := range m.free {
		m.free[s] = make([]uint64, m.ports)
	}
	return m
}

// linkOf is the butterfly link resource at stage s (0-based) on the path
// src -> dst: dst's top s+1 bits, src's remaining low bits.
func (m *multistage) linkOf(stage, src, dst int) int {
	low := m.stages - 1 - stage
	return (dst>>low)<<low | (src & (1<<low - 1))
}

func (m *multistage) acquire(cpu int, addr uint64, now, hold uint64) uint64 {
	if hold == 0 {
		return now
	}
	// Memory module: block-interleaved across the ports.
	dst := int(addr>>m.blockShift) & (m.ports - 1)
	grant := now
	for s := 0; s < m.stages; s++ {
		if f := m.free[s][m.linkOf(s, cpu, dst)]; f > grant {
			grant = f
		}
	}
	until := grant + hold
	for s := 0; s < m.stages; s++ {
		m.free[s][m.linkOf(s, cpu, dst)] = until
	}
	m.busy += hold
	m.waiting += grant - now
	m.trans++
	return grant
}

func (m *multistage) stats() (uint64, uint64, uint64) {
	return m.busy, m.waiting, m.trans
}
