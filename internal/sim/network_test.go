package sim

import (
	"errors"
	"testing"

	"swcc/internal/trace"
	"swcc/internal/tracegen"
)

func TestMediumStrings(t *testing.T) {
	if MediumBus.String() != "bus" || MediumNetwork.String() != "network" {
		t.Error("medium names")
	}
	if Medium(9).String() == "" {
		t.Error("unknown medium must print")
	}
}

func TestNetworkMediumTimingSingleCPU(t *testing.T) {
	// One processor, 2-stage network (nproc<=4 -> stages=1 for 2...
	// NCPU=1 -> stages=1): clean miss costs 9+2n CPU, 6+2n network.
	tr := &trace.Trace{NCPU: 1, Refs: []trace.Ref{
		{Kind: trace.IFetch, Addr: 0x1000}, // instr 1 + clean fetch 9+2
		{Kind: trace.IFetch, Addr: 0x1004}, // instr 1
	}}
	res, err := Run(Config{NCPU: 1, Cache: testCache, Protocol: ProtoBase, Medium: MediumNetwork}, tr)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.PerCPU[0].Cycles; got != 1+9+2+1 {
		t.Errorf("cycles = %d, want 13 (1 + clean fetch 11 + 1)", got)
	}
	if res.BusBusy != 8 {
		t.Errorf("network occupancy = %d, want 8 (6+2n, n=1)", res.BusBusy)
	}
}

func TestNetworkMediumRejectsSnoopy(t *testing.T) {
	tr := &trace.Trace{NCPU: 2, Refs: []trace.Ref{{Kind: trace.Read, Addr: 1}}}
	for _, proto := range []Protocol{ProtoDragon, ProtoWriteInvalidate} {
		_, err := Run(Config{NCPU: 2, Cache: testCache, Protocol: proto, Medium: MediumNetwork}, tr)
		if !errors.Is(err, ErrBadConfig) {
			t.Errorf("%v on network: want ErrBadConfig, got %v", proto, err)
		}
	}
	if _, err := Run(Config{NCPU: 1, Cache: testCache, Protocol: ProtoBase, Medium: Medium(7)}, tr.Restrict(1)); err == nil {
		t.Error("want error for unknown medium")
	}
}

func TestNetworkParallelismBeatsBusUnderLoad(t *testing.T) {
	// A 16-processor No-Cache workload saturates the bus; the
	// network's parallel links must deliver more power despite the
	// higher per-transaction cost.
	cfg := tracegen.DefaultConfig()
	cfg.NCPU = 16
	cfg.InstrPerCPU = 8000
	cfg.SharedFrac = 0.4
	cfg.LS = 0.4
	tr, err := tracegen.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cache := CacheConfig{Size: 64 * 1024, BlockSize: 16, Assoc: 2}
	bus, err := Run(Config{NCPU: 16, Cache: cache, Protocol: ProtoNoCache, Medium: MediumBus}, tr)
	if err != nil {
		t.Fatal(err)
	}
	net, err := Run(Config{NCPU: 16, Cache: cache, Protocol: ProtoNoCache, Medium: MediumNetwork}, tr)
	if err != nil {
		t.Fatal(err)
	}
	if net.Power() <= bus.Power() {
		t.Errorf("16-proc No-Cache: network power %.2f should beat saturated bus %.2f",
			net.Power(), bus.Power())
	}
}

func TestBusBeatsNetworkSingleCPUSim(t *testing.T) {
	// With one processor there is no contention and the network's
	// path-setup cost is pure overhead.
	cfg := tracegen.DefaultConfig()
	cfg.NCPU = 1
	cfg.InstrPerCPU = 5000
	tr, err := tracegen.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cache := CacheConfig{Size: 64 * 1024, BlockSize: 16, Assoc: 2}
	bus, err := Run(Config{NCPU: 1, Cache: cache, Protocol: ProtoSoftwareFlush, Medium: MediumBus}, tr)
	if err != nil {
		t.Fatal(err)
	}
	net, err := Run(Config{NCPU: 1, Cache: cache, Protocol: ProtoSoftwareFlush, Medium: MediumNetwork}, tr)
	if err != nil {
		t.Fatal(err)
	}
	if bus.Power() <= net.Power() {
		t.Errorf("1-proc: bus power %.3f should beat network %.3f", bus.Power(), net.Power())
	}
}

func TestMultistageLinkConflicts(t *testing.T) {
	// Two processors hitting the same memory module must serialize on
	// the final-stage link; different modules on disjoint paths must
	// not. 4-CPU network (2 stages), block-interleaved modules.
	mk := func(cpu uint8, addr uint64) trace.Ref {
		return trace.Ref{CPU: cpu, Kind: trace.Read, Addr: addr}
	}
	cache := CacheConfig{Size: 1024, BlockSize: 16, Assoc: 2}
	// Same module 0 (addresses 0x0 and 0x400 both have block%4 == 0).
	same := &trace.Trace{NCPU: 4, Refs: []trace.Ref{mk(0, 0x0), mk(1, 0x400)}}
	resSame, err := Run(Config{NCPU: 4, Cache: cache, Protocol: ProtoBase, Medium: MediumNetwork}, same)
	if err != nil {
		t.Fatal(err)
	}
	if resSame.BusWait == 0 {
		t.Error("same-module transactions should conflict")
	}
	// Modules 0 and 3 from sources 0 and 3: paths are link-disjoint
	// in a butterfly (source and destination bits both differ).
	diff := &trace.Trace{NCPU: 4, Refs: []trace.Ref{mk(0, 0x0), mk(3, 0x430)}}
	resDiff, err := Run(Config{NCPU: 4, Cache: cache, Protocol: ProtoBase, Medium: MediumNetwork}, diff)
	if err != nil {
		t.Fatal(err)
	}
	if resDiff.BusWait != 0 {
		t.Errorf("disjoint paths should not conflict (wait=%d)", resDiff.BusWait)
	}
}
