package sim

import (
	"fmt"

	"swcc/internal/core"
	"swcc/internal/trace"
)

// Protocol selects the coherence scheme the simulator enforces.
type Protocol int

// The simulated coherence schemes. WriteInvalidate is an extension beyond
// the paper (an invalidation-based snoopy protocol to contrast with
// Dragon's update-based one).
const (
	ProtoBase Protocol = iota
	ProtoDragon
	ProtoNoCache
	ProtoSoftwareFlush
	ProtoWriteInvalidate
)

// String returns the protocol name.
func (p Protocol) String() string {
	switch p {
	case ProtoBase:
		return "Base"
	case ProtoDragon:
		return "Dragon"
	case ProtoNoCache:
		return "No-Cache"
	case ProtoSoftwareFlush:
		return "Software-Flush"
	case ProtoWriteInvalidate:
		return "Write-Invalidate"
	}
	return fmt.Sprintf("Protocol(%d)", int(p))
}

// valid reports whether p is a known protocol.
func (p Protocol) valid() bool {
	return p >= ProtoBase && p <= ProtoWriteInvalidate
}

// protoByScheme maps a registered scheme's canonical name to its
// simulator protocol. Registered schemes absent here (Directory,
// Hybrid, the priority-bus discipline, ...) are analytic-model-only:
// asking the simulator for them is ErrBadConfig, not a silent fallback.
var protoByScheme = map[string]Protocol{
	"Base":             ProtoBase,
	"Dragon":           ProtoDragon,
	"No-Cache":         ProtoNoCache,
	"Software-Flush":   ProtoSoftwareFlush,
	"Write-Invalidate": ProtoWriteInvalidate,
}

// ProtocolByName resolves a protocol name through the scheme registry,
// so every registered spelling works (base, swflush, software-flush,
// wi, mesi, ...). Names the registry knows but the simulator does not
// implement report which protocols are simulatable.
func ProtocolByName(name string) (Protocol, error) {
	info, ok := core.SchemeInfoByName(name)
	if !ok {
		return 0, fmt.Errorf("%w: unknown protocol %q", ErrBadConfig, name)
	}
	p, ok := protoByScheme[info.Scheme.Name()]
	if !ok {
		return 0, fmt.Errorf("%w: scheme %q has no trace-driven protocol (simulatable: base, dragon, nocache, swflush, wi)",
			ErrBadConfig, info.Scheme.Name())
	}
	return p, nil
}

// Config describes one simulation run.
type Config struct {
	// NCPU is the number of processors; it must be at least the
	// trace's NCPU.
	NCPU int
	// Cache sizes each per-processor cache.
	Cache CacheConfig
	// Protocol is the coherence scheme.
	Protocol Protocol
	// Medium selects the interconnect: the shared bus (default) or a
	// circuit-switched multistage network. Snoopy protocols (Dragon,
	// Write-Invalidate) need a broadcast medium and are rejected on
	// the network, exactly as in the analytical model.
	Medium Medium
	// WarmupRefs, when positive, excludes the first WarmupRefs trace
	// records from all reported statistics: they warm the caches but
	// neither their cycles nor their misses count. This compensates
	// for traces too short to fill large caches (the paper observed
	// the same artifact: "the traces were not long enough to fill up
	// the large caches").
	WarmupRefs int
}

// CPUStats accumulates one processor's activity.
type CPUStats struct {
	// Instructions counts productive instructions (ifetch records);
	// flush instructions are overhead and counted separately.
	Instructions uint64
	// Flushes counts flush instructions executed.
	Flushes uint64
	// Reads and Writes count data references.
	Reads, Writes uint64
	// DataMisses and InstrMisses count cache misses by stream.
	DataMisses, InstrMisses uint64
	// DirtyReplacements counts misses whose victim needed a
	// write-back.
	DirtyReplacements uint64
	// CleanFlushes and DirtyFlushes split flush executions by the
	// flushed line's state (absent lines count as clean).
	CleanFlushes, DirtyFlushes uint64
	// ReadThroughs and WriteThroughs count No-Cache bypass operations.
	ReadThroughs, WriteThroughs uint64
	// Broadcasts counts Dragon write-broadcasts (or invalidation
	// transactions under Write-Invalidate).
	Broadcasts uint64
	// CacheSupplied counts misses filled by another cache.
	CacheSupplied uint64
	// StolenCycles counts cycles this processor lost updating its
	// cache on others' broadcasts.
	StolenCycles uint64
	// BusWait accumulates arbitration delay suffered.
	BusWait uint64
	// Cycles is the processor's final clock.
	Cycles uint64
}

// DataRefs returns loads+stores.
func (s CPUStats) DataRefs() uint64 { return s.Reads + s.Writes }

// Utilization is the productive fraction: one cycle per instruction over
// the processor's elapsed cycles.
func (s CPUStats) Utilization() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Instructions) / float64(s.Cycles)
}

// SnoopStats accumulates the cross-cache observations that calibrate the
// Dragon model parameters (oclean, opres, nshd).
type SnoopStats struct {
	// SharedRefs counts data references flagged shared.
	SharedRefs uint64
	// PresentElsewhere counts shared references for which at least one
	// other cache held the block.
	PresentElsewhere uint64
	// SharedMisses counts misses on shared blocks.
	SharedMisses uint64
	// DirtyElsewhere counts shared misses with a dirty copy in another
	// cache.
	DirtyElsewhere uint64
	// Broadcasts and Holders accumulate write-broadcast fan-out.
	Broadcasts, Holders uint64
}

// OPres estimates the opres parameter.
func (s SnoopStats) OPres() float64 {
	if s.SharedRefs == 0 {
		return 0
	}
	return float64(s.PresentElsewhere) / float64(s.SharedRefs)
}

// OClean estimates the oclean parameter.
func (s SnoopStats) OClean() float64 {
	if s.SharedMisses == 0 {
		return 1
	}
	return 1 - float64(s.DirtyElsewhere)/float64(s.SharedMisses)
}

// NShd estimates the nshd parameter.
func (s SnoopStats) NShd() float64 {
	if s.Broadcasts == 0 {
		return 0
	}
	return float64(s.Holders) / float64(s.Broadcasts)
}

// Result is the outcome of a simulation run.
type Result struct {
	// Config echoes the run configuration.
	Config Config
	// PerCPU holds one stats record per processor.
	PerCPU []CPUStats
	// BusBusy, BusWait, BusTransactions summarize the bus.
	BusBusy, BusWait, BusTransactions uint64
	// Makespan is the largest per-processor final clock.
	Makespan uint64
	// Snoop holds the cross-cache observations.
	Snoop SnoopStats
}

// Power returns the machine's processing power: the sum over processors
// of their productive utilization.
func (r *Result) Power() float64 {
	p := 0.0
	for _, s := range r.PerCPU {
		p += s.Utilization()
	}
	return p
}

// Utilization returns mean per-processor utilization.
func (r *Result) Utilization() float64 {
	if len(r.PerCPU) == 0 {
		return 0
	}
	return r.Power() / float64(len(r.PerCPU))
}

// BusUtilization returns the bus busy fraction over the makespan.
func (r *Result) BusUtilization() float64 {
	if r.Makespan == 0 {
		return 0
	}
	return float64(r.BusBusy) / float64(r.Makespan)
}

// Totals sums the per-CPU stats.
func (r *Result) Totals() CPUStats {
	var t CPUStats
	for _, s := range r.PerCPU {
		t.Instructions += s.Instructions
		t.Flushes += s.Flushes
		t.Reads += s.Reads
		t.Writes += s.Writes
		t.DataMisses += s.DataMisses
		t.InstrMisses += s.InstrMisses
		t.DirtyReplacements += s.DirtyReplacements
		t.CleanFlushes += s.CleanFlushes
		t.DirtyFlushes += s.DirtyFlushes
		t.ReadThroughs += s.ReadThroughs
		t.WriteThroughs += s.WriteThroughs
		t.Broadcasts += s.Broadcasts
		t.CacheSupplied += s.CacheSupplied
		t.StolenCycles += s.StolenCycles
		t.BusWait += s.BusWait
		if s.Cycles > t.Cycles {
			t.Cycles = s.Cycles
		}
	}
	return t
}

// engine holds the mutable simulation state.
type engine struct {
	cfg    Config
	costs  *core.CostTable
	caches []*Cache
	ic     interconnect
	clocks []uint64
	stats  []CPUStats
	snoop  SnoopStats

	// Hot-loop precomputation: the protocol tests and float->cycle cost
	// conversions run once per trace record, so they are resolved once
	// here instead of per access.
	snoopy, dragon, wi, nocache, swflush bool
	opCPU, opIC                          []uint64 // indexed by core.Op
	stealCycles                          uint64
}

// prepare fills the precomputed fields from cfg and the cost table.
func (e *engine) prepare() {
	e.dragon = e.cfg.Protocol == ProtoDragon
	e.wi = e.cfg.Protocol == ProtoWriteInvalidate
	e.nocache = e.cfg.Protocol == ProtoNoCache
	e.swflush = e.cfg.Protocol == ProtoSoftwareFlush
	e.snoopy = e.dragon || e.wi
	ops := core.Ops()
	e.opCPU = make([]uint64, len(ops))
	e.opIC = make([]uint64, len(ops))
	for _, op := range ops {
		c := e.costs.Cost(op)
		e.opCPU[op] = uint64(c.CPU)
		e.opIC[op] = uint64(c.Interconnect)
	}
	e.stealCycles = e.opCPU[core.OpCycleSteal]
}

// Run simulates the trace under the configuration and returns the result.
func Run(cfg Config, t *trace.Trace) (*Result, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	if cfg.NCPU == 0 {
		cfg.NCPU = t.NCPU
	}
	if cfg.NCPU < t.NCPU {
		return nil, fmt.Errorf("%w: config ncpu %d < trace ncpu %d", ErrBadConfig, cfg.NCPU, t.NCPU)
	}
	if !cfg.Protocol.valid() {
		return nil, fmt.Errorf("%w: unknown protocol %d", ErrBadConfig, int(cfg.Protocol))
	}
	e := &engine{
		cfg:    cfg,
		caches: make([]*Cache, cfg.NCPU),
		clocks: make([]uint64, cfg.NCPU),
		stats:  make([]CPUStats, cfg.NCPU),
	}
	// Operation costs scale with the block size (one bus/network cycle
	// per transferred word), per the paper's own cost derivations.
	words := cfg.Cache.BlockSize / 4
	switch cfg.Medium {
	case MediumBus:
		e.costs = core.BusCostsForBlock(words)
		e.ic = &busInterconnect{}
	case MediumNetwork:
		if cfg.Protocol == ProtoDragon || cfg.Protocol == ProtoWriteInvalidate {
			return nil, fmt.Errorf("%w: snoopy protocol %v needs a broadcast medium, not a network", ErrBadConfig, cfg.Protocol)
		}
		net := newMultistage(cfg.NCPU, cfg.Cache.BlockSize)
		e.costs = core.NetworkCostsForBlock(net.stages, words)
		e.ic = net
	default:
		return nil, fmt.Errorf("%w: unknown medium %d", ErrBadConfig, uint8(cfg.Medium))
	}
	for i := range e.caches {
		c, err := NewCache(cfg.Cache)
		if err != nil {
			return nil, err
		}
		e.caches[i] = c
	}
	e.prepare()

	if cfg.WarmupRefs < 0 || (cfg.WarmupRefs > 0 && cfg.WarmupRefs >= len(t.Refs)) {
		return nil, fmt.Errorf("%w: warmup %d out of range for %d records", ErrBadConfig, cfg.WarmupRefs, len(t.Refs))
	}

	streams := t.PerCPU()
	cursor := make([]int, len(streams))
	processed := 0
	var warmStats []CPUStats
	var warmClocks []uint64
	var warmBusy, warmWait, warmTrans uint64
	var warmSnoop SnoopStats
	remaining := len(t.Refs)
	for remaining > 0 {
		if processed == cfg.WarmupRefs && cfg.WarmupRefs > 0 {
			warmStats = append([]CPUStats(nil), e.stats...)
			warmClocks = append([]uint64(nil), e.clocks...)
			warmBusy, warmWait, warmTrans = e.ic.stats()
			warmSnoop = e.snoop
		}
		// Advance the processor with the smallest clock that still
		// has work: an event-driven interleaving that lets timing,
		// not trace position, order cross-processor references (the
		// paper notes this distorts ordering only slightly).
		cpu := -1
		for c := range streams {
			if cursor[c] >= len(streams[c]) {
				continue
			}
			if cpu < 0 || e.clocks[c] < e.clocks[cpu] {
				cpu = c
			}
		}
		ref := streams[cpu][cursor[cpu]]
		cursor[cpu]++
		remaining--
		processed++
		e.step(int(ref.CPU), ref)
	}

	busy, wait, trans := e.ic.stats()
	res := &Result{
		Config:          cfg,
		PerCPU:          e.stats,
		BusBusy:         busy - warmBusy,
		BusWait:         wait - warmWait,
		BusTransactions: trans - warmTrans,
		Snoop:           subtractSnoop(e.snoop, warmSnoop),
	}
	for c := range e.stats {
		if warmStats != nil {
			res.PerCPU[c] = subtractStats(e.stats[c], warmStats[c])
			res.PerCPU[c].Cycles = e.clocks[c] - warmClocks[c]
		} else {
			res.PerCPU[c].Cycles = e.clocks[c]
		}
		if res.PerCPU[c].Cycles > res.Makespan {
			res.Makespan = res.PerCPU[c].Cycles
		}
	}
	return res, nil
}

// subtractStats returns a-b field-wise (Cycles handled by the caller).
func subtractStats(a, b CPUStats) CPUStats {
	return CPUStats{
		Instructions:      a.Instructions - b.Instructions,
		Flushes:           a.Flushes - b.Flushes,
		Reads:             a.Reads - b.Reads,
		Writes:            a.Writes - b.Writes,
		DataMisses:        a.DataMisses - b.DataMisses,
		InstrMisses:       a.InstrMisses - b.InstrMisses,
		DirtyReplacements: a.DirtyReplacements - b.DirtyReplacements,
		CleanFlushes:      a.CleanFlushes - b.CleanFlushes,
		DirtyFlushes:      a.DirtyFlushes - b.DirtyFlushes,
		ReadThroughs:      a.ReadThroughs - b.ReadThroughs,
		WriteThroughs:     a.WriteThroughs - b.WriteThroughs,
		Broadcasts:        a.Broadcasts - b.Broadcasts,
		CacheSupplied:     a.CacheSupplied - b.CacheSupplied,
		StolenCycles:      a.StolenCycles - b.StolenCycles,
		BusWait:           a.BusWait - b.BusWait,
	}
}

func subtractSnoop(a, b SnoopStats) SnoopStats {
	return SnoopStats{
		SharedRefs:       a.SharedRefs - b.SharedRefs,
		PresentElsewhere: a.PresentElsewhere - b.PresentElsewhere,
		SharedMisses:     a.SharedMisses - b.SharedMisses,
		DirtyElsewhere:   a.DirtyElsewhere - b.DirtyElsewhere,
		Broadcasts:       a.Broadcasts - b.Broadcasts,
		Holders:          a.Holders - b.Holders,
	}
}

// applyOp charges one hardware operation to cpu: interconnect
// arbitration first, then the operation's full CPU time. addr routes the
// transaction on a multistage network (unused on a bus).
func (e *engine) applyOp(cpu int, op core.Op, addr uint64) {
	now := e.clocks[cpu]
	if ic := e.opIC[op]; ic > 0 {
		grant := e.ic.acquire(cpu, addr, now, ic)
		wait := grant - now
		e.stats[cpu].BusWait += wait
		now = grant
	}
	e.clocks[cpu] = now + e.opCPU[op]
}

// othersHolding scans the other caches for the block, returning whether
// any holds it, how many, and a processor holding it dirty (-1 if none).
func (e *engine) othersHolding(cpu int, block uint64) (present bool, holders int, dirtyAt int) {
	dirtyAt = -1
	for c, cache := range e.caches {
		if c == cpu {
			continue
		}
		if cache.Present(block) {
			present = true
			holders++
			if dirtyAt < 0 && cache.IsDirty(block) {
				dirtyAt = c
			}
		}
	}
	return present, holders, dirtyAt
}

// step processes one trace record.
func (e *engine) step(cpu int, ref trace.Ref) {
	switch ref.Kind {
	case trace.IFetch:
		e.stats[cpu].Instructions++
		e.applyOp(cpu, core.OpInstr, ref.Addr)
		e.access(cpu, ref, false)
	case trace.Read:
		e.stats[cpu].Reads++
		e.dataRef(cpu, ref, false)
	case trace.Write:
		e.stats[cpu].Writes++
		e.dataRef(cpu, ref, true)
	case trace.Flush:
		e.flush(cpu, ref)
	}
}

// dataRef handles a load or store.
func (e *engine) dataRef(cpu int, ref trace.Ref, write bool) {
	if e.nocache && ref.Shared {
		// Shared data is uncacheable: go straight to memory.
		if write {
			e.stats[cpu].WriteThroughs++
			e.applyOp(cpu, core.OpWriteThrough, ref.Addr)
		} else {
			e.stats[cpu].ReadThroughs++
			e.applyOp(cpu, core.OpReadThrough, ref.Addr)
		}
		return
	}
	e.access(cpu, ref, write)
}

// access performs a cacheable reference (data or instruction).
func (e *engine) access(cpu int, ref trace.Ref, write bool) {
	cache := e.caches[cpu]
	block := cache.BlockOf(ref.Addr)
	isData := ref.Kind.IsData()
	snoopy := e.snoopy

	var present bool
	var holders, dirtyAt int
	if snoopy {
		present, holders, dirtyAt = e.othersHolding(cpu, block)
		if isData && ref.Shared {
			e.snoop.SharedRefs++
			if present {
				e.snoop.PresentElsewhere++
			}
		}
	}

	// Under Dragon, a store to a block held elsewhere is broadcast on
	// the bus and main memory snarfs the word (Firefly-style update),
	// so neither the writer's line nor the holders' stay dirty;
	// dirtiness only accumulates while a cache is the sole holder.
	markDirty := write
	if e.dragon && write && present {
		markDirty = false
	}

	if cache.Touch(block, markDirty) {
		// Hit. Snoopy stores to blocks held elsewhere need a bus
		// transaction.
		if snoopy && write && present {
			e.broadcast(cpu, block, holders)
		}
		return
	}

	// Miss.
	if isData {
		e.stats[cpu].DataMisses++
	} else {
		e.stats[cpu].InstrMisses++
	}
	if snoopy && isData && ref.Shared {
		e.snoop.SharedMisses++
		if dirtyAt >= 0 {
			e.snoop.DirtyElsewhere++
		}
	}

	victim := cache.Insert(block, markDirty)
	if victim.Valid && victim.Dirty {
		e.stats[cpu].DirtyReplacements++
	}

	fromCache := snoopy && dirtyAt >= 0
	switch {
	case fromCache && victim.Valid && victim.Dirty:
		e.applyOp(cpu, core.OpDirtyMissCache, ref.Addr)
	case fromCache:
		e.applyOp(cpu, core.OpCleanMissCache, ref.Addr)
	case victim.Valid && victim.Dirty:
		e.applyOp(cpu, core.OpDirtyMissMem, ref.Addr)
	default:
		e.applyOp(cpu, core.OpCleanMissMem, ref.Addr)
	}
	if fromCache {
		e.stats[cpu].CacheSupplied++
		// Supplying the block updates memory; the supplier's copy
		// becomes clean (Dragon), or is invalidated outright under
		// Write-Invalidate stores.
		if e.wi && write {
			e.caches[dirtyAt].Invalidate(block)
		} else {
			e.caches[dirtyAt].MarkClean(block)
		}
	}

	if snoopy && write && present {
		e.broadcast(cpu, block, holders)
	}
}

// broadcast performs a Dragon write-broadcast (or a Write-Invalidate
// invalidation) for a store to a block held by `holders` other caches.
func (e *engine) broadcast(cpu int, block uint64, holders int) {
	e.stats[cpu].Broadcasts++
	e.snoop.Broadcasts++
	e.snoop.Holders += uint64(holders)
	// Reconstruct a byte address for routing; snoopy protocols only run
	// on the bus, which ignores it, but keep it correct regardless.
	e.applyOp(cpu, core.OpWriteBroadcast, block*uint64(e.cfg.Cache.BlockSize))
	for c, cache := range e.caches {
		if c == cpu || !cache.Present(block) {
			continue
		}
		if e.wi {
			cache.Invalidate(block)
			continue
		}
		// Dragon: the holding cache updates its copy, stealing a
		// cycle from its processor; the update also supersedes any
		// stale ownership, so a previously dirty copy becomes clean.
		cache.MarkClean(block)
		e.clocks[c] += e.stealCycles
		e.stats[c].StolenCycles += e.stealCycles
	}
}

// flush executes a flush instruction (Software-Flush only; other
// protocols ignore flush records so the same trace can drive them all).
func (e *engine) flush(cpu int, ref trace.Ref) {
	if !e.swflush {
		return
	}
	e.stats[cpu].Flushes++
	cache := e.caches[cpu]
	block := cache.BlockOf(ref.Addr)
	present, wasDirty := cache.Invalidate(block)
	if present && wasDirty {
		e.stats[cpu].DirtyFlushes++
		e.applyOp(cpu, core.OpDirtyFlush, ref.Addr)
		return
	}
	e.stats[cpu].CleanFlushes++
	e.applyOp(cpu, core.OpCleanFlush, ref.Addr)
}
