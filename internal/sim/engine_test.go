package sim

import (
	"errors"
	"math"
	"testing"

	"swcc/internal/trace"
)

var testCache = CacheConfig{Size: 1024, BlockSize: 16, Assoc: 2}

func run(t *testing.T, proto Protocol, tr *trace.Trace) *Result {
	t.Helper()
	res, err := Run(Config{NCPU: tr.NCPU, Cache: testCache, Protocol: proto}, tr)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestBusAcquire(t *testing.T) {
	var b Bus
	if g := b.Acquire(5, 0); g != 5 || b.Transactions != 0 {
		t.Error("zero hold must be free")
	}
	if g := b.Acquire(0, 7); g != 0 {
		t.Errorf("idle bus grant = %d", g)
	}
	if g := b.Acquire(3, 4); g != 7 {
		t.Errorf("busy bus grant = %d, want 7", g)
	}
	if b.WaitCycles != 4 {
		t.Errorf("wait = %d, want 4", b.WaitCycles)
	}
	if b.BusyCycles != 11 || b.Transactions != 2 {
		t.Errorf("busy/transactions = %d/%d", b.BusyCycles, b.Transactions)
	}
	if b.FreeAt() != 11 {
		t.Errorf("freeAt = %d", b.FreeAt())
	}
	if u := b.Utilization(22); u != 0.5 {
		t.Errorf("utilization = %g", u)
	}
	if b.Utilization(0) != 0 {
		t.Error("zero makespan utilization")
	}
}

func TestProtocolNames(t *testing.T) {
	for name, want := range map[string]Protocol{
		"base": ProtoBase, "dragon": ProtoDragon, "nocache": ProtoNoCache,
		"swflush": ProtoSoftwareFlush, "wi": ProtoWriteInvalidate,
		// Registry aliases resolve too: mesi is the write-invalidate
		// scheme's hardware-protocol alias.
		"mesi": ProtoWriteInvalidate, "no-cache": ProtoNoCache,
	} {
		got, err := ProtocolByName(name)
		if err != nil || got != want {
			t.Errorf("%q -> %v, %v", name, got, err)
		}
	}
	if _, err := ProtocolByName("firefly"); err == nil {
		t.Error("want error for unregistered name")
	}
	// Registered but analytic-only: resolvable by the model, not the
	// trace-driven simulator.
	if _, err := ProtocolByName("directory"); err == nil {
		t.Error("want error for analytic-only scheme")
	}
	if ProtoDragon.String() != "Dragon" || Protocol(99).String() == "" {
		t.Error("protocol strings")
	}
}

// Single-CPU timing: verify exact Table 1 cycle accounting.
func TestBaseTimingExact(t *testing.T) {
	tr := &trace.Trace{NCPU: 1, Refs: []trace.Ref{
		{Kind: trace.IFetch, Addr: 0x1000}, // instr 1 + clean miss 10
		{Kind: trace.IFetch, Addr: 0x1004}, // instr 1 (same block hit)
		{Kind: trace.Read, Addr: 0x2000},   // clean miss 10
		{Kind: trace.Read, Addr: 0x2008},   // hit, free
	}}
	res := run(t, ProtoBase, tr)
	s := res.PerCPU[0]
	if s.Cycles != 22 {
		t.Errorf("cycles = %d, want 22", s.Cycles)
	}
	if s.Instructions != 2 || s.InstrMisses != 1 || s.DataMisses != 1 {
		t.Errorf("counts: %+v", s)
	}
	if res.BusBusy != 14 {
		t.Errorf("bus busy = %d, want 14 (two clean misses)", res.BusBusy)
	}
	if got := s.Utilization(); !approxEq(got, 2.0/22.0) {
		t.Errorf("utilization = %g", got)
	}
}

func TestDirtyReplacementTiming(t *testing.T) {
	// 16-byte cache, one line: a write then a conflicting read forces
	// a dirty write-back (14 cycles).
	cfg := Config{NCPU: 1, Cache: CacheConfig{Size: 16, BlockSize: 16, Assoc: 1}, Protocol: ProtoBase}
	tr := &trace.Trace{NCPU: 1, Refs: []trace.Ref{
		{Kind: trace.Write, Addr: 0x0},   // clean miss 10, line dirty
		{Kind: trace.Read, Addr: 0x100},  // dirty miss 14
		{Kind: trace.Write, Addr: 0x200}, // clean miss 10 (victim clean)
	}}
	res, err := Run(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	s := res.PerCPU[0]
	if s.Cycles != 34 {
		t.Errorf("cycles = %d, want 34", s.Cycles)
	}
	if s.DirtyReplacements != 1 {
		t.Errorf("dirty replacements = %d, want 1", s.DirtyReplacements)
	}
}

func TestNoCacheBypass(t *testing.T) {
	tr := &trace.Trace{NCPU: 1, Refs: []trace.Ref{
		{Kind: trace.Read, Addr: 0x100, Shared: true},  // read-through 5
		{Kind: trace.Write, Addr: 0x100, Shared: true}, // write-through 2
		{Kind: trace.Read, Addr: 0x100, Shared: true},  // read-through again (never cached)
		{Kind: trace.Read, Addr: 0x900},                // private: clean miss 10
	}}
	res := run(t, ProtoNoCache, tr)
	s := res.PerCPU[0]
	if s.ReadThroughs != 2 || s.WriteThroughs != 1 {
		t.Errorf("throughs = %d/%d", s.ReadThroughs, s.WriteThroughs)
	}
	if s.Cycles != 5+2+5+10 {
		t.Errorf("cycles = %d, want 22", s.Cycles)
	}
	if s.DataMisses != 1 {
		t.Errorf("data misses = %d, want 1 (shared refs bypass)", s.DataMisses)
	}
}

func TestSoftwareFlushSemantics(t *testing.T) {
	tr := &trace.Trace{NCPU: 1, Refs: []trace.Ref{
		{Kind: trace.Write, Addr: 0x100, Shared: true}, // clean miss 10, dirty line
		{Kind: trace.Flush, Addr: 0x100, Shared: true}, // dirty flush 6
		{Kind: trace.Read, Addr: 0x100, Shared: true},  // miss again (was flushed): 10
		{Kind: trace.Flush, Addr: 0x100, Shared: true}, // clean flush 1
		{Kind: trace.Flush, Addr: 0x500, Shared: true}, // absent: clean flush 1
	}}
	res := run(t, ProtoSoftwareFlush, tr)
	s := res.PerCPU[0]
	if s.DirtyFlushes != 1 || s.CleanFlushes != 2 {
		t.Errorf("flushes clean/dirty = %d/%d, want 2/1", s.CleanFlushes, s.DirtyFlushes)
	}
	if s.Cycles != 10+6+10+1+1 {
		t.Errorf("cycles = %d, want 28", s.Cycles)
	}
	if s.Flushes != 3 {
		t.Errorf("flush count = %d", s.Flushes)
	}
	if s.Instructions != 0 {
		t.Error("flushes must not count as productive instructions")
	}
}

func TestFlushIgnoredByOtherProtocols(t *testing.T) {
	tr := &trace.Trace{NCPU: 1, Refs: []trace.Ref{
		{Kind: trace.Write, Addr: 0x100, Shared: true},
		{Kind: trace.Flush, Addr: 0x100, Shared: true},
		{Kind: trace.Read, Addr: 0x100, Shared: true},
	}}
	for _, proto := range []Protocol{ProtoBase, ProtoDragon, ProtoWriteInvalidate} {
		res := run(t, proto, tr)
		s := res.PerCPU[0]
		if s.Flushes != 0 {
			t.Errorf("%v: flushes = %d", proto, s.Flushes)
		}
		if s.DataMisses != 1 {
			t.Errorf("%v: data misses = %d, want 1 (flush must not purge)", proto, s.DataMisses)
		}
	}
}

func TestDragonCacheToCacheAndBroadcast(t *testing.T) {
	// CPU0 dirties block A; CPU1 then reads it (cache-supplied) and
	// writes it (broadcast + cycle steal on CPU0).
	tr := &trace.Trace{NCPU: 2, Refs: []trace.Ref{
		{CPU: 0, Kind: trace.Write, Addr: 0x100, Shared: true},
		{CPU: 1, Kind: trace.Read, Addr: 0x100, Shared: true},
		{CPU: 1, Kind: trace.Write, Addr: 0x104, Shared: true},
	}}
	res := run(t, ProtoDragon, tr)
	s0, s1 := res.PerCPU[0], res.PerCPU[1]
	// CPU0: clean miss 10 cycles, then +1 stolen = 11.
	if s0.Cycles != 11 {
		t.Errorf("cpu0 cycles = %d, want 11", s0.Cycles)
	}
	if s0.StolenCycles != 1 {
		t.Errorf("cpu0 stolen = %d, want 1", s0.StolenCycles)
	}
	// CPU1: read misses; bus is busy until 7, so wait 7, then
	// cache-supplied clean miss 9 -> 16; write hit + broadcast 2 -> 18.
	if s1.Cycles != 18 {
		t.Errorf("cpu1 cycles = %d, want 18", s1.Cycles)
	}
	if s1.CacheSupplied != 1 {
		t.Errorf("cache supplied = %d, want 1", s1.CacheSupplied)
	}
	if s1.Broadcasts != 1 {
		t.Errorf("broadcasts = %d, want 1", s1.Broadcasts)
	}
	if s1.BusWait != 7 {
		t.Errorf("cpu1 bus wait = %d, want 7", s1.BusWait)
	}
	// Snoop stats: CPU1's two shared refs both saw the block present
	// elsewhere; its miss saw a dirty copy.
	if res.Snoop.SharedRefs != 3 || res.Snoop.PresentElsewhere != 2 {
		t.Errorf("snoop shared/present = %d/%d, want 3/2", res.Snoop.SharedRefs, res.Snoop.PresentElsewhere)
	}
	if res.Snoop.SharedMisses != 2 || res.Snoop.DirtyElsewhere != 1 {
		t.Errorf("snoop misses/dirty = %d/%d, want 2/1", res.Snoop.SharedMisses, res.Snoop.DirtyElsewhere)
	}
	if got := res.Snoop.NShd(); got != 1 {
		t.Errorf("nshd = %g, want 1", got)
	}
	// After the cache-to-cache supply, CPU0's copy is clean.
	if res.Snoop.OClean() != 0.5 {
		t.Errorf("oclean = %g, want 0.5", res.Snoop.OClean())
	}
}

func TestWriteInvalidateRemovesCopies(t *testing.T) {
	// CPU0 reads block A (clean copy); CPU1 writes it: CPU1 misses,
	// then invalidates CPU0's copy. A second CPU0 read must miss again.
	tr := &trace.Trace{NCPU: 2, Refs: []trace.Ref{
		{CPU: 0, Kind: trace.Read, Addr: 0x100, Shared: true},
		{CPU: 1, Kind: trace.Write, Addr: 0x100, Shared: true},
		{CPU: 0, Kind: trace.Read, Addr: 0x100, Shared: true},
		{CPU: 0, Kind: trace.Read, Addr: 0x200, Shared: false},
		{CPU: 0, Kind: trace.Read, Addr: 0x300, Shared: false},
	}}
	res := run(t, ProtoWriteInvalidate, tr)
	s0 := res.PerCPU[0]
	if s0.DataMisses != 4 {
		t.Errorf("cpu0 data misses = %d, want 4 (invalidation forces re-miss)", s0.DataMisses)
	}
	if res.PerCPU[1].Broadcasts != 1 {
		t.Errorf("cpu1 invalidations = %d, want 1", res.PerCPU[1].Broadcasts)
	}
}

func TestDragonVsInvalidateOnPingPong(t *testing.T) {
	// Alternating writes by two CPUs to one block: Dragon pays one
	// 1-cycle-bus broadcast per write; Write-Invalidate forces a full
	// miss each time. Dragon must finish faster.
	// Ifetches between the writes keep the clocks advancing so the
	// writes genuinely alternate in time (as they would in a real
	// instruction stream).
	refs := []trace.Ref{
		{CPU: 0, Kind: trace.Read, Addr: 0x100, Shared: true},
		{CPU: 1, Kind: trace.Read, Addr: 0x100, Shared: true},
	}
	for i := 0; i < 50; i++ {
		refs = append(refs,
			trace.Ref{CPU: 0, Kind: trace.IFetch, Addr: 0x1000},
			trace.Ref{CPU: 0, Kind: trace.Write, Addr: 0x100, Shared: true},
			trace.Ref{CPU: 1, Kind: trace.IFetch, Addr: 0x2000},
			trace.Ref{CPU: 1, Kind: trace.Write, Addr: 0x100, Shared: true},
		)
	}
	tr := &trace.Trace{NCPU: 2, Refs: refs}
	dragon := run(t, ProtoDragon, tr)
	wi := run(t, ProtoWriteInvalidate, tr)
	if dragon.Makespan >= wi.Makespan {
		t.Errorf("ping-pong: Dragon makespan %d should beat Write-Invalidate %d",
			dragon.Makespan, wi.Makespan)
	}
}

func TestRunErrors(t *testing.T) {
	tr := &trace.Trace{NCPU: 2, Refs: []trace.Ref{{CPU: 1, Kind: trace.Read}}}
	if _, err := Run(Config{NCPU: 1, Cache: testCache, Protocol: ProtoBase}, tr); !errors.Is(err, ErrBadConfig) {
		t.Errorf("ncpu too small: %v", err)
	}
	if _, err := Run(Config{NCPU: 2, Cache: CacheConfig{Size: 100, BlockSize: 16, Assoc: 1}, Protocol: ProtoBase}, tr); err == nil {
		t.Error("want error for bad cache config")
	}
	if _, err := Run(Config{NCPU: 2, Cache: testCache, Protocol: Protocol(42)}, tr); err == nil {
		t.Error("want error for bad protocol")
	}
	bad := &trace.Trace{NCPU: 1, Refs: []trace.Ref{{CPU: 5, Kind: trace.Read}}}
	if _, err := Run(Config{NCPU: 1, Cache: testCache, Protocol: ProtoBase}, bad); err == nil {
		t.Error("want error for invalid trace")
	}
}

func TestRunDefaultsNCPUFromTrace(t *testing.T) {
	tr := &trace.Trace{NCPU: 3, Refs: []trace.Ref{{CPU: 2, Kind: trace.Read, Addr: 0x10}}}
	res, err := Run(Config{Cache: testCache, Protocol: ProtoBase}, tr)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerCPU) != 3 {
		t.Errorf("per-cpu stats = %d, want 3", len(res.PerCPU))
	}
}

func TestResultAggregates(t *testing.T) {
	tr := &trace.Trace{NCPU: 2, Refs: []trace.Ref{
		{CPU: 0, Kind: trace.IFetch, Addr: 0x1000},
		{CPU: 1, Kind: trace.IFetch, Addr: 0x2000},
		{CPU: 0, Kind: trace.Read, Addr: 0x3000},
	}}
	res := run(t, ProtoBase, tr)
	tot := res.Totals()
	if tot.Instructions != 2 || tot.DataMisses != 1 || tot.InstrMisses != 2 {
		t.Errorf("totals wrong: %+v", tot)
	}
	if res.Makespan == 0 || res.BusUtilization() <= 0 || res.BusUtilization() > 1 {
		t.Errorf("makespan/bus util: %d / %g", res.Makespan, res.BusUtilization())
	}
	if math.Abs(res.Power()-2*res.Utilization()) > 1e-12 {
		t.Error("power != ncpu * mean utilization")
	}
}

func approxEq(a, b float64) bool { return math.Abs(a-b) < 1e-12 }
