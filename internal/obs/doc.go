// Package obs is the observability substrate shared by the serving
// layer and the evaluator: monotonic-clock spans, lock-free fixed-bucket
// latency histograms, and request trace-ID propagation over
// context.Context. It has no dependencies beyond the standard library
// and deliberately knows nothing about HTTP, Prometheus text rendering,
// or the model — callers own naming, labeling, and exposition.
//
// Invariants the rest of the repository relies on:
//
//   - Histogram recording is wait-free on the hot path: one atomic add
//     into a log-spaced bucket, one atomic add to the count, and one
//     CAS-loop float add to the sum. No mutex is ever taken, so
//     concurrent request completions never serialize on the registry
//     (see DESIGN.md §9 for why this is chosen over a mutex-guarded
//     histogram and what scrape-time consistency it trades away).
//   - A Snapshot taken while writers are active is monotonic per bucket
//     but only approximately consistent across buckets/sum/count; a
//     snapshot taken after writers quiesce is exact. Prometheus
//     semantics (cumulative le buckets, +Inf == count) are preserved
//     either way.
//   - Spans use the monotonic clock embedded in time.Time, so measured
//     durations are immune to wall-clock steps (NTP, suspend).
//   - Trace IDs are opaque strings carried by context.Context only —
//     no globals — so propagation works across API layers and worker
//     goroutines exactly as far as the context is threaded.
package obs
