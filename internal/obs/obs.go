package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"math"
	"sort"
	"sync/atomic"
	"time"
)

// --- spans ---

// Span is a started monotonic-clock timer. The zero Span is usable but
// meaningless (it measures since the zero time); obtain one from Start.
type Span struct {
	start time.Time
}

// Start begins a span at the current monotonic clock reading.
func Start() Span { return Span{start: time.Now()} }

// Seconds returns the time elapsed since Start as float64 seconds — the
// unit every histogram in the repository records.
func (s Span) Seconds() float64 { return time.Since(s.start).Seconds() }

// Elapsed returns the time elapsed since Start.
func (s Span) Elapsed() time.Duration { return time.Since(s.start) }

// --- histograms ---

// atomicFloat accumulates a float64 with a compare-and-swap loop on its
// bit pattern, so concurrent adders never take a lock. Addition order
// under contention is unspecified; float64 sums may therefore differ
// across runs in the last ulps, which is irrelevant for metrics.
type atomicFloat struct {
	bits atomic.Uint64
}

func (f *atomicFloat) add(v float64) {
	for {
		old := f.bits.Load()
		if f.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

func (f *atomicFloat) load() float64 { return math.Float64frombits(f.bits.Load()) }

// Histogram is a fixed-bucket latency histogram with wait-free
// recording: each observation lands in exactly one atomic bin (chosen by
// binary search over the upper bounds), plus an atomic count and sum.
// Buckets follow Prometheus "le" semantics: an observation v belongs to
// the first bucket whose upper bound is >= v; larger observations land
// in the implicit +Inf overflow bin.
//
// Histogram is safe for concurrent use by any number of recorders and
// snapshotters. See the package comment for the snapshot consistency
// contract.
type Histogram struct {
	bounds []float64
	bins   []atomic.Uint64 // len(bounds)+1; last is the +Inf overflow bin
	count  atomic.Uint64
	sum    atomicFloat
}

// NewHistogram returns a histogram over the given strictly increasing
// upper bounds (seconds). It panics on an empty or unsorted bound list —
// bucket layouts are compile-time decisions, not runtime input.
func NewHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		panic("obs: NewHistogram needs at least one bucket bound")
	}
	for i := 1; i < len(bounds); i++ {
		if !(bounds[i] > bounds[i-1]) {
			panic(fmt.Sprintf("obs: histogram bounds not strictly increasing at index %d", i))
		}
	}
	h := &Histogram{
		bounds: append([]float64(nil), bounds...),
		bins:   make([]atomic.Uint64, len(bounds)+1),
	}
	return h
}

// Observe records one value. Wait-free: one atomic add each to the
// bin, the count, and the sum.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v, or overflow
	h.bins[i].Add(1)
	h.count.Add(1)
	h.sum.add(v)
}

// Snapshot is a point-in-time read of a Histogram in Prometheus
// exposition shape: cumulative bucket counts per bound, with the final
// entry the +Inf total.
type Snapshot struct {
	// Bounds are the bucket upper bounds in seconds, ascending.
	Bounds []float64
	// Cumulative has len(Bounds)+1 entries: Cumulative[i] counts
	// observations <= Bounds[i]; the last entry counts everything (+Inf).
	Cumulative []uint64
	// Sum is the total of all observed values, in seconds.
	Sum float64
	// Count is the number of observations.
	Count uint64
}

// Snapshot reads the histogram. Taken after recorders quiesce it is
// exact; taken mid-traffic it is approximately consistent (each bin is
// monotonic, but an in-flight Observe may be visible in one of
// bin/count/sum and not yet the others).
func (h *Histogram) Snapshot() Snapshot {
	s := Snapshot{
		Bounds:     h.bounds,
		Cumulative: make([]uint64, len(h.bins)),
		Sum:        h.sum.load(),
		Count:      h.count.Load(),
	}
	var cum uint64
	for i := range h.bins {
		cum += h.bins[i].Load()
		s.Cumulative[i] = cum
	}
	return s
}

// Quantile returns a conservative upper bound on the q-quantile (q in
// [0,1]): the smallest bucket bound whose cumulative count covers at
// least ceil(q*Count) observations. An empty snapshot returns 0, and a
// quantile that lands in the +Inf overflow bin returns the last finite
// bound — the histogram cannot say more than "past the top bucket".
// Bucket-resolution accuracy is enough for its consumer, load-derived
// Retry-After hints.
func (s Snapshot) Quantile(q float64) float64 {
	if s.Count == 0 || len(s.Bounds) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(math.Ceil(q * float64(s.Count)))
	if rank == 0 {
		rank = 1
	}
	for i, ub := range s.Bounds {
		if s.Cumulative[i] >= rank {
			return ub
		}
	}
	return s.Bounds[len(s.Bounds)-1]
}

// --- trace IDs ---

// traceKey is the private context key for the request trace ID.
type traceKey struct{}

// WithTraceID returns a context carrying the given trace ID. An empty
// id returns ctx unchanged.
func WithTraceID(ctx context.Context, id string) context.Context {
	if id == "" {
		return ctx
	}
	return context.WithValue(ctx, traceKey{}, id)
}

// TraceID returns the trace ID carried by ctx, or "" when the context
// has none (e.g. work not initiated by a traced request).
func TraceID(ctx context.Context) string {
	id, _ := ctx.Value(traceKey{}).(string)
	return id
}

// fallbackSeq numbers trace IDs if the system entropy source ever fails;
// the IDs stay unique within the process, which is all correlation needs.
var fallbackSeq atomic.Uint64

// NewTraceID returns a fresh 16-hex-character request trace ID.
func NewTraceID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return fmt.Sprintf("%016x", fallbackSeq.Add(1))
	}
	return hex.EncodeToString(b[:])
}

// ValidTraceID reports whether a caller-supplied trace ID is safe to
// echo into response headers and structured logs: 1..64 characters from
// [0-9A-Za-z._-]. Anything else (empty, oversized, control characters,
// separators) should be replaced with NewTraceID rather than propagated.
func ValidTraceID(s string) bool {
	if len(s) == 0 || len(s) > 64 {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= '0' && c <= '9', c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z',
			c == '.', c == '_', c == '-':
		default:
			return false
		}
	}
	return true
}
