package obs

import (
	"context"
	"regexp"
	"sync"
	"testing"
	"time"
)

// TestHistogramBucketSemantics pins the le contract: an observation
// equal to a bound lands in that bound's bucket, one just above lands in
// the next, and values past the last bound land only in +Inf.
func TestHistogramBucketSemantics(t *testing.T) {
	h := NewHistogram([]float64{0.001, 0.01, 0.1})
	h.Observe(0.001)  // == first bound -> bucket 0
	h.Observe(0.0011) // -> bucket 1
	h.Observe(0.1)    // == last bound -> bucket 2
	h.Observe(5)      // -> overflow
	s := h.Snapshot()
	want := []uint64{1, 2, 3, 4} // cumulative
	for i, w := range want {
		if s.Cumulative[i] != w {
			t.Errorf("cumulative[%d] = %d, want %d (snapshot %+v)", i, s.Cumulative[i], w, s)
		}
	}
	if s.Count != 4 {
		t.Errorf("count = %d, want 4", s.Count)
	}
	if diff := s.Sum - (0.001 + 0.0011 + 0.1 + 5); diff > 1e-12 || diff < -1e-12 {
		t.Errorf("sum = %v, off by %v", s.Sum, diff)
	}
}

// TestHistogramConcurrentRecording is the -race correctness check the
// serving layer's atomic-bin design rests on: hammer one histogram from
// many goroutines and verify not a single observation is lost and the
// cumulative counts are exact once writers quiesce.
func TestHistogramConcurrentRecording(t *testing.T) {
	bounds := []float64{0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1}
	h := NewHistogram(bounds)
	const workers = 8
	const perWorker = 18000                                      // divisible by len(values) so every value appears equally often
	values := []float64{0.0001, 0.0005, 0.002, 0.004, 0.03, 0.2} // spans several bins + overflow
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				h.Observe(values[(w+i)%len(values)])
			}
		}(w)
	}
	wg.Wait()

	s := h.Snapshot()
	const total = workers * perWorker
	if s.Count != total {
		t.Errorf("count = %d, want %d", s.Count, total)
	}
	if last := s.Cumulative[len(s.Cumulative)-1]; last != total {
		t.Errorf("+Inf cumulative = %d, want %d", last, total)
	}
	for i := 1; i < len(s.Cumulative); i++ {
		if s.Cumulative[i] < s.Cumulative[i-1] {
			t.Errorf("cumulative not monotonic at %d: %v", i, s.Cumulative)
		}
	}
	// Every value appears exactly total/len(values) times, so the exact
	// per-bucket expectations are computable.
	perValue := uint64(total / len(values))
	wantLE := func(bound float64) uint64 {
		var n uint64
		for _, v := range values {
			if v <= bound {
				n += perValue
			}
		}
		return n
	}
	for i, b := range s.Bounds {
		if s.Cumulative[i] != wantLE(b) {
			t.Errorf("cumulative[le=%v] = %d, want %d", b, s.Cumulative[i], wantLE(b))
		}
	}
	var wantSum float64
	for _, v := range values {
		wantSum += v * float64(perValue)
	}
	if rel := (s.Sum - wantSum) / wantSum; rel > 1e-9 || rel < -1e-9 {
		t.Errorf("sum = %v, want %v (rel err %v)", s.Sum, wantSum, rel)
	}
}

// TestNewHistogramRejectsBadBounds checks layout mistakes fail fast.
func TestNewHistogramRejectsBadBounds(t *testing.T) {
	for _, bounds := range [][]float64{nil, {}, {1, 1}, {2, 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewHistogram(%v) did not panic", bounds)
				}
			}()
			NewHistogram(bounds)
		}()
	}
}

// TestSpanMeasuresElapsed sanity-checks the monotonic timer.
func TestSpanMeasuresElapsed(t *testing.T) {
	sp := Start()
	time.Sleep(10 * time.Millisecond)
	if got := sp.Seconds(); got < 0.005 || got > 5 {
		t.Errorf("span measured %v s around a 10ms sleep", got)
	}
	if sp.Elapsed() <= 0 {
		t.Error("Elapsed not positive")
	}
}

// TestTraceIDContextRoundTrip checks ctx carriage and the empty cases.
func TestTraceIDContextRoundTrip(t *testing.T) {
	ctx := context.Background()
	if got := TraceID(ctx); got != "" {
		t.Errorf("TraceID(background) = %q", got)
	}
	ctx2 := WithTraceID(ctx, "abc-123")
	if got := TraceID(ctx2); got != "abc-123" {
		t.Errorf("TraceID = %q, want abc-123", got)
	}
	if WithTraceID(ctx, "") != ctx {
		t.Error("WithTraceID(\"\") should return ctx unchanged")
	}
}

// TestNewTraceIDShape checks generated IDs are well-formed and unique
// enough to correlate logs.
func TestNewTraceIDShape(t *testing.T) {
	re := regexp.MustCompile(`^[0-9a-f]{16}$`)
	seen := map[string]bool{}
	for i := 0; i < 100; i++ {
		id := NewTraceID()
		if !re.MatchString(id) {
			t.Fatalf("trace ID %q not 16 lowercase hex chars", id)
		}
		if seen[id] {
			t.Fatalf("duplicate trace ID %q within 100 draws", id)
		}
		seen[id] = true
		if !ValidTraceID(id) {
			t.Fatalf("generated ID %q fails ValidTraceID", id)
		}
	}
}

// TestValidTraceID sweeps the accept/reject boundary for caller-supplied
// IDs.
func TestValidTraceID(t *testing.T) {
	valid := []string{"a", "req-1", "A_b.c-9", "0123456789abcdef"}
	for _, s := range valid {
		if !ValidTraceID(s) {
			t.Errorf("ValidTraceID(%q) = false, want true", s)
		}
	}
	invalid := []string{"", "has space", "new\nline", "semi;colon", "ctrl\x00",
		string(make([]byte, 65)), "quote\"inside"}
	for _, s := range invalid {
		if ValidTraceID(s) {
			t.Errorf("ValidTraceID(%q) = true, want false", s)
		}
	}
}

// TestSnapshotQuantile pins the quantile contract: empty snapshots are
// 0, a quantile resolves to the first bound covering its rank, and
// overflow-bin quantiles saturate at the last finite bound.
func TestSnapshotQuantile(t *testing.T) {
	h := NewHistogram([]float64{0.01, 0.1, 1})
	if q := h.Snapshot().Quantile(0.9); q != 0 {
		t.Errorf("empty histogram p90 = %v, want 0", q)
	}
	for i := 0; i < 9; i++ {
		h.Observe(0.005) // bucket le=0.01
	}
	h.Observe(0.5) // bucket le=1
	s := h.Snapshot()
	if q := s.Quantile(0.5); q != 0.01 {
		t.Errorf("p50 = %v, want 0.01", q)
	}
	if q := s.Quantile(0.9); q != 0.01 {
		t.Errorf("p90 = %v, want 0.01 (rank 9 of 10 is still in the first bucket)", q)
	}
	if q := s.Quantile(1); q != 1 {
		t.Errorf("p100 = %v, want 1", q)
	}
	h.Observe(100) // overflow
	if q := h.Snapshot().Quantile(1); q != 1 {
		t.Errorf("overflow p100 = %v, want the last finite bound 1", q)
	}
	if q := h.Snapshot().Quantile(0); q != 0.01 {
		t.Errorf("p0 = %v, want the first non-empty bucket's bound 0.01", q)
	}
}
