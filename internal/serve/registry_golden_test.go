package serve

import (
	"bytes"
	"flag"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"testing"
)

// updateGolden refreshes the pinned registry-refactor golden bytes. Run
// `go test ./internal/serve -run TestPaperSchemeResponsesPinned -update-scheme-golden`
// ONLY for an intentional model change; the whole point of the file is
// that refactors of scheme resolution must NOT need it.
var updateGolden = flag.Bool("update-scheme-golden", false, "rewrite testdata/scheme_golden.txt")

// goldenRequests are the exact bodies whose responses are pinned: every
// paper scheme through /v1/bus (curve and point form, level and explicit
// params) and a mixed /v1/sweep batch covering all four schemes in one
// request. These bytes were captured before the scheme registry existed,
// so a registry-resolution change that perturbs any float is caught here.
var goldenRequests = []struct {
	Path string
	Body string
}{
	{"/v1/bus", `{"scheme": "base", "procs": 8}`},
	{"/v1/bus", `{"scheme": "dragon", "procs": 8}`},
	{"/v1/bus", `{"scheme": "swflush", "procs": 8}`},
	{"/v1/bus", `{"scheme": "nocache", "procs": 8}`},
	{"/v1/bus", `{"scheme": "dragon", "level": "high", "procs": 12}`},
	{"/v1/bus", `{"scheme": "swflush", "params": {"shd": 0.3, "apl": 8}, "procs": 16, "point": true}`},
	{"/v1/bus", `{"scheme": "base", "params": {"msdat": 0.05}, "procs": 4, "point": true}`},
	{"/v1/bus", `{"scheme": "nocache", "level": "low", "procs": 6}`},
	{"/v1/sweep", `{"points": [` +
		`{"scheme": "base", "procs": 8},` +
		`{"scheme": "dragon", "procs": 8},` +
		`{"scheme": "swflush", "procs": 8, "point": true},` +
		`{"scheme": "nocache", "level": "high", "procs": 10},` +
		`{"scheme": "dragon", "params": {"wr": 0.5}, "procs": 5}]}`},
}

const schemeGoldenPath = "testdata/scheme_golden.txt"

// goldenBytes renders one request/response pair in the golden file's
// record format.
func goldenBytes(path, body string, resp []byte) []byte {
	return []byte(fmt.Sprintf("== %s %s\n%s", path, body, resp))
}

// TestPaperSchemeResponsesPinned asserts the four paper schemes produce
// byte-identical /v1/bus and /v1/sweep responses to the ones captured
// before the scheme-registry refactor. Any drift in scheme resolution,
// demand math, or MVA arithmetic for the paper schemes fails here with
// the offending request named.
func TestPaperSchemeResponsesPinned(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	var got bytes.Buffer
	for _, req := range goldenRequests {
		code, body := post(t, ts, req.Path, req.Body)
		if code != http.StatusOK {
			t.Fatalf("POST %s %s: status %d: %s", req.Path, req.Body, code, body)
		}
		got.Write(goldenBytes(req.Path, req.Body, body))
	}
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(schemeGoldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(schemeGoldenPath, got.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d bytes)", schemeGoldenPath, got.Len())
		return
	}
	want, err := os.ReadFile(schemeGoldenPath)
	if err != nil {
		t.Fatalf("reading golden (run with -update-scheme-golden to create): %v", err)
	}
	if bytes.Equal(got.Bytes(), want) {
		return
	}
	// Name the first diverging record instead of dumping both blobs.
	gotRecs := bytes.Split(got.Bytes(), []byte("== "))
	wantRecs := bytes.Split(want, []byte("== "))
	for i := range gotRecs {
		if i >= len(wantRecs) || !bytes.Equal(gotRecs[i], wantRecs[i]) {
			t.Fatalf("response drifted from pre-registry capture at record %d:\n got: %.300s\nwant: %.300s",
				i, gotRecs[i], wantRecs[min(i, len(wantRecs)-1)])
		}
	}
	t.Fatalf("golden has %d records, response stream has %d", len(wantRecs), len(gotRecs))
}
