package serve

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"swcc/internal/fault"
	"swcc/internal/sweep"
)

// waitUntil polls cond until it holds or the deadline passes.
func waitUntil(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// blockFirstSolve arranges for the first solve to park until release is
// closed, occupying its concurrency slot; later solves run normally.
func blockFirstSolve(s *Server) (entered, release chan struct{}) {
	entered = make(chan struct{})
	release = make(chan struct{})
	var once atomic.Bool
	s.beforeSolve = func() {
		if once.CompareAndSwap(false, true) {
			close(entered)
			<-release
		}
	}
	return entered, release
}

// TestShedPath fills the one solve slot and the one queue seat, then
// checks the next request is rejected 503 by admission control — before
// any decode — with a Retry-After header and a shed counted.
func TestShedPath(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxInFlight: 1, MaxQueueDepth: 1, RequestTimeout: 5 * time.Second})
	entered, release := blockFirstSolve(s)
	defer close(release)

	for i := 0; i < 2; i++ {
		go func() {
			resp, err := http.Post(ts.URL+"/v1/bus", "application/json",
				strings.NewReader(`{"scheme": "base"}`))
			if err == nil {
				resp.Body.Close()
			}
		}()
		if i == 0 {
			<-entered
		}
	}
	waitUntil(t, 2*time.Second, "a request to queue for the solve slot", func() bool {
		return s.met.queueDepth.Load() >= 1
	})

	resp, err := http.Post(ts.URL+"/v1/bus", "application/json",
		strings.NewReader(`{"scheme": "base"}`))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("status %d, want 503 (body: %s)", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("shed 503 without Retry-After")
	}
	if !strings.Contains(string(body), "queue full") {
		t.Errorf("shed body %q does not name the queue", body)
	}
	if got := s.met.sheds.Load(); got != 1 {
		t.Errorf("sheds = %d, want 1", got)
	}
}

// TestClientDisconnectWhileQueued pins the bugfix for the queued-client
// disconnect: a client that gives up while waiting for a solve slot must
// be accounted a cancellation (499), never a "server busy" 503 — before
// the fix the errBusy path fired for both and inflated the overload
// signal with requests the server never actually failed.
func TestClientDisconnectWhileQueued(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxInFlight: 1, RequestTimeout: 5 * time.Second})
	entered, release := blockFirstSolve(s)
	defer close(release)

	go func() {
		resp, err := http.Post(ts.URL+"/v1/bus", "application/json",
			strings.NewReader(`{"scheme": "base"}`))
		if err == nil {
			resp.Body.Close()
		}
	}()
	<-entered

	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, "POST", ts.URL+"/v1/bus",
		strings.NewReader(`{"scheme": "base"}`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	reqDone := make(chan struct{})
	go func() {
		defer close(reqDone)
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
		}
	}()
	waitUntil(t, 2*time.Second, "the second request to queue", func() bool {
		return s.met.queueDepth.Load() >= 1
	})
	cancel()
	<-reqDone

	waitUntil(t, 2*time.Second, "the cancellation to be counted", func() bool {
		return s.met.cancels.Load() >= 1
	})
	if c, ok := s.met.requests.Load([2]string{"/v1/bus", "503"}); ok {
		t.Errorf("client disconnect recorded %d busy 503s; want none",
			c.(*atomic.Uint64).Load())
	}
	waitUntil(t, 2*time.Second, "the 499 to be recorded", func() bool {
		c, ok := s.met.requests.Load([2]string{"/v1/bus", "499"})
		return ok && c.(*atomic.Uint64).Load() >= 1
	})
}

// TestQueuedDeadlineCountsBusyNotCancel is the other half of the queued
// disconnect fix: a request whose deadline expires in the queue is a
// genuine 503 and must not be counted as a client cancellation.
func TestQueuedDeadlineCountsBusyNotCancel(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxInFlight: 1, RequestTimeout: 50 * time.Millisecond})
	entered, release := blockFirstSolve(s)
	defer close(release)

	go func() {
		resp, err := http.Post(ts.URL+"/v1/bus", "application/json",
			strings.NewReader(`{"scheme": "base"}`))
		if err == nil {
			resp.Body.Close()
		}
	}()
	<-entered

	code, _ := post(t, ts, "/v1/bus", `{"scheme": "base"}`)
	if code != http.StatusServiceUnavailable {
		t.Errorf("queued past deadline: status %d, want 503", code)
	}
	if got := s.met.cancels.Load(); got != 0 {
		t.Errorf("deadline in queue counted %d cancels; want 0", got)
	}
}

// TestCancelledBatchStopsSolving is the cancellation acceptance check: a
// /v1/sweep batch abandoned mid-flight must perform strictly fewer
// evaluator solves than the same batch run to completion — before the
// cancellation points existed, the solve goroutine ground through every
// remaining grid cell for a client that had already hung up.
func TestCancelledBatchStopsSolving(t *testing.T) {
	const points = 128
	var sb strings.Builder
	sb.WriteString(`{"points": [`)
	for i := 0; i < points; i++ {
		if i > 0 {
			sb.WriteString(",")
		}
		// swflush uses shd (see core.CanonicalParams), so every point is
		// a distinct demand solve rather than one shared cache entry.
		fmt.Fprintf(&sb, `{"scheme": "swflush", "params": {"shd": %.6f}, "point": true}`,
			0.001+float64(i)*0.003)
	}
	sb.WriteString(`]}`)
	body := sb.String()

	// Control: run to completion (no faults) — every point solves.
	ctl, ctlTS := newTestServer(t, Config{})
	if code, out := post(t, ctlTS, "/v1/sweep", body); code != http.StatusOK {
		t.Fatalf("control sweep: status %d: %s", code, out)
	}
	if got := ctl.ev.Stats().DemandSolves; got != points {
		t.Fatalf("completed batch did %d demand solves, want %d", got, points)
	}

	// Cancelled run: injected per-point latency paces the batch so the
	// client's hang-up lands mid-flight.
	inj := fault.New(fault.Config{Seed: 7, Latency: 10 * time.Millisecond, LatencyP: 1})
	s, ts := newTestServer(t, Config{Fault: inj, RequestTimeout: 30 * time.Second})
	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, "POST", ts.URL+"/v1/sweep", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	reqDone := make(chan struct{})
	go func() {
		defer close(reqDone)
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
		}
	}()
	waitUntil(t, 10*time.Second, "the batch to start solving", func() bool {
		return s.ev.Stats().DemandSolves >= 5
	})
	cancel()
	<-reqDone
	waitUntil(t, 10*time.Second, "the abandoned solve goroutine to drain", func() bool {
		return s.met.solveInFlight.Load() == 0
	})
	if got := s.ev.Stats().DemandSolves; got == 0 || got >= points {
		t.Errorf("cancelled batch did %d demand solves, want 0 < n < %d", got, points)
	}
}

// TestSweepErrorMapping pins the batch error-mapping bugfix directly: a
// context error — the whole request timing out or disconnecting — must
// surface bare, never wearing a misleading "points[i]:" prefix, while
// genuine per-point errors keep their index.
func TestSweepErrorMapping(t *testing.T) {
	live := context.Background()
	done, cancel := context.WithCancel(context.Background())
	cancel()

	if err := sweepError(live, []error{nil, nil}); err != nil {
		t.Errorf("clean batch: %v", err)
	}
	err := sweepError(live, []error{nil, context.DeadlineExceeded, errors.New("model")})
	if !errors.Is(err, context.DeadlineExceeded) || strings.Contains(err.Error(), "points[") {
		t.Errorf("deadline at a point surfaced as %q, want bare context error", err)
	}
	err = sweepError(done, []error{nil, errors.New("model")})
	if !errors.Is(err, context.Canceled) || strings.Contains(err.Error(), "points[") {
		t.Errorf("done ctx surfaced as %q, want bare context.Canceled", err)
	}
	err = sweepError(live, []error{nil, errors.New("model boom")})
	if err == nil || err.Error() != "points[1]: model boom" {
		t.Errorf("point error surfaced as %q, want points[1] prefix", err)
	}
}

// TestSweepTimeoutClean is the end-to-end half of the mapping fix: a
// sweep that times out mid-batch answers a clean 504 whose body never
// leaks a grid index, on every interleaving of the solve goroutine and
// the handler's timeout.
func TestSweepTimeoutClean(t *testing.T) {
	inj := fault.New(fault.Config{Seed: 3, Latency: 50 * time.Millisecond, LatencyP: 1})
	_, ts := newTestServer(t, Config{Fault: inj, RequestTimeout: 30 * time.Millisecond})
	code, body := post(t, ts, "/v1/sweep",
		`{"points": [{"scheme": "base"}, {"scheme": "dragon"}, {"scheme": "swflush"}]}`)
	if code != http.StatusGatewayTimeout {
		t.Errorf("status %d, want 504 (body: %s)", code, body)
	}
	if strings.Contains(string(body), "points[") {
		t.Errorf("timeout leaked a grid index: %s", body)
	}
}

// TestInjectedErrorIs503 pins the chaos contract for injected errors:
// every one maps to a retryable 503 with a Retry-After hint — never a
// 500, which would page an operator for a fault the harness made up.
func TestInjectedErrorIs503(t *testing.T) {
	inj := fault.New(fault.Config{Seed: 1, ErrorP: 1})
	_, ts := newTestServer(t, Config{Fault: inj})
	for i := 0; i < 3; i++ {
		resp, err := http.Post(ts.URL+"/v1/bus", "application/json",
			strings.NewReader(`{"scheme": "base"}`))
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Errorf("injected error: status %d, want 503 (body: %s)", resp.StatusCode, body)
		}
		if resp.Header.Get("Retry-After") == "" {
			t.Error("injected-error 503 without Retry-After")
		}
		if !strings.Contains(string(body), "injected") {
			t.Errorf("body %q does not name the injected fault", body)
		}
	}
}

// TestInjectedPanicRecovered checks a panic injected at the solve
// boundary is contained to a 500 — the process survives and keeps
// serving.
func TestInjectedPanicRecovered(t *testing.T) {
	inj := fault.New(fault.Config{Seed: 1, PanicP: 1})
	_, ts := newTestServer(t, Config{Fault: inj})
	code, _ := post(t, ts, "/v1/bus", `{"scheme": "base"}`)
	if code != http.StatusInternalServerError {
		t.Errorf("injected panic: status %d, want 500", code)
	}
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatalf("server dead after injected panic: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz after panic: %d", resp.StatusCode)
	}
}

// TestSweepPointPanicRecovered drives an injected panic into a /v1/sweep
// grid point specifically: those run on sweep's pool goroutines, which
// have no recover of their own, so an uncontained panic there would kill
// the process, not fail a request. Seed 1 with PanicP=0.5 is verified
// below to pass the solve-level draw and panic on a per-point one.
func TestSweepPointPanicRecovered(t *testing.T) {
	inj := fault.New(fault.Config{Seed: 1, PanicP: 0.5})
	_, ts := newTestServer(t, Config{Fault: inj})
	var sb strings.Builder
	sb.WriteString(`{"points": [`)
	for i := 0; i < 8; i++ {
		if i > 0 {
			sb.WriteString(",")
		}
		sb.WriteString(`{"scheme": "base", "point": true}`)
	}
	sb.WriteString(`]}`)
	code, body := post(t, ts, "/v1/sweep", sb.String())
	if code != http.StatusInternalServerError {
		t.Errorf("status %d, want 500 (body: %s)", code, body)
	}
	if !strings.Contains(string(body), "internal error") {
		t.Errorf("body %q does not report the contained panic", body)
	}
	_, errs, panics := inj.Counts()
	if panics == 0 {
		t.Fatalf("schedule fired no panic (errs=%d); the seed no longer exercises this path", errs)
	}
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatalf("server dead after per-point panic: %v", err)
	}
	resp.Body.Close()
}

// TestRetryAfterDerivation pins the Retry-After formula: 1s cold, the
// p90 solve time scaled by queue position over solver slots when warm,
// clamped at 60s when the backlog is hopeless.
func TestRetryAfterDerivation(t *testing.T) {
	s := NewServer(Config{MaxInFlight: 2})
	if got := s.retryAfterSeconds(); got != 1 {
		t.Errorf("cold server Retry-After = %d, want 1", got)
	}
	for i := 0; i < 10; i++ {
		s.met.observeStage(sweep.StageSolve, 5.0) // lands in the le=5 bucket
	}
	s.met.queueDepth.Store(3)
	// p90 = 5s, (3+1) queue positions over 2 slots -> 10s.
	if got := s.retryAfterSeconds(); got != 10 {
		t.Errorf("warm Retry-After = %d, want 10", got)
	}
	s.met.queueDepth.Store(1000)
	if got := s.retryAfterSeconds(); got != 60 {
		t.Errorf("backed-up Retry-After = %d, want the 60s clamp", got)
	}
}
