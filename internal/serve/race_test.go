package serve

import (
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
)

// TestConcurrentRequestsBitIdentical hammers one shared evaluator from
// many goroutines mixing /v1/bus and /v1/advisor queries (some sharing
// cache entries, some not) and asserts every response for a given body
// is byte-identical to its reference — the serving layer's determinism
// acceptance criterion. Run under -race this also exercises the
// evaluator's locking and the cloned-curve invariant.
func TestConcurrentRequestsBitIdentical(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	queries := []struct{ path, body string }{
		{"/v1/bus", `{"scheme": "dragon", "procs": 32}`},
		{"/v1/bus", `{"scheme": "dragon", "procs": 16}`}, // prefix of the 32-curve
		{"/v1/bus", `{"scheme": "swflush", "params": {"apl": 4}, "procs": 32}`},
		{"/v1/bus", `{"scheme": "hybrid", "lockfrac": 0.5, "procs": 8, "point": true}`},
		{"/v1/advisor", `{"procs": 16}`},
		{"/v1/advisor", `{"level": "high", "procs": 32}`},
		{"/v1/network", `{"scheme": "swflush", "stages": 5}`},
		// The batch endpoint fans out internally, so this one query
		// multiplies the per-request parallelism hitting the evaluator
		// (note point 1 shares the dragon/32 curve with the /v1/bus
		// queries above, and point 2 reads a prefix of it).
		{"/v1/sweep", `{"points": [` +
			`{"scheme": "dragon", "procs": 32},` +
			`{"scheme": "dragon", "procs": 24},` +
			`{"scheme": "swflush", "params": {"apl": 4}, "procs": 32},` +
			`{"scheme": "base", "procs": 8, "point": true}]}`},
	}

	// References come from a fresh, idle server sharing no state with
	// the hammered one.
	_, ref := newTestServer(t, Config{})
	want := make([]string, len(queries))
	for i, q := range queries {
		code, body := post(t, ref, q.path, q.body)
		if code != http.StatusOK {
			t.Fatalf("reference %s %s: status %d: %s", q.path, q.body, code, body)
		}
		want[i] = string(body)
	}

	const workers = 8
	const rounds = 25
	var wg sync.WaitGroup
	errs := make(chan string, workers*rounds)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				q := queries[(w+r)%len(queries)]
				resp, err := http.Post(ts.URL+q.path, "application/json", strings.NewReader(q.body))
				if err != nil {
					errs <- err.Error()
					return
				}
				body, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err != nil {
					errs <- err.Error()
					return
				}
				if resp.StatusCode != http.StatusOK {
					errs <- q.body + ": status " + resp.Status
					continue
				}
				if string(body) != want[(w+r)%len(queries)] {
					errs <- q.body + ": response diverged under concurrency"
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
	st := s.Evaluator().Stats()
	if st.DemandHits == 0 || st.MVAHits == 0 {
		t.Errorf("hammering produced no cache hits: %+v", st)
	}
}
