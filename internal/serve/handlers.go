package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"sync"
	"time"

	"swcc/internal/core"
	"swcc/internal/fault"
	"swcc/internal/jobs"
	"swcc/internal/obs"
	"swcc/internal/sensitivity"
	"swcc/internal/sweep"
)

// httpError carries an explicit status code through the handler plumbing.
type httpError struct {
	code int
	msg  string
}

// Error returns the message sent to the client.
func (e *httpError) Error() string { return e.msg }

func badRequest(format string, args ...any) error {
	return &httpError{code: http.StatusBadRequest, msg: fmt.Sprintf(format, args...)}
}

// errorResponse is the JSON body of every non-2xx response.
type errorResponse struct {
	Error string `json:"error"`
}

// apiFunc is one decoded-and-solved endpoint; the apiHandler wrapper owns
// body limits, the timeout budget, and error mapping.
type apiFunc func(ctx context.Context, body []byte) (any, error)

// apiHandler adapts an apiFunc to http: it caps and reads the body,
// attaches the request timeout, and renders the result or the mapped
// error as JSON.
func (s *Server) apiHandler(fn apiFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		// Admission control: when the solve queue is already past its
		// depth cap, reject before even reading the body — the cheapest
		// possible 503, spending no decode or validation work on a
		// request that would only time out in line anyway.
		if s.met.queueDepth.Load() >= int64(s.cfg.MaxQueueDepth) {
			s.met.sheds.Add(1)
			w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds()))
			s.writeJSON(w, http.StatusServiceUnavailable,
				errorResponse{Error: "serve: solve queue full; retry later"})
			return
		}
		body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
		if err != nil {
			var tooBig *http.MaxBytesError
			if errors.As(err, &tooBig) {
				s.writeError(w, &httpError{
					code: http.StatusRequestEntityTooLarge,
					msg:  fmt.Sprintf("request body exceeds %d bytes", tooBig.Limit),
				})
				return
			}
			s.writeError(w, badRequest("reading body: %v", err))
			return
		}
		ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
		defer cancel()
		// Open the decode/validate stage: solve() closes it when the
		// handler crosses from validation into model work.
		ctx = context.WithValue(ctx, validateStartKey{}, obs.Start())
		v, err := fn(ctx, body)
		if err != nil {
			s.writeError(w, err)
			return
		}
		s.writeJSON(w, http.StatusOK, v)
	}
}

// statusClientClosedRequest is nginx's convention for "the client went
// away before we could answer". No client reads this response; it
// exists so access logs and the requests-by-code series separate
// client disconnects from genuine server-side timeouts (504).
const statusClientClosedRequest = 499

// retryAfterSeconds derives a Retry-After hint for a 503 from observed
// load instead of a constant: the p90 solve latency times the queue
// positions a retry would wait behind, spread over the solver slots,
// clamped to [1,60] whole seconds. A cold server (empty histogram)
// hints 1s; a deeply backed-up one pushes retries far enough out that
// they land after the queue has actually drained.
func (s *Server) retryAfterSeconds() int {
	p90 := s.met.byStage[sweep.StageSolve].Snapshot().Quantile(0.9)
	wait := p90 * float64(s.met.queueDepth.Load()+1) / float64(s.cfg.MaxInFlight)
	secs := int(math.Ceil(wait))
	if secs < 1 {
		secs = 1
	}
	if secs > 60 {
		secs = 60
	}
	return secs
}

// writeError maps an error to its status code and renders it. Model
// domain errors are client errors: invalid workloads are 400s and
// scheme/hardware mismatches 422s. Overload and injected faults are
// retryable 503s carrying a load-derived Retry-After, a timed-out
// solve is 504, a client disconnect is 499; only genuinely unexpected
// failures surface as 500.
func (s *Server) writeError(w http.ResponseWriter, err error) {
	code := http.StatusInternalServerError
	var he *httpError
	switch {
	case errors.As(err, &he):
		code = he.code
	case errors.Is(err, errBusy), errors.Is(err, fault.ErrInjected):
		code = http.StatusServiceUnavailable
		w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds()))
	case errors.Is(err, jobs.ErrFull), errors.Is(err, jobs.ErrClosed):
		code = http.StatusServiceUnavailable
	case errors.Is(err, context.Canceled):
		code = statusClientClosedRequest
	case errors.Is(err, context.DeadlineExceeded):
		code = http.StatusGatewayTimeout
	case errors.Is(err, core.ErrInvalidParams):
		code = http.StatusBadRequest
	case errors.Is(err, core.ErrUnsupported):
		code = http.StatusUnprocessableEntity
	}
	s.writeJSON(w, code, errorResponse{Error: err.Error()})
}

// bufferReleaser is implemented by responses whose fields reference
// pooled buffers. writeJSON invokes it immediately after encoding — the
// earliest moment the buffers are provably no longer referenced — so
// callers that build pooled responses need no extra bookkeeping on the
// success path.
type bufferReleaser interface {
	ReleaseBuffers()
}

// encodeBufPool recycles the response encode buffers across requests.
// Buffers that grew beyond encodeBufMax bytes (a giant sweep response)
// are dropped rather than pinned in the pool forever.
var encodeBufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

const encodeBufMax = 1 << 20

func (s *Server) writeJSON(w http.ResponseWriter, code int, v any) {
	buf := encodeBufPool.Get().(*bytes.Buffer)
	buf.Reset()
	// Encoder.Encode writes the same bytes json.Marshal produces plus
	// the trailing newline every response here always carried.
	err := json.NewEncoder(buf).Encode(v)
	if rel, ok := v.(bufferReleaser); ok {
		rel.ReleaseBuffers()
	}
	if err != nil {
		// Responses are plain data structs; failing to marshal one is a
		// programming error, not a client error.
		code = http.StatusInternalServerError
		buf.Reset()
		buf.WriteString("{\"error\":\"encoding response\"}\n")
		s.log.Error("marshal response", "err", err)
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	if _, err := w.Write(buf.Bytes()); err != nil {
		s.log.Debug("write response", "err", err)
	}
	if buf.Cap() <= encodeBufMax {
		encodeBufPool.Put(buf)
	}
}

// decodeStrict decodes one JSON object, rejecting unknown fields and
// trailing garbage. Strictness at the boundary is what turns typos
// ("prox": 32) into 400s instead of silently-defaulted wrong answers.
func decodeStrict(body []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return badRequest("decoding request: %v", err)
	}
	if dec.More() {
		return badRequest("decoding request: trailing data after JSON object")
	}
	return nil
}

// resolveParams turns the request's workload spec into a validated
// core.Params. `params` reuses core.ReadParams, so field names, unknown
// field rejection, Table 7 middle defaults for omitted fields, and
// domain validation (including the NaN/Inf checks) are exactly the
// library's; `level` selects a whole Table 7 column instead.
func resolveParams(level string, params json.RawMessage) (core.Params, error) {
	if level != "" && len(params) > 0 {
		return core.Params{}, badRequest(`"level" and "params" are mutually exclusive`)
	}
	switch level {
	case "":
	case "low":
		return core.ParamsAt(core.Low), nil
	case "mid":
		return core.ParamsAt(core.Mid), nil
	case "high":
		return core.ParamsAt(core.High), nil
	default:
		return core.Params{}, badRequest("unknown level %q (want low, mid, or high)", level)
	}
	if len(params) == 0 {
		return core.MiddleParams(), nil
	}
	p, err := core.ReadParams(bytes.NewReader(params))
	if err != nil {
		return core.Params{}, badRequest("%v", err)
	}
	return p, nil
}

// resolveScheme resolves a request's scheme name against the registry,
// applying the scheme's knob ("lockfrac" for hybrid, "updatefrac" for
// hybrid-update) when the request carries one. A knob value sent for a
// scheme without that knob is a 400, as before.
func resolveScheme(name string, lockFrac, updateFrac *float64) (core.Scheme, error) {
	info, ok := core.SchemeInfoByName(name)
	if !ok {
		_, err := core.SchemeByName(name) // for the names-listing error text
		return nil, badRequest("%v", err)
	}
	var knob *float64
	switch {
	case lockFrac != nil && updateFrac != nil:
		return nil, badRequest(`"lockfrac" and "updatefrac" are mutually exclusive`)
	case lockFrac != nil:
		if info.Knob != "lockfrac" {
			return nil, badRequest(`"lockfrac" only applies to scheme "hybrid"`)
		}
		knob = lockFrac
	case updateFrac != nil:
		if info.Knob != "updatefrac" {
			return nil, badRequest(`"updatefrac" only applies to scheme "hybrid-update"`)
		}
		knob = updateFrac
	}
	if info.Configure == nil {
		return info.Scheme, nil
	}
	v := info.KnobDefault
	if knob != nil {
		v = *knob
		if math.IsNaN(v) || v < 0 || v > 1 {
			return nil, badRequest("%s %v not in [0,1]", info.Knob, v)
		}
	}
	sch, err := info.Configure(v)
	if err != nil {
		return nil, badRequest("%v", err)
	}
	return sch, nil
}

// knobArgs picks which of the request's knob values apply to the named
// scheme, so a request listing several schemes can carry "lockfrac" (or
// "updatefrac") without erroring on the schemes that have no such knob —
// matching the old behavior of passing lockfrac only to "hybrid".
func knobArgs(name string, lockFrac, updateFrac *float64) (lf, uf *float64) {
	if info, ok := core.SchemeInfoByName(name); ok {
		switch info.Knob {
		case "lockfrac":
			lf = lockFrac
		case "updatefrac":
			uf = updateFrac
		}
	}
	return lf, uf
}

// schemeLabel is the cache's identity string for a scheme: Name, or
// String when the scheme carries configuration (Hybrid's lock fraction).
func schemeLabel(s core.Scheme) string {
	if str, ok := s.(fmt.Stringer); ok {
		return str.String()
	}
	return s.Name()
}

func (s *Server) checkProcs(procs int) (int, error) {
	if procs == 0 {
		return 16, nil
	}
	if procs < 1 || procs > s.cfg.MaxProcs {
		return 0, badRequest("procs %d not in [1,%d]", procs, s.cfg.MaxProcs)
	}
	return procs, nil
}

func (s *Server) checkStages(stages int) (int, error) {
	if stages < 1 || stages > s.cfg.MaxStages {
		return 0, badRequest("stages %d not in [1,%d]", stages, s.cfg.MaxStages)
	}
	return stages, nil
}

// --- /v1/bus ---

type busRequest struct {
	Scheme   string   `json:"scheme"`
	LockFrac *float64 `json:"lockfrac,omitempty"`
	// UpdateFrac tunes the hybrid-update scheme's update share.
	UpdateFrac *float64        `json:"updatefrac,omitempty"`
	Level      string          `json:"level,omitempty"`
	Params     json.RawMessage `json:"params,omitempty"`
	Procs      int             `json:"procs,omitempty"`
	// Point requests only the prediction at exactly Procs processors
	// instead of the full 1..Procs curve.
	Point bool `json:"point,omitempty"`
}

type busResponse struct {
	Scheme string          `json:"scheme"`
	Costs  string          `json:"costs"`
	Procs  int             `json:"procs"`
	Points []core.BusPoint `json:"points"`
}

func (s *Server) handleBus(ctx context.Context, body []byte) (any, error) {
	var req busRequest
	if err := decodeStrict(body, &req); err != nil {
		return nil, err
	}
	scheme, err := resolveScheme(req.Scheme, req.LockFrac, req.UpdateFrac)
	if err != nil {
		return nil, err
	}
	p, err := resolveParams(req.Level, req.Params)
	if err != nil {
		return nil, err
	}
	procs, err := s.checkProcs(req.Procs)
	if err != nil {
		return nil, err
	}
	costs := core.BusCosts()
	return s.solve(ctx, func() (any, error) {
		resp := busResponse{Scheme: schemeLabel(scheme), Costs: costs.Name, Procs: procs}
		if req.Point {
			pt, err := s.ev.BusPointCtx(ctx, scheme, p, costs, procs)
			if err != nil {
				return nil, err
			}
			resp.Points = []core.BusPoint{pt}
			return resp, nil
		}
		pts, err := s.ev.EvaluateBusCtx(ctx, scheme, p, costs, procs)
		if err != nil {
			return nil, err
		}
		resp.Points = pts
		return resp, nil
	})
}

// --- /v1/network ---

type networkRequest struct {
	Scheme   string   `json:"scheme"`
	LockFrac *float64 `json:"lockfrac,omitempty"`
	// UpdateFrac tunes the hybrid-update scheme's update share.
	UpdateFrac *float64        `json:"updatefrac,omitempty"`
	Level      string          `json:"level,omitempty"`
	Params     json.RawMessage `json:"params,omitempty"`
	Stages     int             `json:"stages"`
	// Model selects the contention model: "patel" (default, the paper's
	// retry fixed point) or "mva" (the footnote-2 load-dependent MVA).
	Model string `json:"model,omitempty"`
}

type networkResponse struct {
	Scheme string            `json:"scheme"`
	Model  string            `json:"model"`
	Point  core.NetworkPoint `json:"point"`
}

func (s *Server) handleNetwork(ctx context.Context, body []byte) (any, error) {
	var req networkRequest
	if err := decodeStrict(body, &req); err != nil {
		return nil, err
	}
	scheme, err := resolveScheme(req.Scheme, req.LockFrac, req.UpdateFrac)
	if err != nil {
		return nil, err
	}
	p, err := resolveParams(req.Level, req.Params)
	if err != nil {
		return nil, err
	}
	stages, err := s.checkStages(req.Stages)
	if err != nil {
		return nil, err
	}
	model := req.Model
	if model == "" {
		model = "patel"
	}
	if model != "patel" && model != "mva" {
		return nil, badRequest("unknown model %q (want patel or mva)", req.Model)
	}
	return s.solve(ctx, func() (any, error) {
		var pt core.NetworkPoint
		var err error
		if model == "mva" {
			pt, err = core.EvaluateNetworkMVA(scheme, p, stages)
		} else {
			pt, err = core.EvaluateNetworkAt(scheme, p, stages)
		}
		if err != nil {
			return nil, err
		}
		return networkResponse{Scheme: schemeLabel(scheme), Model: model, Point: pt}, nil
	})
}

// --- /v1/advisor ---

type advisorRequest struct {
	Level  string          `json:"level,omitempty"`
	Params json.RawMessage `json:"params,omitempty"`
	Procs  int             `json:"procs,omitempty"`
	// Stages 0 ranks on a Procs-processor bus; >= 1 on a 2^Stages
	// network.
	Stages int `json:"stages,omitempty"`
	// Schemes restricts the candidate set (default: the advisor's usual
	// implementable candidates).
	Schemes  []string `json:"schemes,omitempty"`
	LockFrac *float64 `json:"lockfrac,omitempty"`
	// UpdateFrac tunes the hybrid-update scheme's update share.
	UpdateFrac *float64 `json:"updatefrac,omitempty"`
}

type rankingJSON struct {
	Scheme     string  `json:"scheme"`
	Power      float64 `json:"power"`
	Efficiency float64 `json:"efficiency"`
}

type advisorResponse struct {
	Hardware string        `json:"hardware"`
	Rankings []rankingJSON `json:"rankings"`
}

// defaultCandidates mirrors cohere advise and core.Recommend: the
// registry's Advise-marked schemes.
func defaultCandidates() []core.Scheme { return core.DefaultCandidates() }

func (s *Server) handleAdvisor(ctx context.Context, body []byte) (any, error) {
	var req advisorRequest
	if err := decodeStrict(body, &req); err != nil {
		return nil, err
	}
	p, err := resolveParams(req.Level, req.Params)
	if err != nil {
		return nil, err
	}
	candidates := defaultCandidates()
	if len(req.Schemes) > 0 {
		candidates = candidates[:0]
		for _, name := range req.Schemes {
			lf, uf := knobArgs(name, req.LockFrac, req.UpdateFrac)
			sch, err := resolveScheme(name, lf, uf)
			if err != nil {
				return nil, err
			}
			candidates = append(candidates, sch)
		}
	}
	var hardware string
	var rank func() ([]core.Ranking, error)
	if req.Stages == 0 {
		procs, err := s.checkProcs(req.Procs)
		if err != nil {
			return nil, err
		}
		hardware = fmt.Sprintf("%d-processor bus", procs)
		rank = func() ([]core.Ranking, error) {
			return core.RankBusWith(s.ev, candidates, p, core.BusCosts(), procs)
		}
	} else {
		if req.Procs != 0 {
			return nil, badRequest(`"procs" and "stages" are mutually exclusive (a network's size is 2^stages)`)
		}
		stages, err := s.checkStages(req.Stages)
		if err != nil {
			return nil, err
		}
		hardware = fmt.Sprintf("%d-processor circuit-switched network", 1<<stages)
		rank = func() ([]core.Ranking, error) {
			return core.RankNetwork(candidates, p, stages)
		}
	}
	return s.solve(ctx, func() (any, error) {
		ranked, err := rank()
		if err != nil {
			return nil, err
		}
		resp := advisorResponse{Hardware: hardware}
		for _, r := range ranked {
			resp.Rankings = append(resp.Rankings, rankingJSON{
				Scheme:     schemeLabel(r.Scheme),
				Power:      r.Power,
				Efficiency: r.Efficiency,
			})
		}
		return resp, nil
	})
}

// --- /v1/sensitivity ---

type sensitivityRequest struct {
	Procs int `json:"procs,omitempty"`
	// Schemes lists the table's columns (default: the paper's four
	// schemes).
	Schemes  []string `json:"schemes,omitempty"`
	LockFrac *float64 `json:"lockfrac,omitempty"`
	// UpdateFrac tunes the hybrid-update scheme's update share.
	UpdateFrac *float64 `json:"updatefrac,omitempty"`
}

func (s *Server) handleSensitivity(ctx context.Context, body []byte) (any, error) {
	var req sensitivityRequest
	if err := decodeStrict(body, &req); err != nil {
		return nil, err
	}
	procs, err := s.checkProcs(req.Procs)
	if err != nil {
		return nil, err
	}
	schemes := core.PaperSchemes()
	if len(req.Schemes) > 0 {
		schemes = schemes[:0]
		for _, name := range req.Schemes {
			lf, uf := knobArgs(name, req.LockFrac, req.UpdateFrac)
			sch, err := resolveScheme(name, lf, uf)
			if err != nil {
				return nil, err
			}
			schemes = append(schemes, sch)
		}
	}
	return s.solve(ctx, func() (any, error) {
		// Threading the request ctx means an abandoned sensitivity grid
		// stops solving cells at the engine's next cancellation point
		// instead of finishing the whole table into a dropped response.
		return sensitivity.AnalyzeWithCtx(ctx, &sweep.Engine{Cache: s.ev}, schemes, procs)
	})
}

// --- /healthz ---

type healthResponse struct {
	Status        string      `json:"status"`
	UptimeSeconds float64     `json:"uptime_seconds"`
	Cache         sweep.Stats `json:"cache"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	s.writeJSON(w, http.StatusOK, healthResponse{
		Status:        "ok",
		UptimeSeconds: time.Since(s.start).Seconds(),
		Cache:         s.ev.Stats(),
	})
}

// --- /readyz ---

// ReadyzCache summarizes cache warmth for readiness consumers: a
// gateway prefers routing to (and snapshotting from) warm backends,
// and the warm-restart drill asserts entries survived a restart.
type ReadyzCache struct {
	// DemandEntries is the number of cached per-scheme demand results.
	DemandEntries int `json:"demand_entries"`
	// CurveEntries is the number of cached MVA curves.
	CurveEntries int `json:"curve_entries"`
	// HitRatio is lifetime cache hits over lookups across the demand
	// and curve caches, 0 on a cold server.
	HitRatio float64 `json:"hit_ratio"`
}

// ReadyzResponse is the JSON body of GET /readyz — exported so the
// gateway's health checker decodes the same struct the daemon encodes.
type ReadyzResponse struct {
	// Ready mirrors the HTTP status: true on 200, false on 503.
	Ready bool `json:"ready"`
	// Reason says why a not-ready server is not ready ("shedding",
	// "restoring snapshot", "draining", ...); empty when ready.
	Reason string `json:"reason,omitempty"`
	// Cache reports the evaluator's warmth.
	Cache ReadyzCache `json:"cache"`
	// Weight is the advertised routing weight for a weighted-rendezvous
	// gateway (cohered -weight); 0 when the backend does not advertise
	// one.
	Weight float64 `json:"weight,omitempty"`
	// ModelFingerprint identifies the analytic model build this backend
	// runs (sweep.ModelFingerprint). A gateway response cache keys on it
	// so bytes computed by one build are never served for another.
	ModelFingerprint string `json:"model_fingerprint,omitempty"`
}

// handleReadyz implements GET /readyz: 503 while the daemon is
// explicitly not-ready (booting from a snapshot, draining) or while
// admission control is shedding (queue past -max-queue), 200 otherwise.
// Distinct from /healthz, which answers 200 for the whole process
// lifetime: ready is "send me traffic", healthy is "don't restart me".
func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	st := s.ev.Stats()
	resp := ReadyzResponse{Ready: true, Cache: ReadyzCache{
		DemandEntries: st.DemandEntries,
		CurveEntries:  st.CurveEntries,
	}, Weight: s.cfg.Weight, ModelFingerprint: sweep.ModelFingerprint()}
	if lookups := st.DemandHits + st.MVAHits + st.DemandSolves + st.MVASolves; lookups > 0 {
		resp.Cache.HitRatio = float64(st.DemandHits+st.MVAHits) / float64(lookups)
	}
	if reason := s.notReady.Load(); reason != nil {
		resp.Ready, resp.Reason = false, *reason
	} else if s.met.queueDepth.Load() >= int64(s.cfg.MaxQueueDepth) {
		resp.Ready, resp.Reason = false, "shedding"
	}
	code := http.StatusOK
	if !resp.Ready {
		code = http.StatusServiceUnavailable
	}
	s.writeJSON(w, code, resp)
}

// --- /metrics ---

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.met.write(w, s.ev, s.cfg.Fault, s.jobs)
}
