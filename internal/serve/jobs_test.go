package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"swcc/internal/core"
	"swcc/internal/fault"
	"swcc/internal/sweep"
)

func get(t *testing.T, ts *httptest.Server, path string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: reading body: %v", path, err)
	}
	return resp.StatusCode, data
}

func del(t *testing.T, ts *httptest.Server, path string) (int, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodDelete, ts.URL+path, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("DELETE %s: %v", path, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, data
}

// submitJob posts a job spec and returns the submit response.
func submitJob(t *testing.T, ts *httptest.Server, body string) jobSubmitResponse {
	t.Helper()
	code, data := post(t, ts, "/v1/jobs/sweep", body)
	if code != http.StatusOK {
		t.Fatalf("submit: status %d: %s", code, data)
	}
	var sub jobSubmitResponse
	if err := json.Unmarshal(data, &sub); err != nil {
		t.Fatalf("submit response: %v", err)
	}
	if sub.ID == "" {
		t.Fatalf("submit response has no id: %s", data)
	}
	return sub
}

// jobStatus fetches one job's status.
func jobStatus(t *testing.T, ts *httptest.Server, id string) jobStatusJSON {
	t.Helper()
	code, data := get(t, ts, "/v1/jobs/"+id)
	if code != http.StatusOK {
		t.Fatalf("status %s: %d: %s", id, code, data)
	}
	var st jobStatusJSON
	if err := json.Unmarshal(data, &st); err != nil {
		t.Fatal(err)
	}
	return st
}

// waitState polls until the job reaches a state or the deadline passes.
func waitState(t *testing.T, ts *httptest.Server, id, want string) jobStatusJSON {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		st := jobStatus(t, ts, id)
		if st.State == want {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in state %q (want %q); error: %s", id, st.State, want, st.Error)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// jobStream is one parsed results stream.
type jobStream struct {
	rows     []json.RawMessage // data lines, in order
	markers  []uint64          // {"seq":N} cursor lines, in order
	trailer  *jobTrailerJSON   // final line, nil if the stream ended early
	rawLines int
}

// streamResults reads one GET /v1/jobs/{id}/results?after=N to the end.
func streamResults(t *testing.T, ts *httptest.Server, id string, after uint64) jobStream {
	t.Helper()
	resp, err := http.Get(fmt.Sprintf("%s/v1/jobs/%s/results?after=%d", ts.URL, id, after))
	if err != nil {
		t.Fatalf("stream %s: %v", id, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		data, _ := io.ReadAll(resp.Body)
		t.Fatalf("stream %s: status %d: %s", id, resp.StatusCode, data)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("stream content type = %q, want application/x-ndjson", ct)
	}
	return parseStream(t, resp.Body)
}

func parseStream(t *testing.T, r io.Reader) jobStream {
	t.Helper()
	var out jobStream
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := sc.Bytes()
		out.rawLines++
		var probe struct {
			Seq  *uint64 `json:"seq"`
			Done *bool   `json:"done"`
		}
		if err := json.Unmarshal(line, &probe); err != nil {
			t.Fatalf("bad stream line %q: %v", line, err)
		}
		switch {
		case probe.Done != nil:
			var tr jobTrailerJSON
			if err := json.Unmarshal(line, &tr); err != nil {
				t.Fatal(err)
			}
			out.trailer = &tr
		case probe.Seq != nil:
			out.markers = append(out.markers, *probe.Seq)
		default:
			out.rows = append(out.rows, json.RawMessage(append([]byte(nil), line...)))
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("reading stream: %v", err)
	}
	return out
}

// TestJobGridLifecycle is the happy path: submit a grid, watch it finish,
// stream every row in order, and confirm the drained spool holds nothing.
func TestJobGridLifecycle(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	sub := submitJob(t, ts, `{"label":"grid-test","schemes":["swflush","dragon"],
		"axis":"apl","from":10,"to":30,"steps":3,"procs_from":1,"procs_to":8}`)
	if sub.Points != 2*3*8 {
		t.Fatalf("submit points = %d, want 48", sub.Points)
	}
	if sub.ResultsURL != "/v1/jobs/"+sub.ID+"/results" {
		t.Errorf("results_url = %q", sub.ResultsURL)
	}

	st := waitState(t, ts, sub.ID, "done")
	if st.PointsOK != 48 || st.PointsErr != 0 {
		t.Fatalf("points ok/err = %d/%d, want 48/0", st.PointsOK, st.PointsErr)
	}

	stream := streamResults(t, ts, sub.ID, 0)
	if stream.trailer == nil || !stream.trailer.Done {
		t.Fatal("stream ended without a done trailer")
	}
	if stream.trailer.State != "done" || stream.trailer.PointsOK != 48 {
		t.Fatalf("trailer = %+v", stream.trailer)
	}
	if len(stream.rows) != 48 {
		t.Fatalf("streamed %d rows, want 48", len(stream.rows))
	}
	if len(stream.markers) == 0 {
		t.Fatal("stream had no {\"seq\":N} markers")
	}
	// Rows arrive in submission order: per (scheme, x), procs ascend 1..8.
	perScheme := map[string]int{}
	for i, raw := range stream.rows {
		var row jobRowJSON
		if err := json.Unmarshal(raw, &row); err != nil {
			t.Fatal(err)
		}
		if row.Error != "" || row.Point == nil {
			t.Fatalf("row %d unexpectedly failed: %s", i, raw)
		}
		if want := i%8 + 1; row.Procs != want {
			t.Fatalf("row %d procs = %d, want %d", i, row.Procs, want)
		}
		if row.X == nil {
			t.Fatalf("row %d missing axis value: %s", i, raw)
		}
		perScheme[row.Scheme]++
	}
	if perScheme["Software-Flush"] != 24 || perScheme["Dragon"] != 24 {
		t.Fatalf("rows per scheme = %v", perScheme)
	}

	// Each streamed row is bit-identical to the direct evaluator answer.
	var first jobRowJSON
	if err := json.Unmarshal(stream.rows[0], &first); err != nil {
		t.Fatal(err)
	}
	p, err := core.MiddleParams().With("apl", *first.X)
	if err != nil {
		t.Fatal(err)
	}
	want, err := core.EvaluateBus(core.SoftwareFlush{}, p, core.BusCosts(), first.Procs)
	if err != nil {
		t.Fatal(err)
	}
	if *first.Point != want[first.Procs-1] {
		t.Fatalf("streamed point %+v != direct %+v", *first.Point, want[first.Procs-1])
	}

	// Everything acked: the spool is empty, and a resume from the final
	// cursor replays nothing but the trailer.
	st = jobStatus(t, ts, sub.ID)
	if st.SpooledRows != 0 {
		t.Fatalf("spooled_rows = %d after full drain, want 0", st.SpooledRows)
	}
	last := stream.markers[len(stream.markers)-1]
	resumed := streamResults(t, ts, sub.ID, last)
	if len(resumed.rows) != 0 || resumed.trailer == nil {
		t.Fatalf("resume at final cursor: %d rows, trailer %v", len(resumed.rows), resumed.trailer)
	}

	// The daemon's metrics carry the job families.
	_, metricsBody := get(t, ts, "/metrics")
	for _, want := range []string{
		"swcc_jobs_active 0",
		`swcc_job_points_total{state="ok"} 48`,
		`swcc_job_points_total{state="error"} 0`,
	} {
		if !strings.Contains(string(metricsBody), want) {
			t.Errorf("metrics missing %q", want)
		}
	}

	// Delete releases the slot; the job is gone afterwards.
	if code, _ := del(t, ts, "/v1/jobs/"+sub.ID); code != http.StatusOK {
		t.Fatalf("delete: status %d", code)
	}
	if code, _ := get(t, ts, "/v1/jobs/"+sub.ID); code != http.StatusNotFound {
		t.Fatalf("status after delete = %d, want 404", code)
	}
	// The monotonic point counters survive the deletion.
	_, metricsBody = get(t, ts, "/metrics")
	if !strings.Contains(string(metricsBody), `swcc_job_points_total{state="ok"} 48`) {
		t.Error("job point counter dropped after delete")
	}
}

// TestJobRefineMatchesDirect runs a refine job and checks its streamed
// crossover against the library's Refine on a fresh engine.
func TestJobRefineMatchesDirect(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	base, err := core.MiddleParams().With("apl", 20)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := sweep.New(0).Refine(context.Background(), sweep.RefineSpec{
		Schemes: []core.Scheme{core.SoftwareFlush{}, core.Dragon{}},
		Base:    base, Axis: sweep.AxisProcs, From: 1, To: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(direct.Boundaries) != 1 {
		t.Fatalf("direct refine found %d boundaries, want 1", len(direct.Boundaries))
	}

	sub := submitJob(t, ts, `{"mode":"refine","schemes":["swflush","dragon"],
		"axis":"procs","from":1,"to":64,"params":{"apl":20}}`)
	waitState(t, ts, sub.ID, "done")
	stream := streamResults(t, ts, sub.ID, 0)
	if stream.trailer == nil || stream.trailer.State != "done" {
		t.Fatalf("trailer = %+v", stream.trailer)
	}

	var boundaries []refineBoundaryJSON
	rowByX := map[float64]refineRowJSON{}
	for _, raw := range stream.rows {
		if strings.Contains(string(raw), `"boundary"`) {
			var b refineBoundaryJSON
			if err := json.Unmarshal(raw, &b); err != nil {
				t.Fatal(err)
			}
			boundaries = append(boundaries, b)
			continue
		}
		var row refineRowJSON
		if err := json.Unmarshal(raw, &row); err != nil {
			t.Fatal(err)
		}
		rowByX[row.X] = row
	}
	if len(boundaries) != 1 {
		t.Fatalf("streamed %d boundary rows, want 1", len(boundaries))
	}
	b := boundaries[0]
	want := direct.Boundaries[0]
	if b.Boundary.Lo != want.Lo || b.Boundary.Hi != want.Hi ||
		b.Boundary.LoBest != "Software-Flush" || b.Boundary.HiBest != "Dragon" {
		t.Fatalf("streamed boundary %+v, direct %+v", b.Boundary, want)
	}
	if len(rowByX) != len(direct.Points) {
		t.Fatalf("streamed %d refine points, direct evaluated %d", len(rowByX), len(direct.Points))
	}
	for _, dp := range direct.Points {
		row, ok := rowByX[dp.X]
		if !ok {
			t.Fatalf("direct point x=%g missing from stream", dp.X)
		}
		for i, pw := range dp.Power {
			if row.Power[i] != pw {
				t.Fatalf("x=%g scheme %d power %v != direct %v", dp.X, i, row.Power[i], pw)
			}
		}
	}
}

// TestJobValidationAndErrorMapping drives every 4xx path of the job API.
func TestJobValidationAndErrorMapping(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxJobPoints: 100})
	for name, tc := range map[string]struct {
		body string
		want int
	}{
		"no schemes":         {`{"schemes":[]}`, 400},
		"bad scheme":         {`{"schemes":["bogus"]}`, 400},
		"bad mode":           {`{"mode":"stream","schemes":["dragon"]}`, 400},
		"steps without axis": {`{"schemes":["dragon"],"steps":5}`, 400},
		"axis needs steps":   {`{"schemes":["dragon"],"axis":"apl","from":1,"to":9}`, 400},
		"grid procs axis":    {`{"schemes":["dragon"],"axis":"procs","from":1,"to":9,"steps":3}`, 400},
		"procs conflict":     {`{"schemes":["dragon"],"procs":4,"procs_from":1,"procs_to":8}`, 400},
		"unknown axis":       {`{"schemes":["dragon"],"axis":"bogus","from":1,"to":9,"steps":3}`, 400},
		"over point cap":     {`{"schemes":["dragon"],"procs_from":1,"procs_to":101}`, 400},
		"refine one scheme":  {`{"mode":"refine","schemes":["dragon"],"axis":"procs","from":1,"to":8}`, 400},
		"refine bad range":   {`{"mode":"refine","schemes":["dragon","swflush"],"axis":"procs","from":8,"to":1}`, 400},
		"unknown field":      {`{"schemes":["dragon"],"prox":8}`, 400},
	} {
		if code, data := post(t, ts, "/v1/jobs/sweep", tc.body); code != tc.want {
			t.Errorf("%s: status %d (want %d): %s", name, code, tc.want, data)
		}
	}

	// Unknown job IDs are 404 across all three per-job endpoints.
	if code, _ := get(t, ts, "/v1/jobs/j999999"); code != 404 {
		t.Errorf("status of unknown job: %d", code)
	}
	if code, _ := get(t, ts, "/v1/jobs/j999999/results"); code != 404 {
		t.Errorf("results of unknown job: %d", code)
	}
	if code, _ := del(t, ts, "/v1/jobs/j999999"); code != 404 {
		t.Errorf("delete of unknown job: %d", code)
	}

	// Cursor errors: beyond the stream is 400, behind the freed prefix 410.
	sub := submitJob(t, ts, `{"schemes":["dragon"],"procs_from":1,"procs_to":8}`)
	waitState(t, ts, sub.ID, "done")
	if code, data := get(t, ts, "/v1/jobs/"+sub.ID+"/results?after=999999"); code != 400 {
		t.Errorf("future cursor: status %d: %s", code, data)
	}
	if code, _ := get(t, ts, "/v1/jobs/"+sub.ID+"/results?after=nope"); code != 400 {
		t.Errorf("malformed cursor: status %d", code)
	}
	streamResults(t, ts, sub.ID, 0) // acks everything
	if code, data := get(t, ts, "/v1/jobs/"+sub.ID+"/results?after=0"); code != http.StatusGone {
		t.Errorf("rewound cursor: status %d (want 410): %s", code, data)
	}
}

// TestJobRegistryFullAndCancel exercises the 503-when-full path and
// mid-flight cancellation through DELETE. Injected latency keeps the job
// alive long enough to observe it running.
func TestJobRegistryFullAndCancel(t *testing.T) {
	_, ts := newTestServer(t, Config{
		MaxJobs: 1,
		Fault:   fault.New(fault.Config{Seed: 1, Latency: 2 * time.Millisecond, LatencyP: 1}),
	})
	slow := `{"schemes":["swflush","dragon"],"axis":"apl","from":4,"to":40,"steps":10,"procs_from":1,"procs_to":64}`
	sub := submitJob(t, ts, slow)
	waitState(t, ts, sub.ID, "running")

	code, data := post(t, ts, "/v1/jobs/sweep", slow)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("submit over MaxJobs: status %d: %s", code, data)
	}

	if code, _ := del(t, ts, "/v1/jobs/"+sub.ID); code != http.StatusOK {
		t.Fatalf("delete running job: status %d", code)
	}
	// The slot frees immediately; the next submission is admitted.
	sub2 := submitJob(t, ts, slow)
	if code, _ := del(t, ts, "/v1/jobs/"+sub2.ID); code != http.StatusOK {
		t.Fatal("second delete failed")
	}
}

// TestJobList lists resident jobs with their states.
func TestJobList(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	a := submitJob(t, ts, `{"label":"a","schemes":["dragon"],"procs":8}`)
	b := submitJob(t, ts, `{"label":"b","schemes":["swflush"],"procs":8}`)
	waitState(t, ts, a.ID, "done")
	waitState(t, ts, b.ID, "done")
	code, data := get(t, ts, "/v1/jobs")
	if code != http.StatusOK {
		t.Fatalf("list: %d", code)
	}
	var list struct {
		Jobs []jobStatusJSON `json:"jobs"`
	}
	if err := json.Unmarshal(data, &list); err != nil {
		t.Fatal(err)
	}
	if len(list.Jobs) != 2 || list.Jobs[0].ID > list.Jobs[1].ID {
		t.Fatalf("list = %+v", list.Jobs)
	}
	if list.Jobs[0].Label != "a" || list.Jobs[1].Label != "b" {
		t.Fatalf("labels = %q, %q", list.Jobs[0].Label, list.Jobs[1].Label)
	}
}

// waitPoolBalance retries until the shared point pool's acquires equal
// its releases (abandoned solves release on a drain goroutine, so
// balance can trail the last response by a moment).
func waitPoolBalance(t *testing.T) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		acq, rel := sweep.PointPoolAccounting()
		if acq == rel {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("point pool unbalanced: %d acquires, %d releases", acq, rel)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestSweepPoolAccountingUnderFaults hammers /v1/sweep with error and
// panic injection on every point and then proves the pooled point
// buffers all came back: acquires == releases, whatever mix of 200, 500,
// and 503 responses the injector produced.
func TestSweepPoolAccountingUnderFaults(t *testing.T) {
	_, ts := newTestServer(t, Config{
		Fault: fault.New(fault.Config{Seed: 42, ErrorP: 0.05, PanicP: 0.05}),
	})
	var pts []string
	for i := 0; i < 12; i++ {
		pts = append(pts, fmt.Sprintf(`{"scheme":"dragon","procs":%d}`, 4+i))
	}
	body := `{"points":[` + strings.Join(pts, ",") + `]}`
	codes := map[int]int{}
	for i := 0; i < 50; i++ {
		code, _ := post(t, ts, "/v1/sweep", body)
		codes[code]++
	}
	if codes[200] == 0 {
		t.Errorf("no sweep succeeded under injection: %v", codes)
	}
	if codes[500]+codes[503] == 0 {
		t.Errorf("no sweep failed under 25%%+25%% injection: %v", codes)
	}
	waitPoolBalance(t)
}

// TestLargeJobBoundedMemoryAndAccounting is the scale acceptance test: a
// 100k-point grid job under error and panic injection streams to
// completion with every point accounted for (ok + error == grid size),
// the spool's high-water mark bounded by its configured cap, and the
// point pool's acquires equal to its releases afterwards.
func TestLargeJobBoundedMemoryAndAccounting(t *testing.T) {
	if testing.Short() {
		t.Skip("100k-point job in -short mode")
	}
	spoolRows := 2048
	_, ts := newTestServer(t, Config{
		JobSpoolRows: spoolRows,
		Fault:        fault.New(fault.Config{Seed: 7, ErrorP: 0.02, PanicP: 0.005}),
	})
	// 2 schemes x 50 axis values x 1000 machine sizes = 100000 points.
	sub := submitJob(t, ts, `{"label":"big","schemes":["swflush","dragon"],
		"axis":"apl","from":1,"to":50,"steps":50,"procs_from":1,"procs_to":1000}`)
	if sub.Points != 100000 {
		t.Fatalf("submit points = %d, want 100000", sub.Points)
	}

	stream := streamResults(t, ts, sub.ID, 0)
	if stream.trailer == nil || !stream.trailer.Done || stream.trailer.State != "done" {
		t.Fatalf("trailer = %+v", stream.trailer)
	}
	if len(stream.rows) != 100000 {
		t.Fatalf("streamed %d rows, want 100000", len(stream.rows))
	}
	if got := stream.trailer.PointsOK + stream.trailer.PointsErr; got != 100000 {
		t.Fatalf("ok+err = %d, want 100000 (%+v)", got, stream.trailer)
	}
	if stream.trailer.PointsErr == 0 {
		t.Error("no injected point failures in 100k points at 2.5% injection")
	}

	st := jobStatus(t, ts, sub.ID)
	if st.HighWater > spoolRows {
		t.Errorf("spool high water %d exceeded cap %d", st.HighWater, spoolRows)
	}
	if st.SpooledRows != 0 {
		t.Errorf("spooled_rows = %d after full drain", st.SpooledRows)
	}
	waitPoolBalance(t)
}
