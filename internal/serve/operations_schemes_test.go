package serve

import (
	"fmt"
	"reflect"
	"regexp"
	"sort"
	"strings"
	"testing"

	"swcc/internal/core"
)

// TestOperationsDocCoversSchemes is the golden drift test keeping
// OPERATIONS.md's "Scheme names and knobs" table synchronized with the
// scheme registry, in both directions: every registered scheme must
// have a row with its exact alias set and knob field, and every row
// must correspond to a live registration. Registering, retiring, or
// re-aliasing a scheme forces the matching operator-doc edit.
func TestOperationsDocCoversSchemes(t *testing.T) {
	doc := readOperationsMD(t)
	i := strings.Index(doc, "## Scheme names and knobs")
	if i < 0 {
		t.Fatal("OPERATIONS.md lost its '## Scheme names and knobs' section")
	}
	section := doc[i:]
	if j := strings.Index(section[1:], "\n## "); j >= 0 {
		section = section[:j+1]
	}

	ticks := regexp.MustCompile("`([^`]+)`")
	cells := func(line string) []string {
		parts := strings.Split(strings.Trim(strings.TrimSpace(line), "|"), "|")
		for k := range parts {
			parts[k] = strings.TrimSpace(parts[k])
		}
		return parts
	}
	documented := map[string][]string{} // canonical name -> row cells
	for _, line := range strings.Split(section, "\n") {
		trimmed := strings.TrimSpace(line)
		if !strings.HasPrefix(trimmed, "|") || strings.HasPrefix(trimmed, "|---") ||
			strings.HasPrefix(trimmed, "| Scheme") {
			continue
		}
		row := cells(line)
		if len(row) != 3 {
			t.Fatalf("scheme table row has %d cells, want 3: %q", len(row), line)
		}
		name := ticks.FindStringSubmatch(row[0])
		if name == nil {
			t.Fatalf("row %q has no backticked scheme name", line)
		}
		documented[name[1]] = row
	}
	if len(documented) == 0 {
		t.Fatal("no scheme rows found in OPERATIONS.md — parser or doc broken")
	}

	registered := map[string]bool{}
	for _, info := range core.RegisteredSchemes() {
		name := info.Scheme.Name()
		registered[name] = true
		row, ok := documented[name]
		if !ok {
			t.Errorf("registered scheme %s has no row in OPERATIONS.md", name)
			continue
		}
		var gotAliases []string
		for _, m := range ticks.FindAllStringSubmatch(row[1], -1) {
			gotAliases = append(gotAliases, m[1])
		}
		sort.Strings(gotAliases)
		wantAliases := append([]string(nil), info.Aliases...)
		sort.Strings(wantAliases)
		if !reflect.DeepEqual(gotAliases, wantAliases) {
			t.Errorf("%s: OPERATIONS.md spellings %v, registry has %v", name, gotAliases, wantAliases)
		}
		switch {
		case info.Knob == "" && strings.Contains(row[2], "`"):
			t.Errorf("%s: OPERATIONS.md documents knob %q, registry has none", name, row[2])
		case info.Knob != "":
			want := fmt.Sprintf("`%s` (default %g)", info.Knob, info.KnobDefault)
			if row[2] != want {
				t.Errorf("%s: knob cell %q, want %q", name, row[2], want)
			}
		}
	}
	for name := range documented {
		if !registered[name] {
			t.Errorf("OPERATIONS.md documents scheme %s, which is not registered", name)
		}
	}
}
