// Package serve is the HTTP model-serving layer: a JSON API over the
// analytical model, backed by one shared memoizing sweep.Evaluator so a
// long-running daemon amortizes demand and MVA solves across requests.
//
// The package provides the handler tree and production plumbing — strict
// input validation (unknown fields, NaN/Inf, and out-of-range workload
// parameters are rejected at the boundary with 400s), per-request
// timeouts, a concurrency limiter with backpressure, request body size
// caps, panic recovery, structured access logs, and Prometheus-style
// metrics — while cmd/cohered owns the process concerns (flags, signals,
// graceful shutdown, the optional pprof listener).
//
// Endpoints:
//
//	GET  /healthz         liveness + cache snapshot
//	GET  /metrics         Prometheus text format
//	POST /v1/bus          bus-model curve or single point
//	POST /v1/network      multistage-network point (Patel or MVA variant)
//	POST /v1/advisor      scheme rankings for a workload
//	POST /v1/sensitivity  one-at-a-time parameter sensitivity table
//	POST /v1/sweep        batch of bus-model points in one round trip
//
// Observability invariants (OPERATIONS.md is the operator-facing
// reference; DESIGN.md §9 the design rationale):
//
//   - Every request carries a trace ID: a valid client-supplied
//     X-Request-ID is honored, anything else is replaced by a generated
//     one; the ID is echoed in the X-Request-ID response header, stamped
//     on the access log line, and propagated via context.Context into
//     internal/sweep so evaluator cache events correlate with requests.
//   - Latency is recorded into fixed-bucket atomic histograms (aggregate,
//     per endpoint, and per pipeline stage: decode/validate, cache
//     lookup, singleflight wait, cold solve) — recording never takes a
//     lock, so metrics cannot become the serialization point the sharded
//     evaluator exists to remove.
//   - /metrics output is byte-stable: identical scrapes of an idle
//     server render identical bytes, because every series family is
//     emitted in a fixed order and labeled series are sorted.
//
// Every response is bit-identical to the equivalent library call: the
// handlers route through the same sweep.Evaluator code paths the CLIs
// use, and the evaluator's determinism contract (see internal/sweep)
// guarantees cache hits reproduce miss-path results exactly.
package serve
