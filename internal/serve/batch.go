package serve

import (
	"context"
	"errors"
	"fmt"

	"swcc/internal/core"
	"swcc/internal/sweep"
)

// --- /v1/sweep ---

// sweepRequest is a batch of bus-model queries: a grid of (scheme,
// workload, procs) points answered in one round trip instead of one
// /v1/bus call each. Each point accepts exactly the /v1/bus request
// fields and produces exactly the /v1/bus response for that point, so a
// client can swap N sequential calls for one batch without changing how
// it reads results.
type sweepRequest struct {
	Points []busRequest `json:"points"`
}

type sweepResponse struct {
	Count   int           `json:"count"`
	Results []busResponse `json:"results"`
	// release returns the response's pooled buffers (Results and every
	// Points slice inside it). writeJSON calls it through the
	// bufferReleaser hook once the response bytes are encoded; error
	// paths call it directly. Nil when nothing is pooled.
	release func() `json:"-"`
}

// ReleaseBuffers implements bufferReleaser.
func (r sweepResponse) ReleaseBuffers() {
	if r.release != nil {
		r.release()
	}
}

// sweepJob is one validated point, ready to solve.
type sweepJob struct {
	scheme core.Scheme
	params core.Params
	procs  int
	point  bool
}

// responsePool recycles per-batch result slices across /v1/sweep
// requests; the per-point Points buffers come from sweep.AcquirePoints.
var responsePool sweep.SlicePool[busResponse]

// pointErr prefixes a per-point validation error with its index so the
// client knows which grid cell to fix, preserving the status code.
func pointErr(i int, err error) error {
	var he *httpError
	if errors.As(err, &he) {
		return &httpError{code: he.code, msg: fmt.Sprintf("points[%d]: %s", i, he.msg)}
	}
	return fmt.Errorf("points[%d]: %w", i, err)
}

// handleSweep validates every point up front (the whole batch is
// rejected 400 if any cell is malformed — same strictness as /v1/bus,
// with the failing index named), then fans the grid out across the
// evaluator on all cores. The batch occupies one concurrency-limiter
// slot: MaxInFlight keeps bounding admitted requests, while the
// intra-batch parallelism uses the worker pool. Results come back in
// caller order, each bit-identical to the equivalent /v1/bus response.
func (s *Server) handleSweep(ctx context.Context, body []byte) (any, error) {
	var req sweepRequest
	if err := decodeStrict(body, &req); err != nil {
		return nil, err
	}
	if len(req.Points) == 0 {
		return nil, badRequest(`"points" must be a non-empty array`)
	}
	if len(req.Points) > s.cfg.MaxBatchPoints {
		return nil, badRequest("batch of %d points exceeds the %d-point cap",
			len(req.Points), s.cfg.MaxBatchPoints)
	}
	jobs := make([]sweepJob, len(req.Points))
	for i, pr := range req.Points {
		scheme, err := resolveScheme(pr.Scheme, pr.LockFrac, pr.UpdateFrac)
		if err != nil {
			return nil, pointErr(i, err)
		}
		p, err := resolveParams(pr.Level, pr.Params)
		if err != nil {
			return nil, pointErr(i, err)
		}
		procs, err := s.checkProcs(pr.Procs)
		if err != nil {
			return nil, pointErr(i, err)
		}
		jobs[i] = sweepJob{scheme: scheme, params: p, procs: procs, point: pr.Point}
	}
	costs := core.BusCosts()
	return s.solve(ctx, func() (any, error) {
		// Points sharing one (scheme, canonical workload) form a group a
		// single worker solves population-ascending through a CurveRun —
		// each point resumes the MVA recursion where the previous one
		// stopped. Result and per-point Points buffers come from pools;
		// the response's release hook returns them after encoding.
		groups := sweep.BatchGroups(len(jobs), func(i int) (core.Scheme, core.Params, int) {
			return jobs[i].scheme, jobs[i].params, jobs[i].procs
		})
		resultsBuf := responsePool.Acquire(len(jobs))
		results := *resultsBuf
		pointBufs := make([]*[]core.BusPoint, len(jobs))
		release := func() {
			for _, pb := range pointBufs {
				if pb != nil {
					sweep.ReleasePoints(pb)
				}
			}
			responsePool.Release(resultsBuf)
		}
		errs := make([]error, len(jobs))
		sweep.EachCtx(ctx, 0, len(groups), func(g int) error {
			var run *sweep.CurveRun
			for _, i := range groups[g] {
				s.solveSweepPoint(ctx, jobs[i], costs, &run, &results[i], &pointBufs[i], &errs[i])
			}
			if run != nil {
				run.Finish(ctx)
			}
			return nil
		})
		if err := sweepError(ctx, errs); err != nil {
			release()
			return nil, err
		}
		return sweepResponse{Count: len(results), Results: results, release: release}, nil
	})
}

// solveSweepPoint answers one grid cell of a batch into *out, reusing
// (or starting) the group's CurveRun. Each point remains its own
// fault-injection site and cancellation point, and the pool's worker
// goroutines have no recover of their own — an injected (or model)
// panic here must become this point's error, not kill the process.
func (s *Server) solveSweepPoint(ctx context.Context, j sweepJob, costs *core.CostTable, run **sweep.CurveRun, out *busResponse, pointBuf **[]core.BusPoint, errOut *error) {
	defer func() {
		if p := recover(); p != nil {
			*errOut = fmt.Errorf("serve: internal error: %v", p)
		}
	}()
	if err := ctx.Err(); err != nil {
		*errOut = err
		return
	}
	if err := s.cfg.Fault.Point(ctx); err != nil {
		*errOut = err
		return
	}
	if *run == nil {
		r, err := s.ev.StartCurveRun(ctx, j.scheme, j.params, costs)
		if err != nil {
			*errOut = err
			return
		}
		*run = r
	}
	resp := busResponse{Scheme: schemeLabel(j.scheme), Costs: costs.Name, Procs: j.procs}
	if j.point {
		pt, err := (*run).BusPointAt(ctx, j.procs)
		if err != nil {
			*errOut = err
			return
		}
		buf := sweep.AcquirePoints(1)
		*pointBuf = buf
		(*buf)[0] = pt
		resp.Points = *buf
	} else {
		// Park the buffer in *pointBuf BEFORE the call that can panic: the
		// recover above only records the error, so a buffer not yet visible
		// through pointBufs would never reach the batch's release hook and
		// each fault-injected panic would drain the pool by one buffer.
		buf := sweep.AcquirePoints(j.procs)
		*pointBuf = buf
		pts, err := (*run).BusPointsInto(ctx, j.procs, *buf)
		if err != nil {
			*errOut = err
			return
		}
		resp.Points = pts
	}
	*out = resp
}

// sweepError maps a finished batch's per-point errors to the one error
// the response reports. A done context wins outright and is returned
// bare: a batch abandoned mid-flight is a timeout (504) or disconnect
// of the whole request, and naming whichever point happened to observe
// the cancellation first ("points[17]: context deadline exceeded")
// would misreport a request-level condition as a data error — the bug
// this helper exists to fix. Only with the context still live is the
// lowest-index point error returned, index-prefixed, as before.
func sweepError(ctx context.Context, errs []error) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	for i, err := range errs {
		if err != nil {
			if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
				return err
			}
			return pointErr(i, err)
		}
	}
	return nil
}
