package serve

import (
	"context"
	"errors"
	"fmt"

	"swcc/internal/core"
	"swcc/internal/sweep"
)

// --- /v1/sweep ---

// sweepRequest is a batch of bus-model queries: a grid of (scheme,
// workload, procs) points answered in one round trip instead of one
// /v1/bus call each. Each point accepts exactly the /v1/bus request
// fields and produces exactly the /v1/bus response for that point, so a
// client can swap N sequential calls for one batch without changing how
// it reads results.
type sweepRequest struct {
	Points []busRequest `json:"points"`
}

type sweepResponse struct {
	Count   int           `json:"count"`
	Results []busResponse `json:"results"`
}

// sweepJob is one validated point, ready to solve.
type sweepJob struct {
	scheme core.Scheme
	params core.Params
	procs  int
	point  bool
}

// pointErr prefixes a per-point validation error with its index so the
// client knows which grid cell to fix, preserving the status code.
func pointErr(i int, err error) error {
	var he *httpError
	if errors.As(err, &he) {
		return &httpError{code: he.code, msg: fmt.Sprintf("points[%d]: %s", i, he.msg)}
	}
	return fmt.Errorf("points[%d]: %w", i, err)
}

// handleSweep validates every point up front (the whole batch is
// rejected 400 if any cell is malformed — same strictness as /v1/bus,
// with the failing index named), then fans the grid out across the
// evaluator on all cores. The batch occupies one concurrency-limiter
// slot: MaxInFlight keeps bounding admitted requests, while the
// intra-batch parallelism uses the worker pool. Results come back in
// caller order, each bit-identical to the equivalent /v1/bus response.
func (s *Server) handleSweep(ctx context.Context, body []byte) (any, error) {
	var req sweepRequest
	if err := decodeStrict(body, &req); err != nil {
		return nil, err
	}
	if len(req.Points) == 0 {
		return nil, badRequest(`"points" must be a non-empty array`)
	}
	if len(req.Points) > s.cfg.MaxBatchPoints {
		return nil, badRequest("batch of %d points exceeds the %d-point cap",
			len(req.Points), s.cfg.MaxBatchPoints)
	}
	jobs := make([]sweepJob, len(req.Points))
	for i, pr := range req.Points {
		scheme, err := resolveScheme(pr.Scheme, pr.LockFrac)
		if err != nil {
			return nil, pointErr(i, err)
		}
		p, err := resolveParams(pr.Level, pr.Params)
		if err != nil {
			return nil, pointErr(i, err)
		}
		procs, err := s.checkProcs(pr.Procs)
		if err != nil {
			return nil, pointErr(i, err)
		}
		jobs[i] = sweepJob{scheme: scheme, params: p, procs: procs, point: pr.Point}
	}
	costs := core.BusCosts()
	return s.solve(ctx, func() (any, error) {
		results := make([]busResponse, len(jobs))
		errs := make([]error, len(jobs))
		sweep.EachCtx(ctx, 0, len(jobs), func(i int) (err error) {
			// Each point is a fault-injection site and a cancellation
			// point, and the pool's worker goroutines have no recover of
			// their own — an injected (or model) panic here must become
			// this point's error, not kill the process.
			defer func() {
				if p := recover(); p != nil {
					errs[i] = fmt.Errorf("serve: internal error: %v", p)
				}
			}()
			if err := s.cfg.Fault.Point(ctx); err != nil {
				errs[i] = err
				return nil
			}
			j := jobs[i]
			resp := busResponse{Scheme: schemeLabel(j.scheme), Costs: costs.Name, Procs: j.procs}
			if j.point {
				pt, err := s.ev.BusPointCtx(ctx, j.scheme, j.params, costs, j.procs)
				if err != nil {
					errs[i] = err
					return nil
				}
				resp.Points = []core.BusPoint{pt}
			} else {
				pts, err := s.ev.EvaluateBusCtx(ctx, j.scheme, j.params, costs, j.procs)
				if err != nil {
					errs[i] = err
					return nil
				}
				resp.Points = pts
			}
			results[i] = resp
			return nil
		})
		if err := sweepError(ctx, errs); err != nil {
			return nil, err
		}
		return sweepResponse{Count: len(results), Results: results}, nil
	})
}

// sweepError maps a finished batch's per-point errors to the one error
// the response reports. A done context wins outright and is returned
// bare: a batch abandoned mid-flight is a timeout (504) or disconnect
// of the whole request, and naming whichever point happened to observe
// the cancellation first ("points[17]: context deadline exceeded")
// would misreport a request-level condition as a data error — the bug
// this helper exists to fix. Only with the context still live is the
// lowest-index point error returned, index-prefixed, as before.
func sweepError(ctx context.Context, errs []error) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	for i, err := range errs {
		if err != nil {
			if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
				return err
			}
			return pointErr(i, err)
		}
	}
	return nil
}
