package serve

import (
	"net/http"
	"runtime/debug"
	"time"
)

// statusRecorder captures the status code and byte count a handler wrote
// so the access log and metrics can report them.
type statusRecorder struct {
	http.ResponseWriter
	status int
	bytes  int
}

func (r *statusRecorder) WriteHeader(code int) {
	if r.status == 0 {
		r.status = code
	}
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(b []byte) (int, error) {
	if r.status == 0 {
		r.status = http.StatusOK
	}
	n, err := r.ResponseWriter.Write(b)
	r.bytes += n
	return n, err
}

// instrument wraps the handler tree with panic recovery, the in-flight
// gauge, the latency histogram, per-(path, code) counters, and a
// structured access log line per request.
func (s *Server) instrument(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rec := &statusRecorder{ResponseWriter: w}
		start := time.Now()
		s.met.requestStarted()
		defer func() {
			if p := recover(); p != nil {
				s.log.Error("panic serving request",
					"path", r.URL.Path, "panic", p, "stack", string(debug.Stack()))
				if rec.status == 0 {
					s.writeJSON(rec, http.StatusInternalServerError,
						errorResponse{Error: "internal error"})
				}
			}
			elapsed := time.Since(start)
			if rec.status == 0 {
				// Handler wrote nothing; net/http will send 200.
				rec.status = http.StatusOK
			}
			s.met.requestDone(r.URL.Path, rec.status, elapsed.Seconds())
			s.log.Info("request",
				"method", r.Method,
				"path", r.URL.Path,
				"status", rec.status,
				"duration_ms", float64(elapsed.Microseconds())/1000,
				"bytes", rec.bytes,
				"remote", r.RemoteAddr,
			)
		}()
		next.ServeHTTP(rec, r)
	})
}
