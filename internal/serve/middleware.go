package serve

import (
	"net/http"
	"runtime/debug"

	"swcc/internal/obs"
)

// statusRecorder captures the status code and byte count a handler wrote
// so the access log and metrics can report them.
type statusRecorder struct {
	http.ResponseWriter
	status int
	bytes  int
}

// WriteHeader records the first status code a handler sets.
func (r *statusRecorder) WriteHeader(code int) {
	if r.status == 0 {
		r.status = code
	}
	r.ResponseWriter.WriteHeader(code)
}

// Write counts response bytes, defaulting the status to 200 the way
// net/http does when a handler writes without calling WriteHeader.
func (r *statusRecorder) Write(b []byte) (int, error) {
	if r.status == 0 {
		r.status = http.StatusOK
	}
	n, err := r.ResponseWriter.Write(b)
	r.bytes += n
	return n, err
}

// Flush forwards to the underlying writer so streaming handlers (the
// job-results NDJSON stream) can push batches through the recorder.
func (r *statusRecorder) Flush() {
	if f, ok := r.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// Unwrap exposes the underlying writer to http.ResponseController, so
// streaming handlers can extend their write deadline through the
// recorder (the daemon's WriteTimeout would otherwise cut long result
// streams at a fixed point after the request started).
func (r *statusRecorder) Unwrap() http.ResponseWriter { return r.ResponseWriter }

// traceHeader is the request/response header carrying the trace ID.
const traceHeader = "X-Request-ID"

// instrument wraps the handler tree with trace-ID assignment, panic
// recovery, the in-flight gauge, the latency histograms, per-(path,
// code) counters, and a structured access log line per request.
//
// Trace semantics: a syntactically valid client X-Request-ID (see
// obs.ValidTraceID) is adopted as-is; a missing or invalid one is
// replaced with a generated ID. Either way the ID is set on the
// X-Request-ID response header before the handler runs, stamped on the
// access log line, and attached to the request context so it follows
// the work into internal/sweep.
func (s *Server) instrument(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		trace := r.Header.Get(traceHeader)
		if !obs.ValidTraceID(trace) {
			trace = obs.NewTraceID()
		}
		w.Header().Set(traceHeader, trace)
		r = r.WithContext(obs.WithTraceID(r.Context(), trace))

		rec := &statusRecorder{ResponseWriter: w}
		sp := obs.Start()
		s.met.requestStarted()
		defer func() {
			if p := recover(); p != nil {
				s.log.Error("panic serving request",
					"path", r.URL.Path, "trace", trace,
					"panic", p, "stack", string(debug.Stack()))
				if rec.status == 0 {
					s.writeJSON(rec, http.StatusInternalServerError,
						errorResponse{Error: "internal error"})
				}
			}
			elapsed := sp.Elapsed()
			if rec.status == 0 {
				// Handler wrote nothing; net/http will send 200.
				rec.status = http.StatusOK
			}
			s.met.requestDone(r.URL.Path, rec.status, elapsed.Seconds())
			s.log.Info("request",
				"method", r.Method,
				"path", r.URL.Path,
				"status", rec.status,
				"duration_ms", float64(elapsed.Microseconds())/1000,
				"bytes", rec.bytes,
				"remote", r.RemoteAddr,
				"trace", trace,
			)
		}()
		next.ServeHTTP(rec, r)
	})
}
