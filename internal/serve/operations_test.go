package serve

import (
	"bytes"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"
)

// readOperationsMD loads the operator reference from the repo root.
func readOperationsMD(t *testing.T) string {
	t.Helper()
	data, err := os.ReadFile("../../OPERATIONS.md")
	if err != nil {
		t.Fatalf("reading OPERATIONS.md: %v", err)
	}
	return string(data)
}

// TestOperationsDocCoversAllMetrics is the golden drift test keeping
// OPERATIONS.md synchronized with /metrics, in both directions: every
// family the daemon emits must be documented (backtick-quoted) in the
// doc, and every swcc_* series the doc names must still be emitted. Add
// a metric or retire one, and this test forces the matching doc edit.
func TestOperationsDocCoversAllMetrics(t *testing.T) {
	doc := readOperationsMD(t)
	documented := map[string]bool{}
	for _, m := range regexp.MustCompile("`(swcc_[a-z_]+)`").FindAllStringSubmatch(doc, -1) {
		// swcc_gw_* families belong to the gateway's /metrics page, not
		// the daemon's; internal/gw's own drift test covers them.
		if strings.HasPrefix(m[1], "swcc_gw_") {
			continue
		}
		documented[m[1]] = true
	}
	if len(documented) == 0 {
		t.Fatal("no swcc_* series found in OPERATIONS.md — parser or doc broken")
	}

	s, ts := newTestServer(t, Config{})
	// Touch an endpoint so per-path counter series exist too.
	post(t, ts, "/v1/bus", `{"scheme": "dragon", "procs": 4}`)
	var buf bytes.Buffer
	s.met.write(&buf, s.ev, s.cfg.Fault, s.jobs)

	emitted := map[string]bool{}
	for _, m := range regexp.MustCompile(`(?m)^# TYPE (swcc_[a-z_]+) `).FindAllStringSubmatch(buf.String(), -1) {
		emitted[m[1]] = true
	}
	if len(emitted) == 0 {
		t.Fatal("no # TYPE lines in scrape — exposition format broken")
	}

	var missing, stale []string
	for name := range emitted {
		if !documented[name] {
			missing = append(missing, name)
		}
	}
	for name := range documented {
		if !emitted[name] {
			stale = append(stale, name)
		}
	}
	sort.Strings(missing)
	sort.Strings(stale)
	if len(missing) > 0 {
		t.Errorf("emitted but not documented in OPERATIONS.md: %v", missing)
	}
	if len(stale) > 0 {
		t.Errorf("documented in OPERATIONS.md but no longer emitted: %v", stale)
	}
}

// TestOperationsDocBucketLayoutCurrent pins the documented bucket list
// to the compiled latencyBuckets, so retuning the layout forces the doc
// update.
func TestOperationsDocBucketLayoutCurrent(t *testing.T) {
	doc := readOperationsMD(t)
	parts := make([]string, 0, len(latencyBuckets)+1)
	for _, b := range latencyBuckets {
		parts = append(parts, strconv.FormatFloat(b, 'g', -1, 64))
	}
	parts = append(parts, "+Inf")
	want := strings.Join(parts, " ")
	if !strings.Contains(doc, want) {
		t.Errorf("OPERATIONS.md bucket layout out of date; code has:\n%s", want)
	}
}

// TestOperationsDocStageLabels pins the documented stage label values to
// the compiled stageNames list, both directions.
func TestOperationsDocStageLabels(t *testing.T) {
	doc := readOperationsMD(t)
	// Stages are documented as backtick-quoted list items under the
	// stage-label section.
	for _, st := range stageNames {
		if !strings.Contains(doc, "`"+st+"`") {
			t.Errorf("stage %q not documented in OPERATIONS.md", st)
		}
	}
	m := regexp.MustCompile(`takes exactly (\w+) values`).FindStringSubmatch(doc)
	if m == nil {
		t.Fatal("OPERATIONS.md no longer states the stage-label count")
	}
	words := map[string]int{"two": 2, "three": 3, "four": 4, "five": 5, "six": 6}
	if words[m[1]] != len(stageNames) {
		t.Errorf("OPERATIONS.md says %q stage values, code has %d", m[1], len(stageNames))
	}
}
