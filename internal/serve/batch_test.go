package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestSweepGolden pins the batch contract: each results[i] of a
// /v1/sweep response must be byte-identical to the /v1/bus response for
// the same point posted on its own (against a fresh server, so neither
// side benefits from the other's cache).
func TestSweepGolden(t *testing.T) {
	points := []string{
		`{"scheme": "dragon", "params": {"shd": 0.4}, "procs": 8}`,
		`{"scheme": "swflush", "procs": 16, "point": true}`,
		`{"scheme": "hybrid", "lockfrac": 0.5, "level": "high", "procs": 4}`,
		`{"scheme": "base"}`,
		`{"scheme": "dragon", "params": {"shd": 0.4}, "procs": 8}`, // duplicate of [0]
	}
	_, batchSrv := newTestServer(t, Config{})
	code, body := post(t, batchSrv, "/v1/sweep",
		`{"points": [`+strings.Join(points, ",")+`]}`)
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	var resp struct {
		Count   int               `json:"count"`
		Results []json.RawMessage `json:"results"`
	}
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Count != len(points) || len(resp.Results) != len(points) {
		t.Fatalf("count=%d results=%d, want %d", resp.Count, len(resp.Results), len(points))
	}
	_, refSrv := newTestServer(t, Config{})
	for i, p := range points {
		refCode, refBody := post(t, refSrv, "/v1/bus", p)
		if refCode != http.StatusOK {
			t.Fatalf("reference point %d: status %d: %s", i, refCode, refBody)
		}
		want := strings.TrimSuffix(string(refBody), "\n")
		if string(resp.Results[i]) != want {
			t.Errorf("results[%d] not bit-identical to /v1/bus:\n got: %s\nwant: %s",
				i, resp.Results[i], want)
		}
	}
}

// TestSweepGroupedCurvesGolden targets the batch-aware solve path: many
// points sharing one (scheme, workload) at different machine sizes, fed
// population-descending, mixing full curves and single points. Each
// result must stay byte-identical to its standalone /v1/bus response —
// the grouped incremental solver may not perturb a single output byte.
func TestSweepGroupedCurvesGolden(t *testing.T) {
	points := []string{
		`{"scheme": "dragon", "procs": 64}`,
		`{"scheme": "dragon", "procs": 8}`,
		`{"scheme": "dragon", "procs": 32, "point": true}`,
		`{"scheme": "dragon", "procs": 8}`, // duplicate
		`{"scheme": "dragon", "procs": 128}`,
		`{"scheme": "base", "procs": 16}`,
	}
	_, batchSrv := newTestServer(t, Config{})
	code, body := post(t, batchSrv, "/v1/sweep",
		`{"points": [`+strings.Join(points, ",")+`]}`)
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	var resp struct {
		Count   int               `json:"count"`
		Results []json.RawMessage `json:"results"`
	}
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Count != len(points) {
		t.Fatalf("count = %d, want %d", resp.Count, len(points))
	}
	_, refSrv := newTestServer(t, Config{})
	for i, p := range points {
		refCode, refBody := post(t, refSrv, "/v1/bus", p)
		if refCode != http.StatusOK {
			t.Fatalf("reference point %d: status %d: %s", i, refCode, refBody)
		}
		want := strings.TrimSuffix(string(refBody), "\n")
		if string(resp.Results[i]) != want {
			t.Errorf("results[%d] diverged from /v1/bus:\n got: %s\nwant: %s",
				i, resp.Results[i], want)
		}
	}
}

// TestSweepValidation sweeps the batch endpoint's rejection boundary:
// malformed batches are 400s, and per-point failures name the offending
// index so the client knows which grid cell to fix.
func TestSweepValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxBatchPoints: 3})
	cases := []struct {
		name, body, wantInError string
	}{
		{"empty body", ``, ""},
		{"missing points", `{}`, "non-empty"},
		{"empty points", `{"points": []}`, "non-empty"},
		{"unknown envelope field", `{"points": [{"scheme": "base"}], "procs": 8}`, ""},
		{"over batch cap", `{"points": [{"scheme": "base"}, {"scheme": "base"},
			{"scheme": "base"}, {"scheme": "base"}]}`, "cap"},
		{"unknown scheme at index", `{"points": [{"scheme": "base"}, {"scheme": "firefly"}]}`,
			"points[1]"},
		{"bad param at index", `{"points": [{"scheme": "base", "params": {"shd": 1.5}}]}`,
			"points[0]"},
		{"bad procs at index", `{"points": [{"scheme": "base"}, {"scheme": "base"},
			{"scheme": "base", "procs": -2}]}`, "points[2]"},
		{"unknown point field", `{"points": [{"scheme": "base", "prox": 8}]}`, ""},
	}
	for _, c := range cases {
		code, body := post(t, ts, "/v1/sweep", c.body)
		if code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (body: %s)", c.name, code, body)
			continue
		}
		var er errorResponse
		if err := json.Unmarshal(body, &er); err != nil || er.Error == "" {
			t.Errorf("%s: non-JSON error body %q", c.name, body)
			continue
		}
		if c.wantInError != "" && !strings.Contains(er.Error, c.wantInError) {
			t.Errorf("%s: error %q does not mention %q", c.name, er.Error, c.wantInError)
		}
	}
}

// TestSweepMetrics checks the concurrency-era metric series: a batch
// with duplicate cells drives the request counter for /v1/sweep, the
// shard gauges account for every cache entry, and a capped server under
// key pressure exports a nonzero eviction counter.
func TestSweepMetrics(t *testing.T) {
	_, ts := newTestServer(t, Config{CacheCap: 64})
	var points []string
	for i := 0; i < 40; i++ {
		points = append(points,
			fmt.Sprintf(`{"scheme": "dragon", "params": {"shd": %g}, "procs": 4, "point": true}`,
				0.02+0.9*float64(i)/40))
	}
	// Duplicate the whole grid so the second half hits (or dedups
	// against) the first half's entries.
	body := `{"points": [` + strings.Join(append(points, points...), ",") + `]}`
	if code, resp := post(t, ts, "/v1/sweep", body); code != http.StatusOK {
		t.Fatalf("status %d: %s", code, resp)
	}
	// Churn distinct keys through the bounded cache until it must evict.
	for round := 0; round < 4; round++ {
		var churn []string
		for i := 0; i < 40; i++ {
			churn = append(churn,
				fmt.Sprintf(`{"scheme": "swflush", "params": {"oclean": %g}, "procs": 4, "point": true}`,
					0.002+0.99*float64(round*40+i)/160))
		}
		if code, resp := post(t, ts, "/v1/sweep",
			`{"points": [`+strings.Join(churn, ",")+`]}`); code != http.StatusOK {
			t.Fatalf("churn round %d: status %d: %s", round, code, resp)
		}
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	text := string(data)

	if !strings.Contains(text, `swcc_http_requests_total{path="/v1/sweep",code="200"} 5`) {
		t.Errorf("missing /v1/sweep request counter:\n%s", text)
	}
	if shards := metricValue(t, text, "swcc_cache_shards"); shards < 2 {
		t.Errorf("swcc_cache_shards = %v, want a sharded cache", shards)
	}
	for _, name := range []string{
		`swcc_singleflight_dedups_total{cache="demand"}`,
		`swcc_singleflight_dedups_total{cache="mva"}`,
		`swcc_cache_evictions_total{cache="mva"}`,
		`swcc_cache_shard_entries{cache="demand",shard="0"}`,
		`swcc_cache_shard_entries{cache="mva",shard="0"}`,
	} {
		if !strings.Contains(text, name) {
			t.Errorf("metrics missing series %s", name)
		}
	}
	if ev := labeledMetric(t, text, `swcc_cache_evictions_total{cache="demand"}`); ev == 0 {
		t.Errorf("capped cache under key pressure exported zero demand evictions")
	}
	// The per-shard gauges must sum to the aggregate entry gauges.
	for _, cache := range []string{"demand", "mva"} {
		total := labeledMetric(t, text, fmt.Sprintf(`swcc_cache_entries{cache=%q}`, cache))
		var sum float64
		for i := 0; ; i++ {
			line := fmt.Sprintf(`swcc_cache_shard_entries{cache=%q,shard="%d"}`, cache, i)
			if !strings.Contains(text, line+" ") {
				break
			}
			sum += labeledMetric(t, text, line)
		}
		if sum != total {
			t.Errorf("%s shard gauges sum to %v, aggregate says %v", cache, sum, total)
		}
	}
}

// labeledMetric extracts one labeled metric value from Prometheus text.
func labeledMetric(t *testing.T, text, series string) float64 {
	t.Helper()
	for _, line := range strings.Split(text, "\n") {
		if rest, ok := strings.CutPrefix(line, series+" "); ok {
			var v float64
			if _, err := fmt.Sscanf(rest, "%g", &v); err != nil {
				t.Fatalf("parsing %s: %v", line, err)
			}
			return v
		}
	}
	t.Fatalf("series %s not found in:\n%s", series, text)
	return 0
}

// benchBatchBody builds one /v1/sweep body plus the equivalent list of
// /v1/bus bodies over a (scheme x shd) grid of single-point queries.
func benchBatchBody(n int) (string, []string) {
	schemes := []string{"base", "dragon", "swflush", "nocache"}
	var points []string
	for i := 0; i < n; i++ {
		points = append(points,
			fmt.Sprintf(`{"scheme": %q, "params": {"shd": %g}, "procs": 32, "point": true}`,
				schemes[i%len(schemes)], 0.02+0.9*float64(i/len(schemes))/float64(n)))
	}
	return `{"points": [` + strings.Join(points, ",") + `]}`, points
}

// BenchmarkServeBatch compares one 64-point /v1/sweep round trip
// against the 64 sequential /v1/bus calls it replaces, on a shared
// warmed server — the client-visible payoff of the batch endpoint.
func BenchmarkServeBatch(b *testing.B) {
	const gridPoints = 64
	batch, points := benchBatchBody(gridPoints)
	run := func(b *testing.B, ts *httptest.Server, bodies []string, path string) {
		b.Helper()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, body := range bodies {
				resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(body))
				if err != nil {
					b.Fatal(err)
				}
				if _, err := io.Copy(io.Discard, resp.Body); err != nil {
					b.Fatal(err)
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					b.Fatalf("%s: status %d", path, resp.StatusCode)
				}
			}
		}
		b.ReportMetric(float64(gridPoints), "points")
	}
	quiet := Config{Logger: slog.New(slog.NewJSONHandler(io.Discard, nil))}
	b.Run("batch", func(b *testing.B) {
		ts := httptest.NewServer(NewServer(quiet).Handler())
		defer ts.Close()
		run(b, ts, []string{batch}, "/v1/sweep")
	})
	b.Run("sequential", func(b *testing.B) {
		ts := httptest.NewServer(NewServer(quiet).Handler())
		defer ts.Close()
		run(b, ts, points, "/v1/bus")
	})
}
