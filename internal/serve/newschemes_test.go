package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"testing"

	"swcc/internal/core"
)

// TestNewSchemesReachableEverywhere drives each post-registry scheme —
// Write-Invalidate, Hybrid-Update, and the priority-bus discipline —
// through every public surface the acceptance criteria name: /v1/bus,
// /v1/sweep, an async job, and the advisor. Each /v1/bus answer must be
// bit-identical to the direct library call, so the serving path adds no
// seam for extension schemes.
func TestNewSchemesReachableEverywhere(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cases := []struct {
		wire   string
		scheme core.Scheme
		label  string
	}{
		{"winv", core.WriteInvalidate{}, "Write-Invalidate"},
		{"hybrid-update", core.HybridUpdate{UpdateFrac: 0.5}, "Hybrid-Update(update=0.50)"},
		{"swflush-prio", core.PriorityBus{Inner: core.SoftwareFlush{}}, "Software-Flush+Prio"},
	}

	for _, tc := range cases {
		t.Run(tc.wire+"/bus", func(t *testing.T) {
			code, body := post(t, ts, "/v1/bus",
				fmt.Sprintf(`{"scheme": %q, "params": {"shd": 0.4}, "procs": 8}`, tc.wire))
			if code != http.StatusOK {
				t.Fatalf("status %d: %s", code, body)
			}
			var resp busResponse
			if err := json.Unmarshal(body, &resp); err != nil {
				t.Fatal(err)
			}
			if resp.Scheme != tc.label {
				t.Errorf("scheme label = %q, want %q", resp.Scheme, tc.label)
			}
			p, err := core.MiddleParams().With("shd", 0.4)
			if err != nil {
				t.Fatal(err)
			}
			want, err := core.EvaluateBus(tc.scheme, p, core.BusCosts(), 8)
			if err != nil {
				t.Fatal(err)
			}
			for i := range want {
				if resp.Points[i] != want[i] {
					t.Fatalf("point %d differs from direct library call:\n got %+v\nwant %+v",
						i+1, resp.Points[i], want[i])
				}
			}
		})

		t.Run(tc.wire+"/sweep", func(t *testing.T) {
			code, body := post(t, ts, "/v1/sweep", fmt.Sprintf(
				`{"points": [{"scheme": %q, "procs": 4, "point": true}, {"scheme": %q, "params": {"shd": 0.7}, "procs": 4, "point": true}]}`,
				tc.wire, tc.wire))
			if code != http.StatusOK {
				t.Fatalf("status %d: %s", code, body)
			}
			var resp sweepResponse
			if err := json.Unmarshal(body, &resp); err != nil {
				t.Fatal(err)
			}
			if resp.Count != 2 {
				t.Fatalf("count = %d, want 2", resp.Count)
			}
			for i, r := range resp.Results {
				if r.Scheme != tc.label {
					t.Errorf("result %d label = %q, want %q", i, r.Scheme, tc.label)
				}
			}
		})

		t.Run(tc.wire+"/job", func(t *testing.T) {
			sub := submitJob(t, ts, fmt.Sprintf(
				`{"schemes": [%q], "axis": "shd", "from": 0.2, "to": 0.6, "steps": 3, "procs": 4}`, tc.wire))
			st := waitState(t, ts, sub.ID, "done")
			if st.PointsOK != 3 || st.PointsErr != 0 {
				t.Fatalf("job points ok/err = %d/%d, want 3/0", st.PointsOK, st.PointsErr)
			}
			stream := streamResults(t, ts, sub.ID, 0)
			if len(stream.rows) != 3 {
				t.Fatalf("streamed %d rows, want 3", len(stream.rows))
			}
		})
	}

	t.Run("advisor", func(t *testing.T) {
		// Default candidate set: every Advise-marked registration shows up.
		code, body := post(t, ts, "/v1/advisor", `{"level": "mid", "procs": 16}`)
		if code != http.StatusOK {
			t.Fatalf("status %d: %s", code, body)
		}
		var resp advisorResponse
		if err := json.Unmarshal(body, &resp); err != nil {
			t.Fatal(err)
		}
		ranked := map[string]bool{}
		for _, r := range resp.Rankings {
			ranked[r.Scheme] = true
		}
		// Knobbed schemes rank under their configured label, e.g.
		// "Hybrid-Update(update=0.50)".
		for _, want := range []string{"Write-Invalidate", "Hybrid-Update(update=0.50)", "Software-Flush+Prio"} {
			if !ranked[want] {
				t.Errorf("default advisor ranking missing %s (got %v)", want, resp.Rankings)
			}
		}
		// Explicit list with a knob override.
		code, body = post(t, ts, "/v1/advisor",
			`{"schemes": ["swflush", "hybrid-update"], "updatefrac": 0.9, "procs": 16}`)
		if code != http.StatusOK {
			t.Fatalf("explicit list status %d: %s", code, body)
		}
	})
}

// TestNewSchemesDistinctResponses: on one fixed workload the three new
// schemes (and their paper siblings) must all answer differently —
// distinct canonical cache identities mean no scheme can alias into
// another's memoized results.
func TestNewSchemesDistinctResponses(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	schemes := []string{"base", "dragon", "swflush", "nocache", "directory", "hybrid",
		"winv", "hybrid-update", "swflush-prio"}
	seenPower := map[float64]string{}
	seenLabel := map[string]string{}
	for _, name := range schemes {
		code, body := post(t, ts, "/v1/bus",
			fmt.Sprintf(`{"scheme": %q, "params": {"shd": 0.5}, "procs": 16, "point": true}`, name))
		if code != http.StatusOK {
			t.Fatalf("%s: status %d: %s", name, code, body)
		}
		var resp busResponse
		if err := json.Unmarshal(body, &resp); err != nil {
			t.Fatal(err)
		}
		if prev, ok := seenLabel[resp.Scheme]; ok {
			t.Errorf("%s and %s share response label %q", prev, name, resp.Scheme)
		}
		seenLabel[resp.Scheme] = name
		pw := resp.Points[0].Power
		if prev, ok := seenPower[pw]; ok {
			t.Errorf("%s and %s predict identical power %g at shd=0.5/16 procs", prev, name, pw)
		}
		seenPower[pw] = name
	}
}

// TestKnobValidation pins the knob plumbing: updatefrac only applies to
// hybrid-update, lockfrac only to hybrid, the two are mutually
// exclusive, and out-of-range values are rejected.
func TestKnobValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for _, tc := range []struct {
		name, body string
		wantCode   int
	}{
		{"updatefrac on hybrid-update", `{"scheme": "hybrid-update", "updatefrac": 0.8, "procs": 4}`, http.StatusOK},
		{"updatefrac changes the answer", `{"scheme": "hybrid-update", "updatefrac": 0.1, "procs": 4}`, http.StatusOK},
		{"updatefrac on swflush", `{"scheme": "swflush", "updatefrac": 0.8, "procs": 4}`, http.StatusBadRequest},
		{"lockfrac on hybrid-update", `{"scheme": "hybrid-update", "lockfrac": 0.5, "procs": 4}`, http.StatusBadRequest},
		{"both knobs", `{"scheme": "hybrid", "lockfrac": 0.5, "updatefrac": 0.5, "procs": 4}`, http.StatusBadRequest},
		{"updatefrac out of range", `{"scheme": "hybrid-update", "updatefrac": 1.5, "procs": 4}`, http.StatusBadRequest},
		{"lockfrac still works", `{"scheme": "hybrid", "lockfrac": 0.6, "procs": 4}`, http.StatusOK},
	} {
		code, body := post(t, ts, "/v1/bus", tc.body)
		if code != tc.wantCode {
			t.Errorf("%s: status %d, want %d (%s)", tc.name, code, tc.wantCode, body)
		}
	}

	// The knob must actually steer the model: different updatefrac,
	// different power.
	get := func(body string) float64 {
		t.Helper()
		code, data := post(t, ts, "/v1/bus", body)
		if code != http.StatusOK {
			t.Fatalf("status %d: %s", code, data)
		}
		var resp busResponse
		if err := json.Unmarshal(data, &resp); err != nil {
			t.Fatal(err)
		}
		return resp.Points[len(resp.Points)-1].Power
	}
	hot := get(`{"scheme": "hybrid-update", "updatefrac": 0.9, "params": {"shd": 0.5}, "procs": 16}`)
	cold := get(`{"scheme": "hybrid-update", "updatefrac": 0.1, "params": {"shd": 0.5}, "procs": 16}`)
	if hot == cold {
		t.Errorf("updatefrac has no effect: power %g either way", hot)
	}
}
