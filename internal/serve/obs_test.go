package serve

import (
	"bytes"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"sync"
	"testing"

	"swcc/internal/obs"
)

// TestTraceIDEchoedWhenSupplied pins the trace contract's client half: a
// valid X-Request-ID comes back verbatim on the response.
func TestTraceIDEchoedWhenSupplied(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	req, err := http.NewRequest("POST", ts.URL+"/v1/bus",
		strings.NewReader(`{"scheme": "dragon", "procs": 4}`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(traceHeader, "client-trace.42")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if got := resp.Header.Get(traceHeader); got != "client-trace.42" {
		t.Errorf("X-Request-ID = %q, want the client's ID echoed back", got)
	}
}

// TestTraceIDGeneratedWhenMissingOrInvalid pins the server half: no ID,
// or one that fails validation, yields a generated well-formed ID.
func TestTraceIDGeneratedWhenMissingOrInvalid(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for _, supplied := range []string{"", "has spaces", strings.Repeat("x", 65)} {
		req, err := http.NewRequest("GET", ts.URL+"/healthz", nil)
		if err != nil {
			t.Fatal(err)
		}
		if supplied != "" {
			req.Header.Set(traceHeader, supplied)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		got := resp.Header.Get(traceHeader)
		if got == supplied {
			t.Errorf("invalid ID %q was echoed instead of replaced", supplied)
		}
		if !obs.ValidTraceID(got) {
			t.Errorf("generated ID %q is not itself valid", got)
		}
	}
}

// TestTraceIDOnAccessLogAndCacheEvents checks the correlation promise:
// with debug logging on, the access log line and the evaluator's cache
// event lines for one request all carry the request's trace ID.
func TestTraceIDOnAccessLogAndCacheEvents(t *testing.T) {
	var buf bytes.Buffer
	var mu syncWriter
	mu.w = &buf
	logger := slog.New(slog.NewJSONHandler(&mu, &slog.HandlerOptions{Level: slog.LevelDebug}))
	_, ts := newTestServer(t, Config{Logger: logger})

	req, err := http.NewRequest("POST", ts.URL+"/v1/bus",
		strings.NewReader(`{"scheme": "dragon", "procs": 4}`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(traceHeader, "trace-log-correlation")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}

	mu.mu.Lock()
	logs := buf.String()
	mu.mu.Unlock()
	var access, events int
	for _, line := range strings.Split(logs, "\n") {
		if !strings.Contains(line, `"trace-log-correlation"`) {
			continue
		}
		switch {
		case strings.Contains(line, `"msg":"request"`):
			access++
		case strings.Contains(line, `"msg":"cache event"`):
			events++
		}
	}
	if access != 1 {
		t.Errorf("want 1 access log line carrying the trace ID, got %d\n%s", access, logs)
	}
	// A cold /v1/bus query misses both the demand and the MVA cache.
	if events < 2 {
		t.Errorf("want >= 2 cache event lines carrying the trace ID, got %d\n%s", events, logs)
	}
}

// TestMetricsByteStable pins the exposition-stability guarantee: two
// scrapes of a quiesced server render byte-identical output.
func TestMetricsByteStable(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	// Populate several (path, code) series so the sort actually matters.
	post(t, ts, "/v1/bus", `{"scheme": "dragon", "procs": 4}`)
	post(t, ts, "/v1/bus", `{"bad json`)
	post(t, ts, "/v1/network", `{"scheme": "base", "stages": 3}`)
	post(t, ts, "/nowhere", `{}`)

	var a, b bytes.Buffer
	s.met.write(&a, s.ev, s.cfg.Fault, s.jobs)
	s.met.write(&b, s.ev, s.cfg.Fault, s.jobs)
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Errorf("identical scrapes differ:\n--- first\n%s\n--- second\n%s", a.String(), b.String())
	}
}

// TestMetricsExposeStageAndEndpointHistograms checks the new families
// exist, are well formed, and actually accumulated the traffic: the
// per-endpoint count for /v1/bus matches the requests sent, and every
// documented stage recorded at least one observation after a cold and a
// warm solve.
func TestMetricsExposeStageAndEndpointHistograms(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	post(t, ts, "/v1/bus", `{"scheme": "dragon", "procs": 4}`)
	post(t, ts, "/v1/bus", `{"scheme": "dragon", "procs": 4}`)

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)

	busCount := regexp.MustCompile(
		`swcc_http_endpoint_duration_seconds_count\{path="/v1/bus"\} (\d+)`).FindStringSubmatch(text)
	if busCount == nil || busCount[1] != "2" {
		t.Errorf("per-endpoint count for /v1/bus = %v, want 2", busCount)
	}
	for _, stage := range []string{"validate", "cache_lookup", "solve"} {
		re := regexp.MustCompile(
			`swcc_stage_duration_seconds_count\{stage="` + stage + `"\} ([1-9]\d*)`)
		if !re.MatchString(text) {
			t.Errorf("stage %q recorded no observations:\n%s", stage, grepMetrics(text, "swcc_stage"))
		}
	}
	// Bucket well-formedness: +Inf bucket equals the count for the
	// aggregate family.
	inf := regexp.MustCompile(
		`swcc_http_request_duration_seconds_bucket\{le="\+Inf"\} (\d+)`).FindStringSubmatch(text)
	cnt := regexp.MustCompile(
		`swcc_http_request_duration_seconds_count (\d+)`).FindStringSubmatch(text)
	if inf == nil || cnt == nil || inf[1] != cnt[1] {
		t.Errorf("+Inf bucket %v != histogram count %v", inf, cnt)
	}
}

// TestSingleflightWaitStageRecorded drives concurrent identical cold
// queries so at least one goroutine joins an in-flight solve, and checks
// the singleflight_wait stage series saw it.
func TestSingleflightWaitStageRecorded(t *testing.T) {
	release := make(chan struct{})
	s := NewServer(Config{Logger: slog.New(slog.NewJSONHandler(io.Discard, nil))})
	s.beforeSolve = func() { <-release }
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	const callers = 4
	done := make(chan struct{}, callers)
	for i := 0; i < callers; i++ {
		go func() {
			defer func() { done <- struct{}{} }()
			resp, err := http.Post(ts.URL+"/v1/bus", "application/json",
				strings.NewReader(`{"scheme": "sw", "procs": 8, "point": true}`))
			if err == nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}()
	}
	close(release)
	for i := 0; i < callers; i++ {
		<-done
	}

	var buf bytes.Buffer
	s.met.write(&buf, s.ev, s.cfg.Fault, s.jobs)
	text := buf.String()
	m := regexp.MustCompile(
		`swcc_stage_duration_seconds_count\{stage="singleflight_wait"\} (\d+)`).FindStringSubmatch(text)
	if m == nil {
		t.Fatalf("singleflight_wait series missing:\n%s", grepMetrics(text, "swcc_stage"))
	}
	st := s.ev.Stats()
	if st.DemandDedups > 0 && m[1] == "0" {
		t.Errorf("evaluator reports %d dedups but singleflight_wait count is 0", st.DemandDedups)
	}
}

// grepMetrics returns only the lines of a scrape containing substr, for
// readable failure output.
func grepMetrics(text, substr string) string {
	var out []string
	for _, line := range strings.Split(text, "\n") {
		if strings.Contains(line, substr) {
			out = append(out, line)
		}
	}
	return strings.Join(out, "\n")
}

// syncWriter serializes writes from handler goroutines into one buffer.
type syncWriter struct {
	mu sync.Mutex
	w  io.Writer
}

func (s *syncWriter) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.w.Write(p)
}
