package serve

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"

	"swcc/internal/sweep"
)

// latencyBuckets are the histogram upper bounds in seconds. Model solves
// are sub-millisecond when cached, so the low end is fine-grained; the
// top buckets catch limiter waits and big sensitivity grids.
var latencyBuckets = []float64{
	.0005, .001, .0025, .005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10,
}

// metrics is the server's hand-rolled metric registry: request counters
// by (path, code), an in-flight gauge, and one latency histogram. It
// renders Prometheus text format directly — no dependencies, stable
// output ordering.
type metrics struct {
	mu       sync.Mutex
	requests map[[2]string]uint64 // {path, code} -> count
	inFlight int
	buckets  []uint64 // cumulative-at-render counts per latencyBuckets entry
	sum      float64  // total observed seconds
	count    uint64   // total observations
}

func newMetrics() *metrics {
	return &metrics{
		requests: map[[2]string]uint64{},
		buckets:  make([]uint64, len(latencyBuckets)),
	}
}

// knownPaths caps label cardinality: anything unrouted counts as "other".
var knownPaths = map[string]bool{
	"/healthz": true, "/metrics": true,
	"/v1/bus": true, "/v1/network": true,
	"/v1/advisor": true, "/v1/sensitivity": true,
}

func metricPath(path string) string {
	if knownPaths[path] {
		return path
	}
	return "other"
}

func (m *metrics) requestStarted() {
	m.mu.Lock()
	m.inFlight++
	m.mu.Unlock()
}

func (m *metrics) requestDone(path string, code int, seconds float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.inFlight--
	m.requests[[2]string{metricPath(path), strconv.Itoa(code)}]++
	for i, ub := range latencyBuckets {
		if seconds <= ub {
			m.buckets[i]++
		}
	}
	m.sum += seconds
	m.count++
}

// write renders the registry plus the evaluator's cache counters in
// Prometheus text exposition format.
func (m *metrics) write(w io.Writer, st sweep.Stats) {
	m.mu.Lock()
	defer m.mu.Unlock()

	counter := func(name, help string, v uint64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	counter("swcc_demand_solves_total", "ComputeDemand evaluations (cache misses).", st.DemandSolves)
	counter("swcc_demand_cache_hits_total", "Demand queries served from the memo.", st.DemandHits)
	counter("swcc_mva_solves_total", "SingleServerMVA recursions (cache misses).", st.MVASolves)
	counter("swcc_mva_cache_hits_total", "MVA curve queries served from the memo.", st.MVAHits)

	fmt.Fprintf(w, "# HELP swcc_cache_entries Current entries per evaluator cache.\n# TYPE swcc_cache_entries gauge\n")
	fmt.Fprintf(w, "swcc_cache_entries{cache=\"demand\"} %d\n", st.DemandEntries)
	fmt.Fprintf(w, "swcc_cache_entries{cache=\"mva\"} %d\n", st.CurveEntries)
	fmt.Fprintf(w, "swcc_cache_entries{cache=\"table\"} %d\n", st.TableEntries)

	fmt.Fprintf(w, "# HELP swcc_http_requests_total Completed requests by path and status code.\n# TYPE swcc_http_requests_total counter\n")
	keys := make([][2]string, 0, len(m.requests))
	for k := range m.requests {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	for _, k := range keys {
		fmt.Fprintf(w, "swcc_http_requests_total{path=%q,code=%q} %d\n", k[0], k[1], m.requests[k])
	}

	fmt.Fprintf(w, "# HELP swcc_http_in_flight Requests currently being served.\n# TYPE swcc_http_in_flight gauge\nswcc_http_in_flight %d\n", m.inFlight)

	fmt.Fprintf(w, "# HELP swcc_http_request_duration_seconds Request latency.\n# TYPE swcc_http_request_duration_seconds histogram\n")
	for i, ub := range latencyBuckets {
		fmt.Fprintf(w, "swcc_http_request_duration_seconds_bucket{le=%q} %d\n",
			strconv.FormatFloat(ub, 'g', -1, 64), m.buckets[i])
	}
	fmt.Fprintf(w, "swcc_http_request_duration_seconds_bucket{le=\"+Inf\"} %d\n", m.count)
	fmt.Fprintf(w, "swcc_http_request_duration_seconds_sum %g\n", m.sum)
	fmt.Fprintf(w, "swcc_http_request_duration_seconds_count %d\n", m.count)
}
