package serve

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"

	"swcc/internal/sweep"
)

// latencyBuckets are the histogram upper bounds in seconds. Model solves
// are sub-millisecond when cached, so the low end is fine-grained; the
// top buckets catch limiter waits and big sensitivity grids.
var latencyBuckets = []float64{
	.0005, .001, .0025, .005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10,
}

// metrics is the server's hand-rolled metric registry: request counters
// by (path, code), an in-flight gauge, and one latency histogram. It
// renders Prometheus text format directly — no dependencies, stable
// output ordering.
//
// The hot counters (in-flight gauge, per-(path, code) requests) are
// atomics so concurrent request completions never serialize on a
// registry mutex; only the latency histogram keeps a lock, because one
// observation updates every bucket at or above it plus the sum/count
// pair, which must stay mutually consistent.
type metrics struct {
	requests sync.Map // [2]string{path, code} -> *atomic.Uint64
	inFlight atomic.Int64

	histMu  sync.Mutex
	buckets []uint64 // cumulative-at-render counts per latencyBuckets entry
	sum     float64  // total observed seconds
	count   uint64   // total observations
}

func newMetrics() *metrics {
	return &metrics{
		buckets: make([]uint64, len(latencyBuckets)),
	}
}

// knownPaths caps label cardinality: anything unrouted counts as "other".
var knownPaths = map[string]bool{
	"/healthz": true, "/metrics": true,
	"/v1/bus": true, "/v1/network": true,
	"/v1/advisor": true, "/v1/sensitivity": true,
	"/v1/sweep": true,
}

func metricPath(path string) string {
	if knownPaths[path] {
		return path
	}
	return "other"
}

func (m *metrics) requestStarted() {
	m.inFlight.Add(1)
}

func (m *metrics) requestDone(path string, code int, seconds float64) {
	m.inFlight.Add(-1)
	key := [2]string{metricPath(path), strconv.Itoa(code)}
	c, ok := m.requests.Load(key)
	if !ok {
		c, _ = m.requests.LoadOrStore(key, new(atomic.Uint64))
	}
	c.(*atomic.Uint64).Add(1)

	m.histMu.Lock()
	for i, ub := range latencyBuckets {
		if seconds <= ub {
			m.buckets[i]++
		}
	}
	m.sum += seconds
	m.count++
	m.histMu.Unlock()
}

// write renders the registry plus the evaluator's cache counters, the
// singleflight/eviction series, and the per-shard size gauges in
// Prometheus text exposition format.
func (m *metrics) write(w io.Writer, ev *sweep.Evaluator) {
	st := ev.Stats()

	counter := func(name, help string, v uint64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	counter("swcc_demand_solves_total", "ComputeDemand evaluations (cache misses).", st.DemandSolves)
	counter("swcc_demand_cache_hits_total", "Demand queries served from the memo.", st.DemandHits)
	counter("swcc_mva_solves_total", "SingleServerMVA recursions (cache misses).", st.MVASolves)
	counter("swcc_mva_cache_hits_total", "MVA curve queries served from the memo.", st.MVAHits)

	fmt.Fprintf(w, "# HELP swcc_cache_entries Current entries per evaluator cache.\n# TYPE swcc_cache_entries gauge\n")
	fmt.Fprintf(w, "swcc_cache_entries{cache=\"demand\"} %d\n", st.DemandEntries)
	fmt.Fprintf(w, "swcc_cache_entries{cache=\"mva\"} %d\n", st.CurveEntries)
	fmt.Fprintf(w, "swcc_cache_entries{cache=\"table\"} %d\n", st.TableEntries)

	fmt.Fprintf(w, "# HELP swcc_singleflight_dedups_total Concurrent misses served by another goroutine's in-flight solve.\n# TYPE swcc_singleflight_dedups_total counter\n")
	fmt.Fprintf(w, "swcc_singleflight_dedups_total{cache=\"demand\"} %d\n", st.DemandDedups)
	fmt.Fprintf(w, "swcc_singleflight_dedups_total{cache=\"mva\"} %d\n", st.MVADedups)

	fmt.Fprintf(w, "# HELP swcc_cache_evictions_total Entries dropped by the bounded-capacity CLOCK policy.\n# TYPE swcc_cache_evictions_total counter\n")
	fmt.Fprintf(w, "swcc_cache_evictions_total{cache=\"demand\"} %d\n", st.DemandEvictions)
	fmt.Fprintf(w, "swcc_cache_evictions_total{cache=\"mva\"} %d\n", st.CurveEvictions)

	fmt.Fprintf(w, "# HELP swcc_cache_shards Lock-striped shards per evaluator cache.\n# TYPE swcc_cache_shards gauge\nswcc_cache_shards %d\n", st.Shards)
	demandShards, curveShards := ev.ShardSizes()
	fmt.Fprintf(w, "# HELP swcc_cache_shard_entries Current entries per cache shard.\n# TYPE swcc_cache_shard_entries gauge\n")
	for i, n := range demandShards {
		fmt.Fprintf(w, "swcc_cache_shard_entries{cache=\"demand\",shard=\"%d\"} %d\n", i, n)
	}
	for i, n := range curveShards {
		fmt.Fprintf(w, "swcc_cache_shard_entries{cache=\"mva\",shard=\"%d\"} %d\n", i, n)
	}

	fmt.Fprintf(w, "# HELP swcc_http_requests_total Completed requests by path and status code.\n# TYPE swcc_http_requests_total counter\n")
	type reqCount struct {
		key [2]string
		n   uint64
	}
	var reqs []reqCount
	m.requests.Range(func(k, v any) bool {
		reqs = append(reqs, reqCount{k.([2]string), v.(*atomic.Uint64).Load()})
		return true
	})
	sort.Slice(reqs, func(i, j int) bool {
		if reqs[i].key[0] != reqs[j].key[0] {
			return reqs[i].key[0] < reqs[j].key[0]
		}
		return reqs[i].key[1] < reqs[j].key[1]
	})
	for _, r := range reqs {
		fmt.Fprintf(w, "swcc_http_requests_total{path=%q,code=%q} %d\n", r.key[0], r.key[1], r.n)
	}

	fmt.Fprintf(w, "# HELP swcc_http_in_flight Requests currently being served.\n# TYPE swcc_http_in_flight gauge\nswcc_http_in_flight %d\n", m.inFlight.Load())

	m.histMu.Lock()
	defer m.histMu.Unlock()
	fmt.Fprintf(w, "# HELP swcc_http_request_duration_seconds Request latency.\n# TYPE swcc_http_request_duration_seconds histogram\n")
	for i, ub := range latencyBuckets {
		fmt.Fprintf(w, "swcc_http_request_duration_seconds_bucket{le=%q} %d\n",
			strconv.FormatFloat(ub, 'g', -1, 64), m.buckets[i])
	}
	fmt.Fprintf(w, "swcc_http_request_duration_seconds_bucket{le=\"+Inf\"} %d\n", m.count)
	fmt.Fprintf(w, "swcc_http_request_duration_seconds_sum %g\n", m.sum)
	fmt.Fprintf(w, "swcc_http_request_duration_seconds_count %d\n", m.count)
}
