package serve

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"swcc/internal/fault"
	"swcc/internal/jobs"
	"swcc/internal/obs"
	"swcc/internal/sweep"
)

// latencyBuckets are the histogram upper bounds in seconds, log-spaced.
// Model solves are sub-millisecond when cached, so the low end is
// fine-grained; the top buckets catch limiter waits and big sensitivity
// grids. Every histogram family (aggregate, per-endpoint, per-stage)
// shares this layout so distributions are comparable across series.
var latencyBuckets = []float64{
	.0005, .001, .0025, .005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10,
}

// stageValidate is the serving layer's own pipeline stage: decoding and
// validating the request body before any model work. The remaining
// stages (cache lookup, singleflight wait, cold solve) are reported by
// the evaluator via sweep.Observer.
const stageValidate = "validate"

// stageNames is every value of the swcc_stage_duration_seconds stage
// label, in render order. Fixed at construction so stage recording is a
// lock-free map read and /metrics output is byte-stable.
var stageNames = []string{
	stageValidate, sweep.StageCacheLookup, sweep.StageDedupWait, sweep.StageSolve,
}

// metrics is the server's hand-rolled metric registry: request counters
// by (path, code), an in-flight gauge, and latency histograms
// (aggregate, per endpoint, per pipeline stage). It renders Prometheus
// text format directly — no dependencies, byte-stable output ordering.
//
// Everything on the hot path is lock-free: the gauge and per-(path,
// code) counters are atomics, and the histograms are obs.Histogram
// (one atomic add per observation). Rendering takes no lock either — a
// scrape is a point-in-time snapshot that may be approximately
// consistent under concurrent traffic (see internal/obs), which is the
// deliberate trade for never serializing request completions on a
// registry mutex (DESIGN.md §9).
type metrics struct {
	requests sync.Map // [2]string{path, code} -> *atomic.Uint64
	inFlight atomic.Int64

	// Overload accounting: solveInFlight counts solves holding a limiter
	// slot, queueDepth counts admitted requests waiting for one, sheds
	// counts requests rejected by admission control before body decode,
	// and cancels counts requests abandoned by their client (context
	// cancelled while queued or mid-solve).
	solveInFlight atomic.Int64
	queueDepth    atomic.Int64
	sheds         atomic.Uint64
	cancels       atomic.Uint64

	latency *obs.Histogram            // all requests, any path
	byPath  map[string]*obs.Histogram // per known endpoint (+ "other"); read-only after construction
	byStage map[string]*obs.Histogram // per pipeline stage; read-only after construction
	paths   []string                  // sorted byPath keys, the render order
}

func newMetrics() *metrics {
	m := &metrics{
		latency: obs.NewHistogram(latencyBuckets),
		byPath:  map[string]*obs.Histogram{},
		byStage: map[string]*obs.Histogram{},
	}
	for p := range knownPaths {
		m.byPath[p] = obs.NewHistogram(latencyBuckets)
	}
	m.byPath[pathOther] = obs.NewHistogram(latencyBuckets)
	for p := range m.byPath {
		m.paths = append(m.paths, p)
	}
	sort.Strings(m.paths)
	for _, st := range stageNames {
		m.byStage[st] = obs.NewHistogram(latencyBuckets)
	}
	return m
}

// pathOther is the label value capping endpoint cardinality: anything
// unrouted counts here instead of minting a series per probed URL.
const pathOther = "other"

// knownPaths caps label cardinality: anything unrouted counts as "other".
var knownPaths = map[string]bool{
	"/healthz": true, "/readyz": true, "/metrics": true,
	"/v1/bus": true, "/v1/network": true,
	"/v1/advisor": true, "/v1/sensitivity": true,
	"/v1/sweep": true, "/v1/jobs": true,
}

func metricPath(path string) string {
	// Job URLs carry per-job IDs; collapse the whole subtree into one
	// label value instead of minting a series per job.
	if path == "/v1/jobs" || strings.HasPrefix(path, "/v1/jobs/") {
		return "/v1/jobs"
	}
	if knownPaths[path] {
		return path
	}
	return pathOther
}

func (m *metrics) requestStarted() {
	m.inFlight.Add(1)
}

func (m *metrics) requestDone(path string, code int, seconds float64) {
	m.inFlight.Add(-1)
	p := metricPath(path)
	key := [2]string{p, strconv.Itoa(code)}
	c, ok := m.requests.Load(key)
	if !ok {
		c, _ = m.requests.LoadOrStore(key, new(atomic.Uint64))
	}
	c.(*atomic.Uint64).Add(1)
	m.latency.Observe(seconds)
	m.byPath[p].Observe(seconds)
}

// observeStage records one pipeline-stage duration. Unknown stage names
// are dropped rather than minting series, keeping the stage label set
// exactly what OPERATIONS.md documents.
func (m *metrics) observeStage(stage string, seconds float64) {
	if h := m.byStage[stage]; h != nil {
		h.Observe(seconds)
	}
}

// writeHistogram renders one histogram family member in Prometheus text
// form. labels is either empty or a `key="value",` prefix placed before
// the le label.
func writeHistogram(w io.Writer, name, labels string, s obs.Snapshot) {
	for i, ub := range s.Bounds {
		fmt.Fprintf(w, "%s_bucket{%sle=%q} %d\n",
			name, labels, strconv.FormatFloat(ub, 'g', -1, 64), s.Cumulative[i])
	}
	fmt.Fprintf(w, "%s_bucket{%sle=\"+Inf\"} %d\n", name, labels, s.Count)
	fmt.Fprintf(w, "%s_sum%s %g\n", name, bracketed(labels), s.Sum)
	fmt.Fprintf(w, "%s_count%s %d\n", name, bracketed(labels), s.Count)
}

// bracketed wraps a non-empty `key="value",` label prefix into the
// `{key="value"}` form used on _sum/_count series.
func bracketed(labels string) string {
	if labels == "" {
		return ""
	}
	return "{" + labels[:len(labels)-1] + "}"
}

// write renders the registry plus the evaluator's cache counters, the
// singleflight/eviction series, the per-shard size gauges, and the
// overload/fault series in Prometheus text exposition format. The
// output is byte-stable: families render in a fixed order and every
// labeled family's series are sorted, so two scrapes of an idle server
// are byte-identical (the golden doc-drift and stability tests depend
// on this). inj may be nil (no fault injection configured) and reg may
// be nil (no job registry); their families still render, at zero, so
// dashboards need no conditionals.
func (m *metrics) write(w io.Writer, ev *sweep.Evaluator, inj *fault.Injector, reg *jobs.Registry) {
	st := ev.Stats()

	counter := func(name, help string, v uint64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	counter("swcc_demand_solves_total", "ComputeDemand evaluations (cache misses).", st.DemandSolves)
	counter("swcc_demand_cache_hits_total", "Demand queries served from the memo.", st.DemandHits)
	counter("swcc_mva_solves_total", "SingleServerMVA recursions (cache misses).", st.MVASolves)
	counter("swcc_mva_cache_hits_total", "MVA curve queries served from the memo.", st.MVAHits)
	counter("swcc_curve_extends_total", "MVA solves resumed from a cached shorter curve.", st.CurveExtends)
	counter("swcc_curve_full_solves_total", "MVA solves started cold from population 1.", st.CurveFullSolves)

	fmt.Fprintf(w, "# HELP swcc_cache_entries Current entries per evaluator cache.\n# TYPE swcc_cache_entries gauge\n")
	fmt.Fprintf(w, "swcc_cache_entries{cache=\"demand\"} %d\n", st.DemandEntries)
	fmt.Fprintf(w, "swcc_cache_entries{cache=\"mva\"} %d\n", st.CurveEntries)
	fmt.Fprintf(w, "swcc_cache_entries{cache=\"table\"} %d\n", st.TableEntries)

	fmt.Fprintf(w, "# HELP swcc_singleflight_dedups_total Concurrent misses served by another goroutine's in-flight solve.\n# TYPE swcc_singleflight_dedups_total counter\n")
	fmt.Fprintf(w, "swcc_singleflight_dedups_total{cache=\"demand\"} %d\n", st.DemandDedups)
	fmt.Fprintf(w, "swcc_singleflight_dedups_total{cache=\"mva\"} %d\n", st.MVADedups)

	fmt.Fprintf(w, "# HELP swcc_cache_evictions_total Entries dropped by the bounded-capacity CLOCK policy.\n# TYPE swcc_cache_evictions_total counter\n")
	fmt.Fprintf(w, "swcc_cache_evictions_total{cache=\"demand\"} %d\n", st.DemandEvictions)
	fmt.Fprintf(w, "swcc_cache_evictions_total{cache=\"mva\"} %d\n", st.CurveEvictions)

	fmt.Fprintf(w, "# HELP swcc_cache_shards Lock-striped shards per evaluator cache.\n# TYPE swcc_cache_shards gauge\nswcc_cache_shards %d\n", st.Shards)
	demandShards, curveShards := ev.ShardSizes()
	fmt.Fprintf(w, "# HELP swcc_cache_shard_entries Current entries per cache shard.\n# TYPE swcc_cache_shard_entries gauge\n")
	for i, n := range demandShards {
		fmt.Fprintf(w, "swcc_cache_shard_entries{cache=\"demand\",shard=\"%d\"} %d\n", i, n)
	}
	for i, n := range curveShards {
		fmt.Fprintf(w, "swcc_cache_shard_entries{cache=\"mva\",shard=\"%d\"} %d\n", i, n)
	}

	fmt.Fprintf(w, "# HELP swcc_http_requests_total Completed requests by path and status code.\n# TYPE swcc_http_requests_total counter\n")
	type reqCount struct {
		key [2]string
		n   uint64
	}
	var reqs []reqCount
	m.requests.Range(func(k, v any) bool {
		reqs = append(reqs, reqCount{k.([2]string), v.(*atomic.Uint64).Load()})
		return true
	})
	// sync.Map iteration order is nondeterministic; sorting here is what
	// keeps scrapes byte-stable.
	sort.Slice(reqs, func(i, j int) bool {
		if reqs[i].key[0] != reqs[j].key[0] {
			return reqs[i].key[0] < reqs[j].key[0]
		}
		return reqs[i].key[1] < reqs[j].key[1]
	})
	for _, r := range reqs {
		fmt.Fprintf(w, "swcc_http_requests_total{path=%q,code=%q} %d\n", r.key[0], r.key[1], r.n)
	}

	fmt.Fprintf(w, "# HELP swcc_http_in_flight Requests currently being served.\n# TYPE swcc_http_in_flight gauge\nswcc_http_in_flight %d\n", m.inFlight.Load())

	fmt.Fprintf(w, "# HELP swcc_solve_in_flight Model solves currently holding a concurrency-limiter slot.\n# TYPE swcc_solve_in_flight gauge\nswcc_solve_in_flight %d\n", m.solveInFlight.Load())
	fmt.Fprintf(w, "# HELP swcc_solve_queue_depth Admitted requests currently waiting for a concurrency-limiter slot.\n# TYPE swcc_solve_queue_depth gauge\nswcc_solve_queue_depth %d\n", m.queueDepth.Load())
	fmt.Fprintf(w, "# HELP swcc_http_sheds_total Requests rejected 503 by admission control before body decode (queue full).\n# TYPE swcc_http_sheds_total counter\nswcc_http_sheds_total %d\n", m.sheds.Load())
	fmt.Fprintf(w, "# HELP swcc_http_cancels_total Requests abandoned by their client while queued or mid-solve.\n# TYPE swcc_http_cancels_total counter\nswcc_http_cancels_total %d\n", m.cancels.Load())

	lat, errs, panics := inj.Counts()
	fmt.Fprintf(w, "# HELP swcc_fault_injections_total Faults fired by the configured injector (always 0 without -fault-* flags).\n# TYPE swcc_fault_injections_total counter\n")
	fmt.Fprintf(w, "swcc_fault_injections_total{kind=\"error\"} %d\n", errs)
	fmt.Fprintf(w, "swcc_fault_injections_total{kind=\"latency\"} %d\n", lat)
	fmt.Fprintf(w, "swcc_fault_injections_total{kind=\"panic\"} %d\n", panics)

	var jobsActive int
	var jobPointsOK, jobPointsErr uint64
	if reg != nil {
		jobsActive = reg.Active()
		jobPointsOK, jobPointsErr = reg.PointTotals()
	}
	fmt.Fprintf(w, "# HELP swcc_jobs_active Async sweep jobs currently pending or running.\n# TYPE swcc_jobs_active gauge\nswcc_jobs_active %d\n", jobsActive)
	fmt.Fprintf(w, "# HELP swcc_job_points_total Async sweep-job grid points by outcome, all jobs ever run.\n# TYPE swcc_job_points_total counter\n")
	fmt.Fprintf(w, "swcc_job_points_total{state=\"error\"} %d\n", jobPointsErr)
	fmt.Fprintf(w, "swcc_job_points_total{state=\"ok\"} %d\n", jobPointsOK)

	fmt.Fprintf(w, "# HELP swcc_http_request_duration_seconds Request latency.\n# TYPE swcc_http_request_duration_seconds histogram\n")
	writeHistogram(w, "swcc_http_request_duration_seconds", "", m.latency.Snapshot())

	fmt.Fprintf(w, "# HELP swcc_http_endpoint_duration_seconds Request latency by endpoint.\n# TYPE swcc_http_endpoint_duration_seconds histogram\n")
	for _, p := range m.paths {
		writeHistogram(w, "swcc_http_endpoint_duration_seconds",
			fmt.Sprintf("path=%q,", p), m.byPath[p].Snapshot())
	}

	fmt.Fprintf(w, "# HELP swcc_stage_duration_seconds Wall time per request pipeline stage (validate, cache_lookup, singleflight_wait, solve).\n# TYPE swcc_stage_duration_seconds histogram\n")
	for _, st := range stageNames {
		writeHistogram(w, "swcc_stage_duration_seconds",
			fmt.Sprintf("stage=%q,", st), m.byStage[st].Snapshot())
	}
}
