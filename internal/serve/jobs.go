package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"time"

	"swcc/internal/core"
	"swcc/internal/jobs"
	"swcc/internal/sweep"
)

// --- /v1/jobs ---
//
// Async sweep jobs decouple big grids from the request/response cycle:
// POST /v1/jobs/sweep registers the work and returns immediately with a
// job ID; the job solves in the background (bounded by its own solver
// semaphore, not the interactive limiter) and spools encoded result
// rows; GET /v1/jobs/{id}/results streams them back as NDJSON in
// completion order, resumable by cursor after a dropped connection.
// The spool is bounded: a reader that falls behind blocks the producer
// (back-pressure) instead of buffering a 100k-point grid in memory.

// jobSubmitRequest describes one async sweep compactly — a cross
// product of schemes x axis values x machine sizes, or an adaptive
// crossover refinement — instead of enumerating every point the way
// /v1/sweep does (the body cap makes huge explicit grids impossible).
type jobSubmitRequest struct {
	// Mode is "grid" (default) or "refine".
	Mode  string `json:"mode,omitempty"`
	Label string `json:"label,omitempty"`
	// Schemes names the competing schemes (refine needs at least two).
	Schemes  []string `json:"schemes"`
	LockFrac *float64 `json:"lockfrac,omitempty"`
	// UpdateFrac tunes the hybrid-update scheme's update share.
	UpdateFrac *float64 `json:"updatefrac,omitempty"`
	// Level / Params set the base workload, as in /v1/bus.
	Level  string          `json:"level,omitempty"`
	Params json.RawMessage `json:"params,omitempty"`
	// Axis sweeps one workload parameter: grid mode takes Steps linear
	// values over [From, To]; refine mode subdivides adaptively (and also
	// accepts "procs" for the machine-size axis).
	Axis  string  `json:"axis,omitempty"`
	From  float64 `json:"from,omitempty"`
	To    float64 `json:"to,omitempty"`
	Steps int     `json:"steps,omitempty"`
	// Procs fixes the machine size (default 16). Grid mode can sweep
	// sizes instead with ProcsFrom..ProcsTo, inclusive.
	Procs     int `json:"procs,omitempty"`
	ProcsFrom int `json:"procs_from,omitempty"`
	ProcsTo   int `json:"procs_to,omitempty"`
	// Coarse and MinStep tune refine mode (see sweep.RefineSpec).
	Coarse  int     `json:"coarse,omitempty"`
	MinStep float64 `json:"min_step,omitempty"`
}

type jobSubmitResponse struct {
	ID string `json:"id"`
	// Points is the grid size for grid mode, or the worst-case cell
	// bound for refine mode.
	Points     int    `json:"points"`
	StatusURL  string `json:"status_url"`
	ResultsURL string `json:"results_url"`
}

// jobStatusJSON is one job's status snapshot on the wire.
type jobStatusJSON struct {
	ID          string  `json:"id"`
	Label       string  `json:"label,omitempty"`
	State       string  `json:"state"`
	Error       string  `json:"error,omitempty"`
	PointsOK    uint64  `json:"points_ok"`
	PointsErr   uint64  `json:"points_err"`
	SpooledRows int     `json:"spooled_rows"`
	HighWater   int     `json:"high_water"`
	NextSeq     uint64  `json:"next_seq"`
	AckedSeq    uint64  `json:"acked_seq"`
	AgeSeconds  float64 `json:"age_seconds"`
}

func statusJSON(s jobs.Snapshot) jobStatusJSON {
	return jobStatusJSON{
		ID: s.ID, Label: s.Label, State: string(s.State), Error: s.Err,
		PointsOK: s.PointsOK, PointsErr: s.PointsErr,
		SpooledRows: s.SpooledRows, HighWater: s.HighWater,
		NextSeq: s.NextSeq, AckedSeq: s.AckedSeq,
		AgeSeconds: time.Since(s.Created).Seconds(),
	}
}

// jobRowJSON is one grid-mode result line: a (scheme, axis value,
// machine size) cell with its model point, or the error that cell hit
// (injected faults and recovered panics land here — a failing cell is
// data, not a job failure).
type jobRowJSON struct {
	Scheme string         `json:"scheme"`
	X      *float64       `json:"x,omitempty"`
	Procs  int            `json:"procs"`
	Point  *core.BusPoint `json:"point,omitempty"`
	Error  string         `json:"error,omitempty"`
}

// refineRowJSON is one refine-mode result line: an evaluated axis value
// with every scheme's power, tagged with the wave that evaluated it.
type refineRowJSON struct {
	Wave  int       `json:"wave"`
	X     float64   `json:"x"`
	Power []float64 `json:"power"`
	Best  string    `json:"best"`
}

// refineBoundaryJSON reports one located crossover at the end of a
// refine job's stream.
type refineBoundaryJSON struct {
	Boundary struct {
		Lo     float64 `json:"lo"`
		Hi     float64 `json:"hi"`
		LoBest string  `json:"lo_best"`
		HiBest string  `json:"hi_best"`
	} `json:"boundary"`
}

// seqMarkerJSON follows each streamed batch: the cursor value a client
// passes back as ?after= to resume past that batch.
type seqMarkerJSON struct {
	Seq uint64 `json:"seq"`
}

// jobTrailerJSON is the stream's final line.
type jobTrailerJSON struct {
	Done      bool   `json:"done"`
	State     string `json:"state"`
	Error     string `json:"error,omitempty"`
	PointsOK  uint64 `json:"points_ok"`
	PointsErr uint64 `json:"points_err"`
}

// jobBatchRows is how many grid cells one spool batch carries: big
// enough to amortize encoding and flushing, small enough that
// back-pressure engages well before the spool cap.
const jobBatchRows = 512

// jobWriteWindow is how long a results stream may go without delivering
// a batch before its connection's write deadline fires.
const jobWriteWindow = 30 * time.Second

// handleJobSubmit validates the spec, registers the job, and returns
// its ID immediately; the grid solves in the background.
func (s *Server) handleJobSubmit(ctx context.Context, body []byte) (any, error) {
	var req jobSubmitRequest
	if err := decodeStrict(body, &req); err != nil {
		return nil, err
	}
	if len(req.Schemes) == 0 {
		return nil, badRequest(`"schemes" must be a non-empty array`)
	}
	schemes := make([]core.Scheme, 0, len(req.Schemes))
	for _, name := range req.Schemes {
		lf, uf := knobArgs(name, req.LockFrac, req.UpdateFrac)
		sch, err := resolveScheme(name, lf, uf)
		if err != nil {
			return nil, err
		}
		schemes = append(schemes, sch)
	}
	base, err := resolveParams(req.Level, req.Params)
	if err != nil {
		return nil, err
	}

	var run jobs.Runner
	var points int
	switch req.Mode {
	case "", "grid":
		run, points, err = s.gridJob(req, schemes, base)
	case "refine":
		run, points, err = s.refineJob(req, schemes, base)
	default:
		err = badRequest("unknown mode %q (want grid or refine)", req.Mode)
	}
	if err != nil {
		return nil, err
	}
	if points > s.cfg.MaxJobPoints {
		return nil, badRequest("job of %d points exceeds the %d-point cap", points, s.cfg.MaxJobPoints)
	}
	j, err := s.jobs.Submit(req.Label, run)
	if err != nil {
		return nil, err
	}
	s.log.Info("job submitted", "job", j.ID(), "label", req.Label, "mode", req.Mode, "points", points)
	return jobSubmitResponse{
		ID: j.ID(), Points: points,
		StatusURL:  "/v1/jobs/" + j.ID(),
		ResultsURL: "/v1/jobs/" + j.ID() + "/results",
	}, nil
}

// gridJob validates a grid spec and builds its runner. The grid is
// schemes x axis values x machine sizes; every cell is its own
// fault-injection site and failure domain.
func (s *Server) gridJob(req jobSubmitRequest, schemes []core.Scheme, base core.Params) (jobs.Runner, int, error) {
	xs := []float64{math.NaN()} // NaN = no axis: the base workload as-is
	if req.Axis != "" {
		if req.Axis == sweep.AxisProcs {
			return nil, 0, badRequest(`grid mode sweeps machine sizes with "procs_from"/"procs_to", not axis "procs"`)
		}
		if _, err := core.FieldByName(req.Axis); err != nil {
			return nil, 0, badRequest("%v", err)
		}
		if !(req.From < req.To) {
			return nil, 0, badRequest(`axis range [%g, %g] is empty (need "from" < "to")`, req.From, req.To)
		}
		if req.Steps < 2 {
			return nil, 0, badRequest(`"steps" must be >= 2 with an axis`)
		}
		xs = make([]float64, req.Steps)
		for i := range xs {
			xs[i] = req.From + (req.To-req.From)*float64(i)/float64(req.Steps-1)
		}
	} else if req.Steps != 0 || req.From != 0 || req.To != 0 {
		return nil, 0, badRequest(`"from"/"to"/"steps" need an "axis"`)
	}

	p1, p2 := req.ProcsFrom, req.ProcsTo
	switch {
	case p1 == 0 && p2 == 0:
		procs, err := s.checkProcs(req.Procs)
		if err != nil {
			return nil, 0, err
		}
		p1, p2 = procs, procs
	case req.Procs != 0:
		return nil, 0, badRequest(`"procs" and "procs_from"/"procs_to" are mutually exclusive`)
	default:
		if p1 == 0 {
			p1 = 1
		}
		if p2 == 0 {
			p2 = p1
		}
		if p1 < 1 || p2 < p1 || p2 > s.cfg.MaxProcs {
			return nil, 0, badRequest("procs range [%d, %d] not within [1, %d]", p1, p2, s.cfg.MaxProcs)
		}
	}
	points := len(schemes) * len(xs) * (p2 - p1 + 1)
	costs := core.BusCosts()

	run := func(ctx context.Context, j *jobs.Job) error {
		for _, sch := range schemes {
			for _, x := range xs {
				p := base
				var xp *float64
				if !math.IsNaN(x) {
					var err error
					if p, err = base.With(req.Axis, x); err != nil {
						return err
					}
					v := x
					xp = &v
				}
				if err := s.runGridCurve(ctx, j, sch, p, xp, costs, p1, p2); err != nil {
					return err
				}
			}
		}
		return nil
	}
	return run, points, nil
}

// runGridCurve solves one (scheme, workload) slice of a grid job over
// machine sizes p1..p2, in spool-batch chunks. Machine sizes ascend, so
// each point extends the same CurveRun incrementally; the chunk's
// points stage in a pooled buffer that is released once the rows are
// encoded. The solver semaphore is held only while solving — never
// across Push, which may block on a slow reader.
func (s *Server) runGridCurve(ctx context.Context, j *jobs.Job, sch core.Scheme, p core.Params, x *float64, costs *core.CostTable, p1, p2 int) error {
	label := schemeLabel(sch)
	var run *sweep.CurveRun
	defer func() {
		if run != nil {
			run.Finish(ctx)
		}
	}()
	for lo := p1; lo <= p2; lo += jobBatchRows {
		hi := lo + jobBatchRows - 1
		if hi > p2 {
			hi = p2
		}
		select {
		case s.jobSem <- struct{}{}:
		case <-ctx.Done():
			return ctx.Err()
		}
		rows, ok, errs, err := s.solveGridChunk(ctx, &run, sch, p, x, label, costs, lo, hi)
		<-s.jobSem
		if err != nil {
			return err
		}
		j.AddPoints(ok, errs)
		if err := j.Spool().Push(rows); err != nil {
			return err
		}
	}
	return nil
}

// solveGridChunk answers machine sizes lo..hi into encoded rows. Every
// cell is independently fault-injected and panic-recovered: a failing
// cell becomes an error row and the chunk carries on, exactly like a
// /v1/sweep cell. Only a done context aborts the job.
func (s *Server) solveGridChunk(ctx context.Context, run **sweep.CurveRun, sch core.Scheme, p core.Params, x *float64, label string, costs *core.CostTable, lo, hi int) (rows [][]byte, ok, errs uint64, err error) {
	buf := sweep.AcquirePoints(hi - lo + 1)
	defer sweep.ReleasePoints(buf)
	rows = make([][]byte, 0, hi-lo+1)
	for n := lo; n <= hi; n++ {
		if err := ctx.Err(); err != nil {
			return nil, 0, 0, err
		}
		row := jobRowJSON{Scheme: label, X: x, Procs: n}
		pt, perr := s.solveJobPoint(ctx, run, sch, p, costs, n)
		if perr != nil {
			if ctx.Err() != nil {
				return nil, 0, 0, ctx.Err()
			}
			row.Error = perr.Error()
			errs++
		} else {
			(*buf)[n-lo] = pt
			row.Point = &(*buf)[n-lo]
			ok++
		}
		line, merr := json.Marshal(row)
		if merr != nil {
			return nil, 0, 0, merr
		}
		rows = append(rows, line)
	}
	return rows, ok, errs, nil
}

// solveJobPoint is one grid cell: fault injection, then one incremental
// curve point, with a panic (injected or model) recovered into the
// cell's error.
func (s *Server) solveJobPoint(ctx context.Context, run **sweep.CurveRun, sch core.Scheme, p core.Params, costs *core.CostTable, n int) (pt core.BusPoint, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("serve: internal error: %v", r)
		}
	}()
	if err := s.cfg.Fault.Point(ctx); err != nil {
		return core.BusPoint{}, err
	}
	if *run == nil {
		r, err := s.ev.StartCurveRun(ctx, sch, p, costs)
		if err != nil {
			return core.BusPoint{}, err
		}
		*run = r
	}
	return (*run).BusPointAt(ctx, n)
}

// refineJob validates a refine spec and builds its runner: an adaptive
// crossover search whose waves stream out as they complete, ending with
// the located boundaries.
func (s *Server) refineJob(req jobSubmitRequest, schemes []core.Scheme, base core.Params) (jobs.Runner, int, error) {
	if len(schemes) < 2 {
		return nil, 0, badRequest("refine mode needs at least two schemes")
	}
	axis := req.Axis
	if axis == "" {
		axis = sweep.AxisProcs
	}
	procs := 16
	if req.Procs != 0 {
		var err error
		if procs, err = s.checkProcs(req.Procs); err != nil {
			return nil, 0, err
		}
	}
	if req.ProcsFrom != 0 || req.ProcsTo != 0 {
		return nil, 0, badRequest(`refine mode uses axis "procs", not "procs_from"/"procs_to"`)
	}
	spec := sweep.RefineSpec{
		Schemes: schemes, Base: base, Axis: axis,
		From: req.From, To: req.To, Procs: procs,
		Coarse: req.Coarse, MinStep: req.MinStep,
	}
	// Validate now — at submission — rather than failing the job later:
	// Refine checks its spec before solving anything, so running it under
	// an already-cancelled context surfaces exactly the validation errors.
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := (&sweep.Engine{}).Refine(cancelled, spec); err != nil && !errors.Is(err, context.Canceled) {
		return nil, 0, badRequest("%v", err)
	}
	// Worst case is the full dyadic lattice: every coarse interval
	// subdivided to MinStep (procs axis: to adjacent integers).
	bound := worstCaseRefineCells(spec) * len(schemes)

	run := func(ctx context.Context, j *jobs.Job) error {
		select {
		case s.jobSem <- struct{}{}:
		case <-ctx.Done():
			return ctx.Err()
		}
		defer func() { <-s.jobSem }()
		eng := &sweep.Engine{Workers: 2, Cache: s.ev}
		wave := 0
		spec.OnWave = func(ctx context.Context, pts []sweep.RefinePoint) error {
			wave++
			rows := make([][]byte, 0, len(pts))
			for _, pt := range pts {
				line, err := json.Marshal(refineRowJSON{
					Wave: wave, X: pt.X, Power: pt.Power,
					Best: schemeLabel(schemes[pt.Best]),
				})
				if err != nil {
					return err
				}
				rows = append(rows, line)
			}
			j.AddPoints(uint64(len(pts))*uint64(len(schemes)), 0)
			return j.Spool().Push(rows)
		}
		res, err := eng.Refine(ctx, spec)
		if err != nil {
			return err
		}
		rows := make([][]byte, 0, len(res.Boundaries))
		for _, b := range res.Boundaries {
			var row refineBoundaryJSON
			row.Boundary.Lo, row.Boundary.Hi = b.Lo, b.Hi
			row.Boundary.LoBest = schemeLabel(schemes[b.LoBest])
			row.Boundary.HiBest = schemeLabel(schemes[b.HiBest])
			line, err := json.Marshal(row)
			if err != nil {
				return err
			}
			rows = append(rows, line)
		}
		return j.Spool().Push(rows)
	}
	return run, bound, nil
}

// worstCaseRefineCells bounds the axis values a refine could evaluate
// if every interval subdivided all the way down.
func worstCaseRefineCells(spec sweep.RefineSpec) int {
	span := spec.To - spec.From
	if span <= 0 {
		return 1
	}
	if spec.Axis == sweep.AxisProcs {
		return int(span) + 1
	}
	minStep := spec.MinStep
	if minStep <= 0 {
		minStep = span / 1024
	}
	cells := span / minStep
	if cells > 1<<30 {
		return 1 << 30
	}
	return int(math.Ceil(cells)) + 1
}

// --- GET /v1/jobs, GET /v1/jobs/{id}, DELETE /v1/jobs/{id} ---

func (s *Server) handleJobList(w http.ResponseWriter, _ *http.Request) {
	snaps := s.jobs.Snapshots()
	out := struct {
		Jobs []jobStatusJSON `json:"jobs"`
	}{Jobs: make([]jobStatusJSON, 0, len(snaps))}
	for _, sn := range snaps {
		out.Jobs = append(out.Jobs, statusJSON(sn))
	}
	s.writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleJobStatus(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobs.Get(r.PathValue("id"))
	if !ok {
		s.writeError(w, &httpError{code: http.StatusNotFound, msg: "no such job"})
		return
	}
	s.writeJSON(w, http.StatusOK, statusJSON(j.Snapshot()))
}

func (s *Server) handleJobDelete(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if !s.jobs.Delete(id) {
		s.writeError(w, &httpError{code: http.StatusNotFound, msg: "no such job"})
		return
	}
	s.log.Info("job deleted", "job", id)
	s.writeJSON(w, http.StatusOK, struct {
		ID      string `json:"id"`
		Deleted bool   `json:"deleted"`
	}{ID: id, Deleted: true})
}

// --- GET /v1/jobs/{id}/results ---

// handleJobResults streams the job's result rows as NDJSON from the
// ?after= cursor: rows in batch order, a {"seq":N} marker after each
// batch (the cursor to resume from), and a {"done":true,...} trailer
// once the job is terminal and drained. Reading with a cursor
// acknowledges everything at or before it, freeing spool memory;
// rewinding past freed rows is 410 Gone.
func (s *Server) handleJobResults(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobs.Get(r.PathValue("id"))
	if !ok {
		s.writeError(w, &httpError{code: http.StatusNotFound, msg: "no such job"})
		return
	}
	cursor := uint64(0)
	if a := r.URL.Query().Get("after"); a != "" {
		v, err := strconv.ParseUint(a, 10, 64)
		if err != nil {
			s.writeError(w, badRequest("bad ?after= cursor %q: %v", a, err))
			return
		}
		cursor = v
	}
	flusher, _ := w.(http.Flusher)
	// A rolling write deadline: each delivered batch buys the stream
	// another window, so a healthy client can stream a huge job for
	// minutes while a stalled one still times out within one window.
	// (Ignored where the transport has no deadlines, e.g. httptest.)
	rc := http.NewResponseController(w)
	started := false
	writeLine := func(v any) bool {
		line, err := json.Marshal(v)
		if err != nil {
			s.log.Error("marshal results line", "err", err)
			return false
		}
		if !started {
			w.Header().Set("Content-Type", "application/x-ndjson")
			w.WriteHeader(http.StatusOK)
			started = true
		}
		if _, err := w.Write(append(line, '\n')); err != nil {
			s.log.Debug("job results client gone", "job", j.ID(), "err", err)
			return false
		}
		return true
	}
	for {
		rc.SetWriteDeadline(time.Now().Add(jobWriteWindow)) //nolint:errcheck
		batches, done, err := j.Spool().Next(r.Context(), cursor)
		switch {
		case errors.Is(err, jobs.ErrGone):
			// Only possible before anything streamed: the first Next
			// validates the client's cursor, later ones use our own.
			s.writeError(w, &httpError{code: http.StatusGone, msg: err.Error()})
			return
		case errors.Is(err, jobs.ErrFuture):
			s.writeError(w, badRequest("%v", err))
			return
		case err != nil:
			// Client disconnect or job cancellation mid-wait. If nothing
			// was streamed yet, report it; otherwise the stream just ends
			// (no trailer) and the client resumes from its last marker.
			if !started {
				s.writeError(w, err)
			}
			return
		}
		for _, b := range batches {
			for _, row := range b.Rows {
				if !writeLine(json.RawMessage(row)) {
					return
				}
			}
			cursor = b.Seq
			if !writeLine(seqMarkerJSON{Seq: cursor}) {
				return
			}
		}
		if started && flusher != nil {
			flusher.Flush()
		}
		if done {
			snap := j.Snapshot()
			trailer := jobTrailerJSON{
				Done: true, State: string(snap.State), Error: snap.Err,
				PointsOK: snap.PointsOK, PointsErr: snap.PointsErr,
			}
			writeLine(trailer)
			if flusher != nil {
				flusher.Flush()
			}
			// The trailer means the client has everything; acknowledge the
			// final batches so the drained spool holds no rows.
			j.Spool().Next(r.Context(), cursor) //nolint:errcheck
			return
		}
	}
}
