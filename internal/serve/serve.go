// Package serve is the HTTP model-serving layer: a JSON API over the
// analytical model, backed by one shared memoizing sweep.Evaluator so a
// long-running daemon amortizes demand and MVA solves across requests.
//
// The package provides the handler tree and production plumbing — strict
// input validation (unknown fields, NaN/Inf, and out-of-range workload
// parameters are rejected at the boundary with 400s), per-request
// timeouts, a concurrency limiter with backpressure, request body size
// caps, panic recovery, structured access logs, and Prometheus-style
// metrics — while cmd/cohered owns the process concerns (flags, signals,
// graceful shutdown).
//
// Endpoints:
//
//	GET  /healthz         liveness + cache snapshot
//	GET  /metrics         Prometheus text format
//	POST /v1/bus          bus-model curve or single point
//	POST /v1/network      multistage-network point (Patel or MVA variant)
//	POST /v1/advisor      scheme rankings for a workload
//	POST /v1/sensitivity  one-at-a-time parameter sensitivity table
//	POST /v1/sweep        batch of bus-model points in one round trip
//
// Every response is bit-identical to the equivalent library call: the
// handlers route through the same sweep.Evaluator code paths the CLIs
// use, and the evaluator's determinism contract (see internal/sweep)
// guarantees cache hits reproduce miss-path results exactly.
package serve

import (
	"context"
	"fmt"
	"log/slog"
	"net/http"
	"runtime"
	"runtime/debug"
	"time"

	"swcc/internal/sweep"
)

// Config tunes the server's limits. The zero value is usable: every
// field falls back to the default documented on it.
type Config struct {
	// RequestTimeout bounds one request's total model work, wait for a
	// concurrency slot included. Default 10s.
	RequestTimeout time.Duration
	// MaxInFlight caps concurrent model solves; requests beyond it wait
	// for a slot and fail 503 if none frees up within the request
	// timeout. Default 4*GOMAXPROCS.
	MaxInFlight int
	// MaxBodyBytes caps the request body. Default 1 MiB.
	MaxBodyBytes int64
	// MaxProcs is the largest servable bus machine (the cost of a bus
	// query is linear in procs). Default 4096.
	MaxProcs int
	// MaxStages is the largest servable network (2^stages processors).
	// Default 20.
	MaxStages int
	// MaxBatchPoints caps the number of grid points one /v1/sweep
	// request may carry. Default 1024.
	MaxBatchPoints int
	// CacheCap, when positive, bounds the evaluator's demand and curve
	// caches to roughly CacheCap entries each, evicting cold entries by
	// a per-shard CLOCK policy — a hard memory ceiling for a long-lived
	// daemon fed adversarial parameter mixes. Default 0 (unbounded:
	// cache growth tracks distinct work).
	CacheCap int
	// Logger receives structured access and lifecycle logs. Default
	// slog.Default().
	Logger *slog.Logger
}

func (c Config) withDefaults() Config {
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 10 * time.Second
	}
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 4 * runtime.GOMAXPROCS(0)
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 1 << 20
	}
	if c.MaxProcs <= 0 {
		c.MaxProcs = 4096
	}
	if c.MaxStages <= 0 {
		c.MaxStages = 20
	}
	if c.MaxBatchPoints <= 0 {
		c.MaxBatchPoints = 1024
	}
	if c.Logger == nil {
		c.Logger = slog.Default()
	}
	return c
}

// Server is the shared state behind the handler tree. Construct with
// NewServer; the zero value is not ready.
type Server struct {
	cfg   Config
	ev    *sweep.Evaluator
	met   *metrics
	log   *slog.Logger
	sem   chan struct{}
	start time.Time

	// beforeSolve, when non-nil, runs inside the solve goroutine before
	// the model work. Tests use it to hold a request open so the
	// timeout and busy paths can be exercised deterministically.
	beforeSolve func()
}

// NewServer returns a server with a fresh evaluator cache, bounded when
// cfg.CacheCap is set.
func NewServer(cfg Config) *Server {
	cfg = cfg.withDefaults()
	return &Server{
		cfg:   cfg,
		ev:    sweep.NewEvaluatorCap(cfg.CacheCap),
		met:   newMetrics(),
		log:   cfg.Logger,
		sem:   make(chan struct{}, cfg.MaxInFlight),
		start: time.Now(),
	}
}

// Evaluator exposes the shared cache, e.g. for tests asserting hit
// counts or for embedding the handler tree next to batch work.
func (s *Server) Evaluator() *sweep.Evaluator { return s.ev }

// Handler returns the routed, instrumented handler tree.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("POST /v1/bus", s.apiHandler(s.handleBus))
	mux.HandleFunc("POST /v1/network", s.apiHandler(s.handleNetwork))
	mux.HandleFunc("POST /v1/advisor", s.apiHandler(s.handleAdvisor))
	mux.HandleFunc("POST /v1/sensitivity", s.apiHandler(s.handleSensitivity))
	mux.HandleFunc("POST /v1/sweep", s.apiHandler(s.handleSweep))
	return s.instrument(mux)
}

// errBusy marks a request that never got a concurrency slot; the
// instrument middleware has already accounted for it by the time the
// handler maps it to 503.
var errBusy = fmt.Errorf("serve: all %s slots busy", "model")

// solve runs fn under the concurrency limiter with the request context's
// deadline. Waiting for a slot and solving share one budget; a request
// that times out while queued fails errBusy (503), one that times out
// mid-solve fails ctx.Err() (504). A timed-out solve keeps its slot
// until the goroutine finishes, so MaxInFlight bounds real model work
// even when clients have given up.
func (s *Server) solve(ctx context.Context, fn func() (any, error)) (any, error) {
	select {
	case s.sem <- struct{}{}:
	case <-ctx.Done():
		return nil, errBusy
	}
	type res struct {
		v   any
		err error
	}
	ch := make(chan res, 1)
	go func() {
		defer func() { <-s.sem }()
		// The solve runs outside the handler goroutine, so the
		// instrument middleware's recover cannot catch a panic here;
		// convert it to a 500 instead of killing the process.
		defer func() {
			if p := recover(); p != nil {
				s.log.Error("panic in model solve", "panic", p, "stack", string(debug.Stack()))
				ch <- res{nil, fmt.Errorf("serve: internal error: %v", p)}
			}
		}()
		if s.beforeSolve != nil {
			s.beforeSolve()
		}
		v, err := fn()
		ch <- res{v, err}
	}()
	select {
	case r := <-ch:
		return r.v, r.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}
