package serve

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"runtime"
	"runtime/debug"
	"sync/atomic"
	"time"

	"swcc/internal/fault"
	"swcc/internal/jobs"
	"swcc/internal/obs"
	"swcc/internal/sweep"
)

// Config tunes the server's limits. The zero value is usable: every
// field falls back to the default documented on it.
type Config struct {
	// RequestTimeout bounds one request's total model work, wait for a
	// concurrency slot included. Default 10s.
	RequestTimeout time.Duration
	// MaxInFlight caps concurrent model solves; requests beyond it wait
	// for a slot and fail 503 if none frees up within the request
	// timeout. Default 4*GOMAXPROCS.
	MaxInFlight int
	// MaxBodyBytes caps the request body. Default 1 MiB.
	MaxBodyBytes int64
	// MaxProcs is the largest servable bus machine (the cost of a bus
	// query is linear in procs). Default 4096.
	MaxProcs int
	// MaxStages is the largest servable network (2^stages processors).
	// Default 20.
	MaxStages int
	// MaxBatchPoints caps the number of grid points one /v1/sweep
	// request may carry. Default 1024.
	MaxBatchPoints int
	// MaxQueueDepth caps how many admitted requests may wait for a
	// concurrency slot before the admission controller starts shedding:
	// past it, new API requests are rejected 503 before their body is
	// even read, with a Retry-After derived from the observed
	// solve-latency histogram. Default 2*MaxInFlight.
	MaxQueueDepth int
	// CacheCap, when positive, bounds the evaluator's demand and curve
	// caches to roughly CacheCap entries each, evicting cold entries by
	// a per-shard CLOCK policy — a hard memory ceiling for a long-lived
	// daemon fed adversarial parameter mixes. Default 0 (unbounded:
	// cache growth tracks distinct work).
	CacheCap int
	// MaxJobs caps resident async sweep jobs (running or
	// terminal-but-unread); submissions past it fail 503. Default 16.
	MaxJobs int
	// MaxJobPoints caps the grid size one job may request. Default 2^20.
	MaxJobPoints int
	// JobSpoolRows bounds each job's buffered-but-unstreamed result rows;
	// producers block (bounded memory) once a job's reader falls this far
	// behind. Default 4096.
	JobSpoolRows int
	// JobTTL evicts finished jobs whose results nobody collected or
	// deleted. Default 10m.
	JobTTL time.Duration
	// BaseContext is the lifecycle context async jobs derive from —
	// typically the daemon's signal context, so SIGTERM cancels jobs that
	// outlive their submitting request. Default context.Background().
	BaseContext context.Context
	// Fault, when non-nil, injects deterministic faults (latency,
	// errors, panics) into every model solve, every /v1/sweep grid
	// point, and every job grid point, per the injector's seeded
	// schedule — the chaos-testing hook. Default nil: no injection, one
	// nil check per solve.
	Fault *fault.Injector
	// Weight is the routing weight this backend advertises on /readyz
	// for a weighted-rendezvous gateway: 2 means "send me twice the key
	// space of a weight-1 peer". Default 0: advertise nothing, let the
	// gateway assume 1.
	Weight float64
	// Logger receives structured access and lifecycle logs. Default
	// slog.Default().
	Logger *slog.Logger
}

func (c Config) withDefaults() Config {
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 10 * time.Second
	}
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 4 * runtime.GOMAXPROCS(0)
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 1 << 20
	}
	if c.MaxProcs <= 0 {
		c.MaxProcs = 4096
	}
	if c.MaxStages <= 0 {
		c.MaxStages = 20
	}
	if c.MaxBatchPoints <= 0 {
		c.MaxBatchPoints = 1024
	}
	if c.MaxQueueDepth <= 0 {
		c.MaxQueueDepth = 2 * c.MaxInFlight
	}
	if c.MaxJobs <= 0 {
		c.MaxJobs = 16
	}
	if c.MaxJobPoints <= 0 {
		c.MaxJobPoints = 1 << 20
	}
	if c.JobSpoolRows <= 0 {
		c.JobSpoolRows = 4096
	}
	if c.JobTTL <= 0 {
		c.JobTTL = 10 * time.Minute
	}
	if c.Logger == nil {
		c.Logger = slog.Default()
	}
	return c
}

// Server is the shared state behind the handler tree. Construct with
// NewServer; the zero value is not ready.
type Server struct {
	cfg   Config
	ev    *sweep.Evaluator
	met   *metrics
	log   *slog.Logger
	sem   chan struct{}
	start time.Time

	// jobs owns the async sweep jobs; jobSem bounds the solver
	// parallelism all running jobs share, separately from the HTTP
	// limiter so background grids never starve interactive requests.
	jobs   *jobs.Registry
	jobSem chan struct{}

	// notReady holds the reason /readyz should answer 503, or nil when
	// the server is ready. It gates readiness only — /healthz and the
	// API endpoints keep serving — so a front tier can drain traffic
	// away from a booting or wound-down backend without killing it.
	notReady atomic.Pointer[string]

	// beforeSolve, when non-nil, runs inside the solve goroutine before
	// the model work. Tests use it to hold a request open so the
	// timeout and busy paths can be exercised deterministically.
	beforeSolve func()
}

// NewServer returns a server with a fresh evaluator cache, bounded when
// cfg.CacheCap is set. The evaluator is wired to the server's metrics
// registry (stage histograms) and logger (debug-level cache events with
// trace IDs) before it sees any traffic.
func NewServer(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:    cfg,
		ev:     sweep.NewEvaluatorCap(cfg.CacheCap),
		met:    newMetrics(),
		log:    cfg.Logger,
		sem:    make(chan struct{}, cfg.MaxInFlight),
		jobSem: make(chan struct{}, runtime.GOMAXPROCS(0)),
		start:  time.Now(),
	}
	s.jobs = jobs.NewRegistry(jobs.Config{
		MaxJobs:   cfg.MaxJobs,
		SpoolRows: cfg.JobSpoolRows,
		TTL:       cfg.JobTTL,
		Base:      cfg.BaseContext,
	})
	s.ev.SetObserver(evalObserver{met: s.met, log: s.log})
	return s
}

// Close cancels every async job and waits for their runners to return.
// The HTTP handlers stay functional except job submission; call it after
// the listener has shut down.
func (s *Server) Close() {
	s.jobs.Close()
}

// evalObserver adapts the server's metrics registry and logger to the
// evaluator's sweep.Observer interface: stage wall times land in the
// per-stage histograms, and cache events become debug-level log lines
// carrying the request's trace ID (free when debug logging is off).
type evalObserver struct {
	met *metrics
	log *slog.Logger
}

// StageObserved records one evaluator stage duration into the stage
// histogram family.
func (o evalObserver) StageObserved(ctx context.Context, stage string, seconds float64) {
	o.met.observeStage(stage, seconds)
}

// CacheEvent logs one evaluator cache event at debug level with the
// request's trace ID, so `-quiet` daemons pay only an Enabled check.
func (o evalObserver) CacheEvent(ctx context.Context, cache, event string) {
	if o.log.Enabled(ctx, slog.LevelDebug) {
		o.log.Debug("cache event", "cache", cache, "event", event, "trace", obs.TraceID(ctx))
	}
}

// Evaluator exposes the shared cache, e.g. for tests asserting hit
// counts or for embedding the handler tree next to batch work.
func (s *Server) Evaluator() *sweep.Evaluator { return s.ev }

// SetNotReady makes /readyz answer 503 with the given reason until
// SetReady. The daemon calls it around boot-time work (snapshot
// restore) and drain, so a gateway health-checking /readyz routes
// around a backend that is up but should not take traffic yet.
func (s *Server) SetNotReady(reason string) { s.notReady.Store(&reason) }

// SetReady clears a SetNotReady, making /readyz answer 200 again
// (load shedding permitting).
func (s *Server) SetReady() { s.notReady.Store(nil) }

// Handler returns the routed, instrumented handler tree.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("POST /v1/bus", s.apiHandler(s.handleBus))
	mux.HandleFunc("POST /v1/network", s.apiHandler(s.handleNetwork))
	mux.HandleFunc("POST /v1/advisor", s.apiHandler(s.handleAdvisor))
	mux.HandleFunc("POST /v1/sensitivity", s.apiHandler(s.handleSensitivity))
	mux.HandleFunc("POST /v1/sweep", s.apiHandler(s.handleSweep))
	mux.HandleFunc("POST /v1/jobs/sweep", s.apiHandler(s.handleJobSubmit))
	mux.HandleFunc("GET /v1/jobs", s.handleJobList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJobStatus)
	mux.HandleFunc("GET /v1/jobs/{id}/results", s.handleJobResults)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleJobDelete)
	return s.instrument(mux)
}

// errBusy marks a request that never got a concurrency slot; the
// instrument middleware has already accounted for it by the time the
// handler maps it to 503.
var errBusy = fmt.Errorf("serve: all %s slots busy", "model")

// validateStartKey carries the apiHandler's decode/validate span through
// the context so solve can close the stage at the validation/model-work
// boundary.
type validateStartKey struct{}

// solve runs fn under the concurrency limiter with the request context's
// deadline. Waiting for a slot and solving share one budget; a request
// whose *deadline* expires while queued fails errBusy (503 — the server
// genuinely had no capacity in time), while a request whose client
// disconnects while queued fails context.Canceled (the client gave up;
// that is logged and counted as a cancellation, not as "server busy").
// A request that times out mid-solve fails ctx.Err() (504). A timed-out
// solve keeps its slot until the goroutine finishes, so MaxInFlight
// bounds real model work even when clients have given up — but the
// evaluator's cancellation points make that goroutine wind down at the
// next ctx check instead of completing the abandoned work.
//
// Entering solve is also the decode/validate stage boundary: everything
// the handler did between reading the body and calling solve was
// decoding and validation, and that wall time is recorded into the
// "validate" stage histogram here (requests rejected before solve are
// not part of the stage series — they never reach model work).
func (s *Server) solve(ctx context.Context, fn func() (any, error)) (any, error) {
	if sp, ok := ctx.Value(validateStartKey{}).(obs.Span); ok {
		s.met.observeStage(stageValidate, sp.Seconds())
	}
	s.met.queueDepth.Add(1)
	select {
	case s.sem <- struct{}{}:
		s.met.queueDepth.Add(-1)
	case <-ctx.Done():
		s.met.queueDepth.Add(-1)
		if err := ctx.Err(); errors.Is(err, context.Canceled) {
			s.met.cancels.Add(1)
			s.log.Debug("client gone while queued for a solve slot")
			return nil, err
		}
		return nil, errBusy
	}
	s.met.solveInFlight.Add(1)
	type res struct {
		v   any
		err error
	}
	ch := make(chan res, 1)
	go func() {
		defer func() {
			s.met.solveInFlight.Add(-1)
			<-s.sem
		}()
		// The solve runs outside the handler goroutine, so the
		// instrument middleware's recover cannot catch a panic here;
		// convert it to a 500 instead of killing the process.
		defer func() {
			if p := recover(); p != nil {
				s.log.Error("panic in model solve", "panic", p, "stack", string(debug.Stack()))
				ch <- res{nil, fmt.Errorf("serve: internal error: %v", p)}
			}
		}()
		if s.beforeSolve != nil {
			s.beforeSolve()
		}
		if err := s.cfg.Fault.Point(ctx); err != nil {
			ch <- res{nil, err}
			return
		}
		v, err := fn()
		ch <- res{v, err}
	}()
	select {
	case r := <-ch:
		return r.v, r.err
	case <-ctx.Done():
		if err := ctx.Err(); errors.Is(err, context.Canceled) {
			s.met.cancels.Add(1)
			s.log.Debug("client gone mid-solve; work stops at its next cancellation point")
		}
		// The abandoned solve may still complete into ch; nobody will
		// encode that response, so its pooled buffers would leak from the
		// pools' accounting. Drain it and release off the request path.
		go func() {
			if r := <-ch; r.v != nil {
				if br, ok := r.v.(bufferReleaser); ok {
					br.ReleaseBuffers()
				}
			}
		}()
		return nil, ctx.Err()
	}
}
