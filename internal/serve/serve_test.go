package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"swcc/internal/core"
	"swcc/internal/sweep"
)

// newTestServer returns a server with quiet logs and the given config.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.Logger == nil {
		cfg.Logger = slog.New(slog.NewJSONHandler(io.Discard, nil))
	}
	s := NewServer(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(s.Close)
	t.Cleanup(ts.Close)
	return s, ts
}

func post(t *testing.T, ts *httptest.Server, path, body string) (int, []byte) {
	t.Helper()
	resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", path, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("POST %s: reading body: %v", path, err)
	}
	return resp.StatusCode, data
}

// TestBusGolden pins the /v1/bus contract: for a known workload the
// response must be byte-identical to the equivalent library call
// marshaled through the same wire struct.
func TestBusGolden(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	code, got := post(t, ts, "/v1/bus",
		`{"scheme": "dragon", "params": {"shd": 0.4}, "procs": 8}`)
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, got)
	}
	p, err := core.MiddleParams().With("shd", 0.4)
	if err != nil {
		t.Fatal(err)
	}
	pts, err := core.EvaluateBus(core.Dragon{}, p, core.BusCosts(), 8)
	if err != nil {
		t.Fatal(err)
	}
	want, err := json.Marshal(busResponse{
		Scheme: "Dragon", Costs: core.BusCosts().Name, Procs: 8, Points: pts,
	})
	if err != nil {
		t.Fatal(err)
	}
	want = append(want, '\n')
	if !bytes.Equal(got, want) {
		t.Errorf("response not bit-identical to library call:\n got: %s\nwant: %s", got, want)
	}
}

// TestBusPointMode checks {"point": true} returns exactly the curve's
// last entry.
func TestBusPointMode(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	code, got := post(t, ts, "/v1/bus", `{"scheme": "swflush", "procs": 16, "point": true}`)
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, got)
	}
	var resp busResponse
	if err := json.Unmarshal(got, &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Points) != 1 {
		t.Fatalf("point mode returned %d points", len(resp.Points))
	}
	want, err := core.BusPower(core.SoftwareFlush{}, core.MiddleParams(), core.BusCosts(), 16)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Points[0].Power != want {
		t.Errorf("point power %v != library %v", resp.Points[0].Power, want)
	}
	if resp.Points[0].Processors != 16 {
		t.Errorf("point processors %d != 16", resp.Points[0].Processors)
	}
}

// TestNetworkGolden pins /v1/network against the library for both
// contention models.
func TestNetworkGolden(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for _, model := range []string{"patel", "mva"} {
		code, got := post(t, ts, "/v1/network",
			fmt.Sprintf(`{"scheme": "swflush", "stages": 6, "model": %q}`, model))
		if code != http.StatusOK {
			t.Fatalf("%s: status %d: %s", model, code, got)
		}
		var pt core.NetworkPoint
		var err error
		if model == "mva" {
			pt, err = core.EvaluateNetworkMVA(core.SoftwareFlush{}, core.MiddleParams(), 6)
		} else {
			pt, err = core.EvaluateNetworkAt(core.SoftwareFlush{}, core.MiddleParams(), 6)
		}
		if err != nil {
			t.Fatal(err)
		}
		want, err := json.Marshal(networkResponse{Scheme: "Software-Flush", Model: model, Point: pt})
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, '\n')
		if !bytes.Equal(got, want) {
			t.Errorf("%s: response not bit-identical:\n got: %s\nwant: %s", model, got, want)
		}
	}
}

// TestAdvisorGolden pins /v1/advisor against core.RankBusWith through a
// fresh evaluator (the determinism contract makes both bit-identical).
func TestAdvisorGolden(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	code, got := post(t, ts, "/v1/advisor", `{"level": "high", "procs": 32}`)
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, got)
	}
	ranked, err := core.RankBusWith(sweep.NewEvaluator(), defaultCandidates(),
		core.ParamsAt(core.High), core.BusCosts(), 32)
	if err != nil {
		t.Fatal(err)
	}
	wantResp := advisorResponse{Hardware: "32-processor bus"}
	for _, r := range ranked {
		wantResp.Rankings = append(wantResp.Rankings, rankingJSON{
			Scheme: schemeLabel(r.Scheme), Power: r.Power, Efficiency: r.Efficiency,
		})
	}
	want, err := json.Marshal(wantResp)
	if err != nil {
		t.Fatal(err)
	}
	want = append(want, '\n')
	if !bytes.Equal(got, want) {
		t.Errorf("response not bit-identical:\n got: %s\nwant: %s", got, want)
	}
}

// TestSensitivityEndpoint checks the table comes back well-formed and
// matches the library's percent changes.
func TestSensitivityEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	code, got := post(t, ts, "/v1/sensitivity", `{"procs": 8, "schemes": ["base", "swflush"]}`)
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, got)
	}
	var tab struct {
		Processors int
		Params     []string
		Schemes    []string
		Cells      map[string]map[string]struct{ PercentChange float64 }
	}
	if err := json.Unmarshal(got, &tab); err != nil {
		t.Fatal(err)
	}
	if tab.Processors != 8 || len(tab.Params) != 11 || len(tab.Schemes) != 2 {
		t.Fatalf("malformed table: procs=%d params=%d schemes=%v",
			tab.Processors, len(tab.Params), tab.Schemes)
	}
	cell := tab.Cells["apl"]["Software-Flush"]
	if cell.PercentChange == 0 {
		t.Error("Software-Flush apl sensitivity is zero — table not computed")
	}
}

// TestBadRequests sweeps the validation boundary: every malformed body
// must be a 400 with a JSON error, never a 200 or a 500.
func TestBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cases := []struct {
		name, path, body string
	}{
		{"empty body", "/v1/bus", ``},
		{"not json", "/v1/bus", `procs=16`},
		{"unknown envelope field", "/v1/bus", `{"scheme": "base", "prox": 16}`},
		{"unknown param name", "/v1/bus", `{"scheme": "base", "params": {"shdd": 0.2}}`},
		{"nan param literal", "/v1/bus", `{"scheme": "base", "params": {"shd": NaN}}`},
		{"inf param literal", "/v1/bus", `{"scheme": "base", "params": {"shd": 1e999}}`},
		{"param out of range", "/v1/bus", `{"scheme": "base", "params": {"shd": 1.5}}`},
		{"apl below one", "/v1/bus", `{"scheme": "base", "params": {"apl": 0.5}}`},
		{"unknown scheme", "/v1/bus", `{"scheme": "firefly"}`},
		{"missing scheme", "/v1/bus", `{"procs": 4}`},
		{"level and params", "/v1/bus", `{"scheme": "base", "level": "low", "params": {"shd": 0.2}}`},
		{"bad level", "/v1/bus", `{"scheme": "base", "level": "extreme"}`},
		{"negative procs", "/v1/bus", `{"scheme": "base", "procs": -1}`},
		{"procs over cap", "/v1/bus", `{"scheme": "base", "procs": 1000000}`},
		{"trailing garbage", "/v1/bus", `{"scheme": "base"} {"scheme": "base"}`},
		{"lockfrac on non-hybrid", "/v1/bus", `{"scheme": "dragon", "lockfrac": 0.5}`},
		{"lockfrac out of range", "/v1/bus", `{"scheme": "hybrid", "lockfrac": 1.5}`},
		{"missing stages", "/v1/network", `{"scheme": "base"}`},
		{"stages over cap", "/v1/network", `{"scheme": "base", "stages": 30}`},
		{"bad model", "/v1/network", `{"scheme": "base", "stages": 4, "model": "exact"}`},
		{"advisor procs and stages", "/v1/advisor", `{"procs": 16, "stages": 4}`},
		{"advisor unknown scheme", "/v1/advisor", `{"schemes": ["firefly"]}`},
		{"sensitivity unknown scheme", "/v1/sensitivity", `{"schemes": ["firefly"]}`},
	}
	for _, c := range cases {
		code, body := post(t, ts, c.path, c.body)
		if code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (body: %s)", c.name, code, body)
			continue
		}
		var er errorResponse
		if err := json.Unmarshal(body, &er); err != nil || er.Error == "" {
			t.Errorf("%s: non-JSON error body %q", c.name, body)
		}
	}
}

// TestUnsupportedScheme checks a scheme/hardware mismatch is a 422, not
// a 400 (the request is well-formed) and not a 500 (it is the client's
// choice).
func TestUnsupportedScheme(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	code, body := post(t, ts, "/v1/network", `{"scheme": "dragon", "stages": 4}`)
	if code != http.StatusUnprocessableEntity {
		t.Errorf("dragon on network: status %d, want 422 (body: %s)", code, body)
	}
}

// TestMethodAndRouteErrors checks the router rejects wrong methods and
// unknown paths.
func TestMethodAndRouteErrors(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/v1/bus")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/bus: status %d, want 405", resp.StatusCode)
	}
	code, _ := post(t, ts, "/v1/nonsense", `{}`)
	if code != http.StatusNotFound {
		t.Errorf("POST /v1/nonsense: status %d, want 404", code)
	}
}

// TestBodyTooLarge checks the request-size cap responds 413.
func TestBodyTooLarge(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxBodyBytes: 64})
	code, body := post(t, ts, "/v1/bus",
		`{"scheme": "base", "params": {`+strings.Repeat(" ", 100)+`}}`)
	if code != http.StatusRequestEntityTooLarge {
		t.Errorf("status %d, want 413 (body: %s)", code, body)
	}
}

// TestTimeoutPath holds a solve open past the request budget and checks
// the client gets a 504.
func TestTimeoutPath(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	s, ts := newTestServer(t, Config{RequestTimeout: 30 * time.Millisecond})
	s.beforeSolve = func() { <-release }
	code, body := post(t, ts, "/v1/bus", `{"scheme": "base"}`)
	if code != http.StatusGatewayTimeout {
		t.Errorf("status %d, want 504 (body: %s)", code, body)
	}
}

// TestBusyPath fills the single concurrency slot and checks the queued
// request fails 503 with a Retry-After hint once its budget expires.
func TestBusyPath(t *testing.T) {
	entered := make(chan struct{})
	release := make(chan struct{})
	s, ts := newTestServer(t, Config{MaxInFlight: 1, RequestTimeout: 60 * time.Millisecond})
	var once bool
	s.beforeSolve = func() {
		if !once {
			once = true
			close(entered)
			<-release
		}
	}
	firstDone := make(chan struct{})
	go func() {
		defer close(firstDone)
		resp, err := http.Post(ts.URL+"/v1/bus", "application/json",
			strings.NewReader(`{"scheme": "base"}`))
		if err == nil {
			resp.Body.Close()
		}
	}()
	<-entered
	resp, err := http.Post(ts.URL+"/v1/bus", "application/json",
		strings.NewReader(`{"scheme": "base"}`))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("status %d, want 503 (body: %s)", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("503 without Retry-After")
	}
	close(release)
	<-firstDone
}

// TestHealthz checks liveness and that the cache snapshot is present.
func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var h healthResponse
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" {
		t.Errorf("status %q", h.Status)
	}
}

// metricValue extracts one un-labeled metric value from Prometheus text.
func metricValue(t *testing.T, text, name string) float64 {
	t.Helper()
	re := regexp.MustCompile(`(?m)^` + regexp.QuoteMeta(name) + ` (\S+)$`)
	m := re.FindStringSubmatch(text)
	if m == nil {
		t.Fatalf("metric %s not found in:\n%s", name, text)
	}
	v, err := strconv.ParseFloat(m[1], 64)
	if err != nil {
		t.Fatalf("metric %s: %v", name, err)
	}
	return v
}

// TestMetricsReportCacheHits is the observability acceptance check:
// repeated identical queries must drive the exported hit counters above
// zero, and the request counters and histogram must account for every
// request.
func TestMetricsReportCacheHits(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	const repeats = 5
	for i := 0; i < repeats; i++ {
		if code, body := post(t, ts, "/v1/bus", `{"scheme": "dragon", "procs": 16}`); code != 200 {
			t.Fatalf("status %d: %s", code, body)
		}
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(data)

	if hits := metricValue(t, text, "swcc_demand_cache_hits_total"); hits < repeats-1 {
		t.Errorf("demand hits %v after %d identical queries", hits, repeats)
	}
	if hits := metricValue(t, text, "swcc_mva_cache_hits_total"); hits < repeats-1 {
		t.Errorf("mva hits %v after %d identical queries", hits, repeats)
	}
	if solves := metricValue(t, text, "swcc_demand_solves_total"); solves != 1 {
		t.Errorf("demand solves %v, want 1", solves)
	}
	if got := metricValue(t, text, "swcc_http_in_flight"); got != 1 {
		// The /metrics request itself is in flight while rendering.
		t.Errorf("in-flight %v, want 1 (the /metrics request)", got)
	}
	if n := metricValue(t, text, "swcc_http_request_duration_seconds_count"); n != repeats {
		t.Errorf("histogram count %v, want %d", n, repeats)
	}
	if !strings.Contains(text, `swcc_http_requests_total{path="/v1/bus",code="200"} 5`) {
		t.Errorf("missing per-path request counter:\n%s", text)
	}
	if !strings.Contains(text, `swcc_cache_entries{cache="demand"} 1`) {
		t.Errorf("missing cache size gauge:\n%s", text)
	}
}

// TestAccessLogWritten checks the structured access log carries the
// request fields.
func TestAccessLogWritten(t *testing.T) {
	var buf safeBuffer
	logger := slog.New(slog.NewJSONHandler(&buf, nil))
	_, ts := newTestServer(t, Config{Logger: logger})
	if code, body := post(t, ts, "/v1/bus", `{"scheme": "base"}`); code != 200 {
		t.Fatalf("status %d: %s", code, body)
	}
	line := buf.String()
	for _, want := range []string{`"path":"/v1/bus"`, `"method":"POST"`, `"status":200`, `"duration_ms"`} {
		if !strings.Contains(line, want) {
			t.Errorf("access log missing %s in: %s", want, line)
		}
	}
}

// TestPanicRecovered checks a panic inside a model solve turns into a
// 500 response, not a dead process (the solve runs off the handler
// goroutine, so it needs its own recover).
func TestPanicRecovered(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	s.beforeSolve = func() { panic("boom") }
	code, _ := post(t, ts, "/v1/bus", `{"scheme": "base"}`)
	if code != http.StatusInternalServerError {
		t.Errorf("status %d, want 500", code)
	}
}

// safeBuffer is a mutex-guarded bytes.Buffer: the access-log handler
// writes from request goroutines while the test reads.
type safeBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *safeBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *safeBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}
