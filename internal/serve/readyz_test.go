package serve

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
)

// getReadyz hits GET /readyz and decodes the body.
func getReadyz(t *testing.T, ts *httptest.Server) (int, ReadyzResponse) {
	t.Helper()
	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatalf("GET /readyz: %v", err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var rz ReadyzResponse
	if err := json.Unmarshal(data, &rz); err != nil {
		t.Fatalf("decoding /readyz body %q: %v", data, err)
	}
	return resp.StatusCode, rz
}

// TestReadyzLifecycle covers the explicit ready-state machine: a fresh
// server is ready, SetNotReady flips /readyz to 503 with the reason
// (while /healthz stays 200 — not-ready is "drain me", not "kill me"),
// and SetReady restores 200.
func TestReadyzLifecycle(t *testing.T) {
	s, ts := newTestServer(t, Config{})

	code, rz := getReadyz(t, ts)
	if code != http.StatusOK || !rz.Ready || rz.Reason != "" {
		t.Fatalf("fresh server: code %d, body %+v", code, rz)
	}

	s.SetNotReady("restoring snapshot")
	code, rz = getReadyz(t, ts)
	if code != http.StatusServiceUnavailable || rz.Ready || rz.Reason != "restoring snapshot" {
		t.Fatalf("not-ready server: code %d, body %+v", code, rz)
	}
	hResp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hResp.Body.Close()
	if hResp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz %d while not-ready; liveness must not follow readiness", hResp.StatusCode)
	}

	s.SetReady()
	if code, rz = getReadyz(t, ts); code != http.StatusOK || !rz.Ready {
		t.Fatalf("after SetReady: code %d, body %+v", code, rz)
	}
}

// TestReadyzSheddingNotReady pins that a server past its queue-depth
// cap reports not-ready with reason "shedding" — the same condition
// under which apiHandler 503s new work — without any explicit
// SetNotReady call.
func TestReadyzSheddingNotReady(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxInFlight: 1, MaxQueueDepth: 1})
	// Simulate a full queue the way admission control sees it.
	s.met.queueDepth.Add(1)
	defer s.met.queueDepth.Add(-1)

	code, rz := getReadyz(t, ts)
	if code != http.StatusServiceUnavailable || rz.Ready || rz.Reason != "shedding" {
		t.Fatalf("shedding server: code %d, body %+v", code, rz)
	}
}

// TestReadyzCacheWarmth pins that the body carries real warmth
// counters: entries and hit ratio move when the cache does.
func TestReadyzCacheWarmth(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	_, rz := getReadyz(t, ts)
	if rz.Cache.DemandEntries != 0 || rz.Cache.CurveEntries != 0 || rz.Cache.HitRatio != 0 {
		t.Fatalf("cold server reports warmth: %+v", rz.Cache)
	}

	body := `{"scheme": "dragon", "procs": 8}`
	for i := 0; i < 3; i++ {
		if code, resp := post(t, ts, "/v1/bus", body); code != http.StatusOK {
			t.Fatalf("warming request %d: %d %s", i, code, resp)
		}
	}
	_, rz = getReadyz(t, ts)
	if rz.Cache.DemandEntries == 0 || rz.Cache.CurveEntries == 0 {
		t.Fatalf("warm server reports no entries: %+v", rz.Cache)
	}
	if rz.Cache.HitRatio <= 0 || rz.Cache.HitRatio > 1 {
		t.Fatalf("hit ratio %v out of range after repeated identical requests", rz.Cache.HitRatio)
	}
}
