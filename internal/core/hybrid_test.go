package core

import (
	"strings"
	"testing"
)

func TestHybridDegeneratesToNoCache(t *testing.T) {
	p := MiddleParams()
	bus := BusCosts()
	h := demand(t, Hybrid{LockFrac: 1}, p, bus)
	nc := demand(t, NoCache{}, p, bus)
	if !approx(h.CPU, nc.CPU, 1e-12) || !approx(h.Interconnect, nc.Interconnect, 1e-12) {
		t.Errorf("LockFrac=1: hybrid (%g,%g) != No-Cache (%g,%g)", h.CPU, h.Interconnect, nc.CPU, nc.Interconnect)
	}
}

func TestHybridDegeneratesToSoftwareFlush(t *testing.T) {
	p := MiddleParams()
	bus := BusCosts()
	h := demand(t, Hybrid{LockFrac: 0}, p, bus)
	sf := demand(t, SoftwareFlush{}, p, bus)
	if !approx(h.CPU, sf.CPU, 1e-12) || !approx(h.Interconnect, sf.Interconnect, 1e-12) {
		t.Errorf("LockFrac=0: hybrid (%g,%g) != Software-Flush (%g,%g)", h.CPU, h.Interconnect, sf.CPU, sf.Interconnect)
	}
}

func TestHybridInterpolatesMonotonically(t *testing.T) {
	// At middle parameters No-Cache is costlier than Software-Flush,
	// so demand must rise monotonically with the lock fraction.
	p := MiddleParams()
	bus := BusCosts()
	prev := -1.0
	for _, lf := range []float64{0, 0.25, 0.5, 0.75, 1} {
		d := demand(t, Hybrid{LockFrac: lf}, p, bus)
		if d.Interconnect < prev {
			t.Errorf("lock=%g: bus demand %g decreased", lf, d.Interconnect)
		}
		prev = d.Interconnect
	}
}

func TestHybridLocksCheaperThanFlushedLocksAtLowAPL(t *testing.T) {
	// The MultiTitan design point: when locks would be flushed after
	// ~1 use (apl=1 for them), keeping them uncacheable is cheaper
	// than flushing everything. Model: compare all-SF at apl=1
	// against hybrid where 30% lock refs go No-Cache and the rest
	// enjoy apl=8.
	p, err := MiddleParams().With("apl", 1)
	if err != nil {
		t.Fatal(err)
	}
	allFlush, err := BusPower(SoftwareFlush{}, p, BusCosts(), 8)
	if err != nil {
		t.Fatal(err)
	}
	q, err := MiddleParams().With("apl", 8)
	if err != nil {
		t.Fatal(err)
	}
	hybrid, err := BusPower(Hybrid{LockFrac: 0.3}, q, BusCosts(), 8)
	if err != nil {
		t.Fatal(err)
	}
	if hybrid <= allFlush {
		t.Errorf("hybrid %g should beat flush-everything-at-apl-1 %g", hybrid, allFlush)
	}
}

func TestHybridValidation(t *testing.T) {
	p := MiddleParams()
	if _, err := ComputeDemand(Hybrid{LockFrac: -0.1}, p, BusCosts()); err == nil {
		t.Error("want error for negative lock fraction")
	}
	if _, err := ComputeDemand(Hybrid{LockFrac: 1.1}, p, BusCosts()); err == nil {
		t.Error("want error for lock fraction > 1")
	}
}

func TestHybridStringAndName(t *testing.T) {
	h := Hybrid{LockFrac: 0.25}
	if h.Name() != "Hybrid" {
		t.Errorf("name = %q", h.Name())
	}
	if !strings.Contains(h.String(), "0.25") {
		t.Errorf("string = %q", h.String())
	}
}

func TestHybridOnNetwork(t *testing.T) {
	// Both component schemes are network-capable, so the hybrid is
	// too.
	pt, err := EvaluateNetworkAt(Hybrid{LockFrac: 0.3}, MiddleParams(), 8)
	if err != nil {
		t.Fatal(err)
	}
	sf, err := EvaluateNetworkAt(SoftwareFlush{}, MiddleParams(), 8)
	if err != nil {
		t.Fatal(err)
	}
	nc, err := EvaluateNetworkAt(NoCache{}, MiddleParams(), 8)
	if err != nil {
		t.Fatal(err)
	}
	if !(pt.Power < sf.Power && pt.Power > nc.Power) {
		t.Errorf("hybrid network power %g should sit between No-Cache %g and Software-Flush %g",
			pt.Power, nc.Power, sf.Power)
	}
}
