package core

import "testing"

func TestBusCostsForBlockAnchoredAtTable1(t *testing.T) {
	four := BusCostsForBlock(4)
	table1 := BusCosts()
	for _, op := range Ops() {
		if four.Cost(op) != table1.Cost(op) {
			t.Errorf("%v: 4-word generalization %+v != Table 1 %+v", op, four.Cost(op), table1.Cost(op))
		}
	}
}

func TestNetworkCostsForBlockAnchoredAtTable9(t *testing.T) {
	for _, stages := range []int{1, 4, 8} {
		four := NetworkCostsForBlock(stages, 4)
		table9 := NetworkCosts(stages)
		for _, op := range Ops() {
			if four.Defines(op) != table9.Defines(op) || four.Cost(op) != table9.Cost(op) {
				t.Errorf("stages=%d %v: generalization differs from Table 9", stages, op)
			}
		}
	}
}

func TestBlockCostsScaleWithWords(t *testing.T) {
	// Block transfers cost one extra bus cycle per extra word (two for
	// dirty misses); word operations stay fixed.
	w2 := BusCostsForBlock(2)
	w8 := BusCostsForBlock(8)
	if got := w8.Cost(OpCleanMissMem).Interconnect - w2.Cost(OpCleanMissMem).Interconnect; got != 6 {
		t.Errorf("clean miss bus delta = %g, want 6", got)
	}
	if got := w8.Cost(OpDirtyMissMem).Interconnect - w2.Cost(OpDirtyMissMem).Interconnect; got != 12 {
		t.Errorf("dirty miss bus delta = %g, want 12", got)
	}
	if w8.Cost(OpReadThrough) != w2.Cost(OpReadThrough) || w8.Cost(OpWriteBroadcast) != w2.Cost(OpWriteBroadcast) {
		t.Error("word operations must not scale with block size")
	}
	// Degenerate input clamps rather than producing nonsense.
	if BusCostsForBlock(0).Cost(OpCleanMissMem).Interconnect != 4 {
		t.Error("words < 1 should clamp to 1")
	}
	// Interconnect <= CPU everywhere, for every size.
	for _, words := range []int{1, 2, 8, 16} {
		for _, tab := range []*CostTable{BusCostsForBlock(words), NetworkCostsForBlock(6, words)} {
			for _, op := range Ops() {
				c := tab.Cost(op)
				if c.Interconnect > c.CPU {
					t.Errorf("%s %v: bus %g > cpu %g", tab.Name, op, c.Interconnect, c.CPU)
				}
			}
		}
	}
}

func TestLargerBlocksTradeMissCostForMissRate(t *testing.T) {
	// In the model with a FIXED miss rate, larger blocks only cost
	// more: power must fall. (In simulation the miss rate falls too;
	// the blocksize experiment explores the real trade-off.)
	p := MiddleParams()
	prev := 1e18
	for _, words := range []int{2, 4, 8, 16} {
		pw, err := BusPower(Base{}, p, BusCostsForBlock(words), 8)
		if err != nil {
			t.Fatal(err)
		}
		if pw >= prev {
			t.Errorf("words=%d: power %g did not fall", words, pw)
		}
		prev = pw
	}
}
