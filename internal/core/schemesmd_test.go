package core

import (
	"fmt"
	"os"
	"reflect"
	"regexp"
	"sort"
	"strings"
	"testing"
)

// schemesTableRows extracts the "Registered schemes" table from
// SCHEMES.md as one slice of cells per data row.
func schemesTableRows(t *testing.T) [][]string {
	t.Helper()
	data, err := os.ReadFile("../../SCHEMES.md")
	if err != nil {
		t.Fatalf("reading SCHEMES.md: %v", err)
	}
	doc := string(data)
	i := strings.Index(doc, "## Registered schemes")
	if i < 0 {
		t.Fatal("SCHEMES.md lost its '## Registered schemes' section")
	}
	section := doc[i:]
	if j := strings.Index(section[1:], "\n## "); j >= 0 {
		section = section[:j+1]
	}
	var rows [][]string
	for _, line := range strings.Split(section, "\n") {
		line = strings.TrimSpace(line)
		if !strings.HasPrefix(line, "|") || strings.HasPrefix(line, "|---") ||
			strings.HasPrefix(line, "| Canonical") {
			continue
		}
		cells := strings.Split(strings.Trim(line, "|"), "|")
		for k := range cells {
			cells[k] = strings.TrimSpace(cells[k])
		}
		rows = append(rows, cells)
	}
	if len(rows) == 0 {
		t.Fatal("SCHEMES.md scheme table has no data rows")
	}
	return rows
}

// backticked extracts the backtick-quoted tokens of one table cell.
func backticked(cell string) []string {
	var out []string
	for _, m := range regexp.MustCompile("`([^`]+)`").FindAllStringSubmatch(cell, -1) {
		out = append(out, m[1])
	}
	return out
}

// TestSchemesDocCoversRegistry is the golden drift test keeping
// SCHEMES.md synchronized with the registry, in both directions: every
// registered scheme must have a table row whose name, aliases, and knob
// match its registration exactly, and every row must correspond to a
// live registration. Register a protocol (or retire one, or change an
// alias or knob) and this test forces the matching doc edit.
func TestSchemesDocCoversRegistry(t *testing.T) {
	rows := schemesTableRows(t)

	documented := map[string][]string{} // canonical name -> row cells
	for _, cells := range rows {
		if len(cells) < 5 {
			t.Fatalf("table row has %d cells, want 5: %v", len(cells), cells)
		}
		names := backticked(cells[0])
		if len(names) != 1 {
			t.Fatalf("first cell must hold exactly the canonical name: %v", cells)
		}
		if _, dup := documented[names[0]]; dup {
			t.Errorf("scheme %s documented twice", names[0])
		}
		documented[names[0]] = cells
	}

	// Direction 1: every registration is documented, with exact aliases
	// and knob.
	for _, info := range RegisteredSchemes() {
		name := info.Scheme.Name()
		cells, ok := documented[name]
		if !ok {
			t.Errorf("registered scheme %s has no row in SCHEMES.md", name)
			continue
		}
		gotAliases := backticked(cells[1])
		sort.Strings(gotAliases)
		wantAliases := append([]string(nil), info.Aliases...)
		sort.Strings(wantAliases)
		if !reflect.DeepEqual(gotAliases, wantAliases) {
			t.Errorf("%s: SCHEMES.md aliases %v, registry has %v", name, gotAliases, wantAliases)
		}
		knobs := backticked(cells[4])
		switch {
		case info.Knob == "" && len(knobs) > 0:
			t.Errorf("%s: SCHEMES.md documents knob %v, registry has none", name, knobs)
		case info.Knob != "":
			want := []string{info.Knob}
			if !reflect.DeepEqual(knobs, want) {
				t.Errorf("%s: SCHEMES.md knob cell %v, registry has %v", name, knobs, want)
			}
			if def := fmt.Sprintf("default %g", info.KnobDefault); !strings.Contains(cells[4], def) {
				t.Errorf("%s: knob cell %q does not state %q", name, cells[4], def)
			}
		}
		if info.Paper != strings.Contains(cells[2], "paper") {
			t.Errorf("%s: origin cell %q disagrees with Paper=%v", name, cells[2], info.Paper)
		}
		busOnly := strings.Contains(cells[3], "bus only")
		if info.BusOnly != busOnly {
			t.Errorf("%s: interconnect cell %q disagrees with BusOnly=%v", name, cells[3], info.BusOnly)
		}
	}

	// Direction 2: no stale rows.
	registered := map[string]bool{}
	for _, info := range RegisteredSchemes() {
		registered[info.Scheme.Name()] = true
	}
	for name := range documented {
		if !registered[name] {
			t.Errorf("SCHEMES.md documents %s, which is not registered", name)
		}
	}
}
