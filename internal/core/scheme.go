package core

import (
	"errors"
	"fmt"
	"sort"
)

// ErrUnsupported reports a scheme evaluated on hardware that cannot
// implement it (e.g. Dragon on a multistage network, which has no
// broadcast medium for snooping).
var ErrUnsupported = errors.New("core: scheme unsupported on this interconnect")

// OpFreq pairs an operation with its frequency per (non-flush) instruction.
type OpFreq struct {
	// Op is the bus/network operation.
	Op Op
	// Freq is the operation's frequency per (non-flush) instruction.
	Freq float64
}

// Scheme is a cache-coherence scheme's workload model: it converts the
// workload parameters into per-instruction operation frequencies (paper
// Tables 3-6).
type Scheme interface {
	// Name returns the paper's name for the scheme.
	Name() string
	// Frequencies returns the operation frequencies per instruction for
	// the workload p. The list always includes OpInstr with frequency 1.
	Frequencies(p Params) ([]OpFreq, error)
}

// Demand holds the per-instruction resource demands of a scheme under a
// workload and cost table (paper equations 1-2).
type Demand struct {
	// CPU is c: mean CPU cycles per instruction without contention.
	CPU float64
	// Interconnect is b: mean bus/network cycles per instruction.
	Interconnect float64
	// Priority is the portion of Interconnect issued as high-priority
	// transactions under a priority bus service discipline. It is zero
	// for every FCFS scheme — the paper's model and all pre-registry
	// extensions — and only nonzero when the scheme implements
	// PrioritySplitter (the PriorityBus wrapper). FCFS demand math is
	// untouched: CPU and Interconnect accumulate exactly as before.
	Priority float64
}

// Think returns c-b, the mean cycles between the end of one interconnect
// transaction and the start of the next.
func (d Demand) Think() float64 { return d.CPU - d.Interconnect }

// PrioritySplit returns the per-class service demands for the priority
// bus discipline: hi is the high-priority share, lo the remainder of
// Interconnect. lo is clamped at zero so float rounding in the two
// accumulations can never produce a negative class demand.
func (d Demand) PrioritySplit() (hi, lo float64) {
	hi = d.Priority
	lo = d.Interconnect - d.Priority
	if lo < 0 {
		lo = 0
	}
	return hi, lo
}

// PrioritySplitter is implemented by schemes that request a priority
// (head-of-line) bus service discipline instead of FCFS: operations it
// classifies high-priority contribute to Demand.Priority, and the bus
// contention model routes the demand through the two-class priority MVA
// solver instead of the FCFS one. Schemes that do not implement it get
// FCFS, bit-identical to the pre-registry model.
type PrioritySplitter interface {
	// HighPriority reports whether op is served in the high-priority
	// class (short address/word transactions) rather than the
	// low-priority class (block transfers).
	HighPriority(op Op) bool
}

// ComputeDemand evaluates equations (1) and (2): it weights each
// operation's cost by its frequency. It fails if the scheme uses an
// operation the cost table does not define, which is how evaluating Dragon
// on a network is rejected.
func ComputeDemand(s Scheme, p Params, costs *CostTable) (Demand, error) {
	if err := p.Validate(); err != nil {
		return Demand{}, fmt.Errorf("%s: %w", s.Name(), err)
	}
	freqs, err := s.Frequencies(p)
	if err != nil {
		return Demand{}, err
	}
	split, prioritized := s.(PrioritySplitter)
	var d Demand
	for _, f := range freqs {
		if f.Freq == 0 {
			continue
		}
		if f.Freq < 0 {
			return Demand{}, fmt.Errorf("core: %s: negative frequency %g for %v", s.Name(), f.Freq, f.Op)
		}
		if !costs.Defines(f.Op) {
			return Demand{}, fmt.Errorf("%w: %s needs %v, not in %s model", ErrUnsupported, s.Name(), f.Op, costs.Name)
		}
		c := costs.Cost(f.Op)
		d.CPU += f.Freq * c.CPU
		d.Interconnect += f.Freq * c.Interconnect
		if prioritized && split.HighPriority(f.Op) {
			d.Priority += f.Freq * c.Interconnect
		}
	}
	return d, nil
}

// OpContribution is one operation's share of a scheme's per-instruction
// demand.
type OpContribution struct {
	// Op is the hardware operation.
	Op Op
	// Freq is its frequency per instruction.
	Freq float64
	// CPU and Interconnect are its cycle contributions
	// (freq x unit cost).
	CPU, Interconnect float64
	// CPUShare and InterconnectShare are the fractions of the totals.
	CPUShare, InterconnectShare float64
}

// DemandBreakdown itemizes equations (1)-(2): where a scheme's CPU and
// interconnect cycles actually go, operation by operation, sorted by
// descending interconnect contribution. The answer to "what would I
// optimize first?" for each scheme.
func DemandBreakdown(s Scheme, p Params, costs *CostTable) ([]OpContribution, Demand, error) {
	d, err := ComputeDemand(s, p, costs)
	if err != nil {
		return nil, Demand{}, err
	}
	freqs, err := s.Frequencies(p)
	if err != nil {
		return nil, Demand{}, err
	}
	byOp := map[Op]*OpContribution{}
	for _, f := range freqs {
		c := costs.Cost(f.Op)
		oc := byOp[f.Op]
		if oc == nil {
			oc = &OpContribution{Op: f.Op}
			byOp[f.Op] = oc
		}
		oc.Freq += f.Freq
		oc.CPU += f.Freq * c.CPU
		oc.Interconnect += f.Freq * c.Interconnect
	}
	out := make([]OpContribution, 0, len(byOp))
	for _, oc := range byOp {
		if d.CPU > 0 {
			oc.CPUShare = oc.CPU / d.CPU
		}
		if d.Interconnect > 0 {
			oc.InterconnectShare = oc.Interconnect / d.Interconnect
		}
		out = append(out, *oc)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Interconnect != out[j].Interconnect {
			return out[i].Interconnect > out[j].Interconnect
		}
		return out[i].Op < out[j].Op
	})
	return out, d, nil
}

// SchemeID enumerates the built-in schemes.
type SchemeID int

// The four schemes the paper evaluates, plus the directory extension.
const (
	SchemeBase SchemeID = iota
	SchemeNoCache
	SchemeSoftwareFlush
	SchemeDragon
	SchemeDirectory
)

// String returns the scheme's name.
func (id SchemeID) String() string {
	s, err := NewScheme(id)
	if err != nil {
		return fmt.Sprintf("SchemeID(%d)", int(id))
	}
	return s.Name()
}

// NewScheme constructs a built-in scheme by ID.
func NewScheme(id SchemeID) (Scheme, error) {
	switch id {
	case SchemeBase:
		return Base{}, nil
	case SchemeNoCache:
		return NoCache{}, nil
	case SchemeSoftwareFlush:
		return SoftwareFlush{}, nil
	case SchemeDragon:
		return Dragon{}, nil
	case SchemeDirectory:
		return Directory{}, nil
	default:
		return nil, fmt.Errorf("core: unknown scheme id %d", int(id))
	}
}

// PaperSchemes returns the four schemes of the paper in presentation
// order: Base, Dragon, Software-Flush, No-Cache. It reads the default
// registry's Paper-marked entries, whose registration order matches.
func PaperSchemes() []Scheme {
	var out []Scheme
	for _, info := range registry.All() {
		if info.Paper {
			out = append(out, info.Scheme)
		}
	}
	return out
}

// SchemeByName resolves a case-sensitive scheme name or alias ("base",
// "swflush", "dragon", "winv", ...) against the default registry,
// returning the scheme's default instance. Unknown names get an error
// listing the registered canonical names.
func SchemeByName(name string) (Scheme, error) {
	return registry.ByName(name)
}
