package core

import "fmt"

// Hybrid combines the two software schemes on one machine, as the paper
// describes for real systems (Section 2.2.3): "On the Elxsi 6400, the
// programmer determines whether a particular shared variable is kept
// coherent by the No-Cache or Software-Flush scheme. In the MultiTitan,
// locks are not cached, and other shared variables are kept coherent by
// Software-Flush."
//
// LockFrac is the fraction of shared references that target
// synchronization objects handled No-Cache style (uncacheable); the
// remaining shared references are cached and flushed with the usual apl.
// LockFrac = 1 degenerates to No-Cache, LockFrac = 0 to Software-Flush.
type Hybrid struct {
	// LockFrac in [0,1] is the uncacheable (lock) share of shared
	// references.
	LockFrac float64
}

// Name implements Scheme.
func (h Hybrid) Name() string { return "Hybrid" }

// String includes the split for diagnostics.
func (h Hybrid) String() string { return fmt.Sprintf("Hybrid(lock=%.2f)", h.LockFrac) }

// Frequencies implements Scheme: the No-Cache formulas applied to the
// lock share and the Software-Flush formulas applied to the rest.
func (h Hybrid) Frequencies(p Params) ([]OpFreq, error) {
	if !(h.LockFrac >= 0 && h.LockFrac <= 1) { // rejects NaN too
		return nil, fmt.Errorf("%w: hybrid lock fraction %g not in [0,1]", ErrInvalidParams, h.LockFrac)
	}
	lockRefs := p.LS * p.Shd * h.LockFrac
	flushShd := p.Shd * (1 - h.LockFrac)
	var f float64
	if p.APL > 0 {
		f = p.LS * flushShd / p.APL
	}
	miss := p.LS*p.MsDat*(1-p.Shd) + p.MsIns*(1+f)
	return []OpFreq{
		{OpInstr, 1},
		{OpCleanMissMem, miss*(1-p.MD) + f},
		{OpDirtyMissMem, miss * p.MD},
		{OpReadThrough, lockRefs * (1 - p.WR)},
		{OpWriteThrough, lockRefs * p.WR},
		{OpCleanFlush, f * (1 - p.MdShd)},
		{OpDirtyFlush, f * p.MdShd},
	}, nil
}
