package core

import (
	"errors"
	"math"
	"testing"
)

// freqMap collapses a frequency table to op -> freq, dropping
// zero-frequency entries so tables that differ only in listing an
// absent operation compare equal.
func extFreqMap(t *testing.T, s Scheme, p Params) map[Op]float64 {
	t.Helper()
	fs, err := s.Frequencies(p)
	if err != nil {
		t.Fatalf("%s: %v", s.Name(), err)
	}
	m := map[Op]float64{}
	for _, f := range fs {
		if f.Freq != 0 {
			m[f.Op] += f.Freq
		}
	}
	return m
}

// testWorkloads is a spread of operating points for table identities.
func testWorkloads(t *testing.T) []Params {
	t.Helper()
	out := []Params{ParamsAt(Low), MiddleParams(), ParamsAt(High)}
	p, err := MiddleParams().With("shd", 0.8)
	if err != nil {
		t.Fatal(err)
	}
	out = append(out, p)
	return out
}

// TestWriteInvalidateFrequencies checks the conservation identities of
// the Write-Invalidate table: memory- plus cache-supplied data misses
// equal total data misses (base misses + invalidation re-fetches), the
// invalidation rate is the remote-present-store rate, and OpInstr is
// present with frequency 1.
func TestWriteInvalidateFrequencies(t *testing.T) {
	for _, p := range testWorkloads(t) {
		m := extFreqMap(t, WriteInvalidate{}, p)
		if m[OpInstr] != 1 {
			t.Fatalf("OpInstr freq = %g, want 1", m[OpInstr])
		}
		inv := p.LS * p.Shd * p.WR * p.OPres
		if got := m[OpInvalidate]; math.Abs(got-inv) > 1e-15 {
			t.Errorf("invalidate freq = %g, want %g", got, inv)
		}
		misses := m[OpCleanMissMem] + m[OpDirtyMissMem] + m[OpCleanMissCache] + m[OpDirtyMissCache]
		want := p.LS*p.MsDat + inv + p.MsIns
		if math.Abs(misses-want) > 1e-12 {
			t.Errorf("total misses %g, want data+refetch+instr %g", misses, want)
		}
		// Invalidation pressure must cost something: more re-fetch misses
		// than Base at the same workload.
		base := extFreqMap(t, Base{}, p)
		baseMisses := base[OpCleanMissMem] + base[OpDirtyMissMem]
		if inv > 0 && misses <= baseMisses {
			t.Errorf("misses %g not above Base's %g despite invalidations", misses, baseMisses)
		}
	}
}

// TestHybridUpdateEndpoints pins the knob's degenerate points: u = 1
// reproduces Dragon's frequency table exactly and u = 0 reproduces
// Write-Invalidate's, so the hybrid interpolates between the two
// policies rather than being a third unrelated model.
func TestHybridUpdateEndpoints(t *testing.T) {
	for _, p := range testWorkloads(t) {
		dragon := extFreqMap(t, Dragon{}, p)
		asDragon := extFreqMap(t, HybridUpdate{UpdateFrac: 1}, p)
		for op, want := range dragon {
			if got := asDragon[op]; got != want {
				t.Errorf("u=1: op %v freq %g != Dragon's %g", op, got, want)
			}
		}
		if len(asDragon) != len(dragon) {
			t.Errorf("u=1: %d ops vs Dragon's %d", len(asDragon), len(dragon))
		}
		winv := extFreqMap(t, WriteInvalidate{}, p)
		asWinv := extFreqMap(t, HybridUpdate{UpdateFrac: 0}, p)
		for op, want := range winv {
			if got := asWinv[op]; got != want {
				t.Errorf("u=0: op %v freq %g != Write-Invalidate's %g", op, got, want)
			}
		}
		if len(asWinv) != len(winv) {
			t.Errorf("u=0: %d ops vs Write-Invalidate's %d", len(asWinv), len(winv))
		}
	}
}

// TestHybridUpdateValidation: the knob is a probability; out-of-range
// values error with ErrInvalidParams through every evaluation path.
func TestHybridUpdateValidation(t *testing.T) {
	for _, u := range []float64{-0.1, 1.1, math.NaN()} {
		if _, err := ComputeDemand(HybridUpdate{UpdateFrac: u}, MiddleParams(), BusCosts()); !errors.Is(err, ErrInvalidParams) {
			t.Errorf("updatefrac %g: err = %v, want ErrInvalidParams", u, err)
		}
	}
}

// TestPriorityBusDelegation covers the wrapper contract: frequencies,
// params-used, and naming delegate to the inner scheme; a zero value
// defaults to Software-Flush; the demand splits and the split is
// consistent with the high-priority op set.
func TestPriorityBusDelegation(t *testing.T) {
	p := MiddleParams()
	var zero PriorityBus
	if zero.Name() != "Software-Flush+Prio" {
		t.Errorf("zero-value Name = %q", zero.Name())
	}
	inner := extFreqMap(t, SoftwareFlush{}, p)
	wrapped := extFreqMap(t, zero, p)
	for op, want := range inner {
		if wrapped[op] != want {
			t.Errorf("op %v freq %g != inner %g", op, wrapped[op], want)
		}
	}

	d, err := ComputeDemand(zero, p, BusCosts())
	if err != nil {
		t.Fatal(err)
	}
	if d.Priority <= 0 {
		t.Fatal("flagship registration has zero high-priority demand; the discipline would be a no-op")
	}
	// The split must equal the sum of high-priority op contributions.
	costs := BusCosts()
	var wantHi float64
	fs, err := zero.Frequencies(p)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range fs {
		if zero.HighPriority(f.Op) {
			wantHi += f.Freq * costs.Cost(f.Op).Interconnect
		}
	}
	if math.Abs(d.Priority-wantHi) > 1e-15 {
		t.Errorf("Priority %g != sum of high-priority bus time %g", d.Priority, wantHi)
	}
	hi, lo := d.PrioritySplit()
	if math.Abs(hi+lo-d.Interconnect) > 1e-12 || hi != d.Priority || lo < 0 {
		t.Errorf("PrioritySplit() = (%g, %g), demand (%g, prio %g)", hi, lo, d.Interconnect, d.Priority)
	}

	// A FCFS scheme has no split and its demand carries no priority.
	df, err := ComputeDemand(SoftwareFlush{}, p, costs)
	if err != nil {
		t.Fatal(err)
	}
	if df.Priority != 0 {
		t.Errorf("FCFS scheme demand has Priority %g", df.Priority)
	}
	if df.CPU != d.CPU || df.Interconnect != d.Interconnect {
		t.Errorf("wrapping changed the workload model: (%g, %g) vs (%g, %g)",
			d.CPU, d.Interconnect, df.CPU, df.Interconnect)
	}

	// Wrapping a knobbed inner keeps the knob in the cache label.
	wrapped2 := PriorityBus{Inner: Hybrid{LockFrac: 0.4}}
	if got := wrapped2.String(); got != "Hybrid(lock=0.40)+Prio" {
		t.Errorf("String() = %q", got)
	}
}

// TestPriorityBusNetworkRejected: every network evaluation path must
// refuse a priority-wrapped scheme with ErrUnsupported — the network
// contention model has no priority service discipline.
func TestPriorityBusNetworkRejected(t *testing.T) {
	p := MiddleParams()
	s := PriorityBus{Inner: SoftwareFlush{}}
	if _, err := EvaluateNetworkAt(s, p, 4); !errors.Is(err, ErrUnsupported) {
		t.Errorf("EvaluateNetworkAt: %v, want ErrUnsupported", err)
	}
	if _, err := EvaluatePacketNetwork(s, p, 4); !errors.Is(err, ErrUnsupported) {
		t.Errorf("EvaluatePacketNetwork: %v, want ErrUnsupported", err)
	}
	if _, err := EvaluateNetworkMVA(s, p, 4); !errors.Is(err, ErrUnsupported) {
		t.Errorf("EvaluateNetworkMVA: %v, want ErrUnsupported", err)
	}
	// Snoopy extensions are rejected too (their ops are undefined in the
	// network tables), with ErrUnsupported for advisor skipping.
	if _, err := EvaluateNetworkAt(WriteInvalidate{}, p, 4); !errors.Is(err, ErrUnsupported) {
		t.Errorf("Write-Invalidate on network: %v, want ErrUnsupported", err)
	}
	if _, err := EvaluateNetworkAt(HybridUpdate{UpdateFrac: 0.5}, p, 4); !errors.Is(err, ErrUnsupported) {
		t.Errorf("Hybrid-Update on network: %v, want ErrUnsupported", err)
	}
}
