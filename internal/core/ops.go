package core

import "fmt"

// Op identifies a hardware operation in the system model (paper Table 1).
type Op int

// The hardware operations of the system model. "Mem" misses are satisfied
// from main memory; "Cache" misses are satisfied by a cache-to-cache
// transfer (Dragon only).
const (
	// OpInstr is ordinary instruction execution (everything except a
	// flush instruction).
	OpInstr Op = iota
	// OpCleanMissMem is a cache miss replacing a clean block, filled
	// from memory.
	OpCleanMissMem
	// OpDirtyMissMem is a cache miss replacing a dirty block (which
	// must be written back), filled from memory.
	OpDirtyMissMem
	// OpReadThrough is a No-Cache load of an uncacheable shared word
	// straight from memory.
	OpReadThrough
	// OpWriteThrough is a No-Cache store of an uncacheable shared word
	// straight to memory.
	OpWriteThrough
	// OpCleanFlush is a Software-Flush flush instruction applied to a
	// clean block (invalidate only).
	OpCleanFlush
	// OpDirtyFlush is a Software-Flush flush instruction applied to a
	// dirty block (write back then invalidate).
	OpDirtyFlush
	// OpWriteBroadcast is a Dragon store to a block present in another
	// cache: the word is broadcast on the bus.
	OpWriteBroadcast
	// OpCleanMissCache is a Dragon miss replacing a clean block,
	// supplied by another cache that holds the block dirty.
	OpCleanMissCache
	// OpDirtyMissCache is a Dragon miss replacing a dirty block,
	// supplied by another cache.
	OpDirtyMissCache
	// OpCycleSteal is a cycle stolen from a processor whose cache
	// updates its copy on hearing a write-broadcast.
	OpCycleSteal
	// OpInvalidate is an invalidation-based snoopy protocol's store to a
	// block present in another cache: an address-only bus broadcast that
	// invalidates the other copies (extension; Write-Invalidate and the
	// hybrid update/invalidate schemes use it). Like Dragon's operations
	// it needs a broadcast medium, so network cost tables leave it
	// undefined.
	OpInvalidate

	numOps
)

var opNames = [numOps]string{
	"instruction",
	"clean miss (mem)",
	"dirty miss (mem)",
	"read through",
	"write through",
	"clean flush",
	"dirty flush",
	"write broadcast",
	"clean miss (cache)",
	"dirty miss (cache)",
	"cycle steal",
	"invalidate",
}

// String returns the paper's name for the operation.
func (o Op) String() string {
	if o < 0 || o >= numOps {
		return fmt.Sprintf("Op(%d)", int(o))
	}
	return opNames[o]
}

// Ops returns all operations in the system model, in Table 1 order.
func Ops() []Op {
	ops := make([]Op, numOps)
	for i := range ops {
		ops[i] = Op(i)
	}
	return ops
}

// Cost gives the time for one occurrence of an operation: CPU is the total
// processor time in cycles absent contention; Interconnect is the portion
// of that time during which the bus (or network path) is held. Interconnect
// never exceeds CPU.
type Cost struct {
	// CPU is the total processor time in cycles absent contention.
	CPU float64
	// Interconnect is the portion of CPU during which the bus (or
	// network path) is held.
	Interconnect float64
}

// CostTable maps each operation to its cost. Operations a scheme never
// issues may be absent; looking them up yields zero cost.
type CostTable struct {
	// Name describes the hardware configuration ("bus", "network n=8").
	Name  string
	costs [numOps]Cost
	set   [numOps]bool
}

// Cost returns the cost of op (zero if the table does not define it).
func (t *CostTable) Cost(op Op) Cost {
	if op < 0 || op >= numOps {
		return Cost{}
	}
	return t.costs[op]
}

// Defines reports whether the table assigns a cost to op.
func (t *CostTable) Defines(op Op) bool {
	return op >= 0 && op < numOps && t.set[op]
}

// define records the cost of one operation.
func (t *CostTable) define(op Op, cpu, interconnect float64) {
	t.costs[op] = Cost{CPU: cpu, Interconnect: interconnect}
	t.set[op] = true
}

// BusCosts returns the bus system model of paper Table 1: a RISC machine
// with a combined I+D cache, 4-word blocks, 1-cycle instructions, and a
// bus whose cycle time equals the CPU cycle time.
func BusCosts() *CostTable { return BusCostsForBlock(4) }

// BusCostsForBlock generalizes Table 1 to a block of `words` 4-byte words
// (>= 1), following the paper's own cost derivations; at words = 4 every
// entry equals Table 1. Word operations (read/write-through, broadcast)
// do not scale with the block. See SystemSpec for the full
// parameterization.
func BusCostsForBlock(words int) *CostTable {
	if words < 1 {
		words = 1
	}
	return SystemSpec{BlockWords: words}.Table()
}

// NetworkCosts returns the system model of paper Table 9 for an unbuffered
// circuit-switched multistage network with the given number of switch
// stages (a machine with 2^stages processors). Paths are one word wide and
// blocks are 4 words, as on the bus. Dragon's bus-specific operations are
// not defined: snoopy protocols need a broadcast medium.
func NetworkCosts(stages int) *CostTable { return NetworkCostsForBlock(stages, 4) }

// NetworkCostsForBlock generalizes Table 9 to `words`-word blocks using
// the paper's derivation (path setup n, 1 address cycle, 2 memory cycles,
// n return transit, pipelined data). At words = 4 every entry equals
// Table 9. See SystemSpec for the full parameterization.
func NetworkCostsForBlock(stages, words int) *CostTable {
	if words < 1 {
		words = 1
	}
	return SystemSpec{BlockWords: words, Stages: stages}.Table()
}
