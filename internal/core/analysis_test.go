package core

import (
	"math"
	"testing"
)

func TestAPLToMatchNoCache(t *testing.T) {
	// Software-Flush at apl=1 is below No-Cache and above it at large
	// apl, so a finite crossover exists; verify the bracket.
	p := MiddleParams()
	bus := BusCosts()
	apl, found, err := APLToMatch(NoCache{}, p, bus, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !found {
		t.Fatal("crossover with No-Cache must exist")
	}
	if apl <= 1 || apl >= 10 {
		t.Errorf("crossover apl = %g, expected a small value in (1, 10)", apl)
	}
	goal, _ := BusPower(NoCache{}, p, bus, 8)
	below, _ := p.With("apl", apl*0.9)
	pwBelow, _ := BusPower(SoftwareFlush{}, below, bus, 8)
	above, _ := p.With("apl", apl*1.1)
	pwAbove, _ := BusPower(SoftwareFlush{}, above, bus, 8)
	if !(pwBelow < goal && pwAbove >= goal) {
		t.Errorf("bracket check failed: below %g, goal %g, above %g", pwBelow, goal, pwAbove)
	}
}

func TestAPLToMatchDragon(t *testing.T) {
	apl, found, err := APLToMatch(Dragon{}, MiddleParams(), BusCosts(), 16)
	if err != nil {
		t.Fatal(err)
	}
	if !found {
		t.Fatal("high apl beats Dragon at middle params, crossover must exist")
	}
	if apl < 10 {
		t.Errorf("matching Dragon should need substantial apl, got %g", apl)
	}
}

func TestAPLToMatchBaseImpossible(t *testing.T) {
	// Software-Flush can never beat Base: even infinite apl leaves
	// the unshared-miss cost equal and hence power equal in the limit
	// but the limit is approached from below... it exactly equals
	// Base's unshared-only cost minus the shd-excluded misses, which
	// is ABOVE Base's power? Check: Base misses on shared data too, SF
	// doesn't cache-miss shared data at infinite apl. So SF can beat
	// Base. Instead test against an unreachable target: Base with
	// zero sharing (pure 1/c upper bound beyond any scheme with
	// overhead).
	p := MiddleParams()
	ideal := p
	ideal.MsDat, ideal.MsIns, ideal.Shd = 0, 0, 0
	// Target: Base at a workload with no misses at all = power n.
	_, found, err := APLToMatch(idealScheme{}, p, BusCosts(), 8)
	if err != nil {
		t.Fatal(err)
	}
	if found {
		t.Error("matching the ideal machine must be impossible")
	}
}

// idealScheme is a test-only scheme with zero overhead: power = n.
type idealScheme struct{}

func (idealScheme) Name() string { return "Ideal" }
func (idealScheme) Frequencies(Params) ([]OpFreq, error) {
	return []OpFreq{{OpInstr, 1}}, nil
}

func TestMaxShdForPower(t *testing.T) {
	p := MiddleParams()
	bus := BusCosts()
	// No-Cache at 8 processors: how much sharing can it afford while
	// keeping power >= 4?
	shd, found, err := MaxShdForPower(NoCache{}, p, bus, 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !found {
		t.Fatal("shd = 0 easily delivers power 4 at 8 procs")
	}
	if shd <= 0 || shd >= 0.5 {
		t.Errorf("sharing budget = %g, expected small positive", shd)
	}
	at, _ := p.With("shd", shd)
	pw, _ := BusPower(NoCache{}, at, bus, 8)
	if pw < 4*0.999 {
		t.Errorf("power at budget = %g < 4", pw)
	}
	over, _ := p.With("shd", math.Min(1, shd*1.05))
	pwOver, _ := BusPower(NoCache{}, over, bus, 8)
	if pwOver >= 4 {
		t.Errorf("budget not tight: %g sharing still gives %g", shd*1.05, pwOver)
	}
}

func TestMaxShdForPowerUnreachable(t *testing.T) {
	_, found, err := MaxShdForPower(NoCache{}, MiddleParams(), BusCosts(), 4, 5)
	if err != nil {
		t.Fatal(err)
	}
	if found {
		t.Error("4 processors cannot deliver power 5")
	}
}

func TestMaxShdForPowerAlwaysReachable(t *testing.T) {
	// Dragon at 2 processors trivially holds power >= 0.5 even at
	// shd = 1.
	shd, found, err := MaxShdForPower(Dragon{}, MiddleParams(), BusCosts(), 2, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if !found || shd != 1 {
		t.Errorf("got shd=%g found=%v, want 1/true", shd, found)
	}
}

func TestEfficiencyVsBase(t *testing.T) {
	p := MiddleParams()
	bus := BusCosts()
	for _, s := range []Scheme{Dragon{}, SoftwareFlush{}, NoCache{}} {
		eff, err := EfficiencyVsBase(s, p, bus, 16)
		if err != nil {
			t.Fatal(err)
		}
		if eff <= 0 || eff > 1 {
			t.Errorf("%s efficiency = %g out of (0,1]", s.Name(), eff)
		}
	}
	effD, _ := EfficiencyVsBase(Dragon{}, p, bus, 16)
	effN, _ := EfficiencyVsBase(NoCache{}, p, bus, 16)
	if effD <= effN {
		t.Errorf("Dragon efficiency %g should beat No-Cache %g", effD, effN)
	}
}

func TestAnalysisErrors(t *testing.T) {
	if _, _, err := APLToMatch(Dragon{}, MiddleParams(), BusCosts(), 0); err == nil {
		t.Error("want error for zero processors")
	}
	if _, _, err := MaxShdForPower(Dragon{}, MiddleParams(), BusCosts(), 0, 1); err == nil {
		t.Error("want error for zero processors")
	}
	bad := MiddleParams()
	bad.LS = 5
	if _, _, err := APLToMatch(Dragon{}, bad, BusCosts(), 4); err == nil {
		t.Error("want error for invalid params")
	}
	if _, err := EfficiencyVsBase(Dragon{}, bad, BusCosts(), 4); err == nil {
		t.Error("want error for invalid params")
	}
}
