package core

import (
	"fmt"

	"swcc/internal/queueing"
)

// EvaluateNetworkMVA is the alternative network contention model the
// paper's footnote 2 sketches: instead of Patel's retry fixed point, the
// multistage network is represented as a load-dependent service center
// inside a closed queueing network.
//
// Each processor alternates between thinking for (c-b)/b cycles per unit
// request and queueing one unit request at the network. With k requests
// outstanding across N input ports, the network's aggregate completion
// rate is N * Forward(k/N) unit requests per cycle (the same per-stage
// blocking function as the Patel model). The two models agree in the
// uncontended limit and share the saturation bandwidth N*Forward(1); in
// between, the MVA variant queues blocked requests instead of retrying
// them, so it is mildly more optimistic.
func EvaluateNetworkMVA(s Scheme, p Params, stages int) (NetworkPoint, error) {
	if stages < 1 {
		return NetworkPoint{}, fmt.Errorf("core: stages %d < 1", stages)
	}
	if err := rejectPriorityOnNetwork(s); err != nil {
		return NetworkPoint{}, err
	}
	costs := NetworkCosts(stages)
	d, err := ComputeDemand(s, p, costs)
	if err != nil {
		return NetworkPoint{}, err
	}
	pn := queueing.NewPatelNetwork(stages)
	nproc := pn.Processors()
	pt := NetworkPoint{
		Processors: nproc,
		Stages:     stages,
		CPU:        d.CPU,
		Net:        d.Interconnect,
		Acceptance: 1,
	}
	if d.Interconnect == 0 {
		pt.PatelU = 1
		pt.Utilization = 1 / d.CPU
		pt.Power = float64(nproc) * pt.Utilization
		return pt, nil
	}
	// Per unit request: think (c-b)/b cycles.
	think := d.Think() / d.Interconnect
	if think <= 0 {
		// The workload is pure network traffic; the processor is
		// always blocked and power is bandwidth-bound.
		satU := pn.Forward(1) / d.Interconnect
		pt.Utilization = satU
		pt.Power = float64(nproc) * satU
		return pt, nil
	}
	rate := func(k int) float64 {
		m := float64(k) / float64(nproc)
		if m > 1 {
			m = 1
		}
		return float64(nproc) * pn.Forward(m)
	}
	res, err := queueing.LoadDependentMVA(think, rate, nproc)
	if err != nil {
		return NetworkPoint{}, err
	}
	last := res[nproc-1]
	// last.Throughput is unit requests per cycle machine-wide; each
	// instruction consumes b unit requests, so the machine executes
	// X/b instructions per cycle = its processing power.
	pt.Power = last.Throughput / d.Interconnect
	pt.Utilization = pt.Power / float64(nproc)
	pt.PatelU = 1 - last.QueueLength/float64(nproc)
	return pt, nil
}
