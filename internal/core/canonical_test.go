package core

import (
	"testing"
)

// TestFieldMaskMatchesFieldOrder pins the hand-unrolled field copies in
// Params.canonical to fieldSpecs order: for every parameter index i,
// canonicalizing under the single-bit mask 1<<i must copy exactly that
// parameter through and reset everything else to the baseline. If a
// field is ever added or the table reordered without updating canonical,
// this fails before the cache can key on the wrong equivalence class.
func TestFieldMaskMatchesFieldOrder(t *testing.T) {
	fields := Fields()
	// Distinctive source values: field i carries 10+i, never a baseline
	// value (baseline is zero everywhere, apl 1).
	var src Params
	for i := range fields {
		fields[i].Set(&src, float64(10+i))
	}
	for i, f := range fields {
		got := src.canonical(1 << i)
		for j, g := range fields {
			want := 0.0
			if g.Name == "apl" {
				want = 1 // baseline apl
			}
			if j == i {
				want = float64(10 + i)
			}
			if v := g.Get(&got); v != want {
				t.Errorf("mask 1<<%d (%s): field %s = %g, want %g", i, f.Name, g.Name, v, want)
			}
		}
	}
}

// maskedSchemes lists every scheme that precomputes a fieldMask: all
// registered schemes (so a new registration is covered automatically)
// plus non-default knob settings.
func maskedSchemes() []Scheme {
	schemes := []Scheme{Hybrid{LockFrac: 0.5}, HybridUpdate{UpdateFrac: 0.25}}
	for _, info := range RegisteredSchemes() {
		schemes = append(schemes, info.Scheme)
	}
	return schemes
}

// TestFieldMaskersMatchParamsUsed checks every built-in scheme's
// precomputed fieldMask agrees with its ParamsUsed declaration, so the
// fast path and the declarative path can never canonicalize differently.
func TestFieldMaskersMatchParamsUsed(t *testing.T) {
	for _, s := range maskedSchemes() {
		fm, ok := s.(fieldMasker)
		if !ok {
			t.Errorf("%s does not implement fieldMasker", s.Name())
			continue
		}
		u, ok := s.(ParamsUser)
		if !ok {
			t.Errorf("%s does not implement ParamsUser", s.Name())
			continue
		}
		want, ok := maskOf(u.ParamsUsed())
		if !ok {
			t.Errorf("%s: ParamsUsed names an unknown parameter", s.Name())
			continue
		}
		if got := fm.fieldMask(); got != want {
			t.Errorf("%s: fieldMask %011b != mask of ParamsUsed %011b", s.Name(), got, want)
		}
	}
}

// TestCanonicalParamsAllocationFree pins the zero-allocation contract of
// the cache-key canonicalization path for every built-in scheme: the
// memoizing evaluator calls CanonicalParams on every lookup, so a single
// allocation here multiplies across all cached traffic.
func TestCanonicalParamsAllocationFree(t *testing.T) {
	p := MiddleParams()
	for _, s := range maskedSchemes() {
		s := s
		if avg := testing.AllocsPerRun(100, func() {
			CanonicalParams(s, p)
		}); avg != 0 {
			t.Errorf("%s: CanonicalParams allocates %.1f times per call, want 0", s.Name(), avg)
		}
	}
}
