package core

import "fmt"

// SystemSpec parameterizes the hardware model behind Tables 1 and 9: the
// block size in words and the main-memory access latency in cycles. The
// paper's tables are the (BlockWords=4, MemoryCycles=2) instance; the
// spec exposes the knobs its cost derivations imply, so studies can ask
// questions like "what if memory were four times slower relative to the
// processor?" (the paper touches the relative-speed question for
// networks in Section 6.3).
type SystemSpec struct {
	// BlockWords is the cache block size in 4-byte words (default 4).
	BlockWords int
	// MemoryCycles is the main-memory access latency (default 2).
	MemoryCycles int
	// Stages selects a circuit-switched multistage network with that
	// many switch stages; 0 selects the shared bus.
	Stages int
}

// withDefaults fills zero fields.
func (s SystemSpec) withDefaults() SystemSpec {
	if s.BlockWords < 1 {
		s.BlockWords = 4
	}
	if s.MemoryCycles < 1 {
		s.MemoryCycles = 2
	}
	return s
}

// Table derives the cost table for the spec. Every entry follows the
// paper's own derivation pattern: 1 address cycle, MemoryCycles of
// access, one cycle per transferred word, +3 CPU cycles of miss
// handling (+1 for word references, +2 for flush bookkeeping); posted
// writes (write-through, write-back) do not wait on memory;
// cache-to-cache supply answers one cycle faster than memory on the bus.
// Networks add Stages cycles of path setup and Stages of return transit.
func (s SystemSpec) Table() *CostTable {
	s = s.withDefaults()
	w := float64(s.BlockWords)
	m := float64(s.MemoryCycles)
	if s.Stages == 0 {
		name := "bus"
		if s.BlockWords != 4 || s.MemoryCycles != 2 {
			name = fmt.Sprintf("bus (%d-word blocks, %d-cycle memory)", s.BlockWords, s.MemoryCycles)
		}
		t := &CostTable{Name: name}
		t.define(OpInstr, 1, 0)
		t.define(OpCleanMissMem, 4+m+w, 1+m+w)
		t.define(OpDirtyMissMem, 4+m+2*w, 1+m+2*w)
		t.define(OpReadThrough, 3+m, 2+m)
		t.define(OpWriteThrough, 2, 1)
		t.define(OpCleanFlush, 1, 0)
		t.define(OpDirtyFlush, 2+w, w)
		t.define(OpWriteBroadcast, 2, 1)
		t.define(OpCleanMissCache, 3+m+w, m+w)
		t.define(OpDirtyMissCache, 3+m+2*w, m+2*w)
		t.define(OpCycleSteal, 1, 0)
		// An invalidation is an address-only broadcast: same shape as a
		// posted write-through (1 address cycle on the bus), no data words.
		t.define(OpInvalidate, 2, 1)
		return t
	}
	n := float64(s.Stages)
	name := fmt.Sprintf("network n=%d", s.Stages)
	if s.BlockWords != 4 || s.MemoryCycles != 2 {
		name = fmt.Sprintf("network n=%d (%d-word blocks, %d-cycle memory)", s.Stages, s.BlockWords, s.MemoryCycles)
	}
	t := &CostTable{Name: name}
	t.define(OpInstr, 1, 0)
	t.define(OpCleanMissMem, 3+m+w+2*n, m+w+2*n)
	t.define(OpDirtyMissMem, 2+m+2*w+2*n, m+2*w-1+2*n)
	t.define(OpCleanFlush, 1, 0)
	t.define(OpDirtyFlush, 3+w+2*n, 1+w+2*n)
	t.define(OpWriteThrough, 3+2*n, 2+2*n)
	t.define(OpReadThrough, 2+m+2*n, 1+m+2*n)
	return t
}
