package core

import (
	"fmt"

	"swcc/internal/queueing"
)

// NetworkPoint is the model's prediction for one machine size on an
// unbuffered circuit-switched multistage interconnection network.
type NetworkPoint struct {
	// Processors is the machine size (2^Stages).
	Processors int
	// Stages is the number of 2x2 switch stages.
	Stages int
	// CPU is c under the network cost table for this size.
	CPU float64
	// Net is b, the mean network cycles per instruction.
	Net float64
	// PatelU is the raw Patel utilization m_n/(m*t): the fraction of
	// time the processor is not blocked at its network port.
	PatelU float64
	// Utilization is the bus-comparable processor utilization: one
	// productive cycle per instruction over the instruction's total
	// elapsed time, i.e. PatelU/(c-b). In the uncontended limit this
	// equals 1/c, matching the bus metric with w = 0.
	Utilization float64
	// Power is Processors * Utilization.
	Power float64
	// Acceptance is the per-attempt probability an offered unit request
	// traverses all stages.
	Acceptance float64
}

// rejectPriorityOnNetwork fails schemes that demand a priority bus
// service discipline: the network contention models (Patel retry, MVA
// load-dependent, buffered packet) have no two-class counterpart, and
// silently falling back to FCFS would misreport the discipline the
// caller asked for.
func rejectPriorityOnNetwork(s Scheme) error {
	if _, ok := s.(PrioritySplitter); ok {
		return fmt.Errorf("%w: %s needs a priority bus service discipline, which the network model does not provide", ErrUnsupported, s.Name())
	}
	return nil
}

// EvaluateNetworkAt runs the network model for one machine size given by
// its stage count (2^stages processors). Costs are taken from
// NetworkCosts(stages); schemes that need bus-only operations (Dragon)
// or a priority bus discipline fail with ErrUnsupported.
func EvaluateNetworkAt(s Scheme, p Params, stages int) (NetworkPoint, error) {
	if stages < 1 {
		return NetworkPoint{}, fmt.Errorf("core: stages %d < 1", stages)
	}
	if err := rejectPriorityOnNetwork(s); err != nil {
		return NetworkPoint{}, err
	}
	costs := NetworkCosts(stages)
	d, err := ComputeDemand(s, p, costs)
	if err != nil {
		return NetworkPoint{}, err
	}
	pn := queueing.NewPatelNetwork(stages)
	think := d.Think()
	var rate float64
	if think > 0 {
		rate = 1 / think
	}
	res, err := pn.SolvePatel(rate, d.Interconnect)
	if err != nil {
		return NetworkPoint{}, err
	}
	// Bus-comparable utilization: the Patel U is (c-b)/T where T is the
	// instruction's total elapsed time, so 1/T = U/(c-b). When b = 0
	// the network is untouched and T = c.
	var util float64
	if d.Interconnect == 0 || think <= 0 {
		util = 1 / d.CPU
	} else {
		util = res.Utilization / think
	}
	nproc := pn.Processors()
	return NetworkPoint{
		Processors:  nproc,
		Stages:      stages,
		CPU:         d.CPU,
		Net:         d.Interconnect,
		PatelU:      res.Utilization,
		Utilization: util,
		Power:       float64(nproc) * util,
		Acceptance:  res.Acceptance,
	}, nil
}

// EvaluateNetwork sweeps machine sizes 2^1 .. 2^maxStages and returns one
// point per size.
func EvaluateNetwork(s Scheme, p Params, maxStages int) ([]NetworkPoint, error) {
	if maxStages < 1 {
		return nil, fmt.Errorf("core: maxStages %d < 1", maxStages)
	}
	points := make([]NetworkPoint, 0, maxStages)
	for n := 1; n <= maxStages; n++ {
		pt, err := EvaluateNetworkAt(s, p, n)
		if err != nil {
			return nil, err
		}
		points = append(points, pt)
	}
	return points, nil
}

// NetworkUtilization reproduces the generic curves of paper Figure 11: the
// raw Patel processor utilization for a machine with the given stage
// count, a transaction rate of `rate` transactions per cycle, and a
// message of `msgWords` words (the network occupancy per transaction is
// msgWords + 2*stages for circuit set-up and the return path).
func NetworkUtilization(stages int, rate, msgWords float64) (float64, error) {
	pn := queueing.NewPatelNetwork(stages)
	res, err := pn.SolvePatel(rate, msgWords+2*float64(stages))
	if err != nil {
		return 0, err
	}
	return res.Utilization, nil
}

// NetworkWorkloadPoint locates a scheme/level combination on the Figure 11
// axes. The queueing fixed point only depends on the product m*t, so the
// aggregate per-instruction demand (rate 1/(c-b), size b) is decomposed
// into per-transaction terms for plotting: rate = transactions per think
// cycle, msgWords = mean words per transaction net of the 2n path-setup
// overhead. Returns that rate, message size, and the raw Patel processor
// utilization for the 2^stages-processor machine.
func NetworkWorkloadPoint(s Scheme, l Level, stages int) (rate, msgWords, utilization float64, err error) {
	if err := rejectPriorityOnNetwork(s); err != nil {
		return 0, 0, 0, err
	}
	p := ParamsAt(l)
	costs := NetworkCosts(stages)
	d, err := ComputeDemand(s, p, costs)
	if err != nil {
		return 0, 0, 0, err
	}
	freqs, err := s.Frequencies(p)
	if err != nil {
		return 0, 0, 0, err
	}
	var transactions float64
	for _, f := range freqs {
		if costs.Cost(f.Op).Interconnect > 0 {
			transactions += f.Freq
		}
	}
	think := d.Think()
	if think > 0 && transactions > 0 {
		rate = transactions / think
		msgWords = d.Interconnect/transactions - 2*float64(stages)
		if msgWords < 0 {
			msgWords = 0
		}
	}
	res, err := queueing.NewPatelNetwork(stages).SolvePatel(rate, msgWords+2*float64(stages))
	if err != nil {
		return 0, 0, 0, err
	}
	return rate, msgWords, res.Utilization, nil
}

// EvaluatePacketNetwork is an EXTENSION (paper Section 7 future work):
// the same workload on a buffered packet-switched network, where messages
// pay pipeline transit and queueing but no circuit set-up. It returns the
// bus-comparable utilization and power for a 2^stages-processor machine.
func EvaluatePacketNetwork(s Scheme, p Params, stages int) (NetworkPoint, error) {
	if stages < 1 {
		return NetworkPoint{}, fmt.Errorf("core: stages %d < 1", stages)
	}
	if err := rejectPriorityOnNetwork(s); err != nil {
		return NetworkPoint{}, err
	}
	costs := NetworkCosts(stages)
	d, err := ComputeDemand(s, p, costs)
	if err != nil {
		return NetworkPoint{}, err
	}
	// Message size net of the 2n circuit overhead: the words actually
	// transferred.
	msg := d.Interconnect - 2*float64(stages)
	if msg < 0 {
		msg = 0
	}
	think := d.Think()
	var rate float64
	if think > 0 {
		rate = 1 / think
	}
	bn := queueing.BufferedNetwork{Stages: stages}
	res, err := bn.SolveBuffered(d.CPU, rate, msg)
	if err != nil {
		return NetworkPoint{}, err
	}
	nproc := queueing.NewPatelNetwork(stages).Processors()
	return NetworkPoint{
		Processors:  nproc,
		Stages:      stages,
		CPU:         d.CPU,
		Net:         msg,
		PatelU:      res.PortLoad,
		Utilization: res.Utilization,
		Power:       float64(nproc) * res.Utilization,
		Acceptance:  1,
	}, nil
}
