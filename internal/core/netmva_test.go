package core

import (
	"math"
	"testing"
)

func TestNetworkMVAUncontendedLimit(t *testing.T) {
	p := MiddleParams()
	p.LS, p.MsDat, p.MsIns, p.Shd = 0.01, 0.0001, 0.00001, 0
	pt, err := EvaluateNetworkMVA(Base{}, p, 6)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(pt.Utilization, 1/pt.CPU, 1e-3) {
		t.Errorf("idle MVA network U = %g, want ~1/c = %g", pt.Utilization, 1/pt.CPU)
	}
}

func TestNetworkMVAAgreesWithPatelModerateLoad(t *testing.T) {
	// The two contention formulations (retry fixed point vs queued
	// load-dependent server) should agree within ~25% at the paper's
	// operating points, and the MVA variant should never be the more
	// pessimistic one under saturation-free load (queueing beats
	// dropping+retrying).
	for _, s := range []Scheme{Base{}, SoftwareFlush{}, NoCache{}} {
		for _, l := range Levels() {
			p := ParamsAt(l)
			patel, err := EvaluateNetworkAt(s, p, 8)
			if err != nil {
				t.Fatal(err)
			}
			mva, err := EvaluateNetworkMVA(s, p, 8)
			if err != nil {
				t.Fatal(err)
			}
			rel := math.Abs(mva.Power-patel.Power) / patel.Power
			if rel > 0.35 {
				t.Errorf("%s/%v: MVA power %g vs Patel %g (%.0f%% apart)",
					s.Name(), l, mva.Power, patel.Power, rel*100)
			}
		}
	}
}

func TestNetworkMVASaturationBandwidthShared(t *testing.T) {
	// Under crushing load both models converge to the same network
	// bandwidth cap N*Forward(1)/b.
	p := ParamsAt(High)
	p.LS, p.Shd = 0.4, 0.42
	patel, err := EvaluateNetworkAt(NoCache{}, p, 8)
	if err != nil {
		t.Fatal(err)
	}
	mva, err := EvaluateNetworkMVA(NoCache{}, p, 8)
	if err != nil {
		t.Fatal(err)
	}
	rel := math.Abs(mva.Power-patel.Power) / patel.Power
	if rel > 0.35 {
		t.Errorf("saturated: MVA %g vs Patel %g", mva.Power, patel.Power)
	}
}

func TestNetworkMVAZeroTraffic(t *testing.T) {
	p := MiddleParams()
	p.LS, p.MsDat, p.MsIns, p.Shd = 0, 0, 0, 0
	pt, err := EvaluateNetworkMVA(Base{}, p, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(pt.Utilization, 1, 1e-12) {
		t.Errorf("traffic-free utilization = %g, want 1", pt.Utilization)
	}
}

func TestNetworkMVAErrors(t *testing.T) {
	if _, err := EvaluateNetworkMVA(Base{}, MiddleParams(), 0); err == nil {
		t.Error("want error for zero stages")
	}
	if _, err := EvaluateNetworkMVA(Dragon{}, MiddleParams(), 4); err == nil {
		t.Error("want error for Dragon on network")
	}
	bad := MiddleParams()
	bad.Shd = 2
	if _, err := EvaluateNetworkMVA(Base{}, bad, 4); err == nil {
		t.Error("want error for invalid params")
	}
}
