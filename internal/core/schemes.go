package core

// Base is the coherence-free upper bound (paper Table 3): every cacheable
// reference behaves as in a uniprocessor; nothing is done about sharing.
type Base struct{}

// Name implements Scheme.
func (Base) Name() string { return "Base" }

// Frequencies implements Scheme per paper Table 3. A data miss occurs when
// a load/store (prob ls) misses (prob msdat); instruction misses add
// mains. A miss is dirty when the replaced block is dirty (prob md).
func (Base) Frequencies(p Params) ([]OpFreq, error) {
	miss := p.LS*p.MsDat + p.MsIns
	return []OpFreq{
		{OpInstr, 1},
		{OpCleanMissMem, miss * (1 - p.MD)},
		{OpDirtyMissMem, miss * p.MD},
	}, nil
}

// NoCache is the simplest software scheme (paper Table 4): shared data is
// marked uncacheable, so every shared load is a read-through and every
// shared store a write-through, while unshared data misses as in Base but
// on the unshared fraction only.
type NoCache struct{}

// Name implements Scheme.
func (NoCache) Name() string { return "No-Cache" }

// Frequencies implements Scheme per paper Table 4.
func (NoCache) Frequencies(p Params) ([]OpFreq, error) {
	miss := p.LS*p.MsDat*(1-p.Shd) + p.MsIns
	return []OpFreq{
		{OpInstr, 1},
		{OpCleanMissMem, miss * (1 - p.MD)},
		{OpDirtyMissMem, miss * p.MD},
		{OpReadThrough, p.LS * p.Shd * (1 - p.WR)},
		{OpWriteThrough, p.LS * p.Shd * p.WR},
	}, nil
}

// SoftwareFlush caches shared data but purges it with explicit flush
// instructions, typically at critical-section exit (paper Table 5 plus the
// two prose effects the table omits). Frequencies are per *non-flush*
// instruction: flush-instruction overhead is amortized over the real work.
type SoftwareFlush struct{}

// Name implements Scheme.
func (SoftwareFlush) Name() string { return "Software-Flush" }

// Frequencies implements Scheme. With flush rate f = ls*shd/apl per
// non-flush instruction, the scheme adds:
//
//  1. the flush instructions themselves — dirty with probability mdshd,
//     clean otherwise;
//  2. one clean miss per flush: the re-fetch of the flushed line on its
//     next use (the paper's "miss which brought the flushed line into the
//     cache", approximated as always clean because the flush just wrote
//     the line back);
//  3. instruction misses scaled by (1+f), because flush instructions
//     lengthen the instruction stream.
//
// Unshared data misses as in No-Cache.
func (SoftwareFlush) Frequencies(p Params) ([]OpFreq, error) {
	f := 0.0
	if p.APL > 0 {
		f = p.LS * p.Shd / p.APL
	}
	miss := p.LS*p.MsDat*(1-p.Shd) + p.MsIns*(1+f)
	return []OpFreq{
		{OpInstr, 1},
		{OpCleanMissMem, miss*(1-p.MD) + f},
		{OpDirtyMissMem, miss * p.MD},
		{OpCleanFlush, f * (1 - p.MdShd)},
		{OpDirtyFlush, f * p.MdShd},
	}, nil
}

// Dragon is the snoopy write-broadcast hardware protocol (paper Table 6),
// chosen because Archibald & Baer found its performance among the best.
// Stores to blocks present in other caches broadcast the word; misses
// dirty in another cache are supplied cache-to-cache; broadcasts steal a
// cycle in each holding cache.
type Dragon struct{}

// Name implements Scheme.
func (Dragon) Name() string { return "Dragon" }

// Frequencies implements Scheme per paper Table 6. Data misses split
// between memory-supplied (the block is clean elsewhere or unshared,
// probability 1 - shd*(1-oclean)) and cache-supplied (shd*(1-oclean)).
func (Dragon) Frequencies(p Params) ([]OpFreq, error) {
	fromCache := p.Shd * (1 - p.OClean)
	memMiss := p.LS*p.MsDat*(1-fromCache) + p.MsIns
	cacheMiss := p.LS * p.MsDat * fromCache
	bcast := p.LS * p.Shd * p.WR * p.OPres
	return []OpFreq{
		{OpInstr, 1},
		{OpCleanMissMem, memMiss * (1 - p.MD)},
		{OpDirtyMissMem, memMiss * p.MD},
		{OpWriteBroadcast, bcast},
		{OpCleanMissCache, cacheMiss * (1 - p.MD)},
		{OpDirtyMissCache, cacheMiss * p.MD},
		{OpCycleSteal, bcast * p.NShd},
	}, nil
}

// Directory is an EXTENSION, not part of the paper's model: a minimal
// directory-based hardware scheme for arbitrary interconnects, included
// because Section 6.3 remarks that Software-Flush at low parameters
// "approximates the performance of hardware-based directory schemes".
//
// The model: all data is cacheable and misses as in Base. A store to a
// shared block present elsewhere (probability shd*wr*opres per reference)
// triggers a directory transaction costed as a write-through (the
// update/invalidate message to the directory); misses are otherwise
// memory-supplied. This uses only operations defined in both the bus and
// network cost tables, so it can be evaluated on either.
type Directory struct{}

// Name implements Scheme.
func (Directory) Name() string { return "Directory" }

// Frequencies implements Scheme.
func (Directory) Frequencies(p Params) ([]OpFreq, error) {
	miss := p.LS*p.MsDat + p.MsIns
	// Invalidations force the next reference by another processor to
	// miss: add a re-fetch miss per invalidating write, scaled by the
	// probability another cache holds the block.
	inval := p.LS * p.Shd * p.WR * p.OPres
	return []OpFreq{
		{OpInstr, 1},
		{OpCleanMissMem, (miss + inval) * (1 - p.MD)},
		{OpDirtyMissMem, (miss + inval) * p.MD},
		{OpWriteThrough, inval},
	}, nil
}
