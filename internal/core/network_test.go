package core

import (
	"errors"
	"testing"
)

func TestEvaluateNetworkAtBasics(t *testing.T) {
	pt, err := EvaluateNetworkAt(Base{}, MiddleParams(), 8)
	if err != nil {
		t.Fatal(err)
	}
	if pt.Processors != 256 || pt.Stages != 8 {
		t.Errorf("got %d processors / %d stages, want 256 / 8", pt.Processors, pt.Stages)
	}
	if pt.Utilization <= 0 || pt.Utilization > 1 {
		t.Errorf("utilization %g out of range", pt.Utilization)
	}
	if !approx(pt.Power, 256*pt.Utilization, 1e-9) {
		t.Errorf("power %g != 256*U", pt.Power)
	}
}

func TestNetworkUncontendedLimitMatchesBusFormula(t *testing.T) {
	// A nearly idle workload on the network must give U ~= 1/c, the
	// bus formula with w = 0.
	p := MiddleParams()
	p.LS, p.MsDat, p.MsIns, p.Shd = 0.01, 0.0001, 0.00001, 0
	pt, err := EvaluateNetworkAt(Base{}, p, 6)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(pt.Utilization, 1/pt.CPU, 1e-3) {
		t.Errorf("idle network U = %g, want ~1/c = %g", pt.Utilization, 1/pt.CPU)
	}
}

func TestSoftwareSchemesScaleOnNetwork(t *testing.T) {
	// Section 6.3 / Conclusion: "Both software schemes scale well" —
	// power keeps increasing with machine size.
	for _, s := range []Scheme{Base{}, SoftwareFlush{}, NoCache{}} {
		pts, err := EvaluateNetwork(s, MiddleParams(), 10)
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		for i := 1; i < len(pts); i++ {
			if pts[i].Power <= pts[i-1].Power {
				t.Errorf("%s: power not scaling at %d procs: %g -> %g",
					s.Name(), pts[i].Processors, pts[i-1].Power, pts[i].Power)
			}
		}
	}
}

func TestSoftwareFlushBeatsNoCacheOnNetwork(t *testing.T) {
	// Section 6.3: "the Software-Flush scheme is clearly more
	// efficient" — fewer, longer messages win on a circuit-switched
	// network because of the high fixed path-setup cost.
	for stages := 2; stages <= 10; stages++ {
		sf, err := EvaluateNetworkAt(SoftwareFlush{}, MiddleParams(), stages)
		if err != nil {
			t.Fatal(err)
		}
		nc, err := EvaluateNetworkAt(NoCache{}, MiddleParams(), stages)
		if err != nil {
			t.Fatal(err)
		}
		if sf.Power <= nc.Power {
			t.Errorf("stages=%d: SF power %g <= No-Cache %g", stages, sf.Power, nc.Power)
		}
	}
}

func TestNetworkBeatsBusWhenBusSaturates(t *testing.T) {
	// Figure 10: once the bus saturates, the network's scaling
	// bandwidth wins. Compare Software-Flush at 64 processors.
	p := MiddleParams()
	busPts, err := EvaluateBus(SoftwareFlush{}, p, BusCosts(), 64)
	if err != nil {
		t.Fatal(err)
	}
	netPt, err := EvaluateNetworkAt(SoftwareFlush{}, p, 6)
	if err != nil {
		t.Fatal(err)
	}
	if netPt.Power <= busPts[63].Power {
		t.Errorf("64 procs: network power %g should beat saturated bus %g", netPt.Power, busPts[63].Power)
	}
}

func TestBusBeatsNetworkSmallScale(t *testing.T) {
	// Figure 10's other half: at very small scale the bus (no
	// path-setup cost) is ahead.
	p := MiddleParams()
	busPts, err := EvaluateBus(Base{}, p, BusCosts(), 2)
	if err != nil {
		t.Fatal(err)
	}
	netPt, err := EvaluateNetworkAt(Base{}, p, 1)
	if err != nil {
		t.Fatal(err)
	}
	if busPts[1].Power <= netPt.Power {
		t.Errorf("2 procs: bus power %g should beat network %g", busPts[1].Power, netPt.Power)
	}
}

func TestNetworkUtilizationPaperAnchor(t *testing.T) {
	// Section 6.3: 3% transaction rate with 4-word messages on the
	// 256-processor network roughly halves processor utilization.
	u, err := NetworkUtilization(8, 0.03, 4)
	if err != nil {
		t.Fatal(err)
	}
	if u < 0.35 || u > 0.62 {
		t.Errorf("U = %g, want roughly halved", u)
	}
}

func TestNetworkUtilizationMonotoneInMessageSize(t *testing.T) {
	prev := 2.0
	for _, msg := range []float64{1, 2, 4, 8, 16} {
		u, err := NetworkUtilization(8, 0.02, msg)
		if err != nil {
			t.Fatal(err)
		}
		if u >= prev {
			t.Errorf("msg=%g: U %g not decreasing (prev %g)", msg, u, prev)
		}
		prev = u
	}
}

func TestRateMattersMoreThanMessageSize(t *testing.T) {
	// Section 6.3: "In a circuit-switched network, a change in the
	// reference rate impacts system performance more than a
	// proportional change in the blocksize."  Doubling the rate should
	// hurt at least as much as doubling the message size.
	uRate, err := NetworkUtilization(8, 0.04, 4)
	if err != nil {
		t.Fatal(err)
	}
	uMsg, err := NetworkUtilization(8, 0.02, 8)
	if err != nil {
		t.Fatal(err)
	}
	if uRate > uMsg {
		t.Errorf("doubling rate (U=%g) should cost at least as much as doubling message size (U=%g)", uRate, uMsg)
	}
}

func TestNetworkWorkloadPointClasses(t *testing.T) {
	// Section 6.3: Base at all ranges, SF low/mid, and No-Cache low
	// form the reasonable class; SF high, No-Cache mid/high are much
	// poorer. Use utilization 0.35 as the class boundary and require
	// a visible gap.
	type combo struct {
		s    Scheme
		l    Level
		good bool
	}
	combos := []combo{
		{Base{}, Low, true}, {Base{}, Mid, true}, {Base{}, High, true},
		{SoftwareFlush{}, Low, true}, {SoftwareFlush{}, Mid, true},
		{NoCache{}, Low, true},
		{SoftwareFlush{}, High, false},
		{NoCache{}, Mid, false}, {NoCache{}, High, false},
	}
	for _, c := range combos {
		_, _, u, err := NetworkWorkloadPoint(c.s, c.l, 8)
		if err != nil {
			t.Fatalf("%s/%v: %v", c.s.Name(), c.l, err)
		}
		if c.good && u < 0.35 {
			t.Errorf("%s/%v: U = %g, expected reasonable (>= 0.35)", c.s.Name(), c.l, u)
		}
		if !c.good && u > 0.35 {
			t.Errorf("%s/%v: U = %g, expected poor (< 0.35)", c.s.Name(), c.l, u)
		}
	}
}

func TestEvaluateNetworkErrors(t *testing.T) {
	if _, err := EvaluateNetworkAt(Base{}, MiddleParams(), 0); err == nil {
		t.Error("want error for zero stages")
	}
	if _, err := EvaluateNetwork(Base{}, MiddleParams(), 0); err == nil {
		t.Error("want error for zero maxStages")
	}
	if _, err := EvaluateNetworkAt(Dragon{}, MiddleParams(), 4); !errors.Is(err, ErrUnsupported) {
		t.Errorf("Dragon on network: want ErrUnsupported, got %v", err)
	}
	bad := MiddleParams()
	bad.APL = 0
	if _, err := EvaluateNetworkAt(Base{}, bad, 4); err == nil {
		t.Error("want error for invalid params")
	}
}

func TestEvaluatePacketNetworkFavorsNoCache(t *testing.T) {
	// Extension check (Section 7): packet switching narrows or closes
	// No-Cache's gap to Software-Flush relative to circuit switching,
	// because it removes the per-transaction path-setup cost that
	// punishes frequent short messages.
	p := MiddleParams()
	stages := 8
	sfC, err := EvaluateNetworkAt(SoftwareFlush{}, p, stages)
	if err != nil {
		t.Fatal(err)
	}
	ncC, err := EvaluateNetworkAt(NoCache{}, p, stages)
	if err != nil {
		t.Fatal(err)
	}
	sfP, err := EvaluatePacketNetwork(SoftwareFlush{}, p, stages)
	if err != nil {
		t.Fatal(err)
	}
	ncP, err := EvaluatePacketNetwork(NoCache{}, p, stages)
	if err != nil {
		t.Fatal(err)
	}
	circuitRatio := ncC.Power / sfC.Power
	packetRatio := ncP.Power / sfP.Power
	if packetRatio <= circuitRatio {
		t.Errorf("packet switching should favor No-Cache: circuit ratio %g, packet ratio %g",
			circuitRatio, packetRatio)
	}
}

func TestEvaluatePacketNetworkErrors(t *testing.T) {
	if _, err := EvaluatePacketNetwork(Base{}, MiddleParams(), 0); err == nil {
		t.Error("want error for zero stages")
	}
	if _, err := EvaluatePacketNetwork(Dragon{}, MiddleParams(), 4); !errors.Is(err, ErrUnsupported) {
		t.Errorf("want ErrUnsupported, got %v", err)
	}
}

func TestDirectoryBetweenBaseAndSoftwareOnNetwork(t *testing.T) {
	// The directory extension should cost more than Base but less
	// than No-Cache at middle parameters.
	p := MiddleParams()
	base, err := EvaluateNetworkAt(Base{}, p, 8)
	if err != nil {
		t.Fatal(err)
	}
	dir, err := EvaluateNetworkAt(Directory{}, p, 8)
	if err != nil {
		t.Fatal(err)
	}
	nc, err := EvaluateNetworkAt(NoCache{}, p, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !(dir.Power < base.Power && dir.Power > nc.Power) {
		t.Errorf("directory power %g should lie between No-Cache %g and Base %g",
			dir.Power, nc.Power, base.Power)
	}
}
