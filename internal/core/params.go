package core

import (
	"errors"
	"fmt"
	"math"
)

// ErrInvalidParams reports workload parameters outside their domain.
var ErrInvalidParams = errors.New("core: invalid workload parameters")

// Params holds the eleven workload parameters of paper Table 2. All
// probabilities lie in [0,1]; APL is a count >= 1 and NShd a count >= 0.
//
// "Shared" means: for the software schemes, data the compiler/programmer
// treats as shared; for Dragon, data actually referenced by more than one
// processor.
type Params struct {
	// LS is the probability an instruction is a load or store.
	LS float64
	// MsDat is the cache miss rate for data references.
	MsDat float64
	// MsIns is the cache miss rate for instruction fetches, per
	// instruction.
	MsIns float64
	// MD is the probability a miss replaces a dirty block.
	MD float64
	// Shd is the probability a load or store refers to shared data.
	Shd float64
	// WR is the probability a shared reference is a store rather than
	// a load.
	WR float64
	// APL is the mean number of references to a shared block before it
	// is flushed (Software-Flush only). Must be >= 1; the paper's
	// sensitivity analysis varies 1/APL over [0.04, 1].
	APL float64
	// MdShd is the probability a shared block is modified before it is
	// flushed (so the flush is dirty).
	MdShd float64
	// OClean is the probability that, on a miss to a shared block, the
	// block is not dirty in any other cache (Dragon only).
	OClean float64
	// OPres is the probability that, on a reference to a shared block,
	// the block is present in another cache (Dragon only).
	OPres float64
	// NShd is the mean number of other caches containing a shared
	// block at a write-broadcast (Dragon only).
	NShd float64
}

// Validate checks every field against its domain. NaN and ±Inf are
// rejected everywhere: comparisons against NaN are always false, so a
// naive range check would wave a NaN workload through into the solvers
// (and into cache keys, where NaN != NaN breaks lookup identity).
func (p Params) Validate() error {
	finite := func(name string, v float64) error {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("%w: %s = %v is not finite", ErrInvalidParams, name, v)
		}
		return nil
	}
	check := func(name string, v float64) error {
		if err := finite(name, v); err != nil {
			return err
		}
		if v < 0 || v > 1 {
			return fmt.Errorf("%w: %s = %g not in [0,1]", ErrInvalidParams, name, v)
		}
		return nil
	}
	for _, f := range []struct {
		name string
		v    float64
	}{
		{"ls", p.LS}, {"msdat", p.MsDat}, {"mains", p.MsIns},
		{"md", p.MD}, {"shd", p.Shd}, {"wr", p.WR},
		{"mdshd", p.MdShd}, {"oclean", p.OClean}, {"opres", p.OPres},
	} {
		if err := check(f.name, f.v); err != nil {
			return err
		}
	}
	if err := finite("apl", p.APL); err != nil {
		return err
	}
	if p.APL < 1 {
		return fmt.Errorf("%w: apl = %g < 1", ErrInvalidParams, p.APL)
	}
	if err := finite("nshd", p.NShd); err != nil {
		return err
	}
	if p.NShd < 0 {
		return fmt.Errorf("%w: nshd = %g < 0", ErrInvalidParams, p.NShd)
	}
	return nil
}

// Level selects a row of the paper's Table 7 parameter ranges.
type Level int

// The three workload intensities of Table 7.
const (
	Low Level = iota
	Mid
	High
)

// String returns "low", "mid", or "high".
func (l Level) String() string {
	switch l {
	case Low:
		return "low"
	case Mid:
		return "mid"
	case High:
		return "high"
	default:
		return fmt.Sprintf("Level(%d)", int(l))
	}
}

// Levels returns the three levels in increasing order.
func Levels() []Level { return []Level{Low, Mid, High} }

// FieldSpec describes one workload parameter: its Table 2 name, its Table 7
// range, and accessors. For APL the Low/Mid/High values are the reciprocal
// range from Table 7 converted to APL itself (1/apl of 0.04/0.13/1.0 gives
// APL 25/7.692.../1), and Low..High orders by *workload intensity*, so
// Low = APL 25 (benign) and High = APL 1 (hostile), matching the paper's
// low-to-high sensitivity sweep.
type FieldSpec struct {
	// Name is the paper's parameter name (ls, msdat, mains, md, shd,
	// wr, mdshd, apl, oclean, opres, nshd).
	Name string
	// Doc is the Table 2 description.
	Doc string
	// Low, Mid, High are the Table 7 range values.
	Low, Mid, High float64
	// Get reads the field from p.
	Get func(p *Params) float64
	// Set writes the field in p.
	Set func(p *Params, v float64)
}

// Value returns the field value for the given level.
func (f FieldSpec) Value(l Level) float64 {
	switch l {
	case Low:
		return f.Low
	case High:
		return f.High
	default:
		return f.Mid
	}
}

// fieldSpecs is the canonical parameter table, built once: the memoizing
// evaluator canonicalizes workloads on every cache lookup, so Fields and
// FieldByName must not rebuild eleven specs (and twenty-two closures) per
// call.
var fieldSpecs = []FieldSpec{
	{
		Name: "ls", Doc: "probability an instruction is a load or store",
		Low: 0.2, Mid: 0.3, High: 0.4,
		Get: func(p *Params) float64 { return p.LS },
		Set: func(p *Params, v float64) { p.LS = v },
	},
	{
		Name: "msdat", Doc: "miss rate for data",
		Low: 0.004, Mid: 0.014, High: 0.024,
		Get: func(p *Params) float64 { return p.MsDat },
		Set: func(p *Params, v float64) { p.MsDat = v },
	},
	{
		Name: "mains", Doc: "miss rate for instructions",
		Low: 0.0014, Mid: 0.0022, High: 0.0034,
		Get: func(p *Params) float64 { return p.MsIns },
		Set: func(p *Params, v float64) { p.MsIns = v },
	},
	{
		Name: "md", Doc: "probability a miss replaces a dirty block",
		Low: 0.14, Mid: 0.20, High: 0.50,
		Get: func(p *Params) float64 { return p.MD },
		Set: func(p *Params, v float64) { p.MD = v },
	},
	{
		Name: "shd", Doc: "probability a load or store refers to shared data",
		Low: 0.08, Mid: 0.25, High: 0.42,
		Get: func(p *Params) float64 { return p.Shd },
		Set: func(p *Params, v float64) { p.Shd = v },
	},
	{
		Name: "wr", Doc: "probability a shared reference is a store rather than a load",
		Low: 0.10, Mid: 0.25, High: 0.40,
		Get: func(p *Params) float64 { return p.WR },
		Set: func(p *Params, v float64) { p.WR = v },
	},
	{
		Name: "mdshd", Doc: "probability a shared block is modified before it is flushed",
		Low: 0.0, Mid: 0.25, High: 0.5,
		Get: func(p *Params) float64 { return p.MdShd },
		Set: func(p *Params, v float64) { p.MdShd = v },
	},
	{
		// Table 7 lists 1/apl: 0.04 / 0.13 / 1.0. Low..High
		// orders by intensity: more flushes = heavier load.
		Name: "apl", Doc: "references to a shared block before it is flushed",
		Low: 25, Mid: 1 / 0.13, High: 1,
		Get: func(p *Params) float64 { return p.APL },
		Set: func(p *Params, v float64) { p.APL = v },
	},
	{
		Name: "oclean", Doc: "on miss of a shared block, probability it is not dirty in another cache",
		Low: 0.60, Mid: 0.84, High: 0.976,
		Get: func(p *Params) float64 { return p.OClean },
		Set: func(p *Params, v float64) { p.OClean = v },
	},
	{
		Name: "opres", Doc: "on reference to a shared block, probability it is present in another cache",
		Low: 0.63, Mid: 0.79, High: 0.94,
		Get: func(p *Params) float64 { return p.OPres },
		Set: func(p *Params, v float64) { p.OPres = v },
	},
	{
		Name: "nshd", Doc: "on write-broadcast, number of caches containing the block",
		Low: 1.0, Mid: 1.0, High: 7.0,
		Get: func(p *Params) float64 { return p.NShd },
		Set: func(p *Params, v float64) { p.NShd = v },
	},
}

// fieldIndex maps a parameter name to its fieldSpecs slot.
var fieldIndex = func() map[string]int {
	m := make(map[string]int, len(fieldSpecs))
	for i, f := range fieldSpecs {
		m[f.Name] = i
	}
	return m
}()

// Fields returns the eleven parameter specs in Table 7 order. The slice
// is a fresh copy, so callers may reorder or filter it freely.
func Fields() []FieldSpec {
	out := make([]FieldSpec, len(fieldSpecs))
	copy(out, fieldSpecs)
	return out
}

// FieldByName returns the spec for the named parameter without
// allocating — it sits on the evaluator's cache-key canonicalization
// path.
func FieldByName(name string) (FieldSpec, error) {
	if i, ok := fieldIndex[name]; ok {
		return fieldSpecs[i], nil
	}
	return FieldSpec{}, fmt.Errorf("%w: unknown parameter %q", ErrInvalidParams, name)
}

// ParamsAt returns a Params with every field at the given Table 7 level.
func ParamsAt(l Level) Params {
	var p Params
	for _, f := range Fields() {
		f.Set(&p, f.Value(l))
	}
	return p
}

// MiddleParams returns the all-middle workload of Table 7, the default
// operating point of the paper's figures.
func MiddleParams() Params { return ParamsAt(Mid) }

// With returns a copy of p with the named parameter set to v.
func (p Params) With(name string, v float64) (Params, error) {
	f, err := FieldByName(name)
	if err != nil {
		return p, err
	}
	f.Set(&p, v)
	return p, nil
}

// WithLevel returns a copy of p with the named parameter at the given
// Table 7 level.
func (p Params) WithLevel(name string, l Level) (Params, error) {
	f, err := FieldByName(name)
	if err != nil {
		return p, err
	}
	f.Set(&p, f.Value(l))
	return p, nil
}
